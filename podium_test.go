package podium

import (
	"bytes"
	"strings"
	"testing"

	"podium/internal/profile"
)

func paperPodium(t *testing.T, opts ...Option) *Podium {
	t.Helper()
	opts = append([]Option{WithFixedCuts(0.4, 0.65)}, opts...)
	p, err := New(profile.PaperExample(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewNilRepository(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("nil repository accepted")
	}
}

func TestSelectPaperExample(t *testing.T) {
	p := paperPodium(t)
	sel, err := p.Select(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Users) != 2 || sel.Names[0] != "Alice" || sel.Names[1] != "Eve" {
		t.Fatalf("selected %v, want Alice then Eve", sel.Names)
	}
	if sel.Score != 17 {
		t.Fatalf("score = %v, want 17", sel.Score)
	}
	if sel.Report == nil || len(sel.Report.Users) != 2 {
		t.Fatalf("report missing")
	}
}

func TestSelectBudgetValidation(t *testing.T) {
	p := paperPodium(t)
	if _, err := p.Select(0); err == nil {
		t.Fatal("budget 0 accepted")
	}
	if _, err := p.SelectCustom(-1, Feedback{}); err == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestSelectCustomExample(t *testing.T) {
	p := paperPodium(t)
	fb := Feedback{
		MustHave: p.GroupsOfProperty(profile.ExAvgMexican),
		Priority: append(append(append(
			p.GroupsOfProperty(profile.ExLivesInTokyo),
			p.GroupsOfProperty(profile.ExLivesInNYC)...),
			p.GroupsOfProperty(profile.ExLivesInBali)...),
			p.GroupsOfProperty(profile.ExLivesInParis)...),
	}
	sel, err := p.SelectCustom(2, fb)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Names[0] != "Alice" && sel.Names[0] != "Eve" {
		t.Fatalf("selected %v", sel.Names)
	}
	if sel.PriorityScore != 3 || sel.StandardScore != 14 {
		t.Fatalf("tier scores = %v/%v, want 3/14 (Example 6.4)", sel.PriorityScore, sel.StandardScore)
	}
	for _, name := range sel.Names {
		if name == "Carol" {
			t.Fatal("Carol selected despite must-have filter")
		}
	}
}

func TestSelectCustomBadFeedback(t *testing.T) {
	p := paperPodium(t)
	if _, err := p.SelectCustom(2, Feedback{Priority: []GroupID{999}}); err == nil {
		t.Fatal("invalid feedback accepted")
	}
}

func TestOptions(t *testing.T) {
	repo := profile.PaperExample()
	for _, name := range []string{"equal-width", "quantile", "jenks", "kmeans", "em", "kde-valleys"} {
		p, err := New(repo, WithBucketing(name), WithBuckets(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.NumGroups() == 0 {
			t.Fatalf("%s: no groups", name)
		}
	}
	p, err := New(repo, WithWeights(WeightIden), WithCoverage(CoverProp), WithLazyGreedy(), WithTopK(5), WithMinGroupSize(1))
	if err != nil {
		t.Fatal(err)
	}
	sel, err := p.Select(2)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Report.TopK > 5 {
		t.Fatalf("TopK = %d, want <= 5", sel.Report.TopK)
	}
}

func TestUnknownBucketingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown bucketing did not panic")
		}
	}()
	_, _ = New(profile.PaperExample(), WithBucketing("bogus"))
}

func TestLazyMatchesEagerThroughFacade(t *testing.T) {
	eager := paperPodium(t)
	lazy := paperPodium(t, WithLazyGreedy())
	a, _ := eager.Select(3)
	b, _ := lazy.Select(3)
	if len(a.Users) != len(b.Users) {
		t.Fatal("length mismatch")
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			t.Fatal("lazy facade diverges")
		}
	}
}

func TestGroupAccessors(t *testing.T) {
	p := paperPodium(t)
	if p.NumGroups() != 16 {
		t.Fatalf("NumGroups = %d, want 16", p.NumGroups())
	}
	if len(p.Groups()) != 16 {
		t.Fatal("Groups length mismatch")
	}
	ids := p.GroupsOfProperty(profile.ExAvgMexican)
	if len(ids) != 2 {
		t.Fatalf("avgRating Mexican groups = %d, want 2", len(ids))
	}
	label := p.GroupLabel(ids[1])
	if !strings.Contains(label, "avgRating Mexican") {
		t.Fatalf("label = %q", label)
	}
	if got := p.GroupsOfProperty("nope"); got != nil {
		t.Fatalf("unknown property groups = %v", got)
	}
}

func TestManualAndIntersectionGroupsFacade(t *testing.T) {
	p := paperPodium(t)
	// A surveyor stratum, prioritized: its member must be selected first.
	gid, err := p.AddManualGroup("panel veterans", []UserID{2}) // Carol
	if err != nil {
		t.Fatal(err)
	}
	sel, err := p.SelectCustom(1, Feedback{Priority: []GroupID{gid}, StandardExplicit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Names) != 1 || sel.Names[0] != "Carol" {
		t.Fatalf("selected %v, want Carol (the only panel veteran)", sel.Names)
	}
	// Intersection of two property groups through the facade.
	tokyo := p.GroupsOfProperty(profile.ExLivesInTokyo)
	mex := p.GroupsOfProperty(profile.ExAvgMexican)
	iid, err := p.AddIntersectionGroup(tokyo[0], mex[len(mex)-1])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.GroupLabel(iid), "AND") {
		t.Fatalf("intersection label = %q", p.GroupLabel(iid))
	}
	if _, err := p.AddManualGroup("bad", nil); err == nil {
		t.Fatal("empty manual group accepted")
	}
}

func TestDistributionFacade(t *testing.T) {
	p := paperPodium(t)
	all, subset, buckets, err := p.Distribution(profile.ExAvgMexican, []UserID{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 || len(subset) != 3 || len(buckets) != 3 {
		t.Fatalf("shape: %d/%d/%d", len(all), len(subset), len(buckets))
	}
	if _, _, _, err := p.Distribution("nope", nil); err == nil {
		t.Fatal("unknown property accepted")
	}
}

func TestLoadRepository(t *testing.T) {
	var buf bytes.Buffer
	if err := profile.PaperExample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	repo, err := LoadRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if repo.NumUsers() != 5 {
		t.Fatalf("users = %d", repo.NumUsers())
	}
	if _, err := LoadRepository(strings.NewReader("not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestReportRenderThroughFacade(t *testing.T) {
	p := paperPodium(t)
	sel, _ := p.Select(2)
	var buf bytes.Buffer
	sel.Report.Render(&buf)
	if !strings.Contains(buf.String(), "Alice") {
		t.Fatal("report render missing selected user")
	}
}

func TestWithRuleThroughFacade(t *testing.T) {
	// Every registered rule selects through the facade, eager and lazy alike,
	// and the two variants agree pick for pick.
	for _, name := range RuleNames() {
		eager := paperPodium(t, WithRule(name))
		lazy := paperPodium(t, WithRule(name), WithLazyGreedy())
		se, err := eager.Select(2)
		if err != nil {
			t.Fatalf("rule %s eager: %v", name, err)
		}
		sl, err := lazy.Select(2)
		if err != nil {
			t.Fatalf("rule %s lazy: %v", name, err)
		}
		if len(se.Users) != 2 || len(sl.Users) != 2 {
			t.Fatalf("rule %s selected %d/%d users, want 2", name, len(se.Users), len(sl.Users))
		}
		for i := range se.Users {
			if se.Users[i] != sl.Users[i] {
				t.Fatalf("rule %s pick %d: eager %d, lazy %d", name, i, se.Users[i], sl.Users[i])
			}
		}
	}

	// The default-rule facade path is unchanged: paper example picks.
	p := paperPodium(t, WithRule("coverage"))
	sel, err := p.Select(2)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Names[0] != "Alice" || sel.Names[1] != "Eve" {
		t.Fatalf("coverage rule selected %v, want Alice then Eve", sel.Names)
	}
}

func TestWithRuleValidation(t *testing.T) {
	if _, err := New(profile.PaperExample(), WithRule("nope")); err == nil {
		t.Fatal("unknown rule accepted at New")
	}
	if _, err := New(profile.PaperExample(), WithRule("harmonic"), WithWeights(WeightEBS)); err == nil {
		t.Fatal("EBS-incompatible rule accepted at New")
	}
	p := paperPodium(t, WithRule("maxcov"))
	if _, err := p.SelectCustom(2, Feedback{Priority: []GroupID{0}}); err == nil {
		t.Fatal("feedback customization accepted under a non-default rule")
	}
}
