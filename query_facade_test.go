package podium

import (
	"strings"
	"testing"

	"podium/internal/profile"
)

func TestSelectQueryPlain(t *testing.T) {
	p := paperPodium(t)
	sel, err := p.SelectQuery(`SELECT 2 USERS`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Names) != 2 || sel.Names[0] != "Alice" || sel.Names[1] != "Eve" {
		t.Fatalf("selected %v", sel.Names)
	}
	if sel.Score != 17 {
		t.Fatalf("score = %v", sel.Score)
	}
}

func TestSelectQueryExample62(t *testing.T) {
	p := paperPodium(t)
	sel, err := p.SelectQuery(`SELECT 2 USERS
		WHERE HAS "avgRating Mexican"
		DIVERSIFY BY "livesIn Tokyo", "livesIn NYC", "livesIn Bali", "livesIn Paris"`)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Names[0] != "Alice" || sel.Names[1] != "Eve" {
		t.Fatalf("selected %v", sel.Names)
	}
	if sel.PriorityScore != 3 || sel.StandardScore != 14 {
		t.Fatalf("tier scores %v/%v, want 3/14", sel.PriorityScore, sel.StandardScore)
	}
}

func TestSelectQueryWeightsOverride(t *testing.T) {
	p := paperPodium(t) // built with the default LBS
	sel, err := p.SelectQuery(`SELECT 2 USERS WEIGHTS IDEN`)
	if err != nil {
		t.Fatal(err)
	}
	// Iden selects {Alice, Bob} (Example 3.8).
	if sel.Names[0] != "Alice" || sel.Names[1] != "Bob" {
		t.Fatalf("Iden query selected %v", sel.Names)
	}
}

func TestSelectQueryBucketMismatch(t *testing.T) {
	p := paperPodium(t)
	_, err := p.SelectQuery(`SELECT 2 USERS BUCKETS 5`)
	if err == nil || !strings.Contains(err.Error(), "ExecuteQuery") {
		t.Fatalf("bucket mismatch error = %v", err)
	}
	if _, err := p.SelectQuery(`SELECT 2 USERS BUCKETS 3`); err != nil {
		t.Fatalf("matching bucket count rejected: %v", err)
	}
}

func TestSelectQueryErrors(t *testing.T) {
	p := paperPodium(t)
	for _, src := range []string{
		`garbage`,
		`SELECT 2 USERS WHERE HAS "no such property"`,
		`SELECT 2 USERS WHERE "avgRating Mexican" IN high AND "avgRating Mexican" NOT IN high`,
	} {
		if _, err := p.SelectQuery(src); err == nil {
			t.Errorf("query %q accepted", src)
		}
	}
}

func TestExecuteQueryHonorsBuckets(t *testing.T) {
	repo := profile.PaperExample()
	sel, err := ExecuteQuery(repo, `SELECT 2 USERS BUCKETS 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Users) != 2 {
		t.Fatalf("selected %v", sel.Users)
	}
}

func TestExecuteQueryParseError(t *testing.T) {
	if _, err := ExecuteQuery(profile.PaperExample(), `SELECT`); err == nil {
		t.Fatal("bad query accepted")
	}
}
