package podium

import (
	"testing"

	"podium/internal/profile"
)

func TestEnrichGeneralization(t *testing.T) {
	tax := NewTaxonomy()
	tax.MustAddIsA("Mexican", "Latin")
	tax.MustAddIsA("Brazilian", "Latin")

	repo := NewRepository()
	u := repo.AddUser("A")
	if err := repo.SetScore(u, "avgRating Mexican", 0.9); err != nil {
		t.Fatal(err)
	}
	if err := repo.SetScore(u, "avgRating Brazilian", 0.5); err != nil {
		t.Fatal(err)
	}

	n, err := Enrich(repo, Generalization("avgRating ", tax, AggMean))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 { // avgRating Latin
		t.Fatalf("derived %d, want 1", n)
	}
	id, ok := repo.Catalog().Lookup("avgRating Latin")
	if !ok {
		t.Fatal("derived property missing")
	}
	if s, _ := repo.Profile(u).Score(id); s != 0.7 {
		t.Fatalf("avgRating Latin = %v, want 0.7", s)
	}
}

func TestEnrichFunctionalAndSelection(t *testing.T) {
	// The full §3.1 preprocessing → selection pipeline through the facade.
	repo := profile.PaperExample()
	n, err := Enrich(repo, Functional("livesIn "))
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Fatalf("derived %d falsehoods, want 15", n)
	}
	p, err := New(repo, WithFixedCuts(0.4, 0.65))
	if err != nil {
		t.Fatal(err)
	}
	// Enrichment adds the negated-residence groups: more than the plain 16.
	if p.NumGroups() <= 16 {
		t.Fatalf("groups = %d, want enrichment to add negated groups", p.NumGroups())
	}
	if _, err := p.Select(2); err != nil {
		t.Fatal(err)
	}
}

func TestMineFunctionalRulesFacade(t *testing.T) {
	repo := profile.PaperExample()
	rules := MineFunctionalRules(repo, " ", 1)
	if len(rules) == 0 {
		t.Fatal("nothing mined")
	}
	n, err := Enrich(repo, rules...)
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Fatalf("mined enrichment derived %d, want 15 (livesIn falsehoods)", n)
	}
}

func TestEnrichRejectsBadRule(t *testing.T) {
	repo := NewRepository()
	if _, err := Enrich(repo, Generalization("p ", nil, AggMean)); err == nil {
		t.Fatal("nil-taxonomy rule accepted")
	}
}
