module podium

go 1.22
