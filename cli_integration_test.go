package podium

// End-to-end CLI integration: build the actual binaries and drive the
// generate → select → serve workflow a user would run. These tests shell out
// to the Go toolchain, so they are skipped in -short mode.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCLIGenerateSelectRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	gen := buildTool(t, dir, "podium-gen")
	sel := buildTool(t, dir, "podium-select")

	profiles := filepath.Join(dir, "profiles.json")
	out, err := exec.Command(gen, "-users", "60", "-seed", "5", "-out", profiles).CombinedOutput()
	if err != nil {
		t.Fatalf("podium-gen: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "60 users") {
		t.Fatalf("gen output: %s", out)
	}

	out, err = exec.Command(sel, "-in", profiles, "-budget", "4").CombinedOutput()
	if err != nil {
		t.Fatalf("podium-select: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "Selected 4 users") {
		t.Fatalf("select output missing selection summary:\n%s", text)
	}
	if !strings.Contains(text, "top-weight groups covered") {
		t.Fatalf("select output missing coverage headline:\n%s", text)
	}

	// Binary dataset round trip through the same tools.
	ds := filepath.Join(dir, "corpus.podium")
	if out, err := exec.Command(gen, "-users", "50", "-format", "dataset", "-out", ds).CombinedOutput(); err != nil {
		t.Fatalf("podium-gen binary: %v\n%s", err, out)
	}
	out, err = exec.Command(sel, "-in", ds, "-budget", "3",
		"-query", `SELECT 3 USERS WEIGHTS IDEN`).CombinedOutput()
	if err != nil {
		t.Fatalf("podium-select on binary dataset: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Selected 3 users") {
		t.Fatalf("query select output:\n%s", out)
	}
}

func TestCLISelectErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	sel := buildTool(t, dir, "podium-select")

	// Missing -in exits non-zero.
	if err := exec.Command(sel).Run(); err == nil {
		t.Fatal("podium-select without -in succeeded")
	}
	// Unknown file exits non-zero.
	if err := exec.Command(sel, "-in", filepath.Join(dir, "nope.json")).Run(); err == nil {
		t.Fatal("podium-select with missing file succeeded")
	}
	// Bad query reported.
	profiles := filepath.Join(dir, "p.json")
	if err := os.WriteFile(profiles, []byte(`{"users":[{"name":"a","properties":{"p":0.5}}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := exec.Command(sel, "-in", profiles, "-query", "garbage").CombinedOutput()
	if err == nil {
		t.Fatalf("bad query succeeded:\n%s", out)
	}
}

func TestCLIEval(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	gen := buildTool(t, dir, "podium-gen")
	eval := buildTool(t, dir, "podium-eval")

	profiles := filepath.Join(dir, "profiles.json")
	if out, err := exec.Command(gen, "-users", "40", "-out", profiles).CombinedOutput(); err != nil {
		t.Fatalf("podium-gen: %v\n%s", err, out)
	}
	out, err := exec.Command(eval, "-in", profiles, "-users", "0,1,2").CombinedOutput()
	if err != nil {
		t.Fatalf("podium-eval: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{"Total score", "coverage", "Proportionate deviation"} {
		if !strings.Contains(text, want) {
			t.Fatalf("eval output missing %q:\n%s", want, text)
		}
	}
	// Name resolution and error handling.
	if out, err := exec.Command(eval, "-in", profiles, "-users", "user-00003").CombinedOutput(); err != nil {
		t.Fatalf("eval by name: %v\n%s", err, out)
	}
	if err := exec.Command(eval, "-in", profiles, "-users", "no-such-user").Run(); err == nil {
		t.Fatal("unknown user accepted")
	}
	if err := exec.Command(eval, "-in", profiles, "-users", "0,0").Run(); err == nil {
		t.Fatal("duplicate user accepted")
	}
}

func TestCLIBenchApprox(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	dir := t.TempDir()
	bench := buildTool(t, dir, "podium-bench")
	out, err := exec.Command(bench, "approx", "-seed", "2").CombinedOutput()
	if err != nil {
		t.Fatalf("podium-bench approx: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Ratio") || !strings.Contains(string(out), "mean") {
		t.Fatalf("approx output:\n%s", out)
	}
	// SVG emission works end to end.
	figs := filepath.Join(dir, "figs")
	if out, err := exec.Command(bench, "approx", "-seed", "2", "-svgdir", figs).CombinedOutput(); err != nil {
		t.Fatalf("podium-bench -svgdir: %v\n%s", err, out)
	}
	entries, err := os.ReadDir(figs)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no SVG written: %v", err)
	}
	if !strings.HasSuffix(entries[0].Name(), ".svg") {
		t.Fatalf("unexpected file %q", entries[0].Name())
	}
}
