// Restaurant survey: the customization workflow of the paper's Example 6.2.
// A new restaurant owner wants a preliminary customer survey from users who
// (a) are familiar with Mexican food — every selected user must have rated
// it — and (b) come from diverse locations, prioritized over everything
// else. The example reconstructs the paper's Table 2 running example through
// the public API, runs the plain and the customized selections, and shows
// how the feedback changes the outcome and its explanation.
//
//	go run ./examples/restaurant-survey
package main

import (
	"fmt"
	"log"

	"podium"
)

func main() {
	repo := podium.NewRepository()
	set := func(u podium.UserID, label string, s float64) {
		if err := repo.SetScore(u, label, s); err != nil {
			log.Fatal(err)
		}
	}
	alice := repo.AddUser("Alice")
	set(alice, "livesIn Tokyo", 1)
	set(alice, "ageGroup 50-64", 1)
	set(alice, "avgRating Mexican", 0.95)
	set(alice, "visitFreq Mexican", 0.8)
	set(alice, "avgRating CheapEats", 0.1)
	set(alice, "visitFreq CheapEats", 0.6)
	bob := repo.AddUser("Bob")
	set(bob, "livesIn NYC", 1)
	set(bob, "avgRating Mexican", 0.3)
	set(bob, "visitFreq Mexican", 0.25)
	set(bob, "avgRating CheapEats", 0.9)
	set(bob, "visitFreq CheapEats", 0.85)
	carol := repo.AddUser("Carol")
	set(carol, "livesIn Bali", 1)
	set(carol, "ageGroup 50-64", 1)
	set(carol, "avgRating CheapEats", 0.45)
	set(carol, "visitFreq CheapEats", 0.2)
	david := repo.AddUser("David")
	set(david, "livesIn Tokyo", 1)
	set(david, "avgRating Mexican", 0.75)
	set(david, "visitFreq Mexican", 0.6)
	eve := repo.AddUser("Eve")
	set(eve, "livesIn Paris", 1)
	set(eve, "avgRating Mexican", 0.8)
	set(eve, "visitFreq Mexican", 0.45)
	set(eve, "avgRating CheapEats", 0.6)
	set(eve, "visitFreq CheapEats", 0.3)

	// The paper's hand-picked buckets: low [0,0.4), medium [0.4,0.65),
	// high [0.65,1].
	p, err := podium.New(repo, podium.WithFixedCuts(0.4, 0.65), podium.WithTopK(16))
	if err != nil {
		log.Fatal(err)
	}

	plain, err := p.Select(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Plain selection (LBS + Single, B=2): %v, score %.0f\n", plain.Names, plain.Score)

	// Example 6.2's feedback: must-have = the buckets of avgRating Mexican
	// (so Carol, who never rated Mexican food, is filtered out); priority
	// coverage on the livesIn properties.
	fb := podium.Feedback{
		MustHave: p.GroupsOfProperty("avgRating Mexican"),
	}
	for _, city := range []string{"livesIn Tokyo", "livesIn NYC", "livesIn Bali", "livesIn Paris"} {
		fb.Priority = append(fb.Priority, p.GroupsOfProperty(city)...)
	}

	custom, err := p.SelectCustom(2, fb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Customized selection:                %v\n", custom.Names)
	fmt.Printf("  priority-tier score (locations covered, by weight): %.0f\n", custom.PriorityScore)
	fmt.Printf("  standard-tier score (all other groups):             %.0f\n", custom.StandardScore)

	fmt.Println("\nWhy these users — their top represented groups:")
	for _, ue := range custom.Report.Users {
		fmt.Printf("  %s:\n", ue.Name)
		for i, g := range ue.Groups {
			if i == 3 {
				break
			}
			fmt.Printf("    %s (weight %.0f)\n", g.Label, g.Weight)
		}
	}
}
