// Website feedback: a site manager wants usability feedback from users with
// diverse activity histories (the paper's introduction scenario). Profiles
// hold activity-derived scores — feature usage frequencies, session length,
// error encounters — and the example contrasts the Iden and LBS weight
// schemes: Iden maximizes the number of covered groups (surfacing eccentric
// power users and edge-case encounters), while LBS favors representatives of
// the large mainstream groups.
//
//	go run ./examples/website-feedback
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"podium"
)

func main() {
	rng := rand.New(rand.NewSource(42))
	repo := podium.NewRepository()

	features := []string{"search", "checkout", "wishlist", "reviews", "support-chat"}
	// 200 mainstream users: heavy search/checkout, light elsewhere.
	for i := 0; i < 200; i++ {
		u := repo.AddUser(fmt.Sprintf("user-%03d", i))
		must(repo.SetScore(u, "uses search", clamp(0.7+0.15*rng.NormFloat64())))
		must(repo.SetScore(u, "uses checkout", clamp(0.6+0.15*rng.NormFloat64())))
		must(repo.SetScore(u, "sessionLength", clamp(0.4+0.2*rng.NormFloat64())))
		if rng.Float64() < 0.3 {
			must(repo.SetScore(u, "uses wishlist", clamp(0.3+0.2*rng.NormFloat64())))
		}
	}
	// 15 power users: touch every feature, long sessions.
	for i := 0; i < 15; i++ {
		u := repo.AddUser(fmt.Sprintf("power-%02d", i))
		for _, f := range features {
			must(repo.SetScore(u, "uses "+f, clamp(0.8+0.1*rng.NormFloat64())))
		}
		must(repo.SetScore(u, "sessionLength", clamp(0.9+0.05*rng.NormFloat64())))
	}
	// 10 struggling users: short sessions, many error encounters, heavy
	// support-chat usage — exactly whose feedback a usability study needs.
	for i := 0; i < 10; i++ {
		u := repo.AddUser(fmt.Sprintf("struggling-%02d", i))
		must(repo.SetScore(u, "uses support-chat", clamp(0.7+0.1*rng.NormFloat64())))
		must(repo.SetScore(u, "errorRate", clamp(0.8+0.1*rng.NormFloat64())))
		must(repo.SetScore(u, "sessionLength", clamp(0.15+0.05*rng.NormFloat64())))
	}

	for _, scheme := range []struct {
		name string
		w    podium.WeightScheme
	}{{"Iden (cover as many groups as possible)", podium.WeightIden},
		{"LBS (prioritize large groups)", podium.WeightLBS}} {

		p, err := podium.New(repo, podium.WithWeights(scheme.w), podium.WithTopK(30))
		if err != nil {
			log.Fatal(err)
		}
		sel, err := p.Select(6)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n  selected: %v\n", scheme.name, sel.Names)
		fmt.Printf("  top-30 group coverage: %d/%d\n\n", sel.Report.TopKCovered, sel.Report.TopK)
	}
}

func clamp(x float64) float64 { return math.Max(0, math.Min(1, x)) }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
