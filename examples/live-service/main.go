// Live service: Podium as a long-running deployment. A mutable server backed
// by a durable repository log accepts profile updates over HTTP while
// answering selection queries — the operational loop of Section 9 ("may be
// easily executed multiple times, e.g., to incorporate data updates"). The
// example starts the server in-process on a loopback port, drives it through
// the typed API client, mutates the population, and shows the selection
// adapting — all without a rebuild, with every mutation durable in the log.
//
// Like travel-tips, this example exercises internal substrate packages
// (server, client) and is a tour of the deployment shape rather than a
// template for external code.
//
//	go run ./examples/live-service
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"podium/internal/client"
	"podium/internal/groups"
	"podium/internal/server"
)

func main() {
	dir, err := os.MkdirTemp("", "podium-live")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	logPath := filepath.Join(dir, "repo.plog")

	srv, err := server.NewMutable("live-demo", logPath, groups.Config{K: 3}, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go http.Serve(ln, srv)
	c := client.New("http://"+ln.Addr().String(), nil)
	fmt.Printf("serving a mutable repository at %s (log: %s)\n\n", ln.Addr(), logPath)

	// Day 1: the first wave of users signs up.
	seed := []struct {
		name  string
		props map[string]float64
	}{
		{"ana", map[string]float64{"livesIn Tokyo": 1, "avgRating Sushi": 0.9}},
		{"ben", map[string]float64{"livesIn Tokyo": 1, "avgRating Sushi": 0.3}},
		{"cho", map[string]float64{"livesIn Osaka": 1, "avgRating Sushi": 0.8}},
		{"dev", map[string]float64{"livesIn Osaka": 1, "avgRating Ramen": 0.7}},
	}
	for _, u := range seed {
		if _, _, err := c.AddUser(u.name, u.props); err != nil {
			log.Fatal(err)
		}
	}
	sel, err := c.Select(client.SelectRequest{Budget: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 1 panel (2 of %d): %s, %s\n", len(seed), sel.Users[0].Name, sel.Users[1].Name)

	// Day 2: a new community appears — Kyoto ramen enthusiasts — and an
	// existing user's taste flips. No restart, no rebuild.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("kyoto-%d", i)
		if _, _, err := c.AddUser(name, map[string]float64{"livesIn Kyoto": 1, "avgRating Ramen": 0.9}); err != nil {
			log.Fatal(err)
		}
	}
	if err := c.SetScore(0, "avgRating Sushi", 0.1); err != nil { // ana sours on sushi
		log.Fatal(err)
	}
	st, err := c.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 2 population: %d users, %d groups\n", st.Users, st.Groups)

	sel, err = c.Query(`SELECT 3 USERS DIVERSIFY BY "livesIn Tokyo", "livesIn Osaka", "livesIn Kyoto"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 2 region-diverse panel: ")
	for i, u := range sel.Users {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(u.Name)
	}
	fmt.Printf("\n  priority (regions) coverage score: %.0f\n", sel.PriorityScore)

	// Every mutation above is already durable: a process restart would
	// replay the log and serve the same population.
	info, _ := os.Stat(logPath)
	fmt.Printf("\nrepository log: %d bytes, every mutation checksummed and replayable\n", info.Size())
}
