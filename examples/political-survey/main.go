// Political survey: the paper motivates the EBS weight scheme with exactly
// this scenario — "political surveys may aim to have at least one
// representative for each of the largest population groups" (Definition
// 3.6). We build a synthetic electorate with skewed region/age/income
// demographics and issue-interest scores, then compare the three weight
// schemes through the declarative query language. EBS guarantees the
// largest groups are all covered before any smaller one matters; Iden
// chases sheer group count (eccentric voters); LBS sits between.
//
//	go run ./examples/political-survey
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"podium"
)

func main() {
	rng := rand.New(rand.NewSource(2024))
	repo := podium.NewRepository()

	regions := []string{"North", "South", "East", "West", "Capital"}
	regionWeight := []float64{0.35, 0.28, 0.18, 0.12, 0.07} // skewed
	ages := []string{"18-29", "30-44", "45-64", "65+"}
	incomes := []string{"low", "middle", "high"}
	issues := []string{"economy", "healthcare", "education", "environment", "security"}

	const voters = 300
	for i := 0; i < voters; i++ {
		u := repo.AddUser(fmt.Sprintf("voter-%03d", i))
		must(repo.SetScore(u, "region "+pick(rng, regions, regionWeight), 1))
		must(repo.SetScore(u, "ageGroup "+ages[rng.Intn(len(ages))], 1))
		must(repo.SetScore(u, "income "+incomes[rng.Intn(len(incomes))], 1))
		// Each voter cares measurably about 2-3 issues.
		n := 2 + rng.Intn(2)
		for _, j := range rng.Perm(len(issues))[:n] {
			must(repo.SetScore(u, "interest "+issues[j], clamp(0.3+0.5*rng.Float64())))
		}
	}

	p, err := podium.New(repo, podium.WithTopK(12))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("electorate: %d voters, %d properties, %d groups\n\n",
		repo.NumUsers(), repo.NumProperties(), p.NumGroups())

	for _, scheme := range []string{"EBS", "LBS", "IDEN"} {
		sel, err := p.SelectQuery(fmt.Sprintf(`SELECT 3 USERS WEIGHTS %s`, scheme))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5s panel (B=3): %v\n", scheme, sel.Names)
		fmt.Printf("      top-12 largest groups covered: %d/%d\n",
			sel.Report.TopKCovered, sel.Report.TopK)
		uncovered := 0
		for _, sg := range sel.Report.Groups {
			if !sg.Covered {
				uncovered++
			}
		}
		fmt.Printf("      groups left uncovered overall: %d of %d\n\n",
			uncovered, len(sel.Report.Groups))
	}

	// A follow-up a campaign might run: the panel must be familiar with the
	// economy debate and diversify over regions above all.
	sel, err := p.SelectQuery(`SELECT 6 USERS
		WHERE HAS "interest economy"
		DIVERSIFY BY "region North", "region South", "region East", "region West", "region Capital"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("economy-aware, region-first panel: %v\n", sel.Names)
	fmt.Printf("  priority (regions) score %.0f, standard score %.0f\n",
		sel.PriorityScore, sel.StandardScore)
}

func pick(rng *rand.Rand, items []string, weights []float64) string {
	r := rng.Float64()
	for i, w := range weights {
		r -= w
		if r < 0 {
			return items[i]
		}
	}
	return items[len(items)-1]
}

func clamp(x float64) float64 { return math.Max(0, math.Min(1, x)) }

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
