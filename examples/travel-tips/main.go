// Travel tips: the end-to-end opinion-procurement pipeline. A traveler wants
// diverse "tips" about destinations: we generate a TripAdvisor-like corpus
// (profiles + ground-truth reviews), select 8 users with Podium and with a
// random baseline, simulate procuring their opinions, and compare the
// diversity of what came back — topic coverage, rating-distribution
// similarity and rating variance, as in Figure 3b of the paper.
//
// This example exercises the full substrate, so unlike the other examples it
// reaches into the repository's internal simulation packages; treat it as a
// tour of the pipeline rather than a template for external code.
//
//	go run ./examples/travel-tips
package main

import (
	"fmt"

	"podium/internal/baselines"
	"podium/internal/groups"
	"podium/internal/opinions"
	"podium/internal/synth"
)

func main() {
	ds := synth.Generate(synth.TripAdvisorLike(400))
	fmt.Printf("corpus: %d users, %d properties, %d reviews over %d destinations\n\n",
		ds.Repo.NumUsers(), ds.Repo.NumProperties(),
		ds.Store.NumReviews(), ds.Store.NumDestinations())

	ix := groups.Build(ds.Repo, groups.Config{K: 3})
	const budget = 8

	selectors := []baselines.Selector{
		baselines.Podium{Weights: groups.WeightLBS, Coverage: groups.CoverSingle},
		baselines.Random{Seed: 1},
	}
	fmt.Printf("%-10s %18s %18s %16s\n", "", "topic+sentiment", "rating dist sim", "rating variance")
	// Evaluate on the 50 most-reviewed destinations, the paper's protocol —
	// opinion diversity is only meaningful where opinions exist.
	for _, sel := range selectors {
		users := sel.Select(ix, budget)
		ev := opinions.EvaluateTop(ds.Store, users, 50)
		fmt.Printf("%-10s %18.3f %18.3f %16.3f\n",
			sel.Name(), ev.TopicSentiment, ev.RatingSim, ev.RatingVar)
	}

	// Show a few procured opinions for one destination, the way an opinion-
	// procurement client would see them.
	podiumUsers := selectors[0].Select(ix, budget)
	for d := 0; d < ds.Store.NumDestinations(); d++ {
		procured := ds.Store.Procure(opinions.DestID(d), podiumUsers)
		if len(procured) < 2 {
			continue
		}
		fmt.Printf("\nprocured opinions on %s (topics: %v):\n",
			ds.Store.DestName(opinions.DestID(d)), ds.Store.Topics(opinions.DestID(d)))
		for _, r := range procured {
			sent := map[bool]string{true: "+", false: "-"}
			var tags []string
			for _, tm := range r.Topics {
				tags = append(tags, sent[tm.Positive]+tm.Topic)
			}
			fmt.Printf("  %s rated %d/5, mentioned %v\n",
				ds.Repo.UserName(r.User), r.Rating, tags)
		}
		break
	}
}
