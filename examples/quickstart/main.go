// Quickstart: build a small user repository through the public API, select a
// diverse subset of 4 users, and print the explanation report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"podium"
)

func main() {
	repo := podium.NewRepository()

	// Twelve users of a travel site: a residence city, an age group, and a
	// few activity-derived scores each. Scores are normalized to [0,1].
	type user struct {
		name  string
		props map[string]float64
	}
	users := []user{
		{"ana", map[string]float64{"livesIn Tokyo": 1, "ageGroup 18-29": 1, "avgRating Sushi": 0.9, "visitFreq Sushi": 0.7}},
		{"ben", map[string]float64{"livesIn Tokyo": 1, "ageGroup 30-44": 1, "avgRating Sushi": 0.2, "visitFreq Ramen": 0.8}},
		{"cho", map[string]float64{"livesIn Osaka": 1, "ageGroup 18-29": 1, "avgRating Ramen": 0.85, "visitFreq Ramen": 0.6}},
		{"dev", map[string]float64{"livesIn Osaka": 1, "ageGroup 45-64": 1, "avgRating Sushi": 0.55, "visitFreq Sushi": 0.3}},
		{"eli", map[string]float64{"livesIn Kyoto": 1, "ageGroup 30-44": 1, "avgRating Ramen": 0.15, "visitFreq Ramen": 0.2}},
		{"fay", map[string]float64{"livesIn Tokyo": 1, "ageGroup 45-64": 1, "avgRating Sushi": 0.95, "avgRating Ramen": 0.9}},
		{"gus", map[string]float64{"livesIn Kyoto": 1, "ageGroup 18-29": 1, "avgRating Sushi": 0.4, "visitFreq Sushi": 0.5}},
		{"hana", map[string]float64{"livesIn Tokyo": 1, "ageGroup 65+": 1, "avgRating Ramen": 0.5, "visitFreq Ramen": 0.4}},
		{"ivo", map[string]float64{"livesIn Osaka": 1, "ageGroup 30-44": 1, "avgRating Sushi": 0.7, "visitFreq Sushi": 0.9}},
		{"jun", map[string]float64{"livesIn Kyoto": 1, "ageGroup 45-64": 1, "avgRating Ramen": 0.75, "visitFreq Ramen": 0.85}},
		{"kira", map[string]float64{"livesIn Tokyo": 1, "ageGroup 18-29": 1, "avgRating Sushi": 0.1, "avgRating Ramen": 0.3}},
		{"lou", map[string]float64{"livesIn Osaka": 1, "ageGroup 65+": 1, "avgRating Sushi": 0.6, "visitFreq Ramen": 0.1}},
	}
	for _, u := range users {
		id := repo.AddUser(u.name)
		for label, score := range u.props {
			if err := repo.SetScore(id, label, score); err != nil {
				log.Fatal(err)
			}
		}
	}

	// Group every property into low/medium/high score buckets, weight
	// groups by size (LBS), one representative per group (Single).
	p, err := podium.New(repo,
		podium.WithBuckets(3),
		podium.WithWeights(podium.WeightLBS),
		podium.WithCoverage(podium.CoverSingle),
		podium.WithTopK(20),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repository: %d users, %d properties, %d derived groups\n\n",
		repo.NumUsers(), repo.NumProperties(), p.NumGroups())

	sel, err := p.Select(4)
	if err != nil {
		log.Fatal(err)
	}
	sel.Report.Render(os.Stdout)

	// Compare the sushi-rating distribution of the selection against the
	// population (the right-pane graph of the prototype UI).
	all, subset, buckets, err := p.Distribution("avgRating Sushi", sel.Users)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\navgRating Sushi distribution (population vs selection):\n")
	for i, b := range buckets {
		fmt.Printf("  %-12s population %.2f   selection %.2f\n", b.String(), all[i], subset[i])
	}
}
