#!/usr/bin/env bash
# check.sh — the PR gate, runnable directly or via `make check`.
#
# Runs, in order:
#   1. go vet  over every package
#   2. go build over every package
#   3. the full test suite
#   4. the race detector over the concurrent selection engine and the
#      delta-repaired selector state plus the pluggable rule engine's credit
#      schedules (internal/core), the shared adjacency
#      structures and their mutation change records (internal/groups), the
#      lock-free snapshot server with its watermark-keyed, rule-keyed select
#      cache (internal/server — the cache's writer-side watermark stamping vs
#      reader-side hit checks is exactly the kind of ordering bug -race
#      exists for, and concurrent requests under different selection rules
#      share the per-rule metric children and per-rule selector states
#      through sync.Map), the batched repository log (internal/repolog), the
#      campaign orchestrator (internal/campaign), the resilient client
#      (internal/client), the fault injector + chaos suite
#      (internal/faults), the metrics/trace registry (internal/obs), the
#      binary codec + snapshot image (internal/codec), the columnar
#      repository with its copy-on-write overlay (internal/profile) and the
#      sharded selection subsystem — concurrent round-1 shard greedies, the
#      coordinator's fan-out/merge, and the replica health registry with its
#      hedged router (probe loop, passive outcome notes and hedge
#      cancellation all race against routing decisions) (internal/shard)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./internal/core ./internal/groups ./internal/server ./internal/repolog ./internal/campaign ./internal/client ./internal/faults ./internal/obs ./internal/codec ./internal/profile ./internal/shard"
go test -race ./internal/core ./internal/groups ./internal/server ./internal/repolog ./internal/campaign ./internal/client ./internal/faults ./internal/obs ./internal/codec ./internal/profile ./internal/shard

echo "check: all green"
