// Command gen-golden regenerates internal/codec/testdata/v1_paper_example.podm
// — the golden v1 file pinning decoder backward compatibility. Run it only
// when the v1 format itself legitimately changes (it should not).
package main

import (
	"os"

	"podium/internal/codec"
	"podium/internal/profile"
)

func main() {
	f, err := os.Create("internal/codec/testdata/v1_paper_example.podm")
	if err != nil {
		panic(err)
	}
	if err := codec.WriteRepository(f, profile.PaperExample()); err != nil {
		panic(err)
	}
	if err := f.Close(); err != nil {
		panic(err)
	}
}
