package podium

// Benchmarks for the extension subsystems beyond the paper's figures:
// randomized selection (E11), the extended baseline comparison (E12), the
// binary codec, incremental index maintenance, parallel grouping and the
// declarative query layer.

import (
	"bytes"
	"fmt"
	"testing"

	"podium/internal/codec"
	"podium/internal/experiments"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/query"
)

// E11 — randomized selection (the paper's §10 future work).
func BenchmarkNoiseAblation(b *testing.B) {
	ta, _ := benchDatasets()
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunNoiseAblation(experiments.NoiseConfig{
			Dataset: ta, Seed: 13, Budget: benchBudget, Repetitions: 5,
		})
	}
	logTable(b, tab)
}

// E12 — extended baselines: stratified sampling and max-min distance.
func BenchmarkExtendedIntrinsic(b *testing.B) {
	ta, _ := benchDatasets()
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunExtendedIntrinsic(experiments.IntrinsicConfig{Dataset: ta, Seed: 7, Budget: benchBudget})
	}
	logTable(b, tab)
}

// E14 — hold-out opinion evaluation (the paper's §8.2 protocol).
func BenchmarkHoldOut(b *testing.B) {
	ta, _ := benchDatasets()
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunHoldOut(experiments.HoldOutConfig{
			Dataset: ta, Seed: 7, Budget: benchBudget, Destinations: 10,
		})
	}
	logTable(b, tab)
}

// E15 — budget sweep (§8.4's "as B increases" observation).
func BenchmarkBudgetSweep(b *testing.B) {
	ta, _ := benchDatasets()
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunBudgetSweep(experiments.BudgetSweepConfig{Dataset: ta, Seed: 7, Budgets: []int{2, 8, 32}})
	}
	logTable(b, tab)
}

// E16 — diversity transfer: corr(intrinsic diversity, opinion diversity).
func BenchmarkDiversityTransfer(b *testing.B) {
	ta, _ := benchDatasets()
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunDiversityTransfer(experiments.TransferConfig{Dataset: ta, Seed: 21, Samples: 30})
	}
	logTable(b, tab)
}

// Binary codec throughput, versus the JSON wire format.
func BenchmarkCodecWriteBinary(b *testing.B) {
	ta, _ := benchDatasets()
	b.ResetTimer()
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := codec.WriteRepository(&buf, ta.Repo); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "bytes")
}

func BenchmarkCodecReadBinary(b *testing.B) {
	ta, _ := benchDatasets()
	var buf bytes.Buffer
	if err := codec.WriteRepository(&buf, ta.Repo); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.ReadRepository(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecWriteJSON(b *testing.B) {
	ta, _ := benchDatasets()
	b.ResetTimer()
	var buf bytes.Buffer
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := ta.Repo.WriteJSON(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(buf.Len()), "bytes")
}

// Incremental maintenance versus full rebuild: indexing one new user.
func BenchmarkIncrementalIndexUser(b *testing.B) {
	ta, _ := benchDatasets()
	ix := groups.Build(ta.Repo, groups.Config{K: 3})
	// One template user's profile to replay.
	var labels []string
	var scores []float64
	ta.Repo.Profile(0).Each(func(id profile.PropertyID, s float64) {
		labels = append(labels, ta.Repo.Catalog().Label(id))
		scores = append(scores, s)
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := ta.Repo.AddUser(fmt.Sprintf("bench-%d", i))
		for j, l := range labels {
			ta.Repo.MustSetScore(u, l, scores[j])
		}
		if _, err := ix.IndexUser(u); err != nil {
			b.Fatal(err)
		}
	}
}

// Full grouping rebuild, for contrast with IndexUser.
func BenchmarkFullRebuild(b *testing.B) {
	ta, _ := benchDatasets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups.Build(ta.Repo, groups.Config{K: 3})
	}
}

// Parallel grouping ablation.
func BenchmarkGroupBuildParallel4(b *testing.B) {
	ta, _ := benchDatasets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups.Build(ta.Repo, groups.Config{K: 3, Parallelism: 4})
	}
}

// Query layer: parse cost and end-to-end query selection.
func BenchmarkQueryParse(b *testing.B) {
	src := `SELECT 8 USERS WEIGHTS LBS COVERAGE SINGLE
		WHERE HAS "avgRating Mexican" AND "livesIn city-00" NOT IN true
		DIVERSIFY BY "visitFreq Mexican", "visitFreq Japanese"
		IGNORE "enthusiasm Food"`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := query.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQuerySelect(b *testing.B) {
	ta, _ := benchDatasets()
	p, err := New(ta.Repo)
	if err != nil {
		b.Fatal(err)
	}
	src := `SELECT 8 USERS WHERE HAS "avgRating Mexican" DIVERSIFY BY "visitFreq Mexican"`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SelectQuery(src); err != nil {
			b.Fatal(err)
		}
	}
}
