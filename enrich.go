package podium

import (
	"podium/internal/taxonomy"
)

// Taxonomy is a category taxonomy of isA edges used by generalization rules
// (Section 3.1 of the paper: Mexican cuisine isA Latin cuisine).
type Taxonomy = taxonomy.Taxonomy

// NewTaxonomy returns an empty taxonomy.
func NewTaxonomy() *Taxonomy { return taxonomy.New() }

// InferenceRule derives new property scores from existing ones. Rules never
// overwrite explicit data.
type InferenceRule = taxonomy.Rule

// Aggregator selects how generalization combines child-category scores.
type Aggregator = taxonomy.Aggregator

// Aggregator values: mean for rating aggregates, capped sum for frequency
// fractions, max for Boolean properties.
const (
	AggMean      = taxonomy.AggMean
	AggSumCapped = taxonomy.AggSumCapped
	AggMax       = taxonomy.AggMax
)

// Generalization builds the rule that derives "<prefix><ancestor>" scores
// from "<prefix><category>" scores along the taxonomy (Example 3.2: from
// "avgRating Mexican" derive "avgRating Latin").
func Generalization(prefix string, tax *Taxonomy, agg Aggregator) InferenceRule {
	return taxonomy.GeneralizationRule{Prefix: prefix, Tax: tax, Agg: agg}
}

// Functional builds the rule for mutually exclusive Boolean properties
// sharing a prefix: a positive variant implies the falsehood of all others
// (Example 3.2: livesIn). With no explicit variants they are discovered from
// the repository's catalog.
func Functional(prefix string, variants ...string) InferenceRule {
	return taxonomy.FunctionalRule{Prefix: prefix, Variants: variants}
}

// MineFunctionalRules discovers functional property families automatically
// (Section 3.1's "derived via rule mining techniques"): label families
// "<prefix><sep><variant>" that are Boolean and mutually exclusive across
// every user, with at least minSupport positive holders.
func MineFunctionalRules(repo *Repository, sep string, minSupport int) []InferenceRule {
	mined := taxonomy.MineFunctionalPrefixes(repo, sep, minSupport)
	rules := make([]InferenceRule, len(mined))
	for i, m := range mined {
		rules[i] = m.Rule()
	}
	return rules
}

// Enrich applies inference rules to the repository in order (the
// preprocessing step of Section 3.1), returning the number of derived
// scores. Call it before New — grouping sees the enriched profiles.
func Enrich(repo *Repository, rules ...InferenceRule) (int, error) {
	counts, err := taxonomy.NewEngine(rules...).Run(repo)
	total := 0
	for _, n := range counts {
		total += n
	}
	return total, err
}
