package podium

import (
	"fmt"

	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/query"
)

// SelectQuery runs a selection described in Podium's declarative query
// language (see internal/query for the grammar):
//
//	SELECT 8 USERS
//	WEIGHTS LBS COVERAGE SINGLE
//	WHERE HAS "avgRating Mexican" AND "livesIn Tokyo" NOT IN true
//	DIVERSIFY BY "livesIn Tokyo", "livesIn Paris"
//	IGNORE "internal score"
//
// WEIGHTS and COVERAGE default to the instance's configured schemes. A
// BUCKETS clause must match the grouping this instance was built with —
// regrouping per query would silently invalidate every group ID the client
// holds; use ExecuteQuery to build-and-select in one step instead.
func (p *Podium) SelectQuery(src string) (*Selection, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if q.Buckets != 0 && q.Buckets != p.effectiveBuckets() {
		return nil, fmt.Errorf("podium: query requests %d buckets but this instance was grouped with %d; use ExecuteQuery", q.Buckets, p.effectiveBuckets())
	}
	ws := p.opts.weights
	if q.WeightsSet {
		ws = q.Weights
	}
	cs := p.opts.coverage
	if q.CoverageSet {
		cs = q.Coverage
	}
	fb, err := q.Compile(p.index)
	if err != nil {
		return nil, err
	}
	inst := groups.NewInstance(p.index, ws, cs, q.Budget)
	if len(fb.MustHave) == 0 && len(fb.MustNot) == 0 && len(fb.Priority) == 0 && !fb.StandardExplicit {
		var res *core.Result
		if p.opts.lazy {
			res = core.LazyGreedy(inst, q.Budget)
		} else {
			res = core.Greedy(inst, q.Budget)
		}
		return p.finish(inst, res, 0, 0), nil
	}
	res, err := core.GreedyCustom(inst, fb, q.Budget)
	if err != nil {
		return nil, err
	}
	return p.finish(inst, res.Result, res.PriorityScore, res.StandardScore), nil
}

func (p *Podium) effectiveBuckets() int {
	if p.opts.groupCfg.K <= 0 {
		return 3
	}
	return p.opts.groupCfg.K
}

// ExecuteQuery builds a Podium instance sized to the query (honoring its
// BUCKETS clause) over repo and runs the selection — the one-shot entry
// point for ad-hoc queries.
func ExecuteQuery(repo *Repository, src string, opts ...Option) (*Selection, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	if q.Buckets != 0 {
		opts = append(opts, WithBuckets(q.Buckets))
	}
	p, err := New(repo, opts...)
	if err != nil {
		return nil, err
	}
	return p.SelectQuery(src)
}
