package podium_test

// Godoc examples: each compiles into the package documentation and runs as
// a test, pinning the documented behavior to the paper's running example
// (Table 2, Examples 3.8 and 6.4).

import (
	"fmt"

	"podium"
	"podium/internal/profile"
)

// Build the Table 2 repository, group with the paper's hand-picked
// low/medium/high cuts, and select the two most diverse users.
func ExamplePodium_Select() {
	repo := profile.PaperExample() // Alice, Bob, Carol, David, Eve

	p, err := podium.New(repo,
		podium.WithFixedCuts(0.4, 0.65), // low / medium / high
		podium.WithWeights(podium.WeightLBS),
		podium.WithCoverage(podium.CoverSingle),
	)
	if err != nil {
		panic(err)
	}
	sel, err := p.Select(2)
	if err != nil {
		panic(err)
	}
	fmt.Println(sel.Names, sel.Score)
	// Output: [Alice Eve] 17
}

// Customization (Example 6.2): selected users must have rated Mexican food,
// and residence diversity takes priority over everything else.
func ExamplePodium_SelectCustom() {
	repo := profile.PaperExample()
	p, err := podium.New(repo, podium.WithFixedCuts(0.4, 0.65))
	if err != nil {
		panic(err)
	}
	fb := podium.Feedback{
		MustHave: p.GroupsOfProperty("avgRating Mexican"),
	}
	for _, city := range []string{"livesIn Tokyo", "livesIn NYC", "livesIn Bali", "livesIn Paris"} {
		fb.Priority = append(fb.Priority, p.GroupsOfProperty(city)...)
	}
	sel, err := p.SelectCustom(2, fb)
	if err != nil {
		panic(err)
	}
	fmt.Println(sel.Names, sel.PriorityScore, sel.StandardScore)
	// Output: [Alice Eve] 3 14
}

// The same customization through the declarative query language.
func ExamplePodium_SelectQuery() {
	repo := profile.PaperExample()
	p, err := podium.New(repo, podium.WithFixedCuts(0.4, 0.65))
	if err != nil {
		panic(err)
	}
	sel, err := p.SelectQuery(`SELECT 2 USERS
		WHERE HAS "avgRating Mexican"
		DIVERSIFY BY "livesIn Tokyo", "livesIn NYC", "livesIn Bali", "livesIn Paris"`)
	if err != nil {
		panic(err)
	}
	fmt.Println(sel.Names)
	// Output: [Alice Eve]
}

// Enrichment (Section 3.1): functional inference materializes the falsehood
// of every other residence once one is known.
func ExampleEnrich() {
	repo := profile.PaperExample()
	derived, err := podium.Enrich(repo, podium.Functional("livesIn "))
	if err != nil {
		panic(err)
	}
	fmt.Println(derived)
	// Output: 15
}
