GO ?= go

.PHONY: check vet build test race bench-engine

# check is the PR gate: vet, build, full tests, and a race-detector pass over
# the concurrent selection engine and its adjacency structures.
check:
	./scripts/check.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core ./internal/groups

# bench-engine regenerates BENCH_selection.json (the selection-engine perf
# trajectory; see DESIGN.md §7).
bench-engine:
	$(GO) run ./cmd/podium-bench -suite engine
