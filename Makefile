GO ?= go

.PHONY: check vet build test race bench-engine bench-server

# check is the PR gate: vet, build, full tests, and a race-detector pass over
# the concurrent selection engine and its adjacency structures.
check:
	./scripts/check.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core ./internal/groups ./internal/server ./internal/repolog

# bench-engine regenerates BENCH_selection.json (the selection-engine perf
# trajectory; see DESIGN.md §7).
bench-engine:
	$(GO) run ./cmd/podium-bench -suite engine

# bench-server regenerates BENCH_server.json: snapshot serving vs the
# single-mutex baseline on a mixed read/write workload (DESIGN.md §8).
bench-server:
	$(GO) run ./cmd/podium-bench -suite server
