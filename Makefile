GO ?= go

.PHONY: check vet build test race bench-engine bench-server bench-campaign bench-faults bench-obs bench-scale bench-steady bench-dist bench-rules

# check is the PR gate: vet, build, full tests, and a race-detector pass over
# the concurrent selection engine and its adjacency structures.
check:
	./scripts/check.sh

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core ./internal/groups ./internal/server ./internal/repolog ./internal/campaign ./internal/client ./internal/faults ./internal/obs ./internal/codec ./internal/profile ./internal/shard

# bench-engine regenerates BENCH_selection.json (the selection-engine perf
# trajectory; see DESIGN.md §7).
bench-engine:
	$(GO) run ./cmd/podium-bench -suite engine

# bench-server regenerates BENCH_server.json: snapshot serving vs the
# single-mutex baseline on a mixed read/write workload (DESIGN.md §8).
bench-server:
	$(GO) run ./cmd/podium-bench -suite server

# bench-campaign regenerates BENCH_campaign.json: procurement campaigns under
# a non-response sweep — rounds/sec, repair latency, and repaired vs
# no-repair coverage (DESIGN.md §9).
bench-campaign:
	$(GO) run ./cmd/podium-bench -suite campaign

# bench-faults regenerates BENCH_faults.json: hardening overhead, read
# throughput and tail latency under 0/1/5% injected fault rates, and the
# admission-control shed rate at writer overload (DESIGN.md §10).
bench-faults:
	$(GO) run ./cmd/podium-bench -suite faults

# bench-scale regenerates BENCH_scale.json: the columnar datapath at
# 10K/100K users — select latency, snapshot clone cost, v2 image load vs
# JSON decode, and resident size (DESIGN.md §12). Set PODIUM_SCALE_1M=1 to
# include the million-user tier (several minutes; needs ~4 GB).
bench-scale:
	$(GO) run ./cmd/podium-bench -suite scale

# bench-obs regenerates BENCH_obs.json: request/engine instrumentation
# overhead with observability enabled vs disabled (DESIGN.md §11).
bench-obs:
	$(GO) run ./cmd/podium-bench -suite obs

# bench-steady regenerates BENCH_steady.json: steady-state select throughput
# under a 1:10 write:read stream at 10K/100K users — the watermark-keyed
# select cache + delta-repaired selector state vs recompute-every-epoch
# (DESIGN.md §13).
bench-steady:
	$(GO) run ./cmd/podium-bench -suite steady

# bench-rules regenerates BENCH_rules.json: every registered selection rule
# timed on the 10K/100K-user scale instance — per-rule latency vs the default
# coverage rule, plus each rule's coverage/fairness trade-off (DESIGN.md §16).
bench-rules:
	$(GO) run ./cmd/podium-bench -suite rules

# bench-dist regenerates BENCH_dist.json: the sharded GreeDi two-round merge
# vs single-node exact greedy at 10K/100K users × S ∈ {1,4,16} — merge
# coverage loss, shard-loss degradation, and select/plan latency
# (DESIGN.md §14) — plus the replicated HTTP tier: a coordinator over R=1 vs
# R=2 replica groups behind ~5% fault injectors, p50/p99 over the wire, and
# coverage with one replica of every shard killed (DESIGN.md §15).
bench-dist:
	$(GO) run ./cmd/podium-bench -suite dist
