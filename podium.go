// Package podium is a framework for selecting diverse user subsets for
// opinion procurement, reproducing "Diverse User Selection for Opinion
// Procurement" (Amsterdamer & Goldreich, EDBT 2020).
//
// Given a repository of user profiles — sparse sets of properties with
// scores in [0,1] — Podium derives population groups by bucketing each
// property's score distribution (Definition 3.4), assigns them weights and
// coverage requirements (Definitions 3.6-3.7), and greedily selects a
// budget-bounded user subset whose total group-coverage score is within
// (1−1/e) of optimal (Proposition 4.4). Selections come with explanations
// (Section 5) and can be customized with must-have / must-not / priority
// group feedback (Section 6).
//
// Basic use:
//
//	repo := podium.NewRepository()
//	u := repo.AddUser("alice")
//	repo.SetScore(u, "livesIn Tokyo", 1)
//	...
//	p, err := podium.New(repo)
//	sel, err := p.Select(8)
//	sel.Report.Render(os.Stdout)
//
// The cmd/ directory contains the CLI tools and HTTP server; examples/
// contains runnable scenarios; DESIGN.md and EXPERIMENTS.md document the
// architecture and the reproduced evaluation.
package podium

import (
	"fmt"
	"io"

	"podium/internal/bucketing"
	"podium/internal/campaign"
	"podium/internal/core"
	"podium/internal/explain"
	"podium/internal/groups"
	"podium/internal/profile"
)

// Re-exported model types. Aliases keep the facade thin: the internal
// packages do the work, and external callers name everything as podium.X.
type (
	// UserID identifies a user in a Repository.
	UserID = profile.UserID
	// PropertyID identifies an interned property label.
	PropertyID = profile.PropertyID
	// Repository holds the user population and profiles (Section 3.1).
	Repository = profile.Repository
	// GroupID identifies a derived user group.
	GroupID = groups.GroupID
	// Group is a simple user group G_{p,b} (Definition 3.4).
	Group = groups.Group
	// Bucket is a score range b ⊆ [0,1].
	Bucket = bucketing.Bucket
	// Feedback is customization feedback (Definition 6.1).
	Feedback = core.Feedback
	// Report aggregates the explanations of a selection (Section 5).
	Report = explain.Report
	// WeightScheme selects Iden, LBS or EBS group weights.
	WeightScheme = groups.WeightScheme
	// CoverageScheme selects Single or Prop coverage.
	CoverageScheme = groups.CoverageScheme
	// Campaign is an asynchronous opinion-procurement campaign: multi-round
	// solicitation with timeout/backoff retries and coverage repair
	// (internal/campaign).
	Campaign = campaign.Campaign
	// CampaignConfig parameterizes a campaign; zero fields select defaults.
	CampaignConfig = campaign.Config
	// CampaignBehavior parameterizes the simulated population.
	CampaignBehavior = campaign.Behavior
)

// Weight and coverage scheme values (Definitions 3.6 and 3.7).
const (
	WeightIden  = groups.WeightIden
	WeightLBS   = groups.WeightLBS
	WeightEBS   = groups.WeightEBS
	CoverSingle = groups.CoverSingle
	CoverProp   = groups.CoverProp
)

// NewRepository returns an empty profile repository.
func NewRepository() *Repository { return profile.NewRepository() }

// LoadRepository parses the JSON profile format the prototype ingests:
// {"users":[{"name":...,"properties":{label:score,...}},...]}.
func LoadRepository(r io.Reader) (*Repository, error) { return profile.ReadJSON(r) }

// Option customizes a Podium instance.
type Option func(*options)

type options struct {
	groupCfg groups.Config
	weights  WeightScheme
	coverage CoverageScheme
	rule     string
	lazy     bool
	topK     int
}

// WithBuckets sets the number of score buckets per property (default 3:
// low/medium/high).
func WithBuckets(k int) Option { return func(o *options) { o.groupCfg.K = k } }

// WithBucketing selects the 1-d splitting method by name: equal-width,
// quantile, jenks, kmeans (default), em, kde-valleys.
func WithBucketing(name string) Option {
	return func(o *options) { o.groupCfg.Method = methodByName(name) }
}

// WithFixedCuts bucketizes every property at the given interior cut points
// (e.g. 0.4, 0.65 for the paper's low/medium/high example).
func WithFixedCuts(cuts ...float64) Option {
	return func(o *options) { o.groupCfg.Method = bucketing.Fixed{Interior: cuts} }
}

// WithMinGroupSize drops groups smaller than n users.
func WithMinGroupSize(n int) Option { return func(o *options) { o.groupCfg.MinGroupSize = n } }

// WithWeights selects the group weight scheme (default LBS).
func WithWeights(w WeightScheme) Option { return func(o *options) { o.weights = w } }

// WithCoverage selects the coverage scheme (default Single).
func WithCoverage(c CoverageScheme) Option { return func(o *options) { o.coverage = c } }

// WithLazyGreedy switches selection to the lazy-greedy variant (identical
// output, different work profile; see internal/core).
func WithLazyGreedy() Option { return func(o *options) { o.lazy = true } }

// WithRule selects the marginal-gain rule Select optimizes — one of
// RuleNames(): "coverage" (default, the paper's objective), "harmonic",
// "maxcov", or "fairness-floor". Unknown names error at New.
func WithRule(name string) Option { return func(o *options) { o.rule = name } }

// RuleNames lists the registered selection rules in wire order, the default
// coverage rule first.
func RuleNames() []string { return core.RuleNames() }

// WithTopK sets how many top-weight groups the report's headline coverage
// statistic considers (default 200, the paper's choice).
func WithTopK(k int) Option { return func(o *options) { o.topK = k } }

func methodByName(name string) bucketing.Method {
	switch name {
	case "equal-width":
		return bucketing.EqualWidth{}
	case "quantile":
		return bucketing.Quantile{}
	case "jenks":
		return bucketing.Jenks{}
	case "", "kmeans":
		return bucketing.KMeans{}
	case "em":
		return bucketing.EM{}
	case "kde-valleys":
		return bucketing.KDEValleys{}
	}
	panic(fmt.Sprintf("podium: unknown bucketing method %q", name))
}

// Podium is a configured selector over one repository. The group index is
// computed once at construction (the offline grouping module of Figure 1);
// Select and SelectCustom are read-only afterwards and safe for concurrent
// use.
type Podium struct {
	repo  *Repository
	index *groups.Index
	opts  options
	rule  *core.Rule
}

// New builds a Podium instance, running the grouping module over repo.
func New(repo *Repository, opts ...Option) (*Podium, error) {
	if repo == nil {
		return nil, fmt.Errorf("podium: nil repository")
	}
	o := options{weights: WeightLBS, coverage: CoverSingle, topK: 200}
	for _, opt := range opts {
		opt(&o)
	}
	rule, err := core.LookupRule(o.rule)
	if err != nil {
		return nil, fmt.Errorf("podium: %w", err)
	}
	if o.weights == WeightEBS && !rule.EBSCompatible() {
		return nil, fmt.Errorf("podium: rule %q does not support EBS weights", rule.Name())
	}
	return &Podium{
		repo:  repo,
		index: groups.Build(repo, o.groupCfg),
		opts:  o,
		rule:  rule,
	}, nil
}

// Repository returns the underlying repository.
func (p *Podium) Repository() *Repository { return p.repo }

// NumGroups returns the number of derived groups |𝒢|.
func (p *Podium) NumGroups() int { return p.index.NumGroups() }

// Groups returns all derived groups. Callers must not modify the slice.
func (p *Podium) Groups() []*Group { return p.index.Groups() }

// GroupLabel renders a group's human-readable label.
func (p *Podium) GroupLabel(id GroupID) string {
	return p.index.Group(id).Label(p.repo.Catalog())
}

// AddManualGroup registers a client-defined group (Section 3.2: manually
// crafted groups "as typically defined by surveyors"). The group joins the
// weight/coverage machinery of every subsequent selection and its label
// appears verbatim in explanations. The returned ID is usable in Feedback.
func (p *Podium) AddManualGroup(label string, users []UserID) (GroupID, error) {
	return p.index.AddManualGroup(label, users)
}

// AddIntersectionGroup materializes the intersection of existing groups as a
// first-class group (Example 3.5: "Tokyo residents who are also Mexican
// food lovers").
func (p *Podium) AddIntersectionGroup(ids ...GroupID) (GroupID, error) {
	return p.index.AddIntersection(ids...)
}

// GroupsOfProperty returns the group IDs derived from a property label, in
// bucket order, or nil when the label is unknown.
func (p *Podium) GroupsOfProperty(label string) []GroupID {
	pid, ok := p.repo.Catalog().Lookup(label)
	if !ok {
		return nil
	}
	return p.index.GroupsOfProperty(pid)
}

// Selection is the outcome of Select or SelectCustom.
type Selection struct {
	// Users holds the selected subset in selection order.
	Users []UserID
	// Names are the users' display names, aligned with Users.
	Names []string
	// Score is the selection's total score (Definition 3.3).
	Score float64
	// Report carries the Definition 5.1 explanations.
	Report *Report
	// PriorityScore and StandardScore decompose a customized selection's
	// score by feedback tier (zero for plain selections).
	PriorityScore, StandardScore float64
}

// Select solves BASE-DIVERSITY: pick at most budget users maximizing the
// total coverage score, via the (1−1/e) greedy of Algorithm 1.
func (p *Podium) Select(budget int) (*Selection, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("podium: budget must be positive, got %d", budget)
	}
	inst := groups.NewInstance(p.index, p.opts.weights, p.opts.coverage, budget)
	var res *core.Result
	var err error
	switch {
	case p.rule.IsDefault() && p.opts.lazy:
		res = core.LazyGreedy(inst, budget)
	case p.rule.IsDefault():
		res = core.Greedy(inst, budget)
	case p.opts.lazy:
		res, err = core.LazyGreedyRule(inst, budget, nil, p.rule, core.Options{})
	default:
		res, err = core.GreedyRule(inst, budget, p.rule, core.Options{})
	}
	if err != nil {
		return nil, fmt.Errorf("podium: %w", err)
	}
	return p.finish(inst, res, 0, 0), nil
}

// SelectCustom solves CUSTOM-DIVERSITY: selection under the given feedback
// (Section 6). Feedback group IDs must come from this instance's Groups.
func (p *Podium) SelectCustom(budget int, fb Feedback) (*Selection, error) {
	if budget <= 0 {
		return nil, fmt.Errorf("podium: budget must be positive, got %d", budget)
	}
	if !p.rule.IsDefault() {
		return nil, fmt.Errorf("podium: feedback customization supports only the default coverage rule (got %q)", p.rule.Name())
	}
	inst := groups.NewInstance(p.index, p.opts.weights, p.opts.coverage, budget)
	res, err := core.GreedyCustom(inst, fb, budget)
	if err != nil {
		return nil, err
	}
	return p.finish(inst, res.Result, res.PriorityScore, res.StandardScore), nil
}

// NewCampaign builds an opinion-procurement campaign over this instance's
// groups (weights and coverage from the Podium options, budget from cfg).
// walPath != "" journals the campaign there, resuming an interrupted run;
// "" keeps it in memory. Drive the returned campaign with Run, observe with
// Status/Transcript, stop with Cancel.
func (p *Podium) NewCampaign(cfg CampaignConfig, walPath string) (*Campaign, error) {
	if cfg.Budget <= 0 {
		return nil, fmt.Errorf("podium: campaign budget must be positive, got %d", cfg.Budget)
	}
	inst := groups.NewInstance(p.index, p.opts.weights, p.opts.coverage, cfg.Budget)
	if walPath == "" {
		return campaign.New(inst, nil, cfg), nil
	}
	return campaign.NewWithWAL(inst, nil, cfg, walPath)
}

func (p *Podium) finish(inst *groups.Instance, res *core.Result, prio, std float64) *Selection {
	sel := &Selection{
		Users:         res.Users,
		Score:         inst.Score(res.Users),
		Report:        explain.NewReport(inst, res, p.opts.topK),
		PriorityScore: prio,
		StandardScore: std,
	}
	for _, u := range res.Users {
		sel.Names = append(sel.Names, p.repo.UserName(u))
	}
	return sel
}

// Distribution compares a property's score distribution between the full
// population and a user subset: per bucket of β(p), the fraction of property
// holders (population) and of subset members (selection) in that bucket.
// The error names unknown property labels.
func (p *Podium) Distribution(label string, users []UserID) (all, subset []float64, buckets []Bucket, err error) {
	pid, ok := p.repo.Catalog().Lookup(label)
	if !ok {
		return nil, nil, nil, fmt.Errorf("podium: unknown property %q", label)
	}
	inst := groups.NewInstance(p.index, p.opts.weights, p.opts.coverage, 1)
	all, subset = explain.Distribution(inst, users, pid)
	return all, subset, p.index.Buckets(pid), nil
}
