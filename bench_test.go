package podium

// One benchmark per table/figure of the paper's evaluation (Section 8), plus
// micro-benchmarks of the hot paths. Each figure benchmark runs its
// experiment driver end-to-end on a scaled synthetic dataset and logs the
// resulting rows once (with -v), so `go test -bench=.` both times the
// pipeline and regenerates the figures' series. cmd/podium-bench prints the
// same tables standalone, with -scale to approach paper-scale datasets.

import (
	"bytes"
	"sync"
	"testing"

	"podium/internal/baselines"
	"podium/internal/core"
	"podium/internal/experiments"
	"podium/internal/groups"
	"podium/internal/synth"
)

const (
	benchTAUsers   = 400
	benchYelpUsers = 600
	benchBudget    = 8
)

var (
	benchOnce sync.Once
	benchTA   *synth.Dataset
	benchYelp *synth.Dataset
)

func benchDatasets() (*synth.Dataset, *synth.Dataset) {
	benchOnce.Do(func() {
		benchTA = synth.Generate(synth.TripAdvisorLike(benchTAUsers))
		benchYelp = synth.Generate(synth.YelpLike(benchYelpUsers))
	})
	return benchTA, benchYelp
}

func logTable(b *testing.B, t *experiments.Table) {
	b.Helper()
	var buf bytes.Buffer
	t.Render(&buf)
	b.Log("\n" + buf.String())
}

// E1 — Figure 3a: TripAdvisor intrinsic diversity.
func BenchmarkFig3aTripAdvisorIntrinsic(b *testing.B) {
	ta, _ := benchDatasets()
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunIntrinsic(experiments.IntrinsicConfig{Dataset: ta, Seed: 7, Budget: benchBudget})
	}
	logTable(b, tab.Normalized())
}

// E2 — Figure 3b: TripAdvisor opinion diversity.
func BenchmarkFig3bTripAdvisorOpinion(b *testing.B) {
	ta, _ := benchDatasets()
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunOpinion(experiments.OpinionConfig{Dataset: ta, Seed: 7, Budget: benchBudget})
	}
	logTable(b, tab.Normalized())
}

// E3 — Figure 3c: Yelp intrinsic diversity.
func BenchmarkFig3cYelpIntrinsic(b *testing.B) {
	_, yl := benchDatasets()
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunIntrinsic(experiments.IntrinsicConfig{Dataset: yl, Seed: 7, Budget: benchBudget})
	}
	logTable(b, tab.Normalized())
}

// E4 — Figure 3d: Yelp opinion diversity (adds the usefulness metric).
func BenchmarkFig3dYelpOpinion(b *testing.B) {
	_, yl := benchDatasets()
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunOpinion(experiments.OpinionConfig{
			Dataset: yl, Seed: 7, Budget: benchBudget, IncludeUsefulness: true, Destinations: 130,
		})
	}
	logTable(b, tab.Normalized())
}

// E5 — Figure 4: the effect of priority-coverage customization.
func BenchmarkFig4Customization(b *testing.B) {
	_, yl := benchDatasets()
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunCustomization(experiments.CustomizationConfig{
			Dataset: yl, Seed: 11, Budget: benchBudget, Repetitions: 5,
		})
	}
	logTable(b, tab)
}

// E6 — Figure 5: scalability in the number of users.
func BenchmarkFig5ScalabilityUsers(b *testing.B) {
	cfg := experiments.ScalabilityConfig{
		Budget: benchBudget, Seed: 5, UserCounts: []int{100, 200, 400, 800},
	}
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunScalabilityUsers(cfg)
	}
	logTable(b, tab)
}

// E7 — Figure 6: scalability in profile size.
func BenchmarkFig6ScalabilityProfile(b *testing.B) {
	cfg := experiments.ScalabilityConfig{
		Budget: benchBudget, Seed: 5, ProfileProps: []int{25, 50, 100, 200}, FixedUsers: 400,
	}
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunScalabilityProfile(cfg)
	}
	logTable(b, tab)
}

// E8 — §8.4: greedy-versus-optimal approximation ratio.
func BenchmarkApproxRatio(b *testing.B) {
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunApproxRatio(experiments.ApproxConfig{Users: 40, Budget: 5, Seed: 3, Repetitions: 2})
	}
	logTable(b, tab)
}

// E10 — ablations over the design choices DESIGN.md calls out.
func BenchmarkAblationBucketing(b *testing.B) {
	ta, _ := benchDatasets()
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunBucketingAblation(experiments.AblationConfig{Dataset: ta, Budget: benchBudget})
	}
	logTable(b, tab)
}

func BenchmarkAblationSchemes(b *testing.B) {
	ta, _ := benchDatasets()
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunSchemeAblation(experiments.AblationConfig{Dataset: ta, Budget: benchBudget})
	}
	logTable(b, tab)
}

func BenchmarkAblationEagerVsLazy(b *testing.B) {
	ta, _ := benchDatasets()
	b.ResetTimer()
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.RunLazyAblation(experiments.AblationConfig{Dataset: ta, Budget: benchBudget})
	}
	logTable(b, tab)
}

// --- Micro-benchmarks of the hot paths ---

func benchIndex(b *testing.B) *groups.Index {
	ta, _ := benchDatasets()
	return groups.Build(ta.Repo, groups.Config{K: 3})
}

// BenchmarkGroupBuild times the offline grouping module.
func BenchmarkGroupBuild(b *testing.B) {
	ta, _ := benchDatasets()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		groups.Build(ta.Repo, groups.Config{K: 3})
	}
}

// BenchmarkGreedyEager times Algorithm 1 proper (the CSR engine).
func BenchmarkGreedyEager(b *testing.B) {
	ix := benchIndex(b)
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, benchBudget)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Greedy(inst, benchBudget)
	}
}

// BenchmarkGreedyReference times the preserved seed implementation, the
// fixed baseline the engine's allocation and speedup wins are measured
// against (see cmd/podium-bench engine / BENCH_selection.json).
func BenchmarkGreedyReference(b *testing.B) {
	ix := benchIndex(b)
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, benchBudget)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.ReferenceGreedy(inst, benchBudget, nil)
	}
}

// BenchmarkGreedyParallel times the engine with every CPU's worth of
// workers; output is bit-identical to BenchmarkGreedyEager's.
func BenchmarkGreedyParallel(b *testing.B) {
	ix := benchIndex(b)
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, benchBudget)
	opt := core.DefaultParallel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.GreedyOpts(inst, benchBudget, opt)
	}
}

// BenchmarkGreedyLazy times the lazy variant on the same instance.
func BenchmarkGreedyLazy(b *testing.B) {
	ix := benchIndex(b)
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, benchBudget)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.LazyGreedy(inst, benchBudget)
	}
}

// BenchmarkGreedyEBS times the exact rank-vector EBS path.
func BenchmarkGreedyEBS(b *testing.B) {
	ix := benchIndex(b)
	inst := groups.NewInstance(ix, groups.WeightEBS, groups.CoverSingle, benchBudget)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Greedy(inst, benchBudget)
	}
}

// BenchmarkGreedyCustomRestricted times the CUSTOM-DIVERSITY path, whose
// refined population exercises the engine's compacted candidate list.
func BenchmarkGreedyCustomRestricted(b *testing.B) {
	ix := benchIndex(b)
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, benchBudget)
	top := ix.TopKBySize(6)
	fb := core.Feedback{MustHave: top[:1], Priority: top[1:3]}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyCustom(inst, fb, benchBudget); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistanceBaseline times the S-Model greedy.
func BenchmarkDistanceBaseline(b *testing.B) {
	ix := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.Distance{}.Select(ix, benchBudget)
	}
}

// BenchmarkClusteringBaseline times sparse k-means selection; the paper
// reports it ~9× slower than Podium.
func BenchmarkClusteringBaseline(b *testing.B) {
	ix := benchIndex(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselines.Clustering{Seed: 1}.Select(ix, benchBudget)
	}
}

// BenchmarkFacadeSelect times the public API end to end (grouping included).
func BenchmarkFacadeSelect(b *testing.B) {
	ta, _ := benchDatasets()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := New(ta.Repo)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := p.Select(benchBudget); err != nil {
			b.Fatal(err)
		}
	}
}
