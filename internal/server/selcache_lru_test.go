package server

import (
	"bytes"
	"net/http"
	"testing"
)

// TestSelectCacheLRUEviction shrinks the caps and drives distinct select
// shapes past them: the least-recently-used entry is the one evicted, a
// re-request of an evicted shape recomputes correctly, and the eviction
// counters advance. Touched entries survive — recency, not insertion order,
// decides the victim.
func TestSelectCacheLRUEviction(t *testing.T) {
	defer func(e, s int) { maxSelCacheEntries, maxSelCacheStates = e, s }(
		maxSelCacheEntries, maxSelCacheStates)
	maxSelCacheEntries, maxSelCacheStates = 2, 1

	s := newTestServer(t)
	sel := func(body string) *bytes.Buffer {
		rec := doJSON(t, s, http.MethodPost, "/api/select", body, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("select %s: %d: %s", body, rec.Code, rec.Body.String())
		}
		return rec.Body
	}

	a1 := sel(`{"budget":1}`) // miss, insert A     → [A]
	sel(`{"budget":2}`)       // miss, insert B     → [B A]
	before := s.SelectCacheStats()
	a2 := sel(`{"budget":1}`) // hit, A to front    → [A B]
	sel(`{"budget":3}`)       // miss, evicts B     → [C A]
	a3 := sel(`{"budget":1}`) // hit: A survived    → [A C]
	sel(`{"budget":2}`)       // miss: B was evicted
	after := s.SelectCacheStats()

	if !bytes.Equal(a1.Bytes(), a2.Bytes()) || !bytes.Equal(a1.Bytes(), a3.Bytes()) {
		t.Fatal("cached and post-eviction responses for the same request differ")
	}
	if hits := after.Hits - before.Hits; hits != 2 {
		t.Fatalf("LRU-touched entry scored %d hits, want 2", hits)
	}
	if ev := after.EntryEvictions - before.EntryEvictions; ev != 2 {
		t.Fatalf("entry evictions = %d, want 2 (B twice)", ev)
	}
	// Budgets are part of the state key, so with a single state slot every
	// budget switch above evicted the previous selector state.
	if after.StateEvicts == before.StateEvicts {
		t.Fatal("state evictions did not advance despite cap 1 and 3 budgets")
	}
	if after.Entries > maxSelCacheEntries {
		t.Fatalf("entries = %d exceeds cap %d", after.Entries, maxSelCacheEntries)
	}
}

// TestSelectCacheEvictionMetric: the evictions surface as the
// podium_select_cache_evictions family with a kind label.
func TestSelectCacheEvictionMetric(t *testing.T) {
	defer func(e int) { maxSelCacheEntries = e }(maxSelCacheEntries)
	maxSelCacheEntries = 1

	s := newTestServer(t)
	doJSON(t, s, http.MethodPost, "/api/select", `{"budget":1}`, nil)
	doJSON(t, s, http.MethodPost, "/api/select", `{"budget":2}`, nil)

	rec := doJSON(t, s, http.MethodGet, "/api/v1/metrics", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if !bytes.Contains(rec.Body.Bytes(), []byte(`podium_select_cache_evictions{kind="entry"} 1`)) {
		t.Fatalf("metrics missing eviction counter:\n%s", rec.Body.String())
	}
}
