package server

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"
)

type campaignView struct {
	ID       int     `json:"id"`
	Epoch    uint64  `json:"epoch"`
	State    string  `json:"state"`
	Budget   int     `json:"budget"`
	Round    int     `json:"round"`
	Accepted []int   `json:"accepted"`
	Coverage float64 `json:"coverage"`
	Rounds   []struct {
		Round    int   `json:"round"`
		Repaired bool  `json:"repaired"`
		Selected []int `json:"selected"`
		Waves    []struct {
			Attempt  int `json:"attempt"`
			Answered int `json:"answered"`
		} `json:"waves"`
	} `json:"rounds"`
	Error string `json:"error"`
}

// waitCampaign blocks until campaign id reaches a terminal state (the
// orchestrator goroutine owns completion, so tests poll like clients would).
func waitCampaign(t *testing.T, s *Server, id int) {
	t.Helper()
	s.camps.mu.Lock()
	rc, ok := s.camps.byID[id]
	s.camps.mu.Unlock()
	if !ok {
		t.Fatalf("campaign %d not registered", id)
	}
	select {
	case <-rc.c.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("campaign %d did not finish", id)
	}
}

func TestCampaignEndpointLifecycle(t *testing.T) {
	s := newTestServer(t)

	var created campaignView
	rec := doJSON(t, s, http.MethodPost, "/api/campaigns", `{"budget":2,"seed":17}`, &created)
	if rec.Code != http.StatusOK {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body.String())
	}
	if created.ID != 1 || created.Budget != 2 {
		t.Fatalf("created %+v", created)
	}
	waitCampaign(t, s, created.ID)

	var got campaignView
	rec = doJSON(t, s, http.MethodGet, fmt.Sprintf("/api/campaigns/%d", created.ID), "", &got)
	if rec.Code != http.StatusOK {
		t.Fatalf("get = %d: %s", rec.Code, rec.Body.String())
	}
	if got.State != "converged" && got.State != "exhausted" {
		t.Fatalf("terminal state = %q (%+v)", got.State, got)
	}
	if got.Error != "" {
		t.Fatalf("campaign error: %s", got.Error)
	}
	if got.State == "converged" && len(got.Accepted) != 2 {
		t.Fatalf("converged with %d accepted, want 2", len(got.Accepted))
	}
	if len(got.Rounds) == 0 || len(got.Rounds[0].Waves) == 0 {
		t.Fatalf("detail view missing transcript: %+v", got)
	}
	if got.Rounds[0].Repaired {
		t.Fatal("first round marked repaired")
	}

	var list []campaignView
	rec = doJSON(t, s, http.MethodGet, "/api/campaigns", "", &list)
	if rec.Code != http.StatusOK || len(list) != 1 || list[0].ID != created.ID {
		t.Fatalf("list = %d %+v", rec.Code, list)
	}
	if len(list[0].Rounds) != 0 {
		t.Fatal("summary view leaked the transcript")
	}
}

func TestCampaignEndpointValidation(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		body string
		want int
	}{
		{`{"weights":"bogus"}`, http.StatusBadRequest},
		{`{"coverage":"bogus"}`, http.StatusBadRequest},
		{`{"time_scale":2.0}`, http.StatusBadRequest},
		{`{"unknown_field":1}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if rec := doJSON(t, s, http.MethodPost, "/api/campaigns", tc.body, nil); rec.Code != tc.want {
			t.Fatalf("POST %s = %d, want %d", tc.body, rec.Code, tc.want)
		}
	}
	if rec := doJSON(t, s, http.MethodGet, "/api/campaigns/999", "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown id = %d", rec.Code)
	}
	// A non-numeric id is no such resource, not a malformed request: the
	// route table matches the path shape, so the id is just an unknown name.
	if rec := doJSON(t, s, http.MethodGet, "/api/campaigns/abc", "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("non-numeric id = %d", rec.Code)
	}
	// Trailing garbage after the id is not a campaign path at all.
	if rec := doJSON(t, s, http.MethodGet, "/api/campaigns/1garbage", "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("trailing-garbage id = %d", rec.Code)
	}
	if rec := doJSON(t, s, http.MethodDelete, "/api/campaigns", "", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE collection = %d", rec.Code)
	}
}

func TestCampaignEndpointCancel(t *testing.T) {
	s := newTestServer(t)
	// time_scale slows simulated latency to wall clock so the cancel lands
	// while the campaign is still soliciting.
	var created campaignView
	body := `{"budget":2,"seed":5,"time_scale":1.0,"mean_latency_ms":2000,"timeout_ms":3000}`
	rec := doJSON(t, s, http.MethodPost, "/api/campaigns", body, &created)
	if rec.Code != http.StatusOK {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body.String())
	}
	rec = doJSON(t, s, http.MethodPost, fmt.Sprintf("/api/campaigns/%d/cancel", created.ID), "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel = %d: %s", rec.Code, rec.Body.String())
	}
	waitCampaign(t, s, created.ID)
	var got campaignView
	doJSON(t, s, http.MethodGet, fmt.Sprintf("/api/campaigns/%d", created.ID), "", &got)
	if got.State != "cancelled" {
		t.Fatalf("state after cancel = %q", got.State)
	}
	if rec := doJSON(t, s, http.MethodGet, fmt.Sprintf("/api/campaigns/%d/cancel", created.ID), "", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET cancel = %d", rec.Code)
	}
}

func TestCampaignEndpointWALDir(t *testing.T) {
	s := newTestServer(t)
	dir := t.TempDir()
	s.SetCampaignDir(dir)
	var created campaignView
	rec := doJSON(t, s, http.MethodPost, "/api/campaigns", `{"budget":2,"seed":9}`, &created)
	if rec.Code != http.StatusOK {
		t.Fatalf("create = %d: %s", rec.Code, rec.Body.String())
	}
	waitCampaign(t, s, created.ID)
	data, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("campaign-%d.wal", created.ID)))
	if err != nil {
		t.Fatalf("campaign WAL missing: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("campaign WAL empty")
	}
}
