package server

import (
	"bytes"
	"net/http"
	"testing"
)

// TestSelectCachePrettyVariant: ?pretty=1 and compact responses are distinct
// cache entries — the pretty bytes must be indented, the compact ones must
// not, and serving one shape must never satisfy a request for the other
// (the regression this key field exists for). Repeats of each shape hit.
func TestSelectCachePrettyVariant(t *testing.T) {
	s := newTestServer(t)

	compact := doJSON(t, s, http.MethodPost, "/api/select", `{"budget":2}`, nil)
	pretty := doJSON(t, s, http.MethodPost, "/api/select?pretty=1", `{"budget":2}`, nil)
	if compact.Code != http.StatusOK || pretty.Code != http.StatusOK {
		t.Fatalf("select codes: compact %d, pretty %d", compact.Code, pretty.Code)
	}
	if bytes.Contains(compact.Body.Bytes(), []byte("\n  ")) {
		t.Fatal("compact response contains indentation")
	}
	if !bytes.Contains(pretty.Body.Bytes(), []byte("\n  ")) {
		t.Fatal("pretty response is not indented")
	}
	if bytes.Equal(compact.Body.Bytes(), pretty.Body.Bytes()) {
		t.Fatal("pretty and compact requests served identical bytes")
	}

	// Both shapes decode to the same payload.
	var a, b map[string]interface{}
	decodeBody(t, compact, &a)
	decodeBody(t, pretty, &b)
	if len(a) != len(b) || a["score"] != b["score"] {
		t.Fatalf("pretty and compact payloads differ: %v vs %v", a, b)
	}

	// Repeats of each shape are cache hits serving the same bytes.
	before := s.SelectCacheStats()
	c2 := doJSON(t, s, http.MethodPost, "/api/select", `{"budget":2}`, nil)
	p2 := doJSON(t, s, http.MethodPost, "/api/select?pretty=1", `{"budget":2}`, nil)
	after := s.SelectCacheStats()
	if !bytes.Equal(c2.Body.Bytes(), compact.Body.Bytes()) || !bytes.Equal(p2.Body.Bytes(), pretty.Body.Bytes()) {
		t.Fatal("repeat requests served different bytes")
	}
	if hits := after.Hits - before.Hits; hits != 2 {
		t.Fatalf("repeat requests scored %d hits, want 2 (misses %d→%d)", hits, before.Misses, after.Misses)
	}
}

// TestSelectCacheWatermark drives the full invalidation model through a live
// server: repeats hit; a selection-irrelevant write (same-bucket score
// rewrite) publishes a new epoch that still hits; a bucket-moving write
// misses; and the post-churn cached response is byte-identical to what the
// recompute-every-epoch baseline (cache disabled) produces.
func TestSelectCacheWatermark(t *testing.T) {
	ms, _ := newMutable(t)
	for _, body := range []string{
		`{"name":"A","properties":{"p":0.05,"q":0.9}}`,
		`{"name":"B","properties":{"p":0.5,"q":0.2}}`,
		`{"name":"C","properties":{"p":0.95}}`,
		`{"name":"D","properties":{"q":0.55}}`,
	} {
		if rec := doMutable(t, ms, http.MethodPost, "/api/users", body, nil); rec.Code != http.StatusOK {
			t.Fatalf("seed: %d: %s", rec.Code, rec.Body.String())
		}
	}
	sel := func() []byte {
		t.Helper()
		rec := doMutable(t, ms, http.MethodPost, "/api/select", `{"budget":2}`, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("select: %d: %s", rec.Code, rec.Body.String())
		}
		return rec.Body.Bytes()
	}

	first := sel()
	st0 := ms.SelectCacheStats()
	if st0.Misses == 0 {
		t.Fatal("first select did not miss")
	}
	if !bytes.Equal(sel(), first) {
		t.Fatal("repeat select changed bytes on an unchanged population")
	}
	st1 := ms.SelectCacheStats()
	if st1.Hits != st0.Hits+1 {
		t.Fatalf("repeat select: hits %d→%d, want +1", st0.Hits, st1.Hits)
	}

	// Same-bucket rewrite: user A's p stays at its current value. The batch
	// publishes a new epoch, but nothing selection-relevant moved — the
	// cached entry must ride through.
	epochBefore := ms.Snapshot().Epoch()
	if rec := doMutable(t, ms, http.MethodPost, "/api/scores", `{"user":0,"label":"p","score":0.05}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("same-bucket write: %d: %s", rec.Code, rec.Body.String())
	}
	if e := ms.Snapshot().Epoch(); e == epochBefore {
		t.Fatal("same-bucket write did not publish a new epoch")
	}
	if !bytes.Equal(sel(), first) {
		t.Fatal("select changed after a selection-irrelevant write")
	}
	st2 := ms.SelectCacheStats()
	if st2.Hits != st1.Hits+1 || st2.Misses != st1.Misses {
		t.Fatalf("same-bucket write evicted the cache: hits %d→%d misses %d→%d",
			st1.Hits, st2.Hits, st1.Misses, st2.Misses)
	}

	// Selection-relevant writes: a brand-new property (bucketed live — a
	// reshape) and a new user (new adjacency rows). The watermark advances
	// and the next select must recompute.
	if rec := doMutable(t, ms, http.MethodPost, "/api/scores", `{"user":0,"label":"r","score":0.8}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("new-property write: %d: %s", rec.Code, rec.Body.String())
	}
	if rec := doMutable(t, ms, http.MethodPost, "/api/users", `{"name":"E","properties":{"p":0.4,"q":0.6}}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("late user add: %d: %s", rec.Code, rec.Body.String())
	}
	moved := sel()
	st3 := ms.SelectCacheStats()
	if st3.Misses != st2.Misses+1 {
		t.Fatalf("relevant writes not invalidated: misses %d→%d", st2.Misses, st3.Misses)
	}

	// The repaired response must be byte-identical to the baseline: disable
	// the cache (recompute-every-epoch path) and compare.
	ms.SetSelectCacheEnabled(false)
	baseline := sel()
	ms.SetSelectCacheEnabled(true)
	if !bytes.Equal(moved, baseline) {
		t.Fatalf("cached select diverged from baseline:\ncached:   %s\nbaseline: %s", moved, baseline)
	}
	if !bytes.Equal(sel(), baseline) {
		t.Fatal("re-enabled cache serves bytes differing from baseline")
	}
}

// TestSelectCacheFeedback: feedback-restricted selections are cached on their
// canonicalized feedback key — repeats hit, distinct feedback sets are
// distinct entries, and the feedback-free entry is never served for a
// feedback request (or vice versa). Invalid feedback stays a 400 and is never
// cached.
func TestSelectCacheFeedback(t *testing.T) {
	s := newTestServer(t)

	free := doJSON(t, s, http.MethodPost, "/api/select", `{"budget":2}`, nil)
	fb := doJSON(t, s, http.MethodPost, "/api/select", `{"budget":2,"feedback":{"priority":[0],"standard_explicit":true}}`, nil)
	if free.Code != http.StatusOK || fb.Code != http.StatusOK {
		t.Fatalf("codes: free %d, feedback %d", free.Code, fb.Code)
	}
	if bytes.Equal(free.Body.Bytes(), fb.Body.Bytes()) {
		t.Fatal("feedback select served the feedback-free entry")
	}

	before := s.SelectCacheStats()
	fb2 := doJSON(t, s, http.MethodPost, "/api/select", `{"budget":2,"feedback":{"priority":[0],"standard_explicit":true}}`, nil)
	after := s.SelectCacheStats()
	if !bytes.Equal(fb2.Body.Bytes(), fb.Body.Bytes()) {
		t.Fatal("repeat feedback select changed bytes")
	}
	if after.Hits != before.Hits+1 {
		t.Fatalf("repeat feedback select did not hit: hits %d→%d", before.Hits, after.Hits)
	}

	// A different restriction is a different entry, not a wrong answer.
	other := doJSON(t, s, http.MethodPost, "/api/select", `{"budget":2,"feedback":{"must_not":[0]}}`, nil)
	if other.Code != http.StatusOK {
		t.Fatalf("must_not select: %d: %s", other.Code, other.Body.String())
	}

	// Invalid feedback: 400 every time, never cached into a poisoned entry.
	for i := 0; i < 2; i++ {
		if rec := doJSON(t, s, http.MethodPost, "/api/select", `{"budget":2,"feedback":{"priority":[999]}}`, nil); rec.Code != http.StatusBadRequest {
			t.Fatalf("invalid feedback attempt %d: code %d", i, rec.Code)
		}
	}
}

// TestSelectCacheDisabled: with the cache off, selects fall back to the
// per-epoch snapshot memoization, stay correct, and touch no cache counters.
func TestSelectCacheDisabled(t *testing.T) {
	s := newTestServer(t)
	s.SetSelectCacheEnabled(false)
	before := s.SelectCacheStats()
	a := doJSON(t, s, http.MethodPost, "/api/select", `{"budget":2}`, nil)
	b := doJSON(t, s, http.MethodPost, "/api/select", `{"budget":2}`, nil)
	if a.Code != http.StatusOK || !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
		t.Fatalf("disabled-cache selects: codes %d/%d, identical=%t", a.Code, b.Code, bytes.Equal(a.Body.Bytes(), b.Body.Bytes()))
	}
	after := s.SelectCacheStats()
	if after.Hits != before.Hits || after.Misses != before.Misses {
		t.Fatalf("disabled cache still counted traffic: %+v → %+v", before, after)
	}
	s.SetSelectCacheEnabled(true)
	if rec := doJSON(t, s, http.MethodPost, "/api/select", `{"budget":2}`, nil); rec.Code != http.StatusOK || !bytes.Equal(rec.Body.Bytes(), a.Body.Bytes()) {
		t.Fatal("re-enabled cache diverged from the snapshot-memoized response")
	}
}
