package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"podium/internal/bucketing"
	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/profile"
)

// TestRulesEndpoint: GET /api/v1/rules mirrors the core registry row for row —
// same names in the same wire order, same descriptions, exactly one row
// marked default and it is "coverage".
func TestRulesEndpoint(t *testing.T) {
	s := newTestServer(t)
	var rows []struct {
		Name        string `json:"name"`
		Description string `json:"description"`
		Default     bool   `json:"default"`
	}
	rec := doJSON(t, s, http.MethodGet, "/api/v1/rules", "", &rows)
	if rec.Code != http.StatusOK {
		t.Fatalf("rules = %d: %s", rec.Code, rec.Body.String())
	}
	reg := core.Rules()
	if len(rows) != len(reg) {
		t.Fatalf("rules endpoint returned %d rows, registry has %d", len(rows), len(reg))
	}
	defaults := 0
	for i, row := range rows {
		if row.Name != reg[i].Name() || row.Description != reg[i].Description() {
			t.Fatalf("row %d = %+v, registry has %s / %s", i, row, reg[i].Name(), reg[i].Description())
		}
		if row.Default {
			defaults++
			if row.Name != "coverage" {
				t.Fatalf("default rule reported as %q, want coverage", row.Name)
			}
		}
	}
	if defaults != 1 {
		t.Fatalf("%d rows marked default, want exactly 1", defaults)
	}
	if rec := doJSON(t, s, http.MethodPost, "/api/v1/rules", "", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST rules = %d, want 405", rec.Code)
	}
}

// TestSelectDefaultRuleByteIdentity: naming the default rule explicitly — in
// any case — must serve byte-identical responses to omitting the field, and
// the default response must not grow a "rule" key (the wire-compat guarantee
// this redesign is gated on). A non-default rule, by contrast, must announce
// itself.
func TestSelectDefaultRuleByteIdentity(t *testing.T) {
	s := newTestServer(t)
	base := doJSON(t, s, http.MethodPost, "/api/v1/select", `{"budget":2}`, nil)
	if base.Code != http.StatusOK {
		t.Fatalf("select = %d: %s", base.Code, base.Body.String())
	}
	if bytes.Contains(base.Body.Bytes(), []byte(`"rule"`)) {
		t.Fatal("default select response contains a rule field")
	}
	for _, spelled := range []string{"coverage", "Coverage", "COVERAGE"} {
		rec := doJSON(t, s, http.MethodPost, "/api/v1/select", `{"budget":2,"rule":"`+spelled+`"}`, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("select rule=%s = %d: %s", spelled, rec.Code, rec.Body.String())
		}
		if !bytes.Equal(rec.Body.Bytes(), base.Body.Bytes()) {
			t.Fatalf("rule=%q served different bytes than the bare default:\n%s\nvs\n%s",
				spelled, rec.Body.String(), base.Body.String())
		}
	}
	var got struct {
		Rule string `json:"rule"`
	}
	rec := doJSON(t, s, http.MethodPost, "/api/v1/select", `{"budget":2,"rule":"harmonic"}`, &got)
	if rec.Code != http.StatusOK {
		t.Fatalf("select rule=harmonic = %d: %s", rec.Code, rec.Body.String())
	}
	if got.Rule != "harmonic" {
		t.Fatalf("harmonic response rule field = %q, want harmonic", got.Rule)
	}
}

// TestSelectUnknownRule: an unregistered rule is a 400 in the unified error
// envelope, and the message lists every registered rule so the client can
// self-correct without a second round trip.
func TestSelectUnknownRule(t *testing.T) {
	s := newTestServer(t)
	rec := doJSON(t, s, http.MethodPost, "/api/v1/select", `{"budget":2,"rule":"nope"}`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown rule = %d, want 400: %s", rec.Code, rec.Body.String())
	}
	if code := errEnvelope(t, rec); code != "invalid_argument" {
		t.Fatalf("unknown rule error code = %q", code)
	}
	var env struct {
		Error struct {
			Message string `json:"message"`
		} `json:"error"`
	}
	decodeBody(t, rec, &env)
	if !strings.Contains(env.Error.Message, `"nope"`) {
		t.Fatalf("error message does not echo the bad rule: %s", env.Error.Message)
	}
	for _, name := range core.RuleNames() {
		if !strings.Contains(env.Error.Message, name) {
			t.Fatalf("error message does not list registered rule %q: %s", name, env.Error.Message)
		}
	}
}

// TestSelectCacheRuleCollision: the cross-rule collision regression — the same
// (weights, coverage, budget, topK) under different rules must be distinct
// cache entries. Serving rule A's pre-marshaled bytes for rule B would be
// silent wrong answers; here every rule's repeat must reproduce its own first
// response and score a hit.
func TestSelectCacheRuleCollision(t *testing.T) {
	s := newTestServer(t)
	names := core.RuleNames()
	first := make(map[string][]byte, len(names))
	for _, name := range names {
		rec := doJSON(t, s, http.MethodPost, "/api/v1/select", `{"budget":2,"rule":"`+name+`"}`, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("select rule=%s = %d: %s", name, rec.Code, rec.Body.String())
		}
		first[name] = append([]byte(nil), rec.Body.Bytes()...)
	}
	// Non-default responses carry their rule name, so any cross-rule
	// collision shows up as a byte mismatch on the repeat pass.
	before := s.SelectCacheStats()
	for _, name := range names {
		rec := doJSON(t, s, http.MethodPost, "/api/v1/select", `{"budget":2,"rule":"`+name+`"}`, nil)
		if !bytes.Equal(rec.Body.Bytes(), first[name]) {
			t.Fatalf("repeat select rule=%s changed bytes:\n%s\nvs\n%s", name, rec.Body.String(), first[name])
		}
	}
	after := s.SelectCacheStats()
	if hits := after.Hits - before.Hits; hits != uint64(len(names)) {
		t.Fatalf("repeat selects scored %d hits, want %d", hits, len(names))
	}
	for i, a := range names {
		for _, b := range names[i+1:] {
			if bytes.Equal(first[a], first[b]) {
				t.Fatalf("rules %s and %s served identical bytes — cache entries collided", a, b)
			}
		}
	}
}

// TestSelectCacheRuleMetrics: the select-cache request counter is labeled by
// rule, so per-rule hit rates are observable on /api/v1/metrics.
func TestSelectCacheRuleMetrics(t *testing.T) {
	s := newTestServer(t)
	for i := 0; i < 2; i++ {
		doJSON(t, s, http.MethodPost, "/api/v1/select", `{"budget":2}`, nil)
		doJSON(t, s, http.MethodPost, "/api/v1/select", `{"budget":2,"rule":"harmonic"}`, nil)
	}
	rec := doJSON(t, s, http.MethodGet, "/api/v1/metrics", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`podium_select_cache_requests_total{result="miss",rule="coverage"} 1`,
		`podium_select_cache_requests_total{result="hit",rule="coverage"} 1`,
		`podium_select_cache_requests_total{result="miss",rule="harmonic"} 1`,
		`podium_select_cache_requests_total{result="hit",rule="harmonic"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

// TestSelectRuleEBSGate: EBS weights run exact rank arithmetic that only the
// coverage credit schedule (and maxcov, which never reads weights) supports —
// the incompatible rules must 400 up front, not mis-select.
func TestSelectRuleEBSGate(t *testing.T) {
	s := newTestServer(t)
	for _, tc := range []struct {
		rule string
		code int
	}{
		{"coverage", http.StatusOK},
		{"maxcov", http.StatusOK},
		{"harmonic", http.StatusBadRequest},
		{"fairness-floor", http.StatusBadRequest},
	} {
		rec := doJSON(t, s, http.MethodPost, "/api/v1/select", `{"budget":2,"weights":"ebs","rule":"`+tc.rule+`"}`, nil)
		if rec.Code != tc.code {
			t.Fatalf("ebs select rule=%s = %d, want %d: %s", tc.rule, rec.Code, tc.code, rec.Body.String())
		}
		if tc.code == http.StatusBadRequest {
			if code := errEnvelope(t, rec); code != "invalid_argument" {
				t.Fatalf("ebs gate error code = %q", code)
			}
			if !strings.Contains(rec.Body.String(), "EBS") {
				t.Fatalf("ebs gate message does not mention EBS: %s", rec.Body.String())
			}
		}
	}
}

// TestSelectRuleFeedbackGate: feedback refinement is defined on the coverage
// objective only; combining it with another rule is a 400, not a silently
// coverage-scored selection labeled with the other rule's name.
func TestSelectRuleFeedbackGate(t *testing.T) {
	s := newTestServer(t)
	rec := doJSON(t, s, http.MethodPost, "/api/v1/select",
		`{"budget":2,"rule":"maxcov","feedback":{"priority":[0],"standard_explicit":true}}`, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("feedback+maxcov = %d, want 400: %s", rec.Code, rec.Body.String())
	}
	if code := errEnvelope(t, rec); code != "invalid_argument" {
		t.Fatalf("feedback gate error code = %q", code)
	}
}

// TestSelectConfigRule: a named configuration can pin a rule; an explicit
// request rule still wins over the configured one.
func TestSelectConfigRule(t *testing.T) {
	repo := profile.PaperExample()
	cfg := groups.Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3}
	s := New("paper-example", repo, cfg, []NamedConfig{{
		Name:    "Spread",
		Budget:  2,
		Weights: "LBS",
		Rule:    "maxcov",
	}})
	var got struct {
		Rule string `json:"rule"`
	}
	rec := doJSON(t, s, http.MethodPost, "/api/v1/select", `{"config":"Spread"}`, &got)
	if rec.Code != http.StatusOK {
		t.Fatalf("config select = %d: %s", rec.Code, rec.Body.String())
	}
	if got.Rule != "maxcov" {
		t.Fatalf("config select rule = %q, want maxcov", got.Rule)
	}
	got.Rule = ""
	rec = doJSON(t, s, http.MethodPost, "/api/v1/select", `{"config":"Spread","rule":"harmonic"}`, &got)
	if rec.Code != http.StatusOK {
		t.Fatalf("config override select = %d: %s", rec.Code, rec.Body.String())
	}
	if got.Rule != "harmonic" {
		t.Fatalf("explicit rule did not override config: got %q", got.Rule)
	}
}

// TestSelectRuleMutationInvalidation: non-default rules ride the same
// watermark cache as the default — a selection-relevant write invalidates
// every rule's entry, and the repaired responses match the cache-disabled
// baseline byte for byte.
func TestSelectRuleMutationInvalidation(t *testing.T) {
	ms, _ := newMutable(t)
	for _, body := range []string{
		`{"name":"A","properties":{"p":0.05,"q":0.9}}`,
		`{"name":"B","properties":{"p":0.5,"q":0.2}}`,
		`{"name":"C","properties":{"p":0.95}}`,
		`{"name":"D","properties":{"q":0.55}}`,
	} {
		if rec := doMutable(t, ms, http.MethodPost, "/api/users", body, nil); rec.Code != http.StatusOK {
			t.Fatalf("seed: %d: %s", rec.Code, rec.Body.String())
		}
	}
	sel := func(rule string) []byte {
		t.Helper()
		rec := doMutable(t, ms, http.MethodPost, "/api/select", `{"budget":2,"rule":"`+rule+`"}`, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("select rule=%s: %d: %s", rule, rec.Code, rec.Body.String())
		}
		return append([]byte(nil), rec.Body.Bytes()...)
	}
	rules := []string{"harmonic", "fairness-floor"}
	for _, rl := range rules {
		sel(rl)
	}
	if rec := doMutable(t, ms, http.MethodPost, "/api/users", `{"name":"E","properties":{"p":0.4,"q":0.6}}`, nil); rec.Code != http.StatusOK {
		t.Fatalf("late user add: %d: %s", rec.Code, rec.Body.String())
	}
	for _, rl := range rules {
		cached := sel(rl)
		ms.SetSelectCacheEnabled(false)
		baseline := sel(rl)
		ms.SetSelectCacheEnabled(true)
		if !bytes.Equal(cached, baseline) {
			t.Fatalf("rule %s post-write cache response diverged from baseline:\ncached:   %s\nbaseline: %s",
				rl, cached, baseline)
		}
	}
}

// TestSelectRuleConcurrent: concurrent selects under every rule at once must
// stay correct — each response carries its own rule's bytes (rule-keyed cache
// entries never bleed across rules) and the shared per-rule metric children
// and selector states behind sync.Map survive the race detector.
func TestSelectRuleConcurrent(t *testing.T) {
	s := newTestServer(t)
	names := core.RuleNames()

	// Serial baseline per rule, then hammer the same requests concurrently.
	want := make(map[string][]byte, len(names))
	for _, rl := range names {
		rec := doJSON(t, s, http.MethodPost, "/api/v1/select", `{"budget":2,"rule":"`+rl+`"}`, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("rule %s baseline = %d: %s", rl, rec.Code, rec.Body.String())
		}
		want[rl] = append([]byte(nil), rec.Body.Bytes()...)
	}

	const perRule = 8
	errc := make(chan error, len(names)*perRule)
	var wg sync.WaitGroup
	for _, rl := range names {
		for i := 0; i < perRule; i++ {
			wg.Add(1)
			go func(rl string) {
				defer wg.Done()
				req := httptest.NewRequest(http.MethodPost, "/api/v1/select",
					strings.NewReader(`{"budget":2,"rule":"`+rl+`"}`))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					errc <- fmt.Errorf("rule %s: status %d: %s", rl, rec.Code, rec.Body.String())
					return
				}
				if !bytes.Equal(rec.Body.Bytes(), want[rl]) {
					errc <- fmt.Errorf("rule %s: concurrent response diverged from baseline:\n%s\nvs\n%s",
						rl, rec.Body.String(), want[rl])
				}
			}(rl)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
