package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"podium/internal/bucketing"
	"podium/internal/groups"
	"podium/internal/profile"
)

func newTestServer(t *testing.T) *Server {
	t.Helper()
	repo := profile.PaperExample()
	cfg := groups.Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3}
	configs := []NamedConfig{{
		Name:        "Summer Pavilion",
		Description: "Diversify on restaurant-related properties",
		Budget:      2,
		Weights:     "LBS",
		Coverage:    "Single",
	}}
	return New("paper-example", repo, cfg, configs)
}

func doJSON(t *testing.T, s *Server, method, path, body string, out interface{}) *httptest.ResponseRecorder {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %s %s response: %v\n%s", method, path, err, rec.Body.String())
		}
	}
	return rec
}

func TestStatus(t *testing.T) {
	s := newTestServer(t)
	var got map[string]interface{}
	rec := doJSON(t, s, http.MethodGet, "/api/status", "", &got)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if got["users"].(float64) != 5 || got["groups"].(float64) != 16 {
		t.Fatalf("status = %v", got)
	}
	if rec := doJSON(t, s, http.MethodPost, "/api/status", "", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", rec.Code)
	}
}

func TestGroupsEndpoint(t *testing.T) {
	s := newTestServer(t)
	var got []map[string]interface{}
	rec := doJSON(t, s, http.MethodGet, "/api/groups?limit=3", "", &got)
	if rec.Code != http.StatusOK || len(got) != 3 {
		t.Fatalf("groups: code %d, %d rows", rec.Code, len(got))
	}
	if got[0]["size"].(float64) != 3 {
		t.Fatalf("largest group size = %v", got[0]["size"])
	}
	if rec := doJSON(t, s, http.MethodGet, "/api/groups?limit=nope", "", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad limit accepted: %d", rec.Code)
	}
}

func TestSelectDefault(t *testing.T) {
	s := newTestServer(t)
	var got struct {
		Users []struct {
			Name     string  `json:"name"`
			Marginal float64 `json:"marginal"`
		} `json:"users"`
		Score float64 `json:"score"`
	}
	rec := doJSON(t, s, http.MethodPost, "/api/select", `{"budget":2}`, &got)
	if rec.Code != http.StatusOK {
		t.Fatalf("select = %d: %s", rec.Code, rec.Body.String())
	}
	if len(got.Users) != 2 || got.Users[0].Name != "Alice" || got.Users[1].Name != "Eve" {
		t.Fatalf("selected %+v, want Alice then Eve", got.Users)
	}
	if got.Score != 17 {
		t.Fatalf("score = %v, want 17", got.Score)
	}
}

func TestSelectWithFeedback(t *testing.T) {
	s := newTestServer(t)
	// Priority on group 0 (livesIn Tokyo); must-not Carol's groups not set.
	var got struct {
		Users []struct {
			ID int `json:"id"`
		} `json:"users"`
		PriorityScore float64 `json:"priority_score"`
	}
	body := `{"budget":1,"feedback":{"priority":[0],"standard_explicit":true}}`
	rec := doJSON(t, s, http.MethodPost, "/api/select", body, &got)
	if rec.Code != http.StatusOK {
		t.Fatalf("select = %d: %s", rec.Code, rec.Body.String())
	}
	if len(got.Users) != 1 {
		t.Fatalf("users = %+v", got.Users)
	}
	if got.Users[0].ID != 0 && got.Users[0].ID != 3 {
		t.Fatalf("selected %d, want a Tokyo resident", got.Users[0].ID)
	}
	if got.PriorityScore <= 0 {
		t.Fatalf("priority score = %v", got.PriorityScore)
	}
}

func TestSelectNamedConfig(t *testing.T) {
	s := newTestServer(t)
	var got struct {
		Users []struct {
			Name string `json:"name"`
		} `json:"users"`
	}
	rec := doJSON(t, s, http.MethodPost, "/api/select", `{"config":"Summer Pavilion"}`, &got)
	if rec.Code != http.StatusOK {
		t.Fatalf("select = %d: %s", rec.Code, rec.Body.String())
	}
	if len(got.Users) != 2 {
		t.Fatalf("users = %+v", got.Users)
	}
	if rec := doJSON(t, s, http.MethodPost, "/api/select", `{"config":"nope"}`, nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("unknown config accepted: %d", rec.Code)
	}
}

func TestSelectValidation(t *testing.T) {
	s := newTestServer(t)
	cases := []string{
		`{"weights":"bogus"}`,
		`{"coverage":"bogus"}`,
		`{"unknown_field":1}`,
		`{"feedback":{"priority":[999]}}`,
		`not json`,
	}
	for _, body := range cases {
		if rec := doJSON(t, s, http.MethodPost, "/api/select", body, nil); rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: code %d, want 400", body, rec.Code)
		}
	}
	if rec := doJSON(t, s, http.MethodGet, "/api/select", "", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatal("GET select allowed")
	}
}

func TestSelectAllSchemes(t *testing.T) {
	s := newTestServer(t)
	for _, ws := range []string{"Iden", "LBS", "EBS"} {
		for _, cs := range []string{"Single", "Prop"} {
			body := `{"budget":2,"weights":"` + ws + `","coverage":"` + cs + `"}`
			var got struct {
				Users []struct{} `json:"users"`
			}
			rec := doJSON(t, s, http.MethodPost, "/api/select", body, &got)
			if rec.Code != http.StatusOK || len(got.Users) != 2 {
				t.Fatalf("%s/%s: code %d users %d", ws, cs, rec.Code, len(got.Users))
			}
		}
	}
}

func TestDistributionEndpoint(t *testing.T) {
	s := newTestServer(t)
	var got struct {
		Buckets []string  `json:"buckets"`
		All     []float64 `json:"all"`
		Subset  []float64 `json:"subset"`
	}
	path := "/api/distribution?prop=avgRating%20Mexican&users=0,4"
	rec := doJSON(t, s, http.MethodGet, path, "", &got)
	if rec.Code != http.StatusOK {
		t.Fatalf("distribution = %d: %s", rec.Code, rec.Body.String())
	}
	if len(got.Buckets) != 3 || len(got.All) != 3 {
		t.Fatalf("distribution shape: %+v", got)
	}
	if got.Subset[2] != 1 {
		t.Fatalf("subset = %v, want all mass in the high bucket", got.Subset)
	}
	if rec := doJSON(t, s, http.MethodGet, "/api/distribution?prop=nope", "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown property: code %d", rec.Code)
	}
	if rec := doJSON(t, s, http.MethodGet, "/api/distribution?prop=avgRating%20Mexican&users=99", "", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad user accepted: code %d", rec.Code)
	}
}

func TestIndexPage(t *testing.T) {
	s := newTestServer(t)
	rec := doJSON(t, s, http.MethodGet, "/", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("index = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"Podium", "paper-example", "/api/select"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index page missing %q", want)
		}
	}
	if rec := doJSON(t, s, http.MethodGet, "/nope", "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown path: %d", rec.Code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	s := newTestServer(t)
	var got struct {
		Users []struct {
			Name string `json:"name"`
		} `json:"users"`
		PriorityScore float64 `json:"priority_score"`
		StandardScore float64 `json:"standard_score"`
	}
	body := `{"query":"SELECT 2 USERS WHERE HAS \"avgRating Mexican\" DIVERSIFY BY \"livesIn Tokyo\", \"livesIn NYC\", \"livesIn Bali\", \"livesIn Paris\""}`
	rec := doJSON(t, s, http.MethodPost, "/api/query", body, &got)
	if rec.Code != http.StatusOK {
		t.Fatalf("query = %d: %s", rec.Code, rec.Body.String())
	}
	if len(got.Users) != 2 || got.Users[0].Name != "Alice" || got.Users[1].Name != "Eve" {
		t.Fatalf("selected %+v", got.Users)
	}
	if got.PriorityScore != 3 || got.StandardScore != 14 {
		t.Fatalf("tier scores %v/%v", got.PriorityScore, got.StandardScore)
	}
}

func TestQueryEndpointValidation(t *testing.T) {
	s := newTestServer(t)
	cases := []string{
		`{"query":"garbage"}`,
		`{"query":"SELECT 2 USERS BUCKETS 5"}`,
		`{"query":"SELECT 2 USERS WHERE HAS \"nope\""}`,
		`{"query":"SELECT 2 USERS WHERE \"p\" IN high AND \"p\" NOT IN high"}`,
		`not json`,
	}
	for _, body := range cases {
		if rec := doJSON(t, s, http.MethodPost, "/api/query", body, nil); rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: code %d, want 400", body, rec.Code)
		}
	}
	if rec := doJSON(t, s, http.MethodGet, "/api/query", "", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatal("GET query allowed")
	}
}

// The immutable server is stateless per request and must serve concurrent
// selections safely (run with -race to verify).
func TestConcurrentSelections(t *testing.T) {
	s := newTestServer(t)
	const workers = 16
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 20; i++ {
				req := httptest.NewRequest(http.MethodPost, "/api/select",
					strings.NewReader(`{"budget":2}`))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					done <- fmt.Errorf("worker %d: code %d", w, rec.Code)
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestConfigurationsEndpoint(t *testing.T) {
	s := newTestServer(t)
	var got []NamedConfig
	rec := doJSON(t, s, http.MethodGet, "/api/configurations", "", &got)
	if rec.Code != http.StatusOK || len(got) != 1 || got[0].Name != "Summer Pavilion" {
		t.Fatalf("configurations = %+v (code %d)", got, rec.Code)
	}
}

func TestSelectParallelismInvariant(t *testing.T) {
	s := newTestServer(t)
	var seq, par selectResponse
	if rec := doJSON(t, s, http.MethodPost, "/api/select",
		`{"budget":3,"weights":"LBS","coverage":"Single"}`, &seq); rec.Code != http.StatusOK {
		t.Fatalf("sequential select: %d %s", rec.Code, rec.Body.String())
	}
	// A worker count far above NumCPU is clamped, not rejected, and the
	// selection is identical to the sequential one.
	if rec := doJSON(t, s, http.MethodPost, "/api/select",
		`{"budget":3,"weights":"LBS","coverage":"Single","parallelism":64}`, &par); rec.Code != http.StatusOK {
		t.Fatalf("parallel select: %d %s", rec.Code, rec.Body.String())
	}
	if len(seq.Users) != len(par.Users) || seq.Score != par.Score {
		t.Fatalf("parallelism changed the result: %+v vs %+v", seq, par)
	}
	for i := range seq.Users {
		if seq.Users[i].ID != par.Users[i].ID || seq.Users[i].Marginal != par.Users[i].Marginal {
			t.Fatalf("parallelism changed user %d: %+v vs %+v", i, seq.Users[i], par.Users[i])
		}
	}
}
