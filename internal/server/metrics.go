package server

// Observability wiring for the serving layer: the per-server obs.Registry,
// the route-level counter caches, the /api/v1/metrics exposition handler,
// and the fold-in point for engine stage timings. The whole stack is
// nil-safe — a Server built with obs disabled (SetObsEnabled(false), used by
// the overhead benchmark) skips the instrumented dispatch path entirely.

import (
	"net/http"
	"strings"
	"time"

	"podium/internal/core"
	"podium/internal/obs"
)

// commonCodes are the statuses with precreated per-route counters; anything
// else takes the registry's locked get-or-create path (rare by design).
var commonCodes = [...]int{200, 400, 404, 405, 429, 500, 503}

func codeIdx(code int) int {
	for i, c := range commonCodes {
		if c == code {
			return i
		}
	}
	return -1
}

// methodLabel bounds the method label's cardinality: arbitrary client verbs
// collapse to "other".
func methodLabel(m string) string {
	switch m {
	case http.MethodGet, http.MethodPost, http.MethodPut, http.MethodDelete,
		http.MethodHead, http.MethodOptions, http.MethodPatch:
		return m
	}
	return "other"
}

// routeMetrics is one route's counter cache: the hot path does a small map
// read and an atomic add, never touching the registry's locks.
type routeMetrics struct {
	name     string
	met      *obs.ServerMetrics
	latency  *obs.Histogram
	byMethod map[string][len(commonCodes)]*obs.Counter
}

func newRouteMetrics(met *obs.ServerMetrics, name string, methods []string) *routeMetrics {
	rm := &routeMetrics{
		name:     name,
		met:      met,
		latency:  met.RouteLatency(name),
		byMethod: make(map[string][len(commonCodes)]*obs.Counter, len(methods)),
	}
	for _, m := range methods {
		var arr [len(commonCodes)]*obs.Counter
		for i, c := range commonCodes {
			arr[i] = met.RouteRequests(name, m, c)
		}
		rm.byMethod[m] = arr
	}
	return rm
}

func (rm *routeMetrics) count(method string, code int) {
	if arr, ok := rm.byMethod[method]; ok {
		if i := codeIdx(code); i >= 0 {
			arr[i].Inc()
			return
		}
	}
	rm.met.RouteRequests(rm.name, methodLabel(method), code).Inc()
}

// Metrics returns the server's registry, for embedding callers that want to
// register their own families (e.g. client metrics sharing one exposition).
func (s *Server) Metrics() *obs.Registry { return s.reg }

// RecordRepositoryLoad publishes the startup load timing for the given
// source format ("image", "binary", "json", "log", "synth"), so operators
// can see at /api/v1/metrics whether a restart took the near-instant v2
// image path or fell back to a slower decode.
func (s *Server) RecordRepositoryLoad(format string, d time.Duration) {
	s.met.LoadDuration(format).Set(d.Nanoseconds())
}

// SetObsEnabled toggles request instrumentation (default on). Exists for the
// overhead benchmark; flip it before serving traffic, not concurrently with
// a scrape you care about.
func (s *Server) SetObsEnabled(v bool) { s.obsOff.Store(!v) }

func (s *Server) obsEnabled() bool { return !s.obsOff.Load() }

// handleMetrics serves GET /api/v1/metrics in Prometheus text exposition
// format (hand-rolled; see internal/obs).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	if err := s.reg.WriteText(&b); err != nil {
		writeError(w, r, http.StatusInternalServerError, codeInternal, "rendering metrics: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}

// observeEngine folds one selection's stage timings into the core family.
// A run that hit the memoized fast path (tim.Runs == 0) records nothing.
func (s *Server) observeEngine(tim *core.StageTimings) {
	if tim == nil || tim.Runs == 0 || s.coreMet == nil {
		return
	}
	s.coreMet.Selections.Add(uint64(tim.Runs))
	s.coreMet.ObserveStage("init", time.Duration(tim.InitNs))
	s.coreMet.ObserveStage("argmax", time.Duration(tim.ArgmaxNs))
	s.coreMet.ObserveStage("retract", time.Duration(tim.RetractNs))
	s.coreMet.ObserveStage("merge", time.Duration(tim.MergeNs))
}

// traceRequested reports whether the client asked for a span tree
// (X-Podium-Trace: 1 header or ?trace=1).
func traceRequested(r *http.Request) bool {
	return r.Header.Get("X-Podium-Trace") == "1" || r.URL.Query().Get("trace") == "1"
}

// attachStages adds the engine's per-stage children to a trace span.
func attachStages(sp *obs.Span, tim *core.StageTimings) {
	if sp == nil || tim == nil || tim.Runs == 0 {
		return
	}
	sp.AttachChild("init", time.Duration(tim.InitNs))
	sp.AttachChild("argmax", time.Duration(tim.ArgmaxNs))
	sp.AttachChild("retract", time.Duration(tim.RetractNs))
	sp.AttachChild("merge", time.Duration(tim.MergeNs))
}
