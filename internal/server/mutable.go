package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/repolog"
)

// MutableServer extends Server with live profile updates — the operational
// loop Section 9 sketches ("may be easily executed multiple times, e.g., to
// incorporate data updates"): mutations append durably to a repository log
// and slot into the group index incrementally, so selections always see the
// current population without a rebuild and group IDs remain stable for
// clients holding feedback.
type MutableServer struct {
	*Server
	mu  sync.Mutex
	log *repolog.Log
	cfg groups.Config
}

// NewMutable builds a server over the repository log at path, creating it if
// absent. The grouping module runs once at startup; subsequent mutations
// maintain the index incrementally.
func NewMutable(name, logPath string, cfg groups.Config, configs []NamedConfig) (*MutableServer, error) {
	l, err := repolog.Open(logPath)
	if err != nil {
		return nil, err
	}
	ms := &MutableServer{
		Server: New(name, l.Repository(), cfg, configs),
		log:    l,
		cfg:    cfg,
	}
	ms.mux.HandleFunc("/api/users", ms.handleAddUser)
	ms.mux.HandleFunc("/api/scores", ms.handleSetScore)
	return ms, nil
}

// Close flushes and closes the backing log.
func (ms *MutableServer) Close() error {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.log.Close()
}

// ServeHTTP serializes requests: reads are cheap and mutations must not
// interleave with index maintenance. A production deployment would use an
// RWMutex with copy-on-write indexes; a single lock keeps the reference
// implementation obviously correct.
func (ms *MutableServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	ms.mu.Lock()
	defer ms.mu.Unlock()
	ms.mux.ServeHTTP(w, r)
}

// addUserRequest creates a user with an optional initial profile.
type addUserRequest struct {
	Name       string             `json:"name"`
	Properties map[string]float64 `json:"properties,omitempty"`
}

func (ms *MutableServer) handleAddUser(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req addUserRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "name is required")
		return
	}
	// Validate the whole profile before any durable write, so a bad score
	// cannot leave a half-created user.
	for label, score := range req.Properties {
		if score < 0 || score > 1 || score != score {
			writeError(w, http.StatusBadRequest, "score %v for %q outside [0,1]", score, label)
			return
		}
	}
	u, err := ms.log.AddUser(req.Name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	for label, score := range req.Properties {
		if err := ms.log.SetScore(u, label, score); err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	if err := ms.log.Sync(); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	unbucketed, err := ms.index.IndexUser(u)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "indexing: %v", err)
		return
	}
	// First-sight properties get bucketed now, from their current values;
	// a periodic full rebuild re-derives better cuts as data accumulates.
	for _, pid := range unbucketed {
		if err := ms.index.BucketProperty(pid, ms.cfg); err != nil {
			writeError(w, http.StatusInternalServerError, "bucketing %q: %v", ms.repo.Catalog().Label(pid), err)
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"id":     int(u),
		"groups": len(ms.index.UserGroups(u)),
	})
}

// setScoreRequest updates one property score of an existing user.
type setScoreRequest struct {
	User  int     `json:"user"`
	Label string  `json:"label"`
	Score float64 `json:"score"`
}

func (ms *MutableServer) handleSetScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req setScoreRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	u := profile.UserID(req.User)
	if req.User < 0 || req.User >= ms.repo.NumUsers() {
		writeError(w, http.StatusBadRequest, "unknown user %d", req.User)
		return
	}
	pid, known := ms.repo.Catalog().Lookup(req.Label)
	if err := ms.log.SetScore(u, req.Label, req.Score); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := ms.log.Sync(); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	status := "updated"
	if !known {
		// A brand-new property: bucket it from its current (single) value;
		// a later rebuild re-derives the partition as data accumulates.
		newPid, _ := ms.repo.Catalog().Lookup(req.Label)
		if err := ms.index.BucketProperty(newPid, ms.cfg); err != nil {
			status = fmt.Sprintf("recorded; bucketing failed (%v)", err)
		} else {
			status = "updated (new property bucketed)"
		}
	} else if err := ms.index.UpdateScore(u, pid); err != nil {
		status = fmt.Sprintf("recorded; index not updated (%v)", err)
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": status})
}
