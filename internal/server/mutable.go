package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"podium/internal/codec"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/repolog"
)

// MutableServer extends Server with live profile updates — the operational
// loop Section 9 sketches ("may be easily executed multiple times, e.g., to
// incorporate data updates"). Reads stay on the embedded Server's lock-free
// snapshot path; mutations flow through a single-writer apply loop that
// drains queued requests into batches, appends each batch durably to the
// repository log with one fsync, applies it to a private copy-on-write clone
// of the current epoch through the incremental index path, and publishes the
// result as the next snapshot. Group IDs remain stable for clients holding
// feedback, and a reader admitted mid-batch simply serves the previous epoch.
type MutableServer struct {
	*Server
	log  *repolog.Log
	cfg  groups.Config
	opts MutableOptions

	mutCh chan *pendingMut
	quit  chan struct{}
	done  chan struct{}

	// closeMu fences mutation dispatch against Close: dispatchers send on
	// mutCh under RLock, so once Close holds the write lock no send is in
	// flight and setting closed makes later dispatchers fail fast.
	closeMu  sync.RWMutex
	closed   bool
	closeOne sync.Once
	closeErr error

	batches   atomic.Uint64
	mutations atomic.Uint64
	shed      atomic.Uint64

	// beforeApply, when set (tests only, before any dispatch), runs at the top
	// of every batch application — the hook overload tests use to hold the
	// writer still while they fill the queue.
	beforeApply func()
}

// MutableOptions tunes the writer's batching and admission policy.
type MutableOptions struct {
	// BatchWindow is how long the writer waits after the first queued
	// mutation for more to coalesce. Zero (the default) drains
	// opportunistically: whatever is already queued forms the batch, so a
	// lone mutation never waits.
	BatchWindow time.Duration
	// MaxBatch caps mutations per batch. Default 256.
	MaxBatch int
	// QueueDepth bounds the apply-loop mutation queue — the admission
	// control surface. When the queue is full, mutating requests are shed
	// with 429 + Retry-After instead of blocking the handler goroutine;
	// snapshot reads are untouched and keep serving the last published
	// epoch. Default 4×MaxBatch.
	QueueDepth int
	// RetryAfter is the backoff advertised on shed requests (default 1s;
	// rounded up to whole seconds for the Retry-After header).
	RetryAfter time.Duration
	// BucketImage is the path of the bucket-boundary sidecar: a format-v2
	// image section holding every β(p) the live index assigns scores with.
	// On open, an existing sidecar pins the rebuilt index's partitions to
	// the boundaries the previous process used (restart determinism: a
	// rebuild that re-ran KMeans over the final score distribution could
	// derive different cuts — and different selections — than the live
	// incrementally-bucketed index that wrote the log). The writer refreshes
	// the sidecar whenever a batch buckets a new property. Empty selects
	// logPath + ".buckets"; "-" disables persistence.
	BucketImage string
}

// NewMutable builds a server over the repository log at path, creating it if
// absent, with default batching options. The grouping module runs once at
// startup; subsequent mutations maintain the index incrementally.
func NewMutable(name, logPath string, cfg groups.Config, configs []NamedConfig) (*MutableServer, error) {
	return NewMutableOpts(name, logPath, cfg, configs, MutableOptions{})
}

// NewMutableOpts is NewMutable with explicit batching options.
func NewMutableOpts(name, logPath string, cfg groups.Config, configs []NamedConfig, opts MutableOptions) (*MutableServer, error) {
	l, err := repolog.Open(logPath)
	if err != nil {
		return nil, err
	}
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = 256
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 4 * opts.MaxBatch
	}
	if opts.RetryAfter <= 0 {
		opts.RetryAfter = time.Second
	}
	if opts.BucketImage == "" {
		opts.BucketImage = logPath + ".buckets"
	}
	if opts.BucketImage != "-" {
		switch persisted, err := codec.ReadBucketsFile(opts.BucketImage); {
		case err == nil:
			// Pin the rebuilt index to the boundaries the live index used.
			// The replayed catalog interns labels in log order, so the
			// persisted PropertyIDs address the same properties.
			cfg.FixedBuckets = persisted
		case errors.Is(err, os.ErrNotExist):
			// First boot (or a pre-sidecar log): Build derives cuts below and
			// the sidecar is written for every restart after this one.
		default:
			// A corrupt or unreadable sidecar must not fail startup: the log
			// itself is intact, so Build re-derives cuts from the replayed
			// score distribution. Those cuts may differ from the live index
			// that wrote the sidecar — group memberships can shift — so the
			// degradation is warned loudly, and persistBuckets below replaces
			// the damaged file with a fresh one.
			log.Printf("server: bucket sidecar %s: %v — falling back to cuts derived from log replay", opts.BucketImage, err)
		}
	}
	ms := &MutableServer{
		Server: New(name, l.Repository(), cfg, configs),
		log:    l,
		cfg:    cfg,
		opts:   opts,
		mutCh:  make(chan *pendingMut, opts.QueueDepth),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	ms.persistBuckets(ms.Snapshot().Index())
	post := func(h http.HandlerFunc) map[string]http.HandlerFunc {
		return map[string]http.HandlerFunc{http.MethodPost: h}
	}
	ms.addRoute("users", "/api/v1/users", "/api/users", post(ms.handleAddUser), nil)
	ms.addRoute("scores", "/api/v1/scores", "/api/scores", post(ms.handleSetScore), nil)
	go ms.applyLoop()
	return ms, nil
}

// persistBuckets refreshes the bucket-boundary sidecar from ix. Called at
// startup and from the single writer after a batch that bucketed a new
// property, so it never races itself. A write failure is logged, not fatal:
// the log stays durable and the next boundary change retries.
func (ms *MutableServer) persistBuckets(ix *groups.Index) {
	if ms.opts.BucketImage == "-" {
		return
	}
	if err := codec.WriteBucketsFile(ms.opts.BucketImage, ix.BucketBoundaries()); err != nil {
		log.Printf("server: persisting bucket boundaries: %v", err)
	}
}

// Close stops the apply loop (after it drains queued mutations), then flushes
// and closes the backing log. Safe to call more than once.
func (ms *MutableServer) Close() error {
	ms.closeOne.Do(func() {
		ms.closeMu.Lock()
		ms.closed = true
		ms.closeMu.Unlock()
		close(ms.quit)
		<-ms.done
		ms.closeErr = ms.log.Close()
	})
	return ms.closeErr
}

// BatchStats reports how many batches the writer has published and how many
// mutations they contained — mutations/batches is the coalescing factor the
// benchmark suite records.
func (ms *MutableServer) BatchStats() (batches, mutations uint64) {
	return ms.batches.Load(), ms.mutations.Load()
}

// ShedStats reports how many mutating requests admission control turned away
// with 429 because the apply-loop queue was full.
func (ms *MutableServer) ShedStats() uint64 { return ms.shed.Load() }

// pendingMut is one queued mutation awaiting the writer.
type pendingMut struct {
	addUser  *addUserRequest
	setScore *setScoreRequest
	reply    chan mutReply
}

type mutReply struct {
	status int
	body   interface{}
}

// dispatchResult classifies an attempt to hand a mutation to the writer.
type dispatchResult uint8

const (
	dispatchOK       dispatchResult = iota // queued, reply is valid
	dispatchClosing                        // server shutting down
	dispatchOverload                       // queue full: shed with 429
)

// dispatch hands m to the apply loop and waits for its reply. The send is
// non-blocking: a full queue means the single writer is saturated, and
// stalling the handler goroutine here would only move the pile-up into the
// HTTP layer — instead the request is shed (dispatchOverload) so the caller
// can answer 429 + Retry-After while lock-free reads keep serving.
func (ms *MutableServer) dispatch(m *pendingMut) (mutReply, dispatchResult) {
	ms.closeMu.RLock()
	if ms.closed {
		ms.closeMu.RUnlock()
		return mutReply{}, dispatchClosing
	}
	select {
	case ms.mutCh <- m:
	default:
		ms.closeMu.RUnlock()
		ms.shed.Add(1)
		ms.met.Shed.Inc()
		return mutReply{}, dispatchOverload
	}
	ms.closeMu.RUnlock()
	ms.met.QueueDepth.Set(int64(len(ms.mutCh)))
	return <-m.reply, dispatchOK
}

// writeOverloaded answers a shed mutation: 429 with the advertised backoff.
func (ms *MutableServer) writeOverloaded(w http.ResponseWriter, r *http.Request) {
	secs := int(ms.opts.RetryAfter / time.Second)
	if time.Duration(secs)*time.Second < ms.opts.RetryAfter {
		secs++
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeError(w, r, http.StatusTooManyRequests, codeOverloaded, "mutation queue full; retry after %ds", secs)
}

// applyLoop is the single writer: it owns the log and the right to publish
// snapshots. Batching means each published epoch costs one CSR rebuild and
// one fsync regardless of how many mutations it absorbs.
func (ms *MutableServer) applyLoop() {
	defer close(ms.done)
	for {
		select {
		case m := <-ms.mutCh:
			if ms.beforeApply != nil {
				ms.beforeApply()
			}
			ms.applyBatch(ms.collectBatch(m))
		case <-ms.quit:
			// closed is already set and Close held the write lock, so no
			// dispatcher is mid-send: everything left is buffered in mutCh.
			for {
				select {
				case m := <-ms.mutCh:
					ms.applyBatch(ms.collectBatch(m))
				default:
					return
				}
			}
		}
	}
}

// collectBatch grows a batch around its first mutation: up to MaxBatch
// requests, waiting at most BatchWindow (or not at all when the window is
// zero — then only already-queued mutations coalesce).
func (ms *MutableServer) collectBatch(first *pendingMut) []*pendingMut {
	batch := []*pendingMut{first}
	if ms.opts.BatchWindow <= 0 {
		for len(batch) < ms.opts.MaxBatch {
			select {
			case m := <-ms.mutCh:
				batch = append(batch, m)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(ms.opts.BatchWindow)
	defer timer.Stop()
	for len(batch) < ms.opts.MaxBatch {
		select {
		case m := <-ms.mutCh:
			batch = append(batch, m)
		case <-timer.C:
			return batch
		}
	}
	return batch
}

// applyBatch stages the batch in the log, applies it to a private clone of
// the current epoch, syncs once, publishes the next epoch, and replies to
// every waiter. Mutations see their predecessors within the batch (a score
// update may target a user added moments before), so the published state is
// identical to applying the same sequence one at a time.
func (ms *MutableServer) applyBatch(batch []*pendingMut) {
	cur := ms.Snapshot()
	repo := cur.Repo().Clone()
	ix := cur.Index().Clone(repo)
	bucketed := ix.NumBucketedProperties()
	ms.met.BatchSize.Observe(float64(len(batch)))
	ms.met.QueueDepth.Set(int64(len(ms.mutCh)))
	replies := make([]mutReply, len(batch))
	staged := 0
	for i, m := range batch {
		replies[i] = ms.applyOne(repo, ix, m, &staged)
	}
	if staged > 0 {
		if err := ms.log.Sync(); err != nil {
			// Durability failed: nothing publishes and every waiter learns it.
			fail := mutErr(http.StatusInternalServerError, codeInternal, "syncing log: %v", err)
			for _, m := range batch {
				m.reply <- fail
			}
			return
		}
	}
	// Fold the batch's change record into the select cache's watermarks
	// before the new epoch is visible: by the time a reader holds the next
	// snapshot, the cache already knows whether anything selection-relevant
	// moved. TakeDelta also bumps the index's ChangeSeq (for non-empty
	// batches), which newSnapshot stamps into the epoch below.
	ms.selCache.applyDelta(ix.TakeDelta())
	ms.publish(newSnapshot(cur.Epoch()+1, repo, ix))
	if ix.NumBucketedProperties() > bucketed {
		// The batch derived boundaries for a first-sight property; a restart
		// must reuse them, not re-derive from whatever scores accumulate.
		ms.persistBuckets(ix)
	}
	ms.batches.Add(1)
	ms.mutations.Add(uint64(len(batch)))
	for i, m := range batch {
		m.reply <- replies[i]
	}
}

// applyOne applies a single mutation to the writer's private repo and index,
// staging its log records (counted in *staged). Semantics mirror the
// pre-batching handlers exactly, including their status strings.
func (ms *MutableServer) applyOne(repo *profile.Repository, ix *groups.Index, m *pendingMut, staged *int) mutReply {
	if m.addUser != nil {
		return ms.applyAddUser(repo, ix, m.addUser, staged)
	}
	return ms.applySetScore(repo, ix, m.setScore, staged)
}

func (ms *MutableServer) applyAddUser(repo *profile.Repository, ix *groups.Index, req *addUserRequest, staged *int) mutReply {
	if err := ms.log.AppendAddUser(req.Name); err != nil {
		return mutErr(http.StatusInternalServerError, codeInternal, "%v", err)
	}
	*staged++
	u := repo.AddUser(req.Name)
	// Map iteration order is random; sorting the labels makes property
	// interning — and therefore the log, the catalog and every downstream
	// group ID — deterministic for a given request.
	labels := make([]string, 0, len(req.Properties))
	for label := range req.Properties {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		if err := ms.log.AppendSetScore(u, label, req.Properties[label]); err != nil {
			return mutErr(http.StatusInternalServerError, codeInternal, "%v", err)
		}
		*staged++
		if err := repo.SetScore(u, label, req.Properties[label]); err != nil {
			return mutErr(http.StatusInternalServerError, codeInternal, "%v", err)
		}
	}
	unbucketed, err := ix.IndexUser(u)
	if err != nil {
		return mutErr(http.StatusInternalServerError, codeInternal, "indexing: %v", err)
	}
	// First-sight properties get bucketed now, from their current values;
	// a periodic full rebuild re-derives better cuts as data accumulates.
	for _, pid := range unbucketed {
		if err := ix.BucketProperty(pid, ms.cfg); err != nil {
			return mutErr(http.StatusInternalServerError, codeInternal,
				"bucketing %q: %v", repo.Catalog().Label(pid), err)
		}
	}
	return mutReply{http.StatusOK, map[string]interface{}{
		"id":     int(u),
		"groups": len(ix.UserGroups(u)),
	}}
}

func (ms *MutableServer) applySetScore(repo *profile.Repository, ix *groups.Index, req *setScoreRequest, staged *int) mutReply {
	// Validation runs against the writer's repo, not the published snapshot,
	// so a score for a user added earlier in the same batch is accepted —
	// exactly as if the mutations had been serialized.
	u := profile.UserID(req.User)
	if req.User < 0 || req.User >= repo.NumUsers() {
		return mutErr(http.StatusBadRequest, codeInvalidArgument, "unknown user %d", req.User)
	}
	pid, known := repo.Catalog().Lookup(req.Label)
	if err := ms.log.AppendSetScore(u, req.Label, req.Score); err != nil {
		return mutErr(http.StatusBadRequest, codeInvalidArgument, "%v", err)
	}
	*staged++
	if err := repo.SetScore(u, req.Label, req.Score); err != nil {
		return mutErr(http.StatusInternalServerError, codeInternal, "%v", err)
	}
	status := "updated"
	if !known {
		// A brand-new property: bucket it from its current (single) value;
		// a later rebuild re-derives the partition as data accumulates.
		newPid, _ := repo.Catalog().Lookup(req.Label)
		if err := ix.BucketProperty(newPid, ms.cfg); err != nil {
			status = fmt.Sprintf("recorded; bucketing failed (%v)", err)
		} else {
			status = "updated (new property bucketed)"
		}
	} else if err := ix.UpdateScore(u, pid); err != nil {
		status = fmt.Sprintf("recorded; index not updated (%v)", err)
	}
	return mutReply{http.StatusOK, map[string]string{"status": status}}
}

// mutErr wraps the unified error envelope in a mutReply.
func mutErr(status int, code, format string, args ...interface{}) mutReply {
	return mutReply{status, errBody(status, code, format, args...)}
}

// addUserRequest creates a user with an optional initial profile.
type addUserRequest struct {
	Name       string             `json:"name"`
	Properties map[string]float64 `json:"properties,omitempty"`
}

func (ms *MutableServer) handleAddUser(w http.ResponseWriter, r *http.Request) {
	var req addUserRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "decoding request: %v", err)
		return
	}
	if req.Name == "" {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "name is required")
		return
	}
	// Validate the whole profile before any durable write, so a bad score
	// cannot leave a half-created user.
	for label, score := range req.Properties {
		if score < 0 || score > 1 || score != score {
			writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "score %v for %q outside [0,1]", score, label)
			return
		}
	}
	rep, res := ms.dispatch(&pendingMut{addUser: &req, reply: make(chan mutReply, 1)})
	switch res {
	case dispatchClosing:
		writeError(w, r, http.StatusServiceUnavailable, codeUnavailable, "server closing")
	case dispatchOverload:
		ms.writeOverloaded(w, r)
	default:
		writeJSON(w, r, rep.status, rep.body)
	}
}

// setScoreRequest updates one property score of an existing user.
type setScoreRequest struct {
	User  int     `json:"user"`
	Label string  `json:"label"`
	Score float64 `json:"score"`
}

func (ms *MutableServer) handleSetScore(w http.ResponseWriter, r *http.Request) {
	var req setScoreRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "decoding request: %v", err)
		return
	}
	rep, res := ms.dispatch(&pendingMut{setScore: &req, reply: make(chan mutReply, 1)})
	switch res {
	case dispatchClosing:
		writeError(w, r, http.StatusServiceUnavailable, codeUnavailable, "server closing")
	case dispatchOverload:
		ms.writeOverloaded(w, r)
	default:
		writeJSON(w, r, rep.status, rep.body)
	}
}
