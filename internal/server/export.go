package server

import (
	"encoding/json"
	"net/http"

	"podium/internal/core"
	"podium/internal/groups"
)

// Hooks for the shard coordinator (internal/shard). The coordinator fronts a
// Server and must speak byte-compatible request and response surfaces —
// same scheme strings, same error envelope, same selection JSON — so the
// pieces of that surface it reuses are re-exported here rather than
// duplicated there. (The dependency points this way by necessity: client
// imports server, so server can never import the coordinator's package.)

// ParseWeights parses a request weight-scheme string ("", "iden", "lbs",
// "ebs", case-insensitive; empty selects LBS).
func ParseWeights(s string) (groups.WeightScheme, error) { return parseWeights(s) }

// ParseCoverage parses a request coverage-scheme string ("", "single",
// "prop"; empty selects Single).
func ParseCoverage(s string) (groups.CoverageScheme, error) { return parseCoverage(s) }

// ParseRule parses a request rule string against the core registry
// (case-insensitive; empty selects the default coverage rule), with the same
// error message handleSelect produces for unknown names.
func ParseRule(s string) (*core.Rule, error) { return parseRule(s) }

// Exported error codes of the unified envelope, for out-of-package handlers.
const (
	CodeInvalidArgument  = codeInvalidArgument
	CodeMethodNotAllowed = codeMethodNotAllowed
	CodeUnavailable      = codeUnavailable
	CodeInternal         = codeInternal
)

// WriteJSON writes v as the standard JSON response (honoring ?pretty=1).
func WriteJSON(w http.ResponseWriter, r *http.Request, status int, v interface{}) {
	writeJSON(w, r, status, v)
}

// WriteError writes the unified error envelope.
func WriteError(w http.ResponseWriter, r *http.Request, status int, code, format string, args ...interface{}) {
	writeError(w, r, status, code, format, args...)
}

// RenderSelection marshals the standard select-response JSON for an
// externally computed selection result — the coordinator's merge round,
// whose greedy ran through core directly rather than through handleSelect.
// rl names the rule the selection ran under (nil or default omits the
// response's rule field, matching single-node default responses byte for
// byte). extra fields are spliced into the top-level object (shard epochs,
// the degraded flag); a key colliding with a standard field overrides it.
func (sn *Snapshot) RenderSelection(ws groups.WeightScheme, cs groups.CoverageScheme, budget, topK int, rl *core.Rule, res *core.Result, extra map[string]interface{}) ([]byte, error) {
	inst := sn.Instance(ws, cs, budget)
	resp := buildSelectResponse(inst, res, nil, topK)
	if rl = rl.OrDefault(); !rl.IsDefault() {
		resp.Rule = rl.Name()
	}
	data, err := json.Marshal(resp)
	if err != nil {
		return nil, err
	}
	if len(extra) == 0 {
		return data, nil
	}
	var m map[string]interface{}
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, err
	}
	for k, v := range extra {
		m[k] = v
	}
	return json.Marshal(m)
}
