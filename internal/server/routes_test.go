package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestRouteTableGolden pins the API surface: every endpoint, its canonical
// v1 path, its legacy alias, and its method constraints. A new endpoint (or
// a changed constraint) must update this table deliberately.
func TestRouteTableGolden(t *testing.T) {
	want := [][4]string{
		{"status", "/api/v1/status", "/api/status", "GET"},
		{"groups", "/api/v1/groups", "/api/groups", "GET"},
		{"configurations", "/api/v1/configurations", "/api/configurations", "GET"},
		{"select", "/api/v1/select", "/api/select", "POST"},
		{"rules", "/api/v1/rules", "", "GET"},
		{"query", "/api/v1/query", "/api/query", "POST"},
		{"distribution", "/api/v1/distribution", "/api/distribution", "GET"},
		{"campaigns", "/api/v1/campaigns", "/api/campaigns", "GET, POST"},
		{"campaign", "/api/v1/campaigns/{id}", "/api/campaigns/{id}", "GET"},
		{"campaign-cancel", "/api/v1/campaigns/{id}/cancel", "/api/campaigns/{id}/cancel", "POST"},
		{"metrics", "/api/v1/metrics", "", "GET"},
		{"healthz", "/healthz", "", "any"},
		{"readyz", "/readyz", "", "any"},
		{"index", "/", "", "any"},
	}
	got := newTestServer(t).Routes()
	if len(got) != len(want) {
		t.Fatalf("route table has %d rows, want %d:\n%v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i] != w {
			t.Errorf("route %d = %v, want %v", i, got[i], w)
		}
	}
}

// errEnvelope decodes and validates the unified error body, returning the
// machine-readable code.
func errEnvelope(t *testing.T, rec *httptest.ResponseRecorder) string {
	t.Helper()
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			Status  int    `json:"status"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("error body is not an envelope: %v\n%s", err, rec.Body.String())
	}
	if body.Error.Code == "" || body.Error.Message == "" || body.Error.Status != rec.Code {
		t.Fatalf("bad envelope for HTTP %d: %s", rec.Code, rec.Body.String())
	}
	return body.Error.Code
}

// TestLegacyAliasesIdentical drives every aliased endpoint through both its
// v1 path and its legacy alias on paired fresh servers and requires
// byte-identical bodies and statuses — the compatibility contract of the v1
// migration. The legacy response must additionally carry Deprecation: true.
func TestLegacyAliasesIdentical(t *testing.T) {
	cases := []struct {
		method, suffix, body string
	}{
		{http.MethodGet, "/status", ""},
		{http.MethodGet, "/groups?limit=5", ""},
		{http.MethodGet, "/configurations", ""},
		{http.MethodPost, "/select", `{"budget":2}`},
		{http.MethodPost, "/select", `{"budget":2,"feedback":{"priority":[0]}}`},
		{http.MethodPost, "/query", `{"query":"SELECT 2 USERS"}`},
		{http.MethodGet, "/distribution?prop=" + "avgRating%20Mexican", ""},
		{http.MethodGet, "/campaigns", ""},
		// Error paths must alias identically too.
		{http.MethodPost, "/select", `{"budget":-3}`},
		{http.MethodGet, "/campaigns/999", ""},
		{http.MethodGet, "/campaigns/abc", ""},
		{http.MethodDelete, "/campaigns", ""},
	}
	for _, tc := range cases {
		v1 := newTestServer(t)
		leg := newTestServer(t)
		recV1 := doJSON(t, v1, tc.method, "/api/v1"+tc.suffix, tc.body, nil)
		recLeg := doJSON(t, leg, tc.method, "/api"+tc.suffix, tc.body, nil)
		if recV1.Code != recLeg.Code {
			t.Errorf("%s %s: v1 %d vs legacy %d", tc.method, tc.suffix, recV1.Code, recLeg.Code)
			continue
		}
		if recV1.Body.String() != recLeg.Body.String() {
			t.Errorf("%s %s: bodies differ\nv1:     %s\nlegacy: %s",
				tc.method, tc.suffix, recV1.Body.String(), recLeg.Body.String())
		}
		if h := recV1.Header().Get("Deprecation"); h != "" {
			t.Errorf("%s /api/v1%s: unexpected Deprecation header %q", tc.method, tc.suffix, h)
		}
		if h := recLeg.Header().Get("Deprecation"); h != "true" {
			t.Errorf("%s /api%s: Deprecation = %q, want true", tc.method, tc.suffix, h)
		}
	}
}

// TestLegacyCampaignCreateAliases checks the one mutating aliased endpoint:
// campaign creation returns the same id and status on both paths (bodies are
// compared only structurally — the campaign runs asynchronously).
func TestLegacyCampaignCreateAliases(t *testing.T) {
	body := `{"budget":2,"seed":3}`
	for _, path := range []string{"/api/v1/campaigns", "/api/campaigns"} {
		s := newTestServer(t)
		var created struct {
			ID int `json:"id"`
		}
		rec := doJSON(t, s, http.MethodPost, path, body, &created)
		if rec.Code != http.StatusOK || created.ID != 1 {
			t.Errorf("POST %s = %d id %d, want 200 id 1: %s", path, rec.Code, created.ID, rec.Body.String())
		}
	}
}

// TestMethodNotAllowed sends a wrong-method request to every constrained
// route and requires 405 with the precise Allow header and the unified
// envelope.
func TestMethodNotAllowed(t *testing.T) {
	s := newTestServer(t)
	for _, row := range s.Routes() {
		if row[3] == "any" {
			continue
		}
		path := strings.ReplaceAll(row[1], "{id}", "1")
		rec := doJSON(t, s, http.MethodDelete, path, "", nil)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("DELETE %s = %d, want 405", path, rec.Code)
			continue
		}
		if allow := rec.Header().Get("Allow"); allow != row[3] {
			t.Errorf("DELETE %s: Allow = %q, want %q", path, allow, row[3])
		}
		if code := errEnvelope(t, rec); code != "method_not_allowed" {
			t.Errorf("DELETE %s: envelope code = %q", path, code)
		}
	}
}

// TestErrorEnvelopeEverywhere forces each distinct error class and checks
// the envelope shape and machine-readable code.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		method, path, body string
		status             int
		code               string
	}{
		{http.MethodGet, "/api/v1/nope", "", 404, "not_found"},
		{http.MethodGet, "/api/v1/status/", "", 404, "not_found"}, // trailing slash is no route
		{http.MethodPost, "/api/v1/select", `{"bogus_field":1}`, 400, "invalid_argument"},
		{http.MethodPost, "/api/v1/select", `{bad json`, 400, "invalid_argument"},
		{http.MethodPost, "/api/v1/select", `{"weights":"nope"}`, 400, "invalid_argument"},
		{http.MethodPost, "/api/v1/select", `{"rule":"nope"}`, 400, "invalid_argument"},
		{http.MethodPost, "/api/v1/query", `{"query":"SELECT nonsense"}`, 400, "invalid_argument"},
		{http.MethodGet, "/api/v1/distribution?prop=bogus", "", 404, "not_found"},
		{http.MethodGet, "/api/v1/campaigns/999", "", 404, "not_found"},
		{http.MethodGet, "/api/v1/campaigns/1x", "", 404, "not_found"},
		{http.MethodGet, "/api/v1/campaigns/007", "", 404, "not_found"}, // non-canonical id
		{http.MethodGet, "/api/v1/campaigns/1/cancel/extra", "", 404, "not_found"},
		{http.MethodDelete, "/api/v1/groups", "", 405, "method_not_allowed"},
	}
	for _, tc := range cases {
		rec := doJSON(t, s, tc.method, tc.path, tc.body, nil)
		if rec.Code != tc.status {
			t.Errorf("%s %s = %d, want %d: %s", tc.method, tc.path, rec.Code, tc.status, rec.Body.String())
			continue
		}
		if code := errEnvelope(t, rec); code != tc.code {
			t.Errorf("%s %s: envelope code = %q, want %q", tc.method, tc.path, code, tc.code)
		}
	}
}

// TestMetricsEndpoint checks that /api/v1/metrics serves parseable
// Prometheus text exposition covering all four metric families after
// traffic has exercised the server and the engine.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t)
	// Generate traffic: a memoized select, an engine-running select, a 404
	// and a 405.
	doJSON(t, s, http.MethodPost, "/api/v1/select", `{"budget":2}`, nil)
	doJSON(t, s, http.MethodPost, "/api/v1/select", `{"budget":2,"feedback":{"priority":[0]}}`, nil)
	doJSON(t, s, http.MethodGet, "/api/v1/nope", "", nil)
	doJSON(t, s, http.MethodDelete, "/api/v1/select", "", nil)

	rec := doJSON(t, s, http.MethodGet, "/api/v1/metrics", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics Content-Type = %q", ct)
	}
	text := rec.Body.String()

	// Parseability: every non-comment line is `name{labels} value` or
	// `name value`, and every metric name is announced by a TYPE line.
	typed := map[string]bool{}
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("line %d not `series value`: %q", ln+1, line)
		}
		name := fields[0]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("line %d: unterminated labels: %q", ln+1, line)
			}
			name = name[:i]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				base = strings.TrimSuffix(name, suffix)
			}
		}
		if !typed[name] && !typed[base] {
			t.Fatalf("line %d: series %q has no TYPE line", ln+1, line)
		}
	}

	// Family coverage: server, core, campaign and client metrics all appear
	// on one scrape.
	for _, want := range []string{
		`podium_http_requests_total{code="200",method="POST",route="select"} 2`,
		`podium_http_requests_total{code="404",method="GET",route="unmatched"} 1`,
		`podium_http_requests_total{code="405",method="DELETE",route="select"} 1`,
		"podium_http_request_duration_seconds_bucket",
		"podium_snapshot_epoch 0",
		"podium_engine_selections_total",
		`podium_engine_stage_seconds_count{stage="argmax"}`,
		"podium_campaign_rounds_total 0",
		"podium_client_retries_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	// The engine ran at least once (the feedback select is never memoized).
	if !strings.Contains(text, "podium_engine_selections_total 1") &&
		!strings.Contains(text, "podium_engine_selections_total 2") {
		t.Errorf("engine selections not counted:\n%s", grepLines(text, "podium_engine_selections_total"))
	}
}

func grepLines(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}

// TestTraceHeaderAttachesSpans checks that X-Podium-Trace: 1 (and ?trace=1)
// attach a span tree to select/query responses, and that untraced responses
// carry no trace key at all.
func TestTraceHeaderAttachesSpans(t *testing.T) {
	s := newTestServer(t)
	type traced struct {
		Trace *struct {
			Name     string `json:"name"`
			Ms       float64 `json:"ms"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children,omitempty"`
		} `json:"trace"`
	}

	// Untraced: no trace key, even on the memoized path.
	rec := doJSON(t, s, http.MethodPost, "/api/v1/select", `{"budget":2}`, nil)
	if strings.Contains(rec.Body.String(), `"trace"`) {
		t.Fatalf("untraced select body has a trace key: %s", rec.Body.String())
	}

	// Header form, engine path.
	req := httptest.NewRequest(http.MethodPost, "/api/v1/select",
		strings.NewReader(`{"budget":2,"feedback":{"priority":[0]}}`))
	req.Header.Set("X-Podium-Trace", "1")
	hrec := httptest.NewRecorder()
	s.ServeHTTP(hrec, req)
	var tr traced
	if err := json.Unmarshal(hrec.Body.Bytes(), &tr); err != nil || tr.Trace == nil {
		t.Fatalf("traced select: %v: %s", err, hrec.Body.String())
	}
	if tr.Trace.Name != "select" || len(tr.Trace.Children) == 0 {
		t.Fatalf("trace tree = %+v", tr.Trace)
	}
	names := map[string]bool{}
	for _, c := range tr.Trace.Children {
		names[c.Name] = true
	}
	for _, want := range []string{"decode", "greedy", "report"} {
		if !names[want] {
			t.Errorf("trace missing child %q (have %v)", want, names)
		}
	}

	// Query form (?trace=1), memoized select path: the span tree is attached
	// without disturbing the cached, untraced response.
	rec = doJSON(t, s, http.MethodPost, "/api/v1/select?trace=1", `{"budget":2}`, nil)
	var tr2 traced
	if err := json.Unmarshal(rec.Body.Bytes(), &tr2); err != nil || tr2.Trace == nil {
		t.Fatalf("?trace=1 select: %v: %s", err, rec.Body.String())
	}
	rec = doJSON(t, s, http.MethodPost, "/api/v1/select", `{"budget":2}`, nil)
	if strings.Contains(rec.Body.String(), `"trace"`) {
		t.Fatalf("trace leaked into the memoized response: %s", rec.Body.String())
	}

	// Query endpoint, header form.
	req = httptest.NewRequest(http.MethodPost, "/api/v1/query",
		strings.NewReader(`{"query":"SELECT 2 USERS"}`))
	req.Header.Set("X-Podium-Trace", "1")
	hrec = httptest.NewRecorder()
	s.ServeHTTP(hrec, req)
	var tr3 traced
	if err := json.Unmarshal(hrec.Body.Bytes(), &tr3); err != nil || tr3.Trace == nil {
		t.Fatalf("traced query: %v: %s", err, hrec.Body.String())
	}
	if tr3.Trace.Name != "query" {
		t.Fatalf("query trace root = %q", tr3.Trace.Name)
	}
}

// TestObsDisabledStillServes flips instrumentation off and checks dispatch
// still routes, 405s and 404s identically — the benchmark's comparison mode
// must not change observable behavior.
func TestObsDisabledStillServes(t *testing.T) {
	s := newTestServer(t)
	s.SetObsEnabled(false)
	if rec := doJSON(t, s, http.MethodGet, "/api/v1/status", "", nil); rec.Code != http.StatusOK {
		t.Fatalf("status with obs off = %d", rec.Code)
	}
	if rec := doJSON(t, s, http.MethodDelete, "/api/v1/select", "", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("405 with obs off = %d", rec.Code)
	}
	rec := doJSON(t, s, http.MethodGet, "/api/nope", "", nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("404 with obs off = %d", rec.Code)
	}
	// Counters must not have moved (precreated series exist but stay 0).
	mrec := doJSON(t, s, http.MethodGet, "/api/v1/metrics", "", nil)
	text := mrec.Body.String()
	if want := `podium_http_requests_total{code="200",method="GET",route="status"} 0`; !strings.Contains(text, want) {
		t.Fatalf("obs-off requests were counted; want %q:\n%s", want, grepLines(text, `route="status"`))
	}
	// The 405 and the unmatched 404 were not counted either: their counter
	// series are created lazily on first count, so with obs off they must
	// not exist (the unmatched latency histogram is precreated but stays 0).
	for _, absent := range []string{`method="DELETE"`, `requests_total{code="404",method="GET",route="unmatched"}`} {
		if strings.Contains(text, absent) {
			t.Fatalf("obs-off error was counted:\n%s", grepLines(text, absent))
		}
	}
	if want := `podium_http_request_duration_seconds_count{route="unmatched"} 0`; !strings.Contains(text, want) {
		t.Fatalf("obs-off 404 recorded latency:\n%s", grepLines(text, "unmatched"))
	}
}

// TestIndexListsRoutes checks the index page renders the v1 route table.
func TestIndexListsRoutes(t *testing.T) {
	s := newTestServer(t)
	rec := doJSON(t, s, http.MethodGet, "/", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("index = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"/api/v1/select", "/api/v1/metrics", "/api/v1/campaigns/{id}", "Deprecation"} {
		if !strings.Contains(body, want) {
			t.Errorf("index page missing %q", want)
		}
	}
}

// TestPathParamTrailingGarbage pins the path-matching semantics that replaced
// manual prefix trimming.
func TestPathParamTrailingGarbage(t *testing.T) {
	cases := []struct {
		pattern, path string
		match         bool
		params        map[string]string
	}{
		{"/api/v1/campaigns/{id}", "/api/v1/campaigns/17", true, map[string]string{"id": "17"}},
		{"/api/v1/campaigns/{id}", "/api/v1/campaigns/17/", false, nil},
		{"/api/v1/campaigns/{id}", "/api/v1/campaigns//", false, nil},
		{"/api/v1/campaigns/{id}", "/api/v1/campaigns", false, nil},
		{"/api/v1/campaigns/{id}/cancel", "/api/v1/campaigns/17/cancel", true, map[string]string{"id": "17"}},
		{"/api/v1/campaigns/{id}/cancel", "/api/v1/campaigns/17/cancelX", false, nil},
		{"/api/v1/status", "/api/v1/status/", false, nil},
		{"/api/v1/status", "/api/v1/status", true, nil},
	}
	for _, tc := range cases {
		ok, params := matchSegs(parseSegs(tc.pattern), tc.path)
		if ok != tc.match {
			t.Errorf("match(%q, %q) = %v, want %v", tc.pattern, tc.path, ok, tc.match)
			continue
		}
		if tc.match {
			for k, v := range tc.params {
				if params[k] != v {
					t.Errorf("match(%q, %q): param %s = %q, want %q", tc.pattern, tc.path, k, params[k], v)
				}
			}
		}
	}
}

// TestEnablePprofMounts checks the optional pprof mount answers through the
// route-table fallback.
func TestEnablePprofMounts(t *testing.T) {
	s := newTestServer(t)
	if rec := doJSON(t, s, http.MethodGet, "/debug/pprof/", "", nil); rec.Code != http.StatusNotFound {
		t.Fatalf("pprof before enable = %d, want 404", rec.Code)
	}
	s.EnablePprof()
	if rec := doJSON(t, s, http.MethodGet, "/debug/pprof/", "", nil); rec.Code != http.StatusOK {
		t.Fatalf("pprof index = %d", rec.Code)
	}
}
