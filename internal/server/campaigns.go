package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"

	"podium/internal/campaign"
	"podium/internal/groups"
	"podium/internal/profile"
)

// Campaign endpoints drive the procurement orchestrator (internal/campaign)
// over the server's published snapshots:
//
//	POST /api/campaigns             start a campaign (runs asynchronously)
//	GET  /api/campaigns             list campaign summaries
//	GET  /api/campaigns/{id}        one campaign with its round transcript
//	POST /api/campaigns/{id}/cancel ask a campaign to stop
//
// A campaign captures the snapshot current at creation: selections and
// repairs run against that epoch for the campaign's whole life, so a
// mutation batch published mid-campaign never shifts group IDs under it.
type campaignRegistry struct {
	mu   sync.Mutex
	next int
	byID map[int]*runningCampaign
	// dir, when set, gives every campaign a write-ahead log at
	// dir/campaign-<id>.wal; otherwise campaigns are journaled in memory
	// only (their transcript lives in the orchestrator state).
	dir string
}

type runningCampaign struct {
	id    int
	epoch uint64
	c     *campaign.Campaign
}

func newCampaignRegistry() *campaignRegistry {
	return &campaignRegistry{byID: make(map[int]*runningCampaign)}
}

// SetCampaignDir makes subsequent campaigns durable: each one journals to a
// WAL under dir, the same files a CLI resume would replay. Call before
// serving traffic.
func (s *Server) SetCampaignDir(dir string) {
	s.camps.mu.Lock()
	s.camps.dir = dir
	s.camps.mu.Unlock()
}

// campaignRequest is the POST /api/campaigns body. Selection fields mirror
// /api/select; the rest parameterize the orchestrator and the simulated
// population.
type campaignRequest struct {
	Budget        int     `json:"budget"`
	Weights       string  `json:"weights"`
	Coverage      string  `json:"coverage"`
	Rule          string  `json:"rule"`
	Seed          int64   `json:"seed"`
	MaxRounds     int     `json:"max_rounds"`
	MaxAttempts   int     `json:"max_attempts"`
	TimeoutMs     float64 `json:"timeout_ms"`
	BackoffBaseMs float64 `json:"backoff_base_ms"`
	BackoffCapMs  float64 `json:"backoff_cap_ms"`
	Workers       int     `json:"workers"`
	TimeScale     float64 `json:"time_scale"`
	Parallelism   int     `json:"parallelism"`
	MeanLatencyMs float64 `json:"mean_latency_ms"`
	NonResponse   float64 `json:"non_response"`
	Decline       float64 `json:"decline"`
}

// campaignWaveJSON summarizes one solicitation wave.
type campaignWaveJSON struct {
	Attempt   int     `json:"attempt"`
	BackoffMs float64 `json:"backoff_ms"`
	Answered  int     `json:"answered"`
	Late      int     `json:"late"`
	Silent    int     `json:"silent"`
	Declined  int     `json:"declined"`
}

// campaignRoundJSON is one transcript round.
type campaignRoundJSON struct {
	Round    int                `json:"round"`
	Repaired bool               `json:"repaired"`
	Selected []int              `json:"selected"`
	Dead     []int              `json:"dead,omitempty"`
	Waves    []campaignWaveJSON `json:"waves"`
	Coverage float64            `json:"coverage"`
}

// campaignJSON is a campaign summary; the detail view adds Rounds.
type campaignJSON struct {
	ID       int                 `json:"id"`
	Epoch    uint64              `json:"epoch"`
	State    string              `json:"state"`
	Budget   int                 `json:"budget"`
	Round    int                 `json:"round"`
	Accepted []int               `json:"accepted"`
	Declined []int               `json:"declined,omitempty"`
	Dead     []int               `json:"dead,omitempty"`
	Pending  []int               `json:"pending,omitempty"`
	Coverage float64             `json:"coverage"`
	Rounds   []campaignRoundJSON `json:"rounds,omitempty"`
	Error    string              `json:"error,omitempty"`
}

func usersToInts(users []profile.UserID) []int {
	out := make([]int, len(users))
	for i, u := range users {
		out[i] = int(u)
	}
	return out
}

func campaignState(st campaign.Status) string {
	switch {
	case st.Err != "":
		return "failed"
	case st.Paused:
		return "paused"
	case !st.Done:
		return "running"
	case st.Cancelled:
		return "cancelled"
	case st.Converged:
		return "converged"
	default:
		return "exhausted"
	}
}

func campaignToJSON(rc *runningCampaign, detail bool) campaignJSON {
	st := rc.c.Status()
	out := campaignJSON{
		ID:       rc.id,
		Epoch:    rc.epoch,
		State:    campaignState(st),
		Budget:   st.Budget,
		Round:    st.Round,
		Accepted: usersToInts(st.Accepted),
		Declined: usersToInts(st.Declined),
		Dead:     usersToInts(st.Dead),
		Pending:  usersToInts(st.Pending),
		Coverage: st.Coverage,
		Error:    st.Err,
	}
	if !detail {
		return out
	}
	for _, rr := range rc.c.Transcript() {
		rj := campaignRoundJSON{
			Round:    rr.Round,
			Repaired: rr.Repaired,
			Selected: usersToInts(rr.Selected),
			Dead:     usersToInts(rr.Dead),
			Coverage: rr.Coverage,
		}
		for _, w := range rr.Waves {
			wj := campaignWaveJSON{Attempt: w.Attempt, BackoffMs: w.BackoffMs}
			for _, res := range w.Results {
				switch res.Outcome {
				case campaign.OutcomeAnswered:
					wj.Answered++
				case campaign.OutcomeLate:
					wj.Late++
				case campaign.OutcomeSilent:
					wj.Silent++
				case campaign.OutcomeDeclined:
					wj.Declined++
				}
			}
			rj.Waves = append(rj.Waves, wj)
		}
		out.Rounds = append(out.Rounds, rj)
	}
	return out
}

// handleCampaignsList serves GET on the collection.
func (s *Server) handleCampaignsList(w http.ResponseWriter, r *http.Request) {
	s.camps.mu.Lock()
	rcs := make([]*runningCampaign, 0, len(s.camps.byID))
	for _, rc := range s.camps.byID {
		rcs = append(rcs, rc)
	}
	s.camps.mu.Unlock()
	sort.Slice(rcs, func(i, j int) bool { return rcs[i].id < rcs[j].id })
	out := make([]campaignJSON, 0, len(rcs))
	for _, rc := range rcs {
		out = append(out, campaignToJSON(rc, false))
	}
	writeJSON(w, r, http.StatusOK, out)
}

func (s *Server) createCampaign(w http.ResponseWriter, r *http.Request) {
	var req campaignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "decoding request: %v", err)
		return
	}
	ws, err := parseWeights(req.Weights)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "%v", err)
		return
	}
	cs, err := parseCoverage(req.Coverage)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "%v", err)
		return
	}
	rule, err := parseRule(req.Rule)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "%v", err)
		return
	}
	if ws == groups.WeightEBS && !rule.EBSCompatible() {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument,
			"rule %q does not support EBS weights (exact rank arithmetic implements only the coverage objective)", rule.Name())
		return
	}
	if req.Budget <= 0 {
		req.Budget = 8
	}
	if req.TimeScale < 0 || req.TimeScale > 1 {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "time_scale must be in [0,1]")
		return
	}
	if req.Workers > 64 {
		req.Workers = 64
	}
	// The journaled config keeps "" for the default rule so pre-rule WALs
	// (and default campaigns created before this field existed) stay
	// byte-identical on resume.
	ruleName := ""
	if !rule.IsDefault() {
		ruleName = rule.Name()
	}
	cfg := campaign.Config{
		Budget:        req.Budget,
		Rule:          ruleName,
		MaxRounds:     req.MaxRounds,
		MaxAttempts:   req.MaxAttempts,
		TimeoutMs:     req.TimeoutMs,
		BackoffBaseMs: req.BackoffBaseMs,
		BackoffCapMs:  req.BackoffCapMs,
		Workers:       req.Workers,
		TimeScale:     req.TimeScale,
		Seed:          req.Seed,
		Parallelism:   clampParallelism(req.Parallelism),
		Metrics:       s.campMet,
		Behavior: campaign.Behavior{
			MeanLatencyMs: req.MeanLatencyMs,
			NonResponse:   req.NonResponse,
			Decline:       req.Decline,
		},
	}

	sn := s.Snapshot()
	inst := sn.Instance(ws, cs, cfg.Budget)

	s.camps.mu.Lock()
	s.camps.next++
	id := s.camps.next
	dir := s.camps.dir
	s.camps.mu.Unlock()

	var c *campaign.Campaign
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			writeError(w, r, http.StatusInternalServerError, codeInternal, "creating campaign dir: %v", err)
			return
		}
		c, err = campaign.NewWithWAL(inst, nil, cfg, filepath.Join(dir, fmt.Sprintf("campaign-%d.wal", id)))
		if err != nil {
			writeError(w, r, http.StatusInternalServerError, codeInternal, "opening campaign journal: %v", err)
			return
		}
	} else {
		c = campaign.New(inst, nil, cfg)
	}
	rc := &runningCampaign{id: id, epoch: sn.Epoch(), c: c}
	s.camps.mu.Lock()
	s.camps.byID[id] = rc
	s.camps.mu.Unlock()
	go c.Run() // errors surface through Status().Err / the "failed" state

	writeJSON(w, r, http.StatusOK, campaignToJSON(rc, false))
}

// campaignFromPath resolves the {id} path parameter to a running campaign.
// Non-numeric or non-canonical ids ("007", "1x", "+1") are no such resource:
// 404, not 400 — the route table already guarantees the shape of the path.
func (s *Server) campaignFromPath(w http.ResponseWriter, r *http.Request) (*runningCampaign, bool) {
	raw := pathParam(r, "id")
	id, err := strconv.Atoi(raw)
	if err != nil || strconv.Itoa(id) != raw {
		writeError(w, r, http.StatusNotFound, codeNotFound, "no such campaign %q", raw)
		return nil, false
	}
	s.camps.mu.Lock()
	rc, ok := s.camps.byID[id]
	s.camps.mu.Unlock()
	if !ok {
		writeError(w, r, http.StatusNotFound, codeNotFound, "unknown campaign %d", id)
		return nil, false
	}
	return rc, true
}

// handleCampaignGet serves GET /api/v1/campaigns/{id}: the detail view with
// the round transcript.
func (s *Server) handleCampaignGet(w http.ResponseWriter, r *http.Request) {
	rc, ok := s.campaignFromPath(w, r)
	if !ok {
		return
	}
	writeJSON(w, r, http.StatusOK, campaignToJSON(rc, true))
}

// handleCampaignCancel serves POST /api/v1/campaigns/{id}/cancel.
func (s *Server) handleCampaignCancel(w http.ResponseWriter, r *http.Request) {
	rc, ok := s.campaignFromPath(w, r)
	if !ok {
		return
	}
	rc.c.Cancel()
	writeJSON(w, r, http.StatusOK, campaignToJSON(rc, false))
}

// CancelCampaigns cancels every campaign and waits for their orchestrators
// to finish — shutdown hygiene for embedding servers.
func (s *Server) CancelCampaigns() {
	s.camps.mu.Lock()
	rcs := make([]*runningCampaign, 0, len(s.camps.byID))
	for _, rc := range s.camps.byID {
		rcs = append(rcs, rc)
	}
	s.camps.mu.Unlock()
	for _, rc := range rcs {
		rc.c.Cancel()
	}
	for _, rc := range rcs {
		<-rc.c.Done()
	}
}

// PauseCampaigns pauses every campaign at its next journaled boundary and
// waits for the orchestrators to return — the graceful-shutdown path.
// Unlike CancelCampaigns, no terminal verdict is journaled: a journaled
// campaign's WAL is left resumable, and restarting against the same
// campaign directory continues each campaign bit-identically.
func (s *Server) PauseCampaigns() {
	s.camps.mu.Lock()
	rcs := make([]*runningCampaign, 0, len(s.camps.byID))
	for _, rc := range s.camps.byID {
		rcs = append(rcs, rc)
	}
	s.camps.mu.Unlock()
	for _, rc := range rcs {
		rc.c.Pause()
	}
	for _, rc := range rcs {
		<-rc.c.Done()
	}
}
