package server

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"
)

// This file is the serving layer's armor: per-request middleware (panic
// recovery, body caps, deadlines), liveness/readiness endpoints, and the
// configured http.Server lifecycle with signal-driven graceful drain that
// both podium-server modes share. The design constraint throughout is that
// hardening must not tax the lock-free read path: the middleware adds one
// small allocation and one deferred recover per request, both noise next to
// instance lookup and JSON encoding.

// HardenOptions tunes the per-request protective middleware.
type HardenOptions struct {
	// RequestTimeout bounds each request's context (default 30s; negative
	// disables). Handlers observe it through r.Context(); it is the
	// server-side counterpart of the client's per-request deadline.
	RequestTimeout time.Duration
	// MaxBodyBytes caps request bodies via http.MaxBytesReader (default
	// 8 MiB; negative disables). Oversized bodies surface as decode errors
	// in the handler, i.e. 400s, not OOMs.
	MaxBodyBytes int64
	// Logf receives panic reports with stack traces (default log.Printf).
	Logf func(format string, args ...interface{})
}

func (o HardenOptions) withDefaults() HardenOptions {
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.MaxBodyBytes == 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Hardened wraps the server's handler with panic recovery, a request body
// cap and a per-request deadline. A handler panic becomes a logged 500 (with
// stack trace) instead of a killed connection — except http.ErrAbortHandler,
// which is re-panicked so net/http aborts the connection as intended (the
// writeJSON short-write path and fault injection rely on that).
func (s *Server) Hardened(opts HardenOptions) http.Handler {
	return HardenedHandler(s, opts)
}

// HardenedHandler applies the same hardening to an arbitrary inner handler —
// the shard coordinator fronts a Server without being one, and its fan-out
// endpoints deserve the identical panic/body/deadline envelope.
func HardenedHandler(inner http.Handler, opts HardenOptions) http.Handler {
	opts = opts.withDefaults()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hw := &hardenedWriter{ResponseWriter: w}
		defer func() {
			if e := recover(); e != nil {
				if err, ok := e.(error); ok && err == http.ErrAbortHandler {
					panic(e)
				}
				opts.Logf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, e, debug.Stack())
				if !hw.wroteHeader {
					writeError(hw, r, http.StatusInternalServerError, codeInternal, "internal error")
				} else {
					// Headers are out; the only honest move is to kill the
					// connection rather than serve a truncated 200.
					panic(http.ErrAbortHandler)
				}
			}
		}()
		if opts.MaxBodyBytes > 0 && r.Body != nil && r.Body != http.NoBody {
			r.Body = http.MaxBytesReader(hw, r.Body, opts.MaxBodyBytes)
		}
		if opts.RequestTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), opts.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		inner.ServeHTTP(hw, r)
	})
}

// hardenedWriter tracks whether the header has been written, so the recovery
// path knows whether a 500 can still be sent.
type hardenedWriter struct {
	http.ResponseWriter
	wroteHeader bool
}

func (h *hardenedWriter) WriteHeader(status int) {
	h.wroteHeader = true
	h.ResponseWriter.WriteHeader(status)
}

func (h *hardenedWriter) Write(p []byte) (int, error) {
	h.wroteHeader = true
	return h.ResponseWriter.Write(p)
}

// handleHealthz is liveness: 200 whenever the process can serve at all.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, r, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 while accepting traffic, 503 once draining
// so load balancers stop routing here before in-flight requests finish.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, r, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, r, http.StatusOK, map[string]string{"status": "ready"})
}

// StartDrain flips /readyz to 503. Run calls it when shutdown begins;
// embedders driving their own lifecycle call it before http.Server.Shutdown.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// RunOptions configures the shared listener lifecycle (both podium-server
// modes run through it): http.Server timeouts, the drain deadline, and the
// shutdown trigger.
type RunOptions struct {
	// ReadHeaderTimeout/ReadTimeout/WriteTimeout/IdleTimeout configure the
	// http.Server (defaults 5s/30s/60s/120s; negative disables one). Without
	// them a single slow-loris client can pin connections forever.
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration
	// DrainTimeout bounds graceful shutdown: in-flight requests get this
	// long to finish before the listener is torn down hard (default 10s).
	DrainTimeout time.Duration
	// Signals, when set, replaces the default SIGINT/SIGTERM subscription —
	// tests inject a channel here to drive shutdown deterministically.
	Signals <-chan os.Signal
	// OnReady runs once the listener is bound, with the bound address
	// (useful with ":0").
	OnReady func(addr net.Addr)
	// OnDrain runs when shutdown begins, before in-flight requests are
	// drained — the place to flip readiness (Server.StartDrain).
	OnDrain func()
	// Logf receives lifecycle messages (default log.Printf).
	Logf func(format string, args ...interface{})
}

func (o RunOptions) withDefaults() RunOptions {
	if o.ReadHeaderTimeout == 0 {
		o.ReadHeaderTimeout = 5 * time.Second
	}
	if o.ReadTimeout == 0 {
		o.ReadTimeout = 30 * time.Second
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 60 * time.Second
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 120 * time.Second
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 10 * time.Second
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// clampTimeout maps the "negative disables" convention onto http.Server's
// "zero disables".
func clampTimeout(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// Run serves h on addr with configured timeouts until SIGINT/SIGTERM (or a
// send on opts.Signals), then shuts down gracefully: OnDrain fires (flip
// readiness, stop advertising), in-flight requests drain up to DrainTimeout,
// and Run returns nil on a clean drain. A listener or serve failure returns
// the error immediately. Campaign pausing and apply-loop flushing belong to
// the caller, after Run returns — see cmd/podium-server.
func Run(addr string, h http.Handler, opts RunOptions) error {
	opts = opts.withDefaults()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	hs := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: clampTimeout(opts.ReadHeaderTimeout),
		ReadTimeout:       clampTimeout(opts.ReadTimeout),
		WriteTimeout:      clampTimeout(opts.WriteTimeout),
		IdleTimeout:       clampTimeout(opts.IdleTimeout),
	}
	if opts.OnReady != nil {
		opts.OnReady(ln.Addr())
	}

	sigCh := opts.Signals
	if sigCh == nil {
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, syscall.SIGINT, syscall.SIGTERM)
		defer signal.Stop(ch)
		sigCh = ch
	}

	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	select {
	case err := <-errCh:
		// Serve never returns nil; anything here is a real failure.
		return fmt.Errorf("server: %w", err)
	case sig := <-sigCh:
		opts.Logf("server: %v — draining (deadline %s)", sig, opts.DrainTimeout)
	}
	if opts.OnDrain != nil {
		opts.OnDrain()
	}
	ctx, cancel := context.WithTimeout(context.Background(), opts.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(ctx); err != nil {
		// Deadline hit with requests still in flight: tear down hard.
		hs.Close()
		return fmt.Errorf("server: drain incomplete: %w", err)
	}
	return nil
}
