package server

import (
	"encoding/json"
	"sync"

	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/profile"
)

// Snapshot is one immutable epoch of the served state: a sealed repository
// view, its group index with every derived structure (CSR, adjacency stats)
// pre-built, and per-epoch memoization of the diversification tables that
// the read path would otherwise recompute per request. Snapshots are
// published through the server's atomic pointer; once published, nothing in
// a snapshot is ever mutated, so any number of /api/select, /api/query,
// /api/groups, /api/distribution and /api/status requests proceed lock-free
// against the epoch they loaded — a mutation batch being applied
// concurrently only ever touches the writer's private clone of the next
// epoch.
type Snapshot struct {
	epoch uint64
	repo  *profile.Repository
	index *groups.Index
	// changeSeq is the index's selection-relevance watermark at publication:
	// the sequence number of the last mutation batch that changed anything a
	// selection can observe. Epochs published by selection-irrelevant batches
	// (same-bucket score rewrites) carry the same changeSeq as their
	// predecessor, which is what lets the cross-epoch select cache serve
	// straight through them.
	changeSeq uint64

	// insts memoizes ComputeWeights/ComputeCoverage (and EBS ranks) per
	// (weights, coverage, budget): immutability makes the tables valid for
	// the snapshot's whole lifetime, so only the first request of each
	// combination pays the O(|𝒢|) construction.
	insts sync.Map // instKey → *groups.Instance

	// topBySize memoizes the full size-descending group order behind
	// /api/groups, an O(|𝒢| log |𝒢|) sort the pre-snapshot server paid per
	// request.
	topOnce   sync.Once
	topBySize []groups.GroupID

	// sels memoizes complete feedback-free selection responses. Greedy is
	// deterministic on an immutable snapshot, so the response for a given
	// (weights, coverage, budget, topK) is a pure function of the epoch:
	// only the first such request per epoch runs the selection and builds
	// (and marshals) the explanation report.
	sels sync.Map // selKey → *selEntry
}

// selKey identifies one memoized selection response. Parallelism is
// deliberately absent: it changes selection latency, never results. rule is
// the normalized rule name — distinct rules memoize distinct responses.
type selKey struct {
	ws           groups.WeightScheme
	cs           groups.CoverageScheme
	budget, topK int
	rule         string
}

type selEntry struct {
	once sync.Once
	resp selectResponse
	data []byte // compact JSON of resp, newline-terminated
	err  error
}

// instKey identifies one memoized diversification instance.
type instKey struct {
	ws     groups.WeightScheme
	cs     groups.CoverageScheme
	budget int
}

// newSnapshot seals repo and freezes ix so every lazy structure is built
// before concurrent readers can reach them, then wraps both as epoch e.
func newSnapshot(e uint64, repo *profile.Repository, ix *groups.Index) *Snapshot {
	repo.Seal()
	ix.Freeze()
	return &Snapshot{epoch: e, repo: repo, index: ix, changeSeq: ix.ChangeSeq()}
}

// Epoch returns the snapshot's publication sequence number.
func (sn *Snapshot) Epoch() uint64 { return sn.epoch }

// ChangeSeq returns the selection-relevance watermark the snapshot was
// published at.
func (sn *Snapshot) ChangeSeq() uint64 { return sn.changeSeq }

// Repo returns the sealed repository view. Callers must not mutate it.
func (sn *Snapshot) Repo() *profile.Repository { return sn.repo }

// Index returns the frozen group index. Callers must not mutate it.
func (sn *Snapshot) Index() *groups.Index { return sn.index }

// Instance returns the memoized diversification instance (𝒢, wei, cov) for
// the scheme pair and budget, computing it on first use. The returned
// instance is shared by concurrent requests; the selection core and the
// explanation builder treat instances as read-only.
func (sn *Snapshot) Instance(ws groups.WeightScheme, cs groups.CoverageScheme, budget int) *groups.Instance {
	k := instKey{ws, cs, budget}
	if v, ok := sn.insts.Load(k); ok {
		return v.(*groups.Instance)
	}
	v, _ := sn.insts.LoadOrStore(k, groups.NewInstance(sn.index, ws, cs, budget))
	return v.(*groups.Instance)
}

// SelectResponse returns the memoized feedback-free selection response for
// the scheme pair, budget and report size, running the greedy core and the
// explanation builder only on the first request per combination. The opt
// passed by the winning caller steers that one computation's parallelism;
// losers share its (identical) result. data is the compact JSON encoding of
// resp, ready to write; err is the marshalling error, if any.
// rl selects the objective; the default rule runs the historical engine, so
// its memoized responses are byte-identical to pre-rules servers (the rule
// field is omitted for the default).
func (sn *Snapshot) SelectResponse(ws groups.WeightScheme, cs groups.CoverageScheme, budget, topK int, rl *core.Rule, opt core.Options) (resp selectResponse, data []byte, err error) {
	rl = rl.OrDefault()
	k := selKey{ws, cs, budget, topK, rl.Name()}
	v, _ := sn.sels.LoadOrStore(k, &selEntry{})
	e := v.(*selEntry)
	e.once.Do(func() {
		inst := sn.Instance(ws, cs, budget)
		var res *core.Result
		if rl.IsDefault() {
			res = core.GreedyOpts(inst, budget, opt)
		} else {
			res, e.err = core.GreedyRule(inst, budget, rl, opt)
			if e.err != nil {
				return
			}
		}
		e.resp = buildSelectResponse(inst, res, nil, topK)
		if !rl.IsDefault() {
			e.resp.Rule = rl.Name()
		}
		e.data, e.err = json.Marshal(e.resp)
		if e.err == nil {
			e.data = append(e.data, '\n')
		}
	})
	return e.resp, e.data, e.err
}

// TopKBySize returns the IDs of the k largest groups, memoizing the full
// sorted order on first use. Callers must not modify the returned slice.
func (sn *Snapshot) TopKBySize(k int) []groups.GroupID {
	sn.topOnce.Do(func() {
		sn.topBySize = sn.index.TopKBySize(sn.index.NumGroups())
	})
	if k > len(sn.topBySize) {
		k = len(sn.topBySize)
	}
	return sn.topBySize[:k]
}
