package server

// The route table: every endpoint is declared once, with its method
// constraints, its canonical /api/v1 path and (for pre-v1 endpoints) its
// legacy /api alias. Dispatch walks the table before falling back to the
// embedded ServeMux, which now holds only out-of-table handlers (ad hoc test
// routes, optional pprof). The table is also where per-route observability
// lives: request counters by (route, method, code) and a latency histogram
// per route, recorded by a thin wrapper around each handler.
//
// Legacy aliases serve byte-identical bodies and statuses — same handler,
// same method rules — plus a "Deprecation: true" response header steering
// clients to the v1 path. Path parameters ({id}) replace the manual prefix
// trimming the campaign endpoints used to do; a path with trailing garbage
// after a parameter no longer matches and falls through to the unified 404.

import (
	"context"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"time"
)

// route is one row of the table.
type route struct {
	name    string
	v1      string
	legacy  string
	segs    []routeSeg
	legSegs []routeSeg
	// handlers maps method → handler. nil means any method is accepted and
	// any dispatches to anyMethod (index, healthz, readyz — probes send
	// HEADs and the pre-table handlers never method-checked these).
	handlers  map[string]http.HandlerFunc
	anyMethod http.HandlerFunc
	allow     string
	metrics   *routeMetrics
}

type routeSeg struct {
	lit   string
	param string // non-empty → wildcard segment captured under this name
}

type router struct {
	routes []*route
}

func parseSegs(pattern string) []routeSeg {
	parts := strings.Split(strings.TrimPrefix(pattern, "/"), "/")
	segs := make([]routeSeg, len(parts))
	for i, p := range parts {
		if strings.HasPrefix(p, "{") && strings.HasSuffix(p, "}") {
			segs[i] = routeSeg{param: p[1 : len(p)-1]}
		} else {
			segs[i] = routeSeg{lit: p}
		}
	}
	return segs
}

// matchSegs matches a concrete request path (starting with '/') against a
// parsed pattern without splitting the path. A trailing slash is a distinct,
// unmatched path — "/api/v1/status/" is not "/api/v1/status".
func matchSegs(pat []routeSeg, path string) (bool, map[string]string) {
	i := 1
	var params map[string]string
	last := len(pat) - 1
	for si, seg := range pat {
		j := strings.IndexByte(path[i:], '/')
		var part string
		if j < 0 {
			part = path[i:]
			i = len(path)
		} else {
			part = path[i : i+j]
			i += j + 1
		}
		if seg.param != "" {
			if part == "" {
				return false, nil
			}
			if params == nil {
				params = make(map[string]string, 2)
			}
			params[seg.param] = part
		} else if part != seg.lit {
			return false, nil
		}
		if si < last && j < 0 {
			return false, nil // path shorter than pattern
		}
		if si == last && j >= 0 {
			return false, nil // leftover segments or trailing slash
		}
	}
	return true, params
}

func (rt *router) match(path string) (*route, map[string]string, bool) {
	for _, r := range rt.routes {
		if ok, params := matchSegs(r.segs, path); ok {
			return r, params, false
		}
		if r.legSegs != nil {
			if ok, params := matchSegs(r.legSegs, path); ok {
				return r, params, true
			}
		}
	}
	return nil, nil, false
}

// paramsCtxKey carries a matched route's path parameters in the request
// context.
type paramsCtxKey struct{}

// pathParam returns the named path parameter captured by the route table
// ("" when absent).
func pathParam(r *http.Request, name string) string {
	if m, ok := r.Context().Value(paramsCtxKey{}).(map[string]string); ok {
		return m[name]
	}
	return ""
}

// addRoute registers one endpoint. legacy may be "" for v1-only endpoints;
// handlers nil + any non-nil accepts every method.
func (s *Server) addRoute(name, v1, legacy string, handlers map[string]http.HandlerFunc, any http.HandlerFunc) {
	rt := &route{
		name:      name,
		v1:        v1,
		legacy:    legacy,
		segs:      parseSegs(v1),
		handlers:  handlers,
		anyMethod: any,
	}
	if legacy != "" {
		rt.legSegs = parseSegs(legacy)
	}
	methods := make([]string, 0, len(handlers))
	for m := range handlers {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	rt.allow = strings.Join(methods, ", ")
	if any != nil {
		methods = []string{http.MethodGet}
	}
	rt.metrics = newRouteMetrics(s.met, name, methods)
	s.routes.routes = append(s.routes.routes, rt)
}

// buildRoutes declares the API surface. Mutation endpoints are appended by
// NewMutableOpts before the server starts serving.
func (s *Server) buildRoutes() {
	get := func(h http.HandlerFunc) map[string]http.HandlerFunc {
		return map[string]http.HandlerFunc{http.MethodGet: h}
	}
	post := func(h http.HandlerFunc) map[string]http.HandlerFunc {
		return map[string]http.HandlerFunc{http.MethodPost: h}
	}
	s.routes = &router{}
	s.addRoute("status", "/api/v1/status", "/api/status", get(s.handleStatus), nil)
	s.addRoute("groups", "/api/v1/groups", "/api/groups", get(s.handleGroups), nil)
	s.addRoute("configurations", "/api/v1/configurations", "/api/configurations", get(s.handleConfigurations), nil)
	s.addRoute("select", "/api/v1/select", "/api/select", post(s.handleSelect), nil)
	s.addRoute("rules", "/api/v1/rules", "", get(s.handleRules), nil)
	s.addRoute("query", "/api/v1/query", "/api/query", post(s.handleQuery), nil)
	s.addRoute("distribution", "/api/v1/distribution", "/api/distribution", get(s.handleDistribution), nil)
	s.addRoute("campaigns", "/api/v1/campaigns", "/api/campaigns", map[string]http.HandlerFunc{
		http.MethodGet:  s.handleCampaignsList,
		http.MethodPost: s.createCampaign,
	}, nil)
	s.addRoute("campaign", "/api/v1/campaigns/{id}", "/api/campaigns/{id}", get(s.handleCampaignGet), nil)
	s.addRoute("campaign-cancel", "/api/v1/campaigns/{id}/cancel", "/api/campaigns/{id}/cancel", post(s.handleCampaignCancel), nil)
	s.addRoute("metrics", "/api/v1/metrics", "", get(s.handleMetrics), nil)
	s.addRoute("healthz", "/healthz", "", nil, s.handleHealthz)
	s.addRoute("readyz", "/readyz", "", nil, s.handleReadyz)
	s.addRoute("index", "/", "", nil, s.handleIndex)
	// Unmatched paths are counted under one fixed label to keep the metric's
	// cardinality bounded no matter what clients probe for.
	s.unmatched = newRouteMetrics(s.met, "unmatched", nil)
}

// ServeHTTP implements http.Handler: route-table dispatch first, then the
// embedded mux (test handlers, pprof), then the unified 404.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rt, params, legacy := s.routes.match(r.URL.Path)
	if rt == nil {
		if h, pat := s.mux.Handler(r); pat != "" {
			h.ServeHTTP(w, r)
			return
		}
		if s.obsEnabled() {
			s.unmatched.count(r.Method, http.StatusNotFound)
		}
		writeError(w, r, http.StatusNotFound, codeNotFound, "no such endpoint %s", r.URL.Path)
		return
	}
	if legacy {
		w.Header().Set("Deprecation", "true")
	}
	if params != nil {
		r = r.WithContext(context.WithValue(r.Context(), paramsCtxKey{}, params))
	}
	h := rt.anyMethod
	if h == nil {
		h = rt.handlers[r.Method]
	}
	if !s.obsEnabled() {
		if h == nil {
			rt.writeMethodNotAllowed(w, r)
			return
		}
		h(w, r)
		return
	}
	sw := &statusWriter{ResponseWriter: w}
	start := time.Now()
	defer func() {
		rt.metrics.latency.Observe(time.Since(start).Seconds())
		code := sw.status
		if e := recover(); e != nil {
			if code == 0 {
				// Panicked before writing; the hardening middleware will
				// turn this into a 500 (or abort the connection).
				code = http.StatusInternalServerError
			}
			rt.metrics.count(r.Method, code)
			panic(e)
		}
		if code == 0 {
			code = http.StatusOK
		}
		rt.metrics.count(r.Method, code)
	}()
	if h == nil {
		rt.writeMethodNotAllowed(sw, r)
		return
	}
	h(sw, r)
}

func (rt *route) writeMethodNotAllowed(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Allow", rt.allow)
	writeError(w, r, http.StatusMethodNotAllowed, codeMethodNotAllowed,
		"method %s not allowed on %s (allow: %s)", r.Method, rt.v1, rt.allow)
}

// statusWriter captures the response status for the request counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(p)
}

// EnablePprof mounts net/http/pprof's handlers on the server's fallback mux
// (behind podium-server's -pprof flag; off by default because the profile
// endpoints are unauthenticated and can stall a core).
func (s *Server) EnablePprof() {
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Routes returns (name, v1 path, legacy alias, allow) rows for every table
// entry — the golden route-table test and the index page render from this,
// so documentation cannot drift from dispatch.
func (s *Server) Routes() [][4]string {
	out := make([][4]string, 0, len(s.routes.routes))
	for _, rt := range s.routes.routes {
		allow := rt.allow
		if rt.anyMethod != nil {
			allow = "any"
		}
		out = append(out, [4]string{rt.name, rt.v1, rt.legacy, allow})
	}
	return out
}
