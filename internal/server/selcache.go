package server

import (
	"container/list"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/obs"
	"podium/internal/profile"
)

// The watermark-keyed select cache. The per-epoch memoization on Snapshot
// (snapshot.go) makes repeated selects free *within* an epoch, but a live
// write stream publishes a new epoch per batch and every memo starts cold —
// the steady-state cost the ROADMAP calls out. This cache spans epochs: it
// keys complete pre-marshaled responses on (schemes, budget, topK, response
// shape, feedback restriction) and serves them for as long as no
// selection-relevant write has landed, which the groups-layer change records
// decide (groups/delta.go).
//
// Invalidation is computed once per batch, not per request: the single-writer
// apply loop calls applyDelta with the batch's change record before
// publishing the epoch; a non-empty record advances the global watermark and
// stamps the per-user and per-group watermark arrays (last-relevant-mutation
// sequence at user/group granularity — O(Δ) writer work). The read path then
// decides hit-or-miss with one integer comparison: a cached entry computed at
// watermark W is valid for a snapshot whose ChangeSeq is still ≤ W. Batches
// whose mutations move no user between groups (same-bucket score rewrites)
// leave the watermark untouched, so the cache rides through them — the
// mesh exemplar's "serve until lastChangedAt passes the entry" shape, with
// the bucket partition deciding relevance.
//
// A miss does not recompute from scratch. Per (weights, coverage, budget)
// the cache keeps a selState — a core.SelectorState plus the watermark it is
// synced to. The per-user watermark array replays exactly which rows changed
// in (state's seq, snapshot's seq], the state repairs those rows, and the
// selection re-runs seeded from the repaired base: O(Δ + n·k) instead of
// O(links + n·k), bit-identical to a fresh greedy by the SelectorState
// contract. Group-granular watermarks serve diagnostics and the reshape
// fence; the full response depends on every group's weight (the explanation
// report ranks all groups), so response validity itself is gated on the
// global watermark — exact, because irrelevant writes never advance it.
type selectCache struct {
	met *obs.SelectCacheMetrics

	// disabled flips the whole cache off (bench baseline, -select-cache=0).
	disabled atomic.Bool
	// seq is the global watermark — the ChangeSeq of the last non-empty
	// batch. Written by the single writer, read lock-free per request.
	seq atomic.Uint64

	// mu guards the watermark arrays, the entry and state maps, and their
	// recency lists.
	mu sync.Mutex
	// userSeq[u] / groupSeq[g] is the last watermark that touched u / g;
	// reshapeSeq the last that reshaped the group structure.
	userSeq    []uint64
	groupSeq   []uint64
	reshapeSeq uint64
	entries    map[selCacheKey]*selCacheEntry
	states     map[selStateKey]*selState
	// ruleMet caches the per-rule request-counter children (hit/miss/bypass)
	// so the hot path never takes the registry lock.
	ruleMet sync.Map // rule name → *selCacheRuleMet
	// entryLRU / stateLRU order the map keys most- to least-recently used;
	// element values are the map keys so eviction can delete by key.
	entryLRU list.List
	stateLRU list.List

	// Aggregate stats for the steady bench (atomics: read concurrently).
	hits, misses, bypass              atomic.Uint64
	entryEvicts, stateEvicts          atomic.Uint64
	repairs, recomputes, repairedRows atomic.Uint64
	repairNs, recomputeNs, selectNs   atomic.Uint64
}

// maxSelCacheEntries bounds the response map. The map is keyed partly on
// client-supplied feedback, so without a bound it is a memory-growth vector;
// at capacity the least-recently-used entry is evicted (vars, not consts, so
// tests can shrink the caps).
var maxSelCacheEntries = 1024

// maxSelCacheStates bounds the per-(ws,cs,budget) selector states, which hold
// O(n) base arrays each — the expensive side of the cache.
var maxSelCacheStates = 64

// selCacheKey identifies one cached response: the selection parameters —
// including the selection rule, so two rules can never collide on one entry —
// the response shape (pretty and compact responses are distinct pre-marshaled
// bytes — satellite fix: ?pretty=1 must never be answered with compact bytes
// or vice versa), and the canonicalized feedback restriction ("" when
// feedback-free).
type selCacheKey struct {
	ws           groups.WeightScheme
	cs           groups.CoverageScheme
	budget, topK int
	// rule is the normalized rule name (core.Rule.Name — never "", the
	// handler resolves the empty request field to "coverage" before keying).
	rule   string
	pretty bool
	fb     string
}

// selStateKey identifies one delta-repaired selector state. Unlike instKey —
// instances are rule-independent — states embed a rule's base marginals, so
// one state serves exactly one rule.
type selStateKey struct {
	ws     groups.WeightScheme
	cs     groups.CoverageScheme
	budget int
	rule   string
}

// selCacheRuleMet holds one rule's request-outcome counter children.
type selCacheRuleMet struct {
	hits, misses, bypass *obs.Counter
}

// metFor returns (creating on first use) the counter children for a rule.
func (c *selectCache) metFor(rule string) *selCacheRuleMet {
	if v, ok := c.ruleMet.Load(rule); ok {
		return v.(*selCacheRuleMet)
	}
	m := &selCacheRuleMet{
		hits:   c.met.Requests("hit", rule),
		misses: c.met.Requests("miss", rule),
		bypass: c.met.Requests("bypass", rule),
	}
	v, _ := c.ruleMet.LoadOrStore(rule, m)
	return v.(*selCacheRuleMet)
}

type selCacheEntry struct {
	elem *list.Element // position in entryLRU; guarded by selectCache.mu

	mu    sync.Mutex
	valid bool
	seq   uint64 // watermark the response was computed at
	resp  selectResponse
	data  []byte // pre-marshaled (pretty or compact per key), newline-terminated
}

// selState pairs a delta-repaired selector state with the watermark and
// instance it is synced to.
type selState struct {
	elem *list.Element // position in stateLRU; guarded by selectCache.mu

	mu   sync.Mutex
	seq  uint64
	inst *groups.Instance
	st   *core.SelectorState
	// lastRows is st.RepairedUsers at the previous Sync, so the per-sync
	// increment can feed the metric counter.
	lastRows uint64
}

func newSelectCache(met *obs.SelectCacheMetrics) *selectCache {
	return &selectCache{
		met:     met,
		entries: make(map[selCacheKey]*selCacheEntry),
		states:  make(map[selStateKey]*selState),
	}
}

func (c *selectCache) enabled() bool { return !c.disabled.Load() }

// noteBypass records a request the handler routed around the cache (traced
// selections, which need a live span tree), attributed to its rule.
func (c *selectCache) noteBypass(rule string) {
	c.bypass.Add(1)
	c.metFor(rule).bypass.Inc()
}

// applyDelta folds one mutation batch's change record into the watermarks.
// Called by the single writer before the batch's snapshot is published, so by
// the time a reader can hold the new epoch the arrays already cover it. An
// empty delta leaves every watermark untouched: cached entries stay valid
// across the epoch flip, which is the whole point.
func (c *selectCache) applyDelta(d *groups.Delta) {
	c.met.Watermark.Set(int64(d.Seq))
	if d.Empty() {
		return
	}
	c.mu.Lock()
	for _, u := range d.Users {
		for int(u) >= len(c.userSeq) {
			c.userSeq = append(c.userSeq, 0)
		}
		c.userSeq[u] = d.Seq
	}
	for _, g := range d.Groups {
		for int(g) >= len(c.groupSeq) {
			c.groupSeq = append(c.groupSeq, 0)
		}
		c.groupSeq[g] = d.Seq
	}
	if d.Reshaped {
		c.reshapeSeq = d.Seq
	}
	c.mu.Unlock()
	c.seq.Store(d.Seq)
}

// changedSince collects the users touched in watermark range (lo, hi] and
// whether a reshape landed in it — the replay a selector state needs to catch
// up from lo to hi. O(n) scan under the lock; n bool-compares per miss is
// noise next to the selection itself.
func (c *selectCache) changedSince(lo, hi uint64) (users []profile.UserID, reshaped bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for u, s := range c.userSeq {
		if s > lo && s <= hi {
			users = append(users, profile.UserID(u))
		}
	}
	reshaped = c.reshapeSeq > lo && c.reshapeSeq <= hi
	return users, reshaped
}

// GroupWatermark returns the last watermark that touched group g (0 if
// never), for diagnostics and tests.
func (c *selectCache) GroupWatermark(g groups.GroupID) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if int(g) < len(c.groupSeq) {
		return c.groupSeq[g]
	}
	return 0
}

// entry returns the cached-response slot for k, evicting the least-recently-
// used entry when the map is at capacity. Eviction only unlinks the victim
// from the map: a request mid-single-flight on it still holds the pointer and
// completes against the detached entry, which the GC then collects.
func (c *selectCache) entry(k selCacheKey) *selCacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		c.entryLRU.MoveToFront(e.elem)
		return e
	}
	for len(c.entries) >= maxSelCacheEntries {
		back := c.entryLRU.Back()
		delete(c.entries, back.Value.(selCacheKey))
		c.entryLRU.Remove(back)
		c.entryEvicts.Add(1)
		c.met.EntryEvictions.Inc()
	}
	e := &selCacheEntry{}
	e.elem = c.entryLRU.PushFront(k)
	c.entries[k] = e
	c.met.Entries.Set(int64(len(c.entries)))
	return e
}

// state returns the selector-state slot for k with the same LRU policy,
// creating a state that repairs base marginals under k's rule. An evicted
// state's O(n) base arrays stay reachable only from any in-flight compute
// still holding it.
func (c *selectCache) state(k selStateKey, r *core.Rule) *selState {
	c.mu.Lock()
	defer c.mu.Unlock()
	if st, ok := c.states[k]; ok {
		c.stateLRU.MoveToFront(st.elem)
		return st
	}
	for len(c.states) >= maxSelCacheStates {
		back := c.stateLRU.Back()
		delete(c.states, back.Value.(selStateKey))
		c.stateLRU.Remove(back)
		c.stateEvicts.Add(1)
		c.met.StateEvictions.Inc()
	}
	st := &selState{st: core.NewSelectorStateRule(r)}
	st.elem = c.stateLRU.PushFront(k)
	c.states[k] = st
	return st
}

// respond serves one select request through the cache: a single-flight hit
// check on the entry, and on miss a sync-repair-select-marshal under the
// entry's lock. r is the resolved selection rule (k.rule is its name); fb is
// nil for feedback-free requests (k.fb == "" then). The returned data is
// pre-marshaled per k.pretty and newline-terminated.
func (c *selectCache) respond(sn *Snapshot, k selCacheKey, r *core.Rule, fb *core.Feedback, opt core.Options) (selectResponse, []byte, error) {
	target := sn.ChangeSeq()
	rm := c.metFor(k.rule)
	e := c.entry(k)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.valid && e.seq >= target {
		c.hits.Add(1)
		rm.hits.Inc()
		return e.resp, e.data, nil
	}
	c.misses.Add(1)
	rm.misses.Inc()
	resp, err := c.compute(sn, k, r, fb, opt)
	if err != nil {
		return resp, nil, err
	}
	if !r.IsDefault() {
		resp.Rule = r.Name()
	}
	data, err := marshalSelect(resp, k.pretty)
	if err != nil {
		return resp, nil, err
	}
	e.resp, e.data, e.seq, e.valid = resp, data, target, true
	return resp, data, nil
}

// compute produces the response for k against sn, repairing (or recomputing)
// the per-parameter selector state first. Errors come from feedback
// validation (the caller maps them to 400) — the feedback-free path cannot
// fail.
func (c *selectCache) compute(sn *Snapshot, k selCacheKey, r *core.Rule, fb *core.Feedback, opt core.Options) (selectResponse, error) {
	target := sn.ChangeSeq()
	st := c.state(selStateKey{k.ws, k.cs, k.budget, k.rule}, r)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.inst == nil || st.seq < target {
		start := time.Now()
		inst := sn.Instance(k.ws, k.cs, k.budget)
		var repaired bool
		if st.inst == nil {
			repaired = st.st.Sync(inst, nil, true)
		} else {
			users, reshaped := c.changedSince(st.seq, target)
			repaired = st.st.Sync(inst, users, reshaped)
		}
		ns := uint64(time.Since(start).Nanoseconds())
		if repaired {
			c.repairs.Add(1)
			c.repairNs.Add(ns)
			c.met.Repaired.Inc()
		} else {
			c.recomputes.Add(1)
			c.recomputeNs.Add(ns)
			c.met.Recomputed.Inc()
		}
		c.repairedRows.Add(st.st.RepairedUsers - st.lastRows)
		c.met.RepairedUsers.Add(st.st.RepairedUsers - st.lastRows)
		st.lastRows = st.st.RepairedUsers
		st.inst, st.seq = inst, target
	} else if st.seq > target {
		// A reader raced an in-flight batch and holds the previous epoch
		// while the state already advanced; states never rewind, so compute
		// against the reader's snapshot without touching the state.
		inst := sn.Instance(k.ws, k.cs, k.budget)
		return c.buildResponse(inst, k, r, fb, opt)
	}
	start := time.Now()
	resp, err := c.stateResponse(st, k, fb, opt)
	c.selectNs.Add(uint64(time.Since(start).Nanoseconds()))
	return resp, err
}

// stateResponse runs the selection against a synced state's instance.
func (c *selectCache) stateResponse(st *selState, k selCacheKey, fb *core.Feedback, opt core.Options) (selectResponse, error) {
	if fb != nil {
		custom, err := core.GreedyCustomOpts(st.inst, *fb, k.budget, opt)
		if err != nil {
			return selectResponse{}, err
		}
		return buildSelectResponse(st.inst, custom.Result, custom, k.topK), nil
	}
	res := st.st.Select(st.inst, k.budget, opt)
	return buildSelectResponse(st.inst, res, nil, k.topK), nil
}

// buildResponse is the stateless fallback: a fresh selection on the
// snapshot's memoized instance, under the request's rule.
func (c *selectCache) buildResponse(inst *groups.Instance, k selCacheKey, r *core.Rule, fb *core.Feedback, opt core.Options) (selectResponse, error) {
	if fb != nil {
		custom, err := core.GreedyCustomOpts(inst, *fb, k.budget, opt)
		if err != nil {
			return selectResponse{}, err
		}
		return buildSelectResponse(inst, custom.Result, custom, k.topK), nil
	}
	res, err := core.LazyGreedyRule(inst, k.budget, nil, r, opt)
	if err != nil {
		// Unreachable: the handler gates rule/instance compatibility before
		// the cache is consulted.
		return selectResponse{}, err
	}
	return buildSelectResponse(inst, res, nil, k.topK), nil
}

// marshalSelect pre-marshals a response in the shape its cache key names:
// exactly the bytes writeJSON would have produced for the same request.
func marshalSelect(resp selectResponse, pretty bool) ([]byte, error) {
	var data []byte
	var err error
	if pretty {
		data, err = json.MarshalIndent(resp, "", "  ")
	} else {
		data, err = json.Marshal(resp)
	}
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// feedbackCacheKey canonicalizes a request's feedback into a cache-key
// component. Order is preserved (reordered feedback is a different key, never
// a wrong answer — both entries compute correctly).
func feedbackCacheKey(f FeedbackJSON) string {
	return fmt.Sprintf("%v|%v|%v|%v|%t", f.MustHave, f.MustNot, f.Priority, f.Standard, f.StandardExplicit)
}

// SelectCacheStats is a point-in-time read of the cache counters, consumed by
// the steady-state bench suite.
type SelectCacheStats struct {
	Hits, Misses, Bypass        uint64
	EntryEvictions, StateEvicts uint64
	Repairs, Recomputes         uint64
	RepairedRows                uint64
	RepairNs, RecomputeNs       uint64
	SelectNs                    uint64
	Entries                     int
}

// SelectCacheStats returns the select cache's counters.
func (s *Server) SelectCacheStats() SelectCacheStats {
	c := s.selCache
	c.mu.Lock()
	entries := len(c.entries)
	c.mu.Unlock()
	return SelectCacheStats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Bypass:         c.bypass.Load(),
		EntryEvictions: c.entryEvicts.Load(),
		StateEvicts:    c.stateEvicts.Load(),
		Repairs:        c.repairs.Load(),
		Recomputes:     c.recomputes.Load(),
		RepairedRows:   c.repairedRows.Load(),
		RepairNs:       c.repairNs.Load(),
		RecomputeNs:    c.recomputeNs.Load(),
		SelectNs:       c.selectNs.Load(),
		Entries:        entries,
	}
}

// SetSelectCacheEnabled toggles the watermark-keyed select cache (default
// on). Off, selects fall back to the per-epoch snapshot memoization — the
// recompute-every-epoch baseline the steady bench measures against.
func (s *Server) SetSelectCacheEnabled(v bool) { s.selCache.disabled.Store(!v) }
