// Package server is the Go counterpart of the paper's prototype web stack
// (Section 7, Figure 1): the grouping module runs offline at construction,
// the selection module answers selection requests with explanations, and the
// visualization payloads carry exactly the Definition 5.1 structures the UI
// renders (Figure 2) — per-user top groups, covered/uncovered group lists,
// and population-versus-subset score distributions. Clients customize
// selections by posting the Definition 6.1 feedback sets. An administrator
// may preload named diversification configurations with textual
// descriptions, as the prototype allows.
package server

import (
	"encoding/json"
	"fmt"
	"html"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"

	"podium/internal/core"
	"podium/internal/explain"
	"podium/internal/groups"
	"podium/internal/obs"
	"podium/internal/profile"
	"podium/internal/query"
)

// NamedConfig is an administrator-provided diversification configuration.
type NamedConfig struct {
	Name        string       `json:"name"`
	Description string       `json:"description"`
	Budget      int          `json:"budget"`
	Weights     string       `json:"weights"`
	Coverage    string       `json:"coverage"`
	Rule        string       `json:"rule,omitempty"`
	Feedback    FeedbackJSON `json:"feedback"`
}

// FeedbackJSON is the wire form of core.Feedback.
type FeedbackJSON struct {
	MustHave         []int `json:"must_have,omitempty"`
	MustNot          []int `json:"must_not,omitempty"`
	Priority         []int `json:"priority,omitempty"`
	Standard         []int `json:"standard,omitempty"`
	StandardExplicit bool  `json:"standard_explicit,omitempty"`
}

func (f FeedbackJSON) toCore() core.Feedback {
	conv := func(ids []int) []groups.GroupID {
		out := make([]groups.GroupID, len(ids))
		for i, id := range ids {
			out[i] = groups.GroupID(id)
		}
		return out
	}
	return core.Feedback{
		MustHave:         conv(f.MustHave),
		MustNot:          conv(f.MustNot),
		Priority:         conv(f.Priority),
		Standard:         conv(f.Standard),
		StandardExplicit: f.StandardExplicit,
	}
}

func (f FeedbackJSON) empty() bool {
	return len(f.MustHave) == 0 && len(f.MustNot) == 0 && len(f.Priority) == 0 &&
		len(f.Standard) == 0 && !f.StandardExplicit
}

// Server serves one repository through immutable snapshots: the current
// epoch — repository view, group index, memoized diversification tables —
// lives behind an atomic pointer, each request loads it exactly once at
// entry, and every read handler runs lock-free against that epoch. The
// plain Server publishes a single epoch at construction (the offline
// grouping module of Section 7); MutableServer republishes a fresh epoch
// after every mutation batch.
type Server struct {
	name    string
	configs []NamedConfig
	// routes is the declarative endpoint table (routes.go); mux holds only
	// out-of-table handlers (ad hoc test routes, optional pprof) and serves
	// as the dispatch fallback.
	routes *router
	mux    *http.ServeMux
	snap   atomic.Pointer[Snapshot]
	camps  *campaignRegistry
	// draining flips /readyz to 503 once graceful shutdown begins.
	draining atomic.Bool

	// Observability (metrics.go): one registry per server, pre-registered
	// with the server, core, campaign and client metric families so
	// /api/v1/metrics exposes every layer from the first scrape. obsOff
	// disables request instrumentation for the overhead benchmark.
	reg       *obs.Registry
	met       *obs.ServerMetrics
	coreMet   *obs.CoreMetrics
	campMet   *obs.CampaignMetrics
	obsOff    atomic.Bool
	unmatched *routeMetrics

	// selCache is the cross-epoch watermark-keyed select cache (selcache.go).
	// On the plain Server nothing ever advances the watermark, so after the
	// first computation every select shape is a permanent hit; MutableServer's
	// apply loop feeds it the per-batch change records.
	selCache *selectCache
}

// New builds a server over repo, running the grouping module with cfg.
func New(name string, repo *profile.Repository, cfg groups.Config, configs []NamedConfig) *Server {
	s := &Server{
		name:    name,
		configs: configs,
		camps:   newCampaignRegistry(),
	}
	s.reg = obs.NewRegistry()
	s.met = obs.NewServerMetrics(s.reg)
	s.coreMet = obs.NewCoreMetrics(s.reg)
	s.campMet = obs.NewCampaignMetrics(s.reg)
	// The client family registers here too: a server-side scrape then covers
	// all four layers, and co-located clients (campaign drivers, tests) feed
	// it via obs.NewClientMetrics(s.Metrics()).
	obs.NewClientMetrics(s.reg)
	s.selCache = newSelectCache(obs.NewSelectCacheMetrics(s.reg))
	s.publish(newSnapshot(0, repo, groups.Build(repo, cfg)))
	s.mux = http.NewServeMux()
	s.buildRoutes()
	return s
}

// Snapshot returns the currently published epoch. Handlers load it once at
// entry so one request never observes two epochs; external callers get a
// consistent read-only view.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// publish atomically installs the next epoch for all subsequent requests.
func (s *Server) publish(sn *Snapshot) {
	s.snap.Store(sn)
	s.met.Epoch.Set(int64(sn.Epoch()))
	s.met.RepoBytes.Set(sn.Repo().ApproxBytes())
}

// writeJSON encodes v compactly — indented output roughly doubles hot-path
// payload bytes, so pretty-printing is opt-in via ?pretty=1. Marshalling
// happens before the header is written, so an encoding failure surfaces as
// a 500 instead of a silently truncated 200.
func writeJSON(w http.ResponseWriter, r *http.Request, status int, v interface{}) {
	var data []byte
	var err error
	if r != nil && r.URL.Query().Get("pretty") == "1" {
		data, err = json.MarshalIndent(v, "", "  ")
	} else {
		data, err = json.Marshal(v)
	}
	if err != nil {
		// Marshalling happened before any header write, so the failure can
		// still surface as a clean 500 in the unified envelope.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintf(w, `{"error":{"code":%q,"message":%q,"status":500}}`+"\n",
			codeInternal, "encoding response: "+err.Error())
		return
	}
	writeJSONRaw(w, status, append(data, '\n'))
}

// writeJSONRaw writes JSON bytes pre-marshaled by a snapshot's response
// cache, skipping re-encoding on the hot path. Once the header is out a
// failed or short body write cannot be turned into an error status; instead
// of leaving a silently truncated payload that parses as broken JSON
// downstream, it logs and aborts the connection (http.ErrAbortHandler) so
// the client sees a transport error.
func writeJSONRaw(w http.ResponseWriter, status int, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if n, err := w.Write(data); err != nil || n < len(data) {
		log.Printf("server: aborting connection: wrote %d/%d response bytes: %v", n, len(data), err)
		panic(http.ErrAbortHandler)
	}
}

// Stable machine-readable error codes carried by the unified envelope. The
// set is deliberately small: clients branch on these (or on the status), not
// on message text.
const (
	codeInvalidArgument  = "invalid_argument"
	codeNotFound         = "not_found"
	codeMethodNotAllowed = "method_not_allowed"
	codeOverloaded       = "overloaded"
	codeUnavailable      = "unavailable"
	codeInternal         = "internal"
)

// errorBody is the inner object of the unified error envelope.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Status  int    `json:"status"`
}

// errorEnvelope is the one shape every error response takes:
// {"error":{"code":"...","message":"...","status":N}}.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

func errBody(status int, code, format string, args ...interface{}) errorEnvelope {
	return errorEnvelope{errorBody{Code: code, Message: fmt.Sprintf(format, args...), Status: status}}
}

func writeError(w http.ResponseWriter, r *http.Request, status int, code, format string, args ...interface{}) {
	writeJSON(w, r, status, errBody(status, code, format, args...))
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sn := s.Snapshot()
	writeJSON(w, r, http.StatusOK, map[string]interface{}{
		"name":       s.name,
		"users":      sn.Repo().NumUsers(),
		"properties": sn.Repo().NumProperties(),
		"groups":     sn.Index().NumGroups(),
		"epoch":      sn.Epoch(),
	})
}

func (s *Server) handleConfigurations(w http.ResponseWriter, r *http.Request) {
	if s.configs == nil {
		writeJSON(w, r, http.StatusOK, []NamedConfig{})
		return
	}
	writeJSON(w, r, http.StatusOK, s.configs)
}

// ruleJSON is one row of the rule-discovery endpoint.
type ruleJSON struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	Default     bool   `json:"default,omitempty"`
}

// handleRules serves GET /api/v1/rules: the registered selection rules in
// stable wire order, with the default marked. Clients pass a listed name as
// the select request's "rule" field.
func (s *Server) handleRules(w http.ResponseWriter, r *http.Request) {
	rules := core.Rules()
	out := make([]ruleJSON, 0, len(rules))
	for _, rl := range rules {
		out = append(out, ruleJSON{Name: rl.Name(), Description: rl.Description(), Default: rl.IsDefault()})
	}
	writeJSON(w, r, http.StatusOK, out)
}

// groupJSON is one group explanation row for the UI's group list.
type groupJSON struct {
	ID     int     `json:"id"`
	Label  string  `json:"label"`
	Size   int     `json:"size"`
	Weight float64 `json:"weight"`
}

func (s *Server) handleGroups(w http.ResponseWriter, r *http.Request) {
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "bad limit %q", v)
			return
		}
		limit = n
	}
	sn := s.Snapshot()
	top := sn.TopKBySize(limit)
	out := make([]groupJSON, 0, len(top))
	for _, gid := range top {
		g := sn.Index().Group(gid)
		out = append(out, groupJSON{
			ID:     int(gid),
			Label:  g.Label(sn.Repo().Catalog()),
			Size:   g.Size(),
			Weight: float64(g.Size()), // LBS view for display
		})
	}
	writeJSON(w, r, http.StatusOK, out)
}

// selectRequest is the selection-module request body.
type selectRequest struct {
	Budget   int          `json:"budget"`
	Weights  string       `json:"weights"`  // Iden | LBS | EBS (default LBS)
	Coverage string       `json:"coverage"` // Single | Prop (default Single)
	// Rule selects the marginal-gain objective (GET /api/v1/rules lists the
	// registered names; empty selects the default coverage rule).
	Rule     string       `json:"rule,omitempty"`
	Feedback FeedbackJSON `json:"feedback"`
	// Config selects a preloaded named configuration instead of the inline
	// fields above.
	Config string `json:"config,omitempty"`
	// TopK bounds the headline coverage statistic (default 200).
	TopK int `json:"top_k,omitempty"`
	// Parallelism is the selection engine's worker count (0 = sequential,
	// capped at the server's CPU count). It changes latency, never results.
	Parallelism int `json:"parallelism,omitempty"`
}

type selectedUserJSON struct {
	ID       int      `json:"id"`
	Name     string   `json:"name"`
	Marginal float64  `json:"marginal"`
	Groups   []string `json:"top_groups"`
}

type selectResponse struct {
	Users []selectedUserJSON `json:"users"`
	Score float64            `json:"score"`
	// Rule names the selection rule that produced the panel. Omitted for the
	// default coverage rule, keeping default responses byte-identical to
	// pre-rules servers.
	Rule          string             `json:"rule,omitempty"`
	TopKCovered   int                `json:"top_k_covered"`
	TopK          int                `json:"top_k"`
	PriorityScore float64            `json:"priority_score,omitempty"`
	StandardScore float64            `json:"standard_score,omitempty"`
	Groups        []subsetGroupJSON  `json:"groups"`
	// Trace is the per-stage span tree, attached only when the request asks
	// for it (X-Podium-Trace: 1 or ?trace=1); untraced responses are
	// byte-identical to pre-trace servers.
	Trace *obs.SpanJSON `json:"trace,omitempty"`
}

type subsetGroupJSON struct {
	ID       int     `json:"id"`
	Label    string  `json:"label"`
	Weight   float64 `json:"weight"`
	Required int     `json:"required"`
	Actual   int     `json:"actual"`
	Covered  bool    `json:"covered"`
}

func parseWeights(s string) (groups.WeightScheme, error) {
	switch strings.ToLower(s) {
	case "", "lbs":
		return groups.WeightLBS, nil
	case "iden":
		return groups.WeightIden, nil
	case "ebs":
		return groups.WeightEBS, nil
	}
	return 0, fmt.Errorf("unknown weight scheme %q", s)
}

func parseCoverage(s string) (groups.CoverageScheme, error) {
	switch strings.ToLower(s) {
	case "", "single":
		return groups.CoverSingle, nil
	case "prop":
		return groups.CoverProp, nil
	}
	return 0, fmt.Errorf("unknown coverage scheme %q", s)
}

// parseRule resolves a request rule string against the core registry
// (case-insensitive; empty selects the default coverage rule). The error
// lists the registered rules — clients discover the same set via
// GET /api/v1/rules.
func parseRule(s string) (*core.Rule, error) {
	r, err := core.LookupRule(strings.ToLower(s))
	if err != nil {
		return nil, fmt.Errorf("unknown rule %q (registered rules: %s)", s, strings.Join(core.RuleNames(), ", "))
	}
	return r, nil
}

// clampParallelism bounds a request's worker count to [0, NumCPU]: negative
// values (which would otherwise reach the core as a nonsense worker count)
// mean sequential, and requests cannot demand more workers than the host has
// CPUs.
func clampParallelism(p int) int {
	if p < 0 {
		return 0
	}
	if max := runtime.NumCPU(); p > max {
		return max
	}
	return p
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var sp *obs.Span
	if traceRequested(r) {
		sp = obs.StartSpan("select")
	}
	dsp := sp.StartChild("decode")
	var req selectRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "decoding request: %v", err)
		return
	}
	if req.Config != "" {
		found := false
		for _, c := range s.configs {
			if c.Name == req.Config {
				if req.Budget == 0 {
					req.Budget = c.Budget
				}
				if req.Weights == "" {
					req.Weights = c.Weights
				}
				if req.Coverage == "" {
					req.Coverage = c.Coverage
				}
				if req.Rule == "" {
					req.Rule = c.Rule
				}
				if req.Feedback.empty() {
					req.Feedback = c.Feedback
				}
				found = true
				break
			}
		}
		if !found {
			writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "unknown configuration %q", req.Config)
			return
		}
	}
	if req.Budget <= 0 {
		req.Budget = 8
	}
	if req.TopK <= 0 {
		req.TopK = 200
	}
	ws, err := parseWeights(req.Weights)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "%v", err)
		return
	}
	cs, err := parseCoverage(req.Coverage)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "%v", err)
		return
	}
	rule, err := parseRule(req.Rule)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "%v", err)
		return
	}
	if ws == groups.WeightEBS && !rule.EBSCompatible() {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument,
			"rule %q does not support EBS weights (exact rank arithmetic implements only the coverage objective)", rule.Name())
		return
	}
	if !req.Feedback.empty() && !rule.IsDefault() {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument,
			"feedback refinement supports only the default coverage rule (got rule %q)", rule.Name())
		return
	}
	dsp.End()
	sn := s.Snapshot()
	opt := core.Options{Parallelism: clampParallelism(req.Parallelism)}
	var tim *core.StageTimings
	if s.obsEnabled() || sp != nil {
		tim = &core.StageTimings{}
		opt.Timings = tim
	}

	if s.selCache.enabled() {
		if sp != nil {
			// Traced requests are diagnostic: they want the real per-stage
			// span tree, which a pre-marshaled cache hit cannot produce.
			// They fall through to the uncached paths below.
			s.selCache.noteBypass(rule.Name())
		} else {
			// Cross-epoch watermark-keyed path (selcache.go): the response is
			// served pre-marshaled for as long as no selection-relevant
			// mutation has landed, and a miss repairs the persistent selector
			// state instead of recomputing base marginals from scratch. The
			// key carries the response shape — ?pretty=1 and compact
			// responses are distinct pre-marshaled entries — and the
			// canonicalized feedback restriction.
			pretty := r.URL.Query().Get("pretty") == "1"
			k := selCacheKey{ws: ws, cs: cs, budget: req.Budget, topK: req.TopK, rule: rule.Name(), pretty: pretty}
			var fb *core.Feedback
			if !req.Feedback.empty() {
				cf := req.Feedback.toCore()
				fb = &cf
				k.fb = feedbackCacheKey(req.Feedback)
			}
			_, data, err := s.selCache.respond(sn, k, rule, fb, opt)
			s.observeEngine(tim)
			if err != nil {
				if fb != nil {
					writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "%v", err)
				} else {
					writeError(w, r, http.StatusInternalServerError, codeInternal, "encoding response: %v", err)
				}
				return
			}
			writeJSONRaw(w, http.StatusOK, data)
			return
		}
	}

	if req.Feedback.empty() {
		// Feedback-free selections are memoized per epoch: the snapshot is
		// immutable and greedy is deterministic, so the response is a pure
		// function of (epoch, schemes, budget, topK).
		gsp := sp.StartChild("select")
		resp, data, err := sn.SelectResponse(ws, cs, req.Budget, req.TopK, rule, opt)
		gsp.End()
		attachStages(gsp, tim) // empty (cache hit) unless this call computed
		s.observeEngine(tim)
		if err != nil {
			writeError(w, r, http.StatusInternalServerError, codeInternal, "encoding response: %v", err)
			return
		}
		if sp != nil {
			resp.Trace = sp.JSON() // resp is a copy; the cache keeps Trace nil
			writeJSON(w, r, http.StatusOK, resp)
			return
		}
		if r.URL.Query().Get("pretty") == "1" {
			writeJSON(w, r, http.StatusOK, resp)
			return
		}
		writeJSONRaw(w, http.StatusOK, data)
		return
	}

	inst := sn.Instance(ws, cs, req.Budget)
	gsp := sp.StartChild("greedy")
	custom, err := core.GreedyCustomOpts(inst, req.Feedback.toCore(), req.Budget, opt)
	gsp.End()
	attachStages(gsp, tim)
	s.observeEngine(tim)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "%v", err)
		return
	}
	rsp := sp.StartChild("report")
	resp := buildSelectResponse(inst, custom.Result, custom, req.TopK)
	rsp.End()
	resp.Trace = sp.JSON()
	writeJSON(w, r, http.StatusOK, resp)
}

// buildSelectResponse assembles the visualization payload shared by the
// select and query endpoints.
func buildSelectResponse(inst *groups.Instance, res *core.Result, custom *core.CustomResult, topK int) selectResponse {
	rep := explain.NewReport(inst, res, topK)
	resp := selectResponse{
		Score: inst.Score(res.Users),
		TopK:  rep.TopK, TopKCovered: rep.TopKCovered,
	}
	if custom != nil {
		resp.PriorityScore = custom.PriorityScore
		resp.StandardScore = custom.StandardScore
	}
	for _, ue := range rep.Users {
		su := selectedUserJSON{ID: int(ue.User), Name: ue.Name, Marginal: ue.Marginal}
		for i, g := range ue.Groups {
			if i == 5 {
				break
			}
			su.Groups = append(su.Groups, g.Label)
		}
		resp.Users = append(resp.Users, su)
	}
	for _, sg := range rep.Groups {
		resp.Groups = append(resp.Groups, subsetGroupJSON{
			ID:       int(sg.Group.ID),
			Label:    sg.Group.Label,
			Weight:   sg.Group.Weight,
			Required: sg.Required,
			Actual:   sg.Actual,
			Covered:  sg.Covered,
		})
	}
	return resp
}

// handleQuery runs a declarative-language selection (see internal/query).
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var sp *obs.Span
	if traceRequested(r) {
		sp = obs.StartSpan("query")
	}
	var req struct {
		Query string `json:"query"`
		TopK  int    `json:"top_k,omitempty"`
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "decoding request: %v", err)
		return
	}
	psp := sp.StartChild("parse")
	q, err := query.Parse(req.Query)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "%v", err)
		return
	}
	if err := q.Validate(); err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "%v", err)
		return
	}
	if q.Buckets != 0 {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "BUCKETS is fixed at server start; omit the clause")
		return
	}
	psp.End()
	ws := groups.WeightLBS
	if q.WeightsSet {
		ws = q.Weights
	}
	cs := groups.CoverSingle
	if q.CoverageSet {
		cs = q.Coverage
	}
	sn := s.Snapshot()
	csp := sp.StartChild("compile")
	fb, err := q.Compile(sn.Index())
	csp.End()
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "%v", err)
		return
	}
	if req.TopK <= 0 {
		req.TopK = 200
	}
	inst := sn.Instance(ws, cs, q.Budget)
	opt := core.Options{}
	var tim *core.StageTimings
	if s.obsEnabled() || sp != nil {
		tim = &core.StageTimings{}
		opt.Timings = tim
	}
	gsp := sp.StartChild("greedy")
	custom, err := core.GreedyCustomOpts(inst, fb, q.Budget, opt)
	gsp.End()
	attachStages(gsp, tim)
	s.observeEngine(tim)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "%v", err)
		return
	}
	rsp := sp.StartChild("report")
	resp := buildSelectResponse(inst, custom.Result, custom, req.TopK)
	rsp.End()
	resp.Trace = sp.JSON()
	writeJSON(w, r, http.StatusOK, resp)
}

func (s *Server) handleDistribution(w http.ResponseWriter, r *http.Request) {
	sn := s.Snapshot()
	label := r.URL.Query().Get("prop")
	pid, ok := sn.Repo().Catalog().Lookup(label)
	if !ok {
		writeError(w, r, http.StatusNotFound, codeNotFound, "unknown property %q", label)
		return
	}
	var users []profile.UserID
	if raw := r.URL.Query().Get("users"); raw != "" {
		for _, part := range strings.Split(raw, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || v < 0 || v >= sn.Repo().NumUsers() {
				writeError(w, r, http.StatusBadRequest, codeInvalidArgument, "bad user id %q", part)
				return
			}
			users = append(users, profile.UserID(v))
		}
	}
	inst := sn.Instance(groups.WeightLBS, groups.CoverSingle, 8)
	all, subset := explain.Distribution(inst, users, pid)
	buckets := make([]string, 0, len(all))
	for _, b := range sn.Index().Buckets(pid) {
		buckets = append(buckets, b.String())
	}
	writeJSON(w, r, http.StatusOK, map[string]interface{}{
		"property": label,
		"buckets":  buckets,
		"all":      all,
		"subset":   subset,
	})
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	sn := s.Snapshot()
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, indexHTMLHead, s.name, sn.Repo().NumUsers(), sn.Repo().NumProperties(), sn.Index().NumGroups())
	// The API table renders from the live route table so this page cannot
	// drift from dispatch.
	for _, row := range s.Routes() {
		legacy := row[2]
		if legacy == "" {
			legacy = "—"
		}
		fmt.Fprintf(w, "<tr><td>%s</td><td><code>%s</code></td><td><code>%s</code></td><td>%s</td></tr>\n",
			html.EscapeString(row[0]), html.EscapeString(row[1]), html.EscapeString(legacy), html.EscapeString(row[3]))
	}
	fmt.Fprint(w, indexHTMLTail)
}

const indexHTMLHead = `<!doctype html>
<html><head><meta charset="utf-8"><title>Podium</title>
<style>body{font-family:sans-serif;margin:2rem;max-width:48rem}code{background:#eee;padding:0 .3em}
table{border-collapse:collapse}td,th{border:1px solid #ccc;padding:.2em .6em;text-align:left}</style>
</head><body>
<h1>Podium — diverse user selection</h1>
<p>Dataset <b>%s</b>: %d users, %d properties, %d groups.</p>
<h2>API</h2>
<p>Canonical paths live under <code>/api/v1</code>; pre-v1 aliases still work
and answer with a <code>Deprecation: true</code> header. Selection endpoints
accept <code>X-Podium-Trace: 1</code> (or <code>?trace=1</code>) to attach a
span tree to the response; <code>GET /api/v1/metrics</code> serves Prometheus
text exposition.</p>
<table>
<tr><th>route</th><th>path</th><th>legacy alias</th><th>methods</th></tr>
`

const indexHTMLTail = `</table>
</body></html>
`

// Repository exposes the currently published repository view (read-only use).
func (s *Server) Repository() *profile.Repository { return s.Snapshot().Repo() }
