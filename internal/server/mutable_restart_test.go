package server

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"podium/internal/codec"
	"podium/internal/groups"
)

// The restart-determinism scenario: property "q" is bucketed at first sight
// from a single score (degenerate cuts), then later users spread across
// [0,1]. Without the persisted sidecar a restart re-runs KMeans over the
// accumulated scores and derives different cuts — different groups,
// different selections. With it, a restart reproduces the live index.
var restartMutations = []string{
	`{"name":"U0","properties":{"q":0.5}}`,
	`{"name":"U1","properties":{"q":0.05}}`,
	`{"name":"U2","properties":{"q":0.12}}`,
	`{"name":"U3","properties":{"q":0.33}}`,
	`{"name":"U4","properties":{"q":0.41}}`,
	`{"name":"U5","properties":{"q":0.58}}`,
	`{"name":"U6","properties":{"q":0.67}}`,
	`{"name":"U7","properties":{"q":0.83}}`,
	`{"name":"U8","properties":{"q":0.95}}`,
}

func applyMutations(t *testing.T, ms *MutableServer, bodies []string) {
	t.Helper()
	for _, body := range bodies {
		if rec := doMutable(t, ms, http.MethodPost, "/api/users", body, nil); rec.Code != http.StatusOK {
			t.Fatalf("add user %s: %d: %s", body, rec.Code, rec.Body.String())
		}
	}
}

// selectionFingerprint selects budget 3 and renders the chosen user names
// plus the achieved score — the observable a restart must reproduce.
func selectionFingerprint(t *testing.T, ms *MutableServer) string {
	t.Helper()
	var sel struct {
		Users []struct {
			Name string `json:"name"`
		} `json:"users"`
		Score float64 `json:"score"`
	}
	rec := doMutable(t, ms, http.MethodPost, "/api/select", `{"budget":3}`, &sel)
	if rec.Code != http.StatusOK {
		t.Fatalf("select: %d: %s", rec.Code, rec.Body.String())
	}
	names := make([]string, len(sel.Users))
	for i, u := range sel.Users {
		names[i] = u.Name
	}
	return fmt.Sprintf("%s score=%.6f", strings.Join(names, ","), sel.Score)
}

func TestMutableRestartBucketDeterminism(t *testing.T) {
	cfg := groups.Config{K: 3}
	mid := 5 // restart point within the mutation stream

	// Reference: a server that lives through the whole stream.
	liveLog := filepath.Join(t.TempDir(), "live.plog")
	live, err := NewMutable("live", liveLog, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	applyMutations(t, live, restartMutations)
	want := selectionFingerprint(t, live)
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}

	// Same stream, but the server restarts mid-log.
	reLog := filepath.Join(t.TempDir(), "restart.plog")
	first, err := NewMutable("live", reLog, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	applyMutations(t, first, restartMutations[:mid])
	midSel := selectionFingerprint(t, first)
	if err := first.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(reLog + ".buckets"); err != nil {
		t.Fatalf("bucket sidecar missing after close: %v", err)
	}

	second, err := NewMutable("live", reLog, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if got := selectionFingerprint(t, second); got != midSel {
		t.Fatalf("restart changed the mid-log selection:\n got %s\nwant %s", got, midSel)
	}
	applyMutations(t, second, restartMutations[mid:])
	if got := selectionFingerprint(t, second); got != want {
		t.Fatalf("restarted server diverged from the never-restarted one:\n got %s\nwant %s", got, want)
	}
}

// TestMutableRestartSidecarDisabled documents the pre-sidecar behavior the
// fix exists for: with persistence off, a restart re-derives cuts from the
// accumulated distribution, which need not match the live index's
// first-sight cuts. It only asserts the opt-out works (server opens and
// serves); equality is deliberately not required.
func TestMutableRestartSidecarDisabled(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "nosidecar.plog")
	opts := MutableOptions{BucketImage: "-"}
	ms, err := NewMutableOpts("live", logPath, groups.Config{K: 3}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	applyMutations(t, ms, restartMutations[:5])
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(logPath + ".buckets"); !os.IsNotExist(err) {
		t.Fatalf("sidecar written despite opt-out: %v", err)
	}
	back, err := NewMutableOpts("live", logPath, groups.Config{K: 3}, nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	selectionFingerprint(t, back)
}

// TestMutableRestartSurvivesCorruptSidecar: a sidecar that fails its CRC32C
// must not fail startup — the log is intact, so the server warns, derives
// cuts from the replayed distribution, and rewrites a fresh sidecar.
func TestMutableRestartSurvivesCorruptSidecar(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "corrupt.plog")
	ms, err := NewMutable("live", logPath, groups.Config{K: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	applyMutations(t, ms, restartMutations)
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}

	sidecar := logPath + ".buckets"
	data, err := os.ReadFile(sidecar)
	if err != nil {
		t.Fatalf("sidecar missing after close: %v", err)
	}
	data[len(data)-1] ^= 0xFF // corrupt the payload tail
	if err := os.WriteFile(sidecar, data, 0o644); err != nil {
		t.Fatal(err)
	}

	back, err := NewMutable("live", logPath, groups.Config{K: 3}, nil)
	if err != nil {
		t.Fatalf("corrupt sidecar failed startup instead of falling back: %v", err)
	}
	defer back.Close()
	selectionFingerprint(t, back) // serves selections from replayed cuts

	// The damaged sidecar was replaced with a verifiable one.
	fresh, err := os.ReadFile(sidecar)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(fresh, data) {
		t.Fatal("damaged sidecar was not rewritten at startup")
	}
	if _, err := codec.ReadBuckets(fresh); err != nil {
		t.Fatalf("rewritten sidecar does not verify: %v", err)
	}
}
