package server

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/profile"
)

func TestClampParallelism(t *testing.T) {
	max := runtime.NumCPU()
	cases := []struct{ in, want int }{
		{-1, 0}, {-100, 0}, {0, 0}, {1, 1}, {max, max}, {max + 1, max}, {1 << 20, max},
	}
	for _, c := range cases {
		if got := clampParallelism(c.in); got != c.want {
			t.Errorf("clampParallelism(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// Negative parallelism used to flow straight into the selection core; it must
// clamp to sequential and produce the identical selection.
func TestSelectNegativeParallelism(t *testing.T) {
	s := newTestServer(t)
	var seq, neg selectResponse
	if rec := doJSON(t, s, http.MethodPost, "/api/select",
		`{"budget":3}`, &seq); rec.Code != http.StatusOK {
		t.Fatalf("sequential select: %d %s", rec.Code, rec.Body.String())
	}
	if rec := doJSON(t, s, http.MethodPost, "/api/select",
		`{"budget":3,"parallelism":-7}`, &neg); rec.Code != http.StatusOK {
		t.Fatalf("negative parallelism rejected: %d %s", rec.Code, rec.Body.String())
	}
	if seq.Score != neg.Score || len(seq.Users) != len(neg.Users) {
		t.Fatalf("negative parallelism changed the result: %+v vs %+v", seq, neg)
	}
	for i := range seq.Users {
		if seq.Users[i].ID != neg.Users[i].ID {
			t.Fatalf("user %d: %+v vs %+v", i, seq.Users[i], neg.Users[i])
		}
	}
}

func TestWriteJSONCompactAndPretty(t *testing.T) {
	s := newTestServer(t)
	compact := doJSON(t, s, http.MethodGet, "/api/status", "", nil)
	if body := compact.Body.String(); strings.Contains(strings.TrimRight(body, "\n"), "\n") {
		t.Fatalf("default response is not compact:\n%s", body)
	}
	pretty := doJSON(t, s, http.MethodGet, "/api/status?pretty=1", "", nil)
	if body := pretty.Body.String(); !strings.Contains(body, "\n  ") {
		t.Fatalf("?pretty=1 response is not indented:\n%s", body)
	}
	if ct := compact.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
}

func TestWriteJSONEncodeErrorIs500(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/x", nil)
	writeJSON(rec, req, http.StatusOK, map[string]interface{}{"bad": make(chan int)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("unencodable value returned %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "encoding response") {
		t.Fatalf("body = %s", rec.Body.String())
	}
}

// TestSnapshotEpochAdvances: every mutation batch publishes a fresh epoch,
// visible in /api/status.
func TestSnapshotEpochAdvances(t *testing.T) {
	ms, _ := newMutable(t)
	var st struct {
		Epoch uint64 `json:"epoch"`
	}
	doMutable(t, ms, http.MethodGet, "/api/status", "", &st)
	if st.Epoch != 0 {
		t.Fatalf("initial epoch = %d", st.Epoch)
	}
	doMutable(t, ms, http.MethodPost, "/api/users", `{"name":"A","properties":{"p":0.5}}`, nil)
	doMutable(t, ms, http.MethodPost, "/api/scores", `{"user":0,"label":"p","score":0.6}`, nil)
	doMutable(t, ms, http.MethodGet, "/api/status", "", &st)
	if st.Epoch != 2 {
		t.Fatalf("epoch after two serialized mutations = %d, want 2", st.Epoch)
	}
}

// TestSerializedHistoryMatchesDirectIncremental feeds a serialized mutation
// history through the snapshot server and checks the final selection is
// bit-identical to the pre-snapshot architecture: the same operations applied
// one at a time to a single repository and index through the incremental
// path, no clones involved.
func TestSerializedHistoryMatchesDirectIncremental(t *testing.T) {
	ms, _ := newMutable(t)
	cfg := groups.Config{K: 3}

	type op struct {
		addUser string
		props   []string // "label=score" in the order sent
		user    int
		label   string
		score   float64
	}
	history := []op{
		{addUser: "Alice", props: []string{"livesIn Tokyo=1", "avgRating Mexican=0.9"}},
		{addUser: "Bob", props: []string{"avgRating Mexican=0.2", "livesIn NYC=1"}},
		{addUser: "Carol", props: []string{"livesIn Bali=1"}},
		{user: 1, label: "avgRating Mexican", score: 0.85},
		{user: 2, label: "plays chess", score: 0.6},
		{addUser: "Dave", props: []string{"livesIn Tokyo=1", "plays chess=0.7"}},
		{user: 0, label: "avgRating Mexican", score: 0.15},
	}

	// The reference: seed-style direct incremental maintenance.
	repo := profile.NewRepository()
	ix := groups.Build(repo, cfg)
	for _, o := range history {
		if o.addUser != "" {
			u := repo.AddUser(o.addUser)
			for _, kv := range o.props {
				parts := strings.SplitN(kv, "=", 2)
				var v float64
				fmt.Sscanf(parts[1], "%g", &v)
				repo.MustSetScore(u, parts[0], v)
			}
			unbucketed, err := ix.IndexUser(u)
			if err != nil {
				t.Fatal(err)
			}
			for _, pid := range unbucketed {
				if err := ix.BucketProperty(pid, cfg); err != nil {
					t.Fatal(err)
				}
			}
			continue
		}
		_, known := repo.Catalog().Lookup(o.label)
		repo.MustSetScore(profile.UserID(o.user), o.label, o.score)
		pid, _ := repo.Catalog().Lookup(o.label)
		if !known {
			if err := ix.BucketProperty(pid, cfg); err != nil {
				t.Fatal(err)
			}
		} else if err := ix.UpdateScore(profile.UserID(o.user), pid); err != nil {
			t.Fatal(err)
		}
	}

	// The same history over HTTP, one request at a time (a serialized
	// history: each mutation is its own batch).
	for _, o := range history {
		if o.addUser != "" {
			props := make([]string, len(o.props))
			for i, kv := range o.props {
				parts := strings.SplitN(kv, "=", 2)
				props[i] = fmt.Sprintf("%q:%s", parts[0], parts[1])
			}
			body := fmt.Sprintf(`{"name":%q,"properties":{%s}}`, o.addUser, strings.Join(props, ","))
			if rec := doMutable(t, ms, http.MethodPost, "/api/users", body, nil); rec.Code != http.StatusOK {
				t.Fatalf("add user: %d %s", rec.Code, rec.Body.String())
			}
		} else {
			body := fmt.Sprintf(`{"user":%d,"label":%q,"score":%g}`, o.user, o.label, o.score)
			if rec := doMutable(t, ms, http.MethodPost, "/api/scores", body, nil); rec.Code != http.StatusOK {
				t.Fatalf("set score: %d %s", rec.Code, rec.Body.String())
			}
		}
	}

	// Selections agree exactly for every budget.
	for budget := 1; budget <= 4; budget++ {
		inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, budget)
		want := core.Greedy(inst, budget)

		var got selectResponse
		body := fmt.Sprintf(`{"budget":%d}`, budget)
		if rec := doMutable(t, ms, http.MethodPost, "/api/select", body, &got); rec.Code != http.StatusOK {
			t.Fatalf("select: %d %s", rec.Code, rec.Body.String())
		}
		if len(got.Users) != len(want.Users) {
			t.Fatalf("budget %d: %d users, want %d", budget, len(got.Users), len(want.Users))
		}
		for i, u := range want.Users {
			if got.Users[i].ID != int(u) {
				t.Fatalf("budget %d, pick %d: user %d, want %d", budget, i, got.Users[i].ID, u)
			}
			if got.Users[i].Marginal != want.Marginals[i] {
				t.Fatalf("budget %d, pick %d: marginal %v, want %v",
					budget, i, got.Users[i].Marginal, want.Marginals[i])
			}
		}
		if want := inst.Score(want.Users); got.Score != want {
			t.Fatalf("budget %d: score %v, want %v", budget, got.Score, want)
		}
	}
}

// TestConcurrentReadsAndMutations hammers the lock-free read path while the
// writer publishes epochs (run with -race): every response must be
// well-formed and every selection internally consistent.
func TestConcurrentReadsAndMutations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stress.plog")
	ms, err := NewMutableOpts("stress", path, groups.Config{K: 3}, nil,
		MutableOptions{MaxBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	// Seed a population so selections have something to pick from.
	const seedUsers = 12
	for i := 0; i < seedUsers; i++ {
		body := fmt.Sprintf(`{"name":"u%d","properties":{"propA":%g,"propB":%g}}`,
			i, float64(i%10)/10, float64((i*3)%10)/10)
		if rec := doMutable(t, ms, http.MethodPost, "/api/users", body, nil); rec.Code != http.StatusOK {
			t.Fatalf("seed user: %d %s", rec.Code, rec.Body.String())
		}
	}

	const (
		readers   = 4
		writers   = 2
		perWorker = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, readers+writers)

	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var sel selectResponse
				rec := doReq(ms, http.MethodPost, "/api/select", `{"budget":3}`)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("reader %d: select %d: %s", w, rec.Code, rec.Body.String())
					return
				}
				if err := jsonUnmarshal(rec.Body.Bytes(), &sel); err != nil {
					errs <- fmt.Errorf("reader %d: %v", w, err)
					return
				}
				seen := map[int]bool{}
				for _, u := range sel.Users {
					if seen[u.ID] {
						errs <- fmt.Errorf("reader %d: duplicate user %d", w, u.ID)
						return
					}
					seen[u.ID] = true
				}
				if len(sel.Users) != 3 || sel.Score <= 0 {
					errs <- fmt.Errorf("reader %d: %d users, score %v", w, len(sel.Users), sel.Score)
					return
				}
				if rec := doReq(ms, http.MethodGet, "/api/groups?limit=5", ""); rec.Code != http.StatusOK {
					errs <- fmt.Errorf("reader %d: groups %d", w, rec.Code)
					return
				}
				if rec := doReq(ms, http.MethodGet, "/api/status", ""); rec.Code != http.StatusOK {
					errs <- fmt.Errorf("reader %d: status %d", w, rec.Code)
					return
				}
			}
		}(w)
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var rec *httptest.ResponseRecorder
				if i%5 == 0 {
					body := fmt.Sprintf(`{"name":"w%d-%d","properties":{"propA":%g}}`,
						w, i, float64(i%10)/10)
					rec = doReq(ms, http.MethodPost, "/api/users", body)
				} else {
					body := fmt.Sprintf(`{"user":%d,"label":"propB","score":%g}`,
						(w*7+i)%seedUsers, float64(i%11)/10)
					rec = doReq(ms, http.MethodPost, "/api/scores", body)
				}
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("writer %d: %d: %s", w, rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every mutation is accounted for in the final epoch.
	var st struct {
		Users int `json:"users"`
	}
	doMutable(t, ms, http.MethodGet, "/api/status", "", &st)
	wantUsers := seedUsers + writers*(perWorker/5)
	if st.Users != wantUsers {
		t.Fatalf("final users = %d, want %d", st.Users, wantUsers)
	}
	batches, mutations := ms.BatchStats()
	if wantMut := uint64(seedUsers + writers*perWorker); mutations != wantMut {
		t.Fatalf("writer applied %d mutations, want %d", mutations, wantMut)
	}
	if batches == 0 || batches > mutations {
		t.Fatalf("batches = %d for %d mutations", batches, mutations)
	}
}

// TestBatchWindowCoalesces: with a generous window, concurrent mutations land
// in far fewer batches than requests.
func TestBatchWindowCoalesces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "batch.plog")
	ms, err := NewMutableOpts("batch", path, groups.Config{K: 3}, nil,
		MutableOptions{BatchWindow: 50 * time.Millisecond, MaxBatch: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()

	const n = 16
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"name":"c%d","properties":{"p":%g}}`, i, float64(i)/20)
			doReq(ms, http.MethodPost, "/api/users", body)
		}(i)
	}
	wg.Wait()
	batches, mutations := ms.BatchStats()
	if mutations != n {
		t.Fatalf("mutations = %d, want %d", mutations, n)
	}
	if batches >= n {
		t.Fatalf("window coalesced nothing: %d batches for %d mutations", batches, n)
	}
	var st struct {
		Users int `json:"users"`
	}
	doMutable(t, ms, http.MethodGet, "/api/status", "", &st)
	if st.Users != n {
		t.Fatalf("users = %d, want %d", st.Users, n)
	}
}

// TestCloseRejectsNewMutations: after Close, mutations fail fast with 503 and
// reads keep serving the last epoch.
func TestCloseRejectsNewMutations(t *testing.T) {
	ms, _ := newMutable(t)
	doMutable(t, ms, http.MethodPost, "/api/users", `{"name":"A","properties":{"p":0.5}}`, nil)
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	if rec := doReq(ms, http.MethodPost, "/api/scores", `{"user":0,"label":"p","score":0.9}`); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("mutation after Close: %d, want 503", rec.Code)
	}
	if rec := doReq(ms, http.MethodGet, "/api/status", ""); rec.Code != http.StatusOK {
		t.Fatalf("read after Close: %d", rec.Code)
	}
	if err := ms.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// doReq is doMutable without the *testing.T, for use inside goroutines.
func doReq(ms *MutableServer, method, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	ms.ServeHTTP(rec, req)
	return rec
}
