package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"podium/internal/groups"
)

func TestHardenedRecoversPanicsTo500(t *testing.T) {
	s := newTestServer(t)
	s.mux.HandleFunc("/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	var logged []string
	h := s.Hardened(HardenOptions{Logf: func(f string, a ...interface{}) {
		logged = append(logged, fmt.Sprintf(f, a...))
	}})

	req := httptest.NewRequest(http.MethodGet, "/boom", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panic surfaced as %d, want 500", rec.Code)
	}
	var body struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
			Status  int    `json:"status"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil ||
		body.Error.Code != "internal" || body.Error.Message == "" || body.Error.Status != 500 {
		t.Fatalf("500 body = %q, want error envelope", rec.Body.String())
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "kaboom") {
		t.Fatalf("panic not logged: %v", logged)
	}
	// The report must carry a stack trace pointing at the handler.
	if !strings.Contains(logged[0], "goroutine") || !strings.Contains(logged[0], "harden_test.go") {
		t.Fatalf("panic log has no usable stack:\n%s", logged[0])
	}
	// An unaffected route still serves.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/status", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status after panic = %d", rec.Code)
	}
}

func TestHardenedReRaisesAbortHandler(t *testing.T) {
	// http.ErrAbortHandler is the sanctioned "kill this connection" panic
	// (writeJSONRaw and the fault injector both use it); swallowing it into a
	// 500 would turn deliberate aborts into garbage responses.
	s := newTestServer(t)
	s.mux.HandleFunc("/abort", func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	h := s.Hardened(HardenOptions{Logf: func(string, ...interface{}) {
		t.Error("abort panic must not be logged as a crash")
	}})
	defer func() {
		if e := recover(); e != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler re-panicked", e)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/abort", nil))
	t.Fatal("handler returned normally; abort was swallowed")
}

func TestHardenedAbortsAfterHeadersSent(t *testing.T) {
	// A panic after the header is out cannot become a clean 500; the only
	// honest move is aborting the connection.
	s := newTestServer(t)
	s.mux.HandleFunc("/late-boom", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"partial":`)
		panic("late kaboom")
	})
	h := s.Hardened(HardenOptions{Logf: func(string, ...interface{}) {}})
	defer func() {
		if e := recover(); e != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want connection abort", e)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/late-boom", nil))
	t.Fatal("late panic did not abort the connection")
}

func TestWriteJSONAbortsOnShortWrite(t *testing.T) {
	// Regression for the silent-truncation bug: a response writer that fails
	// mid-body must kill the connection, not hand the client a torn payload
	// with a 200 status line.
	defer func() {
		if e := recover(); e != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler", e)
		}
	}()
	writeJSONRaw(failingWriter{httptest.NewRecorder()}, http.StatusOK, []byte(`{"ok":true}`))
	t.Fatal("short write did not abort")
}

type failingWriter struct{ *httptest.ResponseRecorder }

func (f failingWriter) Write(p []byte) (int, error) {
	return len(p) / 2, fmt.Errorf("wire cut")
}

func TestHardenedCapsRequestBodies(t *testing.T) {
	path := t.TempDir() + "/cap.plog"
	ms, err := NewMutable("cap", path, groups.Config{K: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	h := ms.Hardened(HardenOptions{MaxBodyBytes: 256, Logf: func(string, ...interface{}) {}})

	// Valid JSON well past the cap: without MaxBytesReader this mutation
	// would succeed, so the 400 proves the cap did the rejecting.
	huge := fmt.Sprintf(`{"name":"X","properties":{"%s":1}}`, strings.Repeat("a", 500))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/users", strings.NewReader(huge)))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("oversized body answered %d, want 400", rec.Code)
	}
	// A normal-sized mutation still goes through.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/users", strings.NewReader(`{"name":"A"}`)))
	if rec.Code != http.StatusOK {
		t.Fatalf("small body answered %d: %s", rec.Code, rec.Body.String())
	}
}

func TestHardenedAppliesRequestDeadline(t *testing.T) {
	s := newTestServer(t)
	sawDeadline := false
	s.mux.HandleFunc("/deadline", func(w http.ResponseWriter, r *http.Request) {
		_, sawDeadline = r.Context().Deadline()
		writeJSON(w, r, http.StatusOK, map[string]string{"status": "ok"})
	})
	h := s.Hardened(HardenOptions{RequestTimeout: time.Second})
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/deadline", nil))
	if !sawDeadline {
		t.Fatal("handler context has no deadline")
	}
}

func TestHealthzAndReadyz(t *testing.T) {
	s := newTestServer(t)
	get := func(path string) int {
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		return rec.Code
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz = %d", got)
	}
	if got := get("/readyz"); got != http.StatusOK {
		t.Fatalf("readyz before drain = %d", got)
	}
	s.StartDrain()
	if !s.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	// Draining: readiness flips so balancers stop routing, liveness holds so
	// the process isn't killed mid-drain.
	if got := get("/readyz"); got != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", got)
	}
	if got := get("/healthz"); got != http.StatusOK {
		t.Fatalf("healthz during drain = %d", got)
	}
}

func TestOverloadShedsWith429WhileReadsServe(t *testing.T) {
	// Deterministic overload: hold the single writer in beforeApply, fill the
	// depth-1 queue, and watch admission control shed the overflow while the
	// lock-free read path keeps serving the published epoch.
	path := t.TempDir() + "/shed.plog"
	ms, err := NewMutableOpts("shed", path, groups.Config{K: 3}, nil, MutableOptions{
		MaxBatch: 1, QueueDepth: 1, RetryAfter: 1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 8)
	release := make(chan struct{})
	ms.beforeApply = func() {
		entered <- struct{}{}
		<-release
	}

	post := func(name string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		body := fmt.Sprintf(`{"name":%q}`, name)
		ms.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/users", strings.NewReader(body)))
		return rec
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); post("held-by-writer") }()
	<-entered // the writer now owns mutation 1 and is parked
	go func() { defer wg.Done(); post("queued") }()
	for len(ms.mutCh) == 0 {
		time.Sleep(time.Millisecond) // wait for mutation 2 to occupy the queue
	}

	// Queue full: the next mutation must be shed, not block.
	rec := post("shed-me")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("overload answered %d, want 429: %s", rec.Code, rec.Body.String())
	}
	// RetryAfter 1.5s advertises as 2 (rounded up to whole seconds).
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got)
	}

	// Reads are untouched: the snapshot path never crosses the writer.
	readRec := httptest.NewRecorder()
	ms.ServeHTTP(readRec, httptest.NewRequest(http.MethodGet, "/api/status", nil))
	if readRec.Code != http.StatusOK {
		t.Fatalf("read during overload = %d", readRec.Code)
	}

	close(release)
	wg.Wait()
	if got := ms.ShedStats(); got != 1 {
		t.Fatalf("ShedStats = %d, want 1", got)
	}
	// The admitted mutations both landed.
	var st struct {
		Users int `json:"users"`
	}
	rec = httptest.NewRecorder()
	ms.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/status", nil))
	decodeBody(t, rec, &st)
	if st.Users != 2 {
		t.Fatalf("users after release = %d, want 2", st.Users)
	}
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestRunGracefulShutdown(t *testing.T) {
	s := newTestServer(t)
	sigCh := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	inFlight := make(chan struct{})
	finish := make(chan struct{})
	s.mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(inFlight)
		<-finish
		writeJSON(w, r, http.StatusOK, map[string]string{"status": "done"})
	})

	runErr := make(chan error, 1)
	go func() {
		runErr <- Run("127.0.0.1:0", s.Hardened(HardenOptions{}), RunOptions{
			DrainTimeout: 5 * time.Second,
			Signals:      sigCh,
			OnReady:      func(a net.Addr) { ready <- "http://" + a.String() },
			OnDrain:      s.StartDrain,
			Logf:         func(string, ...interface{}) {},
		})
	}()
	base := <-ready

	// Park one request in flight, then deliver the shutdown signal.
	slowDone := make(chan error, 1)
	go func() {
		resp, err := http.Get(base + "/slow")
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("slow request = %d", resp.StatusCode)
			}
		}
		slowDone <- err
	}()
	<-inFlight
	sigCh <- syscall.SIGTERM

	// The drain must flip readiness before tearing anything down.
	deadline := time.After(2 * time.Second)
	for !s.Draining() {
		select {
		case <-deadline:
			t.Fatal("readiness never flipped after SIGTERM")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Run must still be draining: the in-flight request holds it open.
	select {
	case err := <-runErr:
		t.Fatalf("Run returned %v before in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(finish)
	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight request during drain: %v", err)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("Run after clean drain: %v", err)
	}
}

func TestRunDrainDeadlineExpires(t *testing.T) {
	s := newTestServer(t)
	sigCh := make(chan os.Signal, 1)
	ready := make(chan string, 1)
	inFlight := make(chan struct{})
	finish := make(chan struct{})
	defer close(finish)
	s.mux.HandleFunc("/wedge", func(w http.ResponseWriter, r *http.Request) {
		close(inFlight)
		<-finish
	})
	runErr := make(chan error, 1)
	go func() {
		runErr <- Run("127.0.0.1:0", s, RunOptions{
			DrainTimeout: 50 * time.Millisecond,
			Signals:      sigCh,
			OnReady:      func(a net.Addr) { ready <- "http://" + a.String() },
			Logf:         func(string, ...interface{}) {},
		})
	}()
	base := <-ready
	go func() {
		resp, err := http.Get(base + "/wedge")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-inFlight
	sigCh <- syscall.SIGTERM
	select {
	case err := <-runErr:
		if err == nil || !strings.Contains(err.Error(), "drain incomplete") {
			t.Fatalf("Run = %v, want drain-incomplete error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not give up after the drain deadline")
	}
}
