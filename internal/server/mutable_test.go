package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"podium/internal/groups"
)

func newMutable(t *testing.T) (*MutableServer, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "live.plog")
	ms, err := NewMutable("live", path, groups.Config{K: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ms.Close() })
	return ms, path
}

func doMutable(t *testing.T, ms *MutableServer, method, path, body string, out interface{}) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	rec := httptest.NewRecorder()
	ms.ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		decodeBody(t, rec, out)
	}
	return rec
}

func decodeBody(t *testing.T, rec *httptest.ResponseRecorder, out interface{}) {
	t.Helper()
	if err := jsonUnmarshal(rec.Body.Bytes(), out); err != nil {
		t.Fatalf("decoding response: %v\n%s", err, rec.Body.String())
	}
}

func TestMutableAddUserAndSelect(t *testing.T) {
	ms, _ := newMutable(t)
	// Seed three users.
	for _, body := range []string{
		`{"name":"Alice","properties":{"livesIn Tokyo":1,"avgRating Mexican":0.9}}`,
		`{"name":"Bob","properties":{"livesIn NYC":1,"avgRating Mexican":0.2}}`,
		`{"name":"Carol","properties":{"livesIn Bali":1}}`,
	} {
		var got struct {
			ID     int `json:"id"`
			Groups int `json:"groups"`
		}
		rec := doMutable(t, ms, http.MethodPost, "/api/users", body, &got)
		if rec.Code != http.StatusOK {
			t.Fatalf("add user: %d: %s", rec.Code, rec.Body.String())
		}
		if got.Groups == 0 {
			t.Fatalf("new user joined no groups: %s", rec.Body.String())
		}
	}
	// A selection over the live population.
	var sel struct {
		Users []struct {
			Name string `json:"name"`
		} `json:"users"`
	}
	rec := doMutable(t, ms, http.MethodPost, "/api/select", `{"budget":2}`, &sel)
	if rec.Code != http.StatusOK || len(sel.Users) != 2 {
		t.Fatalf("select: %d, %d users", rec.Code, len(sel.Users))
	}
	// Status reflects the mutations.
	var st struct {
		Users int `json:"users"`
	}
	doMutable(t, ms, http.MethodGet, "/api/status", "", &st)
	if st.Users != 3 {
		t.Fatalf("status users = %d", st.Users)
	}
}

func TestMutableAddUserValidation(t *testing.T) {
	ms, _ := newMutable(t)
	cases := []string{
		`{"properties":{}}`,                   // missing name
		`{"name":"X","properties":{"p":1.5}}`, // bad score
		`{"name":"X","unknown":1}`,            // unknown field
		`not json`,
	}
	for _, body := range cases {
		if rec := doMutable(t, ms, http.MethodPost, "/api/users", body, nil); rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: code %d", body, rec.Code)
		}
	}
	if rec := doMutable(t, ms, http.MethodGet, "/api/users", "", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Fatal("GET users allowed")
	}
	// Failed mutations must not create users.
	var st struct {
		Users int `json:"users"`
	}
	doMutable(t, ms, http.MethodGet, "/api/status", "", &st)
	if st.Users != 0 {
		t.Fatalf("validation failures created %d users", st.Users)
	}
}

func TestMutableSetScoreMovesGroups(t *testing.T) {
	ms, _ := newMutable(t)
	doMutable(t, ms, http.MethodPost, "/api/users", `{"name":"A","properties":{"score prop":0.1}}`, nil)
	doMutable(t, ms, http.MethodPost, "/api/users", `{"name":"B","properties":{"score prop":0.9}}`, nil)

	var resp struct {
		Status string `json:"status"`
	}
	rec := doMutable(t, ms, http.MethodPost, "/api/scores", `{"user":0,"label":"score prop","score":0.92}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("set score: %d: %s", rec.Code, rec.Body.String())
	}
	if resp.Status != "updated" {
		t.Fatalf("status = %q", resp.Status)
	}
	// Both users now share the high bucket: the selection of 1 user covers
	// it; verify via distribution.
	var d struct {
		Subset []float64 `json:"subset"`
		All    []float64 `json:"all"`
	}
	doMutable(t, ms, http.MethodGet, "/api/distribution?prop=score%20prop&users=0,1", "", &d)
	high := len(d.All) - 1
	if d.All[high] != 1 {
		t.Fatalf("population distribution after update = %v", d.All)
	}
}

func TestMutableSetScoreNewProperty(t *testing.T) {
	ms, _ := newMutable(t)
	doMutable(t, ms, http.MethodPost, "/api/users", `{"name":"A","properties":{"p":0.5}}`, nil)
	var resp struct {
		Status string `json:"status"`
	}
	rec := doMutable(t, ms, http.MethodPost, "/api/scores", `{"user":0,"label":"brand new","score":0.4}`, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("set score: %d", rec.Code)
	}
	if !strings.Contains(resp.Status, "new property bucketed") {
		t.Fatalf("status = %q, want new-property bucketing notice", resp.Status)
	}
	// The new property's bucket is queryable immediately.
	rec = doMutable(t, ms, http.MethodGet, "/api/distribution?prop=brand%20new&users=0", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("distribution on new property: %d", rec.Code)
	}
}

func TestMutableSetScoreValidation(t *testing.T) {
	ms, _ := newMutable(t)
	doMutable(t, ms, http.MethodPost, "/api/users", `{"name":"A"}`, nil)
	for _, body := range []string{
		`{"user":5,"label":"p","score":0.5}`,
		`{"user":0,"label":"p","score":2}`,
		`{"bad json`,
	} {
		if rec := doMutable(t, ms, http.MethodPost, "/api/scores", body, nil); rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: code %d", body, rec.Code)
		}
	}
}

func TestMutableDurability(t *testing.T) {
	path := filepath.Join(t.TempDir(), "durable.plog")
	ms, err := NewMutable("live", path, groups.Config{K: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	doMutable(t, ms, http.MethodPost, "/api/users", `{"name":"Alice","properties":{"p":0.7}}`, nil)
	doMutable(t, ms, http.MethodPost, "/api/scores", `{"user":0,"label":"p","score":0.3}`, nil)
	if err := ms.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart: the mutations survive and the index rebuilds over them.
	back, err := NewMutable("live", path, groups.Config{K: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer back.Close()
	var st struct {
		Users      int `json:"users"`
		Properties int `json:"properties"`
	}
	doMutable(t, back, http.MethodGet, "/api/status", "", &st)
	if st.Users != 1 || st.Properties != 1 {
		t.Fatalf("restarted status = %+v", st)
	}
	id, _ := back.Repository().Catalog().Lookup("p")
	if s, _ := back.Repository().Profile(0).Score(id); s != 0.3 {
		t.Fatalf("score after restart = %v, want the updated 0.3", s)
	}
}

// jsonUnmarshal is a tiny indirection so the test file reads naturally.
func jsonUnmarshal(data []byte, out interface{}) error { return json.Unmarshal(data, out) }
