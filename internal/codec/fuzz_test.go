package codec

import (
	"bytes"
	"testing"

	"podium/internal/profile"
)

// FuzzReadRepository drives the binary repository readers — both the v1
// varint stream and the v2 columnar image — with arbitrary input, mirroring
// profile.FuzzReadJSON: they must never panic, and anything they accept must
// be a fully valid repository that round-trips.
func FuzzReadRepository(f *testing.F) {
	repo := profile.PaperExample()
	repo.Seal()
	var v1, v2 bytes.Buffer
	if err := WriteRepository(&v1, repo); err != nil {
		f.Fatal(err)
	}
	if err := WriteRepositoryImage(&v2, repo); err != nil {
		f.Fatal(err)
	}
	f.Add(v1.Bytes())
	f.Add(v2.Bytes())
	f.Add(v1.Bytes()[:len(v1.Bytes())/2])
	f.Add(v2.Bytes()[:len(v2.Bytes())/2])
	f.Add([]byte("PODM"))
	f.Add([]byte("PODM\x01\x01"))
	f.Add([]byte("PODM\x02\x01"))
	f.Add([]byte("PODM\x02\x01\x00\x00\x00\x00\x00"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		repo, err := ReadRepository(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted input: structural invariants must hold.
		prev := -1
		repo.EachRow(func(u profile.UserID, props []profile.PropertyID, scores []float64) {
			if int(u) != prev+1 {
				t.Fatalf("row order broken at user %d", u)
			}
			prev = int(u)
			last := profile.PropertyID(-1)
			for i, id := range props {
				if id <= last || int(id) >= repo.NumProperties() {
					t.Fatalf("user %d: invalid property sequence", u)
				}
				last = id
				if s := scores[i]; s < 0 || s > 1 || s != s {
					t.Fatalf("user %d: accepted score %v", u, s)
				}
			}
		})
		// And it must round-trip through the v2 image bit-exactly at the
		// repository level.
		var img bytes.Buffer
		if err := WriteRepositoryImage(&img, repo); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadRepositoryImage(img.Bytes())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.NumUsers() != repo.NumUsers() || again.NumProperties() != repo.NumProperties() {
			t.Fatal("round trip changed shape")
		}
	})
}
