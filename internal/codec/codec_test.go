package codec

import (
	"bytes"
	"strings"
	"testing"

	"podium/internal/opinions"
	"podium/internal/profile"
	"podium/internal/synth"
)

func TestRepositoryRoundTrip(t *testing.T) {
	repo := profile.PaperExample()
	var buf bytes.Buffer
	if err := WriteRepository(&buf, repo); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRepository(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertRepoEqual(t, repo, back)
}

func TestDatasetRoundTrip(t *testing.T) {
	ds := synth.Generate(synth.YelpLike(60))
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds.Repo, ds.Store); err != nil {
		t.Fatal(err)
	}
	repo, store, err := ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertRepoEqual(t, ds.Repo, repo)
	if store.MaxRating() != ds.Store.MaxRating() {
		t.Fatalf("max rating %d vs %d", store.MaxRating(), ds.Store.MaxRating())
	}
	if store.NumDestinations() != ds.Store.NumDestinations() || store.NumReviews() != ds.Store.NumReviews() {
		t.Fatalf("store shape %d/%d vs %d/%d",
			store.NumDestinations(), store.NumReviews(),
			ds.Store.NumDestinations(), ds.Store.NumReviews())
	}
	for d := 0; d < store.NumDestinations(); d++ {
		id := opinions.DestID(d)
		if store.DestName(id) != ds.Store.DestName(id) {
			t.Fatalf("destination %d name mismatch", d)
		}
		a, b := ds.Store.Reviews(id), store.Reviews(id)
		if len(a) != len(b) {
			t.Fatalf("destination %d: %d vs %d reviews", d, len(a), len(b))
		}
		for i := range a {
			if a[i].User != b[i].User || a[i].Rating != b[i].Rating || a[i].Useful != b[i].Useful {
				t.Fatalf("destination %d review %d differs: %+v vs %+v", d, i, a[i], b[i])
			}
			if len(a[i].Topics) != len(b[i].Topics) {
				t.Fatalf("destination %d review %d topic count differs", d, i)
			}
			for j := range a[i].Topics {
				if a[i].Topics[j] != b[i].Topics[j] {
					t.Fatalf("mention %d/%d/%d differs", d, i, j)
				}
			}
		}
	}
}

func assertRepoEqual(t *testing.T, want, got *profile.Repository) {
	t.Helper()
	if got.NumUsers() != want.NumUsers() || got.NumProperties() != want.NumProperties() {
		t.Fatalf("shape %d/%d vs %d/%d", got.NumUsers(), got.NumProperties(), want.NumUsers(), want.NumProperties())
	}
	for id := 0; id < want.NumProperties(); id++ {
		if got.Catalog().Label(profile.PropertyID(id)) != want.Catalog().Label(profile.PropertyID(id)) {
			t.Fatalf("label %d differs", id)
		}
	}
	for u := 0; u < want.NumUsers(); u++ {
		uid := profile.UserID(u)
		if got.UserName(uid) != want.UserName(uid) {
			t.Fatalf("user %d name differs", u)
		}
		if got.Profile(uid).Len() != want.Profile(uid).Len() {
			t.Fatalf("user %d profile size differs", u)
		}
		want.Profile(uid).Each(func(id profile.PropertyID, s float64) {
			g, ok := got.Profile(uid).Score(id)
			if !ok || g != s {
				t.Fatalf("user %d property %d: %v vs %v", u, id, g, s)
			}
		})
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	ds := synth.Generate(synth.TripAdvisorLike(80))
	var bin, js bytes.Buffer
	if err := WriteRepository(&bin, ds.Repo); err != nil {
		t.Fatal(err)
	}
	if err := ds.Repo.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= js.Len()/2 {
		t.Fatalf("binary %d bytes vs JSON %d — expected < half", bin.Len(), js.Len())
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := ReadRepository(strings.NewReader("NOPE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestReadRejectsBadVersion(t *testing.T) {
	repo := profile.PaperExample()
	var buf bytes.Buffer
	if err := WriteRepository(&buf, repo); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version byte
	if _, err := ReadRepository(bytes.NewReader(data)); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestReadRejectsWrongSection(t *testing.T) {
	ds := synth.Generate(synth.YelpLike(20))
	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds.Repo, ds.Store); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRepository(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("dataset file accepted as plain repository")
	}
}

func TestReadRejectsTruncation(t *testing.T) {
	repo := profile.PaperExample()
	var buf bytes.Buffer
	if err := WriteRepository(&buf, repo); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Every strict prefix must fail loudly, never return a repo silently
	// missing data. (Prefixes that happen to decode to fewer complete users
	// are impossible: user count is written up front.)
	for cut := 0; cut < len(data)-1; cut += 7 {
		if _, err := ReadRepository(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestReadRejectsCorruptScore(t *testing.T) {
	// Flip bytes throughout the file; the reader must either error or
	// produce a valid repository (flips in names/labels are legal content
	// changes) — it must never panic or yield out-of-range scores.
	repo := profile.PaperExample()
	var buf bytes.Buffer
	if err := WriteRepository(&buf, repo); err != nil {
		t.Fatal(err)
	}
	orig := buf.Bytes()
	for i := 6; i < len(orig); i++ {
		data := append([]byte(nil), orig...)
		data[i] ^= 0xFF
		back, err := ReadRepository(bytes.NewReader(data))
		if err != nil {
			continue
		}
		for u := 0; u < back.NumUsers(); u++ {
			back.Profile(profile.UserID(u)).Each(func(_ profile.PropertyID, s float64) {
				if s < 0 || s > 1 || s != s {
					t.Fatalf("byte flip at %d produced invalid score %v", i, s)
				}
			})
		}
	}
}
