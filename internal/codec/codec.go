// Package codec provides a compact, versioned binary serialization for
// Podium's two data stores — the profile repository and the ground-truth
// review store. The JSON wire form (profile.WriteJSON) is the interchange
// format; this codec is the storage format: property labels are written once
// and profiles reference them by varint ID, so a repository encodes at a
// fraction of the JSON size and loads without re-interning strings in
// arbitrary order.
//
// Layout (all integers varint-encoded, strings length-prefixed):
//
//	magic "PODM" | format version | section tag | section payload | ...
//
// Readers reject unknown magics, versions and section tags, and validate
// every score and rating on the way in, so a truncated or corrupted file
// fails loudly rather than yielding a half-loaded repository.
package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"podium/internal/opinions"
	"podium/internal/profile"
)

const (
	magic   = "PODM"
	version = 1

	tagRepository byte = 1
	tagStore      byte = 2
)

// WriteRepository encodes a repository to w.
func WriteRepository(w io.Writer, repo *profile.Repository) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, tagRepository); err != nil {
		return err
	}
	if err := writeRepositoryBody(bw, repo); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadRepository decodes a repository from r, accepting both format v1
// (varint stream) and format v2 (columnar snapshot image, see image.go). For
// v2 files on disk prefer ReadImageFile, which skips the stream copy.
func ReadRepository(r io.Reader) (*profile.Repository, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(magic) + 1)
	if err == nil && string(head[:len(magic)]) == magic && head[len(magic)] == imageVersion {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("codec: reading image: %w", err)
		}
		return ReadRepositoryImage(data)
	}
	if err := readHeader(br, tagRepository); err != nil {
		return nil, err
	}
	return readRepositoryBody(br)
}

// WriteDataset encodes a repository and its review store together.
func WriteDataset(w io.Writer, repo *profile.Repository, store *opinions.Store) error {
	bw := bufio.NewWriter(w)
	if err := writeHeader(bw, tagStore); err != nil {
		return err
	}
	if err := writeRepositoryBody(bw, repo); err != nil {
		return err
	}
	if err := writeStoreBody(bw, store); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadDataset decodes a repository+store file.
func ReadDataset(r io.Reader) (*profile.Repository, *opinions.Store, error) {
	br := bufio.NewReader(r)
	if err := readHeader(br, tagStore); err != nil {
		return nil, nil, err
	}
	repo, err := readRepositoryBody(br)
	if err != nil {
		return nil, nil, err
	}
	store, err := readStoreBody(br)
	if err != nil {
		return nil, nil, err
	}
	return repo, store, nil
}

func writeHeader(w *bufio.Writer, tag byte) error {
	if _, err := w.WriteString(magic); err != nil {
		return err
	}
	if err := w.WriteByte(version); err != nil {
		return err
	}
	return w.WriteByte(tag)
}

func readHeader(r *bufio.Reader, wantTag byte) error {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return fmt.Errorf("codec: reading magic: %w", err)
	}
	if string(head) != magic {
		return fmt.Errorf("codec: bad magic %q", head)
	}
	v, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("codec: reading version: %w", err)
	}
	if v != version {
		return fmt.Errorf("codec: unsupported format version %d", v)
	}
	tag, err := r.ReadByte()
	if err != nil {
		return fmt.Errorf("codec: reading section tag: %w", err)
	}
	if tag != wantTag {
		return fmt.Errorf("codec: section tag %d, want %d", tag, wantTag)
	}
	return nil
}

func writeRepositoryBody(w *bufio.Writer, repo *profile.Repository) error {
	labels := repo.Catalog().Labels()
	writeUvarint(w, uint64(len(labels)))
	for _, l := range labels {
		writeString(w, l)
	}
	writeUvarint(w, uint64(repo.NumUsers()))
	for u := 0; u < repo.NumUsers(); u++ {
		uid := profile.UserID(u)
		writeString(w, repo.UserName(uid))
		prof := repo.Profile(uid)
		writeUvarint(w, uint64(prof.Len()))
		prof.Each(func(id profile.PropertyID, s float64) {
			writeUvarint(w, uint64(id))
			writeFloat(w, s)
		})
	}
	// Write errors surface at the caller's Flush; bufio latches the first.
	return nil
}

func readRepositoryBody(r *bufio.Reader) (*profile.Repository, error) {
	nLabels, err := readUvarint(r, "label count")
	if err != nil {
		return nil, err
	}
	repo := profile.NewRepository()
	cat := repo.Catalog()
	for i := uint64(0); i < nLabels; i++ {
		label, err := readString(r, "label")
		if err != nil {
			return nil, err
		}
		if id := cat.Intern(label); uint64(id) != i {
			return nil, fmt.Errorf("codec: duplicate label %q", label)
		}
	}
	nUsers, err := readUvarint(r, "user count")
	if err != nil {
		return nil, err
	}
	for u := uint64(0); u < nUsers; u++ {
		name, err := readString(r, "user name")
		if err != nil {
			return nil, err
		}
		uid := repo.AddUser(name)
		nProps, err := readUvarint(r, "profile size")
		if err != nil {
			return nil, err
		}
		if nProps > nLabels {
			return nil, fmt.Errorf("codec: profile of %d properties exceeds the %d-label catalog", nProps, nLabels)
		}
		for p := uint64(0); p < nProps; p++ {
			id, err := readUvarint(r, "property id")
			if err != nil {
				return nil, err
			}
			if id >= nLabels {
				return nil, fmt.Errorf("codec: property id %d out of range", id)
			}
			s, err := readFloat(r, "score")
			if err != nil {
				return nil, err
			}
			if err := repo.SetScoreID(uid, profile.PropertyID(id), s); err != nil {
				return nil, fmt.Errorf("codec: %w", err)
			}
		}
	}
	return repo, nil
}

func writeStoreBody(w *bufio.Writer, store *opinions.Store) error {
	writeUvarint(w, uint64(store.MaxRating()))
	writeUvarint(w, uint64(store.NumDestinations()))
	for d := 0; d < store.NumDestinations(); d++ {
		id := opinions.DestID(d)
		writeString(w, store.DestName(id))
		writeString(w, store.DestCategory(id))
		topics := store.Topics(id)
		writeUvarint(w, uint64(len(topics)))
		for _, t := range topics {
			writeString(w, t)
		}
		reviews := store.Reviews(id)
		writeUvarint(w, uint64(len(reviews)))
		for _, rv := range reviews {
			writeUvarint(w, uint64(rv.User))
			writeUvarint(w, uint64(rv.Rating))
			writeUvarint(w, uint64(rv.Useful))
			writeUvarint(w, uint64(len(rv.Topics)))
			for _, tm := range rv.Topics {
				writeString(w, tm.Topic)
				if tm.Positive {
					w.WriteByte(1)
				} else {
					w.WriteByte(0)
				}
			}
		}
	}
	return nil
}

func readStoreBody(r *bufio.Reader) (*opinions.Store, error) {
	maxRating, err := readUvarint(r, "max rating")
	if err != nil {
		return nil, err
	}
	if maxRating < 1 || maxRating > 1000 {
		return nil, fmt.Errorf("codec: implausible rating scale %d", maxRating)
	}
	store := opinions.NewStore(int(maxRating))
	nDest, err := readUvarint(r, "destination count")
	if err != nil {
		return nil, err
	}
	for d := uint64(0); d < nDest; d++ {
		name, err := readString(r, "destination name")
		if err != nil {
			return nil, err
		}
		category, err := readString(r, "destination category")
		if err != nil {
			return nil, err
		}
		nTopics, err := readUvarint(r, "topic count")
		if err != nil {
			return nil, err
		}
		topics := make([]string, nTopics)
		for i := range topics {
			if topics[i], err = readString(r, "topic"); err != nil {
				return nil, err
			}
		}
		dest := store.AddDestination(name, topics)
		store.SetDestCategory(dest, category)
		nReviews, err := readUvarint(r, "review count")
		if err != nil {
			return nil, err
		}
		for i := uint64(0); i < nReviews; i++ {
			user, err := readUvarint(r, "review user")
			if err != nil {
				return nil, err
			}
			rating, err := readUvarint(r, "review rating")
			if err != nil {
				return nil, err
			}
			useful, err := readUvarint(r, "review usefulness")
			if err != nil {
				return nil, err
			}
			nMentions, err := readUvarint(r, "mention count")
			if err != nil {
				return nil, err
			}
			rv := opinions.Review{
				User:   profile.UserID(user),
				Dest:   dest,
				Rating: int(rating),
				Useful: int(useful),
			}
			for m := uint64(0); m < nMentions; m++ {
				topic, err := readString(r, "mention topic")
				if err != nil {
					return nil, err
				}
				b, err := r.ReadByte()
				if err != nil {
					return nil, fmt.Errorf("codec: reading sentiment: %w", err)
				}
				rv.Topics = append(rv.Topics, opinions.TopicMention{Topic: topic, Positive: b == 1})
			}
			if err := store.AddReview(rv); err != nil {
				return nil, fmt.Errorf("codec: %w", err)
			}
		}
	}
	return store, nil
}

// --- primitives ---

func writeUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func readUvarint(r *bufio.Reader, what string) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, fmt.Errorf("codec: reading %s: %w", what, err)
	}
	return v, nil
}

// maxStringLen bounds decoded strings; labels and names are human-scale.
const maxStringLen = 1 << 16

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	w.WriteString(s)
}

func readString(r *bufio.Reader, what string) (string, error) {
	n, err := readUvarint(r, what+" length")
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("codec: %s length %d exceeds limit", what, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("codec: reading %s: %w", what, err)
	}
	return string(buf), nil
}

func writeFloat(w *bufio.Writer, f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	w.Write(buf[:])
}

func readFloat(r *bufio.Reader, what string) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("codec: reading %s: %w", what, err)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}
