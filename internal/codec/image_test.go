package codec

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"podium/internal/profile"
	"podium/internal/synth"
)

func TestImageRoundTrip(t *testing.T) {
	ds := synth.Generate(synth.TripAdvisorLike(120))
	ds.Repo.Seal()
	var buf bytes.Buffer
	if err := WriteRepositoryImage(&buf, ds.Repo); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRepositoryImage(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	assertRepoEqual(t, ds.Repo, back)
}

// A decoded image must re-encode to the exact same bytes: the image is a
// faithful columnar dump, not a lossy projection.
func TestImageBitIdenticalReencode(t *testing.T) {
	ds := synth.Generate(synth.YelpLike(80))
	ds.Repo.Seal()
	var first bytes.Buffer
	if err := WriteRepositoryImage(&first, ds.Repo); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRepositoryImage(first.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := WriteRepositoryImage(&second, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("image re-encode is not bit-identical")
	}
}

func TestImageFileRoundTrip(t *testing.T) {
	repo := profile.PaperExample()
	repo.Seal()
	path := filepath.Join(t.TempDir(), "repo.img")
	if err := WriteImageFile(path, repo); err != nil {
		t.Fatal(err)
	}
	back, err := ReadImageFile(path)
	if err != nil {
		t.Fatal(err)
	}
	assertRepoEqual(t, repo, back)
	// The generic stream reader must accept v2 images too.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ReadRepository(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	assertRepoEqual(t, repo, again)
}

func TestImageRejectsCorruption(t *testing.T) {
	repo := profile.PaperExample()
	repo.Seal()
	var buf bytes.Buffer
	if err := WriteRepositoryImage(&buf, repo); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	for _, n := range []int{0, 3, 5, 6, 10, len(good) / 2, len(good) - 1} {
		if _, err := ReadRepositoryImage(good[:n]); err == nil {
			t.Errorf("accepted truncation to %d bytes", n)
		}
	}
	// Flip bytes across the file; every mutation must either fail or decode
	// into a fully valid repository (header/blob bytes may legally change
	// names), never panic or corrupt.
	for i := 0; i < len(good); i += 7 {
		mut := append([]byte(nil), good...)
		mut[i] ^= 0xFF
		repo, err := ReadRepositoryImage(mut)
		if err != nil {
			continue
		}
		repo.EachRow(func(_ profile.UserID, props []profile.PropertyID, scores []float64) {
			for i, s := range scores {
				if s < 0 || s > 1 || s != s || int(props[i]) >= repo.NumProperties() {
					t.Fatalf("byte-flip at %d decoded an invalid repository", i)
				}
			}
		})
	}
}

// The golden v1 file pins backward compatibility: a file written by the v1
// encoder before the columnar rewrite must keep decoding to the same
// repository, byte for byte of its JSON projection.
func TestGoldenV1Compatibility(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "v1_paper_example.podm"))
	if err != nil {
		t.Fatal(err)
	}
	repo, err := ReadRepository(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("v1 golden file no longer decodes: %v", err)
	}
	assertRepoEqual(t, profile.PaperExample(), repo)
	// And the v1 encoder still produces those exact bytes.
	var buf bytes.Buffer
	if err := WriteRepository(&buf, profile.PaperExample()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("v1 encoder output drifted from the golden file")
	}
}

// TestImageChecksumDetectsSectionCorruption: a byte flip in any section is
// caught by its CRC32C and reported as ErrChecksum — the signal load paths
// use to fall back to a slower-but-intact source.
func TestImageChecksumDetectsSectionCorruption(t *testing.T) {
	ds := synth.Generate(synth.TripAdvisorLike(60))
	ds.Repo.Seal()
	var buf bytes.Buffer
	if err := WriteRepositoryImage(&buf, ds.Repo); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip a byte in the last section (scores), just before the trailer: a
	// score bit-flip can yield another in-range float, so only the checksum
	// catches it.
	mut := append([]byte(nil), good...)
	mut[len(mut)-4*imageSections-3] ^= 0x01
	_, err := ReadRepositoryImage(mut)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("score-section corruption returned %v, want ErrChecksum", err)
	}
}

// TestImageLegacyWithoutTrailerStillLoads: images written before the
// checksum trailer carry exactly the declared section bytes and must keep
// loading, unverified.
func TestImageLegacyWithoutTrailerStillLoads(t *testing.T) {
	repo := profile.PaperExample()
	repo.Seal()
	var buf bytes.Buffer
	if err := WriteRepositoryImage(&buf, repo); err != nil {
		t.Fatal(err)
	}
	legacy := buf.Bytes()[:buf.Len()-4*imageSections]
	back, err := ReadRepositoryImage(legacy)
	if err != nil {
		t.Fatalf("trailer-less legacy image rejected: %v", err)
	}
	assertRepoEqual(t, repo, back)
}
