package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"podium/internal/bucketing"
	"podium/internal/profile"
)

// The buckets section of the format-v2 snapshot image: the bucket boundaries
// β(p) a live index assigns scores with. A mutable server restart replays the
// repository log and rebuilds its group index, but re-running the splitting
// method over the final score distribution can derive different cuts than the
// live incrementally-bucketed index that produced the log — and different
// cuts mean different groups and different selections. Persisting the
// boundaries and rebuilding with groups.Config.FixedBuckets makes a restart
// bit-reproduce the live index's group memberships.
//
//	magic "PODM" | version 2 | tagBuckets
//	varint nProps
//	per property, ascending PropertyID:
//	  varint pid | varint nBuckets
//	  per bucket: lo float64 bits (LE) | hi float64 bits (LE) | closedHi byte
//
// PropertyIDs are stable across a log replay (the catalog interns labels in
// log order), so the map keys survive the restart they exist for.

const tagBuckets byte = 3

// WriteBuckets encodes per-property bucket boundaries as a format-v2 image
// section.
func WriteBuckets(w io.Writer, buckets map[profile.PropertyID][]bucketing.Bucket) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(magic)
	bw.WriteByte(imageVersion)
	bw.WriteByte(tagBuckets)
	pids := make([]int, 0, len(buckets))
	for p := range buckets {
		pids = append(pids, int(p))
	}
	sort.Ints(pids)
	writeUvarint(bw, uint64(len(pids)))
	var b8 [8]byte
	for _, pid := range pids {
		bs := buckets[profile.PropertyID(pid)]
		writeUvarint(bw, uint64(pid))
		writeUvarint(bw, uint64(len(bs)))
		for _, b := range bs {
			binary.LittleEndian.PutUint64(b8[:], math.Float64bits(b.Lo))
			bw.Write(b8[:])
			binary.LittleEndian.PutUint64(b8[:], math.Float64bits(b.Hi))
			bw.Write(b8[:])
			if b.ClosedHi {
				bw.WriteByte(1)
			} else {
				bw.WriteByte(0)
			}
		}
	}
	return bw.Flush()
}

// ReadBuckets decodes a buckets section from an in-memory byte slice.
func ReadBuckets(data []byte) (map[profile.PropertyID][]bucketing.Bucket, error) {
	if len(data) < len(magic)+2 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("codec: bad magic")
	}
	if data[len(magic)] != imageVersion {
		return nil, fmt.Errorf("codec: not a format-v2 image (version %d)", data[len(magic)])
	}
	if data[len(magic)+1] != tagBuckets {
		return nil, fmt.Errorf("codec: image section tag %d, want %d", data[len(magic)+1], tagBuckets)
	}
	rest := data[len(magic)+2:]
	uvarint := func(what string) (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("codec: reading %s: truncated buckets section", what)
		}
		rest = rest[n:]
		return v, nil
	}
	nProps, err := uvarint("property count")
	if err != nil {
		return nil, err
	}
	if nProps > uint64(len(rest)) {
		return nil, fmt.Errorf("codec: buckets section declares %d properties, %d bytes remain", nProps, len(rest))
	}
	out := make(map[profile.PropertyID][]bucketing.Bucket, nProps)
	prevPid := -1
	for i := uint64(0); i < nProps; i++ {
		pid, err := uvarint("property id")
		if err != nil {
			return nil, err
		}
		if pid > math.MaxUint32 || int(pid) <= prevPid {
			return nil, fmt.Errorf("codec: bucket property ids not ascending at %d", pid)
		}
		prevPid = int(pid)
		nb, err := uvarint("bucket count")
		if err != nil {
			return nil, err
		}
		if 17*nb > uint64(len(rest)) {
			return nil, fmt.Errorf("codec: property %d declares %d buckets, %d bytes remain", pid, nb, len(rest))
		}
		bs := make([]bucketing.Bucket, nb)
		for j := range bs {
			lo := math.Float64frombits(binary.LittleEndian.Uint64(rest))
			hi := math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
			closed := rest[16]
			rest = rest[17:]
			if closed > 1 || lo != lo || hi != hi || lo > hi {
				return nil, fmt.Errorf("codec: property %d bucket %d is malformed [%v,%v,%d]", pid, j, lo, hi, closed)
			}
			bs[j] = bucketing.Bucket{Lo: lo, Hi: hi, ClosedHi: closed == 1}
		}
		out[profile.PropertyID(pid)] = bs
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("codec: buckets section has %d trailing bytes", len(rest))
	}
	return out, nil
}

// WriteBucketsFile writes the boundaries to path atomically (temp file +
// rename), like WriteImageFile.
func WriteBucketsFile(path string, buckets map[profile.PropertyID][]bucketing.Bucket) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("codec: %w", err)
	}
	if err := WriteBuckets(f, buckets); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("codec: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("codec: %w", err)
	}
	return nil
}

// ReadBucketsFile loads persisted bucket boundaries.
func ReadBucketsFile(path string) (map[profile.PropertyID][]bucketing.Bucket, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	return ReadBuckets(data)
}
