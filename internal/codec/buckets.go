package codec

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"

	"podium/internal/bucketing"
	"podium/internal/profile"
)

// The buckets section of the format-v2 snapshot image: the bucket boundaries
// β(p) a live index assigns scores with. A mutable server restart replays the
// repository log and rebuilds its group index, but re-running the splitting
// method over the final score distribution can derive different cuts than the
// live incrementally-bucketed index that produced the log — and different
// cuts mean different groups and different selections. Persisting the
// boundaries and rebuilding with groups.Config.FixedBuckets makes a restart
// bit-reproduce the live index's group memberships.
//
//	magic "PODM" | version 2 | tagBucketsCRC | payload CRC32C (uint32 LE)
//	varint nProps
//	per property, ascending PropertyID:
//	  varint pid | varint nBuckets
//	  per bucket: lo float64 bits (LE) | hi float64 bits (LE) | closedHi byte
//
// The CRC32C covers everything after itself. Sidecars written before the
// checksum existed carry tagBuckets (3) with no CRC word and load without
// verification; a tagBucketsCRC sidecar whose payload fails the check
// returns ErrChecksum, and the mutable server falls back to deriving cuts
// from the replayed log rather than failing startup.
//
// PropertyIDs are stable across a log replay (the catalog interns labels in
// log order), so the map keys survive the restart they exist for.

const (
	tagBuckets    byte = 3 // legacy: no integrity word
	tagBucketsCRC byte = 4 // CRC32C of the payload follows the tag
)

// WriteBuckets encodes per-property bucket boundaries as a format-v2 image
// section.
func WriteBuckets(w io.Writer, buckets map[profile.PropertyID][]bucketing.Bucket) error {
	// The payload is buffered (it is small — tens of bytes per property) so
	// its CRC32C can lead it on the wire.
	var payload bytes.Buffer
	pids := make([]int, 0, len(buckets))
	for p := range buckets {
		pids = append(pids, int(p))
	}
	sort.Ints(pids)
	writeUvarint(&payload, uint64(len(pids)))
	var b8 [8]byte
	for _, pid := range pids {
		bs := buckets[profile.PropertyID(pid)]
		writeUvarint(&payload, uint64(pid))
		writeUvarint(&payload, uint64(len(bs)))
		for _, b := range bs {
			binary.LittleEndian.PutUint64(b8[:], math.Float64bits(b.Lo))
			payload.Write(b8[:])
			binary.LittleEndian.PutUint64(b8[:], math.Float64bits(b.Hi))
			payload.Write(b8[:])
			if b.ClosedHi {
				payload.WriteByte(1)
			} else {
				payload.WriteByte(0)
			}
		}
	}
	bw := bufio.NewWriter(w)
	bw.WriteString(magic)
	bw.WriteByte(imageVersion)
	bw.WriteByte(tagBucketsCRC)
	var b4 [4]byte
	binary.LittleEndian.PutUint32(b4[:], crc32.Checksum(payload.Bytes(), castagnoli))
	bw.Write(b4[:])
	bw.Write(payload.Bytes())
	return bw.Flush()
}

// ReadBuckets decodes a buckets section from an in-memory byte slice.
func ReadBuckets(data []byte) (map[profile.PropertyID][]bucketing.Bucket, error) {
	if len(data) < len(magic)+2 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("codec: bad magic")
	}
	if data[len(magic)] != imageVersion {
		return nil, fmt.Errorf("codec: not a format-v2 image (version %d)", data[len(magic)])
	}
	tag := data[len(magic)+1]
	if tag != tagBuckets && tag != tagBucketsCRC {
		return nil, fmt.Errorf("codec: image section tag %d, want %d or %d", tag, tagBuckets, tagBucketsCRC)
	}
	rest := data[len(magic)+2:]
	if tag == tagBucketsCRC {
		if len(rest) < 4 {
			return nil, fmt.Errorf("codec: buckets section truncated before its checksum")
		}
		want := binary.LittleEndian.Uint32(rest)
		rest = rest[4:]
		if got := crc32.Checksum(rest, castagnoli); got != want {
			return nil, fmt.Errorf("%w: buckets payload crc %08x, header %08x", ErrChecksum, got, want)
		}
	}
	uvarint := func(what string) (uint64, error) {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return 0, fmt.Errorf("codec: reading %s: truncated buckets section", what)
		}
		rest = rest[n:]
		return v, nil
	}
	nProps, err := uvarint("property count")
	if err != nil {
		return nil, err
	}
	if nProps > uint64(len(rest)) {
		return nil, fmt.Errorf("codec: buckets section declares %d properties, %d bytes remain", nProps, len(rest))
	}
	out := make(map[profile.PropertyID][]bucketing.Bucket, nProps)
	prevPid := -1
	for i := uint64(0); i < nProps; i++ {
		pid, err := uvarint("property id")
		if err != nil {
			return nil, err
		}
		if pid > math.MaxUint32 || int(pid) <= prevPid {
			return nil, fmt.Errorf("codec: bucket property ids not ascending at %d", pid)
		}
		prevPid = int(pid)
		nb, err := uvarint("bucket count")
		if err != nil {
			return nil, err
		}
		if 17*nb > uint64(len(rest)) {
			return nil, fmt.Errorf("codec: property %d declares %d buckets, %d bytes remain", pid, nb, len(rest))
		}
		bs := make([]bucketing.Bucket, nb)
		for j := range bs {
			lo := math.Float64frombits(binary.LittleEndian.Uint64(rest))
			hi := math.Float64frombits(binary.LittleEndian.Uint64(rest[8:]))
			closed := rest[16]
			rest = rest[17:]
			if closed > 1 || lo != lo || hi != hi || lo > hi {
				return nil, fmt.Errorf("codec: property %d bucket %d is malformed [%v,%v,%d]", pid, j, lo, hi, closed)
			}
			bs[j] = bucketing.Bucket{Lo: lo, Hi: hi, ClosedHi: closed == 1}
		}
		out[profile.PropertyID(pid)] = bs
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("codec: buckets section has %d trailing bytes", len(rest))
	}
	return out, nil
}

// WriteBucketsFile writes the boundaries to path atomically (temp file +
// rename), like WriteImageFile.
func WriteBucketsFile(path string, buckets map[profile.PropertyID][]bucketing.Bucket) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("codec: %w", err)
	}
	if err := WriteBuckets(f, buckets); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("codec: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("codec: %w", err)
	}
	return nil
}

// ReadBucketsFile loads persisted bucket boundaries.
func ReadBucketsFile(path string) (map[profile.PropertyID][]bucketing.Bucket, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	return ReadBuckets(data)
}
