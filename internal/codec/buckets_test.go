package codec

import (
	"bytes"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"podium/internal/bucketing"
	"podium/internal/profile"
)

func sampleBuckets() map[profile.PropertyID][]bucketing.Bucket {
	return map[profile.PropertyID][]bucketing.Bucket{
		0: {
			{Lo: 0, Hi: 0.25},
			{Lo: 0.25, Hi: 0.7},
			{Lo: 0.7, Hi: 1, ClosedHi: true},
		},
		3: {
			{Lo: 0.5, Hi: 0.5, ClosedHi: true}, // degenerate single-value cut
		},
		7: {
			{Lo: 0, Hi: 1, ClosedHi: true},
		},
	}
}

func TestBucketsRoundTrip(t *testing.T) {
	want := sampleBuckets()
	var buf bytes.Buffer
	if err := WriteBuckets(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBuckets(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip:\n got %v\nwant %v", got, want)
	}
}

func TestBucketsRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBuckets(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBuckets(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("empty round trip = %v", got)
	}
}

func TestBucketsFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "live.plog.buckets")
	want := sampleBuckets()
	if err := WriteBucketsFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBucketsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("file round trip:\n got %v\nwant %v", got, want)
	}
}

func TestBucketsRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBuckets(&buf, sampleBuckets()); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      append([]byte("XODM"), good[4:]...),
		"bad version":    append(append([]byte(magic), 99), good[5:]...),
		"wrong tag":      append(append([]byte(magic), imageVersion, tagStore), good[6:]...),
		"truncated":      good[:len(good)-5],
		"trailing bytes": append(append([]byte{}, good...), 0),
	}
	for name, data := range cases {
		if _, err := ReadBuckets(data); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

// TestBucketsChecksumDetectsCorruption: a payload byte flip fails the
// leading CRC32C with ErrChecksum, and a legacy tag-3 sidecar (same payload,
// no integrity word) still loads.
func TestBucketsChecksumDetectsCorruption(t *testing.T) {
	want := sampleBuckets()
	var buf bytes.Buffer
	if err := WriteBuckets(&buf, want); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip a payload byte (after magic+version+tag+crc).
	mut := append([]byte(nil), good...)
	mut[len(magic)+2+4+1] ^= 0x10
	if _, err := ReadBuckets(mut); !errors.Is(err, ErrChecksum) {
		t.Fatalf("payload corruption returned %v, want ErrChecksum", err)
	}
	// Flip a CRC byte: same verdict.
	mut = append([]byte(nil), good...)
	mut[len(magic)+2] ^= 0x10
	if _, err := ReadBuckets(mut); !errors.Is(err, ErrChecksum) {
		t.Fatalf("crc corruption returned %v, want ErrChecksum", err)
	}

	// Legacy file: tag 3, no CRC word, identical payload.
	legacy := append(append([]byte(magic), imageVersion, tagBuckets), good[len(magic)+2+4:]...)
	got, err := ReadBuckets(legacy)
	if err != nil {
		t.Fatalf("legacy tag-%d sidecar rejected: %v", tagBuckets, err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("legacy round trip:\n got %v\nwant %v", got, want)
	}
}
