package codec

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"podium/internal/profile"
)

// Format v2: the snapshot image. Where v1 interleaves varints per user —
// forcing a value-by-value decode through the repository's mutation API —
// the v2 image is the columnar repository laid out section by section, so
// loading is one file read, five bulk slice decodes and a validation pass.
// Varints appear only in the fixed-size header; every bulk section is raw
// little-endian.
//
//	magic "PODM" | version 2 | tagRepository
//	header (varints): nLabels, labelBlobLen, nUsers, nameBlobLen, nLinks
//	labelOff  uint32 × (nLabels+1)   label i = labelBlob[labelOff[i]:labelOff[i+1]]
//	labelBlob labelBlobLen bytes
//	nameOff   uint32 × (nUsers+1)
//	nameBlob  nameBlobLen bytes
//	rowOff    uint64 × (nUsers+1)    user u's links = [rowOff[u], rowOff[u+1])
//	props     uint32 × nLinks
//	scores    float64 bits (LE) × nLinks
//	crcs      uint32 × 7            CRC32C (Castagnoli) per section, in order
//
// The reader validates section bounds against the actual file size before
// allocating, verifies each section's CRC32C against the trailer, then
// delegates structural validation (monotone offsets, sorted rows, in-range
// scores) to profile.FromColumns — a corrupted image fails loudly (with
// ErrChecksum, so load paths can fall back to the slower source), never
// yields a half-loaded repository. Images written before the checksum
// trailer existed carry exactly the declared section bytes and load without
// verification. Label and name strings are sliced out of two blob strings,
// so a million names cost two allocations, not a million.

const imageVersion = 2

// imageSections is the number of checksummed sections in a repository image
// (labelOff, labelBlob, nameOff, nameBlob, rowOff, props, scores).
const imageSections = 7

// castagnoli is the CRC32C polynomial table — the checksum every format-v2
// integrity trailer uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrChecksum reports a section whose stored CRC32C does not match its
// bytes: the file was corrupted after it was written. Callers match it with
// errors.Is to fall back to a slower-but-intact source (log replay, the
// original profiles file) instead of serving from a damaged image.
var ErrChecksum = errors.New("codec: section checksum mismatch")

// imageWriter tracks a running CRC32C per section while streaming to the
// buffered writer; end() closes out one section's sum.
type imageWriter struct {
	bw   *bufio.Writer
	cur  uint32
	sums []uint32
}

func (iw *imageWriter) write(p []byte) {
	iw.bw.Write(p)
	iw.cur = crc32.Update(iw.cur, castagnoli, p)
}

func (iw *imageWriter) str(s string) {
	iw.bw.WriteString(s)
	// The []byte conversion stays on the stack for the short label/name
	// strings this path writes (crc32.Update does not retain it).
	iw.cur = crc32.Update(iw.cur, castagnoli, []byte(s))
}

func (iw *imageWriter) end() {
	iw.sums = append(iw.sums, iw.cur)
	iw.cur = 0
}

// WriteRepositoryImage encodes the repository as a format-v2 snapshot image.
func WriteRepositoryImage(w io.Writer, repo *profile.Repository) error {
	labels, names, off, props, scores := repo.RawColumns()
	bw := bufio.NewWriterSize(w, 1<<20)
	bw.WriteString(magic)
	bw.WriteByte(imageVersion)
	bw.WriteByte(tagRepository)

	labelBlobLen := 0
	for _, l := range labels {
		labelBlobLen += len(l)
	}
	nameBlobLen := 0
	for _, n := range names {
		nameBlobLen += len(n)
	}
	if labelBlobLen > math.MaxUint32 || nameBlobLen > math.MaxUint32 || len(labels) > math.MaxUint32 {
		return fmt.Errorf("codec: repository exceeds image format limits")
	}
	writeUvarint(bw, uint64(len(labels)))
	writeUvarint(bw, uint64(labelBlobLen))
	writeUvarint(bw, uint64(len(names)))
	writeUvarint(bw, uint64(nameBlobLen))
	writeUvarint(bw, uint64(len(props)))

	iw := &imageWriter{bw: bw}
	var b4 [4]byte
	var b8 [8]byte
	cum := uint32(0)
	binary.LittleEndian.PutUint32(b4[:], 0)
	iw.write(b4[:])
	for _, l := range labels {
		cum += uint32(len(l))
		binary.LittleEndian.PutUint32(b4[:], cum)
		iw.write(b4[:])
	}
	iw.end()
	for _, l := range labels {
		iw.str(l)
	}
	iw.end()
	cum = 0
	binary.LittleEndian.PutUint32(b4[:], 0)
	iw.write(b4[:])
	for _, n := range names {
		cum += uint32(len(n))
		binary.LittleEndian.PutUint32(b4[:], cum)
		iw.write(b4[:])
	}
	iw.end()
	for _, n := range names {
		iw.str(n)
	}
	iw.end()
	for _, o := range off {
		binary.LittleEndian.PutUint64(b8[:], uint64(o))
		iw.write(b8[:])
	}
	iw.end()
	for _, p := range props {
		binary.LittleEndian.PutUint32(b4[:], uint32(p))
		iw.write(b4[:])
	}
	iw.end()
	for _, s := range scores {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(s))
		iw.write(b8[:])
	}
	iw.end()
	for _, sum := range iw.sums {
		binary.LittleEndian.PutUint32(b4[:], sum)
		bw.Write(b4[:])
	}
	return bw.Flush()
}

// ReadRepositoryImage decodes a format-v2 snapshot image from an in-memory
// byte slice (typically the result of os.ReadFile).
func ReadRepositoryImage(data []byte) (*profile.Repository, error) {
	if len(data) < len(magic)+2 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("codec: bad magic")
	}
	if data[len(magic)] != imageVersion {
		return nil, fmt.Errorf("codec: not a format-v2 image (version %d)", data[len(magic)])
	}
	if data[len(magic)+1] != tagRepository {
		return nil, fmt.Errorf("codec: image section tag %d, want %d", data[len(magic)+1], tagRepository)
	}
	rest := data[len(magic)+2:]
	var hdr [5]uint64
	for i, what := range []string{"label count", "label blob length", "user count", "name blob length", "link count"} {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("codec: reading %s: truncated header", what)
		}
		hdr[i] = v
		rest = rest[n:]
	}
	nLabels, labelBlobLen, nUsers, nameBlobLen, nLinks := hdr[0], hdr[1], hdr[2], hdr[3], hdr[4]

	// Sanity-check the header against the actual payload size before any
	// allocation sized from it. The per-field bound keeps the size sum below
	// overflow for any input that could plausibly match len(rest).
	limit := uint64(len(rest))
	if nLabels > limit || labelBlobLen > limit || nUsers > limit || nameBlobLen > limit || nLinks > limit {
		return nil, fmt.Errorf("codec: image header exceeds file size")
	}
	need := 4*(nLabels+1) + labelBlobLen + 4*(nUsers+1) + nameBlobLen + 8*(nUsers+1) + 4*nLinks + 8*nLinks
	if nLabels > math.MaxUint32 || nUsers > math.MaxUint32 {
		return nil, fmt.Errorf("codec: image header exceeds format limits")
	}
	// Files with a checksum trailer carry 4 extra bytes per section; legacy
	// images carry exactly the declared section bytes and skip verification.
	var sums []uint32
	switch uint64(len(rest)) {
	case need:
	case need + 4*imageSections:
		tail := rest[need:]
		sums = make([]uint32, imageSections)
		for i := range sums {
			sums[i] = binary.LittleEndian.Uint32(tail[4*i:])
		}
		rest = rest[:need]
	default:
		return nil, fmt.Errorf("codec: image declares %d bytes of sections, file carries %d", need, len(rest))
	}

	section := 0
	take := func(n uint64, what string) ([]byte, error) {
		s := rest[:n]
		rest = rest[n:]
		if sums != nil {
			if got := crc32.Checksum(s, castagnoli); got != sums[section] {
				return nil, fmt.Errorf("%w: %s section crc %08x, trailer %08x", ErrChecksum, what, got, sums[section])
			}
		}
		section++
		return s, nil
	}
	var secs [5][]byte
	var err error
	for i, sec := range []struct {
		n    uint64
		what string
	}{
		{4 * (nLabels + 1), "label offset"},
		{labelBlobLen, "label blob"},
		{4 * (nUsers + 1), "name offset"},
		{nameBlobLen, "name blob"},
		{8 * (nUsers + 1), "row offset"},
	} {
		if secs[i], err = take(sec.n, sec.what); err != nil {
			return nil, err
		}
	}
	labels, err := decodeStrings(secs[0], secs[1], "label")
	if err != nil {
		return nil, err
	}
	names, err := decodeStrings(secs[2], secs[3], "name")
	if err != nil {
		return nil, err
	}
	rowOffBytes := secs[4]
	off := make([]int, nUsers+1)
	for i := range off {
		v := binary.LittleEndian.Uint64(rowOffBytes[8*i:])
		if v > nLinks {
			return nil, fmt.Errorf("codec: row offset %d exceeds link count %d", v, nLinks)
		}
		off[i] = int(v)
	}
	propBytes, err := take(4*nLinks, "property")
	if err != nil {
		return nil, err
	}
	props := make([]profile.PropertyID, nLinks)
	for i := range props {
		props[i] = profile.PropertyID(binary.LittleEndian.Uint32(propBytes[4*i:]))
	}
	scoreBytes, err := take(8*nLinks, "score")
	if err != nil {
		return nil, err
	}
	scores := make([]float64, nLinks)
	for i := range scores {
		scores[i] = math.Float64frombits(binary.LittleEndian.Uint64(scoreBytes[8*i:]))
	}
	repo, err := profile.FromColumns(labels, names, off, props, scores)
	if err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	return repo, nil
}

// decodeStrings slices a string table out of its offset section and blob.
// All strings share one backing allocation.
func decodeStrings(offBytes, blobBytes []byte, what string) ([]string, error) {
	n := len(offBytes)/4 - 1
	blob := string(blobBytes)
	out := make([]string, n)
	prev := binary.LittleEndian.Uint32(offBytes)
	if prev != 0 {
		return nil, fmt.Errorf("codec: %s offsets must start at 0", what)
	}
	for i := 0; i < n; i++ {
		next := binary.LittleEndian.Uint32(offBytes[4*(i+1):])
		if next < prev || next > uint32(len(blob)) {
			return nil, fmt.Errorf("codec: %s offset table not monotone", what)
		}
		out[i] = blob[prev:next]
		prev = next
	}
	if int(prev) != len(blob) {
		return nil, fmt.Errorf("codec: %s blob has %d trailing bytes", what, len(blob)-int(prev))
	}
	return out, nil
}

// WriteImageFile writes the v2 snapshot image to path atomically (temp file
// + rename).
func WriteImageFile(path string, repo *profile.Repository) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("codec: %w", err)
	}
	if err := WriteRepositoryImage(f, repo); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("codec: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("codec: %w", err)
	}
	return nil
}

// ReadImageFile loads a v2 snapshot image: one read, one validate. This is
// the restart path — a million-user repository comes up in the time it takes
// to fault the file in.
func ReadImageFile(path string) (*profile.Repository, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	return ReadRepositoryImage(data)
}
