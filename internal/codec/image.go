package codec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"podium/internal/profile"
)

// Format v2: the snapshot image. Where v1 interleaves varints per user —
// forcing a value-by-value decode through the repository's mutation API —
// the v2 image is the columnar repository laid out section by section, so
// loading is one file read, five bulk slice decodes and a validation pass.
// Varints appear only in the fixed-size header; every bulk section is raw
// little-endian.
//
//	magic "PODM" | version 2 | tagRepository
//	header (varints): nLabels, labelBlobLen, nUsers, nameBlobLen, nLinks
//	labelOff  uint32 × (nLabels+1)   label i = labelBlob[labelOff[i]:labelOff[i+1]]
//	labelBlob labelBlobLen bytes
//	nameOff   uint32 × (nUsers+1)
//	nameBlob  nameBlobLen bytes
//	rowOff    uint64 × (nUsers+1)    user u's links = [rowOff[u], rowOff[u+1])
//	props     uint32 × nLinks
//	scores    float64 bits (LE) × nLinks
//
// The reader validates section bounds against the actual file size before
// allocating, then delegates structural validation (monotone offsets, sorted
// rows, in-range scores) to profile.FromColumns — a corrupted image fails
// loudly, never yields a half-loaded repository. Label and name strings are
// sliced out of two blob strings, so a million names cost two allocations,
// not a million.

const imageVersion = 2

// WriteRepositoryImage encodes the repository as a format-v2 snapshot image.
func WriteRepositoryImage(w io.Writer, repo *profile.Repository) error {
	labels, names, off, props, scores := repo.RawColumns()
	bw := bufio.NewWriterSize(w, 1<<20)
	bw.WriteString(magic)
	bw.WriteByte(imageVersion)
	bw.WriteByte(tagRepository)

	labelBlobLen := 0
	for _, l := range labels {
		labelBlobLen += len(l)
	}
	nameBlobLen := 0
	for _, n := range names {
		nameBlobLen += len(n)
	}
	if labelBlobLen > math.MaxUint32 || nameBlobLen > math.MaxUint32 || len(labels) > math.MaxUint32 {
		return fmt.Errorf("codec: repository exceeds image format limits")
	}
	writeUvarint(bw, uint64(len(labels)))
	writeUvarint(bw, uint64(labelBlobLen))
	writeUvarint(bw, uint64(len(names)))
	writeUvarint(bw, uint64(nameBlobLen))
	writeUvarint(bw, uint64(len(props)))

	var b4 [4]byte
	var b8 [8]byte
	cum := uint32(0)
	binary.LittleEndian.PutUint32(b4[:], 0)
	bw.Write(b4[:])
	for _, l := range labels {
		cum += uint32(len(l))
		binary.LittleEndian.PutUint32(b4[:], cum)
		bw.Write(b4[:])
	}
	for _, l := range labels {
		bw.WriteString(l)
	}
	cum = 0
	binary.LittleEndian.PutUint32(b4[:], 0)
	bw.Write(b4[:])
	for _, n := range names {
		cum += uint32(len(n))
		binary.LittleEndian.PutUint32(b4[:], cum)
		bw.Write(b4[:])
	}
	for _, n := range names {
		bw.WriteString(n)
	}
	for _, o := range off {
		binary.LittleEndian.PutUint64(b8[:], uint64(o))
		bw.Write(b8[:])
	}
	for _, p := range props {
		binary.LittleEndian.PutUint32(b4[:], uint32(p))
		bw.Write(b4[:])
	}
	for _, s := range scores {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(s))
		bw.Write(b8[:])
	}
	return bw.Flush()
}

// ReadRepositoryImage decodes a format-v2 snapshot image from an in-memory
// byte slice (typically the result of os.ReadFile).
func ReadRepositoryImage(data []byte) (*profile.Repository, error) {
	if len(data) < len(magic)+2 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("codec: bad magic")
	}
	if data[len(magic)] != imageVersion {
		return nil, fmt.Errorf("codec: not a format-v2 image (version %d)", data[len(magic)])
	}
	if data[len(magic)+1] != tagRepository {
		return nil, fmt.Errorf("codec: image section tag %d, want %d", data[len(magic)+1], tagRepository)
	}
	rest := data[len(magic)+2:]
	var hdr [5]uint64
	for i, what := range []string{"label count", "label blob length", "user count", "name blob length", "link count"} {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("codec: reading %s: truncated header", what)
		}
		hdr[i] = v
		rest = rest[n:]
	}
	nLabels, labelBlobLen, nUsers, nameBlobLen, nLinks := hdr[0], hdr[1], hdr[2], hdr[3], hdr[4]

	// Sanity-check the header against the actual payload size before any
	// allocation sized from it. The per-field bound keeps the size sum below
	// overflow for any input that could plausibly match len(rest).
	limit := uint64(len(rest))
	if nLabels > limit || labelBlobLen > limit || nUsers > limit || nameBlobLen > limit || nLinks > limit {
		return nil, fmt.Errorf("codec: image header exceeds file size")
	}
	need := 4*(nLabels+1) + labelBlobLen + 4*(nUsers+1) + nameBlobLen + 8*(nUsers+1) + 4*nLinks + 8*nLinks
	if nLabels > math.MaxUint32 || nUsers > math.MaxUint32 || need != uint64(len(rest)) {
		return nil, fmt.Errorf("codec: image declares %d bytes of sections, file carries %d", need, len(rest))
	}

	take := func(n uint64) []byte {
		s := rest[:n]
		rest = rest[n:]
		return s
	}
	labels, err := decodeStrings(take(4*(nLabels+1)), take(labelBlobLen), "label")
	if err != nil {
		return nil, err
	}
	names, err := decodeStrings(take(4*(nUsers+1)), take(nameBlobLen), "name")
	if err != nil {
		return nil, err
	}
	rowOffBytes := take(8 * (nUsers + 1))
	off := make([]int, nUsers+1)
	for i := range off {
		v := binary.LittleEndian.Uint64(rowOffBytes[8*i:])
		if v > nLinks {
			return nil, fmt.Errorf("codec: row offset %d exceeds link count %d", v, nLinks)
		}
		off[i] = int(v)
	}
	propBytes := take(4 * nLinks)
	props := make([]profile.PropertyID, nLinks)
	for i := range props {
		props[i] = profile.PropertyID(binary.LittleEndian.Uint32(propBytes[4*i:]))
	}
	scoreBytes := take(8 * nLinks)
	scores := make([]float64, nLinks)
	for i := range scores {
		scores[i] = math.Float64frombits(binary.LittleEndian.Uint64(scoreBytes[8*i:]))
	}
	repo, err := profile.FromColumns(labels, names, off, props, scores)
	if err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	return repo, nil
}

// decodeStrings slices a string table out of its offset section and blob.
// All strings share one backing allocation.
func decodeStrings(offBytes, blobBytes []byte, what string) ([]string, error) {
	n := len(offBytes)/4 - 1
	blob := string(blobBytes)
	out := make([]string, n)
	prev := binary.LittleEndian.Uint32(offBytes)
	if prev != 0 {
		return nil, fmt.Errorf("codec: %s offsets must start at 0", what)
	}
	for i := 0; i < n; i++ {
		next := binary.LittleEndian.Uint32(offBytes[4*(i+1):])
		if next < prev || next > uint32(len(blob)) {
			return nil, fmt.Errorf("codec: %s offset table not monotone", what)
		}
		out[i] = blob[prev:next]
		prev = next
	}
	if int(prev) != len(blob) {
		return nil, fmt.Errorf("codec: %s blob has %d trailing bytes", what, len(blob)-int(prev))
	}
	return out, nil
}

// WriteImageFile writes the v2 snapshot image to path atomically (temp file
// + rename).
func WriteImageFile(path string, repo *profile.Repository) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("codec: %w", err)
	}
	if err := WriteRepositoryImage(f, repo); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("codec: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("codec: %w", err)
	}
	return nil
}

// ReadImageFile loads a v2 snapshot image: one read, one validate. This is
// the restart path — a million-user repository comes up in the time it takes
// to fault the file in.
func ReadImageFile(path string) (*profile.Repository, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("codec: %w", err)
	}
	return ReadRepositoryImage(data)
}
