package profile

import "testing"

func TestCloneCopyOnWrite(t *testing.T) {
	src := PaperExample()
	src.Seal()
	pid, ok := src.Catalog().Lookup(ExAvgMexican)
	if !ok {
		t.Fatal("paper example lost its Mexican-food property")
	}
	origScore, _ := src.Profile(0).Score(pid)

	cp := src.Clone()
	// Before any write the profile data is shared, not copied.
	if cp.Profile(0) != src.Profile(0) {
		t.Fatal("clone copied a profile eagerly")
	}

	// A write to the clone detaches a private copy; the source is untouched.
	cp.MustSetScore(0, ExAvgMexican, 0.123)
	if cp.Profile(0) == src.Profile(0) {
		t.Fatal("write did not detach the shared profile")
	}
	if s, _ := src.Profile(0).Score(pid); s != origScore {
		t.Fatalf("source score changed to %v", s)
	}
	if s, _ := cp.Profile(0).Score(pid); s != 0.123 {
		t.Fatalf("clone score = %v, want 0.123", s)
	}

	// Untouched users keep sharing; repeated writes reuse the detached copy.
	if cp.Profile(1) != src.Profile(1) {
		t.Fatal("untouched profile was copied")
	}
	detached := cp.Profile(0)
	cp.MustSetScore(0, ExAvgMexican, 0.5)
	if cp.Profile(0) != detached {
		t.Fatal("second write cloned again")
	}

	// New users belong to the clone alone.
	u := cp.AddUser("Frank")
	cp.MustSetScore(u, ExAvgMexican, 0.9)
	if src.NumUsers() != 5 || cp.NumUsers() != 6 {
		t.Fatalf("users: src %d, clone %d", src.NumUsers(), cp.NumUsers())
	}

	// The catalog diverges independently too.
	cp.MustSetScore(u, "brand new prop", 0.4)
	if _, ok := src.Catalog().Lookup("brand new prop"); ok {
		t.Fatal("clone's new property leaked into the source catalog")
	}
}

func TestCloneOfCloneChains(t *testing.T) {
	src := PaperExample()
	src.Seal()
	pid, _ := src.Catalog().Lookup(ExLivesInTokyo)

	// Epoch chain: each generation clones the previous and mutates one user,
	// as the server's writer does batch after batch.
	gen := src
	for i := 0; i < 4; i++ {
		gen.Seal()
		next := gen.Clone()
		next.MustSetScore(0, ExLivesInTokyo, float64(i+1)/10)
		gen = next
	}
	if s, _ := gen.Profile(0).Score(pid); s != 0.4 {
		t.Fatalf("final epoch score = %v, want 0.4", s)
	}
	if s, _ := src.Profile(0).Score(pid); s != 1 {
		t.Fatalf("first epoch score = %v, want the original 1", s)
	}
}
