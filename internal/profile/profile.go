// Package profile implements Podium's user-profile model (Section 3.1 of the
// paper): a population of users, each carrying a sparse set of properties
// with scores normalized to [0,1]. Property labels are interned into dense
// integer IDs so that the grouping and selection machinery can run on
// slice-indexed hot loops, and profiles serialize to/from the JSON format the
// prototype system consumes.
package profile

import (
	"fmt"
	"math"
	"sort"
)

// UserID identifies a user by its dense index within a Repository.
type UserID int

// PropertyID identifies an interned property label.
type PropertyID int

// Catalog interns property labels, assigning each distinct label a dense
// PropertyID. Labels are kept human-readable because they are the raw
// material for explanations (Section 5).
type Catalog struct {
	labels []string
	index  map[string]PropertyID
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{index: make(map[string]PropertyID)}
}

// Intern returns the ID for label, assigning a fresh one on first sight.
func (c *Catalog) Intern(label string) PropertyID {
	if id, ok := c.index[label]; ok {
		return id
	}
	id := PropertyID(len(c.labels))
	c.labels = append(c.labels, label)
	c.index[label] = id
	return id
}

// Lookup returns the ID for label if it has been interned.
func (c *Catalog) Lookup(label string) (PropertyID, bool) {
	id, ok := c.index[label]
	return id, ok
}

// Label returns the label for id. It panics on an unknown ID, which always
// indicates a cross-repository mixup.
func (c *Catalog) Label(id PropertyID) string {
	if id < 0 || int(id) >= len(c.labels) {
		panic(fmt.Sprintf("profile: unknown property id %d", id))
	}
	return c.labels[id]
}

// Len returns the number of interned labels.
func (c *Catalog) Len() int { return len(c.labels) }

// Labels returns a copy of all interned labels in ID order.
func (c *Catalog) Labels() []string {
	out := make([]string, len(c.labels))
	copy(out, c.labels)
	return out
}

// Profile is one user's tuple D_u = ⟨P_u, S_u⟩: the set of known properties
// and their scores. It is stored as parallel slices sorted by PropertyID.
// Absent properties follow the open-world assumption — they are unknown, not
// zero.
type Profile struct {
	props  []PropertyID
	scores []float64
	dirty  bool // appended but not yet sorted/deduplicated
}

// Set records (or overwrites) the score for a property. Scores must be
// finite; the repository validates the [0,1] range before calling Set.
func (p *Profile) Set(id PropertyID, score float64) {
	p.props = append(p.props, id)
	p.scores = append(p.scores, score)
	p.dirty = true
}

func (p *Profile) ensureSorted() {
	if !p.dirty {
		return
	}
	type entry struct {
		id    PropertyID
		score float64
		seq   int
	}
	entries := make([]entry, len(p.props))
	for i := range p.props {
		entries[i] = entry{p.props[i], p.scores[i], i}
	}
	// Stable order by ID then insertion sequence, so that for duplicate IDs
	// the last write wins deterministically.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].id != entries[j].id {
			return entries[i].id < entries[j].id
		}
		return entries[i].seq < entries[j].seq
	})
	p.props = p.props[:0]
	p.scores = p.scores[:0]
	for i, e := range entries {
		if i+1 < len(entries) && entries[i+1].id == e.id {
			continue // superseded by a later write
		}
		p.props = append(p.props, e.id)
		p.scores = append(p.scores, e.score)
	}
	p.dirty = false
}

// Score returns the score for a property and whether it is known.
func (p *Profile) Score(id PropertyID) (float64, bool) {
	p.ensureSorted()
	i := sort.Search(len(p.props), func(i int) bool { return p.props[i] >= id })
	if i < len(p.props) && p.props[i] == id {
		return p.scores[i], true
	}
	return 0, false
}

// Has reports whether the property is known for this profile.
func (p *Profile) Has(id PropertyID) bool {
	_, ok := p.Score(id)
	return ok
}

// Len returns the number of known properties (|P_u|).
func (p *Profile) Len() int {
	p.ensureSorted()
	return len(p.props)
}

// Each calls fn for every known (property, score) pair in PropertyID order.
func (p *Profile) Each(fn func(PropertyID, float64)) {
	p.ensureSorted()
	for i, id := range p.props {
		fn(id, p.scores[i])
	}
}

// Properties returns the sorted property IDs. The returned slice is shared;
// callers must not modify it.
func (p *Profile) Properties() []PropertyID {
	p.ensureSorted()
	return p.props
}

// clone returns a private deep copy of the profile, sorted.
func (p *Profile) clone() *Profile {
	p.ensureSorted()
	return &Profile{
		props:  append([]PropertyID(nil), p.props...),
		scores: append([]float64(nil), p.scores...),
	}
}

// Repository holds the population 𝒰: user names, their profiles, and the
// shared property catalog.
type Repository struct {
	catalog  *Catalog
	names    []string
	profiles []*Profile

	// Copy-on-write bookkeeping for Clone: profiles with index < sharedBelow
	// are aliased by the clone's source (and possibly by published snapshots
	// reading them concurrently) until detached. owned records the ones this
	// repository has already detached. Zero values describe an ordinary,
	// fully-owned repository.
	sharedBelow int
	owned       map[int]bool
}

// NewRepository returns an empty repository with a fresh catalog.
func NewRepository() *Repository {
	return &Repository{catalog: NewCatalog()}
}

// AddUser appends a user and returns its ID. Names are display-only and need
// not be unique.
func (r *Repository) AddUser(name string) UserID {
	r.names = append(r.names, name)
	r.profiles = append(r.profiles, &Profile{})
	return UserID(len(r.names) - 1)
}

// SetScore records a property score for a user, interning the label. It
// returns an error when the score is outside [0,1] or not finite, or when
// the user ID is unknown.
func (r *Repository) SetScore(u UserID, label string, score float64) error {
	if int(u) < 0 || int(u) >= len(r.profiles) {
		return fmt.Errorf("profile: unknown user %d", u)
	}
	if math.IsNaN(score) || score < 0 || score > 1 {
		return fmt.Errorf("profile: score %v for %q outside [0,1]", score, label)
	}
	r.mutableProfile(int(u)).Set(r.catalog.Intern(label), score)
	return nil
}

// MustSetScore is SetScore for construction-time code where a violation is a
// programming error.
func (r *Repository) MustSetScore(u UserID, label string, score float64) {
	if err := r.SetScore(u, label, score); err != nil {
		panic(err)
	}
}

// SetScoreID records a score for an already interned property.
func (r *Repository) SetScoreID(u UserID, id PropertyID, score float64) error {
	if int(u) < 0 || int(u) >= len(r.profiles) {
		return fmt.Errorf("profile: unknown user %d", u)
	}
	if id < 0 || int(id) >= r.catalog.Len() {
		return fmt.Errorf("profile: unknown property id %d", id)
	}
	if math.IsNaN(score) || score < 0 || score > 1 {
		return fmt.Errorf("profile: score %v outside [0,1]", score)
	}
	r.mutableProfile(int(u)).Set(id, score)
	return nil
}

// mutableProfile returns the profile of u for writing, detaching it from any
// clone source first so repositories sharing it never observe the mutation.
func (r *Repository) mutableProfile(u int) *Profile {
	if u < r.sharedBelow && !r.owned[u] {
		r.profiles[u] = r.profiles[u].clone()
		if r.owned == nil {
			r.owned = make(map[int]bool)
		}
		r.owned[u] = true
	}
	return r.profiles[u]
}

// NumUsers returns |𝒰|.
func (r *Repository) NumUsers() int { return len(r.profiles) }

// NumProperties returns the number of distinct interned properties.
func (r *Repository) NumProperties() int { return r.catalog.Len() }

// UserName returns the display name of a user.
func (r *Repository) UserName(u UserID) string {
	if int(u) < 0 || int(u) >= len(r.names) {
		panic(fmt.Sprintf("profile: unknown user %d", u))
	}
	return r.names[u]
}

// Profile returns the (mutable) profile of a user.
func (r *Repository) Profile(u UserID) *Profile {
	if int(u) < 0 || int(u) >= len(r.profiles) {
		panic(fmt.Sprintf("profile: unknown user %d", u))
	}
	return r.profiles[u]
}

// Catalog exposes the shared property catalog.
func (r *Repository) Catalog() *Catalog { return r.catalog }

// PropertyCount returns |p| — the number of users whose profile includes the
// property (Section 3.1).
func (r *Repository) PropertyCount(id PropertyID) int {
	n := 0
	for _, p := range r.profiles {
		if p.Has(id) {
			n++
		}
	}
	return n
}

// PropertyValues collects, in user order, the (user, score) pairs of every
// user that knows the property. The grouping module uses this to bucket each
// property's score distribution.
func (r *Repository) PropertyValues(id PropertyID) (users []UserID, scores []float64) {
	for u, p := range r.profiles {
		if s, ok := p.Score(id); ok {
			users = append(users, UserID(u))
			scores = append(scores, s)
		}
	}
	return users, scores
}

// MaxProfileSize returns max_u |P_u| — a factor in the greedy algorithm's
// complexity bound (Prop. 4.4).
func (r *Repository) MaxProfileSize() int {
	m := 0
	for _, p := range r.profiles {
		if p.Len() > m {
			m = p.Len()
		}
	}
	return m
}

// Clone returns a copy-on-write copy of the repository: the name/profile
// slice headers and the catalog are duplicated eagerly (both cheap), while
// the per-user profile data stays shared until the clone's first write to
// that user detaches a private copy. The source must be Sealed (as published
// snapshots are), so shared profiles are never mutated — concurrent readers
// of the source remain safe while the clone diverges. This is the substrate
// of the server's epoch publication: the single writer clones the current
// snapshot's repository, applies a mutation batch, and publishes the clone.
func (r *Repository) Clone() *Repository {
	cat := &Catalog{
		labels: append([]string(nil), r.catalog.labels...),
		index:  make(map[string]PropertyID, len(r.catalog.index)),
	}
	for label, id := range r.catalog.index {
		cat.index[label] = id
	}
	return &Repository{
		catalog:     cat,
		names:       append([]string(nil), r.names...),
		profiles:    append([]*Profile(nil), r.profiles...),
		sharedBelow: len(r.profiles),
	}
}

// Seal sorts every profile's backing store in place so that subsequent reads
// (Score, Each, …) are pure and safe for concurrent use. Publishing a
// repository to concurrent readers without sealing would race: the first
// Score call on a dirty profile rewrites it. Sealing an already sealed
// repository is a cheap no-op per profile.
func (r *Repository) Seal() {
	for _, p := range r.profiles {
		p.ensureSorted()
	}
}

// Subset builds a new repository containing only the given users, preserving
// their order and sharing the catalog labels (re-interned). Customization
// uses it to materialize the refined population 𝒰′.
func (r *Repository) Subset(ids []UserID) (*Repository, []UserID) {
	sub := NewRepository()
	orig := make([]UserID, 0, len(ids))
	for _, u := range ids {
		nu := sub.AddUser(r.UserName(u))
		r.Profile(u).Each(func(id PropertyID, s float64) {
			sub.profiles[nu].Set(sub.catalog.Intern(r.catalog.Label(id)), s)
		})
		orig = append(orig, u)
	}
	return sub, orig
}
