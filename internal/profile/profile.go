// Package profile implements Podium's user-profile model (Section 3.1 of the
// paper): a population of users, each carrying a sparse set of properties
// with scores normalized to [0,1]. Property labels are interned into dense
// integer IDs so that the grouping and selection machinery can run on
// slice-indexed hot loops, and profiles serialize to/from the JSON format the
// prototype system consumes.
//
// Storage is columnar: a sealed repository keeps every profile in three flat
// arrays — per-user offsets, property IDs and scores (columns.go) — so the
// read path walks contiguous memory with no per-user allocations or pointer
// chasing. Mutations never touch the columns; they land in a small per-user
// overlay, which is also the copy-on-write substrate for the server's epoch
// clones: Clone is O(catalog), not O(users), because the columnar base, the
// name table and the overlay map are all shared until first write.
package profile

import (
	"fmt"
	"math"
	"sort"
)

// UserID identifies a user by its dense index within a Repository.
type UserID int

// PropertyID identifies an interned property label.
type PropertyID int

// Catalog interns property labels, assigning each distinct label a dense
// PropertyID. Labels are kept human-readable because they are the raw
// material for explanations (Section 5).
type Catalog struct {
	labels []string
	index  map[string]PropertyID
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{index: make(map[string]PropertyID)}
}

// Intern returns the ID for label, assigning a fresh one on first sight.
func (c *Catalog) Intern(label string) PropertyID {
	if id, ok := c.index[label]; ok {
		return id
	}
	id := PropertyID(len(c.labels))
	c.labels = append(c.labels, label)
	c.index[label] = id
	return id
}

// Lookup returns the ID for label if it has been interned.
func (c *Catalog) Lookup(label string) (PropertyID, bool) {
	id, ok := c.index[label]
	return id, ok
}

// Label returns the label for id. It panics on an unknown ID, which always
// indicates a cross-repository mixup.
func (c *Catalog) Label(id PropertyID) string {
	if id < 0 || int(id) >= len(c.labels) {
		panic(fmt.Sprintf("profile: unknown property id %d", id))
	}
	return c.labels[id]
}

// Len returns the number of interned labels.
func (c *Catalog) Len() int { return len(c.labels) }

// Labels returns a copy of all interned labels in ID order.
func (c *Catalog) Labels() []string {
	out := make([]string, len(c.labels))
	copy(out, c.labels)
	return out
}

// clone returns an independent copy of the catalog.
func (c *Catalog) clone() *Catalog {
	cp := &Catalog{
		labels: append([]string(nil), c.labels...),
		index:  make(map[string]PropertyID, len(c.index)),
	}
	for label, id := range c.index {
		cp.index[label] = id
	}
	return cp
}

// Profile is one user's tuple D_u = ⟨P_u, S_u⟩: the set of known properties
// and their scores. It is stored as parallel slices sorted by PropertyID.
// Absent properties follow the open-world assumption — they are unknown, not
// zero.
//
// Inside a Repository, profiles of untouched users are views over the
// columnar base (the slices alias the shared columns with len == cap, so any
// append copies out); mutated users get a private overlay Profile.
type Profile struct {
	props  []PropertyID
	scores []float64
	dirty  bool // appended but not yet sorted/deduplicated
}

// Set records (or overwrites) the score for a property. Scores must be
// finite; the repository validates the [0,1] range before calling Set.
func (p *Profile) Set(id PropertyID, score float64) {
	p.props = append(p.props, id)
	p.scores = append(p.scores, score)
	p.dirty = true
}

func (p *Profile) ensureSorted() {
	if !p.dirty {
		return
	}
	type entry struct {
		id    PropertyID
		score float64
		seq   int
	}
	entries := make([]entry, len(p.props))
	for i := range p.props {
		entries[i] = entry{p.props[i], p.scores[i], i}
	}
	// Stable order by ID then insertion sequence, so that for duplicate IDs
	// the last write wins deterministically.
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].id != entries[j].id {
			return entries[i].id < entries[j].id
		}
		return entries[i].seq < entries[j].seq
	})
	p.props = p.props[:0]
	p.scores = p.scores[:0]
	for i, e := range entries {
		if i+1 < len(entries) && entries[i+1].id == e.id {
			continue // superseded by a later write
		}
		p.props = append(p.props, e.id)
		p.scores = append(p.scores, e.score)
	}
	p.dirty = false
}

// Score returns the score for a property and whether it is known.
func (p *Profile) Score(id PropertyID) (float64, bool) {
	p.ensureSorted()
	i := sort.Search(len(p.props), func(i int) bool { return p.props[i] >= id })
	if i < len(p.props) && p.props[i] == id {
		return p.scores[i], true
	}
	return 0, false
}

// Has reports whether the property is known for this profile.
func (p *Profile) Has(id PropertyID) bool {
	_, ok := p.Score(id)
	return ok
}

// Len returns the number of known properties (|P_u|).
func (p *Profile) Len() int {
	p.ensureSorted()
	return len(p.props)
}

// Each calls fn for every known (property, score) pair in PropertyID order.
func (p *Profile) Each(fn func(PropertyID, float64)) {
	p.ensureSorted()
	for i, id := range p.props {
		fn(id, p.scores[i])
	}
}

// Properties returns the sorted property IDs. The returned slice is shared;
// callers must not modify it.
func (p *Profile) Properties() []PropertyID {
	p.ensureSorted()
	return p.props
}

// clone returns a private deep copy of the profile, sorted.
func (p *Profile) clone() *Profile {
	p.ensureSorted()
	return &Profile{
		props:  append([]PropertyID(nil), p.props...),
		scores: append([]float64(nil), p.scores...),
	}
}

// Repository holds the population 𝒰: user names, their profiles, and the
// shared property catalog.
//
// Profile data lives in two layers. The columnar base (columns.go) holds the
// sealed bulk — flat offset/property/score arrays covering users
// [0, base.users()) — and is immutable for the repository's whole lifetime,
// so clones and concurrent readers share it freely. The overlay map `over`
// holds the exceptions: users appended after the base was built and users
// whose row was rewritten since. A repository built purely through
// AddUser/SetScore has no base at all (every row is overlay), exactly the
// pre-columnar behavior; a repository loaded from a snapshot image or a
// Builder is pure base until the first write.
type Repository struct {
	catalog *Catalog
	names   []string
	base    *columns         // immutable columnar core; nil when empty
	over    map[int]*Profile // overlay rows: appended or rewritten users
	nUsers  int

	// Copy-on-write bookkeeping. Clone shares names and the overlay map with
	// its source (the base is always shared — it is immutable): namesShared
	// forces a copy before the next AddUser, overShared before the next
	// overlay insert, and owned records the overlay rows this repository has
	// already detached for in-place mutation. The clone's source must be
	// sealed and never mutated again (published snapshots are), matching the
	// server's epoch-publication contract.
	namesShared bool
	overShared  bool
	owned       map[int]bool
}

// NewRepository returns an empty repository with a fresh catalog.
func NewRepository() *Repository {
	return &Repository{catalog: NewCatalog()}
}

// baseUsers returns the number of users covered by the columnar base.
func (r *Repository) baseUsers() int {
	if r.base == nil {
		return 0
	}
	return r.base.users()
}

// AddUser appends a user and returns its ID. Names are display-only and need
// not be unique.
func (r *Repository) AddUser(name string) UserID {
	if r.namesShared {
		r.names = append([]string(nil), r.names...)
		r.namesShared = false
	}
	r.names = append(r.names, name)
	u := r.nUsers
	r.nUsers++
	r.ownOver()
	r.over[u] = &Profile{}
	r.setOwned(u)
	return UserID(u)
}

// SetScore records a property score for a user, interning the label. It
// returns an error when the score is outside [0,1] or not finite, or when
// the user ID is unknown.
func (r *Repository) SetScore(u UserID, label string, score float64) error {
	if int(u) < 0 || int(u) >= r.nUsers {
		return fmt.Errorf("profile: unknown user %d", u)
	}
	if math.IsNaN(score) || score < 0 || score > 1 {
		return fmt.Errorf("profile: score %v for %q outside [0,1]", score, label)
	}
	r.mutableProfile(int(u)).Set(r.catalog.Intern(label), score)
	return nil
}

// MustSetScore is SetScore for construction-time code where a violation is a
// programming error.
func (r *Repository) MustSetScore(u UserID, label string, score float64) {
	if err := r.SetScore(u, label, score); err != nil {
		panic(err)
	}
}

// SetScoreID records a score for an already interned property.
func (r *Repository) SetScoreID(u UserID, id PropertyID, score float64) error {
	if int(u) < 0 || int(u) >= r.nUsers {
		return fmt.Errorf("profile: unknown user %d", u)
	}
	if id < 0 || int(id) >= r.catalog.Len() {
		return fmt.Errorf("profile: unknown property id %d", id)
	}
	if math.IsNaN(score) || score < 0 || score > 1 {
		return fmt.Errorf("profile: score %v outside [0,1]", score)
	}
	r.mutableProfile(int(u)).Set(id, score)
	return nil
}

// ownOver makes the overlay map privately writable: it allocates it on first
// use and detaches it from a clone's source before the first insert. The
// rows inside remain shared until mutableProfile detaches them one by one.
func (r *Repository) ownOver() {
	if r.over == nil {
		r.over = make(map[int]*Profile)
		return
	}
	if !r.overShared {
		return
	}
	m := make(map[int]*Profile, len(r.over)+1)
	for u, p := range r.over {
		m[u] = p
	}
	r.over = m
	r.overShared = false
	r.owned = nil // the rows are still the source's; re-detach on write
}

func (r *Repository) setOwned(u int) {
	if r.owned == nil {
		r.owned = make(map[int]bool)
	}
	r.owned[u] = true
}

// mutableProfile returns the profile of u for writing, materializing a
// private overlay row — copied from the shared columnar base or from a
// clone-shared overlay row — so repositories sharing the data never observe
// the mutation.
func (r *Repository) mutableProfile(u int) *Profile {
	r.ownOver()
	if p, ok := r.over[u]; ok {
		if r.owned[u] {
			return p
		}
		np := p.clone()
		r.over[u] = np
		r.setOwned(u)
		return np
	}
	props, scores := r.base.row(u)
	np := &Profile{
		props:  append(make([]PropertyID, 0, len(props)+1), props...),
		scores: append(make([]float64, 0, len(scores)+1), scores...),
	}
	r.over[u] = np
	r.setOwned(u)
	return np
}

// NumUsers returns |𝒰|.
func (r *Repository) NumUsers() int { return r.nUsers }

// NumProperties returns the number of distinct interned properties.
func (r *Repository) NumProperties() int { return r.catalog.Len() }

// UserName returns the display name of a user.
func (r *Repository) UserName(u UserID) string {
	if int(u) < 0 || int(u) >= r.nUsers {
		panic(fmt.Sprintf("profile: unknown user %d", u))
	}
	return r.names[u]
}

// Profile returns the profile of a user. For users with overlay rows this is
// the live row (mutations through the repository are visible to it); for
// users still backed by the columnar base it is a view whose slices alias
// the shared columns — reads are zero-copy, and because the slices are
// capacity-clamped any write through the view copies out rather than
// touching shared memory. Mutate through SetScore/SetScoreID, not through a
// retained view.
func (r *Repository) Profile(u UserID) *Profile {
	if int(u) < 0 || int(u) >= r.nUsers {
		panic(fmt.Sprintf("profile: unknown user %d", u))
	}
	if p, ok := r.over[int(u)]; ok {
		return p
	}
	props, scores := r.base.row(int(u))
	return &Profile{props: props, scores: scores}
}

// Catalog exposes the shared property catalog.
func (r *Repository) Catalog() *Catalog { return r.catalog }

// PropertyCount returns |p| — the number of users whose profile includes the
// property (Section 3.1).
func (r *Repository) PropertyCount(id PropertyID) int {
	n := 0
	r.EachRow(func(_ UserID, props []PropertyID, _ []float64) {
		if hasSorted(props, id) {
			n++
		}
	})
	return n
}

// PropertyValues collects, in user order, the (user, score) pairs of every
// user that knows the property. The grouping module uses this to bucket each
// property's score distribution.
func (r *Repository) PropertyValues(id PropertyID) (users []UserID, scores []float64) {
	r.EachRow(func(u UserID, props []PropertyID, ss []float64) {
		if i := searchSorted(props, id); i >= 0 {
			users = append(users, u)
			scores = append(scores, ss[i])
		}
	})
	return users, scores
}

// MaxProfileSize returns max_u |P_u| — a factor in the greedy algorithm's
// complexity bound (Prop. 4.4).
func (r *Repository) MaxProfileSize() int {
	m := 0
	r.EachRow(func(_ UserID, props []PropertyID, _ []float64) {
		if len(props) > m {
			m = len(props)
		}
	})
	return m
}

// Clone returns a copy-on-write copy of the repository. Only the catalog is
// duplicated eagerly (O(properties)); the columnar base, the name table and
// the overlay map are shared, so cloning a million-user repository costs the
// same as cloning a ten-user one. The source must be Sealed and never
// mutated again (as published snapshots are) — the clone detaches each piece
// it writes to (names before an append, the overlay map before an insert,
// individual rows before a score write), so concurrent readers of the source
// remain safe while the clone diverges. This is the substrate of the
// server's epoch publication: the single writer clones the current
// snapshot's repository, applies a mutation batch, and publishes the clone.
func (r *Repository) Clone() *Repository {
	return &Repository{
		catalog:     r.catalog.clone(),
		names:       r.names,
		base:        r.base,
		over:        r.over,
		nUsers:      r.nUsers,
		namesShared: true,
		overShared:  r.over != nil,
	}
}

// Seal sorts every overlay row's backing store in place so that subsequent
// reads (Score, Each, …) are pure and safe for concurrent use. Publishing a
// repository to concurrent readers without sealing would race: the first
// Score call on a dirty profile rewrites it. Columnar base rows are sorted
// by construction, so sealing costs O(rows touched since the last Seal), not
// O(users).
func (r *Repository) Seal() {
	for _, p := range r.over {
		p.ensureSorted()
	}
}

// Subset builds a new repository containing only the given users, preserving
// their order and sharing the catalog labels (re-interned). Customization
// uses it to materialize the refined population 𝒰′.
func (r *Repository) Subset(ids []UserID) (*Repository, []UserID) {
	sub := NewRepository()
	orig := make([]UserID, 0, len(ids))
	for _, u := range ids {
		nu := sub.AddUser(r.UserName(u))
		dst := sub.mutableProfile(int(nu))
		r.EachRowOf(u, func(id PropertyID, s float64) {
			dst.Set(sub.catalog.Intern(r.catalog.Label(id)), s)
		})
		orig = append(orig, u)
	}
	return sub, orig
}

// hasSorted reports membership of id in an ascending property row.
func hasSorted(props []PropertyID, id PropertyID) bool {
	return searchSorted(props, id) >= 0
}

// searchSorted returns the index of id in an ascending property row, or -1.
func searchSorted(props []PropertyID, id PropertyID) int {
	i := sort.Search(len(props), func(i int) bool { return props[i] >= id })
	if i < len(props) && props[i] == id {
		return i
	}
	return -1
}
