package profile

// Property labels of the paper's running example (Table 2). Exported so that
// golden tests, examples and documentation all refer to the same strings.
const (
	ExLivesInTokyo  = "livesIn Tokyo"
	ExLivesInNYC    = "livesIn NYC"
	ExLivesInBali   = "livesIn Bali"
	ExLivesInParis  = "livesIn Paris"
	ExAgeGroup5064  = "ageGroup 50-64"
	ExAvgMexican    = "avgRating Mexican"
	ExFreqMexican   = "visitFreq Mexican"
	ExAvgCheapEats  = "avgRating CheapEats"
	ExFreqCheapEats = "visitFreq CheapEats"
)

// PaperExample builds the five-user repository of Table 2 in the paper
// (Alice, Bob, Carol, David, Eve). It is the fixture behind the golden tests
// for Examples 3.8, 4.3, 5.2 and 6.4.
func PaperExample() *Repository {
	r := NewRepository()
	alice := r.AddUser("Alice")
	bob := r.AddUser("Bob")
	carol := r.AddUser("Carol")
	david := r.AddUser("David")
	eve := r.AddUser("Eve")

	r.MustSetScore(alice, ExLivesInTokyo, 1)
	r.MustSetScore(alice, ExAgeGroup5064, 1)
	r.MustSetScore(alice, ExAvgMexican, 0.95)
	r.MustSetScore(alice, ExFreqMexican, 0.8)
	r.MustSetScore(alice, ExAvgCheapEats, 0.1)
	r.MustSetScore(alice, ExFreqCheapEats, 0.6)

	r.MustSetScore(bob, ExLivesInNYC, 1)
	r.MustSetScore(bob, ExAvgMexican, 0.3)
	r.MustSetScore(bob, ExFreqMexican, 0.25)
	r.MustSetScore(bob, ExAvgCheapEats, 0.9)
	r.MustSetScore(bob, ExFreqCheapEats, 0.85)

	r.MustSetScore(carol, ExLivesInBali, 1)
	r.MustSetScore(carol, ExAgeGroup5064, 1)
	r.MustSetScore(carol, ExAvgCheapEats, 0.45)
	r.MustSetScore(carol, ExFreqCheapEats, 0.2)

	r.MustSetScore(david, ExLivesInTokyo, 1)
	r.MustSetScore(david, ExAvgMexican, 0.75)
	r.MustSetScore(david, ExFreqMexican, 0.6)

	r.MustSetScore(eve, ExLivesInParis, 1)
	r.MustSetScore(eve, ExAvgMexican, 0.8)
	r.MustSetScore(eve, ExFreqMexican, 0.45)
	r.MustSetScore(eve, ExAvgCheapEats, 0.6)
	r.MustSetScore(eve, ExFreqCheapEats, 0.3)

	return r
}
