package profile

import (
	"fmt"
	"math"
	"sort"
)

// Builder constructs a columnar Repository row by row in streaming fashion:
// callers announce each user with AddUser and append that user's properties
// before the next AddUser. Memory is bounded by the final columnar arrays
// plus one in-flight row — no per-user Profile structs or maps are ever
// materialized, which is what lets the synthetic generator emit millions of
// users without holding intermediate representations.
//
// Rows need not arrive sorted or duplicate-free: each row is sorted and
// last-write-wins deduplicated in place when the next user starts, exactly
// matching Repository.SetScore semantics.
type Builder struct {
	catalog  *Catalog
	names    []string
	c        columns
	rowStart int  // start of the in-flight row in c.props
	rowOpen  bool // an AddUser has happened since the last seal
}

// NewBuilder returns an empty builder with a fresh catalog.
func NewBuilder() *Builder {
	b := &Builder{catalog: NewCatalog()}
	b.c.off = []int{0}
	return b
}

// Catalog exposes the builder's catalog so callers can intern labels up
// front and append by PropertyID on the hot path.
func (b *Builder) Catalog() *Catalog { return b.catalog }

// Intern interns a property label, returning its dense ID.
func (b *Builder) Intern(label string) PropertyID { return b.catalog.Intern(label) }

// AddUser starts the next user's row and returns its ID. The previous row is
// sealed (sorted + deduplicated) at this point.
func (b *Builder) AddUser(name string) UserID {
	b.sealRow()
	b.names = append(b.names, name)
	b.rowOpen = true
	return UserID(len(b.names) - 1)
}

// Add appends a property score to the current user's row. The property must
// already be interned and the score finite in [0,1].
func (b *Builder) Add(id PropertyID, score float64) error {
	if !b.rowOpen {
		return fmt.Errorf("profile: Builder.Add before AddUser")
	}
	if id < 0 || int(id) >= b.catalog.Len() {
		return fmt.Errorf("profile: unknown property id %d", id)
	}
	if math.IsNaN(score) || score < 0 || score > 1 {
		return fmt.Errorf("profile: score %v outside [0,1]", score)
	}
	b.c.props = append(b.c.props, id)
	b.c.scores = append(b.c.scores, score)
	return nil
}

// MustAdd is Add for construction-time code where a violation is a
// programming error.
func (b *Builder) MustAdd(id PropertyID, score float64) {
	if err := b.Add(id, score); err != nil {
		panic(err)
	}
}

// AddLabeled interns the label and appends its score to the current row.
func (b *Builder) AddLabeled(label string, score float64) error {
	if !b.rowOpen {
		return fmt.Errorf("profile: Builder.AddLabeled before AddUser")
	}
	return b.Add(b.catalog.Intern(label), score)
}

// sealRow sorts the in-flight row by property ID, resolves duplicate IDs
// last-write-wins, and records the row boundary.
func (b *Builder) sealRow() {
	if !b.rowOpen {
		return
	}
	b.rowOpen = false
	lo := b.rowStart
	row := b.c.props[lo:]
	if !sort.SliceIsSorted(row, func(i, j int) bool { return row[i] < row[j] }) {
		scores := b.c.scores[lo:]
		seq := make([]int, len(row))
		for i := range seq {
			seq[i] = i
		}
		sort.SliceStable(seq, func(i, j int) bool { return row[seq[i]] < row[seq[j]] })
		sp := make([]PropertyID, len(row))
		ss := make([]float64, len(row))
		for i, s := range seq {
			sp[i], ss[i] = row[s], scores[s]
		}
		copy(row, sp)
		copy(scores, ss)
	}
	// Deduplicate in place: for equal IDs the stable sort keeps insertion
	// order, so the last occurrence wins.
	w := lo
	for i := lo; i < len(b.c.props); i++ {
		if i+1 < len(b.c.props) && b.c.props[i+1] == b.c.props[i] {
			continue
		}
		b.c.props[w] = b.c.props[i]
		b.c.scores[w] = b.c.scores[i]
		w++
	}
	b.c.props = b.c.props[:w]
	b.c.scores = b.c.scores[:w]
	b.c.off = append(b.c.off, w)
	b.rowStart = w
}

// Build seals the final row and returns the columnar repository. The builder
// must not be used afterwards.
func (b *Builder) Build() *Repository {
	b.sealRow()
	c := b.c
	repo := &Repository{
		catalog: b.catalog,
		names:   b.names,
		base:    &columns{off: c.off, props: c.props, scores: c.scores},
		nUsers:  len(b.names),
	}
	b.catalog, b.names = nil, nil
	b.c = columns{}
	return repo
}
