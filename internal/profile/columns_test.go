package profile

import (
	"bytes"
	"math/rand"
	"testing"
)

func randomPopulation(seed int64, users int) ([][]string, [][]float64) {
	rng := rand.New(rand.NewSource(seed))
	labels := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	props := make([][]string, users)
	scores := make([][]float64, users)
	for u := range props {
		n := rng.Intn(len(labels) + 1)
		for i := 0; i < n; i++ {
			props[u] = append(props[u], labels[rng.Intn(len(labels))])
			scores[u] = append(scores[u], float64(rng.Intn(101))/100)
		}
	}
	return props, scores
}

func TestBuilderMatchesRepository(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		props, scores := randomPopulation(seed, 30)

		repo := NewRepository()
		for u := range props {
			id := repo.AddUser("u")
			for i, l := range props[u] {
				repo.MustSetScore(id, l, scores[u][i])
			}
		}
		repo.Seal()

		b := NewBuilder()
		for u := range props {
			b.AddUser("u")
			for i, l := range props[u] {
				if err := b.AddLabeled(l, scores[u][i]); err != nil {
					t.Fatal(err)
				}
			}
		}
		built := b.Build()

		var w1, w2 bytes.Buffer
		if err := repo.WriteJSON(&w1); err != nil {
			t.Fatal(err)
		}
		if err := built.WriteJSON(&w2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
			t.Fatalf("seed %d: builder and repository disagree:\n%s\nvs\n%s", seed, w1.String(), w2.String())
		}
	}
}

func TestBuilderLastWriteWins(t *testing.T) {
	b := NewBuilder()
	u := b.AddUser("alice")
	b.MustAdd(b.Intern("x"), 0.2)
	b.MustAdd(b.Intern("y"), 0.8)
	b.MustAdd(b.Intern("x"), 0.7) // overwrites
	repo := b.Build()
	p := repo.Profile(u)
	if p.Len() != 2 {
		t.Fatalf("len = %d, want 2", p.Len())
	}
	id, _ := repo.Catalog().Lookup("x")
	if s, _ := p.Score(id); s != 0.7 {
		t.Fatalf("x = %v, want last write 0.7", s)
	}
}

func TestColumnarCloneCopyOnWrite(t *testing.T) {
	b := NewBuilder()
	for u := 0; u < 4; u++ {
		b.AddUser("u")
		b.MustAdd(b.Intern("p"), 0.5)
	}
	src := b.Build()
	cp := src.Clone()

	if cp.base != src.base {
		t.Fatal("clone did not share the columnar base")
	}
	cp.MustSetScore(1, "p", 0.9)
	if cp.base != src.base {
		t.Fatal("a single-row write should not replace the shared base")
	}
	if len(cp.over) != 1 || cp.over[1] == nil {
		t.Fatalf("write did not land in the overlay: %v", cp.over)
	}
	id, _ := src.Catalog().Lookup("p")
	if s, _ := src.Profile(1).Score(id); s != 0.5 {
		t.Fatalf("source saw the clone's write: %v", s)
	}
	if s, _ := cp.Profile(1).Score(id); s != 0.9 {
		t.Fatalf("clone lost its write: %v", s)
	}
	// Base-backed views are capacity-clamped: appending through a view must
	// never scribble over the next user's row.
	v := src.Profile(0)
	v.Set(id, 0.1)
	if s, _ := src.Profile(1).Score(id); s != 0.5 {
		t.Fatalf("view append corrupted a neighboring row: %v", s)
	}
}

func TestCompactAndNumLinks(t *testing.T) {
	repo := NewRepository()
	for u := 0; u < 3; u++ {
		id := repo.AddUser("u")
		repo.MustSetScore(id, "a", 0.1)
		repo.MustSetScore(id, "b", 0.2)
	}
	if got := repo.NumLinks(); got != 6 {
		t.Fatalf("links = %d, want 6", got)
	}
	repo.Compact()
	if len(repo.over) != 0 || repo.base == nil || repo.base.users() != 3 {
		t.Fatal("compact did not produce a pure columnar base")
	}
	if got := repo.NumLinks(); got != 6 {
		t.Fatalf("links after compact = %d, want 6", got)
	}
	// Overwrite one row, append another: NumLinks must recount replaced rows.
	repo.MustSetScore(0, "c", 0.3)
	if got := repo.NumLinks(); got != 7 {
		t.Fatalf("links after overlay write = %d, want 7", got)
	}
	u := repo.AddUser("new")
	repo.MustSetScore(u, "a", 0.4)
	if got := repo.NumLinks(); got != 8 {
		t.Fatalf("links after append = %d, want 8", got)
	}
}

func TestFromColumnsValidation(t *testing.T) {
	labels := []string{"a", "b"}
	names := []string{"u0", "u1"}
	ok := func() ([]int, []PropertyID, []float64) {
		return []int{0, 2, 3}, []PropertyID{0, 1, 0}, []float64{0.1, 0.2, 0.3}
	}
	if _, err := FromColumns(labels, names, []int{0, 2, 3}, []PropertyID{0, 1, 0}, []float64{0.1, 0.2, 0.3}); err != nil {
		t.Fatalf("valid columns rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(off []int, props []PropertyID, scores []float64) ([]int, []PropertyID, []float64)
	}{
		{"nonmonotone offsets", func(off []int, p []PropertyID, s []float64) ([]int, []PropertyID, []float64) {
			off[1] = 3
			off[2] = 2
			return off, p, s
		}},
		{"offset overrun", func(off []int, p []PropertyID, s []float64) ([]int, []PropertyID, []float64) {
			off[2] = 5
			return off, p, s
		}},
		{"property out of range", func(off []int, p []PropertyID, s []float64) ([]int, []PropertyID, []float64) {
			p[0] = 9
			return off, p, s
		}},
		{"row not ascending", func(off []int, p []PropertyID, s []float64) ([]int, []PropertyID, []float64) {
			p[0], p[1] = 1, 0
			return off, p, s
		}},
		{"duplicate in row", func(off []int, p []PropertyID, s []float64) ([]int, []PropertyID, []float64) {
			p[1] = p[0]
			return off, p, s
		}},
		{"score out of range", func(off []int, p []PropertyID, s []float64) ([]int, []PropertyID, []float64) {
			s[2] = 1.5
			return off, p, s
		}},
	}
	for _, tc := range cases {
		off, props, scores := ok()
		off, props, scores = tc.mutate(off, props, scores)
		if _, err := FromColumns(labels, names, off, props, scores); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	if _, err := FromColumns([]string{"a", "a"}, names, []int{0, 0, 0}, nil, nil); err == nil {
		t.Error("duplicate label accepted")
	}
	if _, err := FromColumns(labels, names[:1], []int{0, 1, 2}, []PropertyID{0, 1}, []float64{0, 0}); err == nil {
		t.Error("user/offset mismatch accepted")
	}
}

func TestRawColumnsRoundTrip(t *testing.T) {
	repo := NewRepository()
	for u := 0; u < 5; u++ {
		id := repo.AddUser("u")
		repo.MustSetScore(id, "x", float64(u)/10)
		repo.MustSetScore(id, "y", 0.5)
	}
	repo.Seal()
	labels, names, off, props, scores := repo.RawColumns()
	back, err := FromColumns(
		append([]string(nil), labels...),
		append([]string(nil), names...),
		append([]int(nil), off...),
		append([]PropertyID(nil), props...),
		append([]float64(nil), scores...))
	if err != nil {
		t.Fatal(err)
	}
	var w1, w2 bytes.Buffer
	if err := repo.WriteJSON(&w1); err != nil {
		t.Fatal(err)
	}
	if err := back.WriteJSON(&w2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w2.Bytes()) {
		t.Fatal("RawColumns/FromColumns round trip changed the repository")
	}
}

func TestApproxBytesGrows(t *testing.T) {
	small := NewRepository()
	for u := 0; u < 10; u++ {
		id := small.AddUser("user")
		small.MustSetScore(id, "p", 0.5)
	}
	big := NewRepository()
	for u := 0; u < 1000; u++ {
		id := big.AddUser("user")
		big.MustSetScore(id, "p", 0.5)
	}
	big.Compact()
	if small.ApproxBytes() <= 0 || big.ApproxBytes() <= small.ApproxBytes() {
		t.Fatalf("ApproxBytes not monotone: small %d, big %d", small.ApproxBytes(), big.ApproxBytes())
	}
}
