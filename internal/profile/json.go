package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// userJSON is the wire form of one user profile: the format the prototype
// system ingests ("a set of user profiles ... in JSON format", Section 7).
type userJSON struct {
	Name       string             `json:"name"`
	Properties map[string]float64 `json:"properties"`
}

type repositoryJSON struct {
	Users []userJSON `json:"users"`
}

// WriteJSON serializes the repository. Property maps are emitted with their
// full labels; encoding/json sorts map keys, so output is deterministic.
func (r *Repository) WriteJSON(w io.Writer) error {
	doc := repositoryJSON{Users: make([]userJSON, 0, r.NumUsers())}
	r.EachRow(func(u UserID, props []PropertyID, scores []float64) {
		uj := userJSON{Name: r.names[u], Properties: make(map[string]float64, len(props))}
		for i, id := range props {
			uj.Properties[r.catalog.Label(id)] = scores[i]
		}
		doc.Users = append(doc.Users, uj)
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON parses a repository from the JSON wire form, validating every
// score. Properties are interned in sorted label order per user so that IDs
// are independent of Go's map iteration order.
func ReadJSON(rd io.Reader) (*Repository, error) {
	var doc repositoryJSON
	dec := json.NewDecoder(rd)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("profile: decoding repository: %w", err)
	}
	repo := NewRepository()
	for _, uj := range doc.Users {
		u := repo.AddUser(uj.Name)
		labels := make([]string, 0, len(uj.Properties))
		for label := range uj.Properties {
			labels = append(labels, label)
		}
		sort.Strings(labels)
		for _, label := range labels {
			if err := repo.SetScore(u, label, uj.Properties[label]); err != nil {
				return nil, fmt.Errorf("profile: user %q: %w", uj.Name, err)
			}
		}
	}
	return repo, nil
}
