package profile

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadJSON drives the repository JSON reader with arbitrary input: it
// must never panic, and anything it accepts must round-trip to an equivalent
// repository.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"users":[]}`)
	f.Add(`{"users":[{"name":"A","properties":{"p":0.5}}]}`)
	f.Add(`{"users":[{"name":"A","properties":{"p":1,"q":0}},{"name":"B","properties":{}}]}`)
	f.Add(`{"users":[{"name":"","properties":{"":0}}]}`)
	f.Add(`{"users":[{"name":"A","properties":{"p":2}}]}`)
	f.Add(`not json at all`)
	f.Add(`{"users":[{"name":"A","properties":{"p":null}}]}`)

	f.Fuzz(func(t *testing.T, src string) {
		repo, err := ReadJSON(strings.NewReader(src))
		if err != nil {
			return
		}
		// Accepted input: every score must be valid and the repository must
		// round-trip.
		for u := 0; u < repo.NumUsers(); u++ {
			repo.Profile(UserID(u)).Each(func(_ PropertyID, s float64) {
				if s < 0 || s > 1 || s != s {
					t.Fatalf("accepted score %v", s)
				}
			})
		}
		var buf bytes.Buffer
		if err := repo.WriteJSON(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		again, err := ReadJSON(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if again.NumUsers() != repo.NumUsers() || again.NumProperties() != repo.NumProperties() {
			t.Fatalf("round trip changed shape")
		}
	})
}
