package profile

import (
	"fmt"
	"math"
)

// columns is the immutable columnar core of a Repository: every user's
// sorted (property, score) row laid out back-to-back in two flat arrays,
// with a per-user offset table. Row u occupies props[off[u]:off[u+1]] and
// scores[off[u]:off[u+1]]. Once built, a columns value is never mutated —
// clones and concurrent readers share it by pointer, and mutations copy the
// affected row into the repository's overlay instead.
type columns struct {
	off    []int // len = users+1, monotone, off[0] == 0
	props  []PropertyID
	scores []float64
}

func (c *columns) users() int { return len(c.off) - 1 }

// row returns user u's property and score slices. Both are capacity-clamped
// (len == cap), so appending through a returned slice reallocates instead of
// scribbling over the next user's row.
func (c *columns) row(u int) ([]PropertyID, []float64) {
	a, b := c.off[u], c.off[u+1]
	return c.props[a:b:b], c.scores[a:b:b]
}

// EachRow calls fn for every user in order with the user's sorted property
// and score rows. The slices alias repository storage and are only valid for
// the duration of the call; callers must not retain or modify them. This is
// the bulk read path — for columnar-backed users it walks the flat arrays
// with zero per-user allocation.
func (r *Repository) EachRow(fn func(u UserID, props []PropertyID, scores []float64)) {
	nb := r.baseUsers()
	if len(r.over) == 0 {
		for u := 0; u < nb; u++ {
			a, b := r.base.off[u], r.base.off[u+1]
			fn(UserID(u), r.base.props[a:b:b], r.base.scores[a:b:b])
		}
		return
	}
	for u := 0; u < r.nUsers; u++ {
		if p, ok := r.over[u]; ok {
			p.ensureSorted()
			fn(UserID(u), p.props, p.scores)
			continue
		}
		a, b := r.base.off[u], r.base.off[u+1]
		fn(UserID(u), r.base.props[a:b:b], r.base.scores[a:b:b])
	}
}

// EachRowOf calls fn for each sorted (property, score) pair of one user,
// without allocating a view. It is Profile(u).Each without the wrapper.
func (r *Repository) EachRowOf(u UserID, fn func(PropertyID, float64)) {
	if int(u) < 0 || int(u) >= r.nUsers {
		panic(fmt.Sprintf("profile: unknown user %d", u))
	}
	if p, ok := r.over[int(u)]; ok {
		p.Each(fn)
		return
	}
	props, scores := r.base.row(int(u))
	for i, id := range props {
		fn(id, scores[i])
	}
}

// NumLinks returns the total number of (user, property) pairs across all
// profiles — the row count of the columnar score table.
func (r *Repository) NumLinks() int {
	n := 0
	if r.base != nil {
		n = len(r.base.props)
	}
	if len(r.over) == 0 {
		return n
	}
	// Overlay rows replace their base row, so recount those users.
	for u, p := range r.over {
		p.ensureSorted()
		n += len(p.props)
		if u < r.baseUsers() {
			n -= r.base.off[u+1] - r.base.off[u]
		}
	}
	return n
}

// Compact rebuilds the columnar base from the current rows and drops the
// overlay, restoring the zero-overlay fast path after heavy mutation. It is
// a no-op when there is nothing in the overlay. The repository must not be
// shared with concurrent readers while compacting.
func (r *Repository) Compact() {
	if len(r.over) == 0 && r.base != nil {
		return
	}
	c := &columns{off: make([]int, 1, r.nUsers+1)}
	c.props = make([]PropertyID, 0, r.NumLinks())
	c.scores = make([]float64, 0, cap(c.props))
	r.EachRow(func(_ UserID, props []PropertyID, scores []float64) {
		c.props = append(c.props, props...)
		c.scores = append(c.scores, scores...)
		c.off = append(c.off, len(c.props))
	})
	r.base = c
	r.over = nil
	r.overShared = false
	r.owned = nil
}

// ApproxBytes estimates the resident size of the repository's profile data:
// columnar arrays, overlay rows, the name table and the catalog. It is the
// figure behind the server's repository-bytes gauge and the scale bench's
// RSS column; it deliberately ignores map headers and allocator slack.
func (r *Repository) ApproxBytes() int64 {
	var b int64
	if r.base != nil {
		b += int64(len(r.base.off)) * 8
		b += int64(len(r.base.props)) * int64(propIDSize)
		b += int64(len(r.base.scores)) * 8
	}
	for _, p := range r.over {
		b += int64(len(p.props))*int64(propIDSize) + int64(len(p.scores))*8 + 48
	}
	for _, n := range r.names {
		b += int64(len(n)) + 16
	}
	for _, l := range r.catalog.labels {
		b += 2*(int64(len(l))+16) + 8 // label slice entry + index map entry
	}
	return b
}

const propIDSize = 8 // PropertyID is an int

// FromColumns constructs a sealed columnar repository directly from its flat
// representation, adopting (not copying) the given slices — this is the
// snapshot-image load path, where the arrays were just bulk-decoded from the
// file and a single validation pass stands between disk bytes and a live
// repository. It verifies every structural invariant the mutation API would
// have enforced: monotone offsets covering exactly the data arrays, rows
// sorted strictly ascending by property ID, property IDs within the label
// table, and scores finite in [0,1].
func FromColumns(labels, names []string, off []int, props []PropertyID, scores []float64) (*Repository, error) {
	if len(off) == 0 || off[0] != 0 {
		return nil, fmt.Errorf("profile: offset table must start at 0")
	}
	if len(off)-1 != len(names) {
		return nil, fmt.Errorf("profile: %d offsets for %d users", len(off)-1, len(names))
	}
	if len(props) != len(scores) {
		return nil, fmt.Errorf("profile: %d property ids vs %d scores", len(props), len(scores))
	}
	if off[len(off)-1] != len(props) {
		return nil, fmt.Errorf("profile: offsets end at %d, data has %d links", off[len(off)-1], len(props))
	}
	for u := 1; u < len(off); u++ {
		if off[u] < off[u-1] {
			return nil, fmt.Errorf("profile: offset table not monotone at user %d", u-1)
		}
		for i := off[u-1]; i < off[u]; i++ {
			id := props[i]
			if id < 0 || int(id) >= len(labels) {
				return nil, fmt.Errorf("profile: user %d references property %d of %d", u-1, id, len(labels))
			}
			if i > off[u-1] && props[i-1] >= id {
				return nil, fmt.Errorf("profile: user %d row not strictly ascending", u-1)
			}
			s := scores[i]
			if math.IsNaN(s) || s < 0 || s > 1 {
				return nil, fmt.Errorf("profile: user %d property %d score %v outside [0,1]", u-1, id, s)
			}
		}
	}
	cat := NewCatalog()
	for _, l := range labels {
		if _, dup := cat.index[l]; dup {
			return nil, fmt.Errorf("profile: duplicate label %q", l)
		}
		cat.Intern(l)
	}
	return &Repository{
		catalog: cat,
		names:   names,
		base:    &columns{off: off, props: props, scores: scores},
		nUsers:  len(names),
	}, nil
}

// RawColumns returns the repository's columnar representation: interned
// labels, user names, the offset table and the flat property/score arrays.
// The repository is compacted first if it carries overlay rows, so the call
// may mutate r (but never data shared with clones). The returned slices
// alias live repository storage — treat them as read-only. This is the
// snapshot-image write path.
func (r *Repository) RawColumns() (labels, names []string, off []int, props []PropertyID, scores []float64) {
	r.Compact()
	return r.catalog.labels, r.names, r.base.off, r.base.props, r.base.scores
}
