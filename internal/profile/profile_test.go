package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCatalogInternIdempotent(t *testing.T) {
	c := NewCatalog()
	a := c.Intern("livesIn Tokyo")
	b := c.Intern("avgRating Mexican")
	if a == b {
		t.Fatal("distinct labels share an ID")
	}
	if got := c.Intern("livesIn Tokyo"); got != a {
		t.Fatalf("re-intern returned %d, want %d", got, a)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.Label(a) != "livesIn Tokyo" {
		t.Fatalf("Label(%d) = %q", a, c.Label(a))
	}
	if _, ok := c.Lookup("nope"); ok {
		t.Fatal("Lookup of unknown label succeeded")
	}
}

func TestCatalogLabelPanicsOnUnknown(t *testing.T) {
	c := NewCatalog()
	defer func() {
		if recover() == nil {
			t.Fatal("Label(99) did not panic")
		}
	}()
	c.Label(99)
}

func TestProfileSetAndScore(t *testing.T) {
	var p Profile
	p.Set(3, 0.5)
	p.Set(1, 0.2)
	p.Set(3, 0.9) // overwrite: last write wins
	if got := p.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if s, ok := p.Score(3); !ok || s != 0.9 {
		t.Fatalf("Score(3) = %v,%v; want 0.9,true", s, ok)
	}
	if s, ok := p.Score(1); !ok || s != 0.2 {
		t.Fatalf("Score(1) = %v,%v", s, ok)
	}
	if _, ok := p.Score(2); ok {
		t.Fatal("Score(2) should be unknown (open world)")
	}
	if !p.Has(1) || p.Has(42) {
		t.Fatal("Has mismatch")
	}
}

func TestProfileEachSortedOrder(t *testing.T) {
	var p Profile
	for _, id := range []PropertyID{5, 2, 9, 0} {
		p.Set(id, float64(id)/10)
	}
	var got []PropertyID
	p.Each(func(id PropertyID, s float64) {
		got = append(got, id)
		if s != float64(id)/10 {
			t.Errorf("score for %d = %v", id, s)
		}
	})
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("Each not in sorted order: %v", got)
		}
	}
}

func TestRepositorySetScoreValidation(t *testing.T) {
	r := NewRepository()
	u := r.AddUser("A")
	for _, bad := range []float64{-0.1, 1.1, math.NaN()} {
		if err := r.SetScore(u, "p", bad); err == nil {
			t.Errorf("score %v accepted", bad)
		}
	}
	if err := r.SetScore(UserID(5), "p", 0.5); err == nil {
		t.Error("unknown user accepted")
	}
	if err := r.SetScore(u, "p", 0); err != nil {
		t.Errorf("boundary score 0 rejected: %v", err)
	}
	if err := r.SetScore(u, "q", 1); err != nil {
		t.Errorf("boundary score 1 rejected: %v", err)
	}
}

func TestRepositorySetScoreID(t *testing.T) {
	r := NewRepository()
	u := r.AddUser("A")
	id := r.Catalog().Intern("x")
	if err := r.SetScoreID(u, id, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := r.SetScoreID(u, PropertyID(9), 0.5); err == nil {
		t.Fatal("unknown property id accepted")
	}
	if s, ok := r.Profile(u).Score(id); !ok || s != 0.25 {
		t.Fatalf("Score = %v,%v", s, ok)
	}
}

func TestPropertyCountAndValues(t *testing.T) {
	r := PaperExample()
	id, ok := r.Catalog().Lookup(ExAvgMexican)
	if !ok {
		t.Fatal("property not interned")
	}
	if got := r.PropertyCount(id); got != 4 { // Alice, Bob, David, Eve
		t.Fatalf("|avgRating Mexican| = %d, want 4", got)
	}
	users, scores := r.PropertyValues(id)
	if len(users) != 4 || len(scores) != 4 {
		t.Fatalf("values: %v %v", users, scores)
	}
	// Users come back in repository order: Alice(0), Bob(1), David(3), Eve(4).
	wantUsers := []UserID{0, 1, 3, 4}
	wantScores := []float64{0.95, 0.3, 0.75, 0.8}
	for i := range wantUsers {
		if users[i] != wantUsers[i] || scores[i] != wantScores[i] {
			t.Fatalf("values[%d] = (%v,%v), want (%v,%v)", i, users[i], scores[i], wantUsers[i], wantScores[i])
		}
	}
}

func TestMaxProfileSize(t *testing.T) {
	r := PaperExample()
	if got := r.MaxProfileSize(); got != 6 { // Alice has 6 properties
		t.Fatalf("MaxProfileSize = %d, want 6", got)
	}
}

func TestPaperExampleShape(t *testing.T) {
	r := PaperExample()
	if r.NumUsers() != 5 {
		t.Fatalf("users = %d, want 5", r.NumUsers())
	}
	if r.NumProperties() != 9 {
		t.Fatalf("properties = %d, want 9", r.NumProperties())
	}
	if r.UserName(2) != "Carol" {
		t.Fatalf("user 2 = %q", r.UserName(2))
	}
	// Carol never rated Mexican food (Example 3.1).
	id, _ := r.Catalog().Lookup(ExAvgMexican)
	if r.Profile(2).Has(id) {
		t.Fatal("Carol unexpectedly has avgRating Mexican")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	r := PaperExample()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumUsers() != r.NumUsers() || back.NumProperties() != r.NumProperties() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.NumUsers(), back.NumProperties(), r.NumUsers(), r.NumProperties())
	}
	for u := 0; u < r.NumUsers(); u++ {
		if back.UserName(UserID(u)) != r.UserName(UserID(u)) {
			t.Fatalf("user %d name mismatch", u)
		}
		r.Profile(UserID(u)).Each(func(id PropertyID, s float64) {
			bid, ok := back.Catalog().Lookup(r.Catalog().Label(id))
			if !ok {
				t.Fatalf("label %q lost", r.Catalog().Label(id))
			}
			bs, ok := back.Profile(UserID(u)).Score(bid)
			if !ok || bs != s {
				t.Fatalf("user %d property %q: %v vs %v", u, r.Catalog().Label(id), bs, s)
			}
		})
	}
}

func TestReadJSONRejectsBadScore(t *testing.T) {
	src := `{"users":[{"name":"A","properties":{"p":1.5}}]}`
	if _, err := ReadJSON(strings.NewReader(src)); err == nil {
		t.Fatal("score 1.5 accepted")
	}
}

func TestReadJSONRejectsUnknownFields(t *testing.T) {
	src := `{"users":[{"name":"A","properties":{},"extra":1}]}`
	if _, err := ReadJSON(strings.NewReader(src)); err == nil {
		t.Fatal("unknown field accepted")
	}
}

func TestReadJSONDeterministicIDs(t *testing.T) {
	src := `{"users":[{"name":"A","properties":{"z":0.1,"a":0.2,"m":0.3}}]}`
	first, err := ReadJSON(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		again, err := ReadJSON(strings.NewReader(src))
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < first.NumProperties(); id++ {
			if again.Catalog().Label(PropertyID(id)) != first.Catalog().Label(PropertyID(id)) {
				t.Fatal("property IDs depend on map iteration order")
			}
		}
	}
}

func TestSubset(t *testing.T) {
	r := PaperExample()
	sub, orig := r.Subset([]UserID{4, 0}) // Eve, Alice
	if sub.NumUsers() != 2 {
		t.Fatalf("subset users = %d", sub.NumUsers())
	}
	if sub.UserName(0) != "Eve" || sub.UserName(1) != "Alice" {
		t.Fatalf("subset names = %q,%q", sub.UserName(0), sub.UserName(1))
	}
	if orig[0] != 4 || orig[1] != 0 {
		t.Fatalf("orig mapping = %v", orig)
	}
	id, ok := sub.Catalog().Lookup(ExAvgMexican)
	if !ok {
		t.Fatal("label not carried over")
	}
	if s, ok := sub.Profile(0).Score(id); !ok || s != 0.8 {
		t.Fatalf("Eve's score = %v,%v", s, ok)
	}
}

// Property: Set then Score always returns the last value written, for any
// sequence of (id, score) writes.
func TestProfileLastWriteWinsProperty(t *testing.T) {
	f := func(ids []uint8, scores []uint8) bool {
		n := len(ids)
		if len(scores) < n {
			n = len(scores)
		}
		var p Profile
		want := map[PropertyID]float64{}
		for i := 0; i < n; i++ {
			id := PropertyID(ids[i] % 16)
			s := float64(scores[i]) / 255
			p.Set(id, s)
			want[id] = s
		}
		if p.Len() != len(want) {
			return false
		}
		for id, s := range want {
			got, ok := p.Score(id)
			if !ok || got != s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
