package shard

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

func getJSON(t *testing.T, url string, out interface{}) error {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}

func postJSON(t *testing.T, url, reqBody string, out interface{}) error {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(reqBody))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s: %d: %s", url, resp.StatusCode, body)
	}
	return json.Unmarshal(body, out)
}
