package shard

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"podium/internal/client"
)

// Router turns the registry's health ranking into call routing for one
// replica group per shard:
//
//   - Primary pick: the healthiest fresh replica (ranked() order).
//   - Failover: an attempt that errors immediately launches the next
//     replica in rank order; a shard's call fails only when every replica
//     has failed.
//   - Hedging: for idempotent calls, if the primary has not answered by the
//     HedgeQuantile of recent successful latencies (clamped to
//     [MinHedge, MaxHedge]), a second request goes to the next-ranked
//     sibling. First success wins; the loser's context is cancelled, and a
//     cancelled loser is *not* a health signal.
//
// Campaign creation is not idempotent end to end (a duplicate wave would
// double-solicit users), so it routes through DoSequential — failover only,
// no hedge — and the caller pins follow-up polling to the replica that
// accepted the wave.

// errNoReplicas is returned when a shard was configured with no replica URLs
// (cannot happen through NewCoordinator, which drops empty groups).
var errNoReplicas = fmt.Errorf("shard: no replicas configured")

// routedCall is one operation against a replica's client, returning an
// opaque value the caller type-asserts back.
type routedCall func(ctx context.Context, c *client.Client) (interface{}, error)

// latRing is a fixed-size ring of recent successful call latencies, one per
// shard, backing the hedge deadline quantile.
type latRing struct {
	mu   sync.Mutex
	buf  [64]time.Duration
	n    int // filled entries
	next int
}

func (l *latRing) add(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.buf[l.next] = d
	l.next = (l.next + 1) % len(l.buf)
	if l.n < len(l.buf) {
		l.n++
	}
}

// quantile returns the q-quantile of the recorded latencies and the sample
// count backing it.
func (l *latRing) quantile(q float64) (time.Duration, int) {
	l.mu.Lock()
	s := make([]time.Duration, l.n)
	copy(s, l.buf[:l.n])
	l.mu.Unlock()
	if len(s) == 0 {
		return 0, 0
	}
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx], len(s)
}

// Router routes calls across each shard's replica group using the
// registry's health ranking.
type Router struct {
	reg *Registry
	lat []*latRing
}

func newRouter(reg *Registry) *Router {
	lat := make([]*latRing, len(reg.groups))
	for i := range lat {
		lat[i] = &latRing{}
	}
	return &Router{reg: reg, lat: lat}
}

// hedgeDelay is how long the router waits on the primary before hedging:
// the configured latency quantile of recent successes, clamped to
// [MinHedge, MaxHedge]. With fewer than 8 samples the quantile is noise, so
// the conservative MaxHedge applies.
func (rt *Router) hedgeDelay(si int) time.Duration {
	q, n := rt.lat[si].quantile(rt.reg.opts.HedgeQuantile)
	if n < 8 {
		return rt.reg.opts.MaxHedge
	}
	if q < rt.reg.opts.MinHedge {
		return rt.reg.opts.MinHedge
	}
	if q > rt.reg.opts.MaxHedge {
		return rt.reg.opts.MaxHedge
	}
	return q
}

// Do routes one idempotent call to shard si with failover and hedging.
// It returns the winning value, the replica that produced it, and the first
// error when every replica failed.
func (rt *Router) Do(ctx context.Context, si int, call routedCall) (interface{}, *replica, error) {
	reps := rt.reg.ranked(si)
	if len(reps) == 0 {
		return nil, nil, errNoReplicas
	}
	type outcome struct {
		val    interface{}
		rep    *replica
		err    error
		hedged bool
		dur    time.Duration
	}
	ctx, cancelAll := context.WithCancel(ctx)
	defer cancelAll()
	// Buffered to len(reps): an abandoned loser's send never blocks, so no
	// goroutine leaks past the winner's return.
	results := make(chan outcome, len(reps))
	next := 0
	launch := func(hedged bool) bool {
		if next >= len(reps) {
			return false
		}
		r := reps[next]
		next++
		go func() {
			start := time.Now()
			v, err := call(ctx, r.c)
			results <- outcome{val: v, rep: r, err: err, hedged: hedged, dur: time.Since(start)}
		}()
		return true
	}
	launch(false)
	inflight := 1

	var hedgeCh <-chan time.Time
	hedgeLaunched := false
	if len(reps) > 1 {
		t := time.NewTimer(rt.hedgeDelay(si))
		defer t.Stop()
		hedgeCh = t.C
	}

	var firstErr error
	for inflight > 0 {
		select {
		case <-hedgeCh:
			hedgeCh = nil
			if launch(true) {
				hedgeLaunched = true
				inflight++
			}
		case o := <-results:
			inflight--
			if o.err == nil {
				rt.reg.Observe(o.rep, nil)
				rt.lat[si].add(o.dur)
				if hedgeLaunched && rt.reg.met != nil {
					if o.hedged {
						rt.reg.met.HedgesWon.Inc()
					} else {
						rt.reg.met.HedgesLost.Inc()
					}
				}
				cancelAll()
				return o.val, o.rep, nil
			}
			// A failure after the caller's own context died (or after our
			// cancel) is not evidence about the replica.
			if ctx.Err() == nil {
				rt.reg.Observe(o.rep, o.err)
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if launch(o.hedged) {
				inflight++
				if rt.reg.met != nil {
					rt.reg.met.Failovers.Inc()
				}
			}
		}
	}
	return nil, nil, firstErr
}

// DoSequential routes one non-idempotent call to shard si: replicas are
// tried strictly one at a time in rank order, with no hedge — a duplicate
// in-flight attempt could apply the operation twice.
func (rt *Router) DoSequential(ctx context.Context, si int, call routedCall) (interface{}, *replica, error) {
	reps := rt.reg.ranked(si)
	if len(reps) == 0 {
		return nil, nil, errNoReplicas
	}
	var firstErr error
	for i, r := range reps {
		v, err := call(ctx, r.c)
		if err == nil {
			rt.reg.Observe(r, nil)
			return v, r, nil
		}
		if ctx.Err() == nil {
			rt.reg.Observe(r, err)
		}
		if firstErr == nil {
			firstErr = err
		}
		if i < len(reps)-1 && rt.reg.met != nil {
			rt.reg.met.Failovers.Inc()
		}
		if ctx.Err() != nil {
			break
		}
	}
	return nil, nil, firstErr
}
