package shard

import (
	"context"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"podium/internal/client"
	"podium/internal/obs"
)

// The replica health registry. Each shard of the distributed subsystem is
// served by R replica servers holding identical slices of the population;
// the registry is the coordinator's per-replica health model, fed by two
// signal paths:
//
//   - Active probes: every ProbeInterval (jittered so a fleet of
//     coordinators never synchronizes), each replica gets a GET /readyz
//     liveness check followed by GET /api/v1/status for its snapshot epoch
//     and population. Probes go through a plain single-attempt client — a
//     probe must never amplify into a retry storm.
//   - Passive outcomes: every routed call reports its success or failure
//     back, and the resilient client's circuit breaker state is read as a
//     third opinion (an open breaker marks a replica down without spending
//     a probe on it).
//
// The registry also reconciles epochs within a replica group: a replica
// whose snapshot epoch lags the freshest sibling is *deprioritized*, not
// dropped — routing prefers healthy-and-fresh over healthy-and-stale over
// unknown over down, so a lagging replica is merged only when nothing
// better answers.

// HealthOptions tunes the replica registry and the router built on it. The
// zero value of each field selects the default in parentheses.
type HealthOptions struct {
	// ProbeInterval is the active probe cadence (default 2s), jittered
	// ±25% per round.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one replica's probe round trip (default 1s).
	ProbeTimeout time.Duration
	// FailTolerance is how many consecutive failures (probe or routed call)
	// mark a replica down (default 2).
	FailTolerance int
	// HedgeQuantile is the latency quantile of recent successful calls after
	// which the router issues a hedged second request to a sibling replica
	// (default 0.9).
	HedgeQuantile float64
	// MinHedge / MaxHedge clamp the hedge deadline (defaults 20ms / 500ms);
	// MaxHedge is also the deadline used before any latency history exists.
	MinHedge time.Duration
	MaxHedge time.Duration
	// Seed keys the probe jitter stream (0 derives from the wall clock).
	Seed int64
}

func (o HealthOptions) withDefaults() HealthOptions {
	if o.ProbeInterval <= 0 {
		o.ProbeInterval = 2 * time.Second
	}
	if o.ProbeTimeout <= 0 {
		o.ProbeTimeout = time.Second
	}
	if o.FailTolerance <= 0 {
		o.FailTolerance = 2
	}
	if o.HedgeQuantile <= 0 || o.HedgeQuantile >= 1 {
		o.HedgeQuantile = 0.9
	}
	if o.MinHedge <= 0 {
		o.MinHedge = 20 * time.Millisecond
	}
	if o.MaxHedge <= 0 {
		o.MaxHedge = 500 * time.Millisecond
	}
	if o.MaxHedge < o.MinHedge {
		o.MaxHedge = o.MinHedge
	}
	if o.Seed == 0 {
		o.Seed = time.Now().UnixNano()
	}
	return o
}

// replica is one shard server plus its health record. Health fields are
// atomics: probes, routed calls and ranking read and write them from
// different goroutines.
type replica struct {
	shard int
	url   string
	// c is the resilient client routed traffic uses; probe is a plain
	// single-attempt client with a short timeout.
	c     *client.Client
	probe *client.Client

	up          atomic.Int32 // 0 unknown, 1 up, 2 down
	epoch       atomic.Uint64
	users       atomic.Int64
	groups      atomic.Int64
	consecFails atomic.Int32
	lastProbeNS atomic.Int64
	upGauge     *obs.Gauge
}

const (
	repUnknown int32 = 0
	repUp      int32 = 1
	repDown    int32 = 2
)

func (r *replica) noteSuccess() {
	r.consecFails.Store(0)
	r.up.Store(repUp)
	r.upGauge.Set(1)
}

func (r *replica) noteFailure(tolerance int) {
	if int(r.consecFails.Add(1)) >= tolerance || r.up.Load() == repUnknown {
		r.up.Store(repDown)
		r.upGauge.Set(0)
	}
}

// healthy folds the passive breaker signal in: an open breaker overrides an
// optimistic health record.
func (r *replica) healthy() bool {
	if r.c.BreakerState() == client.BreakerOpen {
		return false
	}
	return r.up.Load() == repUp
}

// rank orders replicas for routing: healthy-and-fresh < healthy-and-stale <
// unknown < down. maxEpoch is the freshest epoch among the group's healthy
// replicas.
func (r *replica) rank(maxEpoch uint64) int {
	switch {
	case r.healthy() && r.epoch.Load() >= maxEpoch:
		return 0
	case r.healthy():
		return 1
	case r.up.Load() == repUnknown && r.c.BreakerState() != client.BreakerOpen:
		return 2
	}
	return 3
}

// ReplicaInfo is one replica's externally visible health record, rendered by
// the coordinator's /api/v1/shards endpoint.
type ReplicaInfo struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	Epoch   uint64 `json:"epoch"`
	// Stale marks a healthy replica whose epoch lags the freshest sibling —
	// deprioritized by the router, merged only as a last resort.
	Stale bool `json:"stale,omitempty"`
	// Breaker is the replica client's circuit state ("none" when the client
	// has no breaker configured).
	Breaker string `json:"breaker,omitempty"`
	// ConsecutiveFailures counts probe/call failures since the last success.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	Users               int `json:"users,omitempty"`
	Groups              int `json:"groups,omitempty"`
}

// Registry is the coordinator-side health registry over every replica of
// every shard.
type Registry struct {
	groups [][]*replica
	opts   HealthOptions
	met    *obs.ShardMetrics

	jmu sync.Mutex
	rng *rand.Rand

	probeOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	wg        sync.WaitGroup
}

func newRegistry(groups [][]*replica, opts HealthOptions, met *obs.ShardMetrics) *Registry {
	return &Registry{
		groups: groups,
		opts:   opts.withDefaults(),
		met:    met,
		rng:    rand.New(rand.NewSource(opts.withDefaults().Seed)),
		stop:   make(chan struct{}),
	}
}

// Start launches the background probe loop. Safe to skip (tests, one-shot
// tools): the first fan-out triggers a synchronous round via ensureProbed,
// and passive outcomes keep the records moving.
func (reg *Registry) Start() {
	reg.wg.Add(1)
	go func() {
		defer reg.wg.Done()
		for {
			select {
			case <-reg.stop:
				return
			case <-time.After(reg.jitteredInterval()):
				reg.ProbeAll(context.Background())
			}
		}
	}()
}

// Stop halts the probe loop and waits for it.
func (reg *Registry) Stop() {
	reg.stopOnce.Do(func() { close(reg.stop) })
	reg.wg.Wait()
}

// jitteredInterval spreads probe rounds over ±25% of the configured cadence.
func (reg *Registry) jitteredInterval() time.Duration {
	reg.jmu.Lock()
	j := reg.rng.Float64()
	reg.jmu.Unlock()
	base := float64(reg.opts.ProbeInterval)
	return time.Duration(base * (0.75 + 0.5*j))
}

// ensureProbed runs exactly one synchronous probe round the first time a
// fan-out needs health data, so epochs and populations are populated even
// when the background loop was never started (or has not fired yet).
func (reg *Registry) ensureProbed(ctx context.Context) {
	reg.probeOnce.Do(func() { reg.ProbeAll(ctx) })
}

// ProbeAll probes every replica of every shard concurrently.
func (reg *Registry) ProbeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, group := range reg.groups {
		for _, r := range group {
			wg.Add(1)
			go func(r *replica) {
				defer wg.Done()
				reg.probeOne(ctx, r)
			}(r)
		}
	}
	wg.Wait()
}

// probeOne runs the two-step active probe: /readyz for liveness, then
// /api/v1/status for epoch and population.
func (reg *Registry) probeOne(ctx context.Context, r *replica) {
	ctx, cancel := context.WithTimeout(ctx, reg.opts.ProbeTimeout)
	defer cancel()
	start := time.Now()
	err := r.probe.Ready(ctx)
	var st client.Status
	if err == nil {
		st, err = r.probe.StatusCtx(ctx)
	}
	if reg.met != nil {
		reg.met.ProbeLat.Observe(time.Since(start).Seconds())
	}
	r.lastProbeNS.Store(time.Now().UnixNano())
	if err != nil {
		r.noteFailure(reg.opts.FailTolerance)
		return
	}
	r.epoch.Store(st.Epoch)
	r.users.Store(int64(st.Users))
	r.groups.Store(int64(st.Groups))
	r.noteSuccess()
}

// Observe feeds a routed call's outcome back as a passive health signal.
// Cancellation is not an outcome: a hedge loser cut off mid-flight says
// nothing about the replica's health.
func (reg *Registry) Observe(r *replica, err error) {
	if err == nil {
		r.noteSuccess()
		return
	}
	r.noteFailure(reg.opts.FailTolerance)
}

// ranked returns shard si's replicas in routing order: healthy-and-fresh
// first, then healthy-but-stale (epoch reconciliation), then never-probed,
// then known-down — nothing is excluded, so a shard degrades only when every
// replica actually fails.
func (reg *Registry) ranked(si int) []*replica {
	group := reg.groups[si]
	out := make([]*replica, len(group))
	copy(out, group)
	var maxEpoch uint64
	for _, r := range group {
		if r.healthy() && r.epoch.Load() > maxEpoch {
			maxEpoch = r.epoch.Load()
		}
	}
	ranks := make([]int, len(out))
	for i, r := range out {
		ranks[i] = r.rank(maxEpoch)
	}
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := out[i].rank(maxEpoch), out[j].rank(maxEpoch)
		if ri != rj {
			return ri < rj
		}
		// Deterministic tiebreak by configuration order keeps healthy-cluster
		// routing (and therefore chaos bit-identity runs) reproducible.
		return out[i].url < out[j].url
	})
	for _, rk := range ranks {
		if rk == 1 && reg.met != nil {
			reg.met.Stale.Inc()
		}
	}
	return out
}

// shardUsers reports the population of shard si as last probed from its
// healthiest replica (0 when nothing has answered yet).
func (reg *Registry) shardUsers(si int) int {
	for _, r := range reg.ranked(si) {
		if u := r.users.Load(); u > 0 {
			return int(u)
		}
	}
	return 0
}

// shardEpoch reports the reconciled (freshest known) epoch of shard si.
func (reg *Registry) shardEpoch(si int) uint64 {
	var max uint64
	for _, r := range reg.groups[si] {
		if e := r.epoch.Load(); e > max {
			max = e
		}
	}
	return max
}

// Snapshot renders every replica's health record, per shard.
func (reg *Registry) Snapshot() [][]ReplicaInfo {
	out := make([][]ReplicaInfo, len(reg.groups))
	for si, group := range reg.groups {
		maxEpoch := reg.shardEpoch(si)
		rows := make([]ReplicaInfo, len(group))
		for i, r := range group {
			rows[i] = ReplicaInfo{
				URL:                 r.url,
				Healthy:             r.healthy(),
				Epoch:               r.epoch.Load(),
				Stale:               r.healthy() && r.epoch.Load() < maxEpoch,
				Breaker:             string(r.c.BreakerState()),
				ConsecutiveFailures: int(r.consecFails.Load()),
				Users:               int(r.users.Load()),
				Groups:              int(r.groups.Load()),
			}
		}
		out[si] = rows
	}
	return out
}
