package shard

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"podium/internal/client"
)

// newTestGroup builds one replica group over fake URLs with no live servers
// behind them — router unit tests drive outcomes through the routedCall
// closure instead of the wire.
func newTestGroup(urls ...string) []*replica {
	group := make([]*replica, len(urls))
	for i, u := range urls {
		c := client.New(u, nil)
		group[i] = &replica{shard: 0, url: u, c: c, probe: c}
	}
	return group
}

func testRouter(group []*replica, opts HealthOptions) *Router {
	return newRouter(newRegistry([][]*replica{group}, opts, nil))
}

// TestRouterFailover: the primary's error immediately launches the next
// replica in rank order; the call succeeds on the sibling and the failure is
// recorded as a passive health signal.
func TestRouterFailover(t *testing.T) {
	// Rank tiebreak is URL order, so r0 is the primary pick.
	group := newTestGroup("http://r0", "http://r1")
	group[0].up.Store(repUp)
	group[1].up.Store(repUp)
	rt := testRouter(group, HealthOptions{Seed: 1})

	v, rep, err := rt.Do(context.Background(), 0, func(ctx context.Context, c *client.Client) (interface{}, error) {
		if c.BaseURL() == "http://r0" {
			return nil, fmt.Errorf("boom")
		}
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.(string) != "ok" || rep.url != "http://r1" {
		t.Fatalf("failover served %v from %q, want ok from r1", v, rep.url)
	}
	if got := group[0].consecFails.Load(); got != 1 {
		t.Fatalf("primary consecutive failures = %d, want 1", got)
	}
	if !group[0].healthy() {
		t.Fatal("one failure below tolerance marked the primary down")
	}
}

// TestRouterAllReplicasFail: the first error is surfaced when the whole
// group is exhausted, and both replicas carry the failure in their records.
func TestRouterAllReplicasFail(t *testing.T) {
	group := newTestGroup("http://a", "http://b")
	rt := testRouter(group, HealthOptions{Seed: 1, FailTolerance: 1})

	_, _, err := rt.Do(context.Background(), 0, func(ctx context.Context, c *client.Client) (interface{}, error) {
		return nil, fmt.Errorf("down: %s", c.BaseURL())
	})
	if err == nil {
		t.Fatal("exhausted group returned nil error")
	}
	for _, r := range group {
		if r.up.Load() != repDown {
			t.Fatalf("replica %s not marked down at tolerance 1", r.url)
		}
	}
}

// TestRouterHedgeWinsAndCancelsLoser: a slow primary trips the hedge
// deadline, the sibling answers first, and the cancelled primary is NOT
// penalized — a hedge loser cut off mid-flight says nothing about health.
func TestRouterHedgeWinsAndCancelsLoser(t *testing.T) {
	group := newTestGroup("http://slow", "http://fast")
	// Rank the slow replica first: both healthy, slow is fresher.
	group[0].up.Store(repUp)
	group[0].epoch.Store(2)
	group[1].up.Store(repUp)
	group[1].epoch.Store(1)
	rt := testRouter(group, HealthOptions{Seed: 1, MinHedge: time.Millisecond, MaxHedge: 10 * time.Millisecond})

	var slowCancelled atomic.Bool
	v, rep, err := rt.Do(context.Background(), 0, func(ctx context.Context, c *client.Client) (interface{}, error) {
		if c.BaseURL() == "http://slow" {
			select {
			case <-time.After(5 * time.Second):
				return "slow", nil
			case <-ctx.Done():
				slowCancelled.Store(true)
				return nil, ctx.Err()
			}
		}
		return "fast", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.(string) != "fast" || rep.url != "http://fast" {
		t.Fatalf("hedge served %v from %q, want fast replica", v, rep.url)
	}
	// The loser's cancellation must land promptly (Do cancels on win) and
	// must not have dented the slow replica's health record.
	deadline := time.After(2 * time.Second)
	for !slowCancelled.Load() {
		select {
		case <-deadline:
			t.Fatal("losing hedge attempt was never cancelled")
		case <-time.After(time.Millisecond):
		}
	}
	if got := group[0].consecFails.Load(); got != 0 {
		t.Fatalf("cancelled hedge loser recorded %d failures", got)
	}
	if !group[0].healthy() {
		t.Fatal("cancelled hedge loser marked unhealthy")
	}
}

// TestRouterDoSequentialNeverHedges: non-idempotent routing tries replicas
// strictly one at a time — the second attempt starts only after the first
// has failed, never concurrently.
func TestRouterDoSequentialNeverHedges(t *testing.T) {
	group := newTestGroup("http://a", "http://b")
	group[0].up.Store(repUp)
	group[1].up.Store(repUp)
	// A hedge deadline far shorter than the first attempt's duration: if
	// DoSequential hedged, both attempts would overlap.
	rt := testRouter(group, HealthOptions{Seed: 1, MinHedge: time.Millisecond, MaxHedge: time.Millisecond})

	var inflight, maxInflight atomic.Int32
	v, rep, err := rt.DoSequential(context.Background(), 0, func(ctx context.Context, c *client.Client) (interface{}, error) {
		cur := inflight.Add(1)
		defer inflight.Add(-1)
		for {
			prev := maxInflight.Load()
			if cur <= prev || maxInflight.CompareAndSwap(prev, cur) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		if c.BaseURL() == "http://a" {
			return nil, fmt.Errorf("first replica declines")
		}
		return "second", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.(string) != "second" || rep.url != "http://b" {
		t.Fatalf("sequential routing served %v from %q", v, rep.url)
	}
	if maxInflight.Load() != 1 {
		t.Fatalf("sequential routing ran %d attempts concurrently", maxInflight.Load())
	}
}

// TestRankedOrdersReplicas: healthy-and-fresh < healthy-and-stale < unknown
// < down, with nothing excluded.
func TestRankedOrdersReplicas(t *testing.T) {
	group := newTestGroup("http://down", "http://stale", "http://fresh", "http://unknown")
	group[0].up.Store(repDown)
	group[1].up.Store(repUp)
	group[1].epoch.Store(3)
	group[2].up.Store(repUp)
	group[2].epoch.Store(7)
	// group[3] stays unknown (never probed).
	reg := newRegistry([][]*replica{group}, HealthOptions{Seed: 1}, nil)

	got := reg.ranked(0)
	want := []string{"http://fresh", "http://stale", "http://unknown", "http://down"}
	if len(got) != len(want) {
		t.Fatalf("ranked dropped replicas: %d of %d", len(got), len(want))
	}
	for i, r := range got {
		if r.url != want[i] {
			t.Fatalf("rank %d = %s, want %s", i, r.url, want[i])
		}
	}
	if e := reg.shardEpoch(0); e != 7 {
		t.Fatalf("reconciled epoch = %d, want 7", e)
	}
}
