package shard

import (
	"math/rand"
	"reflect"
	"testing"

	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/synth"
)

func buildGlobal(t *testing.T, users int, seed int64) (*groups.Index, groups.Config) {
	t.Helper()
	cfg := synth.ScaleLike(users)
	cfg.Seed = seed
	gcfg := groups.Config{K: 3}
	return groups.Build(synth.Generate(cfg).Repo, gcfg), gcfg
}

func TestPartitionCoversPopulation(t *testing.T) {
	part, err := NewPartition(4, 99)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	assigned := part.Assign(n)
	seen := make([]bool, n)
	for s, us := range assigned {
		prev := profile.UserID(-1)
		for _, u := range us {
			if seen[u] {
				t.Fatalf("user %d on two shards", u)
			}
			seen[u] = true
			if u <= prev {
				t.Fatalf("shard %d user list not ascending at %d", s, u)
			}
			prev = u
			if got := part.Owner(u); got != s {
				t.Fatalf("Owner(%d) = %d, but Assign placed it on %d", u, got, s)
			}
		}
	}
	for u, ok := range seen {
		if !ok {
			t.Fatalf("user %d on no shard", u)
		}
	}
	// Balance: consistent hashing with virtual nodes should keep every
	// shard within a small factor of n/S.
	for s, us := range assigned {
		if len(us) < n/4/3 || len(us) > n/4*3 {
			t.Fatalf("shard %d holds %d of %d users — ring badly unbalanced", s, len(us), n)
		}
	}
}

func TestPartitionDeterministicAndSeedSensitive(t *testing.T) {
	a, _ := NewPartition(8, 7)
	b, _ := NewPartition(8, 7)
	c, _ := NewPartition(8, 8)
	same, diff := true, false
	for u := 0; u < 500; u++ {
		id := profile.UserID(u)
		if a.Owner(id) != b.Owner(id) {
			same = false
		}
		if a.Owner(id) != c.Owner(id) {
			diff = true
		}
	}
	if !same {
		t.Fatal("equal (shards, seed) produced different placements")
	}
	if !diff {
		t.Fatal("different seeds produced identical placements for 500 users")
	}
}

func TestPlanShardsMirrorGlobalBuckets(t *testing.T) {
	ix, gcfg := buildGlobal(t, 400, 11)
	plan, err := NewPlan(ix, gcfg, Options{Shards: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := ix.BucketBoundaries()
	for _, sh := range plan.Shards {
		got := sh.Index.BucketBoundaries()
		for p, bs := range got {
			if !reflect.DeepEqual(bs, want[p]) {
				t.Fatalf("shard %d re-derived buckets for property %d:\n got %v\nwant %v", sh.ID, p, bs, want[p])
			}
		}
	}
	// The slices partition the population.
	total := 0
	for _, sh := range plan.Shards {
		total += sh.Repo.NumUsers()
		for local, global := range sh.Users {
			if sh.Repo.UserName(profile.UserID(local)) != ix.Repo().UserName(global) {
				t.Fatalf("shard %d row %d is not global user %d", sh.ID, local, global)
			}
		}
	}
	if total != ix.Repo().NumUsers() {
		t.Fatalf("shards hold %d users, population has %d", total, ix.Repo().NumUsers())
	}
}

// TestMergeGreedyProperty is the randomized proof-harness sweep the issue
// names: 50 random instances, each selected at several shard counts.
// Asserts (a) merged coverage is within the (1−1/e)²-style regime — we use
// the empirically safe floor of 0.4·exact, far below observed ratios but
// above the theoretical composition bound's pessimism for adversarial
// instances; (b) for a fixed partition seed the result is bit-identical
// across worker counts and repeated runs; (c) S=1 merges losslessly.
func TestMergeGreedyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	weights := []groups.WeightScheme{groups.WeightIden, groups.WeightLBS}
	covers := []groups.CoverageScheme{groups.CoverSingle, groups.CoverProp}
	for trial := 0; trial < 50; trial++ {
		users := 60 + rng.Intn(240)
		budget := 2 + rng.Intn(8)
		ws := weights[rng.Intn(len(weights))]
		cs := covers[rng.Intn(len(covers))]
		ix, gcfg := buildGlobal(t, users, rng.Int63())
		for _, shards := range []int{1, 3, 5} {
			seed := rng.Uint64()
			plan, err := NewPlan(ix, gcfg, Options{Shards: shards, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			res, proof, err := plan.Prove(ws, cs, budget, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if proof.Ratio < 0.4 {
				t.Fatalf("trial %d S=%d: merged %.4f vs exact %.4f — ratio %.3f below bound",
					trial, shards, proof.Merged, proof.Exact, proof.Ratio)
			}
			if shards == 1 && proof.Ratio != 1 {
				t.Fatalf("trial %d: S=1 lost coverage (ratio %.6f)", trial, proof.Ratio)
			}
			// Bit-identical across worker counts and reruns for the fixed
			// partition seed.
			for _, par := range []int{2, 8} {
				plan2, err := NewPlan(ix, gcfg, Options{Shards: shards, Seed: seed})
				if err != nil {
					t.Fatal(err)
				}
				res2, err := plan2.Select(ws, cs, budget, core.Options{Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res.Merged.Users, res2.Merged.Users) || res.Merged.Score != res2.Merged.Score {
					t.Fatalf("trial %d S=%d par=%d: selection not bit-identical:\n %v %.6f\n %v %.6f",
						trial, shards, par, res.Merged.Users, res.Merged.Score, res2.Merged.Users, res2.Merged.Score)
				}
			}
		}
	}
}
