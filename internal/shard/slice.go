package shard

import (
	"fmt"

	"podium/internal/groups"
	"podium/internal/profile"
)

// Carve materializes one shard of a global repository for standalone
// serving: shard id of S under the given partition seed, plus the
// groups.Config a server of that shard must index with — the caller's cfg
// with the *global* bucket boundaries pinned. A shard server that re-derived
// cuts from its local score distribution would disagree with the
// coordinator's merge instance about group membership; pinning keeps every
// shard's groups exact restrictions of the global ones. This is the CLI's
// -shards/-shard-id path, so it derives the boundaries itself from a
// throwaway global index.
func Carve(repo *profile.Repository, cfg groups.Config, shards, id int, seed uint64) (*profile.Repository, groups.Config, error) {
	if id < 0 || id >= shards {
		return nil, cfg, fmt.Errorf("shard: id %d outside [0,%d)", id, shards)
	}
	part, err := NewPartition(shards, seed)
	if err != nil {
		return nil, cfg, err
	}
	global := groups.Build(repo, cfg)
	cfg.FixedBuckets = global.BucketBoundaries()
	labels, names, off, props, scores := repo.RawColumns()
	sub, err := sliceRepo(labels, names, off, props, scores, part.Assign(repo.NumUsers())[id])
	if err != nil {
		return nil, cfg, err
	}
	return sub, cfg, nil
}

// sliceRepo materializes one shard's sub-repository from the global columnar
// arrays: a counting pass sizes the shard's offset table, then each selected
// user's row is block-copied into the shard arenas. The label table is shared
// verbatim (property IDs keep their global meaning on every shard — the
// property alignment the fixed-bucket rebuild depends on), so the cost is
// O(shard links), not O(users × properties) and never a per-user re-intern.
// users must be ascending global IDs; the shard's local row r corresponds to
// global user users[r].
func sliceRepo(labels, names []string, off []int, props []profile.PropertyID, scores []float64, users []profile.UserID) (*profile.Repository, error) {
	subOff := make([]int, len(users)+1)
	for i, u := range users {
		if int(u) < 0 || int(u)+1 >= len(off) {
			return nil, fmt.Errorf("shard: user %d outside repository of %d", u, len(off)-1)
		}
		subOff[i+1] = subOff[i] + (off[u+1] - off[u])
	}
	links := subOff[len(users)]
	subNames := make([]string, len(users))
	subProps := make([]profile.PropertyID, links)
	subScores := make([]float64, links)
	for i, u := range users {
		a, b := off[u], off[u+1]
		copy(subProps[subOff[i]:subOff[i+1]], props[a:b])
		copy(subScores[subOff[i]:subOff[i+1]], scores[a:b])
		subNames[i] = names[u]
	}
	return profile.FromColumns(labels, subNames, subOff, subProps, subScores)
}
