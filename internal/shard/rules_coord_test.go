package shard

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"podium/internal/client"
	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/server"
)

// ruleRecorder wraps a shard server and records the "rule" field of every
// select request body it serves, so the passthrough test can assert the
// coordinator forwarded the rule rather than silently falling back to the
// default objective.
type ruleRecorder struct {
	next http.Handler

	mu    sync.Mutex
	rules []string
}

func (rr *ruleRecorder) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/api/v1/select" && r.Method == http.MethodPost {
		body, _ := io.ReadAll(r.Body)
		r.Body = io.NopCloser(bytes.NewReader(body))
		var req struct {
			Rule string `json:"rule"`
		}
		json.Unmarshal(body, &req)
		rr.mu.Lock()
		rr.rules = append(rr.rules, req.Rule)
		rr.mu.Unlock()
	}
	rr.next.ServeHTTP(w, r)
}

func (rr *ruleRecorder) seen() []string {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	return append([]string(nil), rr.rules...)
}

// TestCoordinatorRulePassthrough: a 2-shard cluster honors a per-request rule
// end to end — every shard's round-1 request carries the rule, the merged
// response is stamped with it, and the selection equals the in-process
// two-round plan running the same rule (users and score alike).
func TestCoordinatorRulePassthrough(t *testing.T) {
	ix, gcfg := buildGlobal(t, 300, 7)
	plan, err := NewPlan(ix, gcfg, Options{Shards: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	scfg := gcfg
	scfg.FixedBuckets = ix.BucketBoundaries()
	recorders := make([]*ruleRecorder, len(plan.Shards))
	urls := make([]string, len(plan.Shards))
	for i, sh := range plan.Shards {
		recorders[i] = &ruleRecorder{next: server.New("shard", sh.Repo, scfg, nil)}
		ts := httptest.NewServer(recorders[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
	}
	base := server.New("coordinator", ix.Repo(), gcfg, nil)
	coord := NewCoordinator(base, urls, CoordinatorOptions{
		Resilience: client.ResilienceOptions{
			Retry: client.RetryOptions{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 1},
		},
		Poll: 10 * time.Millisecond,
	})
	ts := httptest.NewServer(coord)
	t.Cleanup(ts.Close)
	c := client.New(ts.URL, nil)

	repo := plan.Global.Repo()
	inst := groups.NewInstance(plan.Global, groups.WeightLBS, groups.CoverSingle, 5)
	for _, name := range core.RuleNames() {
		sel, err := c.Select(client.SelectRequest{Budget: 5, Rule: name})
		if err != nil {
			t.Fatalf("rule %s: %v", name, err)
		}
		rl := core.MustRule(name)
		wantRule := name
		if rl.IsDefault() {
			wantRule = "" // default responses stay unstamped, single-node parity
		}
		if sel.Rule != wantRule {
			t.Fatalf("rule %s: response stamped %q, want %q", name, sel.Rule, wantRule)
		}
		if sel.Degraded {
			t.Fatalf("rule %s: healthy fan-out reported degraded: %+v", name, sel.Shards)
		}

		// Every shard's round-1 request carried the rule.
		for i, rr := range recorders {
			seen := rr.seen()
			if len(seen) == 0 || seen[len(seen)-1] != name {
				t.Fatalf("rule %s: shard %d round-1 requests %v do not end with the rule", name, i, seen)
			}
		}

		// The HTTP merge equals the in-process two-round plan under the rule.
		local, err := plan.SelectRule(groups.WeightLBS, groups.CoverSingle, 5, rl, core.Options{})
		if err != nil {
			t.Fatalf("rule %s: local plan: %v", name, err)
		}
		if len(sel.Users) != len(local.Merged.Users) {
			t.Fatalf("rule %s: coordinator selected %d users, local plan %d", name, len(sel.Users), len(local.Merged.Users))
		}
		for i, u := range local.Merged.Users {
			if sel.Users[i].Name != repo.UserName(u) {
				t.Fatalf("rule %s pick %d: coordinator %q, local %q", name, i, sel.Users[i].Name, repo.UserName(u))
			}
		}
		// The response score is always the paper's coverage objective on the
		// selected set (Result.Score carries the rule's own credit sum) —
		// same convention as single-node buildSelectResponse.
		if want := inst.Score(local.Merged.Users); sel.Score != want {
			t.Fatalf("rule %s: coordinator score %v, want instance score %v", name, sel.Score, want)
		}
	}
}

// TestCoordinatorRuleErrors: the coordinator applies the same request gates
// as a single node — unknown rules and EBS-incompatible rules are envelope
// 400s, not degraded fan-outs or misleading 503s.
func TestCoordinatorRuleErrors(t *testing.T) {
	h := newCoordHarness(t, 200, 2)
	c := h.client(t)

	_, err := c.Select(client.SelectRequest{Budget: 3, Rule: "nope"})
	apiErr, ok := client.AsAPIError(err)
	if !ok || apiErr.Status != 400 || apiErr.Code != "invalid_argument" {
		t.Fatalf("unknown rule error = %v (%+v)", err, apiErr)
	}

	_, err = c.Select(client.SelectRequest{Budget: 3, Weights: "ebs", Rule: "harmonic"})
	apiErr, ok = client.AsAPIError(err)
	if !ok || apiErr.Status != 400 || apiErr.Code != "invalid_argument" {
		t.Fatalf("ebs-incompatible rule error = %v (%+v)", err, apiErr)
	}
}

// TestPlanSelectRuleMatchesDefault: SelectRule(nil) and SelectRule(coverage)
// reproduce the legacy Select path exactly — winners, candidates, and merge.
func TestPlanSelectRuleMatchesDefault(t *testing.T) {
	ix, gcfg := buildGlobal(t, 400, 11)
	plan, err := NewPlan(ix, gcfg, Options{Shards: 3, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := plan.Select(groups.WeightLBS, groups.CoverSingle, 6, core.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, rl := range []*core.Rule{nil, core.MustRule("coverage")} {
		got, err := plan.SelectRule(groups.WeightLBS, groups.CoverSingle, 6, rl, core.Options{Parallelism: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Merged.Users) != len(legacy.Merged.Users) || got.Merged.Score != legacy.Merged.Score {
			t.Fatalf("SelectRule(%v) merged %d users score %v, legacy %d users score %v",
				rl, len(got.Merged.Users), got.Merged.Score, len(legacy.Merged.Users), legacy.Merged.Score)
		}
		for i := range got.Merged.Users {
			if got.Merged.Users[i] != legacy.Merged.Users[i] {
				t.Fatalf("SelectRule(%v) pick %d = %d, legacy %d", rl, i, got.Merged.Users[i], legacy.Merged.Users[i])
			}
		}
	}
}
