package shard

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"podium/internal/client"
	"podium/internal/server"
)

// replicaHarness is a coordinator over replicated httptest-backed shard
// servers: servers[si][ri] is replica ri of shard si, each an independent
// server over the same shard repository.
type replicaHarness struct {
	plan    *Plan
	coord   *Coordinator
	servers [][]*httptest.Server
}

func newReplicaHarness(t *testing.T, users, shards, replicas int) *replicaHarness {
	t.Helper()
	ix, gcfg := buildGlobal(t, users, 5)
	plan, err := NewPlan(ix, gcfg, Options{Shards: shards, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	h := &replicaHarness{plan: plan}
	scfg := gcfg
	scfg.FixedBuckets = ix.BucketBoundaries()
	specs := make([]string, len(plan.Shards))
	for i, sh := range plan.Shards {
		group := make([]*httptest.Server, replicas)
		urls := make([]string, replicas)
		for r := 0; r < replicas; r++ {
			srv := server.New("shard", sh.Repo, scfg, nil)
			ts := httptest.NewServer(srv)
			t.Cleanup(ts.Close)
			group[r] = ts
			urls[r] = ts.URL
		}
		h.servers = append(h.servers, group)
		specs[i] = strings.Join(urls, "|")
	}
	base := server.New("coordinator", ix.Repo(), gcfg, nil)
	h.coord = NewCoordinator(base, specs, CoordinatorOptions{
		Resilience: client.ResilienceOptions{
			Retry: client.RetryOptions{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 1},
		},
		Health: HealthOptions{ProbeTimeout: time.Second, MinHedge: 5 * time.Millisecond, MaxHedge: 50 * time.Millisecond, Seed: 7},
		Poll:   10 * time.Millisecond,
	})
	return h
}

// rawSelect posts a select to the coordinator and returns the raw response
// bytes, for bit-identity assertions.
func (h *replicaHarness) rawSelect(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Post(url+"/api/v1/select", "application/json", strings.NewReader(`{"budget":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("select HTTP %d: %s", resp.StatusCode, body)
	}
	return body
}

// TestRegistryProbesReplicas: a probe round marks every replica up with its
// population; killing one replica flips it down within FailTolerance rounds
// while the shard roll-up stays healthy.
func TestRegistryProbesReplicas(t *testing.T) {
	h := newReplicaHarness(t, 200, 2, 2)
	reg := h.coord.Registry()
	ctx := context.Background()

	reg.ProbeAll(ctx)
	for si, rows := range reg.Snapshot() {
		for _, rep := range rows {
			if !rep.Healthy || rep.Users == 0 {
				t.Fatalf("shard %d replica %s unhealthy after probe: %+v", si, rep.URL, rep)
			}
		}
	}
	if u := reg.shardUsers(0) + reg.shardUsers(1); u != 200 {
		t.Fatalf("probed shard populations sum to %d, want 200", u)
	}

	h.servers[0][0].Close()
	for i := 0; i < 2; i++ { // FailTolerance defaults to 2
		reg.ProbeAll(ctx)
	}
	rows := reg.Snapshot()[0]
	var dead, alive int
	for _, rep := range rows {
		if rep.Healthy {
			alive++
		} else {
			dead++
			if rep.URL != h.servers[0][0].URL {
				t.Fatalf("wrong replica marked down: %s", rep.URL)
			}
		}
	}
	if dead != 1 || alive != 1 {
		t.Fatalf("replica health after kill: %d dead %d alive, want 1/1", dead, alive)
	}
	if reg.shardUsers(0) == 0 {
		t.Fatal("shard population lost with a replica still alive")
	}
	// The dead replica sorts last but is never excluded.
	ranked := reg.ranked(0)
	if len(ranked) != 2 || ranked[0].url != h.servers[0][1].URL {
		t.Fatalf("ranked does not prefer the live replica: %s first", ranked[0].url)
	}
}

// TestReplicaFailoverBitIdentical: killing one replica of EVERY shard leaves
// selections exact — same bytes as the healthy cluster, degraded:false —
// because siblings hold identical data and the response reports shards, not
// serving replicas.
func TestReplicaFailoverBitIdentical(t *testing.T) {
	h := newReplicaHarness(t, 300, 3, 2)
	ts := httptest.NewServer(h.coord)
	t.Cleanup(ts.Close)

	healthy := h.rawSelect(t, ts.URL)
	for _, group := range h.servers {
		group[0].Close() // first replica of every shard
	}
	lost := h.rawSelect(t, ts.URL)

	if !bytes.Equal(healthy, lost) {
		t.Fatalf("selection changed under single-replica loss:\nhealthy: %s\nlost:    %s", healthy, lost)
	}
	if bytes.Contains(lost, []byte(`"degraded":true`)) {
		t.Fatal("single-replica loss reported degraded")
	}
}

// TestReplicaGroupDegradedOnlyWhenAllFail: with one shard's full group down
// the response degrades (but succeeds); with every group fully down the
// coordinator 503s with the unified error envelope.
func TestReplicaGroupDegradedOnlyWhenAllFail(t *testing.T) {
	h := newReplicaHarness(t, 200, 2, 2)
	ts := httptest.NewServer(h.coord)
	t.Cleanup(ts.Close)
	c := client.New(ts.URL, nil)

	for _, rep := range h.servers[1] {
		rep.Close() // entire group of shard 1
	}
	sel, err := c.Select(client.SelectRequest{Budget: 4})
	if err != nil {
		t.Fatalf("select with one live group must succeed: %v", err)
	}
	if !sel.Degraded {
		t.Fatal("full group loss not reported degraded")
	}

	for _, rep := range h.servers[0] {
		rep.Close()
	}
	if _, err := c.Select(client.SelectRequest{Budget: 4}); err == nil {
		t.Fatal("select succeeded with every replica of every shard down")
	}
}

// TestShardsEndpointReportsReplicas: /api/v1/shards rolls up per-shard
// health and carries the per-replica detail, including the downed replica.
func TestShardsEndpointReportsReplicas(t *testing.T) {
	h := newReplicaHarness(t, 200, 2, 2)
	ts := httptest.NewServer(h.coord)
	t.Cleanup(ts.Close)
	h.servers[1][1].Close()

	var health []struct {
		URL      string        `json:"url"`
		OK       bool          `json:"ok"`
		Users    int           `json:"users"`
		Epoch    uint64        `json:"epoch"`
		Replicas []ReplicaInfo `json:"replicas"`
	}
	// Two fetches: the second probe round crosses the fail tolerance for
	// the killed replica.
	for i := 0; i < 2; i++ {
		if err := getJSON(t, ts.URL+"/api/v1/shards", &health); err != nil {
			t.Fatal(err)
		}
	}
	if len(health) != 2 {
		t.Fatalf("health rows = %d, want 2", len(health))
	}
	total := 0
	for si, row := range health {
		if !row.OK {
			t.Fatalf("shard %d unhealthy with a live replica: %+v", si, row)
		}
		if len(row.Replicas) != 2 {
			t.Fatalf("shard %d reports %d replicas, want 2", si, len(row.Replicas))
		}
		total += row.Users
	}
	total0 := 0
	for _, rep := range health[0].Replicas {
		if !rep.Healthy {
			t.Fatalf("healthy replica reported down: %+v", rep)
		}
		total0++
	}
	downed := 0
	for _, rep := range health[1].Replicas {
		if !rep.Healthy {
			downed++
			if rep.URL != h.servers[1][1].URL {
				t.Fatalf("wrong replica reported down: %s", rep.URL)
			}
		}
	}
	if downed != 1 {
		t.Fatalf("shard 1 reports %d downed replicas, want 1", downed)
	}
	if total != 200 {
		t.Fatalf("shard populations sum to %d, want 200", total)
	}
}

// TestCampaignFanoutSurvivesReplicaLoss: campaign creation (non-idempotent,
// failover-only routing) still lands every shard's wave with one replica of
// each group dead.
func TestCampaignFanoutSurvivesReplicaLoss(t *testing.T) {
	h := newReplicaHarness(t, 200, 2, 2)
	ts := httptest.NewServer(h.coord)
	t.Cleanup(ts.Close)
	for _, group := range h.servers {
		group[0].Close()
	}

	var agg struct {
		Degraded bool `json:"degraded"`
		Accepted int  `json:"accepted"`
		Shards   []struct {
			State   string `json:"state"`
			Replica string `json:"replica"`
		} `json:"shards"`
	}
	if err := postJSON(t, ts.URL+"/api/v1/campaigns", `{"budget":6,"time_scale":0.01,"non_response":0,"decline":0}`, &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Degraded {
		t.Fatal("campaign degraded with a live replica per shard")
	}
	if agg.Accepted == 0 {
		t.Fatal("campaign accepted no users")
	}
	for si, row := range agg.Shards {
		if row.State != "converged" && row.State != "exhausted" {
			t.Fatalf("shard %d campaign not terminal: %+v", si, row)
		}
		if row.Replica != h.servers[si][1].URL {
			t.Fatalf("shard %d wave served by %q, want surviving replica %q", si, row.Replica, h.servers[si][1].URL)
		}
	}
}
