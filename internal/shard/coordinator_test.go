package shard

import (
	"net/http/httptest"
	"testing"
	"time"

	"podium/internal/client"
	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/server"
)

// coordHarness is a coordinator over httptest-backed shard servers built
// from one partitioned population.
type coordHarness struct {
	plan    *Plan
	coord   *Coordinator
	servers []*httptest.Server
}

func newCoordHarness(t *testing.T, users, shards int) *coordHarness {
	t.Helper()
	ix, gcfg := buildGlobal(t, users, 5)
	plan, err := NewPlan(ix, gcfg, Options{Shards: shards, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	h := &coordHarness{plan: plan}
	urls := make([]string, len(plan.Shards))
	// Shard servers pin the global bucket boundaries, like the CLI's shard
	// mode: re-deriving cuts from a shard's local score distribution would
	// misalign its groups with the coordinator's merge instance.
	scfg := gcfg
	scfg.FixedBuckets = ix.BucketBoundaries()
	for i, sh := range plan.Shards {
		srv := server.New("shard", sh.Repo, scfg, nil)
		ts := httptest.NewServer(srv)
		t.Cleanup(ts.Close)
		h.servers = append(h.servers, ts)
		urls[i] = ts.URL
	}
	base := server.New("coordinator", ix.Repo(), gcfg, nil)
	h.coord = NewCoordinator(base, urls, CoordinatorOptions{
		Resilience: client.ResilienceOptions{
			Retry: client.RetryOptions{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond, Seed: 1},
		},
		Poll: 10 * time.Millisecond,
	})
	return h
}

func (h *coordHarness) client(t *testing.T) *client.Client {
	t.Helper()
	ts := httptest.NewServer(h.coord)
	t.Cleanup(ts.Close)
	return client.New(ts.URL, nil)
}

// TestCoordinatorMergesShardWinners: a fanned-out select equals the local
// two-round plan bit for bit, reports every shard healthy with its epoch,
// and the client's transparent Select decodes it.
func TestCoordinatorMergesShardWinners(t *testing.T) {
	h := newCoordHarness(t, 300, 3)
	c := h.client(t)

	sel, err := c.Select(client.SelectRequest{Budget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sel.Degraded {
		t.Fatalf("healthy fan-out reported degraded: %+v", sel.Shards)
	}
	if len(sel.Shards) != 3 {
		t.Fatalf("shard reports = %d, want 3", len(sel.Shards))
	}
	for _, sh := range sel.Shards {
		if !sh.OK || sh.Winners == 0 {
			t.Fatalf("shard report not healthy: %+v", sh)
		}
		// Immutable shard servers publish epoch 0; the field's presence is
		// what matters here (mutable shards surface real epochs — see the
		// chaos suite).
	}

	// The HTTP merge equals the local executor's two-round result.
	local, err := h.plan.Select(groups.WeightLBS, groups.CoverSingle, 5, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Users) != len(local.Merged.Users) {
		t.Fatalf("coordinator selected %d users, local plan %d", len(sel.Users), len(local.Merged.Users))
	}
	repo := h.plan.Global.Repo()
	for i, u := range local.Merged.Users {
		if sel.Users[i].Name != repo.UserName(u) {
			t.Fatalf("pick %d: coordinator %q, local %q", i, sel.Users[i].Name, repo.UserName(u))
		}
	}
	if sel.Score != local.Merged.Score {
		t.Fatalf("coordinator score %v, local %v", sel.Score, local.Merged.Score)
	}
}

// TestCoordinatorDegradedMerge: killing a shard mid-operation degrades the
// response — fewer candidates, degraded flag, per-shard error — but stays a
// successful selection over the survivors.
func TestCoordinatorDegradedMerge(t *testing.T) {
	h := newCoordHarness(t, 300, 3)
	c := h.client(t)
	h.servers[1].Close() // shard down before the wave

	sel, err := c.Select(client.SelectRequest{Budget: 5})
	if err != nil {
		t.Fatalf("degraded select must succeed, got %v", err)
	}
	if !sel.Degraded {
		t.Fatal("response not marked degraded with a shard down")
	}
	okShards, failed := 0, 0
	for _, sh := range sel.Shards {
		if sh.OK {
			okShards++
		} else {
			failed++
			if sh.Error == "" {
				t.Fatalf("failed shard carries no error: %+v", sh)
			}
		}
	}
	if okShards != 2 || failed != 1 {
		t.Fatalf("shard reports ok=%d failed=%d, want 2/1", okShards, failed)
	}
	if len(sel.Users) == 0 || sel.Score <= 0 {
		t.Fatalf("degraded selection is empty: %d users score %v", len(sel.Users), sel.Score)
	}
}

// TestCoordinatorAllShardsDown: total loss is the one case that errors.
func TestCoordinatorAllShardsDown(t *testing.T) {
	h := newCoordHarness(t, 120, 2)
	c := h.client(t)
	for _, ts := range h.servers {
		ts.Close()
	}
	if _, err := c.Select(client.SelectRequest{Budget: 3}); err == nil {
		t.Fatal("select succeeded with every shard down")
	}
}

// TestCoordinatorRejectsShardLocalConcepts: feedback and named configs carry
// shard-local group ids and must 400, not silently mis-merge.
func TestCoordinatorRejectsShardLocalConcepts(t *testing.T) {
	h := newCoordHarness(t, 120, 2)
	c := h.client(t)
	if _, err := c.Select(client.SelectRequest{
		Budget:   3,
		Feedback: server.FeedbackJSON{MustHave: []int{1}},
	}); err == nil {
		t.Fatal("feedback-carrying select accepted by coordinator")
	}
	if _, err := c.Select(client.SelectRequest{Budget: 3, Config: "paper"}); err == nil {
		t.Fatal("named-config select accepted by coordinator")
	}
}

// TestCoordinatorShardsEndpoint: the health endpoint reports per-shard
// population and epochs, and the fall-through routes still serve.
func TestCoordinatorShardsEndpoint(t *testing.T) {
	h := newCoordHarness(t, 200, 2)
	c := h.client(t)

	var health []struct {
		URL   string `json:"url"`
		OK    bool   `json:"ok"`
		Users int    `json:"users"`
		Epoch uint64 `json:"epoch"`
	}
	ts := httptest.NewServer(h.coord)
	t.Cleanup(ts.Close)
	cl := client.New(ts.URL, nil)
	_ = cl
	if err := getJSON(t, ts.URL+"/api/v1/shards", &health); err != nil {
		t.Fatal(err)
	}
	if len(health) != 2 {
		t.Fatalf("health rows = %d, want 2", len(health))
	}
	total := 0
	for _, row := range health {
		if !row.OK {
			t.Fatalf("shard unhealthy: %+v", row)
		}
		total += row.Users
	}
	if total != 200 {
		t.Fatalf("shard populations sum to %d, want 200", total)
	}

	// Fall-through: the coordinator still answers the base surface.
	st, err := c.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Users != 200 {
		t.Fatalf("fall-through status users = %d", st.Users)
	}
}

// TestCoordinatorCampaignFanout: a campaign wave fans to every shard with a
// proportional budget split and aggregates terminal summaries.
func TestCoordinatorCampaignFanout(t *testing.T) {
	h := newCoordHarness(t, 200, 2)
	ts := httptest.NewServer(h.coord)
	t.Cleanup(ts.Close)

	var agg struct {
		Degraded bool `json:"degraded"`
		Budget   int  `json:"budget"`
		Accepted int  `json:"accepted"`
		Shards   []struct {
			State  string `json:"state"`
			Budget int    `json:"budget"`
		} `json:"shards"`
	}
	if err := postJSON(t, ts.URL+"/api/v1/campaigns", `{"budget":6,"time_scale":0.01,"non_response":0,"decline":0}`, &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Degraded {
		t.Fatal("healthy campaign fan-out reported degraded")
	}
	if len(agg.Shards) != 2 {
		t.Fatalf("campaign rows = %d, want 2", len(agg.Shards))
	}
	splitTotal := 0
	for _, row := range agg.Shards {
		if row.State != "converged" && row.State != "exhausted" {
			t.Fatalf("shard campaign not terminal: %+v", row)
		}
		if row.Budget < 1 {
			t.Fatalf("shard got budget %d", row.Budget)
		}
		splitTotal += row.Budget
	}
	if splitTotal > 6+1 || splitTotal < 2 {
		t.Fatalf("budget split sums to %d for budget 6", splitTotal)
	}
	if agg.Accepted == 0 {
		t.Fatal("campaign accepted no users with decline and non-response at 0")
	}
}

// TestCoordinatorErrorEnvelope: every coordinator-origin error — the 503 on
// total shard loss, the 400s rejecting shard-local concepts — must carry the
// unified /api/v1 error envelope, so client.APIError decodes them and
// callers branch on Code/Status instead of string-matching. Regression: a
// coordinator writing bare-text errors would surface as an opaque transport
// error here.
func TestCoordinatorErrorEnvelope(t *testing.T) {
	h := newCoordHarness(t, 120, 2)
	c := h.client(t)

	// 400: feedback carries shard-local group IDs.
	_, err := c.Select(client.SelectRequest{Budget: 3, Feedback: server.FeedbackJSON{MustHave: []int{1}}})
	ae, ok := client.AsAPIError(err)
	if !ok {
		t.Fatalf("feedback rejection not an APIError: %v", err)
	}
	if ae.Status != 400 || ae.Code != server.CodeInvalidArgument {
		t.Fatalf("feedback rejection envelope = code %q status %d, want %q/400", ae.Code, ae.Status, server.CodeInvalidArgument)
	}

	// 400: named configs are shard-local too.
	if _, err := c.Select(client.SelectRequest{Budget: 3, Config: "paper"}); err == nil {
		t.Fatal("named-config select accepted")
	} else if ae, ok := client.AsAPIError(err); !ok || ae.Code != server.CodeInvalidArgument {
		t.Fatalf("named-config rejection envelope: %v", err)
	}

	// 503: total shard loss.
	for _, ts := range h.servers {
		ts.Close()
	}
	_, err = c.Select(client.SelectRequest{Budget: 3})
	ae, ok = client.AsAPIError(err)
	if !ok {
		t.Fatalf("total-loss error not an APIError: %v", err)
	}
	if ae.Status != 503 || ae.Code != server.CodeUnavailable {
		t.Fatalf("total-loss envelope = code %q status %d, want %q/503", ae.Code, ae.Status, server.CodeUnavailable)
	}
}
