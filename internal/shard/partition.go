// Package shard is the distributed selection subsystem: a consistent-hash
// partitioner that places users on shards and materializes per-shard columnar
// sub-repositories, a local executor running GreeDi-style two-round merge
// greedy over those shards, and an HTTP coordinator that fans selection and
// campaign waves out to remote shard servers and merges their winners.
//
// The layering mirrors the single-node stack: profile columns slice into
// shard columns, groups.Build indexes each slice against the *global* bucket
// boundaries (so a shard's groups are restrictions of the global groups, not
// re-derived partitions), core runs the per-shard and merge greedy rounds,
// and the coordinator speaks the same /api/v1 surface as any podium-server.
package shard

import (
	"fmt"
	"sort"

	"podium/internal/profile"
)

// ringPointsPerShard is the virtual-node multiplier of the consistent-hash
// ring. 64 points per shard keeps the max/min shard population ratio within
// a few percent at 16 shards without making ring construction or the
// per-user binary search noticeable.
const ringPointsPerShard = 64

// Partition places users on shards by consistent hashing over user IDs: each
// shard owns ringPointsPerShard pseudo-random points on a 64-bit ring, and a
// user belongs to the shard owning the first point at or after the user's
// own hash. Ownership is a pure function of (Shards, Seed, UserID) — two
// processes that agree on those agree on every placement without exchanging
// state, and growing the population never moves an existing user.
type Partition struct {
	Shards int
	Seed   uint64

	ring  []uint64 // sorted ring positions
	owner []int    // owner[i] is the shard owning ring[i]
}

// NewPartition builds the ring for S shards. Shards must be ≥ 1.
func NewPartition(shards int, seed uint64) (*Partition, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", shards)
	}
	p := &Partition{
		Shards: shards,
		Seed:   seed,
		ring:   make([]uint64, 0, shards*ringPointsPerShard),
		owner:  make([]int, 0, shards*ringPointsPerShard),
	}
	type point struct {
		pos   uint64
		shard int
	}
	points := make([]point, 0, shards*ringPointsPerShard)
	for s := 0; s < shards; s++ {
		for v := 0; v < ringPointsPerShard; v++ {
			h := splitmix64(seed ^ splitmix64(uint64(s)<<32|uint64(v)))
			points = append(points, point{pos: h, shard: s})
		}
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].pos != points[j].pos {
			return points[i].pos < points[j].pos
		}
		// A full-width hash collision between virtual nodes is vanishingly
		// rare; break it by shard so the ring stays deterministic anyway.
		return points[i].shard < points[j].shard
	})
	for _, pt := range points {
		p.ring = append(p.ring, pt.pos)
		p.owner = append(p.owner, pt.shard)
	}
	return p, nil
}

// Owner returns the shard owning user u.
func (p *Partition) Owner(u profile.UserID) int {
	h := splitmix64(p.Seed ^ splitmix64(uint64(u)))
	i := sort.Search(len(p.ring), func(i int) bool { return p.ring[i] >= h })
	if i == len(p.ring) {
		i = 0 // wrap: the ring is circular
	}
	return p.owner[i]
}

// Assign places users 0..n-1 on shards and returns the per-shard user lists,
// each ascending by user ID (the order a columnar slice preserves).
func (p *Partition) Assign(n int) [][]profile.UserID {
	out := make([][]profile.UserID, p.Shards)
	for u := 0; u < n; u++ {
		s := p.Owner(profile.UserID(u))
		out[s] = append(out[s], profile.UserID(u))
	}
	return out
}

// splitmix64 is the SplitMix64 finalizer — a cheap, well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
