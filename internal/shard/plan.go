package shard

import (
	"fmt"
	"sync"

	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/profile"
)

// Options configures a local sharding plan.
type Options struct {
	// Shards is the shard count S; 0 selects 1 (sharding disabled, the
	// merge round degenerates to exact greedy over round-1 winners).
	Shards int
	// Seed keys the consistent-hash ring. Every placement is a pure
	// function of (Shards, Seed, UserID), so two plans with equal values
	// shard identically.
	Seed uint64
}

// Shard is one partition of the population, indexed and selectable on its
// own: the local half of a shard server.
type Shard struct {
	ID int
	// Users maps local row → global user ID (ascending; row r of Repo is
	// global user Users[r]).
	Users []profile.UserID
	Repo  *profile.Repository
	Index *groups.Index
}

// Plan is a population partitioned into indexed shards plus the global index
// the merge round and the proof harness evaluate against.
type Plan struct {
	Part   *Partition
	Global *groups.Index
	Shards []*Shard
}

// NewPlan partitions the global index's population into opt.Shards shards
// and builds each shard's sub-repository and group index. Shard indexes are
// built with the global index's bucket boundaries pinned (Config.FixedBuckets),
// so a shard's groups are exact restrictions of the global groups — the
// alignment that makes round-1 shard scores commensurate with the global
// merge round. cfg should be the Config the global index was built with.
func NewPlan(global *groups.Index, cfg groups.Config, opt Options) (*Plan, error) {
	if opt.Shards == 0 {
		opt.Shards = 1
	}
	part, err := NewPartition(opt.Shards, opt.Seed)
	if err != nil {
		return nil, err
	}
	repo := global.Repo()
	labels, names, off, props, scores := repo.RawColumns()
	cfg.FixedBuckets = global.BucketBoundaries()
	assigned := part.Assign(repo.NumUsers())
	shards := make([]*Shard, opt.Shards)
	errs := make([]error, opt.Shards)
	var wg sync.WaitGroup
	for s := 0; s < opt.Shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sub, err := sliceRepo(labels, names, off, props, scores, assigned[s])
			if err != nil {
				errs[s] = fmt.Errorf("shard %d: %w", s, err)
				return
			}
			shards[s] = &Shard{
				ID:    s,
				Users: assigned[s],
				Repo:  sub,
				Index: groups.Build(sub, cfg),
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Plan{Part: part, Global: global, Shards: shards}, nil
}

// SelectResult is the outcome of a two-round sharded selection.
type SelectResult struct {
	// Merged is the second-round exact greedy over the candidate union,
	// evaluated on the global instance. Users are global IDs.
	Merged *core.Result
	// Winners[s] is shard s's round-1 selection in global IDs, in that
	// shard's pick order.
	Winners [][]profile.UserID
	// Candidates is the union the merge round selected from (winners
	// concatenated in shard order).
	Candidates []profile.UserID
}

// Select runs GreeDi two-round selection: round 1 greedily picks budget
// users on every shard (shards run concurrently across opt.Parallelism
// workers — the per-shard instance is the unit of parallelism here, not the
// per-pick argmax), round 2 runs exact greedy over the union of winners on
// the global instance. The result is deterministic for fixed (plan, schemes,
// budget): worker count never changes any pick.
func (p *Plan) Select(ws groups.WeightScheme, cs groups.CoverageScheme, budget int, opt core.Options) (*SelectResult, error) {
	return p.SelectRule(ws, cs, budget, nil, opt)
}

// SelectRule is Select under an explicit selection rule (nil selects the
// default coverage rule): both rounds — the per-shard greedy and the global
// merge — run the rule's credit schedule, so the GreeDi composition holds
// for the rule's own objective.
func (p *Plan) SelectRule(ws groups.WeightScheme, cs groups.CoverageScheme, budget int, rl *core.Rule, opt core.Options) (*SelectResult, error) {
	rl = rl.OrDefault()
	winners, err := p.roundOneRule(ws, cs, budget, rl, opt)
	if err != nil {
		return nil, err
	}
	res := &SelectResult{Winners: winners}
	for _, w := range winners {
		res.Candidates = append(res.Candidates, w...)
	}
	inst := groups.NewInstance(p.Global, ws, cs, budget)
	merged, err := core.MergeGreedyRule(inst, res.Candidates, budget, rl, opt)
	if err != nil {
		return nil, err
	}
	res.Merged = merged
	return res, nil
}

// Prove runs Select and the core proof harness on the same instance: the
// merged score against single-node exact greedy.
func (p *Plan) Prove(ws groups.WeightScheme, cs groups.CoverageScheme, budget int, opt core.Options) (*SelectResult, core.MergeProof, error) {
	winners, err := p.roundOneRule(ws, cs, budget, nil, opt)
	if err != nil {
		return nil, core.MergeProof{}, err
	}
	res := &SelectResult{Winners: winners}
	for _, w := range winners {
		res.Candidates = append(res.Candidates, w...)
	}
	inst := groups.NewInstance(p.Global, ws, cs, budget)
	merged, proof, err := core.ProveMerge(inst, res.Candidates, budget, opt)
	if err != nil {
		return nil, core.MergeProof{}, err
	}
	res.Merged = merged
	return res, proof, nil
}

// roundOneRule runs the per-shard greedy of size budget on every shard under
// rl's credit schedule, mapping winners back to global IDs. Shards execute
// across a worker pool sized by opt.Parallelism; each shard's greedy runs
// sequentially inside its worker (shard-level beats pick-level parallelism
// when S ≥ workers).
func (p *Plan) roundOneRule(ws groups.WeightScheme, cs groups.CoverageScheme, budget int, rl *core.Rule, opt core.Options) ([][]profile.UserID, error) {
	rl = rl.OrDefault()
	winners := make([][]profile.UserID, len(p.Shards))
	errs := make([]error, len(p.Shards))
	one := func(s int) {
		sh := p.Shards[s]
		if sh.Repo.NumUsers() == 0 {
			return
		}
		inst := groups.NewInstance(sh.Index, ws, cs, budget)
		// Timings deliberately stays unset: StageTimings is not safe for
		// concurrent runs, and round 1 is where shards overlap.
		var res *core.Result
		if rl.IsDefault() {
			res = core.GreedyOpts(inst, budget, core.Options{})
		} else {
			var err error
			res, err = core.GreedyRule(inst, budget, rl, core.Options{})
			if err != nil {
				errs[s] = fmt.Errorf("shard %d: %w", s, err)
				return
			}
		}
		w := make([]profile.UserID, len(res.Users))
		for i, local := range res.Users {
			w[i] = sh.Users[local]
		}
		winners[s] = w
	}
	workers := opt.Parallelism
	if workers > len(p.Shards) {
		workers = len(p.Shards)
	}
	if workers <= 1 {
		for s := range p.Shards {
			one(s)
		}
	} else {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for s := range work {
					one(s)
				}
			}()
		}
		for s := range p.Shards {
			work <- s
		}
		close(work)
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return winners, nil
}
