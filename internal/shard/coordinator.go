package shard

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"podium/internal/client"
	"podium/internal/core"
	"podium/internal/obs"
	"podium/internal/profile"
	"podium/internal/server"
)

// Coordinator is the distributed front of the sharded subsystem: an
// http.Handler that owns the *global* dataset (for the merge round and every
// read endpoint) and a resilient client per shard server. It intercepts
// selection and campaign requests, fans them out, and merges; everything
// else falls through to the wrapped server, so a coordinator answers the
// full /api/v1 surface a single-node server does.
//
// Failure semantics: a shard that errors through its retry/breaker budget is
// simply absent from the merge — its winners are not candidates, coverage
// degrades, and the response says so (degraded: true, per-shard reports) but
// is never an error. Only the total loss of every shard turns into a 503.
type Coordinator struct {
	base   *server.Server
	shards []*remoteShard
	met    *obs.ShardMetrics

	// poll is the campaign wait-poll interval (shortened in tests).
	poll time.Duration

	// nameID lazily maps global user names → IDs: shard winners come back
	// as names (IDs are shard-local rows) and the merge needs global IDs.
	nameOnce sync.Once
	nameID   map[string]profile.UserID
}

// remoteShard pairs a shard server's URL with its resilient client.
type remoteShard struct {
	url string
	c   *client.Client
}

// CoordinatorOptions configures the fan-out clients.
type CoordinatorOptions struct {
	// HTTPClient is the transport shared by the shard clients (nil selects
	// http.DefaultClient).
	HTTPClient *http.Client
	// Resilience tunes each shard client's retry policy and circuit
	// breaker. The zero value selects the client package defaults
	// (4 attempts, exponential backoff, no breaker).
	Resilience client.ResilienceOptions
	// Poll is the campaign wait-poll interval (default 100ms).
	Poll time.Duration
}

// NewCoordinator wraps base with a fan-out layer over the given shard
// server URLs. Shard metrics register on base's registry, so they surface
// through the wrapped server's /api/v1/metrics endpoint.
func NewCoordinator(base *server.Server, shardURLs []string, opt CoordinatorOptions) *Coordinator {
	co := &Coordinator{
		base: base,
		met:  obs.NewShardMetrics(base.Metrics()),
		poll: opt.Poll,
	}
	if co.poll <= 0 {
		co.poll = 100 * time.Millisecond
	}
	for _, u := range shardURLs {
		u = strings.TrimRight(strings.TrimSpace(u), "/")
		if u == "" {
			continue
		}
		co.shards = append(co.shards, &remoteShard{
			url: u,
			c:   client.NewResilient(u, opt.HTTPClient, opt.Resilience),
		})
	}
	co.met.Shards.Set(int64(len(co.shards)))
	return co
}

// ServeHTTP intercepts the fan-out routes (v1 and legacy aliases alike) and
// delegates everything else to the wrapped single-node server.
func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/api/v1/select", "/api/select":
		if r.Method != http.MethodPost {
			server.WriteError(w, r, http.StatusMethodNotAllowed, server.CodeMethodNotAllowed, "%s requires POST", r.URL.Path)
			return
		}
		co.handleSelect(w, r)
	case "/api/v1/shards":
		if r.Method != http.MethodGet {
			server.WriteError(w, r, http.StatusMethodNotAllowed, server.CodeMethodNotAllowed, "%s requires GET", r.URL.Path)
			return
		}
		co.handleShards(w, r)
	case "/api/v1/campaigns", "/api/campaigns":
		// Campaign creation fans out; listing stays with the base server.
		if r.Method != http.MethodPost {
			co.base.ServeHTTP(w, r)
			return
		}
		co.handleCampaigns(w, r)
	default:
		co.base.ServeHTTP(w, r)
	}
}

// coordSelectRequest is the subset of the select surface a coordinator
// accepts: the base selection parameters. Feedback and named configurations
// are rejected — feedback carries group IDs, which are shard-local.
type coordSelectRequest struct {
	Budget      int             `json:"budget"`
	Weights     string          `json:"weights"`
	Coverage    string          `json:"coverage"`
	Feedback    json.RawMessage `json:"feedback"`
	Config      string          `json:"config,omitempty"`
	TopK        int             `json:"top_k,omitempty"`
	Parallelism int             `json:"parallelism,omitempty"`
}

// shardOutcome is one shard's round-1 result.
type shardOutcome struct {
	report  client.ShardReport
	winners []string // winner names in pick order
}

func (co *Coordinator) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req coordSelectRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		server.WriteError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "decoding request: %v", err)
		return
	}
	if len(req.Feedback) > 0 && string(req.Feedback) != "null" && string(req.Feedback) != "{}" {
		server.WriteError(w, r, http.StatusBadRequest, server.CodeInvalidArgument,
			"feedback is not supported on a coordinator: group ids are shard-local")
		return
	}
	if req.Config != "" {
		server.WriteError(w, r, http.StatusBadRequest, server.CodeInvalidArgument,
			"named configurations are not supported on a coordinator")
		return
	}
	if req.Budget <= 0 {
		req.Budget = 8
	}
	if req.TopK <= 0 {
		req.TopK = 200
	}
	ws, err := server.ParseWeights(req.Weights)
	if err != nil {
		server.WriteError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "%v", err)
		return
	}
	cs, err := server.ParseCoverage(req.Coverage)
	if err != nil {
		server.WriteError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "%v", err)
		return
	}

	sp := obs.StartSpan("coordinator.select")
	fsp := sp.StartChild("fanout")
	start := time.Now()
	outcomes := co.fanoutSelect(client.SelectRequest{
		Budget:   req.Budget,
		Weights:  req.Weights,
		Coverage: req.Coverage,
		TopK:     1, // shard-side explanation stats are discarded; keep them cheap
	})
	co.met.Latency.Observe(time.Since(start).Seconds())
	fsp.End()

	var candidates []profile.UserID
	var reports []client.ShardReport
	live, degraded := 0, false
	for _, o := range outcomes {
		reports = append(reports, o.report)
		if !o.report.OK {
			degraded = true
			continue
		}
		live++
		for _, name := range o.winners {
			if id, ok := co.lookupUser(name); ok {
				candidates = append(candidates, id)
			}
		}
	}
	co.met.Live.Set(int64(live))
	if live == 0 {
		server.WriteError(w, r, http.StatusServiceUnavailable, server.CodeUnavailable,
			"all %d shards failed", len(co.shards))
		return
	}
	if degraded {
		co.met.Degraded.Inc()
	} else {
		co.met.Selects.Inc()
	}

	msp := sp.StartChild("merge")
	sn := co.base.Snapshot()
	inst := sn.Instance(ws, cs, req.Budget)
	res, err := core.MergeGreedy(inst, candidates, req.Budget, core.Options{Parallelism: req.Parallelism})
	msp.End()
	if err != nil {
		server.WriteError(w, r, http.StatusInternalServerError, server.CodeInternal, "merge: %v", err)
		return
	}
	sp.End()

	extra := map[string]interface{}{
		"degraded": degraded,
		"shards":   reports,
	}
	if r.URL.Query().Get("trace") == "1" || r.Header.Get("X-Podium-Trace") == "1" {
		extra["trace"] = sp.JSON()
	}
	data, err := sn.RenderSelection(ws, cs, req.Budget, req.TopK, res, extra)
	if err != nil {
		server.WriteError(w, r, http.StatusInternalServerError, server.CodeInternal, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// fanoutSelect runs round 1 on every shard concurrently: a status probe for
// the epoch, then the shard-local selection. A shard that fails either call
// (through its client's retry and breaker budget) comes back not-OK.
func (co *Coordinator) fanoutSelect(req client.SelectRequest) []shardOutcome {
	outcomes := make([]shardOutcome, len(co.shards))
	var wg sync.WaitGroup
	for i, sh := range co.shards {
		wg.Add(1)
		go func(i int, sh *remoteShard) {
			defer wg.Done()
			out := shardOutcome{report: client.ShardReport{URL: sh.url}}
			defer func() { outcomes[i] = out }()
			st, err := sh.c.Status()
			if err != nil {
				out.report.Error = err.Error()
				co.met.FanoutErrs.Inc()
				return
			}
			out.report.Epoch = st.Epoch
			sel, err := sh.c.Select(req)
			if err != nil {
				out.report.Error = err.Error()
				co.met.FanoutErrs.Inc()
				return
			}
			out.report.OK = true
			out.report.Winners = len(sel.Users)
			for _, u := range sel.Users {
				out.winners = append(out.winners, u.Name)
			}
			co.met.Fanouts.Inc()
		}(i, sh)
	}
	wg.Wait()
	return outcomes
}

// lookupUser resolves a global user name to its ID, building the name table
// on first use. Unknown names (a shard serving data the coordinator has
// never seen) are dropped from the merge rather than failing it.
func (co *Coordinator) lookupUser(name string) (profile.UserID, bool) {
	co.nameOnce.Do(func() {
		repo := co.base.Repository()
		co.nameID = make(map[string]profile.UserID, repo.NumUsers())
		for u := 0; u < repo.NumUsers(); u++ {
			co.nameID[repo.UserName(profile.UserID(u))] = profile.UserID(u)
		}
	})
	id, ok := co.nameID[name]
	return id, ok
}

// handleShards reports each shard's health and snapshot epoch.
func (co *Coordinator) handleShards(w http.ResponseWriter, r *http.Request) {
	type shardHealth struct {
		URL    string `json:"url"`
		OK     bool   `json:"ok"`
		Users  int    `json:"users"`
		Groups int    `json:"groups"`
		Epoch  uint64 `json:"epoch"`
		Error  string `json:"error,omitempty"`
	}
	out := make([]shardHealth, len(co.shards))
	var wg sync.WaitGroup
	live := 0
	var mu sync.Mutex
	for i, sh := range co.shards {
		wg.Add(1)
		go func(i int, sh *remoteShard) {
			defer wg.Done()
			h := shardHealth{URL: sh.url}
			if st, err := sh.c.Status(); err != nil {
				h.Error = err.Error()
			} else {
				h.OK, h.Users, h.Groups, h.Epoch = true, st.Users, st.Groups, st.Epoch
				mu.Lock()
				live++
				mu.Unlock()
			}
			out[i] = h
		}(i, sh)
	}
	wg.Wait()
	co.met.Live.Set(int64(live))
	server.WriteJSON(w, r, http.StatusOK, out)
}

// coordCampaignJSON is the aggregated response of a fanned-out campaign.
type coordCampaignJSON struct {
	Degraded bool               `json:"degraded"`
	Budget   int                `json:"budget"`
	Accepted int                `json:"accepted"`
	Declined int                `json:"declined"`
	Dead     int                `json:"dead"`
	Shards   []coordCampaignRow `json:"shards"`
}

type coordCampaignRow struct {
	URL      string  `json:"url"`
	ID       int     `json:"id"`
	State    string  `json:"state"`
	Budget   int     `json:"budget"`
	Accepted int     `json:"accepted"`
	Declined int     `json:"declined"`
	Dead     int     `json:"dead"`
	Coverage float64 `json:"coverage"`
	Error    string  `json:"error,omitempty"`
}

// handleCampaigns fans one solicitation campaign out to every shard,
// splitting the budget proportionally to shard populations, and waits for
// the per-shard campaigns to reach a terminal state. A shard that fails is
// reported and skipped — the aggregate is degraded, never an error, unless
// no shard accepted the wave at all.
func (co *Coordinator) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	var req client.CampaignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		server.WriteError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "decoding request: %v", err)
		return
	}
	if req.Budget <= 0 {
		req.Budget = 8
	}

	// Budget split: proportional to shard population, each live shard
	// getting at least 1. Populations come from the same status probe that
	// health-checks the shard.
	type probe struct {
		users int
		err   error
	}
	probes := make([]probe, len(co.shards))
	var wg sync.WaitGroup
	for i, sh := range co.shards {
		wg.Add(1)
		go func(i int, sh *remoteShard) {
			defer wg.Done()
			st, err := sh.c.Status()
			probes[i] = probe{users: st.Users, err: err}
		}(i, sh)
	}
	wg.Wait()
	total := 0
	for _, p := range probes {
		if p.err == nil {
			total += p.users
		}
	}
	if total == 0 {
		server.WriteError(w, r, http.StatusServiceUnavailable, server.CodeUnavailable,
			"no shard is reachable or populated")
		return
	}

	rows := make([]coordCampaignRow, len(co.shards))
	for i, sh := range co.shards {
		wg.Add(1)
		go func(i int, sh *remoteShard) {
			defer wg.Done()
			row := coordCampaignRow{URL: sh.url}
			defer func() { rows[i] = row }()
			if probes[i].err != nil {
				row.Error = probes[i].err.Error()
				co.met.FanoutErrs.Inc()
				return
			}
			sub := req
			sub.Budget = req.Budget * probes[i].users / total
			if sub.Budget < 1 {
				sub.Budget = 1
			}
			row.Budget = sub.Budget
			c, err := sh.c.CreateCampaign(r.Context(), sub)
			if err != nil {
				row.Error = err.Error()
				co.met.FanoutErrs.Inc()
				return
			}
			row.ID = c.ID
			if !c.Terminal() {
				c, err = sh.c.WaitCampaign(r.Context(), c.ID, co.poll)
				if err != nil {
					row.State, row.Error = "running", err.Error()
					co.met.FanoutErrs.Inc()
					return
				}
			}
			row.State = c.State
			row.Accepted = len(c.Accepted)
			row.Declined = len(c.Declined)
			row.Dead = len(c.Dead)
			row.Coverage = c.Coverage
			co.met.Fanouts.Inc()
		}(i, sh)
	}
	wg.Wait()

	agg := coordCampaignJSON{Budget: req.Budget, Shards: rows}
	for _, row := range rows {
		if row.Error != "" {
			agg.Degraded = true
			continue
		}
		agg.Accepted += row.Accepted
		agg.Declined += row.Declined
		agg.Dead += row.Dead
	}
	server.WriteJSON(w, r, http.StatusOK, agg)
}

// ShardURLs returns the configured shard servers, for logs and tests.
func (co *Coordinator) ShardURLs() []string {
	urls := make([]string, len(co.shards))
	for i, sh := range co.shards {
		urls[i] = sh.url
	}
	sort.Strings(urls)
	return urls
}

var _ http.Handler = (*Coordinator)(nil)

// String identifies the coordinator in logs.
func (co *Coordinator) String() string {
	return fmt.Sprintf("coordinator over %d shards", len(co.shards))
}
