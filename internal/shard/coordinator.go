package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"podium/internal/client"
	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/obs"
	"podium/internal/profile"
	"podium/internal/server"
)

// Coordinator is the distributed front of the sharded subsystem: an
// http.Handler that owns the *global* dataset (for the merge round and every
// read endpoint) and, per shard, a *replica group* — R servers holding
// identical slices of the population. It intercepts selection and campaign
// requests, routes each shard's call to the healthiest fresh replica (with
// failover and hedging, see Router), and merges; everything else falls
// through to the wrapped server, so a coordinator answers the full /api/v1
// surface a single-node server does.
//
// Failure semantics: a replica that errors fails over to its siblings; a
// shard is absent from the merge — degraded — only when *every* replica of
// its group has failed through its retry/breaker budget. Only the total loss
// of every shard turns into a 503.
//
// Response identity: select responses report shards, not replicas — the
// per-shard URL is the replica-group spec the coordinator was configured
// with (pipe-joined), never the replica that happened to serve the call.
// Replicas hold identical data and the greedy rounds are deterministic, so a
// merged selection is byte-identical no matter which replica of each group
// answered; the chaos suite asserts exactly that under replica loss.
// Per-replica health lives on /api/v1/shards.
type Coordinator struct {
	base *server.Server
	// spec is each shard's replica-group spec ("url" or "url1|url2"), the
	// shard's identity in select responses and campaign rows.
	spec []string
	reg  *Registry
	rt   *Router
	met  *obs.ShardMetrics

	// poll is the campaign wait-poll interval (shortened in tests).
	poll time.Duration

	// nameID lazily maps global user names → IDs: shard winners come back
	// as names (IDs are shard-local rows) and the merge needs global IDs.
	nameOnce sync.Once
	nameID   map[string]profile.UserID
}

// CoordinatorOptions configures the fan-out clients and the replica health
// model.
type CoordinatorOptions struct {
	// HTTPClient is the transport shared by the replica clients (nil selects
	// http.DefaultClient).
	HTTPClient *http.Client
	// Resilience tunes each replica client's retry policy and circuit
	// breaker. The zero value selects the client package defaults
	// (4 attempts, exponential backoff, no breaker).
	Resilience client.ResilienceOptions
	// Health tunes the replica registry and router (probe cadence, failure
	// tolerance, hedge deadline). The zero value selects the defaults
	// documented on HealthOptions.
	Health HealthOptions
	// Poll is the campaign wait-poll interval (default 100ms).
	Poll time.Duration
}

// NewCoordinator wraps base with a fan-out layer over the given shard specs.
// Each spec names one shard's replica group: either a single URL or several
// joined by "|" ("http://a:8080|http://b:8080"). Shard metrics register on
// base's registry, so they surface through the wrapped server's
// /api/v1/metrics endpoint.
//
// The background probe loop is NOT started here — call Registry().Start()
// (and Stop()) when the coordinator serves long-lived traffic. Without it
// the first fan-out runs one synchronous probe round and passive outcomes
// keep health moving.
func NewCoordinator(base *server.Server, shardSpecs []string, opt CoordinatorOptions) *Coordinator {
	co := &Coordinator{
		base: base,
		met:  obs.NewShardMetrics(base.Metrics()),
		poll: opt.Poll,
	}
	if co.poll <= 0 {
		co.poll = 100 * time.Millisecond
	}
	health := opt.Health.withDefaults()
	var groups [][]*replica
	replicas := 0
	for _, spec := range shardSpecs {
		var urls []string
		for _, u := range strings.Split(spec, "|") {
			u = strings.TrimRight(strings.TrimSpace(u), "/")
			if u != "" {
				urls = append(urls, u)
			}
		}
		if len(urls) == 0 {
			continue
		}
		si := len(groups)
		group := make([]*replica, len(urls))
		for i, u := range urls {
			group[i] = &replica{
				shard: si,
				url:   u,
				c:     client.NewResilient(u, opt.HTTPClient, opt.Resilience),
				probe: client.NewWithTimeout(u, opt.HTTPClient, health.ProbeTimeout),
			}
			group[i].upGauge = co.met.ReplicaUp(si, u)
			replicas++
		}
		groups = append(groups, group)
		co.spec = append(co.spec, strings.Join(urls, "|"))
	}
	co.reg = newRegistry(groups, health, co.met)
	co.rt = newRouter(co.reg)
	co.met.Shards.Set(int64(len(groups)))
	co.met.Replicas.Set(int64(replicas))
	return co
}

// Registry exposes the replica health registry, for starting the background
// probe loop and for tests.
func (co *Coordinator) Registry() *Registry { return co.reg }

// ServeHTTP intercepts the fan-out routes (v1 and legacy aliases alike) and
// delegates everything else to the wrapped single-node server.
func (co *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/api/v1/select", "/api/select":
		if r.Method != http.MethodPost {
			server.WriteError(w, r, http.StatusMethodNotAllowed, server.CodeMethodNotAllowed, "%s requires POST", r.URL.Path)
			return
		}
		co.handleSelect(w, r)
	case "/api/v1/shards":
		if r.Method != http.MethodGet {
			server.WriteError(w, r, http.StatusMethodNotAllowed, server.CodeMethodNotAllowed, "%s requires GET", r.URL.Path)
			return
		}
		co.handleShards(w, r)
	case "/api/v1/campaigns", "/api/campaigns":
		// Campaign creation fans out; listing stays with the base server.
		if r.Method != http.MethodPost {
			co.base.ServeHTTP(w, r)
			return
		}
		co.handleCampaigns(w, r)
	default:
		co.base.ServeHTTP(w, r)
	}
}

// coordSelectRequest is the subset of the select surface a coordinator
// accepts: the base selection parameters. Feedback and named configurations
// are rejected — feedback carries group IDs, which are shard-local.
type coordSelectRequest struct {
	Budget      int             `json:"budget"`
	Weights     string          `json:"weights"`
	Coverage    string          `json:"coverage"`
	Rule        string          `json:"rule,omitempty"`
	Feedback    json.RawMessage `json:"feedback"`
	Config      string          `json:"config,omitempty"`
	TopK        int             `json:"top_k,omitempty"`
	Parallelism int             `json:"parallelism,omitempty"`
}

// shardOutcome is one shard's round-1 result.
type shardOutcome struct {
	report  client.ShardReport
	winners []string // winner names in pick order
}

func (co *Coordinator) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req coordSelectRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		server.WriteError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "decoding request: %v", err)
		return
	}
	if len(req.Feedback) > 0 && string(req.Feedback) != "null" && string(req.Feedback) != "{}" {
		server.WriteError(w, r, http.StatusBadRequest, server.CodeInvalidArgument,
			"feedback is not supported on a coordinator: group ids are shard-local")
		return
	}
	if req.Config != "" {
		server.WriteError(w, r, http.StatusBadRequest, server.CodeInvalidArgument,
			"named configurations are not supported on a coordinator")
		return
	}
	if req.Budget <= 0 {
		req.Budget = 8
	}
	if req.TopK <= 0 {
		req.TopK = 200
	}
	ws, err := server.ParseWeights(req.Weights)
	if err != nil {
		server.WriteError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "%v", err)
		return
	}
	cs, err := server.ParseCoverage(req.Coverage)
	if err != nil {
		server.WriteError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "%v", err)
		return
	}
	rule, err := server.ParseRule(req.Rule)
	if err != nil {
		server.WriteError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "%v", err)
		return
	}
	if ws == groups.WeightEBS && !rule.EBSCompatible() {
		// Reject here rather than letting every shard 400 and surfacing a
		// misleading "all shards failed" 503.
		server.WriteError(w, r, http.StatusBadRequest, server.CodeInvalidArgument,
			"rule %q does not support EBS weights (exact rank arithmetic implements only the coverage objective)", rule.Name())
		return
	}

	sp := obs.StartSpan("coordinator.select")
	fsp := sp.StartChild("fanout")
	start := time.Now()
	// Round 1 runs under the same rule on every shard: GreeDi's guarantee
	// (and the per-rule merge below) needs the shard winners to be the
	// rule's own greedy picks, not the default objective's.
	outcomes := co.fanoutSelect(r, client.SelectRequest{
		Budget:   req.Budget,
		Weights:  req.Weights,
		Coverage: req.Coverage,
		Rule:     req.Rule,
		TopK:     1, // shard-side explanation stats are discarded; keep them cheap
	})
	co.met.Latency.Observe(time.Since(start).Seconds())
	fsp.End()

	var candidates []profile.UserID
	var reports []client.ShardReport
	live, degraded := 0, false
	for _, o := range outcomes {
		reports = append(reports, o.report)
		if !o.report.OK {
			degraded = true
			continue
		}
		live++
		for _, name := range o.winners {
			if id, ok := co.lookupUser(name); ok {
				candidates = append(candidates, id)
			}
		}
	}
	co.met.Live.Set(int64(live))
	if live == 0 {
		server.WriteError(w, r, http.StatusServiceUnavailable, server.CodeUnavailable,
			"all %d shards failed", len(co.spec))
		return
	}
	if degraded {
		co.met.Degraded.Inc()
	} else {
		co.met.Selects.Inc()
	}

	msp := sp.StartChild("merge")
	sn := co.base.Snapshot()
	inst := sn.Instance(ws, cs, req.Budget)
	res, err := core.MergeGreedyRule(inst, candidates, req.Budget, rule, core.Options{Parallelism: req.Parallelism})
	msp.End()
	if err != nil {
		server.WriteError(w, r, http.StatusInternalServerError, server.CodeInternal, "merge: %v", err)
		return
	}
	sp.End()

	extra := map[string]interface{}{
		"degraded": degraded,
		"shards":   reports,
	}
	if r.URL.Query().Get("trace") == "1" || r.Header.Get("X-Podium-Trace") == "1" {
		extra["trace"] = sp.JSON()
	}
	data, err := sn.RenderSelection(ws, cs, req.Budget, req.TopK, rule, res, extra)
	if err != nil {
		server.WriteError(w, r, http.StatusInternalServerError, server.CodeInternal, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(data)
}

// fanoutSelect runs round 1 on every shard concurrently, each shard's call
// routed across its replica group with failover and hedging. A shard whose
// every replica fails comes back not-OK; reported epochs are the registry's
// reconciled (freshest known) epoch per shard, so a lagging replica cannot
// misstamp the merge.
func (co *Coordinator) fanoutSelect(r *http.Request, req client.SelectRequest) []shardOutcome {
	ctx := r.Context()
	co.reg.ensureProbed(ctx)
	outcomes := make([]shardOutcome, len(co.spec))
	var wg sync.WaitGroup
	for i := range co.spec {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out := shardOutcome{report: client.ShardReport{URL: co.spec[i], Epoch: co.reg.shardEpoch(i)}}
			defer func() { outcomes[i] = out }()
			v, _, err := co.rt.Do(ctx, i, func(ctx context.Context, c *client.Client) (interface{}, error) {
				return c.SelectCtx(ctx, req)
			})
			if err != nil {
				out.report.Error = err.Error()
				co.met.FanoutErrs.Inc()
				return
			}
			sel := v.(client.Selection)
			out.report.OK = true
			out.report.Winners = len(sel.Users)
			for _, u := range sel.Users {
				out.winners = append(out.winners, u.Name)
			}
			co.met.Fanouts.Inc()
		}(i)
	}
	wg.Wait()
	return outcomes
}

// lookupUser resolves a global user name to its ID, building the name table
// on first use. Unknown names (a shard serving data the coordinator has
// never seen) are dropped from the merge rather than failing it.
func (co *Coordinator) lookupUser(name string) (profile.UserID, bool) {
	co.nameOnce.Do(func() {
		repo := co.base.Repository()
		co.nameID = make(map[string]profile.UserID, repo.NumUsers())
		for u := 0; u < repo.NumUsers(); u++ {
			co.nameID[repo.UserName(profile.UserID(u))] = profile.UserID(u)
		}
	})
	id, ok := co.nameID[name]
	return id, ok
}

// handleShards runs a synchronous probe round and reports each shard's
// health: the shard-level roll-up (ok when ANY replica is healthy, users and
// epoch from the healthiest record) plus the per-replica detail.
func (co *Coordinator) handleShards(w http.ResponseWriter, r *http.Request) {
	type shardHealth struct {
		URL      string        `json:"url"`
		OK       bool          `json:"ok"`
		Users    int           `json:"users"`
		Groups   int           `json:"groups"`
		Epoch    uint64        `json:"epoch"`
		Replicas []ReplicaInfo `json:"replicas"`
		Error    string        `json:"error,omitempty"`
	}
	co.reg.ProbeAll(r.Context())
	snap := co.reg.Snapshot()
	out := make([]shardHealth, len(snap))
	live := 0
	for si, rows := range snap {
		h := shardHealth{URL: co.spec[si], Epoch: co.reg.shardEpoch(si), Replicas: rows}
		for _, rep := range rows {
			if !rep.Healthy {
				continue
			}
			if !h.OK {
				h.Users, h.Groups = rep.Users, rep.Groups
			}
			h.OK = true
		}
		if h.OK {
			live++
		} else {
			h.Error = fmt.Sprintf("all %d replicas unhealthy", len(rows))
		}
		out[si] = h
	}
	co.met.Live.Set(int64(live))
	server.WriteJSON(w, r, http.StatusOK, out)
}

// coordCampaignJSON is the aggregated response of a fanned-out campaign.
type coordCampaignJSON struct {
	Degraded bool               `json:"degraded"`
	Budget   int                `json:"budget"`
	Accepted int                `json:"accepted"`
	Declined int                `json:"declined"`
	Dead     int                `json:"dead"`
	Shards   []coordCampaignRow `json:"shards"`
}

type coordCampaignRow struct {
	URL string `json:"url"`
	// Replica is the replica that accepted the wave; follow-up polling is
	// pinned to it (a sibling has no record of the campaign ID).
	Replica  string  `json:"replica,omitempty"`
	ID       int     `json:"id"`
	State    string  `json:"state"`
	Budget   int     `json:"budget"`
	Accepted int     `json:"accepted"`
	Declined int     `json:"declined"`
	Dead     int     `json:"dead"`
	Coverage float64 `json:"coverage"`
	Error    string  `json:"error,omitempty"`
}

// handleCampaigns fans one solicitation campaign out to every shard,
// splitting the budget proportionally to shard populations, and waits for
// the per-shard campaigns to reach a terminal state. Campaign creation is
// not idempotent (a duplicate wave would double-solicit users), so it routes
// sequentially — failover only, never a hedge — and the wait is pinned to
// the replica that accepted the wave. A shard that fails entirely is
// reported and skipped — the aggregate is degraded, never an error, unless
// no shard accepted the wave at all.
func (co *Coordinator) handleCampaigns(w http.ResponseWriter, r *http.Request) {
	var req client.CampaignRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		server.WriteError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "decoding request: %v", err)
		return
	}
	if req.Budget <= 0 {
		req.Budget = 8
	}

	// Budget split: proportional to shard population, each live shard
	// getting at least 1. Populations come from a fresh probe round — the
	// same probes that drive the health registry.
	co.reg.ProbeAll(r.Context())
	users := make([]int, len(co.spec))
	total := 0
	for i := range co.spec {
		users[i] = co.reg.shardUsers(i)
		total += users[i]
	}
	if total == 0 {
		server.WriteError(w, r, http.StatusServiceUnavailable, server.CodeUnavailable,
			"no shard is reachable or populated")
		return
	}

	rows := make([]coordCampaignRow, len(co.spec))
	var wg sync.WaitGroup
	for i := range co.spec {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			row := coordCampaignRow{URL: co.spec[i]}
			defer func() { rows[i] = row }()
			if users[i] == 0 {
				row.Error = "no replica reachable or populated"
				co.met.FanoutErrs.Inc()
				return
			}
			sub := req
			sub.Budget = req.Budget * users[i] / total
			if sub.Budget < 1 {
				sub.Budget = 1
			}
			row.Budget = sub.Budget
			v, rep, err := co.rt.DoSequential(r.Context(), i, func(ctx context.Context, c *client.Client) (interface{}, error) {
				return c.CreateCampaign(ctx, sub)
			})
			if err != nil {
				row.Error = err.Error()
				co.met.FanoutErrs.Inc()
				return
			}
			c := v.(client.Campaign)
			row.ID, row.Replica = c.ID, rep.url
			if !c.Terminal() {
				// Pinned to the accepting replica: campaign IDs are
				// replica-local state.
				c, err = rep.c.WaitCampaign(r.Context(), c.ID, co.poll)
				co.reg.Observe(rep, err)
				if err != nil {
					row.State, row.Error = "running", err.Error()
					co.met.FanoutErrs.Inc()
					return
				}
			}
			row.State = c.State
			row.Accepted = len(c.Accepted)
			row.Declined = len(c.Declined)
			row.Dead = len(c.Dead)
			row.Coverage = c.Coverage
			co.met.Fanouts.Inc()
		}(i)
	}
	wg.Wait()

	agg := coordCampaignJSON{Budget: req.Budget, Shards: rows}
	for _, row := range rows {
		if row.Error != "" {
			agg.Degraded = true
			continue
		}
		agg.Accepted += row.Accepted
		agg.Declined += row.Declined
		agg.Dead += row.Dead
	}
	server.WriteJSON(w, r, http.StatusOK, agg)
}

// ShardURLs returns the configured shard replica-group specs, for logs and
// tests.
func (co *Coordinator) ShardURLs() []string {
	specs := make([]string, len(co.spec))
	copy(specs, co.spec)
	sort.Strings(specs)
	return specs
}

var _ http.Handler = (*Coordinator)(nil)

// String identifies the coordinator in logs.
func (co *Coordinator) String() string {
	n := 0
	for _, g := range co.reg.groups {
		n += len(g)
	}
	return fmt.Sprintf("coordinator over %d shards (%d replicas)", len(co.spec), n)
}
