// Package faults is a deterministic fault injector for the serving stack:
// it wraps HTTP handlers (server side) and round trippers (client side) to
// inject latency, 5xx errors, connection resets and mid-write response
// truncation at configured rates. Every decision is a pure function of
// (seed, request index) via stats.Derive, so a chaos run with a given seed
// injects the same fault sequence every time — the serving counterpart of
// the campaign orchestrator's deterministic population.
//
// The injector exists to *prove* the hardened serving layer's invariants:
// the chaos suite hammers a server through an Injector and asserts that no
// acknowledged mutation is lost, snapshot reads keep serving, and resilient
// clients eventually succeed. podium-server exposes it behind the -faults
// flag for end-to-end chaos drills.
package faults

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"podium/internal/stats"
)

// Class is one kind of injected fault.
type Class uint8

const (
	// None: the request is passed through untouched.
	None Class = iota
	// Latency: the request is delayed by Config.LatencyMs before handling.
	Latency
	// Error: the request is rejected with 503 + Retry-After before it
	// reaches the handler (the mutation, if any, is never applied).
	Error
	// Reset: the connection is aborted before the handler runs — the client
	// sees a transport error, never a status code.
	Reset
	// Truncate: the handler runs (mutations apply!) but the response body is
	// cut mid-write and the connection aborted, so the client reads a torn
	// payload. This is the nasty case: applied but unacknowledged.
	Truncate
)

// String names the class for counters and test output.
func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case Latency:
		return "latency"
	case Error:
		return "error"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// Config sets the per-request probability of each fault class (at most one
// fault fires per request) and the injected latency. Probabilities must sum
// to at most 1.
type Config struct {
	Seed      int64   `json:"seed"`
	Latency   float64 `json:"latency"`
	LatencyMs float64 `json:"latency_ms"` // injected delay (default 5ms)
	Error     float64 `json:"error"`
	Reset     float64 `json:"reset"`
	Truncate  float64 `json:"truncate"`
	// TruncateAfter is how many response-body bytes pass before the cut
	// (default 16) — enough for the client to have committed to reading a
	// body, small enough that no payload survives intact.
	TruncateAfter int `json:"truncate_after"`
}

func (c Config) withDefaults() Config {
	if c.LatencyMs <= 0 {
		c.LatencyMs = 5
	}
	if c.TruncateAfter <= 0 {
		c.TruncateAfter = 16
	}
	return c
}

// Total is the combined fault rate.
func (c Config) Total() float64 { return c.Latency + c.Error + c.Reset + c.Truncate }

func (c Config) validate() error {
	for _, p := range []float64{c.Latency, c.Error, c.Reset, c.Truncate} {
		if p < 0 || p != p {
			return fmt.Errorf("faults: negative or NaN probability")
		}
	}
	if c.Total() > 1 {
		return fmt.Errorf("faults: probabilities sum to %.3f > 1", c.Total())
	}
	return nil
}

// Split distributes a total fault rate evenly across error, reset and
// truncate — the shorthand behind `-faults 0.05`.
func Split(total float64, seed int64) Config {
	return Config{Seed: seed, Error: total / 3, Reset: total / 3, Truncate: total / 3}
}

// ParseSpec parses a -faults flag value: either a bare rate ("0.05", split
// evenly across error/reset/truncate) or comma-separated key=value pairs
// ("error=0.02,reset=0.01,truncate=0.01,latency=0.05,latency_ms=3,seed=7").
func ParseSpec(spec string) (Config, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Config{}, nil
	}
	if total, err := strconv.ParseFloat(spec, 64); err == nil {
		cfg := Split(total, 0)
		return cfg, cfg.validate()
	}
	var cfg Config
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return Config{}, fmt.Errorf("faults: bad spec element %q (want key=value)", part)
		}
		v, err := strconv.ParseFloat(kv[1], 64)
		if err != nil {
			return Config{}, fmt.Errorf("faults: bad value in %q: %v", part, err)
		}
		switch kv[0] {
		case "latency":
			cfg.Latency = v
		case "latency_ms":
			cfg.LatencyMs = v
		case "error":
			cfg.Error = v
		case "reset":
			cfg.Reset = v
		case "truncate":
			cfg.Truncate = v
		case "seed":
			cfg.Seed = int64(v)
		case "truncate_after":
			cfg.TruncateAfter = int(v)
		default:
			return Config{}, fmt.Errorf("faults: unknown spec key %q", kv[0])
		}
	}
	return cfg, cfg.validate()
}

// Counts reports how many faults of each class an injector has fired.
type Counts struct {
	Requests, Latency, Error, Reset, Truncate uint64
}

// Injector decides, per intercepted request, whether and how to misbehave.
// Safe for concurrent use: the decision stream is indexed by an atomic
// counter, so for a fixed seed the multiset of injected faults over N
// requests is identical across runs (the assignment to specific requests
// follows arrival order).
type Injector struct {
	cfg Config

	n        atomic.Uint64
	latency  atomic.Uint64
	errors   atomic.Uint64
	resets   atomic.Uint64
	truncate atomic.Uint64

	// sleep is swappable so unit tests can observe injected delays without
	// waiting them out.
	sleep func(time.Duration)
}

// New builds an injector. Invalid configs (negative rates, total > 1) panic:
// they are programming errors, caught by ParseSpec on the flag path.
func New(cfg Config) *Injector {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Injector{cfg: cfg, sleep: time.Sleep}
}

// Config returns the injector's (defaulted) configuration.
func (in *Injector) Config() Config { return in.cfg }

// Counts snapshots the per-class fault counters.
func (in *Injector) Counts() Counts {
	return Counts{
		Requests: in.n.Load(),
		Latency:  in.latency.Load(),
		Error:    in.errors.Load(),
		Reset:    in.resets.Load(),
		Truncate: in.truncate.Load(),
	}
}

// next draws the fault class for the i-th request: one uniform variate from
// the (seed, i) stream, partitioned by cumulative class probabilities.
func (in *Injector) next() Class {
	i := in.n.Add(1)
	u := float64(uint64(stats.Derive(in.cfg.Seed, int64(i)))>>11) / (1 << 53)
	switch {
	case u < in.cfg.Latency:
		in.latency.Add(1)
		return Latency
	case u < in.cfg.Latency+in.cfg.Error:
		in.errors.Add(1)
		return Error
	case u < in.cfg.Latency+in.cfg.Error+in.cfg.Reset:
		in.resets.Add(1)
		return Reset
	case u < in.cfg.Total():
		in.truncate.Add(1)
		return Truncate
	}
	return None
}

// Wrap returns h with fault injection in front of it. Error faults answer
// 503 with a Retry-After before h runs (so mutations are never applied);
// Reset faults abort the connection via http.ErrAbortHandler; Truncate
// faults let h run, then cut the response after TruncateAfter body bytes.
func (in *Injector) Wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch in.next() {
		case Latency:
			in.sleep(time.Duration(in.cfg.LatencyMs * float64(time.Millisecond)))
		case Error:
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"error":"injected fault"}`+"\n")
			return
		case Reset:
			panic(http.ErrAbortHandler)
		case Truncate:
			tw := &truncatingWriter{ResponseWriter: w, remaining: in.cfg.TruncateAfter}
			h.ServeHTTP(tw, r)
			if tw.cut {
				// The handler completed against the truncated writer; abort
				// the connection so the client cannot mistake the prefix for
				// a whole payload.
				panic(http.ErrAbortHandler)
			}
			return
		}
		h.ServeHTTP(w, r)
	})
}

// truncatingWriter forwards at most `remaining` body bytes, then swallows
// the rest and records that the response was cut.
type truncatingWriter struct {
	http.ResponseWriter
	remaining int
	cut       bool
}

func (t *truncatingWriter) Write(p []byte) (int, error) {
	if t.cut {
		return len(p), nil
	}
	if len(p) <= t.remaining {
		t.remaining -= len(p)
		return t.ResponseWriter.Write(p)
	}
	if t.remaining > 0 {
		_, _ = t.ResponseWriter.Write(p[:t.remaining])
		t.remaining = 0
	}
	t.cut = true
	return len(p), nil
}

// RoundTripper returns rt with client-side fault injection: Latency delays
// the request, Error synthesizes a 503 without sending anything, Reset fails
// the exchange with a transport error, and Truncate performs the real
// exchange but cuts the response body after TruncateAfter bytes.
func (in *Injector) RoundTripper(rt http.RoundTripper) http.RoundTripper {
	if rt == nil {
		rt = http.DefaultTransport
	}
	return faultyTransport{in: in, next: rt}
}

type faultyTransport struct {
	in   *Injector
	next http.RoundTripper
}

// errInjectedReset is the transport error surfaced for Reset faults.
var errInjectedReset = fmt.Errorf("faults: injected connection reset")

func (t faultyTransport) RoundTrip(r *http.Request) (*http.Response, error) {
	switch t.in.next() {
	case Latency:
		t.in.sleep(time.Duration(t.in.cfg.LatencyMs * float64(time.Millisecond)))
	case Error:
		if r.Body != nil {
			r.Body.Close()
		}
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Retry-After": {"1"}, "Content-Type": {"application/json"}},
			Body:    io.NopCloser(strings.NewReader(`{"error":"injected fault"}` + "\n")),
			Request: r,
		}, nil
	case Reset:
		if r.Body != nil {
			r.Body.Close()
		}
		return nil, errInjectedReset
	case Truncate:
		resp, err := t.next.RoundTrip(r)
		if err != nil {
			return nil, err
		}
		resp.Body = &truncatedBody{rc: resp.Body, remaining: t.in.cfg.TruncateAfter}
		return resp, nil
	}
	return t.next.RoundTrip(r)
}

// truncatedBody yields a prefix of the real body, then an unexpected EOF —
// what a mid-transfer connection drop looks like to a reader.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= n
	if err == io.EOF {
		return n, io.EOF
	}
	if b.remaining <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }
