package faults_test

// The chaos suite: hammer a hardened mutable server through the fault
// injector with resilient clients, then audit the wreckage. The invariants —
// the ones the hardened serving layer exists to keep — are:
//
//  1. No lost acknowledged mutation: every write the client saw succeed is in
//     the repository log after shutdown.
//  2. Reads keep serving: resilient status reads never ultimately fail, and
//     the snapshot epochs a reader observes never go backward.
//  3. Clients eventually succeed: every mutation lands despite injected
//     errors, resets and truncations.
//
// (The fourth robustness invariant — campaigns resume bit-identically after a
// kill — is asserted where the journal lives: internal/campaign's WAL and
// pause/resume tests.)
//
// Truncate faults are the deliberately nasty case: the mutation applies but
// the acknowledgment tears, so the client's at-least-once retry duplicates
// it. Unique-per-attempt checking would be wrong; the audit therefore asserts
// presence, not exactly-once.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"podium/internal/client"
	"podium/internal/faults"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/repolog"
	"podium/internal/server"
	"podium/internal/shard"
	"podium/internal/synth"

	"net/http/httptest"
)

func TestChaosNoLostAcknowledgedMutations(t *testing.T) {
	const (
		writers         = 4
		writesPerWriter = 30
	)
	path := filepath.Join(t.TempDir(), "chaos.plog")
	ms, err := server.NewMutableOpts("chaos", path, groups.Config{K: 3}, nil, server.MutableOptions{MaxBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(faults.Config{Seed: 5, Error: 0.01, Reset: 0.02, Truncate: 0.02})
	ts := httptest.NewServer(inj.Wrap(ms.Hardened(server.HardenOptions{
		Logf: func(string, ...interface{}) {}, // injected panics are expected; keep test output clean
	})))

	newClient := func(seed int64) *client.Client {
		return client.NewResilient(ts.URL, nil, client.ResilienceOptions{
			Retry: client.RetryOptions{
				MaxAttempts: 8,
				BaseBackoff: 2 * time.Millisecond,
				MaxBackoff:  20 * time.Millisecond,
				Seed:        seed,
				// Unique names make the duplicate-on-truncate case benign, so
				// at-least-once is the right contract here.
				RetryNonIdempotent: true,
			},
		})
	}

	// Writers: every acknowledged name goes in the audit ledger.
	var (
		ackedMu sync.Mutex
		acked   []string
	)
	var writeFailures atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newClient(int64(100 + w))
			for i := 0; i < writesPerWriter; i++ {
				name := fmt.Sprintf("chaos-w%d-%d", w, i)
				props := map[string]float64{fmt.Sprintf("p%d", i%7): 0.5}
				if _, _, err := c.AddUser(name, props); err != nil {
					writeFailures.Add(1)
					t.Errorf("writer %d: AddUser(%s) never succeeded: %v", w, name, err)
					continue
				}
				ackedMu.Lock()
				acked = append(acked, name)
				ackedMu.Unlock()
			}
		}(w)
	}

	// Readers: resilient status polls must all succeed, and the epochs one
	// connection observes must never regress — graceful degradation means the
	// last published snapshot keeps serving no matter what the writer path or
	// the injector is doing.
	stop := make(chan struct{})
	var readFailures atomic.Int64
	var reads atomic.Int64
	var rwg sync.WaitGroup
	for rd := 0; rd < 3; rd++ {
		rwg.Add(1)
		go func(rd int) {
			defer rwg.Done()
			c := newClient(int64(200 + rd))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := c.Status(); err != nil {
					readFailures.Add(1)
					t.Errorf("reader %d: status read failed through retries: %v", rd, err)
				}
				reads.Add(1)
			}
		}(rd)
	}
	// Epoch monotonicity watcher: raw GETs on one connection, skipping the
	// requests the injector mangles (those are availability's problem, not
	// consistency's).
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		hc := &http.Client{}
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := hc.Get(ts.URL + "/api/status")
			if err != nil {
				continue
			}
			var st struct {
				Epoch uint64 `json:"epoch"`
			}
			err = json.NewDecoder(resp.Body).Decode(&st)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				continue
			}
			if st.Epoch < last {
				t.Errorf("epoch went backward: %d after %d", st.Epoch, last)
			}
			last = st.Epoch
		}
	}()

	wg.Wait()
	close(stop)
	rwg.Wait()
	ts.Close()

	// Metrics audit, in-process so the injector can't mangle the scrape: the
	// exposition must parse, request counters must have moved, and the gauges
	// must agree with the server's own accounting — faults may fail requests,
	// but they must never corrupt the metrics pipeline.
	auditMetrics(t, ms)

	if err := ms.Close(); err != nil {
		t.Fatalf("closing server: %v", err)
	}

	if writeFailures.Load() != 0 {
		t.Fatalf("%d writes never succeeded", writeFailures.Load())
	}
	if reads.Load() == 0 {
		t.Fatal("readers made no progress")
	}
	counts := inj.Counts()
	if counts.Error+counts.Reset+counts.Truncate == 0 {
		t.Fatalf("injector fired nothing over %d requests; the chaos run tested fair weather", counts.Requests)
	}
	t.Logf("chaos: %d requests, %d errors, %d resets, %d truncations, %d reads",
		counts.Requests, counts.Error, counts.Reset, counts.Truncate, reads.Load())

	// The audit: reopen the log cold and demand every acknowledged mutation.
	l, err := repolog.Open(path)
	if err != nil {
		t.Fatalf("reopening log: %v", err)
	}
	defer l.Close()
	repo := l.Repository()
	present := make(map[string]bool, repo.NumUsers())
	for u := 0; u < repo.NumUsers(); u++ {
		present[repo.UserName(profile.UserID(u))] = true
	}
	missing := 0
	for _, name := range acked {
		if !present[name] {
			missing++
			t.Errorf("acknowledged mutation lost: user %q not in the log", name)
		}
	}
	if missing == 0 && len(acked) != writers*writesPerWriter {
		t.Fatalf("ledger holds %d acks, want %d", len(acked), writers*writesPerWriter)
	}
}

// auditMetrics scrapes /api/v1/metrics directly off the (unwrapped) server
// and cross-checks it against the server's own stats.
func auditMetrics(t *testing.T, ms *server.MutableServer) {
	t.Helper()
	rec := httptest.NewRecorder()
	ms.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics scrape = %d", rec.Code)
	}

	// Parse the exposition into series → value, demanding well-formed lines.
	series := map[string]float64{}
	for ln, line := range strings.Split(rec.Body.String(), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("metrics line %d not `series value`: %q", ln+1, line)
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("metrics line %d: bad value: %q", ln+1, line)
		}
		series[fields[0]] = v
	}

	// Requests flowed: the per-route counters saw the chaos traffic.
	totalReqs := 0.0
	for name, v := range series {
		if strings.HasPrefix(name, "podium_http_requests_total{") {
			totalReqs += v
		}
	}
	if totalReqs == 0 {
		t.Error("metrics: no HTTP requests counted under chaos")
	}

	// The epoch gauge agrees with what /api/v1/status reports.
	srec := httptest.NewRecorder()
	ms.ServeHTTP(srec, httptest.NewRequest(http.MethodGet, "/api/v1/status", nil))
	var st struct {
		Epoch float64 `json:"epoch"`
	}
	if err := json.Unmarshal(srec.Body.Bytes(), &st); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	if g := series["podium_snapshot_epoch"]; g != st.Epoch {
		t.Errorf("metrics epoch gauge = %v, status reports %v", g, st.Epoch)
	}
	if st.Epoch == 0 {
		t.Error("no snapshot was published during the chaos run")
	}

	// The shed counter agrees with ShedStats (both count admission-control
	// rejections at the same site).
	if g := series["podium_http_requests_shed_total"]; g != float64(ms.ShedStats()) {
		t.Errorf("metrics shed counter = %v, ShedStats = %d", g, ms.ShedStats())
	}
}

// TestChaosCoordinatorShardLoss drives the distributed selection invariant
// through the injector: a coordinator over two shard servers, one of them
// faulty and then killed outright mid-stream, must keep answering selects —
// degraded when a shard is unreachable, never an error. Only total shard loss
// may fail a request, and that case is exercised at the end.
func TestChaosCoordinatorShardLoss(t *testing.T) {
	// One partitioned population, exactly as the CLI's -shards mode carves
	// it: shard servers pin the global bucket boundaries so their groups stay
	// restrictions of the coordinator's.
	scfg := synth.ScaleLike(240)
	scfg.Seed = 17
	repo := synth.Generate(scfg).Repo
	gcfg := groups.Config{K: 3}
	ix := groups.Build(repo, gcfg)
	plan, err := shard.NewPlan(ix, gcfg, shard.Options{Shards: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	shardCfg := gcfg
	shardCfg.FixedBuckets = ix.BucketBoundaries()

	// Shard 0 serves clean; shard 1 serves through a hostile injector and is
	// later killed. The coordinator's shard clients retry, so isolated faults
	// heal and only a dead shard degrades the merge.
	s0 := httptest.NewServer(server.New("shard0", plan.Shards[0].Repo, shardCfg, nil))
	defer s0.Close()
	inj := faults.New(faults.Config{Seed: 3, Error: 0.15, Reset: 0.15, Truncate: 0.1})
	s1 := httptest.NewServer(inj.Wrap(server.New("shard1", plan.Shards[1].Repo, shardCfg, nil)))

	base := server.New("coordinator", repo, gcfg, nil)
	co := shard.NewCoordinator(base, []string{s0.URL, s1.URL}, shard.CoordinatorOptions{
		Resilience: client.ResilienceOptions{
			Retry: client.RetryOptions{
				MaxAttempts: 4,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  5 * time.Millisecond,
				Seed:        21,
				// Selects are read-only POSTs; retrying a torn response is
				// safe and is exactly what the injector provokes.
				RetryNonIdempotent: true,
			},
		},
	})
	front := httptest.NewServer(server.HardenedHandler(co, server.HardenOptions{
		Logf: func(string, ...interface{}) {},
	}))
	defer front.Close()
	c := client.New(front.URL, nil)

	// Phase 1: hammer selects through the faulty shard. Every request must
	// succeed; a response is either complete (both shards reporting OK) or
	// honestly degraded (failed shard carries an error, selection non-empty).
	degraded, complete := 0, 0
	for i := 0; i < 15; i++ {
		sel, err := c.Select(client.SelectRequest{Budget: 4})
		if err != nil {
			t.Fatalf("select %d errored under shard faults: %v", i, err)
		}
		if len(sel.Users) == 0 || sel.Score <= 0 {
			t.Fatalf("select %d returned empty selection: %d users score %v", i, len(sel.Users), sel.Score)
		}
		if len(sel.Shards) != 2 {
			t.Fatalf("select %d reported %d shards, want 2", i, len(sel.Shards))
		}
		if sel.Degraded {
			degraded++
			for _, sh := range sel.Shards {
				if !sh.OK && sh.Error == "" {
					t.Fatalf("select %d: failed shard carries no error: %+v", i, sh)
				}
			}
		} else {
			complete++
			for _, sh := range sel.Shards {
				if !sh.OK || sh.Winners == 0 {
					t.Fatalf("select %d marked complete with unhealthy shard: %+v", i, sh)
				}
			}
		}
	}
	if complete == 0 {
		t.Fatal("no select survived intact through the retrying fan-out")
	}
	counts := inj.Counts()
	if counts.Error+counts.Reset+counts.Truncate == 0 {
		t.Fatalf("injector fired nothing over %d shard requests; the run tested fair weather", counts.Requests)
	}

	// Phase 2: kill shard 1 mid-stream — in-flight connections are severed,
	// not drained. From here every select must come back degraded yet
	// successful, with the dead shard's failure attributed.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		s1.CloseClientConnections()
		s1.Close()
	}()
	for i := 0; i < 6; i++ {
		sel, err := c.Select(client.SelectRequest{Budget: 4})
		if err != nil {
			t.Fatalf("post-kill select %d errored: %v", i, err)
		}
		if !sel.Degraded {
			t.Fatalf("post-kill select %d not marked degraded: %+v", i, sel.Shards)
		}
		if len(sel.Users) == 0 || sel.Score <= 0 {
			t.Fatalf("post-kill select %d empty: %d users score %v", i, len(sel.Users), sel.Score)
		}
		deadSeen := false
		for _, sh := range sel.Shards {
			if sh.URL == s1.URL && !sh.OK && sh.Error != "" {
				deadSeen = true
			}
		}
		if !deadSeen {
			t.Fatalf("post-kill select %d does not attribute the dead shard: %+v", i, sel.Shards)
		}
	}
	<-killed
	t.Logf("chaos coordinator: %d complete, %d degraded under faults; %d injector requests (%d error, %d reset, %d truncate)",
		complete, degraded, counts.Requests, counts.Error, counts.Reset, counts.Truncate)

	// Phase 3: total loss is the one case that errors.
	s0.Close()
	if _, err := c.Select(client.SelectRequest{Budget: 4}); err == nil {
		t.Fatal("select succeeded with every shard down")
	}
}

// TestChaosReplicaKillBitIdentical drives the replication invariant through
// the injector: a coordinator over two shards, each served by TWO replicas,
// every replica behind a ~5% fault injector. Mid-stream, one replica of
// EVERY shard is killed outright. Because siblings hold identical data and
// the greedy rounds are deterministic, every select must keep succeeding
// with degraded:false and come back byte-identical to the healthy-cluster
// response — replication turns replica loss into a non-event, where PR 8's
// unreplicated coordinator could only degrade.
func TestChaosReplicaKillBitIdentical(t *testing.T) {
	scfg := synth.ScaleLike(240)
	scfg.Seed = 23
	repo := synth.Generate(scfg).Repo
	gcfg := groups.Config{K: 3}
	ix := groups.Build(repo, gcfg)
	plan, err := shard.NewPlan(ix, gcfg, shard.Options{Shards: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	shardCfg := gcfg
	shardCfg.FixedBuckets = ix.BucketBoundaries()

	// Two replicas per shard, each an independent server over the shard's
	// repository, each behind its own ~5% injector (3% errors + 2% resets).
	const replicas = 2
	var (
		injectors []*faults.Injector
		servers   [][]*httptest.Server
		specs     []string
	)
	for si, sh := range plan.Shards {
		group := make([]*httptest.Server, replicas)
		urls := make([]string, replicas)
		for r := 0; r < replicas; r++ {
			inj := faults.New(faults.Config{Seed: int64(41 + si*replicas + r), Error: 0.03, Reset: 0.02})
			injectors = append(injectors, inj)
			srv := server.New(fmt.Sprintf("shard%d-r%d", si, r), sh.Repo, shardCfg, nil)
			group[r] = httptest.NewServer(inj.Wrap(srv))
			defer group[r].Close()
			urls[r] = group[r].URL
		}
		servers = append(servers, group)
		specs = append(specs, strings.Join(urls, "|"))
	}

	base := server.New("coordinator", repo, gcfg, nil)
	co := shard.NewCoordinator(base, specs, shard.CoordinatorOptions{
		Resilience: client.ResilienceOptions{
			Retry: client.RetryOptions{
				MaxAttempts: 4,
				BaseBackoff: time.Millisecond,
				MaxBackoff:  5 * time.Millisecond,
				Seed:        21,
				RetryNonIdempotent: true, // selects are read-only POSTs
			},
		},
		Health: shard.HealthOptions{
			ProbeTimeout: time.Second,
			MinHedge:     5 * time.Millisecond,
			MaxHedge:     50 * time.Millisecond,
			Seed:         7,
		},
	})
	front := httptest.NewServer(server.HardenedHandler(co, server.HardenOptions{
		Logf: func(string, ...interface{}) {},
	}))
	defer front.Close()

	rawSelect := func(i int) []byte {
		t.Helper()
		resp, err := http.Post(front.URL+"/api/v1/select", "application/json",
			strings.NewReader(`{"budget":5}`))
		if err != nil {
			t.Fatalf("select %d: %v", i, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("select %d: reading body: %v", i, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("select %d: HTTP %d: %s", i, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), `"degraded":false`) {
			t.Fatalf("select %d degraded under replica-level faults: %s", i, body)
		}
		return body
	}

	// Phase 1: healthy cluster (faults firing, both replicas alive). The
	// first response is the reference; repeats must already be stable.
	reference := rawSelect(0)
	for i := 1; i < 8; i++ {
		if got := rawSelect(i); !bytes.Equal(got, reference) {
			t.Fatalf("healthy select %d diverged from reference:\nref: %s\ngot: %s", i, reference, got)
		}
	}

	// Phase 2: kill one replica of EVERY shard mid-stream, connections
	// severed rather than drained. Selections must stay exact — same bytes,
	// never degraded.
	for _, group := range servers {
		group[0].CloseClientConnections()
		group[0].Close()
	}
	for i := 0; i < 8; i++ {
		if got := rawSelect(100 + i); !bytes.Equal(got, reference) {
			t.Fatalf("post-kill select %d diverged from healthy reference:\nref: %s\ngot: %s", i, reference, got)
		}
	}

	fired := 0
	for _, inj := range injectors {
		c := inj.Counts()
		fired += int(c.Error + c.Reset + c.Truncate)
	}
	if fired == 0 {
		t.Fatal("injectors fired nothing; the run tested fair weather")
	}
	t.Logf("chaos replica-kill: %d faults injected, selections bit-identical across single-replica loss of every shard", fired)
}
