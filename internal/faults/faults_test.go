package faults

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec    string
		want    Config
		wantErr bool
	}{
		{spec: "", want: Config{}},
		{spec: "0.06", want: Config{Error: 0.02, Reset: 0.02, Truncate: 0.02}},
		{spec: "error=0.02,reset=0.01,latency=0.05,latency_ms=3,seed=7",
			want: Config{Error: 0.02, Reset: 0.01, Latency: 0.05, LatencyMs: 3, Seed: 7}},
		{spec: "truncate=0.1,truncate_after=4", want: Config{Truncate: 0.1, TruncateAfter: 4}},
		{spec: "1.5", wantErr: true},            // split still sums to 1.5
		{spec: "error=0.9,reset=0.9", wantErr: true},
		{spec: "error=-0.1", wantErr: true},
		{spec: "bogus=1", wantErr: true},
		{spec: "error", wantErr: true},
		{spec: "error=x", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseSpec(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Fatalf("ParseSpec(%q): want error, got %+v", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", tc.spec, err)
		}
		if got != tc.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func TestInjectorDeterministicSequence(t *testing.T) {
	cfg := Config{Seed: 11, Latency: 0.1, Error: 0.1, Reset: 0.1, Truncate: 0.1}
	draw := func() []Class {
		in := New(cfg)
		out := make([]Class, 500)
		for i := range out {
			out[i] = in.next()
		}
		return out
	}
	a, b := draw(), draw()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed drew different fault sequences")
	}
	// A different seed must not replay the same schedule.
	other := New(Config{Seed: 12, Latency: 0.1, Error: 0.1, Reset: 0.1, Truncate: 0.1})
	c := make([]Class, 500)
	for i := range c {
		c[i] = other.next()
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds drew identical fault sequences")
	}
	// Empirical rates within loose tolerance of the configured 10% each.
	counts := New(cfg)
	for i := 0; i < 5000; i++ {
		counts.next()
	}
	got := counts.Counts()
	for name, n := range map[string]uint64{
		"latency": got.Latency, "error": got.Error, "reset": got.Reset, "truncate": got.Truncate,
	} {
		if n < 350 || n > 650 { // 10% of 5000 = 500
			t.Fatalf("%s fired %d/5000 times, want ≈500", name, n)
		}
	}
}

func TestWrapErrorFiresBeforeHandler(t *testing.T) {
	in := New(Config{Error: 1})
	handled := false
	h := in.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handled = true
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/users", nil))
	if handled {
		t.Fatal("injected Error must reject before the handler (mutations would leak)")
	}
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("injected error = %d, Retry-After %q", rec.Code, rec.Header().Get("Retry-After"))
	}
}

func TestWrapResetAbortsConnection(t *testing.T) {
	in := New(Config{Reset: 1})
	h := in.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Fatal("handler ran through a reset")
	}))
	defer func() {
		if e := recover(); e != http.ErrAbortHandler {
			t.Fatalf("recovered %v, want http.ErrAbortHandler", e)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	t.Fatal("reset did not abort")
}

func TestWrapTruncateCutsResponseAndAborts(t *testing.T) {
	in := New(Config{Truncate: 1, TruncateAfter: 8})
	handled := false
	payload := `{"status":"a perfectly healthy response body"}`
	var rec *httptest.ResponseRecorder
	h := in.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handled = true
		fmt.Fprint(w, payload)
	}))
	func() {
		defer func() {
			if e := recover(); e != http.ErrAbortHandler {
				t.Fatalf("recovered %v, want abort after truncation", e)
			}
		}()
		rec = httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		t.Fatal("truncated response did not abort")
	}()
	if !handled {
		t.Fatal("Truncate must let the handler run (applied-but-unacknowledged)")
	}
	if got := rec.Body.String(); got != payload[:8] {
		t.Fatalf("body = %q, want the 8-byte prefix %q", got, payload[:8])
	}
}

func TestWrapLatencyDelaysThenServes(t *testing.T) {
	in := New(Config{Latency: 1, LatencyMs: 250})
	var slept time.Duration
	in.sleep = func(d time.Duration) { slept = d }
	h := in.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("latency fault changed the response: %d", rec.Code)
	}
	if slept != 250*time.Millisecond {
		t.Fatalf("slept %v, want 250ms", slept)
	}
}

func TestRoundTripperInjectsClientSideFaults(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, strings.Repeat("x", 64))
	}))
	defer ts.Close()

	get := func(in *Injector) (*http.Response, error) {
		c := &http.Client{Transport: in.RoundTripper(nil)}
		return c.Get(ts.URL)
	}

	// Error: a synthesized 503, nothing on the wire needed.
	resp, err := get(New(Config{Error: 1}))
	if err != nil || resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected client error: %v / %+v", err, resp)
	}
	resp.Body.Close()

	// Reset: a transport error, no response at all.
	if _, err := get(New(Config{Reset: 1})); err == nil {
		t.Fatal("injected reset returned a response")
	}

	// Truncate: the real exchange happens but the body tears mid-read.
	resp, err = get(New(Config{Truncate: 1, TruncateAfter: 16}))
	if err != nil {
		t.Fatalf("truncated exchange failed outright: %v", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("read %d bytes with err %v, want io.ErrUnexpectedEOF", len(data), err)
	}
	if len(data) != 16 {
		t.Fatalf("read %d bytes before the tear, want 16", len(data))
	}
}
