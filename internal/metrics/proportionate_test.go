package metrics

import (
	"fmt"
	"math"
	"testing"

	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/stats"
)

// halfHalfIndex: 8 users, 4 with property "a" high, 4 with "b" high — two
// disjoint groups of equal size, so proportionate allocations exist.
func halfHalfIndex(t *testing.T) *groups.Index {
	t.Helper()
	repo := profile.NewRepository()
	for i := 0; i < 4; i++ {
		u := repo.AddUser(fmt.Sprintf("a%d", i))
		repo.MustSetScore(u, "a", 1)
	}
	for i := 0; i < 4; i++ {
		u := repo.AddUser(fmt.Sprintf("b%d", i))
		repo.MustSetScore(u, "b", 1)
	}
	return groups.Build(repo, groups.Config{K: 3})
}

func TestIsProportionateAllocation(t *testing.T) {
	ix := halfHalfIndex(t)
	// One user from each group: shares 1/2 vs 4/8 — exact.
	if !IsProportionateAllocation(ix, []profile.UserID{0, 4}) {
		t.Fatal("balanced selection not recognized as proportionate")
	}
	// Two users from the same group: 2/2 vs 4/8 — not proportionate.
	if IsProportionateAllocation(ix, []profile.UserID{0, 1}) {
		t.Fatal("skewed selection accepted as proportionate")
	}
	if IsProportionateAllocation(ix, nil) {
		t.Fatal("empty selection accepted")
	}
	// The whole population is trivially proportionate.
	all := make([]profile.UserID, 8)
	for i := range all {
		all[i] = profile.UserID(i)
	}
	if !IsProportionateAllocation(ix, all) {
		t.Fatal("full population not proportionate")
	}
}

func TestProportionateDeviation(t *testing.T) {
	ix := halfHalfIndex(t)
	if got := ProportionateDeviation(ix, []profile.UserID{0, 4}, 0); got != 0 {
		t.Fatalf("balanced deviation = %v, want 0", got)
	}
	// {0,1}: group a share 1 vs 0.5, group b share 0 vs 0.5 → mean |Δ| = 0.5.
	if got := ProportionateDeviation(ix, []profile.UserID{0, 1}, 0); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("skewed deviation = %v, want 0.5", got)
	}
	// Balanced beats skewed under any top-k.
	bal := ProportionateDeviation(ix, []profile.UserID{0, 4}, 1)
	skew := ProportionateDeviation(ix, []profile.UserID{0, 1}, 1)
	if bal >= skew {
		t.Fatalf("top-1 deviation: balanced %v !< skewed %v", bal, skew)
	}
}

// The paper's Section 2 claim: with many overlapping groups, a small subset
// with every group even roughly proportionally represented is unlikely to
// exist. Demonstrate: on a high-dimensional corpus no budget-8 greedy (or
// random) selection is an exact proportionate allocation, while deviation
// still ranks Podium's selection as more proportionate than a degenerate
// one.
func TestProportionateInfeasibleHighDim(t *testing.T) {
	// A random high-dimensional repository: 150 users × 40 properties at 50%
	// density yields hundreds of overlapping groups.
	rng := stats.NewRand(17)
	repo := profile.NewRepository()
	for u := 0; u < 150; u++ {
		id := repo.AddUser(fmt.Sprintf("u%d", u))
		for p := 0; p < 40; p++ {
			if rng.Float64() < 0.5 {
				repo.MustSetScore(id, fmt.Sprintf("p%d", p), rng.Float64())
			}
		}
	}
	ix := groups.Build(repo, groups.Config{K: 3})
	if ix.NumGroups() < 100 {
		t.Fatalf("only %d groups — not the high-dimensional regime", ix.NumGroups())
	}
	var subset []profile.UserID
	for u := 0; u < 8; u++ {
		subset = append(subset, profile.UserID(u))
	}
	if IsProportionateAllocation(ix, subset) {
		t.Fatal("a small subset is proportionate over hundreds of overlapping groups?")
	}
	dev := ProportionateDeviation(ix, subset, 200)
	if dev <= 0 || dev > 1 {
		t.Fatalf("deviation = %v, want in (0,1]", dev)
	}
}
