// Package metrics implements the evaluation metrics of Section 8.2. The
// intrinsic diversity metrics in this file are computed from the selected
// users' known profiles: the total selection score, top-k group coverage,
// intersected-property coverage, and the coverage-oriented distribution
// similarity CD-sim of Definition 8.1. Opinion diversity metrics live in
// package opinions, next to the review data they consume.
package metrics

import (
	"podium/internal/groups"
	"podium/internal/profile"
)

// TotalScore is the selection total score metric: score_𝒢(U) under the
// instance — by default LBS weights and Single coverage, the target function
// Podium's greedy approximates.
func TotalScore(inst *groups.Instance, users []profile.UserID) float64 {
	return inst.Score(users)
}

// TopKCoverage returns the fraction of the k largest groups that have at
// least one selected representative (the paper uses k=200).
func TopKCoverage(ix *groups.Index, users []profile.UserID, k int) float64 {
	top := ix.TopKBySize(k)
	if len(top) == 0 {
		return 1
	}
	inSel := toSet(users)
	covered := 0
	for _, gid := range top {
		if groupHits(ix.Group(gid), inSel) > 0 {
			covered++
		}
	}
	return float64(covered) / float64(len(top))
}

// IntersectedCoverage evaluates coverage of *complex* groups: pairwise
// intersections of simple groups that are at least as large as the k-th
// largest simple group. It returns the fraction of such intersections with a
// selected representative. Since |A∩B| ≤ min(|A|,|B|), qualifying pairs can
// only arise between groups that are individually at least that large, which
// keeps enumeration tractable; pairs of buckets of the same property are
// skipped (their intersection is empty by construction).
func IntersectedCoverage(ix *groups.Index, users []profile.UserID, k int) float64 {
	top := ix.TopKBySize(k)
	if len(top) == 0 {
		return 1
	}
	threshold := ix.Group(top[len(top)-1]).Size()
	// Candidate groups: size ≥ threshold (includes ties beyond top-k).
	var cands []*groups.Group
	for _, g := range ix.Groups() {
		if g.Size() >= threshold {
			cands = append(cands, g)
		}
	}
	inSel := toSet(users)
	qualifying, covered := 0, 0
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			a, b := cands[i], cands[j]
			if a.Prop == b.Prop {
				continue
			}
			inter := groups.Intersection(a, b)
			if len(inter) < threshold {
				continue
			}
			qualifying++
			for _, u := range inter {
				if inSel[u] {
					covered++
					break
				}
			}
		}
	}
	if qualifying == 0 {
		return 1
	}
	return float64(covered) / float64(qualifying)
}

// CDSim is the coverage-oriented distribution similarity of Definition 8.1:
// 1 − (1/k)·Σ_{subset(b) < all(b)} (all(b) − subset(b)) / all(b). Only
// under-represented domain values are taxed; over-representation is free.
// Both inputs must have equal length; buckets with all(b) == 0 contribute
// nothing (they cannot be under-represented).
func CDSim(subset, all []float64) float64 {
	if len(subset) != len(all) {
		panic("metrics: CDSim length mismatch")
	}
	k := len(all)
	if k == 0 {
		return 1
	}
	var tax float64
	for i := range all {
		if all[i] > 0 && subset[i] < all[i] {
			tax += (all[i] - subset[i]) / all[i]
		}
	}
	return 1 - tax/float64(k)
}

// DistributionSimilarity is the "Distribution Similarity" intrinsic metric:
// the average CD-sim, over the properties of the topGroups largest groups
// (the paper averages over the top 20), between the per-bucket user
// distribution of the whole population and of the selected subset.
//
// Near-universal groups — buckets holding ≥90% of the population, such as
// the "not livesIn X" groups materialized by functional inference — are
// skipped when ranking: their distribution is all-but-degenerate (any
// selection lands in the dominant bucket, and the residual bucket is
// unreachable at small budgets), so including them floods the metric with a
// constant and hides the differences it exists to measure.
func DistributionSimilarity(ix *groups.Index, users []profile.UserID, topGroups int) float64 {
	universal := ix.Repo().NumUsers() * 9 / 10
	var top []groups.GroupID
	for _, gid := range ix.TopKBySize(ix.NumGroups()) {
		g := ix.Group(gid)
		if g.Kind != groups.SimpleGroup {
			continue // complex groups have no bucket distribution
		}
		if g.Size() >= universal && universal > 0 {
			continue
		}
		top = append(top, gid)
		if len(top) == topGroups {
			break
		}
	}
	if len(top) == 0 {
		return 1
	}
	inSel := toSet(users)
	var sum float64
	for _, gid := range top {
		all, subset := propertyDistributions(ix, inSel, ix.Group(gid).Prop)
		sum += CDSim(subset, all)
	}
	return sum / float64(len(top))
}

// propertyDistributions returns the per-bucket fractions of property holders
// in the population and in the subset (each normalized to sum to 1 over the
// property's buckets; all-zero when nobody holds the property).
func propertyDistributions(ix *groups.Index, inSel map[profile.UserID]bool, prop profile.PropertyID) (all, subset []float64) {
	buckets := ix.Buckets(prop)
	all = make([]float64, len(buckets))
	subset = make([]float64, len(buckets))
	var totalAll, totalSub float64
	for _, gid := range ix.GroupsOfProperty(prop) {
		g := ix.Group(gid)
		all[g.BucketIdx] = float64(g.Size())
		totalAll += float64(g.Size())
		hits := float64(groupHits(g, inSel))
		subset[g.BucketIdx] = hits
		totalSub += hits
	}
	for i := range all {
		if totalAll > 0 {
			all[i] /= totalAll
		}
		if totalSub > 0 {
			subset[i] /= totalSub
		}
	}
	return all, subset
}

// FeedbackGroupCoverage is the customization experiment's added metric
// (Figure 4): the fraction of the priority groups covered to their required
// cov by the selected subset.
func FeedbackGroupCoverage(inst *groups.Instance, users []profile.UserID, priority []groups.GroupID) float64 {
	if len(priority) == 0 {
		return 1
	}
	inSel := toSet(users)
	covered := 0
	for _, gid := range priority {
		if groupHits(inst.Index.Group(gid), inSel) >= inst.Cov[gid] {
			covered++
		}
	}
	return float64(covered) / float64(len(priority))
}

func toSet(users []profile.UserID) map[profile.UserID]bool {
	s := make(map[profile.UserID]bool, len(users))
	for _, u := range users {
		s[u] = true
	}
	return s
}

func groupHits(g *groups.Group, inSel map[profile.UserID]bool) int {
	n := 0
	for _, u := range g.Members {
		if inSel[u] {
			n++
		}
	}
	return n
}
