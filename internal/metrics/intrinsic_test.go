package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"podium/internal/bucketing"
	"podium/internal/groups"
	"podium/internal/profile"
)

func paperIndex(t *testing.T) *groups.Index {
	t.Helper()
	repo := profile.PaperExample()
	return groups.Build(repo, groups.Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3})
}

func TestCDSimPaperExample82(t *testing.T) {
	// Example 8.2: all=[0.23,0.4,0.37], subset=[0.4,0.5,0.1] → 0.76
	// (penalty only for under-representing the third sub-group).
	got := CDSim([]float64{0.4, 0.5, 0.1}, []float64{0.23, 0.4, 0.37})
	want := 1 - (0.37-0.1)/0.37/3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CDSim = %v, want %v", got, want)
	}
	if math.Abs(got-0.76) > 0.005 {
		t.Fatalf("CDSim = %v, want ≈0.76 per the paper", got)
	}
}

func TestCDSimIdenticalDistributions(t *testing.T) {
	d := []float64{0.2, 0.3, 0.5}
	if got := CDSim(d, d); got != 1 {
		t.Fatalf("CDSim identical = %v, want 1", got)
	}
}

func TestCDSimOverRepresentationFree(t *testing.T) {
	// Over-representing every bucket except an empty one costs nothing.
	all := []float64{0.5, 0.5, 0}
	subset := []float64{0.7, 0.3, 0}
	got := CDSim(subset, all)
	want := 1 - (0.5-0.3)/0.5/3
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CDSim = %v, want %v", got, want)
	}
}

func TestCDSimTotalMiss(t *testing.T) {
	// Subset entirely misses a distribution spread over k buckets:
	// tax = k·1/k → similarity 0.
	all := []float64{0.5, 0.5}
	subset := []float64{0, 0}
	if got := CDSim(subset, all); got != 0 {
		t.Fatalf("CDSim = %v, want 0", got)
	}
}

func TestCDSimPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	CDSim([]float64{1}, []float64{0.5, 0.5})
}

func TestCDSimEmpty(t *testing.T) {
	if got := CDSim(nil, nil); got != 1 {
		t.Fatalf("CDSim(empty) = %v", got)
	}
}

// Property: CD-sim is within [0,1] whenever inputs are sub-distributions,
// and equals 1 when the subset dominates everywhere.
func TestCDSimRangeProperty(t *testing.T) {
	f := func(rawAll, rawSub []uint8) bool {
		n := len(rawAll)
		if len(rawSub) < n {
			n = len(rawSub)
		}
		if n == 0 {
			return true
		}
		all := make([]float64, n)
		sub := make([]float64, n)
		var ta, ts float64
		for i := 0; i < n; i++ {
			all[i] = float64(rawAll[i])
			sub[i] = float64(rawSub[i])
			ta += all[i]
			ts += sub[i]
		}
		if ta > 0 {
			for i := range all {
				all[i] /= ta
			}
		}
		if ts > 0 {
			for i := range sub {
				sub[i] /= ts
			}
		}
		got := CDSim(sub, all)
		if got < -1e-9 || got > 1+1e-9 {
			return false
		}
		// Dominance check.
		dominates := true
		for i := range all {
			if sub[i] < all[i] {
				dominates = false
			}
		}
		return !dominates || math.Abs(got-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalScore(t *testing.T) {
	ix := paperIndex(t)
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, 2)
	if got := TotalScore(inst, []profile.UserID{0, 4}); got != 17 {
		t.Fatalf("TotalScore = %v, want 17", got)
	}
}

func TestTopKCoverage(t *testing.T) {
	ix := paperIndex(t)
	// The largest group (size 3: Mexican lovers {0,3,4}) plus size-2 groups.
	// {Alice} covers: lovers ✓, Tokyo ✓, age ✓, vfCE-med... let's just
	// check bounds and known values.
	if got := TopKCoverage(ix, []profile.UserID{0}, 1); got != 1 {
		t.Fatalf("top-1 coverage with Alice = %v, want 1", got)
	}
	if got := TopKCoverage(ix, []profile.UserID{1}, 1); got != 0 {
		t.Fatalf("top-1 coverage with Bob = %v, want 0 (Bob is no Mexican lover)", got)
	}
	if got := TopKCoverage(ix, nil, 5); got != 0 {
		t.Fatalf("empty selection coverage = %v", got)
	}
	all := []profile.UserID{0, 1, 2, 3, 4}
	if got := TopKCoverage(ix, all, 200); got != 1 {
		t.Fatalf("full-population coverage = %v, want 1", got)
	}
}

func TestIntersectedCoverage(t *testing.T) {
	ix := paperIndex(t)
	// Threshold from top-2: second largest group has size 2; qualifying
	// intersections have ≥2 common members across different properties —
	// e.g. Tokyo ∩ Mexican-lovers = {Alice, David} (Example 3.5).
	full := IntersectedCoverage(ix, []profile.UserID{0, 1, 2, 3, 4}, 2)
	if full != 1 {
		t.Fatalf("full population intersected coverage = %v, want 1", full)
	}
	none := IntersectedCoverage(ix, nil, 2)
	if none != 0 {
		t.Fatalf("empty selection intersected coverage = %v, want 0", none)
	}
	// Alice alone covers Tokyo∩lovers; selections containing Alice score
	// at least as well as those without her.
	withA := IntersectedCoverage(ix, []profile.UserID{0}, 2)
	withB := IntersectedCoverage(ix, []profile.UserID{1}, 2)
	if withA <= withB {
		t.Fatalf("Alice %v should beat Bob %v on intersected coverage", withA, withB)
	}
}

func TestIntersectedCoverageSkipsSameProperty(t *testing.T) {
	// Different buckets of one property never intersect; a repository whose
	// only large groups are same-property buckets has no qualifying pairs.
	repo := profile.NewRepository()
	for i := 0; i < 6; i++ {
		u := repo.AddUser("u")
		s := 0.1
		if i >= 3 {
			s = 0.9
		}
		repo.MustSetScore(u, "only", s)
	}
	ix := groups.Build(repo, groups.Config{K: 3})
	if got := IntersectedCoverage(ix, nil, 2); got != 1 {
		t.Fatalf("no qualifying pairs should yield 1, got %v", got)
	}
}

func TestDistributionSimilarity(t *testing.T) {
	ix := paperIndex(t)
	all := []profile.UserID{0, 1, 2, 3, 4}
	if got := DistributionSimilarity(ix, all, 5); got != 1 {
		t.Fatalf("full-population similarity = %v, want 1", got)
	}
	some := DistributionSimilarity(ix, []profile.UserID{0, 4}, 5)
	if some <= 0 || some > 1 {
		t.Fatalf("similarity = %v, want in (0,1]", some)
	}
	if empty := DistributionSimilarity(ix, nil, 5); empty != 0 {
		// Every property is fully under-represented: tax is 1 per non-empty
		// bucket... but buckets with all=0 don't tax, so the score is
		// 1 - (#non-empty buckets)/k per property. For this fixture every
		// top-group property has some empty bucket or not; just bound it.
		if empty < 0 || empty >= 1 {
			t.Fatalf("empty-selection similarity = %v", empty)
		}
	}
}

func TestFeedbackGroupCoverage(t *testing.T) {
	ix := paperIndex(t)
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, 2)
	var lovers, nyc groups.GroupID = -1, -1
	for _, g := range ix.Groups() {
		switch g.Label(ix.Repo().Catalog()) {
		case "high scores for avgRating Mexican":
			lovers = g.ID
		case profile.ExLivesInNYC:
			nyc = g.ID
		}
	}
	// Alice covers lovers but not NYC.
	got := FeedbackGroupCoverage(inst, []profile.UserID{0}, []groups.GroupID{lovers, nyc})
	if got != 0.5 {
		t.Fatalf("feedback coverage = %v, want 0.5", got)
	}
	if got := FeedbackGroupCoverage(inst, nil, nil); got != 1 {
		t.Fatalf("empty priority coverage = %v, want 1", got)
	}
}
