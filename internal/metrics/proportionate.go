package metrics

import (
	"math"

	"podium/internal/groups"
	"podium/internal/profile"
)

// IsProportionateAllocation tests Definition 2.1 exactly: U is a
// proportionate allocation of 𝒢 iff |g∩U|/|U| = |g|/|𝒰| for every group.
// The paper argues this is generally unachievable for high-dimensional,
// overlapping groups — TestProportionateInfeasibleHighDim demonstrates it.
func IsProportionateAllocation(ix *groups.Index, users []profile.UserID) bool {
	if len(users) == 0 {
		return false
	}
	inSel := toSet(users)
	n := ix.Repo().NumUsers()
	for _, g := range ix.Groups() {
		// Cross-multiplied to stay in integers: |g∩U|·|𝒰| == |g|·|U|.
		if groupHits(g, inSel)*n != g.Size()*len(inSel) {
			return false
		}
	}
	return true
}

// ProportionateDeviation quantifies how far a selection is from
// proportionate allocation: the mean absolute difference between each
// group's share of the selection and its share of the population, over the
// topK largest groups (0 selects all groups). 0 means exact proportionate
// allocation over the measured groups.
func ProportionateDeviation(ix *groups.Index, users []profile.UserID, topK int) float64 {
	if topK <= 0 {
		topK = ix.NumGroups()
	}
	top := ix.TopKBySize(topK)
	if len(top) == 0 {
		return 0
	}
	inSel := toSet(users)
	selSize := float64(len(inSel))
	popSize := float64(ix.Repo().NumUsers())
	var sum float64
	for _, gid := range top {
		g := ix.Group(gid)
		var selShare float64
		if selSize > 0 {
			selShare = float64(groupHits(g, inSel)) / selSize
		}
		popShare := float64(g.Size()) / popSize
		sum += math.Abs(selShare - popShare)
	}
	return sum / float64(len(top))
}
