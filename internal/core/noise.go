package core

import (
	"math/rand"

	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/stats"
)

// Noise configures the randomized selection the paper sketches as future
// work (Section 10): "our implementation adds some randomness in randomly
// breaking ties, and we plan to further incorporation of randomness in our
// solution, e.g., adding noise to group weights, and its effect on the
// output diversity". Both levers are implemented here; the noise ablation
// experiment measures the effect on output diversity.
type Noise struct {
	Seed int64
	// WeightStdDev perturbs every group weight multiplicatively:
	// w' = w · max(0, 1 + σ·N(0,1)). Zero leaves weights exact.
	WeightStdDev float64
	// RandomTies breaks marginal-contribution ties uniformly at random
	// instead of toward the lowest user index.
	RandomTies bool
}

// NoisyGreedy runs Algorithm 1 on a weight-perturbed copy of the instance,
// optionally with randomized tie-breaking. With zero noise and RandomTies
// false it reproduces Greedy exactly. The reported Score is always measured
// under the *original* weights, so results across noise levels are
// comparable.
func NoisyGreedy(inst *groups.Instance, budget int, noise Noise) *Result {
	rng := stats.NewRand(noise.Seed)
	work := inst
	if noise.WeightStdDev > 0 {
		wei := make([]float64, len(inst.Wei))
		for i, w := range inst.Wei {
			f := 1 + noise.WeightStdDev*rng.NormFloat64()
			if f < 0 {
				f = 0
			}
			wei[i] = w * f
		}
		cov := make([]int, len(inst.Cov))
		copy(cov, inst.Cov)
		// The perturbed weights are generic floats; the EBS exact path does
		// not apply to them.
		work = &groups.Instance{Index: inst.Index, Wei: wei, Cov: cov}
	}
	res := greedyWithTies(work, budget, noise.RandomTies, rng)
	// Re-score under the true objective.
	res.Score = inst.Score(res.Users)
	return res
}

// greedyWithTies is Algorithm 1 with a pluggable tie-break: deterministic
// (lowest index) or uniform over the argmax set via reservoir sampling.
func greedyWithTies(inst *groups.Instance, budget int, randomTies bool, rng *rand.Rand) *Result {
	ix := inst.Index
	n := ix.Repo().NumUsers()
	res := &Result{}
	if budget <= 0 || n == 0 {
		return res
	}
	marg := make([]float64, n)
	candidate := make([]bool, n)
	numCandidates := 0
	for u := 0; u < n; u++ {
		candidate[u] = true
		numCandidates++
		gs := ix.UserGroups(profile.UserID(u))
		res.Evaluations += len(gs)
		for _, g := range gs {
			if inst.Cov[g] > 0 {
				marg[u] += inst.Wei[g]
			}
		}
	}
	cov := make([]int, len(inst.Cov))
	copy(cov, inst.Cov)
	for i := 0; i < budget; i++ {
		if numCandidates == 0 {
			break
		}
		best := -1
		ties := 0
		for u := 0; u < n; u++ {
			if !candidate[u] {
				continue
			}
			switch {
			case best < 0 || marg[u] > marg[best]:
				best = u
				ties = 1
			case randomTies && marg[u] == marg[best]:
				// Reservoir sampling over the argmax set: each tied user
				// ends up selected with probability 1/ties.
				ties++
				if rng.Intn(ties) == 0 {
					best = u
				}
			}
		}
		candidate[best] = false
		numCandidates--
		res.Users = append(res.Users, profile.UserID(best))
		res.Marginals = append(res.Marginals, marg[best])
		res.Score += marg[best]
		for _, g := range ix.UserGroups(profile.UserID(best)) {
			if cov[g] <= 0 {
				continue
			}
			cov[g]--
			if cov[g] == 0 {
				w := inst.Wei[g]
				for _, member := range ix.Group(g).Members {
					if candidate[member] {
						marg[member] -= w
						res.Evaluations++
					}
				}
			}
		}
	}
	return res
}

// SelectionVariety measures output diversity across repeated randomized
// runs: the average pairwise Jaccard *distance* between the selected sets.
// 0 means every run returned the same subset; values near 1 mean nearly
// disjoint outputs.
func SelectionVariety(runs [][]profile.UserID) float64 {
	if len(runs) < 2 {
		return 0
	}
	var sum float64
	var pairs int
	for i := 0; i < len(runs); i++ {
		for j := i + 1; j < len(runs); j++ {
			sum += jaccardSetDistance(runs[i], runs[j])
			pairs++
		}
	}
	return sum / float64(pairs)
}

func jaccardSetDistance(a, b []profile.UserID) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	set := make(map[profile.UserID]bool, len(a))
	for _, u := range a {
		set[u] = true
	}
	inter := 0
	union := len(set)
	for _, u := range b {
		if set[u] {
			inter++
		} else {
			union++
		}
	}
	return 1 - float64(inter)/float64(union)
}
