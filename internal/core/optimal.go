package core

import (
	"sort"

	"podium/internal/groups"
	"podium/internal/profile"
)

// Exhaustive computes the true optimum of BASE-DIVERSITY by enumerating
// every user subset of size min(budget, |𝒰|) — the "Optimal Selection"
// baseline of Section 8.3. Intractable beyond toy sizes (the paper reports
// 443 s for |𝒰|=40, B=5 and gave up at |𝒰|=100); it exists to measure the
// greedy algorithm's empirical approximation ratio. Ties between equal-score
// optima resolve to the lexicographically smallest subset.
func Exhaustive(inst *groups.Instance, budget int) *Result {
	n := inst.Index.Repo().NumUsers()
	k := budget
	if k > n {
		k = n
	}
	res := &Result{}
	if k <= 0 {
		return res
	}
	current := make([]profile.UserID, 0, k)
	best := make([]profile.UserID, 0, k)
	bestScore := -1.0
	var recurse func(start int)
	recurse = func(start int) {
		if len(current) == k {
			res.Evaluations++
			if s := inst.Score(current); s > bestScore {
				bestScore = s
				best = append(best[:0], current...)
			}
			return
		}
		// Not enough users left to complete the subset?
		if n-start < k-len(current) {
			return
		}
		for u := start; u < n; u++ {
			current = append(current, profile.UserID(u))
			recurse(u + 1)
			current = current[:len(current)-1]
		}
	}
	recurse(0)
	res.Users = best
	res.Score = bestScore
	return res
}

// BranchAndBound computes the same optimum as Exhaustive but prunes with a
// submodular upper bound: at any node, the score of any completion is at
// most the current score plus the sum of the top-(B−|U|) individual marginal
// contributions of the remaining users (each marginal only shrinks as the
// set grows, so the sum of the current marginals bounds any future gain).
// The greedy solution warm-starts the incumbent. Tie-handling note: because
// pruning keeps the first incumbent that achieves the optimal score, the
// reported subset may be a different optimum than Exhaustive's, but the
// score is always identical.
func BranchAndBound(inst *groups.Instance, budget int) *Result {
	ix := inst.Index
	n := ix.Repo().NumUsers()
	k := budget
	if k > n {
		k = n
	}
	res := &Result{}
	if k <= 0 {
		return res
	}

	warm := Greedy(inst, k)
	best := append([]profile.UserID(nil), warm.Users...)
	sort.Slice(best, func(i, j int) bool { return best[i] < best[j] })
	bestScore := warm.Score

	cov := make([]int, len(inst.Cov))
	copy(cov, inst.Cov)
	marginal := func(u int) float64 {
		var m float64
		for _, g := range ix.UserGroups(profile.UserID(u)) {
			if cov[g] > 0 {
				m += inst.Wei[g]
			}
		}
		return m
	}

	current := make([]profile.UserID, 0, k)
	const eps = 1e-9
	var recurse func(start int, score float64)
	recurse = func(start int, score float64) {
		if len(current) == k {
			if score > bestScore+eps {
				bestScore = score
				best = append(best[:0], current...)
			}
			return
		}
		need := k - len(current)
		if n-start < need {
			return
		}
		// Upper bound: current score + top `need` marginals of remaining.
		res.Evaluations++
		margs := make([]float64, 0, n-start)
		for u := start; u < n; u++ {
			margs = append(margs, marginal(u))
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(margs)))
		bound := score
		for i := 0; i < need; i++ {
			bound += margs[i]
		}
		if bound <= bestScore+eps {
			return
		}
		for u := start; u < n; u++ {
			m := marginal(u)
			current = append(current, profile.UserID(u))
			// Remember exactly which groups this user decremented: a group
			// already saturated by an earlier user on the path must not be
			// restored on this user's undo.
			var dec []groups.GroupID
			for _, g := range ix.UserGroups(profile.UserID(u)) {
				if cov[g] > 0 {
					cov[g]--
					dec = append(dec, g)
				}
			}
			recurse(u+1, score+m)
			for _, g := range dec {
				cov[g]++
			}
			current = current[:len(current)-1]
		}
	}
	recurse(0, 0)
	res.Users = best
	res.Score = bestScore
	return res
}
