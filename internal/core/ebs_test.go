package core

import (
	"math/big"
	"testing"

	"podium/internal/groups"
	"podium/internal/profile"
)

// bigIntEBSGreedy is an independent oracle for the exact EBS path: it runs
// Algorithm 1 with marginal contributions computed in arbitrary-precision
// integers (wei(G) = (B+1)^ord(G) as big.Int), immune to both float overflow
// and the rank-bitset representation under test.
func bigIntEBSGreedy(inst *groups.Instance, budget int) []profile.UserID {
	ix := inst.Index
	n := ix.Repo().NumUsers()
	base := big.NewInt(int64(budget + 1))
	weights := make([]*big.Int, ix.NumGroups())
	for g := range weights {
		weights[g] = new(big.Int).Exp(base, big.NewInt(int64(inst.EBSRank[g])), nil)
	}
	cov := make([]int, len(inst.Cov))
	copy(cov, inst.Cov)
	selected := make([]bool, n)
	var out []profile.UserID
	for i := 0; i < budget && i < n; i++ {
		var best int = -1
		var bestM *big.Int
		for u := 0; u < n; u++ {
			if selected[u] {
				continue
			}
			m := new(big.Int)
			for _, g := range ix.UserGroups(profile.UserID(u)) {
				if cov[g] > 0 {
					m.Add(m, weights[g])
				}
			}
			if best < 0 || m.Cmp(bestM) > 0 {
				best, bestM = u, m
			}
		}
		selected[best] = true
		out = append(out, profile.UserID(best))
		for _, g := range ix.UserGroups(profile.UserID(best)) {
			if cov[g] > 0 {
				cov[g]--
			}
		}
	}
	return out
}

// The rank-bitset EBS greedy must agree with arbitrary-precision integer
// arithmetic on instances far beyond float64's reach (hundreds of groups).
func TestEBSGreedyMatchesBigIntOracle(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		inst := randomInstance(seed, 60, 25, groups.WeightEBS, groups.CoverSingle, 6)
		if inst.Index.NumGroups() < 60 {
			t.Fatalf("seed %d: only %d groups — not exercising overflow territory", seed, inst.Index.NumGroups())
		}
		got := Greedy(inst, 6).Users
		want := bigIntEBSGreedy(inst, 6)
		if len(got) != len(want) {
			t.Fatalf("seed %d: %v vs oracle %v", seed, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: position %d: %v vs oracle %v", seed, i, got, want)
			}
		}
	}
}

func TestEBSGreedyMatchesBigIntOracleWithPropCoverage(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		inst := randomInstance(seed, 40, 20, groups.WeightEBS, groups.CoverProp, 8)
		got := Greedy(inst, 8).Users
		want := bigIntEBSGreedy(inst, 8)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: %v vs oracle %v", seed, got, want)
			}
		}
	}
}
