package core

import (
	"math"
	"testing"

	"podium/internal/groups"
	"podium/internal/profile"
)

func TestExhaustivePaperExample(t *testing.T) {
	// {Alice, Eve} is also the optimum of the running example (Example 4.3
	// notes the greedy output is optimal here).
	inst := paperInstance(groups.WeightLBS, groups.CoverSingle, 2)
	opt := Exhaustive(inst, 2)
	if opt.Score != 17 {
		t.Fatalf("optimal score = %v, want 17", opt.Score)
	}
	if !usersEqual(opt.Users, []profile.UserID{0, 4}) {
		t.Fatalf("optimal subset = %v, want [0 4]", opt.Users)
	}
}

func TestExhaustiveEdgeCases(t *testing.T) {
	inst := paperInstance(groups.WeightLBS, groups.CoverSingle, 2)
	if res := Exhaustive(inst, 0); len(res.Users) != 0 {
		t.Fatalf("budget 0 selected %v", res.Users)
	}
	res := Exhaustive(inst, 99)
	if len(res.Users) != 5 {
		t.Fatalf("budget > n selected %d users", len(res.Users))
	}
}

func TestBranchAndBoundMatchesExhaustive(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		for _, ws := range []groups.WeightScheme{groups.WeightIden, groups.WeightLBS} {
			inst := randomInstance(seed, 14, 6, ws, groups.CoverSingle, 4)
			ex := Exhaustive(inst, 4)
			bb := BranchAndBound(inst, 4)
			if math.Abs(ex.Score-bb.Score) > 1e-9 {
				t.Fatalf("seed %d %v: exhaustive %v vs B&B %v", seed, ws, ex.Score, bb.Score)
			}
			if got := inst.Score(bb.Users); math.Abs(got-bb.Score) > 1e-9 {
				t.Fatalf("B&B reported score %v but subset scores %v", bb.Score, got)
			}
		}
	}
}

func TestBranchAndBoundPrunes(t *testing.T) {
	inst := randomInstance(7, 18, 6, groups.WeightLBS, groups.CoverSingle, 4)
	ex := Exhaustive(inst, 4)
	bb := BranchAndBound(inst, 4)
	if bb.Evaluations >= ex.Evaluations {
		t.Fatalf("B&B explored %d nodes vs exhaustive %d subsets — no pruning", bb.Evaluations, ex.Evaluations)
	}
}

// The central guarantee (Prop. 4.4): greedy achieves at least (1-1/e) of the
// optimal score, for every weight/coverage scheme. Empirically the paper
// reports ratios near 0.998; we assert the theoretical bound strictly and
// track the empirical ratio loosely.
func TestGreedyApproximationBound(t *testing.T) {
	const bound = 1 - 1/math.E
	worst := 1.0
	for seed := int64(0); seed < 12; seed++ {
		for _, ws := range []groups.WeightScheme{groups.WeightIden, groups.WeightLBS} {
			for _, cs := range []groups.CoverageScheme{groups.CoverSingle, groups.CoverProp} {
				inst := randomInstance(seed, 16, 6, ws, cs, 4)
				opt := Exhaustive(inst, 4)
				gr := Greedy(inst, 4)
				if opt.Score == 0 {
					continue
				}
				ratio := gr.Score / opt.Score
				if ratio < bound-1e-9 {
					t.Fatalf("seed %d %v/%v: ratio %v below 1-1/e", seed, ws, cs, ratio)
				}
				if ratio < worst {
					worst = ratio
				}
			}
		}
	}
	t.Logf("worst empirical ratio over 48 instances: %.4f", worst)
	// The paper's observation: greedy is near-optimal in practice, far above
	// the theoretical floor.
	if worst < 0.9 {
		t.Errorf("worst ratio %.4f surprisingly low for these instances", worst)
	}
}
