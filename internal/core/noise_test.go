package core

import (
	"testing"

	"podium/internal/groups"
	"podium/internal/profile"
)

func TestNoisyGreedyZeroNoiseMatchesGreedy(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		inst := randomInstance(seed, 40, 8, groups.WeightLBS, groups.CoverSingle, 6)
		plain := Greedy(inst, 6)
		noisy := NoisyGreedy(inst, 6, Noise{Seed: seed})
		if !usersEqual(plain.Users, noisy.Users) {
			t.Fatalf("seed %d: zero-noise run diverged: %v vs %v", seed, plain.Users, noisy.Users)
		}
		if plain.Score != noisy.Score {
			t.Fatalf("seed %d: scores %v vs %v", seed, plain.Score, noisy.Score)
		}
	}
}

func TestNoisyGreedyDeterministicPerSeed(t *testing.T) {
	inst := randomInstance(1, 50, 8, groups.WeightLBS, groups.CoverSingle, 6)
	noise := Noise{Seed: 7, WeightStdDev: 0.3, RandomTies: true}
	a := NoisyGreedy(inst, 6, noise)
	b := NoisyGreedy(inst, 6, noise)
	if !usersEqual(a.Users, b.Users) {
		t.Fatal("same noise seed produced different selections")
	}
}

func TestNoisyGreedyScoreUnderTrueWeights(t *testing.T) {
	inst := randomInstance(2, 18, 8, groups.WeightLBS, groups.CoverSingle, 4)
	res := NoisyGreedy(inst, 4, Noise{Seed: 3, WeightStdDev: 0.5})
	if got := inst.Score(res.Users); got != res.Score {
		t.Fatalf("reported score %v != true score %v", res.Score, got)
	}
	// A noisy selection can never beat the true optimum.
	opt := BranchAndBound(inst, 4)
	if res.Score > opt.Score+1e-9 {
		t.Fatalf("noisy score %v exceeds optimal %v", res.Score, opt.Score)
	}
}

func TestNoisyGreedyProducesVariety(t *testing.T) {
	inst := randomInstance(4, 60, 10, groups.WeightLBS, groups.CoverSingle, 6)
	var runs [][]profile.UserID
	for seed := int64(0); seed < 8; seed++ {
		runs = append(runs, NoisyGreedy(inst, 6, Noise{Seed: seed, WeightStdDev: 0.6}).Users)
	}
	if v := SelectionVariety(runs); v == 0 {
		t.Fatal("heavy weight noise produced identical selections in 8 runs")
	}
	// And zero noise yields zero variety.
	runs = runs[:0]
	for seed := int64(0); seed < 4; seed++ {
		runs = append(runs, NoisyGreedy(inst, 6, Noise{Seed: seed}).Users)
	}
	if v := SelectionVariety(runs); v != 0 {
		t.Fatalf("zero-noise variety = %v, want 0", v)
	}
}

func TestRandomTiesStayWithinArgmax(t *testing.T) {
	// All users identical → every marginal ties; random tie-breaking must
	// still produce a valid selection, and across seeds it must actually
	// vary the first pick.
	repo := profile.NewRepository()
	for i := 0; i < 10; i++ {
		u := repo.AddUser("u")
		repo.MustSetScore(u, "p", 1)
	}
	ix := groups.Build(repo, groups.Config{K: 3})
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, 3)
	firsts := map[profile.UserID]bool{}
	for seed := int64(0); seed < 30; seed++ {
		res := NoisyGreedy(inst, 3, Noise{Seed: seed, RandomTies: true})
		if len(res.Users) != 3 {
			t.Fatalf("selected %v", res.Users)
		}
		firsts[res.Users[0]] = true
	}
	if len(firsts) < 3 {
		t.Fatalf("random ties chose only %d distinct first picks in 30 runs", len(firsts))
	}
	// Deterministic tie-breaking always starts at user 0.
	det := NoisyGreedy(inst, 3, Noise{Seed: 1})
	if det.Users[0] != 0 {
		t.Fatalf("deterministic ties start at %d, want 0", det.Users[0])
	}
}

func TestSelectionVariety(t *testing.T) {
	a := []profile.UserID{1, 2, 3}
	b := []profile.UserID{1, 2, 4}
	c := []profile.UserID{7, 8, 9}
	if got := SelectionVariety([][]profile.UserID{a, a}); got != 0 {
		t.Fatalf("identical sets variety = %v", got)
	}
	if got := SelectionVariety([][]profile.UserID{a, c}); got != 1 {
		t.Fatalf("disjoint sets variety = %v", got)
	}
	// |a∩b| = 2, |a∪b| = 4 → distance 0.5.
	if got := SelectionVariety([][]profile.UserID{a, b}); got != 0.5 {
		t.Fatalf("variety = %v, want 0.5", got)
	}
	if got := SelectionVariety(nil); got != 0 {
		t.Fatalf("variety of no runs = %v", got)
	}
}
