package core

import (
	"fmt"
	"math"
	"testing"

	"podium/internal/bucketing"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/stats"
)

// paperInstance builds the running example (Table 2, Example 3.8) with the
// given schemes and budget.
func paperInstance(ws groups.WeightScheme, cs groups.CoverageScheme, budget int) *groups.Instance {
	repo := profile.PaperExample()
	ix := groups.Build(repo, Config3())
	return groups.NewInstance(ix, ws, cs, budget)
}

// Config3 is the running example's bucketing: low/medium/high at {0.4, 0.65}.
func Config3() groups.Config {
	return groups.Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3}
}

// randomInstance generates a random repository and instance for property
// and approximation tests.
func randomInstance(seed int64, nUsers, nProps int, ws groups.WeightScheme, cs groups.CoverageScheme, budget int) *groups.Instance {
	rng := stats.NewRand(seed)
	repo := profile.NewRepository()
	for u := 0; u < nUsers; u++ {
		id := repo.AddUser(fmt.Sprintf("u%d", u))
		for p := 0; p < nProps; p++ {
			if rng.Float64() < 0.5 {
				repo.MustSetScore(id, fmt.Sprintf("p%d", p), math.Round(rng.Float64()*20)/20)
			}
		}
	}
	ix := groups.Build(repo, groups.Config{K: 3})
	return groups.NewInstance(ix, ws, cs, budget)
}

func usersEqual(a, b []profile.UserID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestGreedyPaperExampleLBS(t *testing.T) {
	// Example 4.3: LBS + Single, B=2 selects {Alice, Eve} with score 17.
	inst := paperInstance(groups.WeightLBS, groups.CoverSingle, 2)
	res := Greedy(inst, 2)
	if !usersEqual(res.Users, []profile.UserID{0, 4}) {
		t.Fatalf("selected %v, want [0 4] (Alice, Eve)", res.Users)
	}
	if res.Score != 17 {
		t.Fatalf("score = %v, want 17", res.Score)
	}
	// First-pick marginals from the example's walkthrough: Alice 10, then
	// Eve 7 after Alice's groups saturate. (The paper's prose lists David's
	// initial marginal as 6, but its own update arithmetic — David dropping
	// to 2 after losing the weight-2 Tokyo group and the weight-3 Mexican
	// group — confirms 7; see DESIGN.md E9.)
	if res.Marginals[0] != 10 || res.Marginals[1] != 7 {
		t.Fatalf("marginals = %v, want [10 7]", res.Marginals)
	}
	if got := inst.Score(res.Users); got != 17 {
		t.Fatalf("recomputed score = %v", got)
	}
}

func TestGreedyPaperExampleIden(t *testing.T) {
	// Example 3.8: Iden selects the eccentric Bob: {Alice, Bob}, score 11.
	inst := paperInstance(groups.WeightIden, groups.CoverSingle, 2)
	res := Greedy(inst, 2)
	if !usersEqual(res.Users, []profile.UserID{0, 1}) {
		t.Fatalf("selected %v, want [0 1] (Alice, Bob)", res.Users)
	}
	if res.Score != 11 {
		t.Fatalf("score = %v, want 11", res.Score)
	}
}

func TestGreedyEBSPaperExample(t *testing.T) {
	// Example 3.8: EBS yields the same subset as LBS (as a set — EBS ranks
	// Eve's several size-2 groups above Alice's, so the selection order
	// flips), with different scores.
	inst := paperInstance(groups.WeightEBS, groups.CoverSingle, 2)
	res := Greedy(inst, 2)
	got := map[profile.UserID]bool{}
	for _, u := range res.Users {
		got[u] = true
	}
	if len(res.Users) != 2 || !got[0] || !got[4] {
		t.Fatalf("EBS selected %v, want {Alice, Eve}", res.Users)
	}
}

func TestGreedyBudgetLargerThanPopulation(t *testing.T) {
	inst := paperInstance(groups.WeightLBS, groups.CoverSingle, 10)
	res := Greedy(inst, 10)
	if len(res.Users) != 5 {
		t.Fatalf("selected %d users, want all 5", len(res.Users))
	}
	seen := map[profile.UserID]bool{}
	for _, u := range res.Users {
		if seen[u] {
			t.Fatalf("duplicate selection %d", u)
		}
		seen[u] = true
	}
}

func TestGreedyZeroBudget(t *testing.T) {
	inst := paperInstance(groups.WeightLBS, groups.CoverSingle, 0)
	res := Greedy(inst, 0)
	if len(res.Users) != 0 || res.Score != 0 {
		t.Fatalf("zero budget selected %v", res.Users)
	}
}

func TestGreedyRestrictedMask(t *testing.T) {
	inst := paperInstance(groups.WeightLBS, groups.CoverSingle, 2)
	// Forbid Alice: the best remaining pair under LBS.
	allowed := []bool{false, true, true, true, true}
	res := GreedyRestricted(inst, 2, allowed)
	for _, u := range res.Users {
		if u == 0 {
			t.Fatal("masked user selected")
		}
	}
	if len(res.Users) != 2 {
		t.Fatalf("selected %v", res.Users)
	}
}

func TestGreedyRestrictedAllMasked(t *testing.T) {
	inst := paperInstance(groups.WeightLBS, groups.CoverSingle, 2)
	res := GreedyRestricted(inst, 2, make([]bool, 5))
	if len(res.Users) != 0 {
		t.Fatalf("selected %v from empty candidate set", res.Users)
	}
}

func TestGreedyScoreMatchesInstanceScore(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		inst := randomInstance(seed, 50, 10, groups.WeightLBS, groups.CoverProp, 6)
		res := Greedy(inst, 6)
		if got := inst.Score(res.Users); math.Abs(got-res.Score) > 1e-6 {
			t.Fatalf("seed %d: incremental score %v != recomputed %v", seed, res.Score, got)
		}
	}
}

func TestGreedyMarginalsNonIncreasing(t *testing.T) {
	// Submodularity: greedy marginals are non-increasing in selection order.
	inst := randomInstance(3, 80, 12, groups.WeightLBS, groups.CoverSingle, 10)
	res := Greedy(inst, 10)
	for i := 1; i < len(res.Marginals); i++ {
		if res.Marginals[i] > res.Marginals[i-1]+1e-9 {
			t.Fatalf("marginals increased at %d: %v", i, res.Marginals)
		}
	}
}

func TestLazyGreedyMatchesEager(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		for _, ws := range []groups.WeightScheme{groups.WeightIden, groups.WeightLBS} {
			for _, cs := range []groups.CoverageScheme{groups.CoverSingle, groups.CoverProp} {
				inst := randomInstance(seed, 40, 8, ws, cs, 7)
				eager := Greedy(inst, 7)
				lazy := LazyGreedy(inst, 7)
				if !usersEqual(eager.Users, lazy.Users) {
					t.Fatalf("seed %d %v/%v: eager %v vs lazy %v", seed, ws, cs, eager.Users, lazy.Users)
				}
				if math.Abs(eager.Score-lazy.Score) > 1e-6 {
					t.Fatalf("seed %d: score %v vs %v", seed, eager.Score, lazy.Score)
				}
			}
		}
	}
}

func TestLazyGreedyWorkAccounting(t *testing.T) {
	// Both variants report their link-traversal work; which is cheaper is
	// instance-dependent (see the LazyGreedy doc comment), so assert only
	// that the accounting is sane and the outputs match.
	inst := randomInstance(1, 300, 20, groups.WeightLBS, groups.CoverSingle, 10)
	eager := Greedy(inst, 10)
	lazy := LazyGreedy(inst, 10)
	if eager.Evaluations <= 0 || lazy.Evaluations <= 0 {
		t.Fatalf("work counters not populated: eager %d, lazy %d", eager.Evaluations, lazy.Evaluations)
	}
	t.Logf("link traversals: eager %d, lazy %d", eager.Evaluations, lazy.Evaluations)
	if !usersEqual(eager.Users, lazy.Users) {
		t.Fatal("results differ")
	}
}

func TestEBSGreedyMatchesFloatWhenRepresentable(t *testing.T) {
	// With few groups, EBS float weights are exact; the bitset path must
	// agree with a float greedy run over the same weights.
	for seed := int64(0); seed < 8; seed++ {
		inst := randomInstance(seed, 20, 4, groups.WeightEBS, groups.CoverSingle, 5)
		if inst.Index.NumGroups() > 60 {
			continue // keep (B+1)^rank well inside float64
		}
		exact := Greedy(inst, 5) // routed to ebsGreedy
		// Float path: strip the EBS marker.
		floatInst := &groups.Instance{Index: inst.Index, Wei: inst.Wei, Cov: inst.Cov}
		approx := Greedy(floatInst, 5)
		if !usersEqual(exact.Users, approx.Users) {
			t.Fatalf("seed %d: exact %v vs float %v", seed, exact.Users, approx.Users)
		}
	}
}

func TestEBSGreedyLargeInstanceNoOverflowPanic(t *testing.T) {
	// Hundreds of groups: float weights are +Inf but the exact path must
	// still produce a full, duplicate-free selection.
	inst := randomInstance(2, 200, 130, groups.WeightEBS, groups.CoverSingle, 8)
	if inst.Index.NumGroups() < 320 {
		t.Fatalf("only %d groups generated — instance no longer exercises float overflow", inst.Index.NumGroups())
	}
	res := Greedy(inst, 8)
	if len(res.Users) != 8 {
		t.Fatalf("selected %d users", len(res.Users))
	}
	seen := map[profile.UserID]bool{}
	for _, u := range res.Users {
		if seen[u] {
			t.Fatal("duplicate selection")
		}
		seen[u] = true
	}
}

func TestEBSGreedyPrefersLargestGroup(t *testing.T) {
	// EBS semantics: a user covering the single largest group must beat a
	// user covering many small ones.
	repo := profile.NewRepository()
	// u0..u4 share property "big"; u5 alone has five tiny properties.
	for i := 0; i < 5; i++ {
		u := repo.AddUser(fmt.Sprintf("big%d", i))
		repo.MustSetScore(u, "big", 1)
	}
	loner := repo.AddUser("loner")
	for p := 0; p < 5; p++ {
		repo.MustSetScore(loner, fmt.Sprintf("tiny%d", p), 1)
	}
	ix := groups.Build(repo, groups.Config{K: 3})
	inst := groups.NewInstance(ix, groups.WeightEBS, groups.CoverSingle, 1)
	res := Greedy(inst, 1)
	if len(res.Users) != 1 || res.Users[0] == loner {
		t.Fatalf("EBS picked %v; covering the largest group must dominate", res.Users)
	}
}

func TestIdenPrefersEccentricUser(t *testing.T) {
	// Mirror image of the EBS test: under Iden the loner's five groups beat
	// one shared group.
	repo := profile.NewRepository()
	for i := 0; i < 5; i++ {
		u := repo.AddUser(fmt.Sprintf("big%d", i))
		repo.MustSetScore(u, "big", 1)
	}
	loner := repo.AddUser("loner")
	for p := 0; p < 5; p++ {
		repo.MustSetScore(loner, fmt.Sprintf("tiny%d", p), 1)
	}
	ix := groups.Build(repo, groups.Config{K: 3})
	inst := groups.NewInstance(ix, groups.WeightIden, groups.CoverSingle, 1)
	res := Greedy(inst, 1)
	if len(res.Users) != 1 || res.Users[0] != loner {
		t.Fatalf("Iden picked %v, want the eccentric loner", res.Users)
	}
}

func TestGreedyPropCoverageRewardsRepeats(t *testing.T) {
	// With Prop coverage a large group wants multiple representatives.
	repo := profile.NewRepository()
	for i := 0; i < 8; i++ {
		u := repo.AddUser(fmt.Sprintf("m%d", i))
		repo.MustSetScore(u, "shared", 1)
	}
	odd := repo.AddUser("odd")
	repo.MustSetScore(odd, "rare", 1)
	ix := groups.Build(repo, groups.Config{K: 3})

	single := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, 3)
	sres := Greedy(single, 3)
	// Under Single, after one "shared" member the rest add 0; the rare user
	// must appear.
	foundOdd := false
	for _, u := range sres.Users {
		if u == odd {
			foundOdd = true
		}
	}
	if !foundOdd {
		t.Fatalf("Single coverage did not pick the rare user: %v", sres.Users)
	}

	prop := groups.NewInstance(ix, groups.WeightLBS, groups.CoverProp, 3)
	pres := Greedy(prop, 3)
	// cov(shared) = max(⌊3·8/9⌋,1) = 2: two shared members outweigh the
	// rare one under LBS (8+8 > 8+1).
	shared := 0
	for _, u := range pres.Users {
		if u != odd {
			shared++
		}
	}
	if shared < 2 {
		t.Fatalf("Prop coverage selected only %d shared members: %v", shared, pres.Users)
	}
}
