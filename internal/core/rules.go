package core

import (
	"fmt"
	"math"
	"time"

	"podium/internal/groups"
	"podium/internal/profile"
)

// Pluggable selection rules: the marginal-gain objective, factored out of the
// engine. Every rule is expressed as a per-group *credit schedule*
//
//	w_G(t) = credit the (t+1)-th selected member of G contributes,
//
// non-increasing in t. The rule objective Σ_G Σ_{t<|U∩G|} w_G(t) is then
// monotone submodular by construction — a user's marginal contribution
// Σ_{G∋u} w_G(t_G) only shrinks as the selection grows — so every
// acceleration the coverage engine earned carries over unchanged: Minoux's
// lazy greedy stays valid (stale keys remain upper bounds), the delta-repaired
// SelectorState stays exact (base rows are plain sums of initial credits), and
// the GreeDi merge round keeps its constant-factor composition.
//
// The registered rules:
//
//   - coverage (default): w_G(t) = wei(G) while t < cov(G), then 0 — exactly
//     the paper's score_𝒢 objective (Definition 3.3), and exactly what the
//     cov-saturation loop in engine.go implements. The default rule keeps
//     running through that engine, so its selections are bit-identical to
//     every release before rules existed.
//   - harmonic: w_G(t) = wei(G)/(t+1) — proportional (diminishing) credit in
//     the spirit of proportional-approval weighting: the k-th member of a
//     group is worth 1/k of the first, so large groups keep attracting
//     representatives without ever saturating.
//   - maxcov: w_G(t) = 1 at t = 0, else 0 — pure max-coverage over groups with
//     a remaining requirement, ignoring weights entirely. Because it never
//     reads wei(G), it runs on EBS instances through the float engine.
//   - fairness-floor: minimum representation first (Moumoulidou et al.,
//     Diverse Data Selection under Fairness Constraints): until a group has
//     one representative its credit is lifted by a dominance constant
//     M > MaxScore, so the greedy covers every coverable group's floor before
//     optimizing coverage — the CustomInstance tiering idiom applied to
//     per-group floors. Past the floor the schedule is the coverage schedule.
//
// Bit-identity across paths: the repository's engines agree bit for bit
// because their float arithmetic is exact — standard weights are integers, so
// eager retraction (base − Σ d) and lazy fresh sums (Σ curW) compute the same
// reals with no rounding. Harmonic credits are not integers, so they are
// quantized to dyadic rationals (multiples of 2⁻²⁰): sums and differences of
// dyadics at one scale are exact in float64, restoring the same
// every-path-agrees property for every rule. The rules property suite
// (rules_test.go) enforces it across Greedy, LazyGreedy, SelectorState repair
// and MergeGreedy at parallelism 1, 2 and 8.

// creditFunc is one instance-bound credit schedule: w_G(t) for group g after
// t of its members have been selected. Implementations must be non-increasing
// in t and non-negative.
type creditFunc func(g, t int) float64

// Rule is one pluggable selection objective. Rules are stateless descriptors;
// per-instance state (dominance constants, weight tables) binds when a run
// starts. The zero Rule is invalid — use LookupRule or DefaultRule.
type Rule struct {
	name        string
	description string
	def         bool
	// ebsExact routes EBS instances to the exact rank-vector greedy (only
	// the coverage rule, whose objective the rank vectors encode).
	ebsExact bool
	// ebsOK marks rules whose credits never read Wei, so EBS instances —
	// whose float weights overflow — run the float engine safely.
	ebsOK bool
	// credits binds the schedule to an instance.
	credits func(inst *groups.Instance) creditFunc
}

// Name returns the rule's wire name ("coverage", "harmonic", ...).
func (r *Rule) Name() string { return r.name }

// Description is the one-line human description served by /api/v1/rules.
func (r *Rule) Description() string { return r.description }

// IsDefault reports whether this is the default rule (coverage).
func (r *Rule) IsDefault() bool { return r.def }

// EBSCompatible reports whether the rule can run on EBS-weighted instances.
func (r *Rule) EBSCompatible() bool { return r.ebsExact || r.ebsOK }

// creditQuantumBits sets the dyadic quantization grid for non-integer
// credits: 2⁻²⁰ ≈ 1e-6 relative resolution, far below any meaningful
// preference difference and fine enough that quantization never reorders two
// genuinely different marginals.
const creditQuantumBits = 20

// quantizeCredit rounds x to the nearest multiple of 2⁻²⁰. All engine
// arithmetic over quantized credits — base-row sums, retraction differences,
// lazy refreshes — is exact in float64 (dyadic rationals on one grid), which
// is what keeps every execution path bit-identical per rule.
func quantizeCredit(x float64) float64 {
	const q = 1 << creditQuantumBits
	return math.Round(x*q) / q
}

var ruleCoverage = &Rule{
	name:        "coverage",
	description: "Weighted group coverage up to each group's requirement (the paper's score function; default).",
	def:         true,
	ebsExact:    true,
	credits: func(inst *groups.Instance) creditFunc {
		wei, cov := inst.Wei, inst.Cov
		return func(g, t int) float64 {
			if t < cov[g] {
				return wei[g]
			}
			return 0
		}
	},
}

var ruleFairnessFloor = &Rule{
	name:        "fairness-floor",
	description: "Guarantees one representative per coverable group before maximizing coverage (Moumoulidou et al.).",
	credits: func(inst *groups.Instance) creditFunc {
		// M dominates any standard marginal (≤ MaxScore), so floor credit
		// always outranks post-floor credit; floor+1 keeps it an integer,
		// preserving exact float sums for integer-weighted instances.
		m := math.Floor(inst.MaxScore()) + 1
		wei, cov := inst.Wei, inst.Cov
		return func(g, t int) float64 {
			var w float64
			if t < cov[g] {
				w = wei[g]
			}
			if t < 1 && cov[g] > 0 {
				return m + w
			}
			return w
		}
	},
}

var ruleHarmonic = &Rule{
	name:        "harmonic",
	description: "Diminishing per-group credit wei(G)/k for a group's k-th representative; groups never saturate.",
	credits: func(inst *groups.Instance) creditFunc {
		wei, cov := inst.Wei, inst.Cov
		return func(g, t int) float64 {
			if cov[g] <= 0 {
				// Residual instances zero a group's requirement once the
				// existing panel covers it; harmonic honors that so campaign
				// repair chases only what was lost.
				return 0
			}
			return quantizeCredit(wei[g] / float64(t+1))
		}
	},
}

var ruleMaxcov = &Rule{
	name:        "maxcov",
	description: "Pure max-coverage: one unit for a group's first representative, no weight scaling.",
	ebsOK:       true,
	credits: func(inst *groups.Instance) creditFunc {
		cov := inst.Cov
		return func(g, t int) float64 {
			if t == 0 && cov[g] > 0 {
				return 1
			}
			return 0
		}
	},
}

// ruleRegistry lists the registered rules in wire order (alphabetical, which
// places the default first). Registration is static: rules are part of the
// API surface, not a runtime extension point.
var ruleRegistry = []*Rule{ruleCoverage, ruleFairnessFloor, ruleHarmonic, ruleMaxcov}

// Rules returns the registered rules in stable wire order. Callers must not
// modify the returned slice.
func Rules() []*Rule { return ruleRegistry }

// DefaultRule returns the coverage rule — the objective every pre-rules
// release ran, and what an empty rule name selects.
func DefaultRule() *Rule { return ruleCoverage }

// RuleNames returns the registered rule names in wire order.
func RuleNames() []string {
	names := make([]string, len(ruleRegistry))
	for i, r := range ruleRegistry {
		names[i] = r.name
	}
	return names
}

// LookupRule resolves a rule by wire name; the empty string selects the
// default. Unknown names error, listing the registered rules.
func LookupRule(name string) (*Rule, error) {
	if name == "" {
		return ruleCoverage, nil
	}
	for _, r := range ruleRegistry {
		if r.name == name {
			return r, nil
		}
	}
	return nil, fmt.Errorf("core: unknown rule %q (registered rules: %v)", name, RuleNames())
}

// OrDefault normalizes a nil rule to the default.
func (r *Rule) OrDefault() *Rule {
	if r == nil {
		return ruleCoverage
	}
	return r
}

// checkInstance rejects rule/instance combinations the engines cannot run
// exactly (weight-reading rules on EBS instances, whose float weights
// overflow).
func (r *Rule) checkInstance(inst *groups.Instance) error {
	if inst.EBS && !r.EBSCompatible() {
		return fmt.Errorf("core: rule %q does not support EBS weights (exact rank arithmetic implements only the coverage objective)", r.name)
	}
	return nil
}

// baseMarginals returns marg_{u,∅} under r: Σ_{G∋u} w_G(0). The default rule
// aliases the instance's memoized BaseMarginals (callers must not mutate);
// other rules compute a fresh slice the caller owns.
func (r *Rule) baseMarginals(inst *groups.Instance) []float64 {
	if r.def {
		return inst.BaseMarginals()
	}
	return r.baseFrom(inst, nil)
}

// baseFrom computes per-user base marginals with each group's schedule
// advanced to t0[g] selected members (nil means zero everywhere). The pass
// runs group-major in ascending GroupID order — per user, exactly the float
// order of summing its CSR row ascending, the BaseMarginals contract that
// makes delta repair's per-row re-sums bit-identical.
func (r *Rule) baseFrom(inst *groups.Instance, t0 []int) []float64 {
	credit := r.credits(inst)
	ix := inst.Index
	csr := ix.CSR()
	marg := make([]float64, ix.Repo().NumUsers())
	for g, lim := 0, ix.NumGroups(); g < lim; g++ {
		t := 0
		if t0 != nil {
			t = t0[g]
		}
		w := credit(g, t)
		if w == 0 {
			continue
		}
		for _, m := range csr.Members(groups.GroupID(g)) {
			marg[m] += w
		}
	}
	return marg
}

// initialCredits returns w_G(0) for every group — the effective weights a
// rule's base rows sum, which the SelectorState compares across epochs to
// find rows invalidated by a mutation batch.
func (r *Rule) initialCredits(inst *groups.Instance) []float64 {
	credit := r.credits(inst)
	nG := inst.Index.NumGroups()
	eff := make([]float64, nG)
	for g := 0; g < nG; g++ {
		eff[g] = credit(g, 0)
	}
	return eff
}

// creditGreedy is the generalized eager engine: engineGreedy's structure —
// compacted candidate list, deterministic (optionally sharded) argmax,
// retraction on credit change — driven by a rule's credit schedule instead of
// the cov-saturation special case. Per group it tracks the selected-member
// count and the current credit; when a pick moves a group down its schedule,
// the credit delta is retracted from every member's marginal, exactly one
// subtraction per (group, member) pair in ascending group order, so sharded
// and sequential runs round identically. t0, when non-nil, pre-advances each
// group's schedule (resuming from a partial panel — see GreedyCompleteRule).
//
// The default rule does not route here in production (engine.go serves it,
// preserving the memoized-BaseMarginals fast path and historical Evaluations
// accounting bit for bit); the property suite still cross-checks this engine
// against it.
func creditGreedy(inst *groups.Instance, budget int, allowed []bool, t0 []int, r *Rule, opt Options) *Result {
	ix := inst.Index
	n := ix.Repo().NumUsers()
	res := &Result{}
	if budget <= 0 || n == 0 {
		return res
	}
	csr := ix.CSR()
	workers := opt.workerCount()
	credit := r.credits(inst)
	nG := ix.NumGroups()

	tim := opt.Timings
	var t0c time.Time
	if tim != nil {
		tim.Runs++
		t0c = time.Now()
	}

	cand := make([]int32, 0, n)
	for u := 0; u < n; u++ {
		if allowed == nil || allowed[u] {
			cand = append(cand, int32(u))
		}
	}
	if len(cand) == 0 {
		return res
	}

	var marg []float64
	if t0 == nil && r.def {
		marg = make([]float64, n)
		copy(marg, inst.BaseMarginals())
	} else {
		marg = r.baseFrom(inst, t0)
	}
	for _, cu := range cand {
		res.Evaluations += csr.UserDegree(profile.UserID(cu))
	}

	// Schedule position and current credit per group.
	cnt := make([]int, nG)
	curW := make([]float64, nG)
	for g := 0; g < nG; g++ {
		t := 0
		if t0 != nil {
			t = t0[g]
			cnt[g] = t
		}
		curW[g] = credit(g, t)
	}

	picks := budget
	if picks > len(cand) {
		picks = len(cand)
	}
	res.Users = make([]profile.UserID, 0, picks)
	res.Marginals = make([]float64, 0, picks)

	if tim != nil {
		tim.InitNs += time.Since(t0c).Nanoseconds()
	}

	for i := 0; i < budget && len(cand) > 0; i++ {
		if tim != nil {
			tim.Picks++
			t0c = time.Now()
		}
		var bi int
		if workers > 1 && len(cand) >= engineParallelCutoff {
			bi = parallelArgmax(cand, marg, workers, tim)
		} else {
			bm := marg[cand[0]]
			for j := 1; j < len(cand); j++ {
				if marg[cand[j]] > bm {
					bm = marg[cand[j]]
					bi = j
				}
			}
		}
		if tim != nil {
			tim.ArgmaxNs += time.Since(t0c).Nanoseconds()
		}
		best := int(cand[bi])
		cand = append(cand[:bi], cand[bi+1:]...)
		res.Users = append(res.Users, profile.UserID(best))
		res.Marginals = append(res.Marginals, marg[best])
		res.Score += marg[best]
		if tim != nil {
			t0c = time.Now()
		}
		for _, g := range csr.UserGroups(profile.UserID(best)) {
			t := cnt[g] + 1
			cnt[g] = t
			nw := credit(int(g), t)
			if nw == curW[g] {
				continue
			}
			d := curW[g] - nw
			curW[g] = nw
			members := csr.Members(g)
			res.Evaluations += len(members)
			if workers > 1 && len(members) >= engineParallelCutoff {
				shardRange(len(members), workers, func(lo, hi int) {
					for _, m := range members[lo:hi] {
						marg[m] -= d
					}
				})
			} else {
				for _, m := range members {
					marg[m] -= d
				}
			}
		}
		if tim != nil {
			tim.RetractNs += time.Since(t0c).Nanoseconds()
		}
	}
	return res
}

// GreedyRule runs Algorithm 1 under a pluggable rule. A nil rule selects the
// default (coverage), which executes through exactly the same engine as
// Greedy — bit-identical selections. Other rules run the generalized credit
// engine; EBS instances accept only EBS-compatible rules.
func GreedyRule(inst *groups.Instance, budget int, r *Rule, opt Options) (*Result, error) {
	return GreedyRestrictedRule(inst, budget, nil, r, opt)
}

// GreedyRestrictedRule is GreedyRule over a restricted candidate set.
func GreedyRestrictedRule(inst *groups.Instance, budget int, allowed []bool, r *Rule, opt Options) (*Result, error) {
	r = r.OrDefault()
	if err := r.checkInstance(inst); err != nil {
		return nil, err
	}
	if r.def {
		return GreedyRestrictedOpts(inst, budget, allowed, opt), nil
	}
	if inst.EBS && !r.ebsOK {
		// Unreachable after checkInstance; kept as a structural guard.
		return nil, r.checkInstance(inst)
	}
	return creditGreedy(inst, budget, allowed, nil, r, opt), nil
}

// LazyGreedyRule is Minoux's accelerated greedy under a pluggable rule —
// valid for every registered rule because credit schedules are non-increasing
// (stale heap keys stay upper bounds). Selections are bit-identical to
// GreedyRule for the same rule.
func LazyGreedyRule(inst *groups.Instance, budget int, allowed []bool, r *Rule, opt Options) (*Result, error) {
	r = r.OrDefault()
	if err := r.checkInstance(inst); err != nil {
		return nil, err
	}
	return lazyGreedyRule(inst, budget, allowed, r, opt), nil
}

// MergeGreedyRule is the GreeDi merge round under a pluggable rule: exact
// rule-greedy of size budget over the union of per-shard winners, evaluated
// on the full instance. The submodularity of every credit-schedule objective
// carries the same constant-factor composition the coverage merge has.
func MergeGreedyRule(inst *groups.Instance, candidates []profile.UserID, budget int, r *Rule, opt Options) (*Result, error) {
	allowed, err := candidateMask(inst, candidates)
	if err != nil {
		return nil, err
	}
	return GreedyRestrictedRule(inst, budget, allowed, r, opt)
}

// GreedyCompleteRule tops up a partial panel under a pluggable rule. For the
// default rule it is exactly GreedyComplete. Other rules resume their credit
// schedules from the panel: each group's schedule starts at t = |have ∩ G|,
// which is the rule-general form of the residual-coverage construction (for
// coverage, advancing the schedule by t hits is reducing cov by t). Members
// of have never re-enter the candidate pool.
func GreedyCompleteRule(inst *groups.Instance, budget int, have []profile.UserID, allowed []bool, r *Rule, opt Options) (*Result, error) {
	r = r.OrDefault()
	if r.def {
		return GreedyComplete(inst, budget, have, allowed, opt), nil
	}
	if err := r.checkInstance(inst); err != nil {
		return nil, err
	}
	ix := inst.Index
	n := ix.Repo().NumUsers()
	t0 := make([]int, ix.NumGroups())
	restricted := make([]bool, n)
	if allowed == nil {
		for u := range restricted {
			restricted[u] = true
		}
	} else {
		copy(restricted, allowed)
	}
	seen := make(map[profile.UserID]bool, len(have))
	for _, u := range have {
		if int(u) < 0 || int(u) >= n || seen[u] {
			continue
		}
		seen[u] = true
		restricted[u] = false
		for _, g := range ix.UserGroups(u) {
			t0[g]++
		}
	}
	return creditGreedy(inst, budget, restricted, t0, r, opt), nil
}

// candidateMask validates merge candidates against the population and folds
// them into an allowed mask (duplicates collapse).
func candidateMask(inst *groups.Instance, candidates []profile.UserID) ([]bool, error) {
	n := inst.Index.Repo().NumUsers()
	allowed := make([]bool, n)
	for _, u := range candidates {
		if int(u) < 0 || int(u) >= n {
			return nil, fmt.Errorf("core: merge candidate %d outside population of %d", u, n)
		}
		allowed[u] = true
	}
	return allowed, nil
}

// MustRule is LookupRule for call sites with static rule strings (tests,
// benches); it panics on unknown names.
func MustRule(name string) *Rule {
	r, err := LookupRule(name)
	if err != nil {
		panic(err)
	}
	return r
}
