package core

import (
	"podium/internal/groups"
	"podium/internal/profile"
)

// GreedyComplete tops up a partial panel: it runs the restricted greedy of
// GreedyRestricted against the *residual* instance in which every group's
// coverage requirement is reduced by the hits the existing panel already
// provides. Members of have never re-enter the candidate pool, and when
// allowed is non-nil only users with allowed[u] == true are candidates.
//
// This is the coverage-repair primitive of the campaign orchestrator
// (internal/campaign): after dropouts shrink a solicited panel, the groups
// the respondents still cover contribute nothing to marginals, so the
// replacement picks chase exactly the coverage the dropouts took with them —
// equivalent to resuming Algorithm 1 from the partial selection over the
// refined population. Marginals in the returned Result are therefore true
// marginals with respect to have: Score(have ∪ picks) − Score(have) equals
// the sum of the returned marginals up to float rounding.
func GreedyComplete(inst *groups.Instance, budget int, have []profile.UserID, allowed []bool, opt Options) *Result {
	if len(have) == 0 {
		return GreedyRestrictedOpts(inst, budget, allowed, opt)
	}
	ix := inst.Index
	n := ix.Repo().NumUsers()

	// Residual coverage: cov′(G) = max(0, cov(G) − |have ∩ G|), duplicates
	// in have counted once (as in Instance.Score).
	cov := make([]int, len(inst.Cov))
	copy(cov, inst.Cov)
	seen := make(map[profile.UserID]bool, len(have))
	for _, u := range have {
		if int(u) < 0 || int(u) >= n || seen[u] {
			continue
		}
		seen[u] = true
		for _, g := range ix.UserGroups(u) {
			if cov[g] > 0 {
				cov[g]--
			}
		}
	}

	// Exclude the existing panel from the candidate pool.
	restricted := make([]bool, n)
	if allowed == nil {
		for u := range restricted {
			restricted[u] = true
		}
	} else {
		copy(restricted, allowed)
	}
	for u := range seen {
		restricted[u] = false
	}

	residual := &groups.Instance{
		Index:   inst.Index,
		Wei:     inst.Wei,
		Cov:     cov,
		EBS:     inst.EBS,
		EBSRank: inst.EBSRank,
	}
	return GreedyRestrictedOpts(residual, budget, restricted, opt)
}
