package core

import (
	"testing"

	"podium/internal/groups"
	"podium/internal/stats"
)

// forceShardedPaths lowers the engine's parallel cutoff so the sharded loops
// run even on property-test-sized instances, restoring it on cleanup.
func forceShardedPaths(t *testing.T) {
	t.Helper()
	saved := engineParallelCutoff
	engineParallelCutoff = 1
	t.Cleanup(func() { engineParallelCutoff = saved })
}

// resultsIdentical requires bit-identical results: same users in the same
// order, the exact same marginal floats, and the exact same score.
func resultsIdentical(a, b *Result) bool {
	if len(a.Users) != len(b.Users) || a.Score != b.Score {
		return false
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] || a.Marginals[i] != b.Marginals[i] {
			return false
		}
	}
	return true
}

// TestEngineEquivalenceProperty holds the CSR engine to the pre-engine
// implementation across 50 random instances: varying seeds, all three weight
// schemes, both coverage schemes, and nil/dense/sparse allowed masks. At
// every Parallelism in {1, 2, 8} the engine must reproduce ReferenceGreedy's
// Result — users, order, marginals, score — bit for bit.
func TestEngineEquivalenceProperty(t *testing.T) {
	forceShardedPaths(t)
	weightSchemes := []groups.WeightScheme{groups.WeightIden, groups.WeightLBS, groups.WeightEBS}
	coverSchemes := []groups.CoverageScheme{groups.CoverSingle, groups.CoverProp}
	for i := 0; i < 50; i++ {
		seed := int64(i)
		ws := weightSchemes[i%len(weightSchemes)]
		cs := coverSchemes[(i/3)%len(coverSchemes)]
		rng := stats.NewRand(1000 + seed)
		nUsers := 20 + rng.Intn(100)
		nProps := 3 + rng.Intn(10)
		budget := 1 + rng.Intn(12)
		inst := randomInstance(seed, nUsers, nProps, ws, cs, budget)
		n := inst.Index.Repo().NumUsers()

		// Mask variants cycle: unrestricted, dense (~50%), sparse (~10%) —
		// the last exercises the compacted-candidate path on a small 𝒰′.
		var allowed []bool
		switch i % 3 {
		case 1, 2:
			p := 0.5
			if i%3 == 2 {
				p = 0.1
			}
			allowed = make([]bool, n)
			for u := range allowed {
				allowed[u] = rng.Float64() < p
			}
		}

		want := ReferenceGreedy(inst, budget, allowed)
		for _, par := range []int{1, 2, 8} {
			got := GreedyRestrictedOpts(inst, budget, allowed, Options{Parallelism: par})
			if !resultsIdentical(want, got) {
				t.Fatalf("instance %d (ws=%v cs=%v n=%d B=%d mask=%d) parallelism=%d:\nreference users=%v marginals=%v score=%v\nengine    users=%v marginals=%v score=%v",
					i, ws, cs, n, budget, i%3, par,
					want.Users, want.Marginals, want.Score,
					got.Users, got.Marginals, got.Score)
			}
		}
		// The lazy variant shares the tie-break total order; require the same
		// selection in the same order at each Parallelism (its marginals are
		// recomputed sums, identical here because nothing reorders the row).
		for _, par := range []int{1, 2, 8} {
			lazy := LazyGreedyRestrictedOpts(inst, budget, allowed, Options{Parallelism: par})
			if len(lazy.Users) != len(want.Users) {
				t.Fatalf("instance %d parallelism=%d: lazy selected %v, reference %v", i, par, lazy.Users, want.Users)
			}
			for j := range lazy.Users {
				if lazy.Users[j] != want.Users[j] {
					t.Fatalf("instance %d parallelism=%d: lazy selected %v, reference %v", i, par, lazy.Users, want.Users)
				}
			}
		}
	}
}

// TestEngineEquivalenceCustomPath runs the same equivalence through
// GreedyCustomOpts, whose refined 𝒰′ and tiered weights are the motivating
// workload for the compacted candidate list.
func TestEngineEquivalenceCustomPath(t *testing.T) {
	forceShardedPaths(t)
	for seed := int64(0); seed < 8; seed++ {
		inst := randomInstance(seed, 60, 8, groups.WeightLBS, groups.CoverSingle, 6)
		ng := inst.Index.NumGroups()
		rng := stats.NewRand(2000 + seed)
		var fb Feedback
		for g := 0; g < ng; g++ {
			switch {
			case rng.Float64() < 0.1:
				fb.Priority = append(fb.Priority, groups.GroupID(g))
			case rng.Float64() < 0.05:
				fb.MustNot = append(fb.MustNot, groups.GroupID(g))
			}
		}
		allowed := RefineUsers(inst.Index, fb)
		tiered := CustomInstance(inst, fb)
		want := ReferenceGreedy(tiered, 6, allowed)
		for _, par := range []int{1, 2, 8} {
			got, err := GreedyCustomOpts(inst, fb, 6, Options{Parallelism: par})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if !resultsIdentical(want, got.Result) {
				t.Fatalf("seed %d parallelism=%d: custom engine diverged from reference\nwant %v %v\ngot  %v %v",
					seed, par, want.Users, want.Marginals, got.Users, got.Marginals)
			}
		}
	}
}
