package core

import (
	"podium/internal/groups"
	"podium/internal/profile"
)

// The second round of GreeDi-style two-round distributed greedy (Mirzasoleiman
// et al.): shard executors each run greedy of size k over their partition of
// the population, and the merge round runs *exact* greedy over the union of
// the shard winners, evaluated on the full instance. Because score_𝒢 is
// monotone submodular (Prop. 4.2), the composition carries a constant-factor
// guarantee of the (1−1/e)·(1−1/e) shape relative to the optimum — each round
// individually is a (1−1/e) greedy over a restricted ground set that contains
// a near-optimal subset. The harness below measures the empirical ratio
// against single-node greedy, which the dist bench reports.

// MergeGreedy runs the merge round: exact greedy of size budget over the
// union of per-shard winner sets, restricted on the full-population instance
// so marginals are evaluated against global coverage. Duplicate candidates
// (a user cannot be on two shards, but callers may merge overlapping lists)
// collapse into the allowed mask. Options tune execution only; the result is
// deterministic for a fixed candidate set.
func MergeGreedy(inst *groups.Instance, candidates []profile.UserID, budget int, opt Options) (*Result, error) {
	allowed, err := candidateMask(inst, candidates)
	if err != nil {
		return nil, err
	}
	return GreedyRestrictedOpts(inst, budget, allowed, opt), nil
}

// MergeProof is the proof-harness record for one instance: the merged
// two-round score against the single-node exact greedy score on the same
// instance and budget. Ratio is Merged/Exact (1 when exact is zero — an
// empty instance trivially merges losslessly).
type MergeProof struct {
	Merged float64
	Exact  float64
	// Ratio = Merged/Exact ∈ [0,1]: the empirical counterpart of the
	// (1−1/e)² composition bound. Greedy itself is a (1−1/e) approximation,
	// so ratio 1.0 means the merge lost nothing relative to single-node
	// greedy, not relative to OPT.
	Ratio float64
}

// ProveMerge runs the harness: two-round selection through the given
// candidate union vs. single-node greedy on the full instance.
func ProveMerge(inst *groups.Instance, candidates []profile.UserID, budget int, opt Options) (*Result, MergeProof, error) {
	merged, err := MergeGreedy(inst, candidates, budget, opt)
	if err != nil {
		return nil, MergeProof{}, err
	}
	exact := GreedyOpts(inst, budget, opt)
	p := MergeProof{Merged: merged.Score, Exact: exact.Score, Ratio: 1}
	if exact.Score > 0 {
		p.Ratio = merged.Score / exact.Score
	}
	return merged, p, nil
}
