package core

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/stats"
	"podium/internal/synth"
)

func TestRuleRegistry(t *testing.T) {
	rules := Rules()
	if len(rules) != 4 {
		t.Fatalf("registry has %d rules, want 4", len(rules))
	}
	if !rules[0].IsDefault() || rules[0].Name() != "coverage" {
		t.Fatalf("first registered rule is %q (default=%v), want the coverage default", rules[0].Name(), rules[0].IsDefault())
	}
	if DefaultRule() != rules[0] {
		t.Fatal("DefaultRule is not the registered default")
	}
	wantNames := []string{"coverage", "fairness-floor", "harmonic", "maxcov"}
	names := RuleNames()
	for i, n := range wantNames {
		if names[i] != n {
			t.Fatalf("RuleNames() = %v, want %v", names, wantNames)
		}
	}
	for _, r := range rules {
		if r.Description() == "" {
			t.Fatalf("rule %q has no description", r.Name())
		}
		got, err := LookupRule(r.Name())
		if err != nil || got != r {
			t.Fatalf("LookupRule(%q) = %v, %v", r.Name(), got, err)
		}
	}
	if r, err := LookupRule(""); err != nil || r != DefaultRule() {
		t.Fatalf("LookupRule(\"\") = %v, %v, want the default", r, err)
	}
	if _, err := LookupRule("borda"); err == nil {
		t.Fatal("LookupRule on an unknown name did not error")
	} else {
		for _, n := range wantNames {
			if !strings.Contains(err.Error(), n) {
				t.Fatalf("unknown-rule error %q does not list registered rule %q", err, n)
			}
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("MustRule on an unknown name did not panic")
			}
		}()
		MustRule("borda")
	}()
	// EBS compatibility matrix: coverage has the exact rank path, maxcov never
	// reads weights, the weight-scaling rules are rejected.
	for _, tc := range []struct {
		name string
		ok   bool
	}{{"coverage", true}, {"maxcov", true}, {"harmonic", false}, {"fairness-floor", false}} {
		if MustRule(tc.name).EBSCompatible() != tc.ok {
			t.Fatalf("rule %q EBSCompatible = %v, want %v", tc.name, !tc.ok, tc.ok)
		}
	}
}

func TestQuantizeCreditDyadic(t *testing.T) {
	const q = 1 << creditQuantumBits
	for _, x := range []float64{1.0 / 3, 2.0 / 7, 5.0 / 11, 17.0 / 13, 1e-9, 123456.789} {
		v := quantizeCredit(x)
		if scaled := v * q; scaled != math.Trunc(scaled) {
			t.Fatalf("quantizeCredit(%v) = %v is not a multiple of 2^-%d", x, v, creditQuantumBits)
		}
		if math.Abs(v-x) > 1.0/(2*q) {
			t.Fatalf("quantizeCredit(%v) = %v rounded farther than half a quantum", x, v)
		}
	}
	// Integers are fixed points: the coverage/fairness-floor schedules must
	// survive quantization untouched.
	for _, x := range []float64{0, 1, 2, 37, 1 << 30} {
		if quantizeCredit(x) != x {
			t.Fatalf("quantizeCredit(%v) moved an integer", x)
		}
	}
}

// replayScore recomputes a selection's score and per-pick marginals by
// replaying the rule's credit schedule over the picks in order — an
// engine-independent accounting that catches any drift in the eager engine's
// base-minus-retraction arithmetic or the lazy engine's refresh sums.
func replayScore(inst *groups.Instance, r *Rule, users []profile.UserID) (float64, []float64) {
	credit := r.credits(inst)
	csr := inst.Index.CSR()
	cnt := make([]int, inst.Index.NumGroups())
	marg := make([]float64, len(users))
	var score float64
	for i, u := range users {
		var m float64
		for _, g := range csr.UserGroups(u) {
			m += credit(int(g), cnt[g])
		}
		for _, g := range csr.UserGroups(u) {
			cnt[g]++
		}
		marg[i] = m
		score += m
	}
	return score, marg
}

// checkReplay holds a result to the schedule replay bit for bit.
func checkReplay(t *testing.T, inst *groups.Instance, r *Rule, res *Result, what string) {
	t.Helper()
	score, marg := replayScore(inst, r, res.Users)
	if score != res.Score {
		t.Fatalf("%s: rule %q score %v, schedule replay %v", what, r.Name(), res.Score, score)
	}
	for i := range marg {
		if marg[i] != res.Marginals[i] {
			t.Fatalf("%s: rule %q pick %d marginal %v, schedule replay %v", what, r.Name(), i, res.Marginals[i], marg[i])
		}
	}
}

// coveredGroups counts the distinct groups with a positive requirement that
// the selection touches.
func coveredGroups(inst *groups.Instance, users []profile.UserID) int {
	seen := make(map[groups.GroupID]bool)
	for _, u := range users {
		for _, g := range inst.Index.UserGroups(u) {
			if inst.Cov[g] > 0 {
				seen[g] = true
			}
		}
	}
	return len(seen)
}

// TestRulesPropertySuite is the per-rule acceptance property: 50 randomized
// instances per rule, each checked at parallelism 1/2/8 through the eager
// engine, the lazy engine, and the GreeDi merge round. All paths must agree
// bit for bit per rule, scores must match an engine-independent schedule
// replay, and rule-specific invariants (maxcov counting, fairness floors,
// coverage legacy identity) must hold.
func TestRulesPropertySuite(t *testing.T) {
	forceShardedPaths(t)
	weightSchemes := []groups.WeightScheme{groups.WeightIden, groups.WeightLBS, groups.WeightEBS}
	coverSchemes := []groups.CoverageScheme{groups.CoverSingle, groups.CoverProp}
	for _, r := range Rules() {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			for i := 0; i < 50; i++ {
				seed := int64(i)
				rng := stats.NewRand(7000 + seed)
				ws := weightSchemes[i%len(weightSchemes)]
				cs := coverSchemes[(i/3)%len(coverSchemes)]
				nUsers := 20 + rng.Intn(100)
				nProps := 3 + rng.Intn(10)
				budget := 1 + rng.Intn(12)
				inst := randomInstance(seed, nUsers, nProps, ws, cs, budget)
				if inst.EBS && !r.EBSCompatible() {
					// The incompatible combination must be rejected, then the
					// instance re-rolls under LBS so every rule still sees 50
					// working instances.
					if _, err := GreedyRule(inst, budget, r, Options{}); err == nil {
						t.Fatalf("instance %d: rule %q accepted an EBS instance", i, r.Name())
					}
					if _, err := LazyGreedyRule(inst, budget, nil, r, Options{}); err == nil {
						t.Fatalf("instance %d: lazy rule %q accepted an EBS instance", i, r.Name())
					}
					ws = groups.WeightLBS
					inst = randomInstance(seed, nUsers, nProps, ws, cs, budget)
				}
				n := inst.Index.Repo().NumUsers()

				var allowed []bool
				switch i % 3 {
				case 1, 2:
					p := 0.5
					if i%3 == 2 {
						p = 0.1
					}
					allowed = make([]bool, n)
					for u := range allowed {
						allowed[u] = rng.Float64() < p
					}
				}

				want, err := GreedyRestrictedRule(inst, budget, allowed, r, Options{})
				if err != nil {
					t.Fatalf("instance %d (ws=%v cs=%v): %v", i, ws, cs, err)
				}
				for _, par := range []int{1, 2, 8} {
					eager, err := GreedyRestrictedRule(inst, budget, allowed, r, Options{Parallelism: par})
					if err != nil {
						t.Fatalf("instance %d parallelism %d: %v", i, par, err)
					}
					if !resultsIdentical(want, eager) {
						t.Fatalf("instance %d (ws=%v cs=%v n=%d B=%d): eager diverged at parallelism %d\nwant %v %v\ngot  %v %v",
							i, ws, cs, n, budget, par, want.Users, want.Marginals, eager.Users, eager.Marginals)
					}
					lazy, err := LazyGreedyRule(inst, budget, allowed, r, Options{Parallelism: par})
					if err != nil {
						t.Fatalf("instance %d parallelism %d: %v", i, par, err)
					}
					if !resultsIdentical(want, lazy) {
						t.Fatalf("instance %d (ws=%v cs=%v n=%d B=%d): lazy diverged at parallelism %d\nwant %v %v\ngot  %v %v",
							i, ws, cs, n, budget, par, want.Users, want.Marginals, lazy.Users, lazy.Marginals)
					}
				}
				if !inst.EBS {
					checkReplay(t, inst, r, want, fmt.Sprintf("instance %d", i))
				}

				// Rule-specific invariants.
				switch r.Name() {
				case "coverage":
					if !inst.EBS {
						// Legacy identity: the rule must reproduce the pre-rules
						// engine, and the generalized credit engine must agree
						// with both (selection, marginals, score — Evaluations
						// accounting may differ).
						legacy := GreedyRestrictedOpts(inst, budget, allowed, Options{})
						if !resultsIdentical(want, legacy) {
							t.Fatalf("instance %d: coverage rule diverged from legacy engine", i)
						}
						cg := creditGreedy(inst, budget, allowed, nil, r, Options{})
						if !resultsIdentical(want, cg) {
							t.Fatalf("instance %d: creditGreedy diverged from legacy engine for coverage\nwant %v %v\ngot  %v %v",
								i, want.Users, want.Marginals, cg.Users, cg.Marginals)
						}
						if got := inst.Score(want.Users); got != want.Score {
							t.Fatalf("instance %d: greedy score %v, Instance.Score %v", i, want.Score, got)
						}
					}
				case "maxcov":
					if got := float64(coveredGroups(inst, want.Users)); got != want.Score {
						t.Fatalf("instance %d: maxcov score %v, distinct coverable groups %v", i, want.Score, got)
					}
				case "fairness-floor":
					checkFairnessFloor(t, inst, allowed, want.Users, i)
				}

				// GreeDi merge: partition the candidates across shards, run the
				// restricted rule-greedy per shard, merge the winner union.
				shards := 2 + i%2
				var winners []profile.UserID
				for s := 0; s < shards; s++ {
					mask := make([]bool, n)
					for u := 0; u < n; u++ {
						mask[u] = (allowed == nil || allowed[u]) && u%shards == s
					}
					part, err := GreedyRestrictedRule(inst, budget, mask, r, Options{})
					if err != nil {
						t.Fatalf("instance %d shard %d: %v", i, s, err)
					}
					winners = append(winners, part.Users...)
				}
				mergedWant, err := MergeGreedyRule(inst, winners, budget, r, Options{})
				if err != nil {
					t.Fatalf("instance %d: merge: %v", i, err)
				}
				inUnion := make(map[profile.UserID]bool, len(winners))
				for _, u := range winners {
					inUnion[u] = true
				}
				for _, u := range mergedWant.Users {
					if !inUnion[u] {
						t.Fatalf("instance %d: merged pick %d outside the candidate union", i, u)
					}
				}
				for _, par := range []int{2, 8} {
					merged, err := MergeGreedyRule(inst, winners, budget, r, Options{Parallelism: par})
					if err != nil {
						t.Fatalf("instance %d: merge at parallelism %d: %v", i, par, err)
					}
					if !resultsIdentical(mergedWant, merged) {
						t.Fatalf("instance %d: merge diverged at parallelism %d", i, par)
					}
				}
				if r.IsDefault() {
					legacyMerge, err := MergeGreedy(inst, winners, budget, Options{})
					if err != nil {
						t.Fatalf("instance %d: legacy merge: %v", i, err)
					}
					if !resultsIdentical(mergedWant, legacyMerge) {
						t.Fatalf("instance %d: coverage merge diverged from MergeGreedy", i)
					}
				}
			}
		})
	}
}

// checkFairnessFloor asserts the dominance invariant: as long as some
// remaining candidate can cover a not-yet-represented group with a positive
// requirement, the next pick covers at least one such group. (A pick covering
// k new coverable groups scores in [kM, kM+MaxScore) with M > MaxScore, so
// the argmax always maximizes k first.)
func checkFairnessFloor(t *testing.T, inst *groups.Instance, allowed []bool, picks []profile.UserID, instIdx int) {
	t.Helper()
	ix := inst.Index
	n := ix.Repo().NumUsers()
	covered := make([]bool, ix.NumGroups())
	taken := make([]bool, n)
	newCoverable := func(u profile.UserID) int {
		k := 0
		for _, g := range ix.UserGroups(u) {
			if inst.Cov[g] > 0 && !covered[g] {
				k++
			}
		}
		return k
	}
	for pi, p := range picks {
		reachable := false
		for u := 0; u < n && !reachable; u++ {
			if taken[u] || (allowed != nil && !allowed[u]) {
				continue
			}
			reachable = newCoverable(profile.UserID(u)) > 0
		}
		if reachable && newCoverable(p) == 0 {
			t.Fatalf("instance %d: fairness-floor pick %d (user %d) covers no new coverable group while one was reachable", instIdx, pi, p)
		}
		taken[p] = true
		for _, g := range ix.UserGroups(p) {
			if inst.Cov[g] > 0 {
				covered[g] = true
			}
		}
	}
}

// TestSelectorStateRuleBitIdentity extends the delta-repair bit-identity
// property to every registered rule: a repaired per-rule SelectorState must
// select bit-identically to a fresh rule run after every mutation batch —
// including a reshaping batch and an oversized batch that forces the
// recompute fallback. EBS-scheme sweeps run only the EBS-compatible rules.
func TestSelectorStateRuleBitIdentity(t *testing.T) {
	const budget = 6
	css := []groups.CoverageScheme{groups.CoverSingle, groups.CoverProp}
	for _, r := range Rules() {
		r := r
		wss := []groups.WeightScheme{groups.WeightLBS, groups.WeightIden}
		if r.EBSCompatible() {
			wss = append(wss, groups.WeightEBS)
		}
		t.Run(r.Name(), func(t *testing.T) {
			var totalRepairs, totalRecomputes uint64
			for i := 0; i < 50; i++ {
				users := 40 + i*4
				var cfg synth.Config
				switch i % 3 {
				case 0:
					cfg = synth.TripAdvisorLike(users)
				case 1:
					cfg = synth.YelpLike(users)
				default:
					cfg = synth.ScaleLike(users)
				}
				cfg.Seed += int64(i)
				ws := wss[i%len(wss)]
				cs := css[(i/3)%len(css)]
				t.Run(fmt.Sprintf("%s-%d-%s-%s", cfg.Name, users, ws, cs), func(t *testing.T) {
					rng := rand.New(rand.NewSource(int64(11000 + i)))
					repo := synth.Generate(cfg).Repo
					ix := groups.Build(repo, groups.Config{K: 3})
					ix.Freeze()

					st := NewSelectorStateRule(r)
					inst := groups.NewInstance(ix, ws, cs, budget)
					st.Sync(inst, nil, false)

					check := func(round int, inst *groups.Instance) {
						t.Helper()
						want, err := LazyGreedyRule(inst, budget, nil, r, Options{})
						if err != nil {
							t.Fatal(err)
						}
						eager, err := GreedyRule(inst, budget, r, Options{})
						if err != nil {
							t.Fatal(err)
						}
						if !sameResult(want, eager) {
							t.Fatalf("round %d: lazy vs eager diverged for rule %q", round, r.Name())
						}
						for _, par := range []int{1, 2, 8} {
							if got := st.Select(inst, budget, Options{Parallelism: par}); !sameResult(want, got) {
								t.Fatalf("round %d: repaired %q state diverged from fresh run at parallelism %d\nwant %v %v\ngot  %v %v",
									round, r.Name(), par, want.Users, want.Marginals, got.Users, got.Marginals)
							}
						}
					}
					check(0, inst)

					for round := 1; round <= 3; round++ {
						repo2 := repo.Clone()
						ix2 := ix.Clone(repo2)
						ops := 1 + rng.Intn(6)
						newProp := ""
						switch round {
						case 2:
							newProp = fmt.Sprintf("rules-live-prop-%d-%d", i, round)
						case 3:
							ops = repo2.NumUsers()
						}
						applyRandomBatch(t, rng, repo2, ix2, ops, newProp)
						d := ix2.TakeDelta()
						ix2.Freeze()
						repo, ix = repo2, ix2
						inst = groups.NewInstance(ix, ws, cs, budget)
						st.Sync(inst, d.Users, d.Reshaped)
						check(round, inst)
					}
					totalRepairs += st.Repairs
					totalRecomputes += st.Recomputes
				})
			}
			if totalRepairs == 0 {
				t.Fatalf("rule %q: no Sync took the delta-repair path", r.Name())
			}
			if totalRecomputes == 0 {
				t.Fatalf("rule %q: no Sync took the full-recompute path", r.Name())
			}
		})
	}
}

// TestGreedyCompleteRuleContinuation holds the rule-aware top-up to the
// greedy continuation property: completing a prefix of a full run's panel
// reproduces the remainder of that run exactly — credits depend only on each
// group's schedule position, so restarting from t0 = |have ∩ G| is
// indistinguishable from never having stopped.
func TestGreedyCompleteRuleContinuation(t *testing.T) {
	wss := []groups.WeightScheme{groups.WeightLBS, groups.WeightIden}
	css := []groups.CoverageScheme{groups.CoverSingle, groups.CoverProp}
	for _, r := range Rules() {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			for seed := int64(0); seed < 12; seed++ {
				budget := 4 + int(seed)%6
				inst := randomInstance(300+seed, 60+int(seed)*7, 4+int(seed)%6, wss[seed%2], css[(seed/2)%2], budget)
				full, err := GreedyRule(inst, budget, r, Options{})
				if err != nil {
					t.Fatal(err)
				}
				if len(full.Users) < 2 {
					continue
				}
				h := 1 + int(seed)%(len(full.Users)-1)
				have := full.Users[:h]
				rest, err := GreedyCompleteRule(inst, budget-h, have, nil, r, Options{})
				if err != nil {
					t.Fatal(err)
				}
				want := full.Users[h:]
				if len(rest.Users) != len(want) {
					t.Fatalf("rule %q seed %d: completion selected %v, want %v", r.Name(), seed, rest.Users, want)
				}
				for j := range want {
					if rest.Users[j] != want[j] {
						t.Fatalf("rule %q seed %d: completion selected %v, want %v", r.Name(), seed, rest.Users, want)
					}
					if rest.Marginals[j] != full.Marginals[h+j] {
						t.Fatalf("rule %q seed %d: completion marginal %d = %v, full run %v",
							r.Name(), seed, j, rest.Marginals[j], full.Marginals[h+j])
					}
				}
				// Members of have never re-enter the pool even with budget slack.
				again, err := GreedyCompleteRule(inst, budget, have, nil, r, Options{})
				if err != nil {
					t.Fatal(err)
				}
				inHave := make(map[profile.UserID]bool, len(have))
				for _, u := range have {
					inHave[u] = true
				}
				for _, u := range again.Users {
					if inHave[u] {
						t.Fatalf("rule %q seed %d: completion re-selected panel member %d", r.Name(), seed, u)
					}
				}
			}
		})
	}
}

// TestMaxcovRunsOnEBS pins the ebsOK contract: maxcov never reads weights, so
// it must run (and agree across engines) on an EBS-weighted instance where
// the weight-scaling rules are rejected.
func TestMaxcovRunsOnEBS(t *testing.T) {
	inst := randomInstance(99, 120, 12, groups.WeightEBS, groups.CoverSingle, 8)
	if !inst.EBS {
		t.Fatal("instance did not take the EBS path")
	}
	r := MustRule("maxcov")
	want, err := GreedyRule(inst, 8, r, Options{})
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := LazyGreedyRule(inst, 8, nil, r, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !resultsIdentical(want, lazy) {
		t.Fatal("maxcov eager vs lazy diverged on an EBS instance")
	}
	if got := float64(coveredGroups(inst, want.Users)); got != want.Score {
		t.Fatalf("maxcov EBS score %v, distinct coverable groups %v", want.Score, got)
	}
	for _, name := range []string{"harmonic", "fairness-floor"} {
		if _, err := GreedyRule(inst, 8, MustRule(name), Options{}); err == nil {
			t.Fatalf("rule %q accepted an EBS instance", name)
		}
	}
}
