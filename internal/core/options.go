package core

import "runtime"

// Options tunes how the selection engine executes. Options change *how fast*
// a selection runs, never *what* it returns: every setting preserves
// bit-identical output — same users, same order, same marginals — as the
// sequential algorithms, so callers may tune freely without invalidating
// golden results, saved explanations, or cached selections.
type Options struct {
	// Parallelism is the worker count for the engine's sharded loops:
	// marginal initialization, the per-pick argmax, and saturation
	// retraction for large groups. 0 or 1 runs sequentially; values above
	// runtime.NumCPU() are allowed but rarely useful. Determinism is
	// preserved by a fixed reduction order (see engine.go).
	Parallelism int
}

// DefaultParallel returns Options using every available CPU.
func DefaultParallel() Options { return Options{Parallelism: runtime.NumCPU()} }

// workerCount clamps Parallelism to a usable worker count.
func (o Options) workerCount() int {
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}
