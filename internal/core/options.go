package core

import "runtime"

// Options tunes how the selection engine executes. Options change *how fast*
// a selection runs, never *what* it returns: every setting preserves
// bit-identical output — same users, same order, same marginals — as the
// sequential algorithms, so callers may tune freely without invalidating
// golden results, saved explanations, or cached selections.
type Options struct {
	// Parallelism is the worker count for the engine's sharded loops:
	// marginal initialization, the per-pick argmax, and saturation
	// retraction for large groups. 0 or 1 runs sequentially; values above
	// runtime.NumCPU() are allowed but rarely useful. Determinism is
	// preserved by a fixed reduction order (see engine.go).
	Parallelism int

	// Timings, when non-nil, accumulates per-stage wall time for each
	// engine run (see StageTimings). The zero value (nil) costs nothing:
	// the engine's only overhead is a pointer nil-check per pick. The
	// struct is plain data — core stays free of any metrics dependency;
	// the serving layer folds the totals into its registry.
	Timings *StageTimings
}

// StageTimings is the engine's per-stage clock, written by engineGreedy when
// Options.Timings is set. Values are monotonic nanosecond totals across
// however many runs shared the struct; Runs and Picks scale them. Not safe
// for concurrent runs — give each selection its own struct.
type StageTimings struct {
	// Runs counts engine invocations that reported into this struct. The
	// EBS exact-arithmetic path does not report (Runs stays 0 there).
	Runs int
	// Picks counts greedy picks (argmax rounds) across those runs.
	Picks int
	// InitNs is candidate-list construction plus marginal initialization.
	InitNs int64
	// ArgmaxNs is the per-pick argmax scans, including MergeNs.
	ArgmaxNs int64
	// RetractNs is the saturation retraction loops.
	RetractNs int64
	// MergeNs is the sharded argmax's final cross-shard reduction — the
	// determinism-preserving merge — counted inside ArgmaxNs.
	MergeNs int64
}

// DefaultParallel returns Options using every available CPU.
func DefaultParallel() Options { return Options{Parallelism: runtime.NumCPU()} }

// workerCount clamps Parallelism to a usable worker count.
func (o Options) workerCount() int {
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}
