package core

import (
	"testing"
	"testing/quick"

	"podium/internal/groups"
	"podium/internal/profile"
)

// Property: the greedy score is non-decreasing in the budget, for every
// scheme combination (more budget can only add non-negative marginals).
func TestGreedyScoreMonotoneInBudgetProperty(t *testing.T) {
	instances := map[string]*groups.Instance{}
	get := func(seed int64, ws groups.WeightScheme, cs groups.CoverageScheme) *groups.Instance {
		key := string(rune(seed)) + ws.String() + cs.String()
		if inst, ok := instances[key]; ok {
			return inst
		}
		inst := randomInstance(seed, 30, 6, ws, cs, 10)
		instances[key] = inst
		return inst
	}
	f := func(seedRaw, bRaw, wRaw, cRaw uint8) bool {
		seed := int64(seedRaw % 4)
		ws := []groups.WeightScheme{groups.WeightIden, groups.WeightLBS}[wRaw%2]
		cs := []groups.CoverageScheme{groups.CoverSingle, groups.CoverProp}[cRaw%2]
		inst := get(seed, ws, cs)
		b := int(bRaw%8) + 1
		small := Greedy(inst, b)
		large := Greedy(inst, b+1)
		return large.Score >= small.Score-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a customized selection never achieves a higher base score than
// the unconstrained greedy could — feedback only restricts.
func TestCustomNeverBeatsOptimalProperty(t *testing.T) {
	inst := randomInstance(5, 16, 5, groups.WeightLBS, groups.CoverSingle, 4)
	opt := Exhaustive(inst, 4)
	f := func(prioBits, notBits uint16) bool {
		n := inst.Index.NumGroups()
		var fb Feedback
		for g := 0; g < n && g < 16; g++ {
			if prioBits&(1<<g) != 0 {
				fb.Priority = append(fb.Priority, groups.GroupID(g))
			}
			if notBits&(1<<g) != 0 {
				fb.MustNot = append(fb.MustNot, groups.GroupID(g))
			}
		}
		res, err := GreedyCustom(inst, fb, 4)
		if err != nil {
			return false
		}
		return inst.Score(res.Users) <= opt.Score+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: every selection variant returns distinct, in-range users and
// respects the budget.
func TestSelectionValidityProperty(t *testing.T) {
	inst := randomInstance(9, 25, 6, groups.WeightLBS, groups.CoverSingle, 12)
	n := inst.Index.Repo().NumUsers()
	check := func(users []profile.UserID, budget int) bool {
		if len(users) > budget {
			return false
		}
		seen := map[profile.UserID]bool{}
		for _, u := range users {
			if int(u) < 0 || int(u) >= n || seen[u] {
				return false
			}
			seen[u] = true
		}
		return true
	}
	f := func(bRaw uint8, variant uint8, noiseSeed int64) bool {
		b := int(bRaw%15) + 1
		switch variant % 4 {
		case 0:
			return check(Greedy(inst, b).Users, b)
		case 1:
			return check(LazyGreedy(inst, b).Users, b)
		case 2:
			return check(NoisyGreedy(inst, b, Noise{Seed: noiseSeed, WeightStdDev: 0.4, RandomTies: true}).Users, b)
		default:
			ebs := randomInstance(9, 25, 6, groups.WeightEBS, groups.CoverSingle, b)
			return check(Greedy(ebs, b).Users, b)
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: greedy marginals reported in the result always sum to the final
// score (no drift between the incremental accounting and the objective).
func TestMarginalAccountingProperty(t *testing.T) {
	f := func(seedRaw, bRaw uint8) bool {
		inst := randomInstance(int64(seedRaw%8), 20, 5, groups.WeightLBS, groups.CoverProp, 6)
		b := int(bRaw%6) + 1
		res := Greedy(inst, b)
		var sum float64
		for _, m := range res.Marginals {
			sum += m
		}
		diff := sum - inst.Score(res.Users)
		return diff < 1e-6 && diff > -1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
