// Package core implements the paper's primary contribution: solving
// BASE-DIVERSITY (Definition 3.3) and CUSTOM-DIVERSITY (Section 6). The
// problem is NP-complete (Prop. 4.1), so the package provides the (1−1/e)
// greedy approximation of Algorithm 1 together with three refinements the
// paper's analysis licenses — a lazy-evaluation variant (valid by
// submodularity), an exact arithmetic path for EBS weights (whose float64
// form overflows), and exhaustive / branch-and-bound optimal solvers used to
// measure the empirical approximation ratio (Section 8.4).
package core

import (
	"podium/internal/groups"
	"podium/internal/profile"
)

// Result is the outcome of a selection run.
type Result struct {
	// Users holds the selected subset in selection order.
	Users []profile.UserID
	// Score is score_𝒢(Users) under the instance that produced the result.
	Score float64
	// Marginals[i] is the marginal contribution of Users[i] at the moment it
	// was selected; Score == Σ Marginals up to float rounding. Explanations
	// use it to show each user's contribution.
	Marginals []float64
	// Evaluations counts user↔group link traversals performed while
	// computing or maintaining marginal contributions — a machine-
	// independent work measure for comparing the eager and lazy variants.
	Evaluations int
}

// Greedy runs Algorithm 1: iteratively select the user with the greatest
// marginal contribution, updating the remaining users' marginals as groups
// saturate. Ties break toward the lowest user index (the paper breaks ties
// arbitrarily; fixing them keeps every variant and test deterministic).
// Instances with EBS weights are routed to the exact rank-vector
// implementation, since their float64 weights overflow beyond ~300 groups.
//
// Execution is delegated to the CSR engine (engine.go); the pre-engine
// implementation survives as ReferenceGreedy, which the equivalence property
// tests hold the engine to bit for bit.
func Greedy(inst *groups.Instance, budget int) *Result {
	return GreedyRestrictedOpts(inst, budget, nil, Options{})
}

// GreedyOpts is Greedy with explicit engine Options (e.g. Parallelism).
// Options never change the result, only how fast it is computed.
func GreedyOpts(inst *groups.Instance, budget int, opt Options) *Result {
	return GreedyRestrictedOpts(inst, budget, nil, opt)
}

// GreedyRestricted is Greedy over the refined population 𝒰′: when allowed is
// non-nil, only users with allowed[u] == true are candidates. This is the
// selection primitive behind CUSTOM-DIVERSITY (Prop. 6.5).
func GreedyRestricted(inst *groups.Instance, budget int, allowed []bool) *Result {
	return GreedyRestrictedOpts(inst, budget, allowed, Options{})
}

// GreedyRestrictedOpts is GreedyRestricted with explicit engine Options.
func GreedyRestrictedOpts(inst *groups.Instance, budget int, allowed []bool, opt Options) *Result {
	if inst.EBS {
		return ebsGreedy(inst, budget, allowed)
	}
	return engineGreedy(inst, budget, allowed, opt)
}
