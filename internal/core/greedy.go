// Package core implements the paper's primary contribution: solving
// BASE-DIVERSITY (Definition 3.3) and CUSTOM-DIVERSITY (Section 6). The
// problem is NP-complete (Prop. 4.1), so the package provides the (1−1/e)
// greedy approximation of Algorithm 1 together with three refinements the
// paper's analysis licenses — a lazy-evaluation variant (valid by
// submodularity), an exact arithmetic path for EBS weights (whose float64
// form overflows), and exhaustive / branch-and-bound optimal solvers used to
// measure the empirical approximation ratio (Section 8.4).
package core

import (
	"podium/internal/groups"
	"podium/internal/profile"
)

// Result is the outcome of a selection run.
type Result struct {
	// Users holds the selected subset in selection order.
	Users []profile.UserID
	// Score is score_𝒢(Users) under the instance that produced the result.
	Score float64
	// Marginals[i] is the marginal contribution of Users[i] at the moment it
	// was selected; Score == Σ Marginals up to float rounding. Explanations
	// use it to show each user's contribution.
	Marginals []float64
	// Evaluations counts user↔group link traversals performed while
	// computing or maintaining marginal contributions — a machine-
	// independent work measure for comparing the eager and lazy variants.
	Evaluations int
}

// Greedy runs Algorithm 1: iteratively select the user with the greatest
// marginal contribution, updating the remaining users' marginals as groups
// saturate. Ties break toward the lowest user index (the paper breaks ties
// arbitrarily; fixing them keeps every variant and test deterministic).
// Instances with EBS weights are routed to the exact rank-vector
// implementation, since their float64 weights overflow beyond ~300 groups.
func Greedy(inst *groups.Instance, budget int) *Result {
	return GreedyRestricted(inst, budget, nil)
}

// GreedyRestricted is Greedy over the refined population 𝒰′: when allowed is
// non-nil, only users with allowed[u] == true are candidates. This is the
// selection primitive behind CUSTOM-DIVERSITY (Prop. 6.5).
func GreedyRestricted(inst *groups.Instance, budget int, allowed []bool) *Result {
	if inst.EBS {
		return ebsGreedy(inst, budget, allowed)
	}
	ix := inst.Index
	n := ix.Repo().NumUsers()
	res := &Result{}
	if budget <= 0 || n == 0 {
		return res
	}

	// Line 2: marg_{u,∅} = Σ_{G∋u} wei(G), counting only groups that can
	// still reward coverage.
	marg := make([]float64, n)
	candidate := make([]bool, n)
	numCandidates := 0
	for u := 0; u < n; u++ {
		if allowed != nil && !allowed[u] {
			continue
		}
		candidate[u] = true
		numCandidates++
		gs := ix.UserGroups(profile.UserID(u))
		res.Evaluations += len(gs)
		for _, g := range gs {
			if inst.Cov[g] > 0 {
				marg[u] += inst.Wei[g]
			}
		}
	}

	// Remaining required coverage per group; mutated as users are picked.
	cov := make([]int, len(inst.Cov))
	copy(cov, inst.Cov)

	for i := 0; i < budget; i++ {
		if numCandidates == 0 {
			break // line 4: 𝒰 is empty
		}
		// Line 5: arg max marginal, ties toward the lowest index.
		best := -1
		for u := 0; u < n; u++ {
			if candidate[u] && (best < 0 || marg[u] > marg[best]) {
				best = u
			}
		}
		// Line 6: move best from 𝒰 to U.
		candidate[best] = false
		numCandidates--
		res.Users = append(res.Users, profile.UserID(best))
		res.Marginals = append(res.Marginals, marg[best])
		res.Score += marg[best]
		// Lines 7-10: decrement coverage; on saturation, retract the
		// group's weight from every remaining member's marginal.
		for _, g := range ix.UserGroups(profile.UserID(best)) {
			if cov[g] <= 0 {
				continue
			}
			cov[g]--
			if cov[g] == 0 {
				w := inst.Wei[g]
				for _, member := range ix.Group(g).Members {
					if candidate[member] {
						marg[member] -= w
						res.Evaluations++
					}
				}
			}
		}
	}
	return res
}
