package core

import (
	"math"
	"testing"

	"podium/internal/groups"
	"podium/internal/profile"
)

func TestGreedyCompleteEmptyPanelIsGreedy(t *testing.T) {
	inst := randomInstance(11, 120, 12, groups.WeightLBS, groups.CoverSingle, 6)
	want := Greedy(inst, 6)
	got := GreedyComplete(inst, 6, nil, nil, Options{})
	if !usersEqual(want.Users, got.Users) || want.Score != got.Score {
		t.Fatalf("GreedyComplete(∅) diverges from Greedy: %v vs %v", got.Users, want.Users)
	}
}

func TestGreedyCompleteResumesAlgorithmOne(t *testing.T) {
	// Completing the first i picks of a greedy run must reproduce the
	// remaining picks exactly: the residual instance makes GreedyComplete a
	// resumption of Algorithm 1 from the partial selection.
	inst := randomInstance(23, 150, 10, groups.WeightLBS, groups.CoverSingle, 8)
	full := Greedy(inst, 8)
	for i := 1; i < len(full.Users); i++ {
		rest := GreedyComplete(inst, 8-i, full.Users[:i], nil, Options{})
		if !usersEqual(rest.Users, full.Users[i:]) {
			t.Fatalf("resuming after %d picks selected %v, want %v", i, rest.Users, full.Users[i:])
		}
	}
}

func TestGreedyCompleteMarginalsAreTrueMarginals(t *testing.T) {
	inst := randomInstance(31, 140, 10, groups.WeightLBS, groups.CoverProp, 8)
	have := []profile.UserID{3, 17, 42, 17} // duplicate counted once
	res := GreedyComplete(inst, 4, have, nil, Options{})
	var marg float64
	for _, m := range res.Marginals {
		marg += m
	}
	base := inst.Score([]profile.UserID{3, 17, 42})
	got := inst.Score(append([]profile.UserID{3, 17, 42}, res.Users...))
	if math.Abs((got-base)-marg) > 1e-9 {
		t.Fatalf("marginals sum %.12f, want Score delta %.12f", marg, got-base)
	}
}

func TestGreedyCompleteExcludesPanelAndDisallowed(t *testing.T) {
	inst := randomInstance(47, 100, 8, groups.WeightLBS, groups.CoverSingle, 8)
	n := inst.Index.Repo().NumUsers()
	allowed := make([]bool, n)
	for u := 0; u < n; u++ {
		allowed[u] = u%2 == 0 // odd users are "dead"
	}
	have := []profile.UserID{0, 2, 4}
	res := GreedyComplete(inst, 5, have, allowed, Options{})
	inHave := map[profile.UserID]bool{0: true, 2: true, 4: true}
	for _, u := range res.Users {
		if inHave[u] {
			t.Fatalf("re-selected existing panel member %d", u)
		}
		if u%2 == 1 {
			t.Fatalf("selected disallowed user %d", u)
		}
	}
}

func TestGreedyCompleteEBSPath(t *testing.T) {
	inst := randomInstance(53, 90, 8, groups.WeightEBS, groups.CoverSingle, 6)
	full := Greedy(inst, 6)
	if len(full.Users) < 4 {
		t.Skip("instance too small for a meaningful split")
	}
	rest := GreedyComplete(inst, len(full.Users)-2, full.Users[:2], nil, Options{})
	if !usersEqual(rest.Users, full.Users[2:]) {
		t.Fatalf("EBS completion selected %v, want %v", rest.Users, full.Users[2:])
	}
}
