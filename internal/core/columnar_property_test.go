package core

import (
	"bytes"
	"fmt"
	"testing"

	"podium/internal/codec"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/synth"
)

// replayThroughMutationAPI rebuilds src user by user through the overlay
// mutation path (AddUser + SetScoreID) — the construction style of the seed's
// pointer-based repository, and the opposite extreme from the generator's
// columnar builder. The catalog is pre-interned in src order so property IDs
// line up and any divergence below is a storage-layer bug, not a labeling
// artifact.
func replayThroughMutationAPI(src *profile.Repository) *profile.Repository {
	dst := profile.NewRepository()
	for _, l := range src.Catalog().Labels() {
		dst.Catalog().Intern(l)
	}
	src.EachRow(func(u profile.UserID, props []profile.PropertyID, scores []float64) {
		id := dst.AddUser(src.UserName(u))
		for i, p := range props {
			if err := dst.SetScoreID(id, p, scores[i]); err != nil {
				panic(err)
			}
		}
	})
	dst.Seal()
	return dst
}

func sameResult(a, b *Result) bool {
	if len(a.Users) != len(b.Users) || a.Score != b.Score {
		return false
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] || a.Marginals[i] != b.Marginals[i] {
			return false
		}
	}
	return true
}

// Property: a columnar repository is observationally identical to one built
// through the mutation API. Across 50 synthetic instances spanning all three
// presets, both storage paths must produce the same group index, bit-identical
// greedy selections (reference and engine, at parallelism 1/2/8), and the
// exact same v1 and v2 codec bytes.
func TestColumnarObservationalIdentity(t *testing.T) {
	const budget = 6
	for i := 0; i < 50; i++ {
		users := 40 + i*7
		var cfg synth.Config
		switch i % 3 {
		case 0:
			cfg = synth.TripAdvisorLike(users)
		case 1:
			cfg = synth.YelpLike(users)
		default:
			cfg = synth.ScaleLike(users)
		}
		cfg.Seed += int64(i)
		t.Run(fmt.Sprintf("%s-%d", cfg.Name, users), func(t *testing.T) {
			col := synth.Generate(cfg).Repo
			mut := replayThroughMutationAPI(col)

			gcfg := groups.Config{K: 3}
			ixCol := groups.Build(col, gcfg)
			ixMut := groups.Build(mut, gcfg)
			if ixCol.NumGroups() != ixMut.NumGroups() {
				t.Fatalf("group count diverged: columnar %d vs mutation %d",
					ixCol.NumGroups(), ixMut.NumGroups())
			}

			instCol := groups.NewInstance(ixCol, groups.WeightLBS, groups.CoverSingle, budget)
			instMut := groups.NewInstance(ixMut, groups.WeightLBS, groups.CoverSingle, budget)
			want := ReferenceGreedy(instMut, budget, nil)
			if got := ReferenceGreedy(instCol, budget, nil); !sameResult(want, got) {
				t.Fatal("ReferenceGreedy diverged between storage paths")
			}
			for _, par := range []int{1, 2, 8} {
				got := GreedyOpts(instCol, budget, Options{Parallelism: par})
				if !sameResult(want, got) {
					t.Fatalf("engine at parallelism %d diverged from reference on columnar store", par)
				}
			}

			// Codec identity: both paths must serialize to the same bytes in
			// both formats, and the v2 image must round-trip bit-exactly.
			var v1Col, v1Mut, v2Col, v2Mut bytes.Buffer
			for _, enc := range []struct {
				buf  *bytes.Buffer
				repo *profile.Repository
				img  bool
			}{{&v1Col, col, false}, {&v1Mut, mut, false}, {&v2Col, col, true}, {&v2Mut, mut, true}} {
				var err error
				if enc.img {
					err = codec.WriteRepositoryImage(enc.buf, enc.repo)
				} else {
					err = codec.WriteRepository(enc.buf, enc.repo)
				}
				if err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(v1Col.Bytes(), v1Mut.Bytes()) {
				t.Fatal("v1 encoding diverged between storage paths")
			}
			if !bytes.Equal(v2Col.Bytes(), v2Mut.Bytes()) {
				t.Fatal("v2 image diverged between storage paths")
			}
			back, err := codec.ReadRepositoryImage(v2Col.Bytes())
			if err != nil {
				t.Fatal(err)
			}
			var again bytes.Buffer
			if err := codec.WriteRepositoryImage(&again, back); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(again.Bytes(), v2Col.Bytes()) {
				t.Fatal("v2 image round trip is not bit-identical")
			}
		})
	}
}
