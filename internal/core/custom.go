package core

import (
	"fmt"

	"podium/internal/groups"
	"podium/internal/profile"
)

// Feedback is a client's customization feedback (Definition 6.1): four group
// subsets steering selection.
type Feedback struct {
	// MustHave is 𝒢₊: every selected user must, for each property appearing
	// here, belong to at least one of that property's listed buckets.
	MustHave []groups.GroupID
	// MustNot is 𝒢₋: selected users may belong to none of these groups.
	MustNot []groups.GroupID
	// Priority is 𝒢_d: groups whose coverage dominates all others.
	Priority []groups.GroupID
	// Standard is 𝒢_d?: groups covered with secondary priority. When
	// StandardExplicit is false the paper's default applies: all groups not
	// in Priority. Groups in neither set are ignored for coverage.
	Standard         []groups.GroupID
	StandardExplicit bool
}

// Validate checks every referenced group exists in the index.
func (f Feedback) Validate(ix *groups.Index) error {
	check := func(name string, ids []groups.GroupID) error {
		for _, id := range ids {
			if id < 0 || int(id) >= ix.NumGroups() {
				return fmt.Errorf("core: feedback %s references unknown group %d", name, id)
			}
		}
		return nil
	}
	if err := check("MustHave", f.MustHave); err != nil {
		return err
	}
	if err := check("MustNot", f.MustNot); err != nil {
		return err
	}
	if err := check("Priority", f.Priority); err != nil {
		return err
	}
	return check("Standard", f.Standard)
}

// standardSet resolves 𝒢_d? under the default rule.
func (f Feedback) standardSet(ix *groups.Index) map[groups.GroupID]bool {
	std := make(map[groups.GroupID]bool)
	if f.StandardExplicit {
		for _, id := range f.Standard {
			std[id] = true
		}
		return std
	}
	prio := make(map[groups.GroupID]bool, len(f.Priority))
	for _, id := range f.Priority {
		prio[id] = true
	}
	for i := 0; i < ix.NumGroups(); i++ {
		if !prio[groups.GroupID(i)] {
			std[groups.GroupID(i)] = true
		}
	}
	return std
}

// RefineUsers computes the refined population 𝒰′ of Definition 6.3 as a mask
// over user IDs: a user survives iff, for every property with a bucket in
// 𝒢₊, it belongs to at least one of that property's 𝒢₊ buckets (the
// per-property disjunction that avoids contradictions between buckets of the
// same property), and it belongs to no group in 𝒢₋.
func RefineUsers(ix *groups.Index, fb Feedback) []bool {
	n := ix.Repo().NumUsers()
	allowed := make([]bool, n)
	for u := range allowed {
		allowed[u] = true
	}
	// 𝒢₊ organized per property.
	havePerProp := map[profile.PropertyID][]groups.GroupID{}
	for _, id := range fb.MustHave {
		g := ix.Group(id)
		havePerProp[g.Prop] = append(havePerProp[g.Prop], id)
	}
	for u := 0; u < n; u++ {
		uid := profile.UserID(u)
		for _, ids := range havePerProp {
			ok := false
			for _, id := range ids {
				if ix.Group(id).Contains(uid) {
					ok = true
					break
				}
			}
			if !ok {
				allowed[u] = false
				break
			}
		}
	}
	for _, id := range fb.MustNot {
		for _, member := range ix.Group(id).Members {
			allowed[member] = false
		}
	}
	return allowed
}

// CustomInstance builds the tiered instance of Prop. 6.5's proof: weights of
// priority groups are scaled by M > max score_{𝒢_d?}, so any gain on a
// priority group dominates every possible standard gain — the greedy then
// optimizes s̃core(U) = score_{𝒢_d}(U)·M + score_{𝒢_d?}(U). Groups in
// neither set get weight zero (ignored for coverage). EBS instances lose
// their exact-arithmetic path here — tiered EBS weights are no longer 0/1
// digit vectors — so customized EBS falls back to float weights and is only
// exact while they fit in float64.
func CustomInstance(base *groups.Instance, fb Feedback) *groups.Instance {
	ix := base.Index
	std := fb.standardSet(ix)
	prio := make(map[groups.GroupID]bool, len(fb.Priority))
	for _, id := range fb.Priority {
		prio[id] = true
	}
	// M must exceed the maximum standard-tier score Σ_{G∈𝒢_d?} wei(G)·cov(G).
	var maxStd float64
	for id := range std {
		maxStd += base.Wei[id] * float64(base.Cov[id])
	}
	m := maxStd + 1
	wei := make([]float64, len(base.Wei))
	for i := range wei {
		id := groups.GroupID(i)
		switch {
		case prio[id]:
			wei[i] = base.Wei[i] * m
		case std[id]:
			wei[i] = base.Wei[i]
		default:
			wei[i] = 0
		}
	}
	cov := make([]int, len(base.Cov))
	copy(cov, base.Cov)
	return &groups.Instance{Index: ix, Wei: wei, Cov: cov}
}

// CustomResult augments a selection result with the per-tier decomposition
// of its customized score.
type CustomResult struct {
	*Result
	// PriorityScore is score_{𝒢_d}(U) under the base (untiered) weights.
	PriorityScore float64
	// StandardScore is score_{𝒢_d?}(U) under the base weights.
	StandardScore float64
	// Allowed is the refined-population mask 𝒰′ that was used.
	Allowed []bool
}

// GreedyCustom solves CUSTOM-DIVERSITY: refine the population, tier the
// weights, and run the greedy over the refined candidates (Prop. 6.5). The
// approximation guarantee carries over because the tiered score remains
// submodular, non-negative and monotone (Lemma 6.6).
func GreedyCustom(base *groups.Instance, fb Feedback, budget int) (*CustomResult, error) {
	return GreedyCustomOpts(base, fb, budget, Options{})
}

// GreedyCustomOpts is GreedyCustom with explicit engine Options. The refined
// population 𝒰′ is often a small fraction of 𝒰; the engine's compacted
// candidate list makes the per-pick argmax O(|𝒰′|) rather than O(n) here.
func GreedyCustomOpts(base *groups.Instance, fb Feedback, budget int, opt Options) (*CustomResult, error) {
	if err := fb.Validate(base.Index); err != nil {
		return nil, err
	}
	allowed := RefineUsers(base.Index, fb)
	tiered := CustomInstance(base, fb)
	res := GreedyRestrictedOpts(tiered, budget, allowed, opt)
	out := &CustomResult{Result: res, Allowed: allowed}
	// Decompose for reporting, using base weights per tier.
	std := fb.standardSet(base.Index)
	prio := make(map[groups.GroupID]bool, len(fb.Priority))
	for _, id := range fb.Priority {
		prio[id] = true
	}
	hit := map[groups.GroupID]int{}
	for _, u := range res.Users {
		for _, g := range base.Index.UserGroups(u) {
			hit[g]++
		}
	}
	for g, n := range hit {
		if n > base.Cov[g] {
			n = base.Cov[g]
		}
		v := base.Wei[g] * float64(n)
		switch {
		case prio[g]:
			out.PriorityScore += v
		case std[g]:
			out.StandardScore += v
		}
	}
	return out, nil
}
