package core

import (
	"container/heap"

	"podium/internal/groups"
	"podium/internal/profile"
)

// LazyGreedy is Minoux's accelerated greedy. Submodularity of the score
// function (Prop. 4.4) guarantees every user's marginal contribution only
// shrinks as the selection grows, so a stale value is a valid upper bound:
// keep users in a max-heap keyed by their last known marginal, pop, refresh,
// and select as soon as the refreshed entry still beats the heap top. The
// output is identical to Greedy — including tie-breaking, because the heap
// orders by (marginal, lowest user index) and a popped entry is selected
// only if it beats the top under that same total order.
//
// Whether lazy evaluation wins is instance-dependent: it avoids Algorithm
// 1's per-saturation member updates but pays a full marginal recomputation
// per pop, so it shines when groups are large (saturations are expensive)
// and the leaderboard is stable, and loses on small dense instances. The
// lazy ablation (RunLazyAblation / BenchmarkAblationEagerVsLazy) reports
// both variants' link-traversal counts rather than presuming a winner.
func LazyGreedy(inst *groups.Instance, budget int) *Result {
	return LazyGreedyRestrictedOpts(inst, budget, nil, Options{})
}

// LazyGreedyOpts is LazyGreedy with explicit engine Options. Parallelism
// shards the initial marginal computation (the heap build); the pop/refresh
// loop stays sequential, as each refresh depends on the previous selection.
func LazyGreedyOpts(inst *groups.Instance, budget int, opt Options) *Result {
	return LazyGreedyRestrictedOpts(inst, budget, nil, opt)
}

// LazyGreedyRestricted is LazyGreedy over a restricted candidate set.
func LazyGreedyRestricted(inst *groups.Instance, budget int, allowed []bool) *Result {
	return LazyGreedyRestrictedOpts(inst, budget, allowed, Options{})
}

// LazyGreedyRestrictedOpts is LazyGreedyRestricted with explicit engine
// Options. Output is identical at every Parallelism: initial keys are exact
// row sums either way, and the pop order is fully determined by the heap's
// strict (marginal desc, index asc) total order regardless of how the heap
// was built.
func LazyGreedyRestrictedOpts(inst *groups.Instance, budget int, allowed []bool, opt Options) *Result {
	return lazyGreedyRule(inst, budget, allowed, ruleCoverage, opt)
}

// lazyGreedyRule is the shared lazy-greedy body, parameterized by a selection
// rule (rules.go). The coverage rule reproduces the historical behavior bit
// for bit: its current credits are wei(G) while unsaturated and exactly 0.0
// after, and adding a 0.0 term to a non-negative partial sum is the identity,
// so the generalized refresh sums round like the old cov-guarded ones.
// Callers must have checked rule/instance compatibility (EBS).
func lazyGreedyRule(inst *groups.Instance, budget int, allowed []bool, r *Rule, opt Options) *Result {
	if inst.EBS && r.ebsExact {
		// Exact EBS comparisons need rank vectors, not float keys.
		return ebsGreedy(inst, budget, allowed)
	}
	ix := inst.Index
	n := ix.Repo().NumUsers()
	res := &Result{}
	if budget <= 0 || n == 0 {
		return res
	}
	ls := newLazyRunRule(inst, res, r)

	entries := make([]margEntry, 0, n)
	for u := 0; u < n; u++ {
		if allowed == nil || allowed[u] {
			entries = append(entries, margEntry{user: u})
		}
	}
	workers := opt.workerCount()
	if workers > 1 && len(entries) >= engineParallelCutoff {
		// refresh mutates res.Evaluations; count the work up front and sum
		// each shard's rows without the shared counter.
		csr, curW := ls.csr, ls.curW
		for i := range entries {
			res.Evaluations += csr.UserDegree(profile.UserID(entries[i].user))
		}
		shardRange(len(entries), workers, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var m float64
				for _, g := range csr.UserGroups(profile.UserID(entries[i].user)) {
					m += curW[g]
				}
				entries[i].key = m
			}
		})
	} else {
		for i := range entries {
			entries[i].key = ls.refresh(entries[i].user)
		}
	}
	ls.run(entries, budget)
	return res
}

// lazySeeded runs the lazy-greedy pop/refresh/select loop with the initial
// heap keys taken from base — marg_{u,∅} for every user, e.g. a
// SelectorState's delta-repaired copy or an Instance's memoized BaseMarginals
// — instead of recomputing them from the CSR rows. Because a fresh run's
// initial keys are exactly these row sums (bit-identical by the BaseMarginals
// contract), the heap starts from the same (key, user) multiset in the same
// slice order, and the shared run loop proceeds identically: the selection,
// its marginals and its score match a fresh LazyGreedy bit for bit. Only
// Result.Evaluations differs — the seeded run skips the initial row
// traversals, which is the point.
func lazySeeded(inst *groups.Instance, budget int, base []float64) *Result {
	return lazySeededRule(inst, budget, base, ruleCoverage)
}

// lazySeededRule is lazySeeded under a pluggable rule; base must be the
// rule's own base marginals (Rule.baseMarginals or a SelectorState repaired
// under the same rule).
func lazySeededRule(inst *groups.Instance, budget int, base []float64, r *Rule) *Result {
	n := inst.Index.Repo().NumUsers()
	res := &Result{}
	if budget <= 0 || n == 0 {
		return res
	}
	ls := newLazyRunRule(inst, res, r)
	entries := make([]margEntry, n)
	for u := 0; u < n; u++ {
		entries[u] = margEntry{user: u, key: base[u]}
	}
	ls.run(entries, budget)
	return res
}

// lazyRun is the shared state of one lazy-greedy execution: each group's
// schedule position and current credit, and the refresh primitive both entry
// points feed into the same pop/refresh/select loop.
type lazyRun struct {
	inst   *groups.Instance
	csr    *groups.CSR
	credit creditFunc
	// cnt[g] counts selected members of g; curW[g] = credit(g, cnt[g]) is the
	// gain g contributes to its next selected member.
	cnt  []int
	curW []float64
	res  *Result
}

func newLazyRunRule(inst *groups.Instance, res *Result, r *Rule) *lazyRun {
	credit := r.credits(inst)
	nG := inst.Index.NumGroups()
	ls := &lazyRun{
		inst:   inst,
		csr:    inst.Index.CSR(),
		credit: credit,
		cnt:    make([]int, nG),
		curW:   make([]float64, nG),
		res:    res,
	}
	for g := 0; g < nG; g++ {
		ls.curW[g] = credit(g, 0)
	}
	return ls
}

// refresh computes the true marginal contribution of u under the current
// schedule state, summed over u's CSR row in ascending group order.
func (ls *lazyRun) refresh(u int) float64 {
	gs := ls.csr.UserGroups(profile.UserID(u))
	ls.res.Evaluations += len(gs)
	var m float64
	for _, g := range gs {
		m += ls.curW[g]
	}
	return m
}

// run executes Minoux's pop/refresh/select loop over the initialized entries.
// entries must carry exact marg_{u,∅} keys; run owns the slice.
func (ls *lazyRun) run(entries []margEntry, budget int) {
	res := ls.res
	h := (*margHeap)(&entries)
	heap.Init(h)

	for i := 0; i < budget && h.Len() > 0; i++ {
		var pick margEntry
		for {
			top := heap.Pop(h).(margEntry)
			if h.Len() == 0 {
				top.key = ls.refresh(top.user)
				pick = top
				break
			}
			fresh := ls.refresh(top.user)
			next := (*h)[0]
			// Select only if the refreshed entry still wins under the same
			// (marginal desc, index asc) order the heap uses; otherwise
			// reinsert. The order is total, so the maximum always
			// validates and the loop terminates.
			if fresh > next.key || (fresh == next.key && top.user < next.user) {
				top.key = fresh
				pick = top
				break
			}
			top.key = fresh
			heap.Push(h, top)
		}
		res.Users = append(res.Users, profile.UserID(pick.user))
		res.Marginals = append(res.Marginals, pick.key)
		res.Score += pick.key
		for _, g := range ls.csr.UserGroups(profile.UserID(pick.user)) {
			ls.cnt[g]++
			ls.curW[g] = ls.credit(int(g), ls.cnt[g])
		}
	}
}

type margEntry struct {
	user int
	key  float64
}

// margHeap is a max-heap over (key desc, user asc).
type margHeap []margEntry

func (h margHeap) Len() int { return len(h) }
func (h margHeap) Less(i, j int) bool {
	if h[i].key != h[j].key {
		return h[i].key > h[j].key
	}
	return h[i].user < h[j].user
}
func (h margHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *margHeap) Push(x interface{}) { *h = append(*h, x.(margEntry)) }
func (h *margHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
