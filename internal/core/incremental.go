package core

import (
	"podium/internal/groups"
	"podium/internal/profile"
)

// SelectorState persists the lazy-greedy engine's inputs across snapshot
// epochs so a steady stream of selections under live writes costs O(Δ) per
// mutation batch instead of O(links) per epoch.
//
// The expensive part of a selection on a fresh epoch is not the greedy loop —
// it is materializing marg_{u,∅} for every user, an O(links) pass (memoized
// per instance by Instance.BaseMarginals, but a mutation batch publishes a
// new instance and the memo starts cold). Those base marginals are a simple
// sum over each user's adjacency row, so a mutation batch invalidates exactly
// the rows of (a) users whose adjacency changed and (b) members of groups
// whose effective weight changed. Sync re-sums only those rows against the
// new epoch's index, which the change records from groups.TakeDelta identify;
// everything else carries over bit for bit.
//
// Bit-identity: BaseMarginals documents that its group-major pass produces,
// per user, exactly the float sum of that user's CSR row in ascending group
// order. Sync's repair recomputes affected rows the same way — ascending
// group order, adding an effective weight of +0.0 for groups with no
// remaining coverage requirement, which is exact for finite partial sums — so
// a repaired base array is bit-identical to a freshly computed one, and the
// seeded lazy-greedy run (lazy.go) therefore returns bit-identical selections.
// The property tests in incremental_test.go enforce this per mutation batch.
//
// Fallbacks are conservative: EBS instances (whose weights depend on the
// global size order, so any size change can reweight every group), reshaped
// batches (new properties spawning groups), gaps in the change history, and
// deltas touching more than 1/repairMaxFrac of the population all take the
// full-recompute path — which is just BaseMarginals on the new instance, the
// exact state a fresh run would start from.
//
// SelectorState is not safe for concurrent use; the server guards each state
// with its own mutex (one writer syncs, then any number of reads would still
// be sequential per state — selections themselves are cheap once synced).
type SelectorState struct {
	// rule is the selection rule the state repairs for; nil means the default
	// (coverage). Base rows are sums of the rule's *initial credits*, so one
	// state serves exactly one rule — callers key states per rule.
	rule *Rule
	// base is marg_{u,∅} per user under the last synced instance. After a
	// recompute it aliases that instance's memoized BaseMarginals for the
	// default rule (owned == false; the first repair detaches a private copy)
	// and is a private rule-computed slice otherwise.
	base  []float64
	owned bool
	// effW is the effective per-group weight at the last Sync — the rule's
	// initial credit w_G(0); for the default rule that is Wei[g] when
	// Cov[g] > 0, else 0 — the quantity base rows actually sum. Comparing it
	// against the new instance finds every group whose weight moved, however
	// it moved (membership growth under LBS, a new group, a zeroed coverage).
	effW []float64
	// scratch marks affected users during repair, reused across syncs.
	scratch []bool

	// Counters for observability: Sync outcomes and repaired row count.
	Repairs, Recomputes, RepairedUsers uint64
}

// NewSelectorState returns an empty state for the default rule; the first
// Sync recomputes.
func NewSelectorState() *SelectorState { return &SelectorState{} }

// NewSelectorStateRule returns an empty state repairing base marginals for
// the given rule (nil selects the default). Every rule's base rows are plain
// sums of per-group initial credits, so the delta-repair machinery — changed
// rows plus members of credit-shifted groups, re-summed ascending — carries
// over unchanged; only what the rows sum differs.
func NewSelectorStateRule(r *Rule) *SelectorState { return &SelectorState{rule: r} }

// repairMaxFrac bounds the repair path: when a delta touches more than
// users/repairMaxFrac rows, re-summing them one row at a time approaches the
// cost of the single group-major BaseMarginals pass (which walks each link
// exactly once with better locality), so Sync falls back to recompute.
const repairMaxFrac = 4

// Sync brings the state up to date with inst — the instance built over the
// epoch the caller is about to select against. changed lists the users whose
// adjacency changed since the previous Sync (the union of Delta.Users over
// the intervening batches); force requests a full recompute regardless (set
// it when the intervening batches reshaped the group structure, or when the
// change history has a gap). It returns true when the delta-repair path was
// taken and false when the state was fully recomputed.
func (st *SelectorState) Sync(inst *groups.Instance, changed []profile.UserID, force bool) (repaired bool) {
	ix := inst.Index
	n := ix.Repo().NumUsers()
	nG := ix.NumGroups()

	// Effective weights under the new instance: the rule's initial credits.
	// (For the default rule this computes Wei[g] when Cov[g] > 0, else 0 —
	// the historical quantity, float for float.)
	var newEff []float64
	if inst.EBS {
		newEff = make([]float64, nG)
	} else {
		newEff = st.rule.OrDefault().initialCredits(inst)
	}

	if force || inst.EBS || st.base == nil || len(st.base) > n {
		st.recompute(inst, newEff)
		return false
	}

	csr := ix.CSR()
	oldN := len(st.base)
	if cap(st.scratch) < n {
		st.scratch = make([]bool, n)
	}
	mark := st.scratch[:n]
	for i := range mark {
		mark[i] = false
	}
	affected := n - oldN // new users always need their rows summed
	limit := n / repairMaxFrac
	over := affected > limit

	// Users whose adjacency changed.
	for _, u := range changed {
		if over {
			break
		}
		if int(u) < oldN && !mark[u] {
			mark[u] = true
			affected++
			over = affected > limit
		}
	}
	// Members of groups whose effective weight changed (covers LBS size
	// drift, groups created by the batch, and any coverage flip).
	for g := 0; g < nG && !over; g++ {
		var old float64
		if g < len(st.effW) {
			old = st.effW[g]
		}
		if newEff[g] == old {
			continue
		}
		for _, m := range csr.Members(groups.GroupID(g)) {
			if int(m) < oldN && !mark[m] {
				mark[m] = true
				affected++
				if over = affected > limit; over {
					break
				}
			}
		}
	}
	if over {
		st.recompute(inst, newEff)
		return false
	}

	// Detach (or grow) the private base array, then re-sum the marked rows
	// in ascending group order — the BaseMarginals float order.
	if !st.owned || len(st.base) < n {
		nb := make([]float64, n)
		copy(nb, st.base)
		st.base = nb
		st.owned = true
	}
	for u := oldN; u < n; u++ {
		mark[u] = true
	}
	for u := 0; u < n; u++ {
		if !mark[u] {
			continue
		}
		var m float64
		for _, g := range csr.UserGroups(profile.UserID(u)) {
			m += newEff[g]
		}
		st.base[u] = m
		st.RepairedUsers++
	}
	st.effW = newEff
	st.Repairs++
	return true
}

// recompute resets the state from the rule's base marginals — for the
// default rule the instance's memoized BaseMarginals (aliased, not copied),
// for other rules a fresh rule-computed slice the state owns.
func (st *SelectorState) recompute(inst *groups.Instance, newEff []float64) {
	r := st.rule.OrDefault()
	switch {
	case inst.EBS:
		// EBS float weights overflow; the base array is never consulted
		// (Select routes EBS to the exact rank-vector path).
		st.base, st.owned = nil, false
	case r.def:
		st.base, st.owned = inst.BaseMarginals(), false
	default:
		st.base, st.owned = r.baseFrom(inst, nil), true
	}
	st.effW = newEff
	st.Recomputes++
}

// Select runs a lazy-greedy selection seeded from the synced base state. The
// caller must have Synced against the same inst. The result is bit-identical
// to a fresh lazy (and therefore eager) greedy under the state's rule on
// inst; opt is consulted only on the fallback paths — the seeded run's heap
// build is an O(n) copy with nothing worth sharding. EBS instances fall back
// to the exact path, which only the default rule supports (rule-aware
// callers gate EBS upstream).
func (st *SelectorState) Select(inst *groups.Instance, budget int, opt Options) *Result {
	r := st.rule.OrDefault()
	if inst.EBS || st.base == nil || len(st.base) != inst.Index.Repo().NumUsers() {
		return lazyGreedyRule(inst, budget, nil, r, opt)
	}
	return lazySeededRule(inst, budget, st.base, r)
}
