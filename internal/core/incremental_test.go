package core

import (
	"fmt"
	"math/rand"
	"testing"

	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/synth"
)

// applyRandomBatch applies ops random mutations to the (cloned) repo and
// index through the same funnels the mutable server uses: user additions via
// AddUser + IndexUser, score moves via SetScore + UpdateScore, and — when
// newProp is set — a brand-new property bucketed live via BucketProperty,
// which marks the batch reshaped.
func applyRandomBatch(t *testing.T, rng *rand.Rand, repo *profile.Repository, ix *groups.Index, ops int, newProp string) {
	t.Helper()
	labels := repo.Catalog().Labels()
	for i := 0; i < ops; i++ {
		if rng.Intn(4) == 0 {
			u := repo.AddUser(fmt.Sprintf("mut-user-%d-%d", repo.NumUsers(), i))
			for k := 0; k < 3; k++ {
				if err := repo.SetScore(u, labels[rng.Intn(len(labels))], rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := ix.IndexUser(u); err != nil {
				t.Fatal(err)
			}
			continue
		}
		u := profile.UserID(rng.Intn(repo.NumUsers()))
		label := labels[rng.Intn(len(labels))]
		if err := repo.SetScore(u, label, rng.Float64()); err != nil {
			t.Fatal(err)
		}
		pid, _ := repo.Catalog().Lookup(label)
		if err := ix.UpdateScore(u, pid); err != nil {
			t.Fatal(err)
		}
	}
	if newProp != "" {
		u := profile.UserID(rng.Intn(repo.NumUsers()))
		if err := repo.SetScore(u, newProp, rng.Float64()); err != nil {
			t.Fatal(err)
		}
		pid, _ := repo.Catalog().Lookup(newProp)
		if err := ix.BucketProperty(pid, groups.Config{K: 3}); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: a delta-repaired SelectorState is bit-identical to fresh
// LazyGreedy (and the eager engine) after every randomized mutation batch.
// 50 instances across all three synthetic presets and all scheme pairs,
// checked at parallelism 1/2/8 after each of four batches per instance —
// including a reshaping batch (new property) and an oversized batch that
// exercises the conservative full-recompute fallback.
func TestSelectorStateBitIdentity(t *testing.T) {
	const budget = 6
	wss := []groups.WeightScheme{groups.WeightLBS, groups.WeightIden, groups.WeightEBS}
	css := []groups.CoverageScheme{groups.CoverSingle, groups.CoverProp}
	var totalRepairs, totalRecomputes uint64
	for i := 0; i < 50; i++ {
		users := 40 + i*5
		var cfg synth.Config
		switch i % 3 {
		case 0:
			cfg = synth.TripAdvisorLike(users)
		case 1:
			cfg = synth.YelpLike(users)
		default:
			cfg = synth.ScaleLike(users)
		}
		cfg.Seed += int64(i)
		ws := wss[i%len(wss)]
		cs := css[(i/3)%len(css)]
		t.Run(fmt.Sprintf("%s-%d-%s-%s", cfg.Name, users, ws, cs), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(9000 + i)))
			repo := synth.Generate(cfg).Repo
			ix := groups.Build(repo, groups.Config{K: 3})
			ix.Freeze()

			st := NewSelectorState()
			inst := groups.NewInstance(ix, ws, cs, budget)
			st.Sync(inst, nil, false)

			check := func(round int, inst *groups.Instance) {
				t.Helper()
				want := LazyGreedyOpts(inst, budget, Options{})
				if eager := GreedyOpts(inst, budget, Options{}); !sameResult(want, eager) {
					t.Fatalf("round %d: lazy vs eager diverged", round)
				}
				for _, par := range []int{1, 2, 8} {
					if fresh := LazyGreedyOpts(inst, budget, Options{Parallelism: par}); !sameResult(want, fresh) {
						t.Fatalf("round %d: fresh lazy diverged at parallelism %d", round, par)
					}
					if got := st.Select(inst, budget, Options{Parallelism: par}); !sameResult(want, got) {
						t.Fatalf("round %d: repaired state diverged from fresh LazyGreedy at parallelism %d", round, par)
					}
				}
			}
			check(0, inst)

			for round := 1; round <= 4; round++ {
				repo2 := repo.Clone()
				ix2 := ix.Clone(repo2)
				ops := 1 + rng.Intn(6)
				newProp := ""
				switch round {
				case 3:
					// Reshape: a property first seen live.
					newProp = fmt.Sprintf("live-prop-%d-%d", i, round)
				case 4:
					// Oversized batch: force the threshold fallback.
					ops = repo2.NumUsers()
				}
				applyRandomBatch(t, rng, repo2, ix2, ops, newProp)
				// The delta may legitimately be empty: score updates that stay
				// in the same bucket move no adjacency. Sync still runs — an
				// empty repair must be as bit-identical as a busy one.
				d := ix2.TakeDelta()
				if newProp != "" && !d.Reshaped {
					t.Fatalf("round %d: BucketProperty batch not marked reshaped", round)
				}
				ix2.Freeze()
				repo, ix = repo2, ix2
				inst = groups.NewInstance(ix, ws, cs, budget)
				st.Sync(inst, d.Users, d.Reshaped)
				check(round, inst)
			}
			totalRepairs += st.Repairs
			totalRecomputes += st.Recomputes
		})
	}
	// Both Sync paths must actually have been exercised by the sweep.
	if totalRepairs == 0 {
		t.Fatal("no Sync took the delta-repair path")
	}
	if totalRecomputes == 0 {
		t.Fatal("no Sync took the full-recompute path")
	}
}
