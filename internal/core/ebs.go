package core

import (
	"podium/internal/groups"
	"podium/internal/profile"
)

// ebsGreedy is Algorithm 1 specialized to EBS weights, computed exactly.
//
// EBS sets wei(G) = (B+1)^ord(G) (Definition 3.6), which overflows float64
// once a repository has more than a few hundred groups. But exact arithmetic
// is unnecessary: a user's marginal contribution is a sum of *distinct*
// powers of (B+1) — one per unsaturated group the user belongs to, and group
// ranks are unique — so each marginal is exactly a 0/1 digit vector in base
// (B+1), indexed by rank. Comparing two marginals is comparing bitsets from
// the highest rank down. No big-integer arithmetic, no precision loss.
func ebsGreedy(inst *groups.Instance, budget int, allowed []bool) *Result {
	ix := inst.Index
	n := ix.Repo().NumUsers()
	res := &Result{}
	if budget <= 0 || n == 0 {
		return res
	}
	if inst.EBSRank == nil {
		panic("core: EBS instance without ranks")
	}
	numGroups := ix.NumGroups()
	words := (numGroups + 63) / 64

	marg := make([]rankBits, n)
	candidate := make([]bool, n)
	numCandidates := 0
	for u := 0; u < n; u++ {
		if allowed != nil && !allowed[u] {
			continue
		}
		candidate[u] = true
		numCandidates++
		marg[u] = make(rankBits, words)
		gs := ix.UserGroups(profile.UserID(u))
		res.Evaluations += len(gs)
		for _, g := range gs {
			if inst.Cov[g] > 0 {
				marg[u].set(inst.EBSRank[g])
			}
		}
	}

	cov := make([]int, len(inst.Cov))
	copy(cov, inst.Cov)

	for i := 0; i < budget; i++ {
		if numCandidates == 0 {
			break
		}
		best := -1
		for u := 0; u < n; u++ {
			if candidate[u] && (best < 0 || marg[best].less(marg[u])) {
				best = u
			}
		}
		candidate[best] = false
		numCandidates--
		res.Users = append(res.Users, profile.UserID(best))
		// Marginals are reported in the (possibly overflowing) float scale
		// for display; the selection itself never used floats.
		var m float64
		for _, g := range ix.UserGroups(profile.UserID(best)) {
			if cov[g] > 0 {
				m += inst.Wei[g]
			}
		}
		res.Marginals = append(res.Marginals, m)
		res.Score += m
		for _, g := range ix.UserGroups(profile.UserID(best)) {
			if cov[g] <= 0 {
				continue
			}
			cov[g]--
			if cov[g] == 0 {
				r := inst.EBSRank[g]
				for _, member := range ix.Group(g).Members {
					if candidate[member] {
						marg[member].clear(r)
						res.Evaluations++
					}
				}
			}
		}
	}
	return res
}

// rankBits is a fixed-width bitset over group ranks.
type rankBits []uint64

func (b rankBits) set(i int)   { b[i/64] |= 1 << uint(i%64) }
func (b rankBits) clear(i int) { b[i/64] &^= 1 << uint(i%64) }

// less reports whether b < other as base-(B+1) numbers, i.e. comparing from
// the highest rank down.
func (b rankBits) less(other rankBits) bool {
	for w := len(b) - 1; w >= 0; w-- {
		if b[w] != other[w] {
			return b[w] < other[w]
		}
	}
	return false
}
