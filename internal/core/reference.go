package core

import (
	"podium/internal/groups"
	"podium/internal/profile"
)

// ReferenceGreedy is the pre-engine implementation of Algorithm 1, preserved
// verbatim: a boolean candidate mask over all n users, a full-population
// argmax scan per pick, and adjacency walked through the mutable
// [][]GroupID / *Group.Members representation. It exists for two reasons:
// the equivalence property tests use it as the oracle the CSR engine must
// match bit for bit, and the podium-bench `engine` suite uses it as the
// fixed baseline that BENCH_selection.json speedups are measured against, so
// the perf trajectory stays anchored to the seed implementation across PRs.
// EBS instances route to the shared exact rank-vector path, as the seed did.
func ReferenceGreedy(inst *groups.Instance, budget int, allowed []bool) *Result {
	if inst.EBS {
		return ebsGreedy(inst, budget, allowed)
	}
	ix := inst.Index
	n := ix.Repo().NumUsers()
	res := &Result{}
	if budget <= 0 || n == 0 {
		return res
	}

	marg := make([]float64, n)
	candidate := make([]bool, n)
	numCandidates := 0
	for u := 0; u < n; u++ {
		if allowed != nil && !allowed[u] {
			continue
		}
		candidate[u] = true
		numCandidates++
		gs := ix.UserGroups(profile.UserID(u))
		res.Evaluations += len(gs)
		for _, g := range gs {
			if inst.Cov[g] > 0 {
				marg[u] += inst.Wei[g]
			}
		}
	}

	cov := make([]int, len(inst.Cov))
	copy(cov, inst.Cov)

	for i := 0; i < budget; i++ {
		if numCandidates == 0 {
			break
		}
		best := -1
		for u := 0; u < n; u++ {
			if candidate[u] && (best < 0 || marg[u] > marg[best]) {
				best = u
			}
		}
		candidate[best] = false
		numCandidates--
		res.Users = append(res.Users, profile.UserID(best))
		res.Marginals = append(res.Marginals, marg[best])
		res.Score += marg[best]
		for _, g := range ix.UserGroups(profile.UserID(best)) {
			if cov[g] <= 0 {
				continue
			}
			cov[g]--
			if cov[g] == 0 {
				w := inst.Wei[g]
				for _, member := range ix.Group(g).Members {
					if candidate[member] {
						marg[member] -= w
						res.Evaluations++
					}
				}
			}
		}
	}
	return res
}
