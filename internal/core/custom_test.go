package core

import (
	"testing"

	"podium/internal/groups"
	"podium/internal/profile"
)

// exampleFeedback is the customization feedback of Example 6.2: "must have"
// any avgRating Mexican bucket, priority coverage on the livesIn properties.
func exampleFeedback(t *testing.T, ix *groups.Index) Feedback {
	t.Helper()
	cat := ix.Repo().Catalog()
	var fb Feedback
	mex, ok := cat.Lookup(profile.ExAvgMexican)
	if !ok {
		t.Fatal("avgRating Mexican not interned")
	}
	fb.MustHave = append(fb.MustHave, ix.GroupsOfProperty(mex)...)
	for _, label := range []string{profile.ExLivesInTokyo, profile.ExLivesInNYC, profile.ExLivesInBali, profile.ExLivesInParis} {
		id, ok := cat.Lookup(label)
		if !ok {
			t.Fatalf("%s not interned", label)
		}
		fb.Priority = append(fb.Priority, ix.GroupsOfProperty(id)...)
	}
	return fb
}

func TestRefineUsersExample62(t *testing.T) {
	// Example 6.4: the refined user set excludes Carol, who never rated
	// Mexican food.
	inst := paperInstance(groups.WeightLBS, groups.CoverSingle, 2)
	fb := exampleFeedback(t, inst.Index)
	allowed := RefineUsers(inst.Index, fb)
	want := []bool{true, true, false, true, true}
	for u, w := range want {
		if allowed[u] != w {
			t.Fatalf("allowed = %v, want %v", allowed, want)
		}
	}
}

func TestRefineUsersMustNot(t *testing.T) {
	inst := paperInstance(groups.WeightLBS, groups.CoverSingle, 2)
	ix := inst.Index
	tokyoProp, _ := ix.Repo().Catalog().Lookup(profile.ExLivesInTokyo)
	var fb Feedback
	// Exclude the positive Tokyo bucket: Alice and David out.
	for _, gid := range ix.GroupsOfProperty(tokyoProp) {
		if ix.Group(gid).Bucket.Contains(1) {
			fb.MustNot = append(fb.MustNot, gid)
		}
	}
	allowed := RefineUsers(ix, fb)
	if allowed[0] || allowed[3] {
		t.Fatalf("Tokyo residents not excluded: %v", allowed)
	}
	if !allowed[1] || !allowed[2] || !allowed[4] {
		t.Fatalf("non-residents wrongly excluded: %v", allowed)
	}
}

func TestRefineUsersPerPropertyDisjunction(t *testing.T) {
	// 𝒢₊ with two buckets of the same property: membership in either
	// suffices (the "avoid contradictions" rule of Definition 6.1).
	inst := paperInstance(groups.WeightLBS, groups.CoverSingle, 2)
	ix := inst.Index
	mex, _ := ix.Repo().Catalog().Lookup(profile.ExAvgMexican)
	fb := Feedback{MustHave: ix.GroupsOfProperty(mex)}
	allowed := RefineUsers(ix, fb)
	// Everyone who rated Mexican food (all but Carol) survives.
	want := []bool{true, true, false, true, true}
	for u := range want {
		if allowed[u] != want[u] {
			t.Fatalf("allowed = %v, want %v", allowed, want)
		}
	}
}

func TestRefineUsersEmptyFeedbackKeepsAll(t *testing.T) {
	inst := paperInstance(groups.WeightLBS, groups.CoverSingle, 2)
	for u, ok := range RefineUsers(inst.Index, Feedback{}) {
		if !ok {
			t.Fatalf("user %d excluded by empty feedback", u)
		}
	}
}

func TestGreedyCustomExample64(t *testing.T) {
	// Example 6.4: with the Example 6.2 feedback, Single + LBS still selects
	// {Alice, Eve}: it maximizes priority (livesIn) coverage weight 3, and
	// among such subsets maximizes the standard score 14.
	inst := paperInstance(groups.WeightLBS, groups.CoverSingle, 2)
	fb := exampleFeedback(t, inst.Index)
	res, err := GreedyCustom(inst, fb, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !usersEqual(res.Users, []profile.UserID{0, 4}) {
		t.Fatalf("selected %v, want [0 4] (Alice, Eve)", res.Users)
	}
	if res.PriorityScore != 3 {
		t.Fatalf("priority score = %v, want 3 (two livesIn groups of weights 2 and 1)", res.PriorityScore)
	}
	if res.StandardScore != 14 {
		t.Fatalf("standard score = %v, want 14", res.StandardScore)
	}
	// Carol must not be selectable.
	if res.Allowed[2] {
		t.Fatal("Carol in refined set")
	}
}

func TestGreedyCustomPriorityDominates(t *testing.T) {
	// A user covering one priority group must beat a user covering every
	// standard group.
	repo := profile.NewRepository()
	rich := repo.AddUser("rich")
	for p := 0; p < 6; p++ {
		repo.MustSetScore(rich, string(rune('a'+p)), 1)
	}
	target := repo.AddUser("target")
	repo.MustSetScore(target, "priority-prop", 1)
	ix := groups.Build(repo, groups.Config{K: 3})
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, 1)
	pid, _ := repo.Catalog().Lookup("priority-prop")
	fb := Feedback{Priority: ix.GroupsOfProperty(pid)}
	res, err := GreedyCustom(inst, fb, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Users) != 1 || res.Users[0] != target {
		t.Fatalf("selected %v, want the priority-covering user", res.Users)
	}
}

func TestGreedyCustomIgnoredGroups(t *testing.T) {
	// With explicit 𝒢_d? = ∅ and 𝒢_d = {one group}, only that group's
	// coverage matters; any subset covering it is optimal (Example 6.4's
	// closing remark). The selected user must belong to it.
	inst := paperInstance(groups.WeightLBS, groups.CoverSingle, 1)
	ix := inst.Index
	tokyoProp, _ := ix.Repo().Catalog().Lookup(profile.ExLivesInTokyo)
	gids := ix.GroupsOfProperty(tokyoProp)
	fb := Feedback{Priority: gids, StandardExplicit: true}
	res, err := GreedyCustom(inst, fb, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Users) != 1 {
		t.Fatalf("selected %v", res.Users)
	}
	if !ix.Group(gids[0]).Contains(res.Users[0]) {
		t.Fatalf("selected %v does not cover the only priority group", res.Users)
	}
	if res.StandardScore != 0 {
		t.Fatalf("standard score %v with empty 𝒢_d?", res.StandardScore)
	}
}

func TestFeedbackValidate(t *testing.T) {
	inst := paperInstance(groups.WeightLBS, groups.CoverSingle, 2)
	bad := Feedback{Priority: []groups.GroupID{999}}
	if err := bad.Validate(inst.Index); err == nil {
		t.Fatal("unknown group accepted")
	}
	if _, err := GreedyCustom(inst, bad, 2); err == nil {
		t.Fatal("GreedyCustom accepted invalid feedback")
	}
	if err := (Feedback{}).Validate(inst.Index); err != nil {
		t.Fatal(err)
	}
}

func TestCustomInstanceTierSeparation(t *testing.T) {
	// Any single priority-group gain must exceed the maximum possible
	// standard score.
	inst := paperInstance(groups.WeightLBS, groups.CoverSingle, 2)
	fb := exampleFeedback(t, inst.Index)
	tiered := CustomInstance(inst, fb)
	var maxStd float64
	prio := map[groups.GroupID]bool{}
	for _, id := range fb.Priority {
		prio[id] = true
	}
	for i := range inst.Wei {
		if !prio[groups.GroupID(i)] {
			maxStd += inst.Wei[i] * float64(inst.Cov[i])
		}
	}
	for _, id := range fb.Priority {
		if tiered.Wei[id] <= maxStd {
			t.Fatalf("priority weight %v does not dominate max standard score %v", tiered.Wei[id], maxStd)
		}
	}
}

func TestCustomInstanceDropsEBSExactPath(t *testing.T) {
	inst := paperInstance(groups.WeightEBS, groups.CoverSingle, 2)
	fb := exampleFeedback(t, inst.Index)
	tiered := CustomInstance(inst, fb)
	if tiered.EBS {
		t.Fatal("tiered instance kept the EBS exact path")
	}
}

func TestGreedyCustomNeverSelectsFiltered(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		inst := randomInstance(seed, 30, 8, groups.WeightLBS, groups.CoverSingle, 6)
		ix := inst.Index
		if ix.NumGroups() < 4 {
			continue
		}
		fb := Feedback{
			MustHave: []groups.GroupID{0},
			MustNot:  []groups.GroupID{1},
		}
		res, err := GreedyCustom(inst, fb, 6)
		if err != nil {
			t.Fatal(err)
		}
		for _, u := range res.Users {
			if !ix.Group(0).Contains(u) {
				t.Fatalf("seed %d: selected %d outside 𝒢₊", seed, u)
			}
			if ix.Group(1).Contains(u) {
				t.Fatalf("seed %d: selected %d inside 𝒢₋", seed, u)
			}
		}
	}
}
