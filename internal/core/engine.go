package core

import (
	"sync"
	"time"

	"podium/internal/groups"
	"podium/internal/profile"
)

// This file is the cache-friendly selection engine behind Greedy and
// GreedyRestricted (float-weight instances; EBS routes to ebs.go). It runs
// Algorithm 1 with three engine-level changes, none of which alters output:
//
//  1. Adjacency is read from the Index's frozen CSR view — contiguous
//     user→groups and group→members rows — instead of the mutable
//     [][]GroupID / *Group.Members representation, so every hot loop is a
//     linear scan without pointer chasing.
//
//  2. Candidates live in a compacted ascending list rather than a boolean
//     mask over all n users. The per-pick argmax touches only the remaining
//     |𝒰′| candidates, which matters when customization refines the
//     population to a small 𝒰′ (custom.go) and late in large selections.
//
//  3. Empty-selection marginals come from Instance.BaseMarginals — one
//     memoized O(links) pass per instance (bit-identical to summing each
//     user's CSR row ascending) — so a selection starts from an O(n) copy.
//     The server memoizes instances per snapshot epoch, which makes the
//     per-request select cost independent of total link count.
//
//  4. With Options.Parallelism > 1, the argmax and retraction loops shard
//     across workers. Determinism is preserved structurally: shards are
//     contiguous index ranges, each worker reports a local (marginal,
//     lowest-index) best, and the reduction scans shards in ascending order
//     accepting only strictly greater marginals — exactly the total order
//     the sequential scan implies. Float sums are unchanged because
//     retractions apply exactly one subtraction per (group, member) pair in
//     the same group order as the sequential loop.
//
// Result.Evaluations counts the link traversals this engine performs; the
// engine walks whole CSR member rows (no per-member candidacy branch), so
// saturation counts every member link, where the pre-CSR implementation
// (reference.go) counted only remaining candidates.

// engineParallelCutoff is the element count below which sharding a loop is
// not worth the goroutine fan-out. A package variable so the equivalence
// tests can force the sharded paths on tiny instances.
var engineParallelCutoff = 256

func engineGreedy(inst *groups.Instance, budget int, allowed []bool, opt Options) *Result {
	ix := inst.Index
	n := ix.Repo().NumUsers()
	res := &Result{}
	if budget <= 0 || n == 0 {
		return res
	}
	csr := ix.CSR()
	workers := opt.workerCount()

	// Optional stage clock. All timing sites guard on tim != nil, so the
	// uninstrumented path pays one predictable branch per stage boundary.
	tim := opt.Timings
	var t0 time.Time
	if tim != nil {
		tim.Runs++
		t0 = time.Now()
	}

	// Compacted candidate list 𝒰′, ascending so scans inherit the
	// lowest-index tie-break.
	cand := make([]int32, 0, n)
	for u := 0; u < n; u++ {
		if allowed == nil || allowed[u] {
			cand = append(cand, int32(u))
		}
	}
	if len(cand) == 0 {
		return res
	}

	// Line 2: marg_{u,∅} = Σ_{G∋u, cov(G)>0} wei(G). The instance memoizes
	// the empty-selection marginals (one O(links) group-major pass, in the
	// same per-user ascending-group float order this loop used to run), so
	// every selection after an instance's first starts from an O(n) copy —
	// the pass that used to dominate large-population selects is paid once
	// per published snapshot, not once per request.
	marg := make([]float64, n)
	copy(marg, inst.BaseMarginals())
	for _, cu := range cand {
		res.Evaluations += csr.UserDegree(profile.UserID(cu))
	}

	// Remaining required coverage per group; mutated as users are picked.
	cov := make([]int, len(inst.Cov))
	copy(cov, inst.Cov)

	// The selection size is known up front; pre-sizing the result slices
	// keeps the pick loop allocation-free.
	picks := budget
	if picks > len(cand) {
		picks = len(cand)
	}
	res.Users = make([]profile.UserID, 0, picks)
	res.Marginals = make([]float64, 0, picks)

	if tim != nil {
		tim.InitNs += time.Since(t0).Nanoseconds()
	}

	for i := 0; i < budget && len(cand) > 0; i++ {
		// Line 5: arg max marginal over the candidate list, ties toward the
		// lowest index.
		if tim != nil {
			tim.Picks++
			t0 = time.Now()
		}
		var bi int
		if workers > 1 && len(cand) >= engineParallelCutoff {
			bi = parallelArgmax(cand, marg, workers, tim)
		} else {
			bm := marg[cand[0]]
			for j := 1; j < len(cand); j++ {
				if marg[cand[j]] > bm {
					bm = marg[cand[j]]
					bi = j
				}
			}
		}
		if tim != nil {
			tim.ArgmaxNs += time.Since(t0).Nanoseconds()
		}
		best := int(cand[bi])
		// Line 6: move best from 𝒰 to U, keeping the list ascending.
		cand = append(cand[:bi], cand[bi+1:]...)
		res.Users = append(res.Users, profile.UserID(best))
		res.Marginals = append(res.Marginals, marg[best])
		res.Score += marg[best]
		// Lines 7-10: decrement coverage; on saturation, retract the group's
		// weight from every member's marginal. Members no longer candidates
		// are retracted too — their marginals are never read again — which
		// removes the per-member candidacy branch from the hot loop. Groups
		// retract in ascending order, one subtraction per member, so
		// candidate marginals round identically to the sequential engine.
		if tim != nil {
			t0 = time.Now()
		}
		for _, g := range csr.UserGroups(profile.UserID(best)) {
			if cov[g] <= 0 {
				continue
			}
			cov[g]--
			if cov[g] == 0 {
				w := inst.Wei[g]
				members := csr.Members(g)
				res.Evaluations += len(members)
				if workers > 1 && len(members) >= engineParallelCutoff {
					shardRange(len(members), workers, func(lo, hi int) {
						for _, m := range members[lo:hi] {
							marg[m] -= w
						}
					})
				} else {
					for _, m := range members {
						marg[m] -= w
					}
				}
			}
		}
		if tim != nil {
			tim.RetractNs += time.Since(t0).Nanoseconds()
		}
	}
	return res
}

// shardRange splits [0,n) into at most `workers` contiguous chunks and runs
// body(lo,hi) on each concurrently, returning when all are done. Chunks are
// disjoint, so bodies writing to distinct per-element slots do not race.
func shardRange(n, workers int, body func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parallelArgmax returns the position in cand of the candidate with the
// greatest marginal, ties toward the lowest user index. Each worker scans a
// contiguous shard ascending with a strictly-greater comparison; the
// reduction visits shards in ascending order with the same strictly-greater
// rule, so the winner is identical to a single ascending scan. tim, when
// non-nil, accrues the reduction's cost as the merge stage.
func parallelArgmax(cand []int32, marg []float64, workers int, tim *StageTimings) int {
	n := len(cand)
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	type localBest struct {
		idx int
		val float64
	}
	bests := make([]localBest, 0, workers)
	for lo := 0; lo < n; lo += chunk {
		bests = append(bests, localBest{idx: -1})
	}
	var wg sync.WaitGroup
	shard := 0
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			bi := lo
			bm := marg[cand[lo]]
			for j := lo + 1; j < hi; j++ {
				if marg[cand[j]] > bm {
					bm = marg[cand[j]]
					bi = j
				}
			}
			bests[shard] = localBest{idx: bi, val: bm}
		}(shard, lo, hi)
		shard++
	}
	wg.Wait()
	var t0 time.Time
	if tim != nil {
		t0 = time.Now()
	}
	best := bests[0]
	for _, b := range bests[1:] {
		if b.val > best.val {
			best = b
		}
	}
	if tim != nil {
		tim.MergeNs += time.Since(t0).Nanoseconds()
	}
	return best.idx
}
