package groups

import (
	"testing"

	"podium/internal/profile"
)

// csrMatchesIndex asserts the CSR rows mirror the mutable adjacency exactly,
// including order.
func csrMatchesIndex(t *testing.T, ix *Index) {
	t.Helper()
	c := ix.CSR()
	if c.NumGroups() != ix.NumGroups() {
		t.Fatalf("CSR has %d groups, index %d", c.NumGroups(), ix.NumGroups())
	}
	links := 0
	for u := 0; u < c.NumUsers(); u++ {
		row := c.UserGroups(profile.UserID(u))
		want := ix.UserGroups(profile.UserID(u))
		if len(row) != len(want) || c.UserDegree(profile.UserID(u)) != len(want) {
			t.Fatalf("user %d: CSR row %v, index row %v", u, row, want)
		}
		for i := range row {
			if row[i] != want[i] {
				t.Fatalf("user %d: CSR row %v, index row %v", u, row, want)
			}
		}
		links += len(row)
	}
	if c.NumLinks() != links {
		t.Fatalf("NumLinks = %d, want %d", c.NumLinks(), links)
	}
	for g := 0; g < c.NumGroups(); g++ {
		row := c.Members(GroupID(g))
		want := ix.Group(GroupID(g)).Members
		if len(row) != len(want) {
			t.Fatalf("group %d: CSR members %v, index members %v", g, row, want)
		}
		for i := range row {
			if row[i] != want[i] {
				t.Fatalf("group %d: CSR members %v, index members %v", g, row, want)
			}
		}
	}
}

func TestCSRMirrorsAdjacency(t *testing.T) {
	repo := profile.PaperExample()
	ix := Build(repo, Config{K: 3})
	csrMatchesIndex(t, ix)
	// The frozen view is cached: two calls return the same object.
	if ix.CSR() != ix.CSR() {
		t.Fatal("CSR view not cached between calls")
	}
}

func TestCSRInvalidatedByMutation(t *testing.T) {
	repo := profile.PaperExample()
	ix := Build(repo, Config{K: 3})
	before := ix.CSR()

	// A complex group mutates the adjacency; the view must be rebuilt.
	ga := ix.GroupsOfProperty(0)
	if len(ga) == 0 {
		t.Fatal("paper example has no groups for property 0")
	}
	var gb []GroupID
	for p := 1; p < repo.NumProperties(); p++ {
		if gs := ix.GroupsOfProperty(profile.PropertyID(p)); len(gs) > 0 {
			gb = gs
			break
		}
	}
	if _, err := ix.AddUnion(ga[0], gb[0]); err != nil {
		t.Fatalf("AddUnion: %v", err)
	}
	after := ix.CSR()
	if after == before {
		t.Fatal("CSR view not invalidated by AddUnion")
	}
	csrMatchesIndex(t, ix)

	// Incremental user indexing invalidates too.
	u := repo.AddUser("zoe")
	repo.MustSetScore(u, repo.Catalog().Label(0), 0.9)
	if _, err := ix.IndexUser(u); err != nil {
		t.Fatalf("IndexUser: %v", err)
	}
	csrMatchesIndex(t, ix)
}

func TestCachedStatsTrackMutations(t *testing.T) {
	repo := profile.PaperExample()
	ix := Build(repo, Config{K: 3})

	recompute := func() (int, int) {
		maxG, maxU := 0, 0
		for _, g := range ix.Groups() {
			if g.Size() > maxG {
				maxG = g.Size()
			}
		}
		for u := 0; u < repo.NumUsers(); u++ {
			if d := len(ix.UserGroups(profile.UserID(u))); d > maxU {
				maxU = d
			}
		}
		return maxG, maxU
	}

	wantG, wantU := recompute()
	if ix.MaxGroupSize() != wantG || ix.MaxGroupsPerUser() != wantU {
		t.Fatalf("cached stats (%d,%d) != recomputed (%d,%d)",
			ix.MaxGroupSize(), ix.MaxGroupsPerUser(), wantG, wantU)
	}

	// A manual group containing everyone raises both maxima.
	all := make([]profile.UserID, repo.NumUsers())
	for i := range all {
		all[i] = profile.UserID(i)
	}
	if _, err := ix.AddManualGroup("everyone", all); err != nil {
		t.Fatalf("AddManualGroup: %v", err)
	}
	wantG, wantU = recompute()
	if ix.MaxGroupSize() != wantG || ix.MaxGroupsPerUser() != wantU {
		t.Fatalf("after mutation: cached stats (%d,%d) != recomputed (%d,%d)",
			ix.MaxGroupSize(), ix.MaxGroupsPerUser(), wantG, wantU)
	}
}
