package groups

import (
	"fmt"
	"testing"

	"podium/internal/bucketing"
	"podium/internal/profile"
	"podium/internal/stats"
)

func TestIndexUserJoinsExistingBuckets(t *testing.T) {
	repo := profile.PaperExample()
	ix := Build(repo, Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3})
	before := ix.NumGroups()

	// Frank: Tokyo resident, Mexican food lover — must join both existing
	// groups without creating new ones.
	frank := repo.AddUser("Frank")
	repo.MustSetScore(frank, profile.ExLivesInTokyo, 1)
	repo.MustSetScore(frank, profile.ExAvgMexican, 0.9)

	unbucketed, err := ix.IndexUser(frank)
	if err != nil {
		t.Fatal(err)
	}
	if len(unbucketed) != 0 {
		t.Fatalf("unbucketed = %v", unbucketed)
	}
	if ix.NumGroups() != before {
		t.Fatalf("groups grew from %d to %d", before, ix.NumGroups())
	}
	tokyo := groupByLabel(t, ix, profile.ExLivesInTokyo)
	if !tokyo.Contains(frank) || tokyo.Size() != 3 {
		t.Fatalf("Tokyo group = %v", tokyo.Members)
	}
	if len(ix.UserGroups(frank)) != 2 {
		t.Fatalf("Frank in %d groups, want 2", len(ix.UserGroups(frank)))
	}
}

func TestIndexUserCreatesMissingBucketGroup(t *testing.T) {
	repo := profile.PaperExample()
	ix := Build(repo, Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3})
	before := ix.NumGroups()
	// avgRating Mexican's medium bucket had no members at build time.
	grace := repo.AddUser("Grace")
	repo.MustSetScore(grace, profile.ExAvgMexican, 0.5)

	if _, err := ix.IndexUser(grace); err != nil {
		t.Fatal(err)
	}
	if ix.NumGroups() != before+1 {
		t.Fatalf("groups = %d, want %d", ix.NumGroups(), before+1)
	}
	g := groupByLabel(t, ix, "medium scores for avgRating Mexican")
	if g.Size() != 1 || !g.Contains(grace) {
		t.Fatalf("medium group = %v", g.Members)
	}
	// Bucket order of GroupsOfProperty preserved: low, medium, high.
	pid, _ := repo.Catalog().Lookup(profile.ExAvgMexican)
	ids := ix.GroupsOfProperty(pid)
	for i := 1; i < len(ids); i++ {
		if ix.Group(ids[i]).BucketIdx <= ix.Group(ids[i-1]).BucketIdx {
			t.Fatalf("bucket order broken: %v", ids)
		}
	}
}

func TestIndexUserReportsNewProperties(t *testing.T) {
	repo := profile.PaperExample()
	ix := Build(repo, Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3})
	u := repo.AddUser("Heidi")
	repo.MustSetScore(u, "brand-new property", 0.5)
	repo.MustSetScore(u, profile.ExLivesInParis, 1)

	unbucketed, err := ix.IndexUser(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(unbucketed) != 1 {
		t.Fatalf("unbucketed = %v, want the new property only", unbucketed)
	}
	if got := repo.Catalog().Label(unbucketed[0]); got != "brand-new property" {
		t.Fatalf("unbucketed property = %q", got)
	}
}

func TestIndexUserErrors(t *testing.T) {
	repo := profile.PaperExample()
	ix := Build(repo, Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3})
	if _, err := ix.IndexUser(profile.UserID(99)); err == nil {
		t.Fatal("unknown user accepted")
	}
	if _, err := ix.IndexUser(profile.UserID(0)); err == nil {
		t.Fatal("re-indexing an indexed user accepted")
	}
}

func TestIndexUserUpdatesComplexGroups(t *testing.T) {
	repo := profile.PaperExample()
	ix := Build(repo, Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3})
	tokyo := groupByLabel(t, ix, profile.ExLivesInTokyo)
	lovers := groupByLabel(t, ix, "high scores for avgRating Mexican")
	cid, err := ix.AddIntersection(tokyo.ID, lovers.ID)
	if err != nil {
		t.Fatal(err)
	}
	frank := repo.AddUser("Frank")
	repo.MustSetScore(frank, profile.ExLivesInTokyo, 1)
	repo.MustSetScore(frank, profile.ExAvgMexican, 0.9)
	if _, err := ix.IndexUser(frank); err != nil {
		t.Fatal(err)
	}
	if !ix.Group(cid).Contains(frank) {
		t.Fatal("new user missing from the dependent intersection group")
	}
}

func TestUpdateScoreMovesBetweenBuckets(t *testing.T) {
	repo := profile.PaperExample()
	ix := Build(repo, Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3})
	pid, _ := repo.Catalog().Lookup(profile.ExAvgMexican)

	// Bob's avgRating Mexican goes 0.3 (low) → 0.9 (high).
	repo.MustSetScore(profile.UserID(1), profile.ExAvgMexican, 0.9)
	if err := ix.UpdateScore(profile.UserID(1), pid); err != nil {
		t.Fatal(err)
	}
	lovers := groupByLabel(t, ix, "high scores for avgRating Mexican")
	if !lovers.Contains(1) || lovers.Size() != 4 {
		t.Fatalf("lovers = %v", lovers.Members)
	}
	low := groupByLabel(t, ix, "low scores for avgRating Mexican")
	if low.Contains(1) || low.Size() != 0 {
		t.Fatalf("low group still holds Bob: %v", low.Members)
	}
	// Idempotent within the same bucket.
	repo.MustSetScore(profile.UserID(1), profile.ExAvgMexican, 0.95)
	if err := ix.UpdateScore(profile.UserID(1), pid); err != nil {
		t.Fatal(err)
	}
	if lovers.Size() != 4 {
		t.Fatalf("same-bucket update changed membership: %v", lovers.Members)
	}
}

func TestUpdateScoreMaintainsComplexGroups(t *testing.T) {
	repo := profile.PaperExample()
	ix := Build(repo, Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3})
	tokyo := groupByLabel(t, ix, profile.ExLivesInTokyo)
	lovers := groupByLabel(t, ix, "high scores for avgRating Mexican")
	cid, err := ix.AddIntersection(tokyo.ID, lovers.ID) // {Alice, David}
	if err != nil {
		t.Fatal(err)
	}
	pid, _ := repo.Catalog().Lookup(profile.ExAvgMexican)
	// David's rating collapses to low → he leaves lovers AND the
	// intersection.
	repo.MustSetScore(profile.UserID(3), profile.ExAvgMexican, 0.1)
	if err := ix.UpdateScore(profile.UserID(3), pid); err != nil {
		t.Fatal(err)
	}
	c := ix.Group(cid)
	if c.Contains(3) || c.Size() != 1 {
		t.Fatalf("intersection after update = %v, want {Alice}", c.Members)
	}
	// And back up again → he rejoins both.
	repo.MustSetScore(profile.UserID(3), profile.ExAvgMexican, 0.8)
	if err := ix.UpdateScore(profile.UserID(3), pid); err != nil {
		t.Fatal(err)
	}
	if !c.Contains(3) {
		t.Fatalf("intersection after restore = %v", c.Members)
	}
}

func TestUpdateScoreErrors(t *testing.T) {
	repo := profile.PaperExample()
	ix := Build(repo, Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3})
	pid, _ := repo.Catalog().Lookup(profile.ExAvgMexican)
	if err := ix.UpdateScore(profile.UserID(50), pid); err == nil {
		t.Fatal("unindexed user accepted")
	}
	// Carol has no avgRating Mexican score.
	if err := ix.UpdateScore(profile.UserID(2), pid); err == nil {
		t.Fatal("missing score accepted")
	}
	newProp := repo.Catalog().Intern("never bucketed")
	if err := ix.UpdateScore(profile.UserID(0), newProp); err == nil {
		t.Fatal("unbucketed property accepted")
	}
}

func TestBucketPropertyFirstSight(t *testing.T) {
	repo := profile.PaperExample()
	ix := Build(repo, Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3})
	// A new property arrives for two existing users.
	repo.MustSetScore(profile.UserID(0), "new prop", 0.2)
	repo.MustSetScore(profile.UserID(1), "new prop", 0.9)
	pid, _ := repo.Catalog().Lookup("new prop")

	if err := ix.BucketProperty(pid, Config{K: 3}); err != nil {
		t.Fatal(err)
	}
	if len(ix.Buckets(pid)) == 0 {
		t.Fatal("no partition derived")
	}
	gids := ix.GroupsOfProperty(pid)
	if len(gids) == 0 {
		t.Fatal("no groups created")
	}
	total := 0
	for _, gid := range gids {
		total += ix.Group(gid).Size()
	}
	if total != 2 {
		t.Fatalf("indexed %d holders, want 2", total)
	}
	// Alice and Bob separated into different buckets.
	if Assign := func(u profile.UserID) GroupID {
		for _, gid := range gids {
			if ix.Group(gid).Contains(u) {
				return gid
			}
		}
		return -1
	}; Assign(0) == Assign(1) {
		t.Fatal("0.2 and 0.9 share a bucket")
	}
	// Adjacency updated and sorted.
	for _, u := range []profile.UserID{0, 1} {
		list := ix.UserGroups(u)
		for i := 1; i < len(list); i++ {
			if list[i] <= list[i-1] {
				t.Fatalf("user %d group list unsorted: %v", u, list)
			}
		}
	}
	// Re-bucketing is an error; unknown property is an error.
	if err := ix.BucketProperty(pid, Config{K: 3}); err == nil {
		t.Fatal("re-bucketing accepted")
	}
	if err := ix.BucketProperty(profile.PropertyID(999), Config{K: 3}); err == nil {
		t.Fatal("unknown property accepted")
	}
}

func TestBucketPropertyNoHolders(t *testing.T) {
	repo := profile.PaperExample()
	ix := Build(repo, Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3})
	pid := repo.Catalog().Intern("registered but unheld")
	if err := ix.BucketProperty(pid, Config{K: 3}); err != nil {
		t.Fatal(err)
	}
	if len(ix.GroupsOfProperty(pid)) != 0 {
		t.Fatal("groups created for a property nobody holds")
	}
}

// Property-style stress: a stream of random incremental updates keeps the
// bidirectional adjacency consistent and equivalent to recomputing bucket
// membership from the repository.
func TestIncrementalAdjacencyConsistency(t *testing.T) {
	rng := stats.NewRand(31)
	repo := profile.NewRepository()
	props := []string{"p0", "p1", "p2", "p3"}
	for u := 0; u < 40; u++ {
		id := repo.AddUser(fmt.Sprintf("u%d", u))
		for _, p := range props {
			if rng.Float64() < 0.7 {
				repo.MustSetScore(id, p, rng.Float64())
			}
		}
	}
	ix := Build(repo, Config{K: 3})

	// 60 random score updates + 10 new users.
	for i := 0; i < 60; i++ {
		u := profile.UserID(rng.Intn(40))
		label := props[rng.Intn(len(props))]
		pid, _ := repo.Catalog().Lookup(label)
		if !repo.Profile(u).Has(pid) {
			continue
		}
		repo.MustSetScore(u, label, rng.Float64())
		if err := ix.UpdateScore(u, pid); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		u := repo.AddUser(fmt.Sprintf("new%d", i))
		for _, p := range props {
			if rng.Float64() < 0.7 {
				repo.MustSetScore(u, p, rng.Float64())
			}
		}
		if _, err := ix.IndexUser(u); err != nil {
			t.Fatal(err)
		}
	}

	// Invariants: mutual adjacency and membership matching bucket
	// assignment of the current repository scores.
	for u := 0; u < repo.NumUsers(); u++ {
		uid := profile.UserID(u)
		for _, gid := range ix.UserGroups(uid) {
			if !ix.Group(gid).Contains(uid) {
				t.Fatalf("user %d lists group %d without membership", u, gid)
			}
		}
	}
	for _, g := range ix.Groups() {
		for _, u := range g.Members {
			s, ok := repo.Profile(u).Score(g.Prop)
			if !ok {
				t.Fatalf("member %d of group %d lacks the property", u, g.ID)
			}
			if !g.Bucket.Contains(s) {
				t.Fatalf("member %d of group %d has score %v outside bucket %v", u, g.ID, s, g.Bucket)
			}
		}
		// Sorted members.
		for i := 1; i < len(g.Members); i++ {
			if g.Members[i] <= g.Members[i-1] {
				t.Fatalf("group %d members unsorted: %v", g.ID, g.Members)
			}
		}
	}
}
