package groups

import (
	"fmt"
	"math/rand"
	"testing"

	"podium/internal/profile"
)

// sparsePopulation mirrors the serving benchmark's dataset: users users
// scoring propsPer properties out of a props-sized vocabulary. It sizes the
// clone benchmarks at the scale where per-batch copy cost matters.
func sparsePopulation(users, props, propsPer int) *profile.Repository {
	repo := profile.NewRepository()
	rng := rand.New(rand.NewSource(7))
	for u := 0; u < users; u++ {
		id := repo.AddUser(fmt.Sprintf("user-%05d", u))
		for _, p := range rng.Perm(props)[:propsPer] {
			repo.MustSetScore(id, fmt.Sprintf("prop-%05d", p), float64(rng.Intn(1001))/1000)
		}
	}
	return repo
}

// BenchmarkIndexCloneFreeze is the writer's fixed per-batch cost: clone the
// published epoch's repository and index, then freeze the copy for
// publication. Amortizing this across a batch is what the mutation
// coalescing window buys.
func BenchmarkIndexCloneFreeze(b *testing.B) {
	repo := sparsePopulation(2000, 2500, 8)
	ix := Build(repo, Config{K: 3})
	ix.Freeze()
	repo.Seal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r2 := repo.Clone()
		cp := ix.Clone(r2)
		cp.Freeze()
	}
}

// BenchmarkIndexClone isolates the copy itself from Freeze's rebuild of the
// derived structures.
func BenchmarkIndexClone(b *testing.B) {
	repo := sparsePopulation(2000, 2500, 8)
	ix := Build(repo, Config{K: 3})
	ix.Freeze()
	repo.Seal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r2 := repo.Clone()
		_ = ix.Clone(r2)
	}
}
