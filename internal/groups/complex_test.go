package groups

import (
	"strings"
	"testing"

	"podium/internal/profile"
)

func TestAddIntersectionExample35(t *testing.T) {
	// Example 3.5: Tokyo residents ∩ Mexican food lovers = {Alice, David},
	// now as a first-class group.
	ix := paperIndex(t)
	tokyo := groupByLabel(t, ix, profile.ExLivesInTokyo)
	lovers := groupByLabel(t, ix, "high scores for avgRating Mexican")
	before := ix.NumGroups()

	id, err := ix.AddIntersection(tokyo.ID, lovers.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumGroups() != before+1 {
		t.Fatalf("NumGroups = %d, want %d", ix.NumGroups(), before+1)
	}
	g := ix.Group(id)
	if g.Kind != IntersectionGroup {
		t.Fatalf("kind = %v", g.Kind)
	}
	if len(g.Members) != 2 || g.Members[0] != 0 || g.Members[1] != 3 {
		t.Fatalf("members = %v, want [0 3]", g.Members)
	}
	// Adjacency wired both ways.
	foundAlice := false
	for _, gid := range ix.UserGroups(0) {
		if gid == id {
			foundAlice = true
		}
	}
	if !foundAlice {
		t.Fatal("Alice's group list lacks the new intersection")
	}
	// Label combines the parents'.
	label := g.Label(ix.Repo().Catalog())
	if !strings.Contains(label, profile.ExLivesInTokyo) || !strings.Contains(label, "AND") {
		t.Fatalf("label = %q", label)
	}
}

func TestAddUnion(t *testing.T) {
	ix := paperIndex(t)
	nyc := groupByLabel(t, ix, profile.ExLivesInNYC)
	bali := groupByLabel(t, ix, profile.ExLivesInBali)
	id, err := ix.AddUnion(nyc.ID, bali.ID)
	if err != nil {
		t.Fatal(err)
	}
	g := ix.Group(id)
	if g.Kind != UnionGroup || len(g.Members) != 2 {
		t.Fatalf("union = %+v", g)
	}
	if !strings.Contains(g.Label(ix.Repo().Catalog()), "OR") {
		t.Fatalf("label = %q", g.Label(ix.Repo().Catalog()))
	}
}

func TestAddComplexValidation(t *testing.T) {
	ix := paperIndex(t)
	if _, err := ix.AddIntersection(0); err == nil {
		t.Fatal("single parent accepted")
	}
	if _, err := ix.AddIntersection(0, GroupID(999)); err == nil {
		t.Fatal("unknown parent accepted")
	}
	// Disjoint groups: NYC resident ∩ Bali resident is empty.
	nyc := groupByLabel(t, ix, profile.ExLivesInNYC)
	bali := groupByLabel(t, ix, profile.ExLivesInBali)
	if _, err := ix.AddIntersection(nyc.ID, bali.ID); err == nil {
		t.Fatal("empty intersection accepted")
	}
}

func TestComplexGroupsHaveDistinctSyntheticProps(t *testing.T) {
	ix := paperIndex(t)
	tokyo := groupByLabel(t, ix, profile.ExLivesInTokyo)
	lovers := groupByLabel(t, ix, "high scores for avgRating Mexican")
	age := groupByLabel(t, ix, profile.ExAgeGroup5064)
	a, err := ix.AddIntersection(tokyo.ID, lovers.ID)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ix.AddIntersection(tokyo.ID, age.ID)
	if err != nil {
		t.Fatal(err)
	}
	ga, gb := ix.Group(a), ix.Group(b)
	if ga.Prop == gb.Prop {
		t.Fatal("complex groups share a synthetic property id")
	}
	if ga.Prop >= 0 || gb.Prop >= 0 {
		t.Fatal("synthetic property ids must be negative")
	}
}

func TestAddManualGroup(t *testing.T) {
	ix := paperIndex(t)
	before := ix.NumGroups()
	// A surveyor-crafted stratum: "frequent travelers" = Alice, Eve, Eve
	// (duplicate), unsorted.
	id, err := ix.AddManualGroup("frequent travelers", []profile.UserID{4, 0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumGroups() != before+1 {
		t.Fatalf("groups = %d", ix.NumGroups())
	}
	g := ix.Group(id)
	if g.Kind != ManualGroup {
		t.Fatalf("kind = %v", g.Kind)
	}
	if len(g.Members) != 2 || g.Members[0] != 0 || g.Members[1] != 4 {
		t.Fatalf("members = %v, want deduplicated sorted [0 4]", g.Members)
	}
	if g.Label(ix.Repo().Catalog()) != "frequent travelers" {
		t.Fatalf("label = %q", g.Label(ix.Repo().Catalog()))
	}
	// Adjacency wired; instance machinery sees it.
	inst := NewInstance(ix, WeightLBS, CoverSingle, 2)
	if inst.Wei[id] != 2 {
		t.Fatalf("manual group LBS weight = %v", inst.Wei[id])
	}
	withAlice := inst.Score([]profile.UserID{0})
	found := false
	for _, gid := range ix.UserGroups(0) {
		if gid == id {
			found = true
		}
	}
	if !found || withAlice == 0 {
		t.Fatal("manual group not wired into adjacency/scoring")
	}
}

func TestAddManualGroupValidation(t *testing.T) {
	ix := paperIndex(t)
	if _, err := ix.AddManualGroup("empty", nil); err == nil {
		t.Fatal("empty manual group accepted")
	}
	if _, err := ix.AddManualGroup("bad", []profile.UserID{99}); err == nil {
		t.Fatal("unknown member accepted")
	}
}

func TestComplexGroupParticipatesInSelection(t *testing.T) {
	// Weighting a complex group heavily must pull one of its members into
	// the selection.
	ix := paperIndex(t)
	carol := groupByLabel(t, ix, profile.ExLivesInBali) // {Carol}
	age := groupByLabel(t, ix, profile.ExAgeGroup5064)  // {Alice, Carol}
	gid, err := ix.AddIntersection(carol.ID, age.ID)    // {Carol}
	if err != nil {
		t.Fatal(err)
	}
	inst := NewInstance(ix, WeightLBS, CoverSingle, 1)
	// The new group contributes to Carol's marginal under Score.
	withCarol := inst.Score([]profile.UserID{2})
	var expected float64
	for _, g := range ix.UserGroups(2) {
		expected += inst.Wei[g]
	}
	if withCarol != expected {
		t.Fatalf("score with Carol = %v, want %v", withCarol, expected)
	}
	if inst.Wei[gid] != 1 {
		t.Fatalf("LBS weight of the singleton intersection = %v", inst.Wei[gid])
	}
}
