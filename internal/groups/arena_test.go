package groups

import (
	"testing"

	"podium/internal/profile"
)

func buildArenaFixture(t *testing.T) (*profile.Repository, *Index) {
	t.Helper()
	repo := profile.NewRepository()
	for u := 0; u < 20; u++ {
		id := repo.AddUser("u")
		repo.MustSetScore(id, "a", float64(u%10)/10)
		repo.MustSetScore(id, "b", float64((u*7)%10)/10)
		if u%2 == 0 {
			repo.MustSetScore(id, "c", 1)
		}
	}
	repo.Seal()
	return repo, Build(repo, Config{K: 3})
}

// Build's published CSR must alias the member/adjacency arenas — zero copy —
// and the Group/byUser rows must slice into the same storage.
func TestBuildCSRAliasesArenas(t *testing.T) {
	_, ix := buildArenaFixture(t)
	csr := ix.CSR()
	if csr.NumGroups() != ix.NumGroups() {
		t.Fatalf("csr groups %d vs index %d", csr.NumGroups(), ix.NumGroups())
	}
	for _, g := range ix.Groups() {
		row := csr.Members(g.ID)
		if len(row) != len(g.Members) {
			t.Fatalf("group %d row length mismatch", g.ID)
		}
		if len(row) > 0 && &row[0] != &g.Members[0] {
			t.Fatalf("group %d members do not alias the CSR arena", g.ID)
		}
		if cap(g.Members) != len(g.Members) {
			t.Fatalf("group %d member slice not capacity-clamped", g.ID)
		}
	}
	for u := 0; u < csr.NumUsers(); u++ {
		row := csr.UserGroups(profile.UserID(u))
		bu := ix.UserGroups(profile.UserID(u))
		if len(row) != len(bu) {
			t.Fatalf("user %d row length mismatch", u)
		}
		if len(row) > 0 && &row[0] != &bu[0] {
			t.Fatalf("user %d adjacency does not alias the CSR arena", u)
		}
	}
}

// A clean clone must share every top-level structure with its source and
// carry the frozen CSR over, so clone + Freeze of an untouched epoch does no
// O(n) work.
func TestCloneSharesUntilWrite(t *testing.T) {
	repo, ix := buildArenaFixture(t)
	csr := ix.CSR()
	cp := ix.Clone(repo.Clone())
	if cp.CSR() != csr {
		t.Fatal("clean clone rebuilt the CSR instead of sharing it")
	}
	cp.Freeze()
	if cp.CSR() != csr {
		t.Fatal("Freeze on a clean clone rebuilt the CSR")
	}
	if &cp.groups[0] != &ix.groups[0] || len(cp.byUser) > 0 && &cp.byUser[0] != &ix.byUser[0] {
		t.Fatal("clone copied top-level slices eagerly")
	}
}

// Mutating a clone must not disturb the source index or a CSR snapshot taken
// before the mutation, even though rows alias shared arenas.
func TestCloneMutationPreservesSourceAndCSR(t *testing.T) {
	repo, ix := buildArenaFixture(t)
	ix.Freeze()
	oldCSR := ix.CSR()
	u := profile.UserID(0)
	gid := ix.UserGroups(u)[0]
	oldMembers := append([]profile.UserID(nil), oldCSR.Members(gid)...)
	oldRow := append([]GroupID(nil), ix.UserGroups(u)...)

	crepo := repo.Clone()
	cp := ix.Clone(crepo)
	prop := cp.Group(gid).Prop
	// Move user 0 out of its bucket for this property.
	s, _ := crepo.Profile(u).Score(prop)
	ns := 0.0
	if s < 0.5 {
		ns = 1.0
	}
	if err := crepo.SetScoreID(u, prop, ns); err != nil {
		t.Fatal(err)
	}
	if err := cp.UpdateScore(u, prop); err != nil {
		t.Fatal(err)
	}
	if cp.Group(gid).Contains(u) {
		t.Fatal("user did not move buckets")
	}
	// The source and the pre-mutation CSR are untouched.
	if !ix.Group(gid).Contains(u) {
		t.Fatal("mutating the clone removed the user from the source group")
	}
	for i, m := range oldCSR.Members(gid) {
		if m != oldMembers[i] {
			t.Fatal("clone mutation rewrote the frozen CSR arena")
		}
	}
	for i, g := range ix.UserGroups(u) {
		if g != oldRow[i] {
			t.Fatal("clone mutation rewrote the source's user row")
		}
	}
}

// Incremental removal on a Build index (no clone) must also leave a
// previously-taken CSR intact: shrunken rows are copied out, never shifted
// in place over the arena.
func TestRemoveMemberCopiesOutOfArena(t *testing.T) {
	repo, ix := buildArenaFixture(t)
	csr := ix.CSR()
	u := profile.UserID(2)
	gid := ix.UserGroups(u)[0]
	prop := ix.Group(gid).Prop
	before := append([]profile.UserID(nil), csr.Members(gid)...)

	s, _ := repo.Profile(u).Score(prop)
	ns := 0.0
	if s < 0.5 {
		ns = 1.0
	}
	if err := repo.SetScoreID(u, prop, ns); err != nil {
		t.Fatal(err)
	}
	if err := ix.UpdateScore(u, prop); err != nil {
		t.Fatal(err)
	}
	for i, m := range csr.Members(gid) {
		if m != before[i] {
			t.Fatal("removeMember shifted the arena under a frozen CSR")
		}
	}
	// The rebuilt CSR reflects the move.
	if ix.CSR() == csr {
		t.Fatal("mutation did not invalidate the CSR")
	}
	for _, m := range ix.CSR().Members(gid) {
		if m == u {
			t.Fatal("user still a member after the move")
		}
	}
}
