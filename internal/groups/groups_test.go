package groups

import (
	"math"
	"testing"
	"testing/quick"

	"podium/internal/bucketing"
	"podium/internal/profile"
	"podium/internal/stats"
)

// paperIndex builds the group index for the Table 2 running example with the
// paper's hand-picked low/medium/high cuts (Example 3.8).
func paperIndex(t *testing.T) *Index {
	t.Helper()
	repo := profile.PaperExample()
	return Build(repo, Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3})
}

func groupByLabel(t *testing.T, ix *Index, label string) *Group {
	t.Helper()
	for _, g := range ix.Groups() {
		if g.Label(ix.Repo().Catalog()) == label {
			return g
		}
	}
	t.Fatalf("no group labeled %q", label)
	return nil
}

func TestBuildPaperExampleGroups(t *testing.T) {
	ix := paperIndex(t)
	// 16 non-empty groups: 4 livesIn + 1 ageGroup + 2 avgMexican +
	// 3 visitFreqMexican + 3 avgCheapEats + 3 visitFreqCheapEats.
	if got := ix.NumGroups(); got != 16 {
		t.Fatalf("NumGroups = %d, want 16", got)
	}
	// "Mexican food lovers" of Example 3.5: Alice, David, Eve.
	lovers := groupByLabel(t, ix, "high scores for avgRating Mexican")
	want := []profile.UserID{0, 3, 4}
	if len(lovers.Members) != len(want) {
		t.Fatalf("members = %v, want %v", lovers.Members, want)
	}
	for i := range want {
		if lovers.Members[i] != want[i] {
			t.Fatalf("members = %v, want %v", lovers.Members, want)
		}
	}
	// "Tokyo residents": Alice, David.
	tokyo := groupByLabel(t, ix, profile.ExLivesInTokyo)
	if tokyo.Size() != 2 || !tokyo.Contains(0) || !tokyo.Contains(3) {
		t.Fatalf("Tokyo group = %v", tokyo.Members)
	}
	if tokyo.Contains(1) {
		t.Fatal("Bob reported as Tokyo resident")
	}
}

func TestBuildGroupsPerUserCounts(t *testing.T) {
	ix := paperIndex(t)
	// Alice 6, Bob 5, Carol 4, David 3, Eve 5 (from Example 3.8's analysis).
	want := []int{6, 5, 4, 3, 5}
	for u, w := range want {
		if got := len(ix.UserGroups(profile.UserID(u))); got != w {
			t.Errorf("user %d in %d groups, want %d", u, got, w)
		}
	}
}

func TestIntersectionExample(t *testing.T) {
	// Example 3.5: Tokyo residents ∩ Mexican food lovers = {Alice, David}.
	ix := paperIndex(t)
	tokyo := groupByLabel(t, ix, profile.ExLivesInTokyo)
	lovers := groupByLabel(t, ix, "high scores for avgRating Mexican")
	got := Intersection(tokyo, lovers)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("intersection = %v, want [0 3]", got)
	}
	if got := Intersection(); got != nil {
		t.Fatalf("empty intersection = %v", got)
	}
}

func TestUnion(t *testing.T) {
	ix := paperIndex(t)
	tokyo := groupByLabel(t, ix, profile.ExLivesInTokyo)
	lovers := groupByLabel(t, ix, "high scores for avgRating Mexican")
	got := Union(tokyo, lovers)
	if len(got) != 3 { // Alice, David, Eve
		t.Fatalf("union = %v", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("union not sorted: %v", got)
		}
	}
}

func TestLBSWeightsMatchPaperSuperscripts(t *testing.T) {
	ix := paperIndex(t)
	w := ComputeWeights(ix, WeightLBS, 2)
	// The only weight-3 group is avgRating Mexican high (Example 3.8).
	threes := 0
	for id, wi := range w {
		if wi == 3 {
			threes++
			if got := ix.Group(GroupID(id)).Label(ix.Repo().Catalog()); got != "high scores for avgRating Mexican" {
				t.Fatalf("weight-3 group is %q", got)
			}
		}
	}
	if threes != 1 {
		t.Fatalf("%d weight-3 groups, want 1", threes)
	}
}

func TestIdenWeights(t *testing.T) {
	ix := paperIndex(t)
	for _, wi := range ComputeWeights(ix, WeightIden, 2) {
		if wi != 1 {
			t.Fatalf("Iden weight = %v", wi)
		}
	}
}

func TestEBSWeightsEnforceOrder(t *testing.T) {
	ix := paperIndex(t)
	w := ComputeWeights(ix, WeightEBS, 2)
	order := ix.SizeAscOrder()
	// Along the size-ascending order, EBS weights are strictly increasing,
	// and each weight exceeds the sum of all smaller ones (the "enforced"
	// property: larger groups always dominate).
	var sumSmaller float64
	for _, id := range order {
		if w[id] <= sumSmaller {
			t.Fatalf("EBS weight %v of group %d does not dominate smaller sum %v", w[id], id, sumSmaller)
		}
		sumSmaller += w[id]
	}
}

func TestSizeAscOrderSorted(t *testing.T) {
	ix := paperIndex(t)
	order := ix.SizeAscOrder()
	if len(order) != ix.NumGroups() {
		t.Fatalf("order length %d", len(order))
	}
	for i := 1; i < len(order); i++ {
		a, b := ix.Group(order[i-1]), ix.Group(order[i])
		if a.Size() > b.Size() {
			t.Fatal("order not ascending by size")
		}
		if a.Size() == b.Size() && order[i-1] >= order[i] {
			t.Fatal("ties not broken by group ID")
		}
	}
}

func TestCoverageSingle(t *testing.T) {
	ix := paperIndex(t)
	for _, c := range ComputeCoverage(ix, CoverSingle, 8) {
		if c != 1 {
			t.Fatalf("Single coverage = %d", c)
		}
	}
}

func TestCoverageProp(t *testing.T) {
	ix := paperIndex(t)
	cov := ComputeCoverage(ix, CoverProp, 5)
	for id, c := range cov {
		g := ix.Group(GroupID(id))
		want := 5 * g.Size() / 5 // |U| = 5
		if want < 1 {
			want = 1
		}
		if c != want {
			t.Fatalf("group %d (size %d): cov = %d, want %d", id, g.Size(), c, want)
		}
	}
	// A size-3 group with B=5 over 5 users needs 3 representatives.
	lovers := groupByLabel(t, ix, "high scores for avgRating Mexican")
	if cov[lovers.ID] != 3 {
		t.Fatalf("Prop coverage of size-3 group = %d, want 3", cov[lovers.ID])
	}
}

func TestTopKBySize(t *testing.T) {
	ix := paperIndex(t)
	top := ix.TopKBySize(3)
	if len(top) != 3 {
		t.Fatalf("top = %v", top)
	}
	if ix.Group(top[0]).Size() != 3 { // the lovers group is the unique largest
		t.Fatalf("largest group size = %d", ix.Group(top[0]).Size())
	}
	for i := 1; i < len(top); i++ {
		if ix.Group(top[i]).Size() > ix.Group(top[i-1]).Size() {
			t.Fatal("top-k not descending")
		}
	}
	if got := ix.TopKBySize(100); len(got) != ix.NumGroups() {
		t.Fatalf("top-100 length = %d", len(got))
	}
}

func TestMaxFactors(t *testing.T) {
	ix := paperIndex(t)
	if got := ix.MaxGroupSize(); got != 3 {
		t.Fatalf("MaxGroupSize = %d, want 3", got)
	}
	if got := ix.MaxGroupsPerUser(); got != 6 { // Alice
		t.Fatalf("MaxGroupsPerUser = %d, want 6", got)
	}
}

func TestInstanceScorePaperExample(t *testing.T) {
	ix := paperIndex(t)
	inst := NewInstance(ix, WeightLBS, CoverSingle, 2)
	// Example 3.8: {Alice, Eve} scores 17 under LBS+Single.
	if got := inst.Score([]profile.UserID{0, 4}); got != 17 {
		t.Fatalf("score({Alice,Eve}) = %v, want 17", got)
	}
	// {Alice, Bob} scores 11 under Iden (number of represented groups).
	iden := NewInstance(ix, WeightIden, CoverSingle, 2)
	if got := iden.Score([]profile.UserID{0, 1}); got != 11 {
		t.Fatalf("Iden score({Alice,Bob}) = %v, want 11", got)
	}
}

func TestInstanceScoreDeduplicates(t *testing.T) {
	ix := paperIndex(t)
	inst := NewInstance(ix, WeightLBS, CoverSingle, 2)
	a := inst.Score([]profile.UserID{0})
	b := inst.Score([]profile.UserID{0, 0})
	if a != b {
		t.Fatalf("duplicate user changed score: %v vs %v", a, b)
	}
}

func TestInstanceScoreCapsAtCoverage(t *testing.T) {
	ix := paperIndex(t)
	inst := NewInstance(ix, WeightLBS, CoverSingle, 3)
	// Alice and David are both Tokyo residents; with Single coverage the
	// second adds nothing for that group.
	tokyo := groupByLabel(t, ix, profile.ExLivesInTokyo)
	withOne := inst.Score([]profile.UserID{0})
	withBoth := inst.Score([]profile.UserID{0, 3})
	gain := withBoth - withOne
	// David's marginal: his groups minus saturated overlaps with Alice
	// (Tokyo 2 and avgRating-Mexican-high 3): 7 - 5 = 2 (Example 4.3).
	if gain != 2 {
		t.Fatalf("David's marginal after Alice = %v, want 2 (tokyo group weight %v)", gain, inst.Wei[tokyo.ID])
	}
}

func TestMaxScore(t *testing.T) {
	ix := paperIndex(t)
	inst := NewInstance(ix, WeightLBS, CoverSingle, 2)
	// Σ wei(G)·1 over all 16 groups = Σ group sizes.
	var want float64
	for _, g := range ix.Groups() {
		want += float64(g.Size())
	}
	if got := inst.MaxScore(); got != want {
		t.Fatalf("MaxScore = %v, want %v", got, want)
	}
	// No subset can exceed it.
	all := []profile.UserID{0, 1, 2, 3, 4}
	if s := inst.Score(all); s > inst.MaxScore() {
		t.Fatalf("score %v exceeds MaxScore %v", s, inst.MaxScore())
	}
}

func TestEBSInstanceHasRanks(t *testing.T) {
	ix := paperIndex(t)
	inst := NewInstance(ix, WeightEBS, CoverSingle, 2)
	if !inst.EBS || len(inst.EBSRank) != ix.NumGroups() {
		t.Fatal("EBS instance missing rank data")
	}
	seen := make([]bool, ix.NumGroups())
	for _, r := range inst.EBSRank {
		if r < 0 || r >= ix.NumGroups() || seen[r] {
			t.Fatal("EBSRank is not a permutation")
		}
		seen[r] = true
	}
	lbs := NewInstance(ix, WeightLBS, CoverSingle, 2)
	if lbs.EBS || lbs.EBSRank != nil {
		t.Fatal("non-EBS instance carries EBS rank data")
	}
}

func TestBuildMinGroupSize(t *testing.T) {
	repo := profile.PaperExample()
	ix := Build(repo, Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3, MinGroupSize: 2})
	for _, g := range ix.Groups() {
		if g.Size() < 2 {
			t.Fatalf("group of size %d survived MinGroupSize=2", g.Size())
		}
	}
	if ix.NumGroups() >= 16 {
		t.Fatal("MinGroupSize filtered nothing")
	}
}

func TestBuildSkipsEmptyBuckets(t *testing.T) {
	ix := paperIndex(t)
	// avgRating Mexican has an empty medium bucket: only 2 groups for it.
	id, _ := ix.Repo().Catalog().Lookup(profile.ExAvgMexican)
	if got := len(ix.GroupsOfProperty(id)); got != 2 {
		t.Fatalf("avgRating Mexican groups = %d, want 2", got)
	}
	// But β(p) still records all 3 buckets.
	if got := len(ix.Buckets(id)); got != 3 {
		t.Fatalf("β(avgRating Mexican) = %d buckets, want 3", got)
	}
}

func TestAdjacencyConsistency(t *testing.T) {
	// Property: user→groups and group→members are mutual inverses on a
	// randomly generated repository.
	rng := stats.NewRand(99)
	repo := profile.NewRepository()
	for u := 0; u < 60; u++ {
		id := repo.AddUser("u")
		for p := 0; p < 12; p++ {
			if rng.Float64() < 0.5 {
				repo.MustSetScore(id, string(rune('a'+p)), math.Round(rng.Float64()*100)/100)
			}
		}
	}
	ix := Build(repo, Config{K: 3})
	for u := 0; u < repo.NumUsers(); u++ {
		for _, gid := range ix.UserGroups(profile.UserID(u)) {
			if !ix.Group(gid).Contains(profile.UserID(u)) {
				t.Fatalf("user %d listed in group %d but not a member", u, gid)
			}
		}
	}
	for _, g := range ix.Groups() {
		for _, u := range g.Members {
			found := false
			for _, gid := range ix.UserGroups(u) {
				if gid == g.ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("group %d member %d lacks back-link", g.ID, u)
			}
		}
	}
}

// Property: the score function of Definition 3.3 is monotone and submodular
// for arbitrary member sets, any weight scheme and any coverage scheme.
func TestScoreMonotoneSubmodularProperty(t *testing.T) {
	ix := paperIndex(t)
	schemes := []WeightScheme{WeightIden, WeightLBS, WeightEBS}
	covers := []CoverageScheme{CoverSingle, CoverProp}
	f := func(aBits, bBits uint8, extra uint8, wIdx, cIdx uint8) bool {
		inst := NewInstance(ix, schemes[int(wIdx)%3], covers[int(cIdx)%2], 3)
		subset := func(bits uint8) []profile.UserID {
			var us []profile.UserID
			for u := 0; u < 5; u++ {
				if bits&(1<<u) != 0 {
					us = append(us, profile.UserID(u))
				}
			}
			return us
		}
		small := subset(aBits & bBits) // U ⊆ U'
		large := subset(aBits | bBits)
		u := profile.UserID(extra % 5)
		// Monotonicity.
		if inst.Score(small) > inst.Score(large)+1e-9 {
			return false
		}
		// Submodularity: marginal gain of u shrinks as the set grows.
		gainSmall := inst.Score(append(append([]profile.UserID{}, small...), u)) - inst.Score(small)
		gainLarge := inst.Score(append(append([]profile.UserID{}, large...), u)) - inst.Score(large)
		return gainSmall >= gainLarge-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
