// Package groups implements Podium's grouping module: it derives the simple
// user groups G_{p,b} of Definition 3.4 from a profile repository by
// bucketing each property's score distribution, and maintains the
// bidirectional user↔group adjacency that the greedy selection algorithm's
// complexity bound relies on (Section 4, "Data Structures"). It also
// provides the weight functions (Iden/LBS/EBS, Definition 3.6) and coverage
// functions (Single/Prop, Definition 3.7) that complete a diversification
// instance (𝒢, wei, cov).
package groups

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"podium/internal/bucketing"
	"podium/internal/profile"
)

// GroupID identifies a group by its dense index within an Index.
type GroupID int

// Group is a user group. Simple groups (Definition 3.4) are the users whose
// score for Prop falls in Bucket; complex groups (intersections/unions, see
// complex.go) carry their parent IDs and a synthetic negative Prop. Members
// are sorted by UserID.
type Group struct {
	ID         GroupID
	Kind       GroupKind
	Prop       profile.PropertyID
	Bucket     bucketing.Bucket
	BucketIdx  int       // position of Bucket within β(Prop); simple groups only
	NumBuckets int       // |β(Prop)|; simple groups only
	Parents    []GroupID // complex groups only
	Members    []profile.UserID
	label      string // precomputed for complex groups
}

// Size returns |G|.
func (g *Group) Size() int { return len(g.Members) }

// Label renders the human-readable group label used by explanations
// (Section 5): the property label combined with the bucket label. For
// Boolean properties the bucket label is omitted on the positive bucket
// ("lives in Tokyo" rather than "lives in Tokyo: true"), mirroring
// Example 5.2.
func (g *Group) Label(cat *profile.Catalog) string {
	if g.label != "" {
		return g.label
	}
	return g.renderLabel(cat)
}

// renderLabel builds a simple group's label string. Creation sites cache the
// result in g.label — labels are immutable and clones share the Group
// structs, so the render cost is paid once per group, not once per epoch (the
// explanation report renders every group's label on each selection).
func (g *Group) renderLabel(cat *profile.Catalog) string {
	prop := cat.Label(g.Prop)
	bl := bucketing.Label(g.Bucket, g.BucketIdx, g.NumBuckets)
	switch bl {
	case "true":
		return prop
	case "false":
		return "not " + prop
	}
	return fmt.Sprintf("%s %s %s", bl, "scores for", prop)
}

// Contains reports whether user u is a member (binary search).
func (g *Group) Contains(u profile.UserID) bool {
	i := sort.Search(len(g.Members), func(i int) bool { return g.Members[i] >= u })
	return i < len(g.Members) && g.Members[i] == u
}

// Config controls group construction.
type Config struct {
	// Method is the 1-d splitting strategy; nil selects bucketing.KMeans.
	Method bucketing.Method
	// K is the target bucket count per property; 0 selects 3 (the paper's
	// low/medium/high running example).
	K int
	// MinGroupSize drops groups with fewer members; 0 selects 1 (keep every
	// non-empty group).
	MinGroupSize int
	// Parallelism sets the worker count for per-property bucketing, the
	// dominant cost of the offline grouping module. 0 or 1 builds
	// sequentially; the output is identical either way (properties are
	// independent and assembly order is fixed).
	Parallelism int
	// FixedBuckets pins β(p) for the listed properties instead of re-deriving
	// cuts from the score distribution. Two callers rely on this: a mutable
	// server restart rebuilds its index from the boundaries the live index
	// actually used (persisted alongside the repository log), and the shard
	// partitioner buckets every shard with the global partition so shard
	// groups mirror global groups. Properties absent from the map fall back
	// to Method as usual.
	FixedBuckets map[profile.PropertyID][]bucketing.Bucket
}

// bucketsFor resolves β(p): the pinned partition when one is fixed for p,
// otherwise a fresh split of the property's score distribution.
func (c Config) bucketsFor(p profile.PropertyID, scores []float64) []bucketing.Bucket {
	if bs, ok := c.FixedBuckets[p]; ok {
		return bs
	}
	return bucketing.Split(scores, c.K, c.Method)
}

func (c Config) withDefaults() Config {
	if c.Method == nil {
		c.Method = bucketing.KMeans{}
	}
	if c.K <= 0 {
		c.K = 3
	}
	if c.MinGroupSize <= 0 {
		c.MinGroupSize = 1
	}
	return c
}

// Index is the computed set of groups 𝒢 for a repository, with adjacency in
// both directions: group→members (inside each Group) and user→groups.
type Index struct {
	repo    *profile.Repository
	groups  []*Group
	byUser  [][]GroupID
	byProp  map[profile.PropertyID][]GroupID
	buckets map[profile.PropertyID][]bucketing.Bucket
	// byBucket maps (property, bucket index) → simple group, so incremental
	// maintenance locates a score's destination group in O(1) instead of
	// scanning byProp (which would make batched indexing quadratic in the
	// bucket count). Complex and manual groups are not keyed here.
	byBucket map[bucketKey]GroupID

	// csr caches the frozen adjacency view the selection core iterates;
	// mutators clear it and the next CSR() call rebuilds (csr.go).
	csr atomic.Pointer[CSR]
	// Cached complexity-bound statistics (Prop. 4.4), computed at Build;
	// statsStale flags them for recomputation after incremental mutations.
	maxGroupSize     int
	maxGroupsPerUser int
	statsStale       uint32

	// cow is non-nil on an index produced by Clone: the Group structs, the
	// per-user and per-property group lists and the bucket maps are still
	// shared with the source epoch, and each mutator detaches the pieces it
	// touches first (clone.go). A Build index owns everything (cow == nil).
	cow *cowState

	// rec accumulates the current mutation batch's change records (delta.go);
	// deltaSeq is the sequence-numbered watermark of the last non-empty batch
	// taken, carried forward across Clone so the watermark is monotone over
	// the whole epoch chain.
	rec      *deltaRecorder
	deltaSeq uint64
}

// bucketKey identifies a simple group by its (property, bucket) coordinates.
type bucketKey struct {
	prop profile.PropertyID
	bi   int
}

// Build bucketizes every property and materializes all non-empty groups of
// at least cfg.MinGroupSize members. It is the "offline process" of the
// grouping module in the system architecture (Section 7).
//
// Storage is arena-backed: all group member lists live back-to-back in one
// contiguous arena, and all user→group rows in another, with Group.Members
// and byUser[u] slicing into them (capacity-clamped, so incremental appends
// copy out instead of scribbling over a neighbor's row). The arenas double
// as the frozen CSR view — Build publishes the CSR by aliasing them, zero
// copies. The construction order is identical to the historical per-slice
// build — properties ascending, buckets ascending within a property, members
// ascending by user — so group IDs, labels and every downstream selection
// remain bit-identical.
func Build(repo *profile.Repository, cfg Config) *Index {
	cfg = cfg.withDefaults()
	nU := repo.NumUsers()
	nP := repo.NumProperties()
	ix := &Index{
		repo:     repo,
		byProp:   make(map[profile.PropertyID][]GroupID),
		buckets:  make(map[profile.PropertyID][]bucketing.Bucket),
		byBucket: make(map[bucketKey]GroupID),
	}
	links := binLinks(repo)
	parts := partitionAll(links, cfg)

	// Size the members arena: count surviving groups and their members.
	nGroups, arenaLen := 0, 0
	for pid := 0; pid < nP; pid++ {
		if parts[pid] == nil {
			continue
		}
		for _, c := range parts[pid].counts {
			if c >= cfg.MinGroupSize {
				nGroups++
				arenaLen += c
			}
		}
	}
	memberArena := make([]profile.UserID, arenaLen)
	groupOff := make([]int, nGroups+1)
	ix.groups = make([]*Group, 0, nGroups)
	userCnt := make([]int, nU)

	arenaCur := 0
	for pid := 0; pid < nP; pid++ {
		part := parts[pid]
		if part == nil {
			continue // no user holds the property
		}
		p := profile.PropertyID(pid)
		bs := part.buckets
		ix.buckets[p] = bs
		// Claim arena segments and group IDs in bucket order; wcur[bi] is the
		// write cursor into bucket bi's segment, or -1 for dropped buckets.
		wcur := make([]int, len(bs))
		starts := make([]int, len(bs))
		gids := make([]GroupID, len(bs))
		for bi, c := range part.counts {
			if c < cfg.MinGroupSize {
				wcur[bi] = -1
				continue
			}
			g := &Group{
				ID:         GroupID(len(ix.groups)),
				Prop:       p,
				Bucket:     bs[bi],
				BucketIdx:  bi,
				NumBuckets: len(bs),
			}
			g.label = g.renderLabel(repo.Catalog())
			ix.groups = append(ix.groups, g)
			ix.byProp[p] = append(ix.byProp[p], g.ID)
			ix.byBucket[bucketKey{p, bi}] = g.ID
			groupOff[g.ID] = arenaCur
			starts[bi], wcur[bi], gids[bi] = arenaCur, arenaCur, g.ID
			arenaCur += c
		}
		// Fill the segments; the link segment is in ascending user order, so
		// every group's members come out sorted.
		seg := links.users[links.off[pid]:links.off[pid+1]]
		for i, u := range seg {
			bi := part.asg[i]
			if bi < 0 || wcur[bi] < 0 {
				continue
			}
			memberArena[wcur[bi]] = u
			wcur[bi]++
			userCnt[u]++
		}
		for bi := range bs {
			if wcur[bi] < 0 {
				continue
			}
			g := ix.groups[gids[bi]]
			g.Members = memberArena[starts[bi]:wcur[bi]:wcur[bi]]
		}
	}
	groupOff[nGroups] = arenaLen

	// Invert into the user→group arena; iterating groups in ID order leaves
	// each user's row ascending by GroupID.
	userOff := make([]int, nU+1)
	for u, c := range userCnt {
		userOff[u+1] = userOff[u] + c
	}
	userAdj := make([]GroupID, userOff[nU])
	ucur := make([]int, nU)
	copy(ucur, userOff[:nU])
	for _, g := range ix.groups {
		for _, u := range g.Members {
			userAdj[ucur[u]] = g.ID
			ucur[u]++
		}
	}
	ix.byUser = make([][]GroupID, nU)
	for u := 0; u < nU; u++ {
		a, b := userOff[u], userOff[u+1]
		ix.byUser[u] = userAdj[a:b:b]
	}

	ix.refreshStats()
	// The CSR view is the arenas themselves — nothing to copy.
	ix.csr.Store(&CSR{UserOff: userOff, UserAdj: userAdj, GroupOff: groupOff, GroupAdj: memberArena})
	return ix
}

// NumGroups returns |𝒢|.
func (ix *Index) NumGroups() int { return len(ix.groups) }

// Group returns the group with the given ID; it panics on an unknown ID.
func (ix *Index) Group(id GroupID) *Group {
	if id < 0 || int(id) >= len(ix.groups) {
		panic(fmt.Sprintf("groups: unknown group %d", id))
	}
	return ix.groups[id]
}

// Groups returns the full group slice. Callers must not modify it.
func (ix *Index) Groups() []*Group { return ix.groups }

// UserGroups returns the IDs of the groups containing u, in ascending order.
// Callers must not modify the returned slice.
func (ix *Index) UserGroups(u profile.UserID) []GroupID {
	if int(u) < 0 || int(u) >= len(ix.byUser) {
		panic(fmt.Sprintf("groups: unknown user %d", u))
	}
	return ix.byUser[u]
}

// GroupsOfProperty returns the group IDs derived from property p, in bucket
// order. Empty buckets have no group.
func (ix *Index) GroupsOfProperty(p profile.PropertyID) []GroupID {
	return ix.byProp[p]
}

// Buckets returns β(p) — the full partition computed for property p,
// including buckets whose group was empty or dropped.
func (ix *Index) Buckets(p profile.PropertyID) []bucketing.Bucket {
	return ix.buckets[p]
}

// NumBucketedProperties returns how many properties have a partition β(p).
// The count only ever grows (BucketProperty rejects re-bucketing), so the
// mutable server uses it to detect batches that derived new boundaries.
func (ix *Index) NumBucketedProperties() int { return len(ix.buckets) }

// BucketBoundaries returns a copy of every property's partition β(p) — the
// exact boundaries this index assigns scores with, whether they came from
// Build's splitting method, Config.FixedBuckets, or incremental
// BucketProperty calls. Persisting them and rebuilding with FixedBuckets
// reproduces this index's group memberships from the same repository state.
func (ix *Index) BucketBoundaries() map[profile.PropertyID][]bucketing.Bucket {
	out := make(map[profile.PropertyID][]bucketing.Bucket, len(ix.buckets))
	for p, bs := range ix.buckets {
		out[p] = append([]bucketing.Bucket(nil), bs...)
	}
	return out
}

// Repo returns the underlying repository.
func (ix *Index) Repo() *profile.Repository { return ix.repo }

// MaxGroupSize returns max_G |G| — a factor in Prop. 4.4's complexity bound.
// The value is cached at Build time (the complexity-bound reporting path may
// call it per request) and recomputed only after an incremental mutation.
func (ix *Index) MaxGroupSize() int {
	if atomic.LoadUint32(&ix.statsStale) != 0 {
		ix.refreshStats()
	}
	return ix.maxGroupSize
}

// MaxGroupsPerUser returns max_u |{G : u ∈ G}| — the other factor in the
// complexity bound. Cached like MaxGroupSize.
func (ix *Index) MaxGroupsPerUser() int {
	if atomic.LoadUint32(&ix.statsStale) != 0 {
		ix.refreshStats()
	}
	return ix.maxGroupsPerUser
}

// TopKBySize returns the IDs of the k largest groups, largest first, ties
// broken by lower group ID. Used by the top-k coverage metric (Section 8.2).
func (ix *Index) TopKBySize(k int) []GroupID {
	ids := make([]GroupID, len(ix.groups))
	for i := range ids {
		ids[i] = GroupID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		ga, gb := ix.groups[ids[a]], ix.groups[ids[b]]
		if ga.Size() != gb.Size() {
			return ga.Size() > gb.Size()
		}
		return ids[a] < ids[b]
	})
	if k > len(ids) {
		k = len(ids)
	}
	return ids[:k]
}

// SizeAscOrder returns ord(·) of Definition 3.6: group IDs ordered from
// smallest to largest (ties broken by group ID, a concrete instance of the
// paper's "ties are broken arbitrarily"). The returned slice maps rank →
// GroupID; NewInstance inverts it into Instance.EBSRank.
func (ix *Index) SizeAscOrder() []GroupID {
	ids := make([]GroupID, len(ix.groups))
	for i := range ids {
		ids[i] = GroupID(i)
	}
	sort.Slice(ids, func(a, b int) bool {
		ga, gb := ix.groups[ids[a]], ix.groups[ids[b]]
		if ga.Size() != gb.Size() {
			return ga.Size() < gb.Size()
		}
		return ids[a] < ids[b]
	})
	return ids
}

// Intersection returns the sorted common members of the given groups. Used
// to evaluate complex groups such as "Tokyo residents who are also Mexican
// food lovers" (Example 3.5) and the intersected-property coverage metric.
func Intersection(gs ...*Group) []profile.UserID {
	if len(gs) == 0 {
		return nil
	}
	out := append([]profile.UserID(nil), gs[0].Members...)
	for _, g := range gs[1:] {
		out = intersectSorted(out, g.Members)
		if len(out) == 0 {
			return nil
		}
	}
	return out
}

// Union returns the sorted union of the given groups' members.
func Union(gs ...*Group) []profile.UserID {
	seen := map[profile.UserID]bool{}
	for _, g := range gs {
		for _, u := range g.Members {
			seen[u] = true
		}
	}
	out := make([]profile.UserID, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func intersectSorted(a, b []profile.UserID) []profile.UserID {
	var out []profile.UserID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// WeightScheme selects one of the paper's weight functions (Definition 3.6).
type WeightScheme int

const (
	// WeightIden assigns every group weight 1 — the most "diverse" choice.
	WeightIden WeightScheme = iota
	// WeightLBS makes group importance linear in group size.
	WeightLBS
	// WeightEBS enforces importance by size: wei(G) = (B+1)^ord(G), so
	// covering a larger group always dominates covering any set of smaller
	// ones.
	WeightEBS
)

func (w WeightScheme) String() string {
	switch w {
	case WeightIden:
		return "Iden"
	case WeightLBS:
		return "LBS"
	case WeightEBS:
		return "EBS"
	}
	return fmt.Sprintf("WeightScheme(%d)", int(w))
}

// ComputeWeights evaluates the scheme for every group. For EBS the float64
// value overflows to +Inf beyond ~300 groups (with B=8); the selection core
// detects EBS and switches to an exact rank-vector comparison, so these
// float values are only used for reporting and for small instances.
func ComputeWeights(ix *Index, scheme WeightScheme, budget int) []float64 {
	w := make([]float64, ix.NumGroups())
	switch scheme {
	case WeightIden:
		for i := range w {
			w[i] = 1
		}
	case WeightLBS:
		for i, g := range ix.groups {
			w[i] = float64(g.Size())
		}
	case WeightEBS:
		base := float64(budget + 1)
		for rank, id := range ix.SizeAscOrder() {
			w[id] = math.Pow(base, float64(rank))
		}
	default:
		panic(fmt.Sprintf("groups: unknown weight scheme %d", scheme))
	}
	return w
}

// CoverageScheme selects one of the paper's coverage functions
// (Definition 3.7).
type CoverageScheme int

const (
	// CoverSingle requires one representative per group.
	CoverSingle CoverageScheme = iota
	// CoverProp requires representation proportional to group size:
	// max(⌊B·|G|/|𝒰|⌋, 1).
	CoverProp
)

func (c CoverageScheme) String() string {
	switch c {
	case CoverSingle:
		return "Single"
	case CoverProp:
		return "Prop"
	}
	return fmt.Sprintf("CoverageScheme(%d)", int(c))
}

// ComputeCoverage evaluates the scheme for every group.
func ComputeCoverage(ix *Index, scheme CoverageScheme, budget int) []int {
	cov := make([]int, ix.NumGroups())
	switch scheme {
	case CoverSingle:
		for i := range cov {
			cov[i] = 1
		}
	case CoverProp:
		n := ix.repo.NumUsers()
		for i, g := range ix.groups {
			c := budget * g.Size() / n
			if c < 1 {
				c = 1
			}
			cov[i] = c
		}
	default:
		panic(fmt.Sprintf("groups: unknown coverage scheme %d", scheme))
	}
	return cov
}

// Instance is a complete diversification instance (𝒢, wei, cov) of
// Definition 3.3, ready for the selection core. Wei and Cov are indexed by
// GroupID.
type Instance struct {
	Index *Index
	Wei   []float64
	Cov   []int
	// EBS marks instances whose weights are EBS, enabling the core's exact
	// rank-comparison path. EBSRank maps GroupID → ord(G) when set.
	EBS     bool
	EBSRank []int

	// baseMarg memoizes BaseMarginals. Wei and Cov are set at construction
	// and never mutated in place (derived instances — customization tiers,
	// residual coverage, weight noise — build fresh Instance values), so the
	// cache cannot go stale.
	baseMargOnce sync.Once
	baseMarg     []float64
}

// NewInstance assembles an instance from the standard scheme choices.
func NewInstance(ix *Index, ws WeightScheme, cs CoverageScheme, budget int) *Instance {
	inst := &Instance{
		Index: ix,
		Wei:   ComputeWeights(ix, ws, budget),
		Cov:   ComputeCoverage(ix, cs, budget),
	}
	if ws == WeightEBS {
		inst.EBS = true
		inst.EBSRank = make([]int, ix.NumGroups())
		for rank, id := range ix.SizeAscOrder() {
			inst.EBSRank[id] = rank
		}
	}
	return inst
}

// Score computes score_𝒢(U) = Σ_G wei(G)·min(|U∩G|, cov(G)) (Definition
// 3.3). U may contain duplicates; they are counted once.
func (inst *Instance) Score(users []profile.UserID) float64 {
	hit := make(map[GroupID]int)
	seen := make(map[profile.UserID]bool, len(users))
	for _, u := range users {
		if seen[u] {
			continue
		}
		seen[u] = true
		for _, g := range inst.Index.UserGroups(u) {
			hit[g]++
		}
	}
	var total float64
	for g, n := range hit {
		if n > inst.Cov[g] {
			n = inst.Cov[g]
		}
		total += inst.Wei[g] * float64(n)
	}
	return total
}

// BaseMarginals returns marg_{u,∅} for every user — Σ_{G∋u, cov(G)>0}
// wei(G), the empty-selection marginal the greedy engine starts from. It is
// an O(links) pass over the CSR member rows, computed once per instance and
// shared by every later selection: the server memoizes instances per
// snapshot epoch, so steady-state select requests skip this pass entirely.
// The sum runs group-major in ascending GroupID order; per-user that is
// ascending group order, bit-identical to summing each user's CSR row, so
// engines seeded from this cache produce exactly the floats they would have
// computed themselves. Safe for concurrent use; callers must not mutate the
// returned slice (the engine copies it before picking).
func (inst *Instance) BaseMarginals() []float64 {
	inst.baseMargOnce.Do(func() {
		ix := inst.Index
		csr := ix.CSR()
		marg := make([]float64, ix.Repo().NumUsers())
		for g, lim := 0, ix.NumGroups(); g < lim; g++ {
			if inst.Cov[g] <= 0 {
				continue
			}
			w := inst.Wei[g]
			for _, m := range csr.Members(GroupID(g)) {
				marg[m] += w
			}
		}
		inst.baseMarg = marg
	})
	return inst.baseMarg
}

// MaxScore returns Σ_G wei(G)·cov(G) — the ceiling of any score, used by
// customization to build the tiered objective (Section 6) and by the
// branch-and-bound optimal baseline.
func (inst *Instance) MaxScore() float64 {
	var total float64
	for g := range inst.Wei {
		total += inst.Wei[g] * float64(inst.Cov[g])
	}
	return total
}
