package groups

import (
	"testing"

	"podium/internal/profile"
)

// deltaTestIndex builds a small repository and index with a handful of users
// and two bucketed properties, returning both plus a helper to mutate scores
// through the incremental path.
func deltaTestIndex(t *testing.T) (*profile.Repository, *Index) {
	t.Helper()
	repo := profile.NewRepository()
	for i := 0; i < 12; i++ {
		u := repo.AddUser("u")
		if err := repo.SetScore(u, "alpha", float64(i)/12); err != nil {
			t.Fatal(err)
		}
		if err := repo.SetScore(u, "beta", float64(11-i)/12); err != nil {
			t.Fatal(err)
		}
	}
	ix := Build(repo, Config{K: 3})
	return repo, ix
}

func setAndUpdate(t *testing.T, repo *profile.Repository, ix *Index, u profile.UserID, label string, score float64) {
	t.Helper()
	if err := repo.SetScore(u, label, score); err != nil {
		t.Fatal(err)
	}
	pid, ok := repo.Catalog().Lookup(label)
	if !ok {
		t.Fatalf("label %q not interned", label)
	}
	if err := ix.UpdateScore(u, pid); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaSequenceNumbering: each non-empty batch advances the watermark by
// one; empty batches leave it untouched and report Empty.
func TestDeltaSequenceNumbering(t *testing.T) {
	repo, ix := deltaTestIndex(t)
	if got := ix.ChangeSeq(); got != 0 {
		t.Fatalf("fresh index ChangeSeq = %d, want 0", got)
	}
	if d := ix.TakeDelta(); !d.Empty() || d.Seq != 0 {
		t.Fatalf("empty batch delta = %+v, want empty at seq 0", d)
	}

	for want := uint64(1); want <= 3; want++ {
		setAndUpdate(t, repo, ix, profile.UserID(int(want)-1), "alpha", 0.95)
		d := ix.TakeDelta()
		if d.Empty() {
			t.Fatalf("batch %d: bucket-moving update produced empty delta", want)
		}
		if d.Seq != want || ix.ChangeSeq() != want {
			t.Fatalf("batch %d: seq = %d (index %d), want %d", want, d.Seq, ix.ChangeSeq(), want)
		}
		found := false
		for _, u := range d.Users {
			if u == profile.UserID(int(want)-1) {
				found = true
			}
		}
		if !found {
			t.Fatalf("batch %d: moved user missing from delta users %v", want, d.Users)
		}
		if len(d.Groups) == 0 {
			t.Fatalf("batch %d: no groups recorded for a membership move", want)
		}
	}

	// A same-bucket rewrite is selection-irrelevant: watermark must not move.
	u := profile.UserID(5)
	score, _ := repo.Profile(u).Score(mustPid(t, repo, "beta"))
	setAndUpdate(t, repo, ix, u, "beta", score)
	if d := ix.TakeDelta(); !d.Empty() || d.Seq != 3 {
		t.Fatalf("same-bucket update delta = %+v, want empty at seq 3", d)
	}
}

func mustPid(t *testing.T, repo *profile.Repository, label string) profile.PropertyID {
	t.Helper()
	pid, ok := repo.Catalog().Lookup(label)
	if !ok {
		t.Fatalf("label %q not interned", label)
	}
	return pid
}

// TestDeltaSurvivesCloneAndCompact: pending records stay with the index that
// recorded them (a clone starts a fresh batch), the watermark carries across
// Clone so sequence numbers stay monotone over the epoch chain, and recording
// keeps working after the backing repository is compacted.
func TestDeltaSurvivesCloneAndCompact(t *testing.T) {
	repo, ix := deltaTestIndex(t)

	// Record on the source, then clone before taking the batch.
	setAndUpdate(t, repo, ix, 0, "alpha", 0.99)
	repo2 := repo.Clone()
	ix2 := ix.Clone(repo2)

	// The clone must not see the source's pending records...
	if d := ix2.TakeDelta(); !d.Empty() {
		t.Fatalf("clone inherited pending records: %+v", d)
	}
	// ...and the source keeps them through the clone.
	d := ix.TakeDelta()
	if d.Empty() || d.Seq != 1 {
		t.Fatalf("source lost its pending records across Clone: %+v", d)
	}

	// Mutate the clone: its sequence continues the chain it was cloned from.
	// (It was cloned at watermark 0 — before the source took batch 1 — so its
	// first non-empty batch is seq 1 on its own chain.)
	setAndUpdate(t, repo2, ix2, 1, "alpha", 0.99)
	d2 := ix2.TakeDelta()
	if d2.Empty() || d2.Seq != 1 {
		t.Fatalf("clone delta = %+v, want seq 1", d2)
	}

	// Chain continuation: clone after taking, mutate the new clone.
	repo3 := repo2.Clone()
	ix3 := ix2.Clone(repo3)
	if got := ix3.ChangeSeq(); got != 1 {
		t.Fatalf("clone ChangeSeq = %d, want 1 carried from source", got)
	}

	// Compact folds the repository's overlay into its columns; the index and
	// its recorder must be unaffected, and incremental updates must still
	// record correctly against the compacted repository.
	repo3.Compact()
	setAndUpdate(t, repo3, ix3, 2, "alpha", 0.99)
	d3 := ix3.TakeDelta()
	if d3.Empty() || d3.Seq != 2 {
		t.Fatalf("post-Compact delta = %+v, want seq 2", d3)
	}
	found := false
	for _, du := range d3.Users {
		if du == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("post-Compact delta users %v missing user 2", d3.Users)
	}

	// Users/Groups come out sorted and deduplicated.
	setAndUpdate(t, repo3, ix3, 7, "alpha", 0.99)
	setAndUpdate(t, repo3, ix3, 3, "alpha", 0.99)
	setAndUpdate(t, repo3, ix3, 7, "beta", 0.01)
	d4 := ix3.TakeDelta()
	for i := 1; i < len(d4.Users); i++ {
		if d4.Users[i] <= d4.Users[i-1] {
			t.Fatalf("delta users not sorted/deduped: %v", d4.Users)
		}
	}
	for i := 1; i < len(d4.Groups); i++ {
		if d4.Groups[i] <= d4.Groups[i-1] {
			t.Fatalf("delta groups not sorted/deduped: %v", d4.Groups)
		}
	}
}
