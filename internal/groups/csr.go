package groups

import (
	"sync/atomic"

	"podium/internal/profile"
)

// CSR is a frozen compressed-sparse-row view of the Index adjacency, built
// once after Build (and rebuilt lazily after incremental mutations). It packs
// both directions of the user↔group graph into four contiguous arrays:
//
//	user u's groups  = UserAdj[UserOff[u]:UserOff[u+1]]   (ascending GroupID)
//	group g's members = GroupAdj[GroupOff[g]:GroupOff[g+1]] (ascending UserID)
//
// The selection core's hot loops — marginal initialization, the per-pick
// argmax, saturation retraction — iterate these rows instead of the mutable
// [][]GroupID / *Group.Members representation, eliminating one pointer chase
// and one slice-header load per row and keeping every traversal a linear
// scan over one allocation. Rows preserve exactly the order of the mutable
// adjacency, so algorithms that accumulate floats row-wise produce
// bit-identical sums on either view.
type CSR struct {
	UserOff  []int
	UserAdj  []GroupID
	GroupOff []int
	GroupAdj []profile.UserID
}

// UserGroups returns user u's row: the IDs of the groups containing u, in
// ascending order. The returned slice aliases the CSR arrays; do not modify.
func (c *CSR) UserGroups(u profile.UserID) []GroupID {
	return c.UserAdj[c.UserOff[u]:c.UserOff[u+1]]
}

// UserDegree returns |{G : u ∈ G}| without touching the adjacency array.
func (c *CSR) UserDegree(u profile.UserID) int {
	return c.UserOff[u+1] - c.UserOff[u]
}

// Members returns group g's row: its members in ascending order. The
// returned slice aliases the CSR arrays; do not modify.
func (c *CSR) Members(g GroupID) []profile.UserID {
	return c.GroupAdj[c.GroupOff[g]:c.GroupOff[g+1]]
}

// NumUsers returns the number of user rows.
func (c *CSR) NumUsers() int { return len(c.UserOff) - 1 }

// NumGroups returns the number of group rows.
func (c *CSR) NumGroups() int { return len(c.GroupOff) - 1 }

// NumLinks returns the number of user↔group links |{(u,G) : u ∈ G}|.
func (c *CSR) NumLinks() int { return len(c.UserAdj) }

// CSR returns the frozen adjacency view, building it on first use after a
// mutation. The view is immutable and safe for concurrent readers; like the
// rest of the Index, concurrent mutation requires external serialization
// (as MutableServer provides).
func (ix *Index) CSR() *CSR {
	if c := ix.csr.Load(); c != nil {
		return c
	}
	c := ix.buildCSR()
	ix.csr.Store(c)
	return c
}

func (ix *Index) buildCSR() *CSR {
	nUsers := len(ix.byUser)
	nGroups := len(ix.groups)
	c := &CSR{
		UserOff:  make([]int, nUsers+1),
		GroupOff: make([]int, nGroups+1),
	}
	links := 0
	for u, gs := range ix.byUser {
		c.UserOff[u] = links
		links += len(gs)
	}
	c.UserOff[nUsers] = links
	c.UserAdj = make([]GroupID, 0, links)
	for _, gs := range ix.byUser {
		c.UserAdj = append(c.UserAdj, gs...)
	}
	links = 0
	for g, grp := range ix.groups {
		c.GroupOff[g] = links
		links += len(grp.Members)
	}
	c.GroupOff[nGroups] = links
	c.GroupAdj = make([]profile.UserID, 0, links)
	for _, grp := range ix.groups {
		c.GroupAdj = append(c.GroupAdj, grp.Members...)
	}
	return c
}

// Freeze eagerly rebuilds every stale derived view — the CSR and the cached
// adjacency statistics — so that an index published to concurrent lock-free
// readers never triggers a lazy rebuild: after Freeze, CSR(), MaxGroupSize()
// and MaxGroupsPerUser() are pure reads. The server's writer calls it once
// per mutation batch, right before publishing the next snapshot, making the
// rebuild cost per-batch rather than per-member-move. Views that are still
// fresh — a Build index, or a clone that carried its source's CSR through an
// untouched batch — are kept as-is, so freezing a clean index is O(1).
func (ix *Index) Freeze() {
	if atomic.LoadUint32(&ix.statsStale) != 0 {
		ix.refreshStats()
	}
	if ix.csr.Load() == nil {
		ix.csr.Store(ix.buildCSR())
	}
}

// invalidateDerived drops the cached CSR view and marks the cached adjacency
// statistics stale. Every Index mutator calls it; the next CSR() or
// MaxGroupSize()/MaxGroupsPerUser() call recomputes from the current
// adjacency.
func (ix *Index) invalidateDerived() {
	ix.csr.Store(nil)
	atomic.StoreUint32(&ix.statsStale, 1)
}

// refreshStats recomputes the cached complexity-bound statistics. Build
// computes them once; mutators mark them stale rather than rescanning all
// groups on every MaxGroupSize/MaxGroupsPerUser call.
func (ix *Index) refreshStats() {
	maxG, maxU := 0, 0
	for _, g := range ix.groups {
		if g.Size() > maxG {
			maxG = g.Size()
		}
	}
	for _, gs := range ix.byUser {
		if len(gs) > maxU {
			maxU = len(gs)
		}
	}
	ix.maxGroupSize = maxG
	ix.maxGroupsPerUser = maxU
	atomic.StoreUint32(&ix.statsStale, 0)
}
