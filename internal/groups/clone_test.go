package groups

import (
	"reflect"
	"testing"

	"podium/internal/bucketing"
	"podium/internal/profile"
)

// cloneOp is one mutation of the kind the server's apply loop performs.
type cloneOp struct {
	addUser string             // when non-empty: add a user with props
	props   map[string]float64 // initial profile for addUser (applied in key-sorted order by the caller)
	user    profile.UserID     // otherwise: set user's label to score
	label   string
	score   float64
}

// applyOp mutates repo+ix through the incremental path, mirroring the
// server's applyOne: new users are indexed, first-sight properties bucketed,
// score changes moved between bucket groups.
func applyOp(t *testing.T, repo *profile.Repository, ix *Index, cfg Config, op cloneOp) {
	t.Helper()
	if op.addUser != "" {
		u := repo.AddUser(op.addUser)
		for _, label := range sortedKeys(op.props) {
			repo.MustSetScore(u, label, op.props[label])
		}
		unbucketed, err := ix.IndexUser(u)
		if err != nil {
			t.Fatal(err)
		}
		for _, pid := range unbucketed {
			if err := ix.BucketProperty(pid, cfg); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	_, known := repo.Catalog().Lookup(op.label)
	repo.MustSetScore(op.user, op.label, op.score)
	pid, _ := repo.Catalog().Lookup(op.label)
	if !known {
		if err := ix.BucketProperty(pid, cfg); err != nil {
			t.Fatal(err)
		}
	} else if err := ix.UpdateScore(op.user, pid); err != nil {
		t.Fatal(err)
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// fingerprint captures everything observable about an index: group metadata
// and membership (via the CSR, which also covers byUser), per-property group
// lists, and bucket partitions.
func fingerprint(t *testing.T, ix *Index) map[string]interface{} {
	t.Helper()
	cat := ix.Repo().Catalog()
	type groupFP struct {
		Label      string
		BucketIdx  int
		NumBuckets int
		Members    []profile.UserID
	}
	gs := make([]groupFP, ix.NumGroups())
	for i, g := range ix.Groups() {
		gs[i] = groupFP{
			Label:      g.Label(cat),
			BucketIdx:  g.BucketIdx,
			NumBuckets: g.NumBuckets,
			Members:    append([]profile.UserID(nil), g.Members...),
		}
	}
	byProp := map[string][]GroupID{}
	for _, label := range cat.Labels() {
		pid, _ := cat.Lookup(label)
		byProp[label] = append([]GroupID(nil), ix.GroupsOfProperty(pid)...)
	}
	buckets := map[string][]string{}
	for _, label := range cat.Labels() {
		pid, _ := cat.Lookup(label)
		for _, b := range ix.Buckets(pid) {
			buckets[label] = append(buckets[label], b.String())
		}
	}
	return map[string]interface{}{
		"groups": gs, "byProp": byProp, "buckets": buckets, "csr": ix.CSR(),
	}
}

func cloneOps() []cloneOp {
	return []cloneOp{
		{addUser: "Frank", props: map[string]float64{"livesIn Tokyo": 1, "avgRating Mexican": 0.9}},
		{addUser: "Grace", props: map[string]float64{"avgRating Mexican": 0.5, "plays chess": 0.8}},
		{user: 0, label: "avgRating Mexican", score: 0.1},
		{user: 6, label: "speaks French", score: 0.7},
		{addUser: "Heidi", props: map[string]float64{"speaks French": 0.2, "livesIn Tokyo": 1}},
		{user: 7, label: "plays chess", score: 0.3},
	}
}

// TestCloneBatchMatchesOneAtATime is the equivalence behind the server's
// batching: applying a mutation sequence to ONE clone (a single batch) must
// leave an index identical to publishing a fresh clone per mutation (one
// batch per mutation — the pre-batching behavior).
func TestCloneBatchMatchesOneAtATime(t *testing.T) {
	cfg := Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3}
	ops := cloneOps()

	// One batch: a single clone absorbs every op.
	baseA := profile.PaperExample()
	ixA := Build(baseA, cfg)
	repoA := baseA.Clone()
	batched := ixA.Clone(repoA)
	for _, op := range ops {
		applyOp(t, repoA, batched, cfg, op)
	}
	batched.Freeze()

	// One clone per op: each mutation sees a freshly published epoch.
	repoB := profile.PaperExample()
	serial := Build(repoB, cfg)
	for _, op := range ops {
		repoB = repoB.Clone()
		serial = serial.Clone(repoB)
		applyOp(t, repoB, serial, cfg, op)
		serial.Freeze()
	}

	fpA, fpB := fingerprint(t, batched), fingerprint(t, serial)
	if !reflect.DeepEqual(fpA, fpB) {
		t.Fatalf("batched and one-at-a-time indexes diverge:\nbatched: %+v\nserial:  %+v", fpA, fpB)
	}
}

// TestCloneIsolation checks the copy half of copy-on-write: mutating a clone
// must leave the source index (and the repository it serves) untouched.
func TestCloneIsolation(t *testing.T) {
	cfg := Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3}
	base := profile.PaperExample()
	ix := Build(base, cfg)
	ix.Freeze()
	before := fingerprint(t, ix)
	usersBefore := base.NumUsers()

	repo2 := base.Clone()
	cp := ix.Clone(repo2)
	for _, op := range cloneOps() {
		applyOp(t, repo2, cp, cfg, op)
	}
	cp.Freeze()

	if got := fingerprint(t, ix); !reflect.DeepEqual(before, got) {
		t.Fatalf("mutating the clone changed the source index:\nbefore: %+v\nafter:  %+v", before, got)
	}
	if base.NumUsers() != usersBefore {
		t.Fatalf("source repo grew from %d to %d users", usersBefore, base.NumUsers())
	}
	if cp.NumGroups() <= ix.NumGroups() {
		t.Fatalf("clone did not grow: %d vs %d groups", cp.NumGroups(), ix.NumGroups())
	}
}
