package groups

import (
	"sync"

	"podium/internal/bucketing"
	"podium/internal/profile"
)

// propBuckets is the per-property output of the incremental bucketing path:
// the partition β(p) and, per bucket, the sorted member users. The bulk
// Build path does not materialize per-bucket slices — see propLinks /
// propPartition below — but BucketProperty still buckets one property at a
// time through here.
type propBuckets struct {
	buckets []bucketing.Bucket
	members [][]profile.UserID
}

func bucketizeProperty(repo *profile.Repository, cfg Config, p profile.PropertyID) *propBuckets {
	users, scores := repo.PropertyValues(p)
	if len(users) == 0 {
		return nil
	}
	bs := cfg.bucketsFor(p, scores)
	members := make([][]profile.UserID, len(bs))
	for i, u := range users {
		if b := bucketing.Assign(bs, scores[i]); b >= 0 {
			members[b] = append(members[b], u)
		}
	}
	return &propBuckets{buckets: bs, members: members}
}

// propLinks is every (user, property, score) link of the repository binned
// by property into two contiguous arenas: property p's holders are
// users[off[p]:off[p+1]] (ascending UserID — rows are visited in user order)
// with their scores in the parallel scores arena. One O(links) pass replaces
// the per-property full-repository scans of the pre-columnar build, turning
// the bucketing stage from O(properties × links) into O(links).
type propLinks struct {
	off    []int
	users  []profile.UserID
	scores []float64
}

// binLinks bins the repository's links by property in two columnar passes:
// count, prefix-sum, fill.
func binLinks(repo *profile.Repository) *propLinks {
	nP := repo.NumProperties()
	off := make([]int, nP+1)
	repo.EachRow(func(_ profile.UserID, props []profile.PropertyID, _ []float64) {
		for _, p := range props {
			off[p+1]++
		}
	})
	for p := 0; p < nP; p++ {
		off[p+1] += off[p]
	}
	l := &propLinks{
		off:    off,
		users:  make([]profile.UserID, off[nP]),
		scores: make([]float64, off[nP]),
	}
	cur := make([]int, nP)
	copy(cur, off[:nP])
	repo.EachRow(func(u profile.UserID, props []profile.PropertyID, scores []float64) {
		for i, p := range props {
			c := cur[p]
			l.users[c] = u
			l.scores[c] = scores[i]
			cur[p] = c + 1
		}
	})
	return l
}

// propPartition is the bucketing result for one property's link segment:
// β(p), the per-link bucket assignment (aligned with the segment, -1 when
// the score falls in no bucket) and the per-bucket member counts.
type propPartition struct {
	buckets []bucketing.Bucket
	asg     []int32
	counts  []int
}

// partitionAll buckets every property's score segment, sequentially or with
// cfg.Parallelism workers. Workers only read the shared link arenas and
// write disjoint result slots, so the output is identical either way; the
// slice is indexed by PropertyID with nil entries for properties no user
// holds.
func partitionAll(links *propLinks, cfg Config) []*propPartition {
	nP := len(links.off) - 1
	results := make([]*propPartition, nP)
	one := func(pid int) {
		a, b := links.off[pid], links.off[pid+1]
		if a == b {
			return
		}
		scores := links.scores[a:b]
		bs := cfg.bucketsFor(profile.PropertyID(pid), scores)
		part := &propPartition{
			buckets: bs,
			asg:     make([]int32, len(scores)),
			counts:  make([]int, len(bs)),
		}
		for i, s := range scores {
			bi := bucketing.Assign(bs, s)
			part.asg[i] = int32(bi)
			if bi >= 0 {
				part.counts[bi]++
			}
		}
		results[pid] = part
	}
	if cfg.Parallelism <= 1 {
		for pid := 0; pid < nP; pid++ {
			one(pid)
		}
		return results
	}
	workers := cfg.Parallelism
	if workers > nP {
		workers = nP
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pid := range work {
				one(pid)
			}
		}()
	}
	for pid := 0; pid < nP; pid++ {
		work <- pid
	}
	close(work)
	wg.Wait()
	return results
}
