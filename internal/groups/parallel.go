package groups

import (
	"sync"

	"podium/internal/bucketing"
	"podium/internal/profile"
)

// propBuckets is the per-property output of the bucketing stage: the
// partition β(p) and, per bucket, the sorted member users.
type propBuckets struct {
	buckets []bucketing.Bucket
	members [][]profile.UserID
}

// bucketizeAll runs the bucketing stage for every property, sequentially or
// with cfg.Parallelism workers. Properties are independent, so the result is
// identical either way; the slice is indexed by PropertyID with nil entries
// for properties no user holds.
func bucketizeAll(repo *profile.Repository, cfg Config) []*propBuckets {
	n := repo.NumProperties()
	results := make([]*propBuckets, n)
	if cfg.Parallelism <= 1 {
		for pid := 0; pid < n; pid++ {
			results[pid] = bucketizeProperty(repo, cfg, profile.PropertyID(pid))
		}
		return results
	}
	// Profiles sort themselves lazily on first read; force that now so the
	// workers below are read-only and race-free.
	for u := 0; u < repo.NumUsers(); u++ {
		repo.Profile(profile.UserID(u)).Len()
	}
	workers := cfg.Parallelism
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pid := range work {
				results[pid] = bucketizeProperty(repo, cfg, profile.PropertyID(pid))
			}
		}()
	}
	for pid := 0; pid < n; pid++ {
		work <- pid
	}
	close(work)
	wg.Wait()
	return results
}

func bucketizeProperty(repo *profile.Repository, cfg Config, p profile.PropertyID) *propBuckets {
	users, scores := repo.PropertyValues(p)
	if len(users) == 0 {
		return nil
	}
	bs := bucketing.Split(scores, cfg.K, cfg.Method)
	members := make([][]profile.UserID, len(bs))
	for i, u := range users {
		if b := bucketing.Assign(bs, scores[i]); b >= 0 {
			members[b] = append(members[b], u)
		}
	}
	return &propBuckets{buckets: bs, members: members}
}
