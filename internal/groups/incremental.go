package groups

import (
	"fmt"
	"sort"

	"podium/internal/bucketing"
	"podium/internal/profile"
)

// Incremental maintenance. Section 9 of the paper contrasts Podium with
// manually curated surveys: "our solution applies to a given user repository
// as-is and may be easily executed multiple times, e.g., to incorporate data
// updates". These methods make that cheap: new users and score changes slot
// into the existing bucket partitions β(p) without rebuilding the index, so
// group IDs — and therefore saved feedback, named configurations and
// explanations — remain stable. The trade-off is that bucket *boundaries*
// are not re-derived; after heavy drift a full Build is still the way to
// re-optimize the partitions (properties first seen after Build are
// reported so the caller can decide).

// IndexUser wires a user that was appended to the repository after Build
// into the existing groups: each of its scores joins the group of the bucket
// it falls into, creating the group if that bucket was empty at build time.
// Complex groups are re-checked for the new user. It returns the properties
// that could not be indexed because they were never bucketed (new
// properties), and an error if the user is unknown or already indexed.
func (ix *Index) IndexUser(u profile.UserID) (unbucketed []profile.PropertyID, err error) {
	repo := ix.repo
	if int(u) < 0 || int(u) >= repo.NumUsers() {
		return nil, fmt.Errorf("groups: unknown user %d", u)
	}
	for int(u) >= len(ix.byUser) {
		ix.ownByUserSlice()
		ix.byUser = append(ix.byUser, nil)
		ix.invalidateDerived() // a new user row changes the CSR shape
	}
	if len(ix.byUser[u]) > 0 {
		return nil, fmt.Errorf("groups: user %d is already indexed", u)
	}
	repo.Profile(u).Each(func(p profile.PropertyID, s float64) {
		buckets, ok := ix.buckets[p]
		if !ok {
			unbucketed = append(unbucketed, p)
			return
		}
		bi := bucketing.Assign(buckets, s)
		if bi < 0 {
			return // score outside every bucket (Boolean partitions only)
		}
		ix.addMember(ix.ensureSimpleGroup(p, bi, buckets), u)
	})
	// Complex groups: membership conditions may now hold for u.
	for _, g := range ix.groups {
		if g.Kind == SimpleGroup {
			continue
		}
		if ix.complexHolds(g, u) {
			ix.addMember(g.ID, u)
		}
	}
	ix.ownUser(u)
	sortGroupIDs(ix.byUser[u])
	// Record the user itself even when no score bucketed: a new user row
	// changes the CSR shape (and |𝒰|, which CoverProp depends on).
	ix.noteUser(u)
	return unbucketed, nil
}

// UpdateScore records that user u's score for property p changed in the
// repository, moving the user between p's groups and updating any complex
// groups built on them. The repository must already hold the new score.
// Properties never bucketed at Build time are rejected.
func (ix *Index) UpdateScore(u profile.UserID, p profile.PropertyID) error {
	repo := ix.repo
	if int(u) < 0 || int(u) >= len(ix.byUser) {
		return fmt.Errorf("groups: user %d not indexed", u)
	}
	buckets, ok := ix.buckets[p]
	if !ok {
		return fmt.Errorf("groups: property %d was not bucketed at build time; rebuild required", p)
	}
	score, has := repo.Profile(u).Score(p)
	if !has {
		return fmt.Errorf("groups: user %d has no score for property %d", u, p)
	}
	newBi := bucketing.Assign(buckets, score)

	// Locate the user's current group of p, if any.
	var oldGID GroupID = -1
	for _, gid := range ix.byUser[u] {
		if g := ix.groups[gid]; g.Kind == SimpleGroup && g.Prop == p {
			oldGID = gid
			break
		}
	}
	if oldGID >= 0 && newBi >= 0 && ix.groups[oldGID].BucketIdx == newBi {
		return nil // same bucket: nothing moves
	}
	if oldGID >= 0 {
		ix.removeMember(oldGID, u)
	}
	if newBi >= 0 {
		ix.addMember(ix.ensureSimpleGroup(p, newBi, buckets), u)
	}
	// Re-evaluate complex groups that depend (transitively) on p's groups.
	for _, g := range ix.groups {
		if g.Kind == SimpleGroup || !ix.complexDependsOn(g, p) {
			continue
		}
		holds := ix.complexHolds(g, u)
		member := g.Contains(u)
		switch {
		case holds && !member:
			ix.addMember(g.ID, u)
		case !holds && member:
			ix.removeMember(g.ID, u)
		}
	}
	ix.ownUser(u)
	sortGroupIDs(ix.byUser[u])
	return nil
}

// BucketProperty derives β(p) for a property that was not bucketed at Build
// time — new properties arriving through live updates — and indexes every
// current holder. cfg should match the Build configuration. With few holders
// the partition is degenerate (a single bucket, or Boolean points); a later
// full Build re-derives better cuts once the distribution has mass. It is an
// error to re-bucket an already bucketed property.
func (ix *Index) BucketProperty(p profile.PropertyID, cfg Config) error {
	if p < 0 || int(p) >= ix.repo.NumProperties() {
		return fmt.Errorf("groups: unknown property %d", p)
	}
	if _, ok := ix.buckets[p]; ok {
		return fmt.Errorf("groups: property %d is already bucketed", p)
	}
	res := bucketizeProperty(ix.repo, cfg.withDefaults(), p)
	if res == nil {
		return nil // no holders yet; nothing to index
	}
	ix.ownBuckets()
	ix.buckets[p] = res.buckets
	touched := map[profile.UserID]bool{}
	for bi, m := range res.members {
		if len(m) < cfg.withDefaults().MinGroupSize {
			continue
		}
		g := &Group{
			ID:         GroupID(len(ix.groups)),
			Prop:       p,
			Bucket:     res.buckets[bi],
			BucketIdx:  bi,
			NumBuckets: len(res.buckets),
			Members:    m,
		}
		g.label = g.renderLabel(ix.repo.Catalog())
		ix.ownGroupsSlice()
		ix.groups = append(ix.groups, g)
		if ix.cow != nil {
			ix.cow.groups[g.ID] = true // freshly built: nothing shared to detach
		}
		ix.ownPropList(p)
		ix.byProp[p] = append(ix.byProp[p], g.ID)
		ix.ownByBucket()
		ix.byBucket[bucketKey{p, bi}] = g.ID
		for _, u := range m {
			for int(u) >= len(ix.byUser) {
				ix.ownByUserSlice()
				ix.byUser = append(ix.byUser, nil)
			}
			ix.ownUser(u)
			ix.byUser[u] = append(ix.byUser[u], g.ID)
			touched[u] = true
		}
		ix.noteGroup(g.ID)
	}
	for u := range touched {
		sortGroupIDs(ix.byUser[u])
		ix.noteUser(u)
	}
	// Bucketing a property reshapes the group structure itself; repairers
	// should fall back to a full recompute rather than patch around it.
	ix.noteReshape()
	ix.invalidateDerived()
	return nil
}

// groupForBucket finds the group of (p, bucketIdx) if it exists — an O(1)
// lookup in the byBucket map, which is maintained alongside byProp so that
// batched incremental indexing stays linear in the number of moves.
func (ix *Index) groupForBucket(p profile.PropertyID, bi int) (GroupID, bool) {
	gid, ok := ix.byBucket[bucketKey{p, bi}]
	if !ok {
		return -1, false
	}
	return gid, true
}

// ensureSimpleGroup returns the group of (p, bi), materializing an empty one
// — wired into byProp and byBucket — if that bucket had no group yet.
func (ix *Index) ensureSimpleGroup(p profile.PropertyID, bi int, buckets []bucketing.Bucket) GroupID {
	if gid, ok := ix.groupForBucket(p, bi); ok {
		return gid
	}
	g := &Group{
		ID:         GroupID(len(ix.groups)),
		Prop:       p,
		Bucket:     buckets[bi],
		BucketIdx:  bi,
		NumBuckets: len(buckets),
	}
	g.label = g.renderLabel(ix.repo.Catalog())
	ix.ownGroupsSlice()
	ix.groups = append(ix.groups, g)
	if ix.cow != nil {
		ix.cow.groups[g.ID] = true // freshly built: nothing shared to detach
	}
	ix.ownPropList(p)
	ix.byProp[p] = insertGroupSorted(ix, ix.byProp[p], g.ID)
	ix.ownByBucket()
	ix.byBucket[bucketKey{p, bi}] = g.ID
	return g.ID
}

// addMember inserts u into the group's sorted member slice and the user's
// group list (deduplicated).
func (ix *Index) addMember(gid GroupID, u profile.UserID) {
	g := ix.groups[gid]
	i := sort.Search(len(g.Members), func(i int) bool { return g.Members[i] >= u })
	if i < len(g.Members) && g.Members[i] == u {
		return
	}
	g = ix.mutableGroup(gid)
	g.Members = append(g.Members, 0)
	copy(g.Members[i+1:], g.Members[i:])
	g.Members[i] = u
	ix.ownUser(u)
	ix.byUser[u] = append(ix.byUser[u], gid)
	ix.noteGroup(gid)
	ix.noteUser(u)
	ix.invalidateDerived()
}

// removeMember deletes u from the group and the user's group list. Removal
// copies the shrunken rows out instead of shifting in place: member and
// adjacency rows alias the Build arenas, which published CSR snapshots share
// — an in-place shift would rewrite history under concurrent readers.
func (ix *Index) removeMember(gid GroupID, u profile.UserID) {
	g := ix.groups[gid]
	i := sort.Search(len(g.Members), func(i int) bool { return g.Members[i] >= u })
	if i < len(g.Members) && g.Members[i] == u {
		g = ix.mutableGroup(gid)
		nm := make([]profile.UserID, 0, len(g.Members)-1)
		nm = append(nm, g.Members[:i]...)
		nm = append(nm, g.Members[i+1:]...)
		g.Members = nm
	}
	ix.ownUser(u)
	gs := ix.byUser[u]
	for j, id := range gs {
		if id == gid {
			ng := make([]GroupID, 0, len(gs)-1)
			ng = append(ng, gs[:j]...)
			ng = append(ng, gs[j+1:]...)
			ix.byUser[u] = ng
			break
		}
	}
	ix.noteGroup(gid)
	ix.noteUser(u)
	ix.invalidateDerived()
}

// complexHolds evaluates a complex group's condition for one user, resolving
// nested complex parents recursively.
func (ix *Index) complexHolds(g *Group, u profile.UserID) bool {
	holdsParent := func(pid GroupID) bool {
		p := ix.groups[pid]
		if p.Kind == SimpleGroup {
			return p.Contains(u)
		}
		return ix.complexHolds(p, u)
	}
	if g.Kind == IntersectionGroup {
		for _, pid := range g.Parents {
			if !holdsParent(pid) {
				return false
			}
		}
		return true
	}
	for _, pid := range g.Parents {
		if holdsParent(pid) {
			return true
		}
	}
	return false
}

// complexDependsOn reports whether a complex group transitively depends on
// any simple group of property p.
func (ix *Index) complexDependsOn(g *Group, p profile.PropertyID) bool {
	for _, pid := range g.Parents {
		parent := ix.groups[pid]
		if parent.Kind == SimpleGroup {
			if parent.Prop == p {
				return true
			}
		} else if ix.complexDependsOn(parent, p) {
			return true
		}
	}
	return false
}

// insertGroupSorted keeps byProp lists ordered by BucketIdx so that
// GroupsOfProperty stays in bucket order after incremental additions.
func insertGroupSorted(ix *Index, ids []GroupID, gid GroupID) []GroupID {
	bi := ix.groups[gid].BucketIdx
	i := sort.Search(len(ids), func(i int) bool { return ix.groups[ids[i]].BucketIdx >= bi })
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = gid
	return ids
}

func sortGroupIDs(ids []GroupID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
