package groups

import (
	"fmt"
	"testing"

	"podium/internal/profile"
	"podium/internal/stats"
)

func randomRepo(seed int64, users, props int) *profile.Repository {
	rng := stats.NewRand(seed)
	repo := profile.NewRepository()
	for u := 0; u < users; u++ {
		id := repo.AddUser(fmt.Sprintf("u%d", u))
		for p := 0; p < props; p++ {
			if rng.Float64() < 0.6 {
				repo.MustSetScore(id, fmt.Sprintf("p%02d", p), rng.Float64())
			}
		}
	}
	return repo
}

func TestParallelBuildMatchesSequential(t *testing.T) {
	for _, workers := range []int{2, 4, 9} {
		// Fresh repositories per run: Build forces lazy profile sorting, and
		// sharing one repo would hide ordering bugs.
		seq := Build(randomRepo(3, 120, 25), Config{K: 3})
		par := Build(randomRepo(3, 120, 25), Config{K: 3, Parallelism: workers})
		if seq.NumGroups() != par.NumGroups() {
			t.Fatalf("workers=%d: %d vs %d groups", workers, par.NumGroups(), seq.NumGroups())
		}
		for i := 0; i < seq.NumGroups(); i++ {
			a, b := seq.Group(GroupID(i)), par.Group(GroupID(i))
			if a.Prop != b.Prop || a.BucketIdx != b.BucketIdx || a.Bucket != b.Bucket {
				t.Fatalf("workers=%d: group %d metadata differs", workers, i)
			}
			if len(a.Members) != len(b.Members) {
				t.Fatalf("workers=%d: group %d member counts differ", workers, i)
			}
			for j := range a.Members {
				if a.Members[j] != b.Members[j] {
					t.Fatalf("workers=%d: group %d members differ", workers, i)
				}
			}
		}
		for u := 0; u < 120; u++ {
			a, b := seq.UserGroups(profile.UserID(u)), par.UserGroups(profile.UserID(u))
			if len(a) != len(b) {
				t.Fatalf("workers=%d: user %d group counts differ", workers, u)
			}
			for j := range a {
				if a[j] != b[j] {
					t.Fatalf("workers=%d: user %d groups differ", workers, u)
				}
			}
		}
	}
}

func TestParallelBuildMoreWorkersThanProperties(t *testing.T) {
	repo := randomRepo(5, 20, 3)
	ix := Build(repo, Config{K: 3, Parallelism: 64})
	if ix.NumGroups() == 0 {
		t.Fatal("no groups built")
	}
}
