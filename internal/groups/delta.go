package groups

import (
	"sort"

	"podium/internal/profile"
)

// Change records. The incremental maintenance path (incremental.go) already
// keeps group IDs stable across live updates; this file makes the *effects*
// of a mutation batch observable, so downstream layers can repair derived
// state instead of rebuilding it. The single-writer apply loop calls
// TakeDelta once per batch, right before publishing the clone as the next
// epoch; the returned Delta carries a sequence-numbered watermark that is
// monotone across the whole epoch chain (Clone carries the sequence forward),
// so "has anything relevant changed since I last looked?" is one integer
// comparison for any reader holding an old watermark.
//
// Recording is deliberately conservative: mutators note every user and group
// they *touch*, even when the touch turns out to be a no-op (adding an
// existing member, removing an absent one). Over-recording only costs a
// repairer a few wasted row sums; under-recording would silently corrupt
// repaired state. The one deliberate omission is UpdateScore's same-bucket
// early return: a score change that moves no user between groups changes no
// adjacency and no group size, so nothing selection-relevant happened and the
// watermark must not advance — that is the case the server's select cache
// rides through without invalidating.

// Delta is the change record of one mutation batch, taken via TakeDelta.
type Delta struct {
	// Seq is the batch's watermark: the index's ChangeSeq after the batch.
	// An empty delta reports the unchanged current watermark.
	Seq uint64
	// Users lists the users whose group adjacency (or existence) changed,
	// sorted ascending, deduplicated.
	Users []profile.UserID
	// Groups lists the groups whose membership changed (including groups
	// created by the batch), sorted ascending, deduplicated.
	Groups []GroupID
	// Reshaped marks batches that changed the group *structure* beyond
	// membership moves — a new property was bucketed and spawned groups.
	// Repairers should treat a reshape as "recompute, don't patch".
	Reshaped bool
}

// Empty reports whether the batch changed nothing selection-relevant.
func (d *Delta) Empty() bool {
	return len(d.Users) == 0 && len(d.Groups) == 0 && !d.Reshaped
}

// deltaRecorder accumulates the current batch's pending records. It lives
// behind a nil check: an index that never mutates never allocates one.
type deltaRecorder struct {
	users    map[profile.UserID]struct{}
	groups   map[GroupID]struct{}
	reshaped bool
}

func (ix *Index) recorder() *deltaRecorder {
	if ix.rec == nil {
		ix.rec = &deltaRecorder{
			users:  make(map[profile.UserID]struct{}),
			groups: make(map[GroupID]struct{}),
		}
	}
	return ix.rec
}

func (ix *Index) noteUser(u profile.UserID) { ix.recorder().users[u] = struct{}{} }
func (ix *Index) noteGroup(g GroupID)       { ix.recorder().groups[g] = struct{}{} }
func (ix *Index) noteReshape()              { ix.recorder().reshaped = true }

// ChangeSeq returns the index's current watermark: the sequence number of the
// last non-empty mutation batch taken from this index or any of its Clone
// ancestors. Zero means no selection-relevant mutation was ever recorded.
func (ix *Index) ChangeSeq() uint64 { return ix.deltaSeq }

// TakeDelta closes the current mutation batch and returns its change record,
// resetting the recorder. If anything selection-relevant was recorded the
// watermark advances and the Delta carries the new sequence number; otherwise
// the watermark — and therefore every downstream cache keyed on it — is left
// untouched and the returned Delta is Empty.
//
// TakeDelta is a writer-side operation, called on the private clone before it
// is published; it must not be called on a shared index.
func (ix *Index) TakeDelta() *Delta {
	r := ix.rec
	ix.rec = nil
	if r == nil || (len(r.users) == 0 && len(r.groups) == 0 && !r.reshaped) {
		return &Delta{Seq: ix.deltaSeq}
	}
	ix.deltaSeq++
	d := &Delta{Seq: ix.deltaSeq, Reshaped: r.reshaped}
	d.Users = make([]profile.UserID, 0, len(r.users))
	for u := range r.users {
		d.Users = append(d.Users, u)
	}
	sort.Slice(d.Users, func(i, j int) bool { return d.Users[i] < d.Users[j] })
	d.Groups = make([]GroupID, 0, len(r.groups))
	for g := range r.groups {
		d.Groups = append(d.Groups, g)
	}
	sortGroupIDs(d.Groups)
	return d
}
