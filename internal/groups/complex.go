package groups

import (
	"fmt"
	"sort"
	"strings"

	"podium/internal/profile"
)

// GroupKind distinguishes the simple groups of Definition 3.4 from the
// complex groups built from them ("Simple user groups can be used to define
// more complex ones as the intersection or union of a few simple groups").
type GroupKind int

const (
	// SimpleGroup is a (property, bucket) group.
	SimpleGroup GroupKind = iota
	// IntersectionGroup is the conjunction of its parent groups.
	IntersectionGroup
	// UnionGroup is the disjunction of its parent groups.
	UnionGroup
	// ManualGroup is a client-supplied member list with a client label.
	ManualGroup
)

func (k GroupKind) String() string {
	switch k {
	case SimpleGroup:
		return "simple"
	case IntersectionGroup:
		return "intersection"
	case UnionGroup:
		return "union"
	case ManualGroup:
		return "manual"
	}
	return fmt.Sprintf("GroupKind(%d)", int(k))
}

// AddIntersection materializes the intersection of existing groups as a new
// group in the index, wired into the user↔group adjacency so that selection,
// weights, coverage, explanations and customization treat it like any other
// group (Example 3.5's "Tokyo residents who are also Mexican food lovers").
// It returns an error for fewer than two parents, unknown IDs, or an empty
// intersection (an empty group can never be covered and would only distort
// EBS ranks).
func (ix *Index) AddIntersection(ids ...GroupID) (GroupID, error) {
	return ix.addComplex(IntersectionGroup, ids)
}

// AddUnion materializes the union of existing groups as a new group.
func (ix *Index) AddUnion(ids ...GroupID) (GroupID, error) {
	return ix.addComplex(UnionGroup, ids)
}

func (ix *Index) addComplex(kind GroupKind, ids []GroupID) (GroupID, error) {
	if len(ids) < 2 {
		return 0, fmt.Errorf("groups: %s needs at least two parents, got %d", kind, len(ids))
	}
	parents := make([]*Group, len(ids))
	for i, id := range ids {
		if id < 0 || int(id) >= len(ix.groups) {
			return 0, fmt.Errorf("groups: unknown parent group %d", id)
		}
		parents[i] = ix.groups[id]
	}
	var members []profile.UserID
	if kind == IntersectionGroup {
		members = Intersection(parents...)
	} else {
		members = Union(parents...)
	}
	if len(members) == 0 {
		return 0, fmt.Errorf("groups: %s of %v is empty", kind, ids)
	}
	sep := " AND "
	if kind == UnionGroup {
		sep = " OR "
	}
	parts := make([]string, len(parents))
	for i, p := range parents {
		parts[i] = p.Label(ix.repo.Catalog())
	}
	g := &Group{
		ID:      GroupID(len(ix.groups)),
		Kind:    kind,
		Parents: append([]GroupID(nil), ids...),
		Prop:    complexProp(GroupID(len(ix.groups))),
		Members: members,
		label:   "(" + strings.Join(parts, sep) + ")",
	}
	ix.ownGroupsSlice()
	ix.groups = append(ix.groups, g)
	if ix.cow != nil {
		ix.cow.groups[g.ID] = true // freshly built: nothing shared to detach
	}
	for _, u := range members {
		ix.ownUser(u)
		ix.byUser[u] = append(ix.byUser[u], g.ID)
	}
	ix.invalidateDerived()
	return g.ID, nil
}

// AddManualGroup materializes a client-defined group — Section 3.2: "Our
// diversification solution can support any set of groups input by the
// client, including manually crafted groups as typically defined by
// surveyors". The label is used verbatim in explanations; members are
// deduplicated and sorted. Empty member sets and out-of-range users are
// errors.
func (ix *Index) AddManualGroup(label string, members []profile.UserID) (GroupID, error) {
	if len(members) == 0 {
		return 0, fmt.Errorf("groups: manual group %q has no members", label)
	}
	seen := make(map[profile.UserID]bool, len(members))
	clean := make([]profile.UserID, 0, len(members))
	for _, u := range members {
		if int(u) < 0 || int(u) >= ix.repo.NumUsers() {
			return 0, fmt.Errorf("groups: manual group %q references unknown user %d", label, u)
		}
		if !seen[u] {
			seen[u] = true
			clean = append(clean, u)
		}
	}
	sort.Slice(clean, func(i, j int) bool { return clean[i] < clean[j] })
	g := &Group{
		ID:      GroupID(len(ix.groups)),
		Kind:    ManualGroup,
		Prop:    complexProp(GroupID(len(ix.groups))),
		Members: clean,
		label:   label,
	}
	ix.ownGroupsSlice()
	ix.groups = append(ix.groups, g)
	if ix.cow != nil {
		ix.cow.groups[g.ID] = true // freshly built: nothing shared to detach
	}
	for _, u := range clean {
		for int(u) >= len(ix.byUser) {
			ix.ownByUserSlice()
			ix.byUser = append(ix.byUser, nil)
		}
		ix.ownUser(u)
		ix.byUser[u] = append(ix.byUser[u], g.ID)
		sortGroupIDs(ix.byUser[u])
	}
	ix.invalidateDerived()
	return g.ID, nil
}

// complexProp assigns a complex group a unique synthetic PropertyID outside
// the catalog's range (negative), so that per-property logic — same-property
// intersection skips, the 𝒢₊ per-property disjunction — treats each complex
// group as its own dimension.
func complexProp(id GroupID) profile.PropertyID {
	return profile.PropertyID(-(int(id) + 1))
}
