package groups

import (
	"sync/atomic"

	"podium/internal/bucketing"
	"podium/internal/profile"
)

// cowState tracks which shared structures a cloned index has already
// detached from its source. The maps start empty: a clone that absorbs a
// mutation batch touching k groups copies O(k) member slices, not O(|𝒢|).
type cowState struct {
	groups      map[GroupID]bool            // Group struct + Members copied
	users       map[profile.UserID]bool     // byUser[u] copied
	props       map[profile.PropertyID]bool // byProp[p] value copied
	byProp      bool                        // byProp map header copied
	byBucket    bool                        // byBucket map copied
	buckets     bool                        // buckets map copied
	groupsSlice bool                        // top-level groups slice detached
	byUserSlice bool                        // top-level byUser slice detached
}

// Clone returns a copy-on-write copy of the index bound to repo — a
// repository with identical user and property numbering, typically a
// copy-on-write clone of the original (profile.Repository.Clone). Nothing is
// copied eagerly: the Group structs, member arena, per-user and per-property
// tables and bucket maps all stay shared with the source until a mutator
// touches them, at which point the touched piece is detached (mutableGroup,
// ownUser, ownGroupsSlice, ownByUserSlice, ownPropList, ownByBucket,
// ownBuckets) — so cloning a million-user index costs the same as cloning a
// hundred-user one. This is the copy half of the server's copy-on-write
// epoch publication: the single writer clones the published index, applies a
// mutation batch through the incremental path — paying copy cost
// proportional to what the batch touches, not to index size — and publishes
// the result. Mutating the clone never disturbs concurrent readers of the
// source.
//
// The frozen CSR and cached adjacency statistics carry over: they describe
// an adjacency the clone still shares, and mutators invalidate them on the
// clone alone. A clean clone is therefore free to Freeze and publish without
// any rebuild.
func (ix *Index) Clone(repo *profile.Repository) *Index {
	cp := &Index{
		repo:             repo,
		groups:           ix.groups,
		byUser:           ix.byUser,
		byProp:           ix.byProp,
		buckets:          ix.buckets,
		byBucket:         ix.byBucket,
		maxGroupSize:     ix.maxGroupSize,
		maxGroupsPerUser: ix.maxGroupsPerUser,
		statsStale:       atomic.LoadUint32(&ix.statsStale),
		// The change watermark carries over — it numbers the epoch chain, not
		// one index — while pending records do not: the clone starts a fresh
		// batch, and records already accumulated on the source stay with the
		// source (TakeDelta there still sees them).
		deltaSeq: ix.deltaSeq,
		cow: &cowState{
			groups: make(map[GroupID]bool),
			users:  make(map[profile.UserID]bool),
			props:  make(map[profile.PropertyID]bool),
		},
	}
	if c := ix.csr.Load(); c != nil {
		cp.csr.Store(c)
	}
	return cp
}

// ownGroupsSlice detaches the top-level groups slice before its first
// element write or append. Until then the slice (not just the *Group values)
// is shared with the clone's source; appending to a shared slice with spare
// capacity would let two sibling clones scribble over the same backing
// array.
func (ix *Index) ownGroupsSlice() {
	if ix.cow == nil || ix.cow.groupsSlice {
		return
	}
	ix.groups = append([]*Group(nil), ix.groups...)
	ix.cow.groupsSlice = true
}

// ownByUserSlice detaches the top-level byUser slice before its first
// element write or append, for the same reason as ownGroupsSlice.
func (ix *Index) ownByUserSlice() {
	if ix.cow == nil || ix.cow.byUserSlice {
		return
	}
	ix.byUser = append([][]GroupID(nil), ix.byUser...)
	ix.cow.byUserSlice = true
}

// mutableGroup returns a group the caller may mutate, detaching a private
// copy of the struct and its member slice on first touch of a shared group.
// All in-place Group mutation must go through here; reads can keep using
// ix.groups[gid] directly.
func (ix *Index) mutableGroup(gid GroupID) *Group {
	g := ix.groups[gid]
	if ix.cow == nil || ix.cow.groups[gid] {
		return g
	}
	ix.ownGroupsSlice()
	ng := *g
	ng.Members = append(make([]profile.UserID, 0, len(g.Members)+1), g.Members...)
	ix.groups[gid] = &ng
	ix.cow.groups[gid] = true
	return &ng
}

// ownUser detaches byUser[u] before an append, removal or in-place sort. The
// +1 capacity pre-reserves the common single-append that follows.
func (ix *Index) ownUser(u profile.UserID) {
	if ix.cow == nil || ix.cow.users[u] {
		return
	}
	ix.ownByUserSlice()
	if int(u) < len(ix.byUser) && len(ix.byUser[u]) > 0 {
		ix.byUser[u] = append(make([]GroupID, 0, len(ix.byUser[u])+1), ix.byUser[u]...)
	}
	ix.cow.users[u] = true
}

// ownPropList detaches the byProp map (on first property touched) and then
// property p's group list, ahead of wiring a new group into it.
func (ix *Index) ownPropList(p profile.PropertyID) {
	if ix.cow == nil {
		return
	}
	if !ix.cow.byProp {
		m := make(map[profile.PropertyID][]GroupID, len(ix.byProp)+1)
		for q, gs := range ix.byProp {
			m[q] = gs
		}
		ix.byProp = m
		ix.cow.byProp = true
	}
	if !ix.cow.props[p] {
		if gs := ix.byProp[p]; len(gs) > 0 {
			ix.byProp[p] = append(make([]GroupID, 0, len(gs)+1), gs...)
		}
		ix.cow.props[p] = true
	}
}

// ownByBucket detaches the (property, bucket) → group map before a new
// simple group is registered.
func (ix *Index) ownByBucket() {
	if ix.cow == nil || ix.cow.byBucket {
		return
	}
	m := make(map[bucketKey]GroupID, len(ix.byBucket)+1)
	for k, gid := range ix.byBucket {
		m[k] = gid
	}
	ix.byBucket = m
	ix.cow.byBucket = true
}

// ownBuckets detaches the per-property bucket-partition map before a new
// property's β(p) is recorded. Existing entries are never mutated in place,
// so sharing the value slices is safe.
func (ix *Index) ownBuckets() {
	if ix.cow == nil || ix.cow.buckets {
		return
	}
	m := make(map[profile.PropertyID][]bucketing.Bucket, len(ix.buckets)+1)
	for p, bs := range ix.buckets {
		m[p] = bs
	}
	ix.buckets = m
	ix.cow.buckets = true
}
