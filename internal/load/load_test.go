package load

import (
	"os"
	"path/filepath"
	"testing"

	"podium/internal/codec"
	"podium/internal/profile"
	"podium/internal/repolog"
	"podium/internal/synth"
)

func TestLoadJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := profile.PaperExample().WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	repo, err := Repository(path)
	if err != nil {
		t.Fatal(err)
	}
	if repo.NumUsers() != 5 {
		t.Fatalf("users = %d", repo.NumUsers())
	}
}

func TestLoadBinaryRepository(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.podium")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.WriteRepository(f, profile.PaperExample()); err != nil {
		t.Fatal(err)
	}
	f.Close()

	repo, err := Repository(path)
	if err != nil {
		t.Fatal(err)
	}
	if repo.NumUsers() != 5 {
		t.Fatalf("users = %d", repo.NumUsers())
	}
}

func TestLoadBinaryDataset(t *testing.T) {
	ds := synth.Generate(synth.YelpLike(30))
	path := filepath.Join(t.TempDir(), "dataset.podium")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := codec.WriteDataset(f, ds.Repo, ds.Store); err != nil {
		t.Fatal(err)
	}
	f.Close()

	repo, store, err := Dataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if repo.NumUsers() != 30 || store == nil || store.NumReviews() != ds.Store.NumReviews() {
		t.Fatalf("dataset loaded wrong: %d users, store %v", repo.NumUsers(), store != nil)
	}
	// Repository() on a dataset file yields the repo without the store.
	repoOnly, err := Repository(path)
	if err != nil {
		t.Fatal(err)
	}
	if repoOnly.NumUsers() != 30 {
		t.Fatalf("repo-only users = %d", repoOnly.NumUsers())
	}
}

func TestLoadRepositoryLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repo.plog")
	l, err := repolog.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	u, _ := l.AddUser("Alice")
	if err := l.SetScore(u, "p", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	repo, err := Repository(path)
	if err != nil {
		t.Fatal(err)
	}
	if repo.NumUsers() != 1 || repo.UserName(0) != "Alice" {
		t.Fatalf("log repo = %d users", repo.NumUsers())
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Repository(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadGarbageFallsToJSONError(t *testing.T) {
	path := filepath.Join(t.TempDir(), "garbage")
	if err := os.WriteFile(path, []byte("certainly not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Repository(path); err == nil {
		t.Fatal("garbage accepted")
	}
}
