// Package load opens profile repositories from disk, auto-detecting the
// storage format by magic bytes: "PLOG" repository logs (internal/repolog),
// "PODM" binary files (internal/codec — plain repositories or full
// datasets), and JSON (the interchange format) as the fallback. The CLI
// tools and server use it so every on-disk format works with every -in flag.
package load

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"

	"podium/internal/codec"
	"podium/internal/opinions"
	"podium/internal/profile"
	"podium/internal/repolog"
)

// Repository opens the repository stored at path in any supported format.
// Dataset files (repository + reviews) yield just their repository; use
// Dataset to get both.
func Repository(path string) (*profile.Repository, error) {
	repo, _, err := open(path, false)
	return repo, err
}

// Dataset opens a repository and, when the file carries them, its
// ground-truth reviews. The store is nil for formats without review data
// (JSON, repository logs, plain binary repositories).
func Dataset(path string) (*profile.Repository, *opinions.Store, error) {
	return open(path, true)
}

func open(path string, wantStore bool) (*profile.Repository, *opinions.Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("load: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(6)
	if err != nil && err != io.EOF {
		return nil, nil, fmt.Errorf("load: %w", err)
	}
	switch {
	case bytes.HasPrefix(head, []byte("PLOG")):
		// Repository log: replay via repolog (reopening read-write is what
		// repolog.Open does; for read-only loading replaying is identical).
		l, err := repolog.Open(path)
		if err != nil {
			return nil, nil, err
		}
		repo := l.Repository()
		if err := l.Close(); err != nil {
			return nil, nil, err
		}
		return repo, nil, nil
	case bytes.HasPrefix(head, []byte("PODM")):
		// Binary codec: the 5th byte is the format version, the 6th the
		// section tag. Format-v2 snapshot images take the bulk-read path —
		// one os.ReadFile + validate instead of a value-by-value decode.
		if len(head) >= 5 && head[4] == 2 {
			repo, err := codec.ReadImageFile(path)
			return repo, nil, err
		}
		if len(head) >= 6 && head[5] == 2 {
			repo, store, err := codec.ReadDataset(br)
			if err != nil {
				return nil, nil, err
			}
			if !wantStore {
				store = nil
			}
			return repo, store, nil
		}
		repo, err := codec.ReadRepository(br)
		return repo, nil, err
	default:
		repo, err := profile.ReadJSON(br)
		return repo, nil, err
	}
}
