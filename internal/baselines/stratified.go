package baselines

import (
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/stats"
)

// Stratified is classical stratified sampling (Table 1 of the paper, e.g.
// Helton & Davis): pick one stratification property, treat its buckets as
// non-overlapping strata, allocate the budget proportionally to stratum
// sizes, and sample uniformly within each stratum. It embodies the survey
// methodology the paper contrasts with: sound when a domain expert can
// choose a *single* meaningful partition, but blind to every other dimension
// of a high-dimensional profile — which is exactly what the intrinsic
// metrics expose.
type Stratified struct {
	Seed int64
	// Property optionally names the stratification property; when empty the
	// property held by the most users is chosen (the broadest single
	// partition available).
	Property string
}

// Name implements Selector.
func (Stratified) Name() string { return "Stratified" }

// Select implements Selector.
func (s Stratified) Select(ix *groups.Index, budget int) []profile.UserID {
	repo := ix.Repo()
	n := repo.NumUsers()
	if budget >= n {
		users := make([]profile.UserID, n)
		for i := range users {
			users[i] = profile.UserID(i)
		}
		return users
	}
	if budget <= 0 {
		return nil
	}
	prop, ok := s.pickProperty(ix)
	if !ok {
		// No usable property: degrade to uniform sampling.
		return Random{Seed: s.Seed}.Select(ix, budget)
	}
	// Strata: the property's buckets plus a residual stratum of users that
	// lack the property (open world — surveys would call them "no answer").
	var strata [][]profile.UserID
	inStratum := make([]bool, n)
	for _, gid := range ix.GroupsOfProperty(prop) {
		members := ix.Group(gid).Members
		strata = append(strata, members)
		for _, u := range members {
			inStratum[u] = true
		}
	}
	var residual []profile.UserID
	for u := 0; u < n; u++ {
		if !inStratum[u] {
			residual = append(residual, profile.UserID(u))
		}
	}
	if len(residual) > 0 {
		strata = append(strata, residual)
	}

	// Proportional allocation with largest-remainder rounding.
	alloc := allocateProportional(strata, budget, n)

	rng := stats.NewRand(s.Seed)
	var out []profile.UserID
	for i, stratum := range strata {
		k := alloc[i]
		if k > len(stratum) {
			k = len(stratum)
		}
		for _, idx := range stats.SampleWithoutReplacement(rng, len(stratum), k) {
			out = append(out, stratum[idx])
		}
	}
	// Rounding plus small strata can leave the selection short; top up
	// uniformly from the unselected remainder.
	if len(out) < budget {
		taken := make(map[profile.UserID]bool, len(out))
		for _, u := range out {
			taken[u] = true
		}
		var rest []profile.UserID
		for u := 0; u < n; u++ {
			if !taken[profile.UserID(u)] {
				rest = append(rest, profile.UserID(u))
			}
		}
		for _, idx := range stats.SampleWithoutReplacement(rng, len(rest), budget-len(out)) {
			out = append(out, rest[idx])
		}
	}
	return out
}

// pickProperty returns the configured property, or the one with the largest
// holder count, preferring lower property IDs on ties.
func (s Stratified) pickProperty(ix *groups.Index) (profile.PropertyID, bool) {
	repo := ix.Repo()
	if s.Property != "" {
		return repo.Catalog().Lookup(s.Property)
	}
	best, bestCount := profile.PropertyID(-1), 0
	for pid := 0; pid < repo.NumProperties(); pid++ {
		count := 0
		for _, gid := range ix.GroupsOfProperty(profile.PropertyID(pid)) {
			count += ix.Group(gid).Size()
		}
		if count > bestCount {
			best, bestCount = profile.PropertyID(pid), count
		}
	}
	return best, best >= 0
}

// allocateProportional distributes the budget over strata proportionally to
// their sizes, using the largest-remainder method so the counts sum to at
// most budget and every non-empty stratum with a large share gets its floor.
func allocateProportional(strata [][]profile.UserID, budget, population int) []int {
	alloc := make([]int, len(strata))
	type rem struct {
		i    int
		frac float64
	}
	var rems []rem
	used := 0
	for i, s := range strata {
		exact := float64(budget) * float64(len(s)) / float64(population)
		alloc[i] = int(exact)
		used += alloc[i]
		rems = append(rems, rem{i, exact - float64(alloc[i])})
	}
	// Hand out the remaining seats by descending fractional part, ties by
	// stratum order.
	for used < budget && len(rems) > 0 {
		best := 0
		for j := 1; j < len(rems); j++ {
			if rems[j].frac > rems[best].frac {
				best = j
			}
		}
		if alloc[rems[best].i] < len(strata[rems[best].i]) {
			alloc[rems[best].i]++
			used++
		}
		rems[best] = rems[len(rems)-1]
		rems = rems[:len(rems)-1]
	}
	return alloc
}

// DistanceMaxMin is the max-min flavor of distance-based selection: each
// pick maximizes the *minimum* Jaccard distance to the already selected
// users (remote-point / p-dispersion greedy), versus Distance's max-sum.
// Included as an ablation of the distance-based family the paper compares
// against — max-min is even more aggressive about avoiding overlap, so its
// coverage penalty is starker.
type DistanceMaxMin struct{}

// Name implements Selector.
func (DistanceMaxMin) Name() string { return "DistanceMaxMin" }

// Select implements Selector.
func (DistanceMaxMin) Select(ix *groups.Index, budget int) []profile.UserID {
	repo := ix.Repo()
	n := repo.NumUsers()
	if budget > n {
		budget = n
	}
	if budget <= 0 || n == 0 {
		return nil
	}
	first := 0
	for u := 1; u < n; u++ {
		if repo.Profile(profile.UserID(u)).Len() > repo.Profile(profile.UserID(first)).Len() {
			first = u
		}
	}
	selected := []profile.UserID{profile.UserID(first)}
	inSel := make([]bool, n)
	inSel[first] = true
	minDist := make([]float64, n)
	for u := 0; u < n; u++ {
		minDist[u] = jaccardDistance(repo, profile.UserID(u), profile.UserID(first))
	}
	for len(selected) < budget {
		best := -1
		for u := 0; u < n; u++ {
			if inSel[u] {
				continue
			}
			if best < 0 || minDist[u] > minDist[best] {
				best = u
			}
		}
		if best < 0 {
			break
		}
		selected = append(selected, profile.UserID(best))
		inSel[best] = true
		for u := 0; u < n; u++ {
			if !inSel[u] {
				if d := jaccardDistance(repo, profile.UserID(u), profile.UserID(best)); d < minDist[u] {
					minDist[u] = d
				}
			}
		}
	}
	return selected
}
