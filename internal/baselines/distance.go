package baselines

import (
	"podium/internal/groups"
	"podium/internal/profile"
)

// Distance is the distance-based baseline — the S-Model of Wu et al. [4]
// realized as a greedy that maximizes the sum of pairwise Jaccard distances
// between the property sets of the selected subset. The first pick is the
// user with the largest property set (deterministic; the paper breaks such
// ties arbitrarily), and each following pick maximizes its total Jaccard
// distance to the users already selected.
type Distance struct{}

// Name implements Selector.
func (Distance) Name() string { return "Distance" }

// Select implements Selector.
func (Distance) Select(ix *groups.Index, budget int) []profile.UserID {
	repo := ix.Repo()
	n := repo.NumUsers()
	if budget > n {
		budget = n
	}
	if budget <= 0 || n == 0 {
		return nil
	}
	// Seed: largest profile, ties toward the lowest index.
	first := 0
	for u := 1; u < n; u++ {
		if repo.Profile(profile.UserID(u)).Len() > repo.Profile(profile.UserID(first)).Len() {
			first = u
		}
	}
	selected := []profile.UserID{profile.UserID(first)}
	inSel := make([]bool, n)
	inSel[first] = true
	// sumDist[u] accumulates Σ_{v ∈ selected} jaccardDistance(u, v).
	sumDist := make([]float64, n)
	last := first
	for len(selected) < budget {
		for u := 0; u < n; u++ {
			if !inSel[u] {
				sumDist[u] += jaccardDistance(repo, profile.UserID(u), profile.UserID(last))
			}
		}
		best := -1
		for u := 0; u < n; u++ {
			if inSel[u] {
				continue
			}
			if best < 0 || sumDist[u] > sumDist[best] {
				best = u
			}
		}
		if best < 0 {
			break
		}
		selected = append(selected, profile.UserID(best))
		inSel[best] = true
		last = best
	}
	return selected
}

// jaccardDistance is 1 − |P_u ∩ P_v| / |P_u ∪ P_v| over property sets,
// computed by merging the sorted property slices. Two empty profiles are at
// distance 0 (identical).
func jaccardDistance(repo *profile.Repository, u, v profile.UserID) float64 {
	a := repo.Profile(u).Properties()
	b := repo.Profile(v).Properties()
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	inter := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			inter++
			i++
			j++
		}
	}
	union := len(a) + len(b) - inter
	return 1 - float64(inter)/float64(union)
}
