package baselines

import (
	"math"

	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/stats"
)

// Clustering is the clustering baseline: split the repository into B
// clusters with k-means over the (sparse, high-dimensional) profile vectors
// and take the near-mean user of each cluster as its representative. The
// paper used Scikit-Learn's k-means; this is a from-scratch equivalent with
// k-means++ seeding and Lloyd iterations, treating absent properties as
// zero coordinates (the conventional vector-space embedding — note this is
// exactly the closed-world reading Podium itself avoids, one reason the
// paper finds clustering identifies less meaningful groups).
type Clustering struct {
	Seed int64
	// MaxIter bounds Lloyd iterations; 0 selects 25.
	MaxIter int
}

// Name implements Selector.
func (Clustering) Name() string { return "Clustering" }

// Select implements Selector.
func (c Clustering) Select(ix *groups.Index, budget int) []profile.UserID {
	repo := ix.Repo()
	n := repo.NumUsers()
	if budget >= n {
		users := make([]profile.UserID, n)
		for i := range users {
			users[i] = profile.UserID(i)
		}
		return users
	}
	if budget <= 0 {
		return nil
	}
	maxIter := c.MaxIter
	if maxIter <= 0 {
		maxIter = 25
	}
	rng := stats.NewRand(c.Seed)
	dims := repo.NumProperties()
	k := budget

	// Squared norms of the sparse user vectors, reused in every distance.
	norms := make([]float64, n)
	for u := 0; u < n; u++ {
		repo.Profile(profile.UserID(u)).Each(func(_ profile.PropertyID, s float64) {
			norms[u] += s * s
		})
	}

	// distToCentroid computes ||x_u - c||² = ||x_u||² - 2·x_u·c + ||c||²
	// touching only the user's non-zeros.
	distToCentroid := func(u int, centroid []float64, centroidNorm float64) float64 {
		dot := 0.0
		repo.Profile(profile.UserID(u)).Each(func(p profile.PropertyID, s float64) {
			dot += s * centroid[p]
		})
		d := norms[u] - 2*dot + centroidNorm
		if d < 0 {
			d = 0 // numerical slack
		}
		return d
	}

	// k-means++ seeding over user vectors.
	centroids := make([][]float64, k)
	centroidNorm := make([]float64, k)
	setCentroidFromUser := func(ci, u int) {
		centroids[ci] = make([]float64, dims)
		repo.Profile(profile.UserID(u)).Each(func(p profile.PropertyID, s float64) {
			centroids[ci][p] = s
		})
		centroidNorm[ci] = norms[u]
	}
	setCentroidFromUser(0, rng.Intn(n))
	minDist := make([]float64, n)
	for u := 0; u < n; u++ {
		minDist[u] = distToCentroid(u, centroids[0], centroidNorm[0])
	}
	for ci := 1; ci < k; ci++ {
		var total float64
		for _, d := range minDist {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n) // all points coincide with some centroid
		} else {
			r := rng.Float64() * total
			for u := 0; u < n; u++ {
				r -= minDist[u]
				if r < 0 {
					pick = u
					break
				}
			}
		}
		setCentroidFromUser(ci, pick)
		for u := 0; u < n; u++ {
			if d := distToCentroid(u, centroids[ci], centroidNorm[ci]); d < minDist[u] {
				minDist[u] = d
			}
		}
	}

	// Lloyd iterations.
	assign := make([]int, n)
	for iter := 0; iter < maxIter; iter++ {
		moved := false
		for u := 0; u < n; u++ {
			best, bestD := 0, math.Inf(1)
			for ci := 0; ci < k; ci++ {
				if d := distToCentroid(u, centroids[ci], centroidNorm[ci]); d < bestD {
					best, bestD = ci, d
				}
			}
			if assign[u] != best || iter == 0 {
				if assign[u] != best {
					moved = true
				}
				assign[u] = best
			}
		}
		if iter > 0 && !moved {
			break
		}
		// Recompute centroids as cluster means.
		counts := make([]int, k)
		for ci := range centroids {
			for d := range centroids[ci] {
				centroids[ci][d] = 0
			}
		}
		for u := 0; u < n; u++ {
			ci := assign[u]
			counts[ci]++
			repo.Profile(profile.UserID(u)).Each(func(p profile.PropertyID, s float64) {
				centroids[ci][p] += s
			})
		}
		for ci := 0; ci < k; ci++ {
			if counts[ci] == 0 {
				continue // empty cluster keeps its previous centroid
			}
			inv := 1 / float64(counts[ci])
			var nn float64
			for d := range centroids[ci] {
				centroids[ci][d] *= inv
				nn += centroids[ci][d] * centroids[ci][d]
			}
			centroidNorm[ci] = nn
		}
	}

	// Near-mean representative per cluster.
	repDist := make([]float64, k)
	repUser := make([]int, k)
	for ci := range repUser {
		repUser[ci] = -1
		repDist[ci] = math.Inf(1)
	}
	for u := 0; u < n; u++ {
		ci := assign[u]
		if d := distToCentroid(u, centroids[ci], centroidNorm[ci]); d < repDist[ci] {
			repDist[ci] = d
			repUser[ci] = u
		}
	}
	var users []profile.UserID
	taken := make(map[int]bool)
	for ci := 0; ci < k; ci++ {
		if repUser[ci] >= 0 && !taken[repUser[ci]] {
			users = append(users, profile.UserID(repUser[ci]))
			taken[repUser[ci]] = true
		}
	}
	// Empty clusters can leave the selection short; pad with the users
	// farthest from their centroid (most under-served) for a full budget.
	if len(users) < budget {
		type cand struct {
			u int
			d float64
		}
		var rest []cand
		for u := 0; u < n; u++ {
			if !taken[u] {
				rest = append(rest, cand{u, distToCentroid(u, centroids[assign[u]], centroidNorm[assign[u]])})
			}
		}
		for len(users) < budget && len(rest) > 0 {
			best := 0
			for i := range rest {
				if rest[i].d > rest[best].d {
					best = i
				}
			}
			users = append(users, profile.UserID(rest[best].u))
			rest[best] = rest[len(rest)-1]
			rest = rest[:len(rest)-1]
		}
	}
	return users
}
