package baselines

import (
	"fmt"
	"math"
	"testing"

	"podium/internal/bucketing"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/stats"
)

func paperIndex(t *testing.T) *groups.Index {
	t.Helper()
	repo := profile.PaperExample()
	return groups.Build(repo, groups.Config{Method: bucketing.Fixed{Interior: []float64{0.4, 0.65}}, K: 3})
}

// clusteredIndex builds a repository with four obvious user communities for
// clustering tests.
func clusteredIndex(t *testing.T, perCluster int) *groups.Index {
	t.Helper()
	rng := stats.NewRand(5)
	repo := profile.NewRepository()
	for c := 0; c < 4; c++ {
		for i := 0; i < perCluster; i++ {
			u := repo.AddUser(fmt.Sprintf("c%d-%d", c, i))
			// Each community has its own pair of signature properties.
			repo.MustSetScore(u, fmt.Sprintf("sig%d-a", c), stats.Clamp(0.8+0.05*rng.NormFloat64(), 0, 1))
			repo.MustSetScore(u, fmt.Sprintf("sig%d-b", c), stats.Clamp(0.7+0.05*rng.NormFloat64(), 0, 1))
			repo.MustSetScore(u, "shared", stats.Clamp(0.5+0.05*rng.NormFloat64(), 0, 1))
		}
	}
	return groups.Build(repo, groups.Config{K: 3})
}

func assertValidSelection(t *testing.T, name string, users []profile.UserID, n, budget int) {
	t.Helper()
	if len(users) > budget {
		t.Fatalf("%s selected %d users for budget %d", name, len(users), budget)
	}
	seen := map[profile.UserID]bool{}
	for _, u := range users {
		if int(u) < 0 || int(u) >= n {
			t.Fatalf("%s selected out-of-range user %d", name, u)
		}
		if seen[u] {
			t.Fatalf("%s selected user %d twice", name, u)
		}
		seen[u] = true
	}
}

func TestAllSelectorsBasicContract(t *testing.T) {
	ix := clusteredIndex(t, 12)
	n := ix.Repo().NumUsers()
	selectors := []Selector{
		Podium{Weights: groups.WeightLBS, Coverage: groups.CoverSingle},
		Podium{Weights: groups.WeightLBS, Coverage: groups.CoverSingle, Lazy: true},
		Random{Seed: 1},
		Clustering{Seed: 1},
		Distance{},
	}
	for _, s := range selectors {
		for _, budget := range []int{0, 1, 4, 7, n, n + 5} {
			users := s.Select(ix, budget)
			assertValidSelection(t, s.Name(), users, n, budget)
			if budget >= 1 && budget <= n && len(users) != budget && s.Name() != "Clustering" {
				t.Fatalf("%s returned %d users for feasible budget %d", s.Name(), len(users), budget)
			}
			// Clustering may fall short only if padding failed, which it
			// should not for feasible budgets.
			if s.Name() == "Clustering" && budget <= n && len(users) != min(budget, n) {
				t.Fatalf("Clustering returned %d users for budget %d", len(users), budget)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	ix := paperIndex(t)
	a := Random{Seed: 42}.Select(ix, 3)
	b := Random{Seed: 42}.Select(ix, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different selections")
		}
	}
	c := Random{Seed: 43}.Select(ix, 3)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Log("different seeds coincided (possible but unlikely); not failing")
	}
}

func TestRandomUniformity(t *testing.T) {
	ix := paperIndex(t)
	counts := make([]int, 5)
	for seed := int64(0); seed < 2000; seed++ {
		for _, u := range (Random{Seed: seed}).Select(ix, 2) {
			counts[u]++
		}
	}
	// Each user should appear in about 2/5 of 2000 = 800 selections.
	for u, c := range counts {
		if c < 700 || c > 900 {
			t.Fatalf("user %d selected %d times, want ~800", u, c)
		}
	}
}

func TestClusteringFindsCommunities(t *testing.T) {
	ix := clusteredIndex(t, 15)
	users := Clustering{Seed: 3}.Select(ix, 4)
	if len(users) != 4 {
		t.Fatalf("selected %v", users)
	}
	// With four well-separated communities of 15 users each, a correct
	// k-means should pick one representative per community.
	communities := map[int]bool{}
	for _, u := range users {
		communities[int(u)/15] = true
	}
	if len(communities) != 4 {
		t.Fatalf("representatives cover %d communities, want 4 (users %v)", len(communities), users)
	}
}

func TestClusteringRepresentativeIsNearMean(t *testing.T) {
	// The representative must be a member of the population, not a centroid.
	ix := clusteredIndex(t, 10)
	users := Clustering{Seed: 7}.Select(ix, 4)
	for _, u := range users {
		if int(u) < 0 || int(u) >= ix.Repo().NumUsers() {
			t.Fatalf("non-user representative %d", u)
		}
	}
}

func TestDistanceAvoidsOverlap(t *testing.T) {
	// Two groups of near-identical users plus one loner with disjoint
	// properties: max-sum Jaccard must include the loner by its second pick.
	repo := profile.NewRepository()
	for i := 0; i < 5; i++ {
		u := repo.AddUser(fmt.Sprintf("a%d", i))
		repo.MustSetScore(u, "p1", 0.9)
		repo.MustSetScore(u, "p2", 0.8)
		repo.MustSetScore(u, "p3", 0.7)
	}
	loner := repo.AddUser("loner")
	repo.MustSetScore(loner, "q1", 0.5)
	ix := groups.Build(repo, groups.Config{K: 3})
	users := Distance{}.Select(ix, 2)
	found := false
	for _, u := range users {
		if u == loner {
			found = true
		}
	}
	if !found {
		t.Fatalf("distance-based selection %v missed the disjoint loner", users)
	}
}

func TestDistanceDeterministic(t *testing.T) {
	ix := clusteredIndex(t, 10)
	a := Distance{}.Select(ix, 5)
	b := Distance{}.Select(ix, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("distance baseline not deterministic")
		}
	}
}

func TestJaccardDistance(t *testing.T) {
	repo := profile.NewRepository()
	a := repo.AddUser("a")
	b := repo.AddUser("b")
	c := repo.AddUser("c")
	d := repo.AddUser("d")
	repo.MustSetScore(a, "p", 1)
	repo.MustSetScore(a, "q", 1)
	repo.MustSetScore(b, "q", 1)
	repo.MustSetScore(b, "r", 1)
	repo.MustSetScore(c, "x", 1)
	// a vs b: |∩|=1, |∪|=3 → distance 2/3.
	if got := jaccardDistance(repo, a, b); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("d(a,b) = %v, want 2/3", got)
	}
	// Disjoint sets: distance 1.
	if got := jaccardDistance(repo, a, c); got != 1 {
		t.Fatalf("d(a,c) = %v, want 1", got)
	}
	// Identical sets: distance 0.
	if got := jaccardDistance(repo, a, a); got != 0 {
		t.Fatalf("d(a,a) = %v, want 0", got)
	}
	// Both empty: defined as 0.
	if got := jaccardDistance(repo, d, d); got != 0 {
		t.Fatalf("d(empty,empty) = %v, want 0", got)
	}
}

func TestPodiumAdapterMatchesCore(t *testing.T) {
	ix := paperIndex(t)
	eager := Podium{Weights: groups.WeightLBS, Coverage: groups.CoverSingle}.Select(ix, 2)
	if len(eager) != 2 || eager[0] != 0 || eager[1] != 4 {
		t.Fatalf("Podium adapter selected %v, want [0 4]", eager)
	}
	lazy := Podium{Weights: groups.WeightLBS, Coverage: groups.CoverSingle, Lazy: true}.Select(ix, 2)
	for i := range eager {
		if eager[i] != lazy[i] {
			t.Fatal("lazy adapter diverges from eager")
		}
	}
}

func TestOptimalAdapter(t *testing.T) {
	ix := paperIndex(t)
	users := Optimal{Weights: groups.WeightLBS, Coverage: groups.CoverSingle}.Select(ix, 2)
	if len(users) != 2 || users[0] != 0 || users[1] != 4 {
		t.Fatalf("Optimal selected %v, want [0 4]", users)
	}
}
