// Package baselines implements the alternative user-selection algorithms
// Podium is evaluated against (Section 8.3): uniform random selection,
// clustering with near-mean representatives (a from-scratch sparse k-means
// replacing the paper's Scikit-Learn dependency), the distance-based
// S-Model greedy of Wu et al. maximizing pairwise Jaccard distances, and
// thin adapters over the core greedy and optimal solvers so experiments can
// treat every algorithm uniformly.
package baselines

import (
	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/stats"
)

// Selector is a user-selection algorithm under comparison.
type Selector interface {
	Name() string
	// Select chooses at most budget users from the indexed repository.
	Select(ix *groups.Index, budget int) []profile.UserID
}

// Podium adapts the core greedy (Algorithm 1) to the Selector interface.
type Podium struct {
	Weights  groups.WeightScheme
	Coverage groups.CoverageScheme
	// Lazy switches to the accelerated lazy-greedy variant.
	Lazy bool
}

// Name implements Selector.
func (p Podium) Name() string { return "Podium" }

// Select implements Selector.
func (p Podium) Select(ix *groups.Index, budget int) []profile.UserID {
	inst := groups.NewInstance(ix, p.Weights, p.Coverage, budget)
	if p.Lazy {
		return core.LazyGreedy(inst, budget).Users
	}
	return core.Greedy(inst, budget).Users
}

// Random selects users uniformly at random without replacement — "a common
// practice in user selection for opinion procurement".
type Random struct{ Seed int64 }

// Name implements Selector.
func (Random) Name() string { return "Random" }

// Select implements Selector.
func (r Random) Select(ix *groups.Index, budget int) []profile.UserID {
	n := ix.Repo().NumUsers()
	if budget > n {
		budget = n
	}
	rng := stats.NewRand(r.Seed)
	idx := stats.SampleWithoutReplacement(rng, n, budget)
	users := make([]profile.UserID, budget)
	for i, v := range idx {
		users[i] = profile.UserID(v)
	}
	return users
}

// Optimal adapts the exhaustive solver; usable only for toy sizes.
type Optimal struct {
	Weights  groups.WeightScheme
	Coverage groups.CoverageScheme
}

// Name implements Selector.
func (Optimal) Name() string { return "Optimal" }

// Select implements Selector.
func (o Optimal) Select(ix *groups.Index, budget int) []profile.UserID {
	inst := groups.NewInstance(ix, o.Weights, o.Coverage, budget)
	return core.Exhaustive(inst, budget).Users
}
