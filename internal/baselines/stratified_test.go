package baselines

import (
	"fmt"
	"testing"

	"podium/internal/groups"
	"podium/internal/profile"
)

// stratifiableIndex: 90 users with an "activity" property split 60/30 into
// two obvious strata (low/high), plus 10 users without the property.
func stratifiableIndex(t *testing.T) *groups.Index {
	t.Helper()
	repo := profile.NewRepository()
	for i := 0; i < 60; i++ {
		u := repo.AddUser(fmt.Sprintf("low-%02d", i))
		repo.MustSetScore(u, "activity", 0.1+0.001*float64(i))
	}
	for i := 0; i < 30; i++ {
		u := repo.AddUser(fmt.Sprintf("high-%02d", i))
		repo.MustSetScore(u, "activity", 0.85+0.001*float64(i))
	}
	for i := 0; i < 10; i++ {
		u := repo.AddUser(fmt.Sprintf("none-%02d", i))
		repo.MustSetScore(u, "other", 0.5)
	}
	return groups.Build(repo, groups.Config{K: 2})
}

func TestStratifiedProportionalAllocation(t *testing.T) {
	ix := stratifiableIndex(t)
	users := Stratified{Seed: 1, Property: "activity"}.Select(ix, 10)
	if len(users) != 10 {
		t.Fatalf("selected %d users", len(users))
	}
	// Population: 60 low / 30 high / 10 none → expect 6 / 3 / 1.
	var low, high, none int
	for _, u := range users {
		switch {
		case int(u) < 60:
			low++
		case int(u) < 90:
			high++
		default:
			none++
		}
	}
	if low != 6 || high != 3 || none != 1 {
		t.Fatalf("allocation low/high/none = %d/%d/%d, want 6/3/1", low, high, none)
	}
}

func TestStratifiedAutoPicksBroadestProperty(t *testing.T) {
	ix := stratifiableIndex(t)
	// Without naming a property, "activity" (90 holders) must be chosen
	// over "other" (10 holders): allocation mirrors the explicit run.
	auto := Stratified{Seed: 1}.Select(ix, 10)
	explicit := Stratified{Seed: 1, Property: "activity"}.Select(ix, 10)
	if len(auto) != len(explicit) {
		t.Fatalf("auto %v vs explicit %v", auto, explicit)
	}
	for i := range auto {
		if auto[i] != explicit[i] {
			t.Fatalf("auto property choice diverged: %v vs %v", auto, explicit)
		}
	}
}

func TestStratifiedUnknownPropertyFallsBackToRandom(t *testing.T) {
	ix := stratifiableIndex(t)
	users := Stratified{Seed: 5, Property: "does-not-exist"}.Select(ix, 7)
	assertValidSelection(t, "Stratified", users, ix.Repo().NumUsers(), 7)
	if len(users) != 7 {
		t.Fatalf("fallback selected %d users", len(users))
	}
}

func TestStratifiedContract(t *testing.T) {
	ix := stratifiableIndex(t)
	n := ix.Repo().NumUsers()
	for _, budget := range []int{0, 1, 5, n, n + 3} {
		users := Stratified{Seed: 2}.Select(ix, budget)
		assertValidSelection(t, "Stratified", users, n, max(budget, 0))
		want := budget
		if want > n {
			want = n
		}
		if budget >= 0 && len(users) != want {
			t.Fatalf("budget %d: selected %d", budget, len(users))
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestStratifiedDeterministic(t *testing.T) {
	ix := stratifiableIndex(t)
	a := Stratified{Seed: 9}.Select(ix, 10)
	b := Stratified{Seed: 9}.Select(ix, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different selections")
		}
	}
}

func TestDistanceMaxMinPrefersRemoteUsers(t *testing.T) {
	// One tight clique sharing properties and two mutually disjoint loners:
	// max-min must pick both loners before a second clique member.
	repo := profile.NewRepository()
	for i := 0; i < 6; i++ {
		u := repo.AddUser(fmt.Sprintf("clique-%d", i))
		repo.MustSetScore(u, "a", 0.9)
		repo.MustSetScore(u, "b", 0.8)
		repo.MustSetScore(u, "c", 0.7)
	}
	l1 := repo.AddUser("loner1")
	repo.MustSetScore(l1, "x", 0.5)
	l2 := repo.AddUser("loner2")
	repo.MustSetScore(l2, "y", 0.5)
	ix := groups.Build(repo, groups.Config{K: 3})

	users := DistanceMaxMin{}.Select(ix, 3)
	found := map[profile.UserID]bool{}
	for _, u := range users {
		found[u] = true
	}
	if !found[l1] || !found[l2] {
		t.Fatalf("max-min selection %v missed a loner", users)
	}
}

func TestDistanceMaxMinContract(t *testing.T) {
	ix := stratifiableIndex(t)
	n := ix.Repo().NumUsers()
	for _, budget := range []int{0, 1, 4, n, n + 2} {
		users := DistanceMaxMin{}.Select(ix, budget)
		assertValidSelection(t, "DistanceMaxMin", users, n, max(budget, 0))
	}
}

func TestAllocateProportionalSumsToBudget(t *testing.T) {
	strata := [][]profile.UserID{
		make([]profile.UserID, 7),
		make([]profile.UserID, 2),
		make([]profile.UserID, 1),
	}
	alloc := allocateProportional(strata, 5, 10)
	total := 0
	for i, a := range alloc {
		if a > len(strata[i]) {
			t.Fatalf("stratum %d over-allocated: %d > %d", i, a, len(strata[i]))
		}
		total += a
	}
	if total != 5 {
		t.Fatalf("allocated %d, want 5 (alloc %v)", total, alloc)
	}
	// Largest stratum gets the floor of its share (3 of 5 × 7/10 = 3.5).
	if alloc[0] < 3 {
		t.Fatalf("largest stratum got %d, want >= 3", alloc[0])
	}
}
