package experiments

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"time"

	"podium/internal/client"
	"podium/internal/faults"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/server"
	"podium/internal/shard"
	"podium/internal/synth"
)

// The replicated tier of the dist suite: where the in-process cells measure
// the GreeDi merge itself, this tier measures the *wire* — a coordinator over
// httptest-backed shard servers, every replica behind a deterministic ~5%
// fault injector, timed client-side. Three cells tell the replication story:
//
//	R=1 faulty            — the PR-8 baseline: faults heal via retries, but a
//	                        dead shard could only degrade.
//	R=2 faulty            — same faults, hedged fan-out across siblings.
//	R=2 faulty, one
//	replica of EVERY
//	shard killed          — the failure replication exists for. Coverage must
//	                        match the R=1 healthy run exactly (ratio 1.0) and
//	                        no select may report degraded.

// ReplicaRow is one cell of the replicated HTTP tier.
type ReplicaRow struct {
	Users     int     `json:"users"`
	Shards    int     `json:"shards"`
	Replicas  int     `json:"replicas"`
	FaultRate float64 `json:"fault_rate"`
	// ReplicaLoss marks the cell where one replica of every shard is killed
	// before the timed selects.
	ReplicaLoss bool `json:"replica_loss,omitempty"`
	Selects     int  `json:"selects"`
	// Degraded counts selects that reported degraded:true (must be 0 while
	// any replica of every shard survives).
	Degraded int     `json:"degraded"`
	P50Sec   float64 `json:"p50_sec"`
	P99Sec   float64 `json:"p99_sec"`
	Score    float64 `json:"score"`
	// Ratio is Score over the R=1 cell's score — 1.0 means replication (or
	// its absence) cost no coverage.
	Ratio float64 `json:"ratio"`
}

// runReplicatedTier appends the replicated HTTP cells to the report and
// table. Returns the worst-case replica-loss coverage ratio (R=2 with one
// replica of every shard dead, over the R=1 baseline).
func runReplicatedTier(cfg DistConfig, rep *DistReport, t *Table, mSel, mP99, mRat string) error {
	scfg := synth.ScaleLike(cfg.ReplicaUsers)
	scfg.Seed = cfg.Seed
	repo := synth.Generate(scfg).Repo
	gcfg := groups.Config{K: 3}
	ix := groups.Build(repo, gcfg)
	plan, err := shard.NewPlan(ix, gcfg, shard.Options{Shards: cfg.ReplicaShards, Seed: uint64(cfg.Seed)})
	if err != nil {
		return err
	}
	shardCfg := gcfg
	shardCfg.FixedBuckets = ix.BucketBoundaries()

	cells := []struct {
		replicas int
		loss     bool
	}{
		{1, false},
		{2, false},
		{2, true},
	}
	baseline := 0.0
	for _, cell := range cells {
		row, err := runReplicaCell(cfg, plan, repo, gcfg, shardCfg, cell.replicas, cell.loss)
		if err != nil {
			return err
		}
		if baseline == 0 {
			baseline = row.Score
		}
		if baseline > 0 {
			row.Ratio = row.Score / baseline
		}
		rep.Replicated = append(rep.Replicated, row)
		if cell.loss && (rep.ReplicaLossRatio == 0 || row.Ratio < rep.ReplicaLossRatio) {
			rep.ReplicaLossRatio = row.Ratio
		}
		name := fmt.Sprintf("|U|=%d S=%d R=%d faults=%.0f%%", row.Users, row.Shards, row.Replicas, row.FaultRate*100)
		if cell.loss {
			name += " -1 replica/shard"
		}
		t.Rows = append(t.Rows, Row{
			Name:   name,
			Values: map[string]float64{mSel: row.P50Sec, mP99: row.P99Sec, mRat: row.Ratio},
		})
	}
	return nil
}

// runReplicaCell stands up one replicated cluster, optionally kills one
// replica of every shard, and times cfg.ReplicaSelects selects client-side.
func runReplicaCell(cfg DistConfig, plan *shard.Plan, repo *profile.Repository, gcfg, shardCfg groups.Config, replicas int, loss bool) (ReplicaRow, error) {
	row := ReplicaRow{
		Users:       repo.NumUsers(),
		Shards:      len(plan.Shards),
		Replicas:    replicas,
		FaultRate:   cfg.FaultRate,
		ReplicaLoss: loss,
		Selects:     cfg.ReplicaSelects,
	}

	var (
		servers [][]*httptest.Server
		specs   []string
	)
	for si, sh := range plan.Shards {
		group := make([]*httptest.Server, replicas)
		urls := make([]string, replicas)
		for r := 0; r < replicas; r++ {
			inj := faults.New(faults.Config{
				Seed:  cfg.Seed + int64(31+si*replicas+r),
				Error: cfg.FaultRate * 0.6,
				Reset: cfg.FaultRate * 0.4,
			})
			srv := server.New(fmt.Sprintf("bench-shard%d-r%d", si, r), sh.Repo, shardCfg, nil)
			group[r] = httptest.NewServer(inj.Wrap(srv))
			urls[r] = group[r].URL
		}
		servers = append(servers, group)
		specs = append(specs, strings.Join(urls, "|"))
	}
	defer func() {
		for _, group := range servers {
			for _, ts := range group {
				ts.Close()
			}
		}
	}()

	// A dedicated transport, torn down with the cell: riding
	// http.DefaultClient would leave keep-alive connections (and their
	// goroutines) alive long after the cell's servers are gone, perturbing
	// whatever timing-sensitive work runs next in the same process.
	tr := &http.Transport{}
	defer tr.CloseIdleConnections()
	httpc := &http.Client{Transport: tr}

	base := server.New("bench-coordinator", repo, gcfg, nil)
	co := shard.NewCoordinator(base, specs, shard.CoordinatorOptions{
		HTTPClient: httpc,
		Resilience: client.ResilienceOptions{
			Retry: client.RetryOptions{
				MaxAttempts:        4,
				BaseBackoff:        time.Millisecond,
				MaxBackoff:         10 * time.Millisecond,
				Seed:               cfg.Seed + 1,
				RetryNonIdempotent: true, // selects are read-only POSTs
			},
		},
		Health: shard.HealthOptions{
			ProbeTimeout: time.Second,
			MinHedge:     5 * time.Millisecond,
			MaxHedge:     100 * time.Millisecond,
			Seed:         cfg.Seed + 2,
		},
	})
	front := httptest.NewServer(co)
	defer front.Close()
	c := client.New(front.URL, httpc)

	// One warm-up select populates the health registry and the coordinator's
	// name table before anything is timed or killed.
	if _, err := c.Select(client.SelectRequest{Budget: cfg.Budget}); err != nil {
		return row, fmt.Errorf("experiments: replicated warm-up: %w", err)
	}
	if loss {
		for _, group := range servers {
			group[0].CloseClientConnections()
			group[0].Close()
		}
	}

	lat := make([]float64, 0, cfg.ReplicaSelects)
	for i := 0; i < cfg.ReplicaSelects; i++ {
		start := time.Now()
		sel, err := c.Select(client.SelectRequest{Budget: cfg.Budget})
		if err != nil {
			return row, fmt.Errorf("experiments: replicated select %d (R=%d loss=%v): %w", i, replicas, loss, err)
		}
		lat = append(lat, time.Since(start).Seconds())
		if sel.Degraded {
			row.Degraded++
		}
		row.Score = sel.Score
	}
	sort.Float64s(lat)
	row.P50Sec = lat[len(lat)/2]
	row.P99Sec = lat[(len(lat)*99)/100]
	return row, nil
}
