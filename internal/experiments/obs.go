// Observability-overhead benchmark: the same snapshot server driven with
// request instrumentation enabled (the default) and disabled
// (SetObsEnabled(false), which skips the counter/histogram wrapper and the
// engine stage timers entirely). The acceptance gate is that instrumentation
// costs < 2% on both uncached select latency and read throughput.
//
// Two workloads isolate the two instrumented paths:
//
//   - selects with per-request priority feedback, which bypass the memoized
//     fast path and run the greedy engine (stage timers included) every time;
//   - the read-heavy dashboard mix of the server suite at 0% writes, which
//     exercises the per-route counter/histogram wrapper at maximum request
//     rate (status/groups/distribution are the cheapest handlers, so the
//     per-request overhead is proportionally largest there).
//
// Both modes are measured interleaved, best-of-Trials, so a background
// hiccup hits one trial of one mode rather than biasing a whole side.
package experiments

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"podium/internal/groups"
	"podium/internal/server"
)

// ObsConfig parameterizes the observability-overhead benchmark.
type ObsConfig struct {
	Seed int64
	// Users / Props / PropsPerUser shape the population (server-suite
	// defaults: 2000 / 2500 / 8).
	Users, Props, PropsPerUser int
	// Clients drives the read-throughput phase (default 8).
	Clients int
	// Duration is the measured read drive per trial per mode (default 1s).
	Duration time.Duration
	// SelectIters is the number of uncached selects per trial per mode
	// (default 60).
	SelectIters int
	// Trials is the interleaved repetition count; each mode's result is its
	// best trial (default 3).
	Trials int
	Budget int
	// Dir holds the repository log; a temp dir is created when empty.
	Dir string
}

// ObsRunStats is one mode's best-trial measurements.
type ObsRunStats struct {
	SelectP50Ms   float64 `json:"select_p50_ms"`
	SelectMeanMs  float64 `json:"select_mean_ms"`
	ReadQPS       float64 `json:"read_qps"`
	SelectSamples int     `json:"select_samples"`
	ReadOps       int     `json:"read_ops"`
}

// ObsReport is the machine-readable result, serialized to BENCH_obs.json.
// MaxOverheadFrac is the acceptance headline: the worse of the select-latency
// and read-QPS overhead fractions, floored at zero (instrumentation measuring
// faster than baseline is noise, not negative cost).
type ObsReport struct {
	Suite          string      `json:"suite"`
	Workload       string      `json:"workload"`
	Users          int         `json:"users"`
	Properties     int         `json:"properties"`
	Groups         int         `json:"groups"`
	Clients        int         `json:"clients"`
	Budget         int         `json:"budget"`
	Seed           int64       `json:"seed"`
	NumCPU         int         `json:"num_cpu"`
	Trials         int         `json:"trials"`
	SelectIters    int         `json:"select_iters"`
	DurationSec    float64     `json:"duration_sec"`
	Enabled        ObsRunStats `json:"enabled"`
	Disabled       ObsRunStats `json:"disabled"`
	// SelectOverheadFrac = enabled mean / disabled mean − 1.
	SelectOverheadFrac float64 `json:"select_overhead_frac"`
	// ReadOverheadFrac = 1 − enabled QPS / disabled QPS.
	ReadOverheadFrac float64 `json:"read_overhead_frac"`
	MaxOverheadFrac  float64 `json:"max_overhead_frac"`
	// MetricFamilies counts the families the /api/v1/metrics scrape exposed
	// after the instrumented runs — a sanity check that the enabled mode
	// actually recorded.
	MetricFamilies int `json:"metric_families"`
}

func (c ObsConfig) withDefaults() ObsConfig {
	if c.Users <= 0 {
		c.Users = 2000
	}
	if c.Props <= 0 {
		c.Props = 2500
	}
	if c.PropsPerUser <= 0 {
		c.PropsPerUser = 8
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.SelectIters <= 0 {
		c.SelectIters = 60
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.Budget <= 0 {
		c.Budget = 8
	}
	return c
}

// obsSelects runs iters uncached selections (per-request priority feedback
// cycles through the group universe, defeating the memoized path) and
// returns per-request latencies in seconds.
func obsSelects(h http.Handler, cfg ObsConfig, numGroups, iters int) []float64 {
	lat := make([]float64, 0, iters)
	for i := 0; i < iters; i++ {
		body := fmt.Sprintf(`{"budget":%d,"feedback":{"priority":[%d]}}`,
			cfg.Budget, i%numGroups)
		req := httptest.NewRequest(http.MethodPost, "/api/v1/select", strings.NewReader(body))
		rec := httptest.NewRecorder()
		t0 := time.Now()
		h.ServeHTTP(rec, req)
		lat = append(lat, time.Since(t0).Seconds())
		if rec.Code != http.StatusOK {
			panic(fmt.Sprintf("obs bench: select -> %d: %s", rec.Code, rec.Body.String()))
		}
	}
	return lat
}

func meanMs(lat []float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range lat {
		sum += v
	}
	return sum / float64(len(lat)) * 1000
}

// RunObsSuite measures instrumentation overhead and returns the rendered
// table plus the JSON report.
func RunObsSuite(cfg ObsConfig) (*Table, *ObsReport, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "podium-bench-obs")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
	}

	scfg := ServerConfig{
		Seed: cfg.Seed, Users: cfg.Users, Props: cfg.Props,
		PropsPerUser: cfg.PropsPerUser, Clients: cfg.Clients,
		Duration: cfg.Duration, Budget: cfg.Budget,
	}.withDefaults()
	scfg.WritePct = 0 // read-only drive isolates the request wrapper's cost

	path := filepath.Join(dir, "obs.plog")
	if err := sparseLog(path, scfg); err != nil {
		return nil, nil, err
	}
	srv, err := server.NewMutableOpts("bench-obs", path, groups.Config{K: 3}, nil,
		server.MutableOptions{BatchWindow: 10 * time.Millisecond})
	if err != nil {
		return nil, nil, err
	}
	defer srv.Close()
	numGroups := srv.Snapshot().Index().NumGroups()

	// Warm both paths (JIT-free, but page cache, memo tables and the first
	// histogram allocations should not land in a measured trial).
	for _, on := range []bool{true, false} {
		srv.SetObsEnabled(on)
		obsSelects(srv, cfg, numGroups, 4)
	}

	best := map[bool]*ObsRunStats{true: {}, false: {}}
	for trial := 0; trial < cfg.Trials; trial++ {
		for _, on := range []bool{false, true} {
			srv.SetObsEnabled(on)
			lat := obsSelects(srv, cfg, numGroups, cfg.SelectIters)
			b := best[on]
			if m := meanMs(lat); b.SelectSamples == 0 || m < b.SelectMeanMs {
				b.SelectMeanMs = m
				b.SelectP50Ms = percentileMs(lat, 0.50)
				b.SelectSamples = len(lat)
			}
			reads, _, elapsed := driveClients(srv, scfg)
			if qps := float64(len(reads)) / elapsed; qps > b.ReadQPS {
				b.ReadQPS = qps
				b.ReadOps = len(reads)
			}
		}
	}
	srv.SetObsEnabled(true)

	// Sanity: the instrumented runs must be visible on the scrape.
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/v1/metrics", nil))
	if rec.Code != http.StatusOK {
		return nil, nil, fmt.Errorf("obs bench: metrics scrape -> %d", rec.Code)
	}
	families := 0
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families++
		}
	}

	en, dis := best[true], best[false]
	rep := &ObsReport{
		Suite:       "obs",
		Workload:    "uncached feedback selects + read-only dashboard mix (0% writes)",
		Users:       cfg.Users,
		Properties:  srv.Repository().NumProperties(),
		Groups:      numGroups,
		Clients:     cfg.Clients,
		Budget:      cfg.Budget,
		Seed:        cfg.Seed,
		NumCPU:      runtime.NumCPU(),
		Trials:      cfg.Trials,
		SelectIters: cfg.SelectIters,
		DurationSec: cfg.Duration.Seconds(),
		Enabled:     *en,
		Disabled:    *dis,
	}
	if dis.SelectMeanMs > 0 {
		rep.SelectOverheadFrac = en.SelectMeanMs/dis.SelectMeanMs - 1
	}
	if dis.ReadQPS > 0 {
		rep.ReadOverheadFrac = 1 - en.ReadQPS/dis.ReadQPS
	}
	rep.MaxOverheadFrac = rep.SelectOverheadFrac
	if rep.ReadOverheadFrac > rep.MaxOverheadFrac {
		rep.MaxOverheadFrac = rep.ReadOverheadFrac
	}
	if rep.MaxOverheadFrac < 0 {
		rep.MaxOverheadFrac = 0
	}
	rep.MetricFamilies = families

	const (
		mSelMean = "Select mean (ms)"
		mSelP50  = "Select p50 (ms)"
		mQPS     = "Read QPS"
	)
	t := &Table{
		Title:   fmt.Sprintf("Observability overhead, %d clients (|U|=%d, |G|=%d)", cfg.Clients, cfg.Users, numGroups),
		Metrics: []string{mSelMean, mSelP50, mQPS},
		Rows: []Row{
			{Name: "obs-enabled", Values: map[string]float64{
				mSelMean: en.SelectMeanMs, mSelP50: en.SelectP50Ms, mQPS: en.ReadQPS}},
			{Name: "obs-disabled", Values: map[string]float64{
				mSelMean: dis.SelectMeanMs, mSelP50: dis.SelectP50Ms, mQPS: dis.ReadQPS}},
		},
	}
	return t, rep, nil
}
