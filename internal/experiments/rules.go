package experiments

import (
	"fmt"
	"runtime"

	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/synth"
)

// RulesConfig parameterizes the selection-rule suite: every registered rule
// timed on the same prepared instance at each population tier, with the
// coverage/fairness trade-off each rule's credit schedule buys. Tiers default
// to 10K/100K users, matching the scale suite, so per-rule latency lands on
// the same axes as the columnar datapath numbers.
type RulesConfig struct {
	Seed   int64
	Budget int
	// Tiers is the population sweep (defaults to 10K and 100K users).
	Tiers []int
	// Parallelism of the timed selects (0 = NumCPU).
	Parallelism int
	// Repetitions per timing; the minimum is reported (defaults to 3).
	Repetitions int
}

func (c RulesConfig) withDefaults() RulesConfig {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if len(c.Tiers) == 0 {
		c.Tiers = []int{10000, 100000}
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 3
	}
	return c
}

// RulesRow is one (tier, rule) measurement.
type RulesRow struct {
	Users int    `json:"users"`
	Rule  string `json:"rule"`
	// Default marks the registry default (coverage) — the row every other
	// rule in the tier is traded off against.
	Default bool `json:"default,omitempty"`
	// SelectSec is one selection under the rule on a prepared instance
	// (base marginals memoized), minimum over Repetitions.
	SelectSec float64 `json:"select_sec"`
	// VsDefault divides SelectSec by the tier's default-rule SelectSec:
	// the latency cost of asking for a non-default objective.
	VsDefault float64 `json:"vs_default"`
	// Score is the paper's coverage objective score_𝒢 of the rule's picks —
	// NOT the rule's own credit sum — so rules are comparable on one axis.
	Score float64 `json:"score"`
	// CoverageFrac normalizes Score by the instance's MaxScore ceiling.
	CoverageFrac float64 `json:"coverage_frac"`
	// FairnessFrac is the fraction of coverable groups (cov(G) > 0) with at
	// least one selected member — the breadth axis rules like fairness-floor
	// and maxcov optimize at the expense of weighted coverage depth.
	FairnessFrac float64 `json:"fairness_frac"`
	// GroupsCovered / GroupsCoverable are FairnessFrac's raw counts.
	GroupsCovered   int `json:"groups_covered"`
	GroupsCoverable int `json:"groups_coverable"`
}

// RulesReport is serialized to BENCH_rules.json: the per-rule latency and
// trade-off trajectory future PRs regress against.
type RulesReport struct {
	Suite       string `json:"suite"`
	Dataset     string `json:"dataset"`
	Budget      int    `json:"budget"`
	Seed        int64  `json:"seed"`
	Parallelism int    `json:"parallelism"`
	NumCPU      int    `json:"num_cpu"`
	// Rules lists the registry order the rows cycle through.
	Rules []string   `json:"rules"`
	Rows  []RulesRow `json:"rows"`
	// MaxVsDefault is the worst per-rule latency multiple over the default
	// rule across the sweep — the headline cost of objective pluggability.
	MaxVsDefault float64 `json:"max_vs_default"`
	// MinDefaultCoverageFrac tracks the default rule's normalized score so
	// regressions in the baseline objective are visible alongside the rules.
	MinDefaultCoverageFrac float64 `json:"min_default_coverage_frac"`
}

// RunRulesSuite times every registered selection rule per tier and reports
// each rule's coverage/fairness trade-off. Selections run on the scale
// dataset's LBS/Single instance — the same shape the server serves — with
// base marginals pre-memoized, so the timings isolate the rule's credit
// schedule from snapshot preparation.
func RunRulesSuite(cfg RulesConfig) (*Table, *RulesReport, error) {
	cfg = cfg.withDefaults()
	names := core.RuleNames()

	t := &Table{
		Title:   fmt.Sprintf("Selection rules (budget=%d, parallelism=%d)", cfg.Budget, cfg.Parallelism),
		Metrics: []string{"Select (ms)", "Vs default", "Coverage frac", "Fairness frac"},
	}
	rep := &RulesReport{
		Suite:       "rules",
		Dataset:     "scale (profiles-only synthetic)",
		Budget:      cfg.Budget,
		Seed:        cfg.Seed,
		Parallelism: cfg.Parallelism,
		NumCPU:      runtime.NumCPU(),
		Rules:       names,
	}

	for _, n := range cfg.Tiers {
		rows, err := runRulesTier(cfg, n)
		if err != nil {
			return nil, nil, err
		}
		for _, row := range rows {
			rep.Rows = append(rep.Rows, row)
			if row.VsDefault > rep.MaxVsDefault {
				rep.MaxVsDefault = row.VsDefault
			}
			if row.Default && (rep.MinDefaultCoverageFrac == 0 || row.CoverageFrac < rep.MinDefaultCoverageFrac) {
				rep.MinDefaultCoverageFrac = row.CoverageFrac
			}
			t.Rows = append(t.Rows, Row{
				Name: fmt.Sprintf("|U|=%d %s", n, row.Rule),
				Values: map[string]float64{
					"Select (ms)":   row.SelectSec * 1e3,
					"Vs default":    row.VsDefault,
					"Coverage frac": row.CoverageFrac,
					"Fairness frac": row.FairnessFrac,
				},
			})
		}
	}
	return t, rep, nil
}

func runRulesTier(cfg RulesConfig, n int) ([]RulesRow, error) {
	ds := synth.Generate(synth.ScaleLike(n))
	ix := groups.Build(ds.Repo, groups.Config{K: 3})
	ix.Freeze()
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
	inst.BaseMarginals() // memoize, as the server's per-epoch instance cache does
	maxScore := inst.MaxScore()
	coverable := 0
	for g := range inst.Cov {
		if inst.Cov[g] > 0 {
			coverable++
		}
	}

	opt := core.Options{Parallelism: cfg.Parallelism}
	var rows []RulesRow
	var defaultSec float64
	for _, name := range core.RuleNames() {
		rule := core.MustRule(name)
		row := RulesRow{Users: n, Rule: name, Default: rule.IsDefault()}

		// The default rule runs the legacy engine — exactly the path a
		// rule-less request takes — so VsDefault charges only the credit
		// schedule, never a dispatch difference.
		var users []profile.UserID
		sel := func() {
			if rule.IsDefault() {
				users = core.GreedyOpts(inst, cfg.Budget, opt).Users
				return
			}
			res, err := core.GreedyRule(inst, cfg.Budget, rule, opt)
			if err != nil {
				panic(err)
			}
			users = res.Users
		}
		sel() // warm
		row.SelectSec = timeMin(cfg.Repetitions, sel)
		if rule.IsDefault() {
			defaultSec = row.SelectSec
		}
		if defaultSec > 0 {
			row.VsDefault = row.SelectSec / defaultSec
		}

		row.Score = inst.Score(users)
		if maxScore > 0 {
			row.CoverageFrac = row.Score / maxScore
		}
		seen := make(map[groups.GroupID]bool)
		for _, u := range users {
			for _, g := range inst.Index.UserGroups(u) {
				if inst.Cov[g] > 0 {
					seen[g] = true
				}
			}
		}
		row.GroupsCovered = len(seen)
		row.GroupsCoverable = coverable
		if coverable > 0 {
			row.FairnessFrac = float64(len(seen)) / float64(coverable)
		}
		rows = append(rows, row)
	}
	return rows, nil
}
