package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"podium/internal/profile"
	"podium/internal/synth"
)

// Shared small datasets: generation and index construction dominate test
// time, so build each once.
var (
	datasetOnce sync.Once
	taSmall     *synth.Dataset
	ylSmall     *synth.Dataset
)

func testDatasets(t *testing.T) (*synth.Dataset, *synth.Dataset) {
	t.Helper()
	datasetOnce.Do(func() {
		taSmall = synth.Generate(synth.TripAdvisorLike(300))
		ylSmall = synth.Generate(synth.YelpLike(400))
	})
	return taSmall, ylSmall
}

func rowByName(t *testing.T, tab *Table, name string) Row {
	t.Helper()
	for _, r := range tab.Rows {
		if r.Name == name {
			return r
		}
	}
	t.Fatalf("no row %q in %q", name, tab.Title)
	return Row{}
}

func TestTableNormalized(t *testing.T) {
	tab := &Table{
		Metrics: []string{"a", "b"},
		Rows: []Row{
			{Name: "x", Values: map[string]float64{"a": 2, "b": 0}},
			{Name: "y", Values: map[string]float64{"a": 1, "b": 0}},
		},
	}
	n := tab.Normalized()
	if n.Rows[0].Get("a") != 1 || n.Rows[1].Get("a") != 0.5 {
		t.Fatalf("normalized = %+v", n.Rows)
	}
	if n.Rows[0].Get("b") != 0 {
		t.Fatalf("zero column altered: %v", n.Rows[0].Get("b"))
	}
	if tab.Rows[0].Get("a") != 2 {
		t.Fatal("Normalized mutated the source table")
	}
}

func TestTableWriteCSV(t *testing.T) {
	tab := &Table{
		Metrics: []string{"m1", "m2"},
		Rows: []Row{
			{Name: "a", Values: map[string]float64{"m1": 1.5, "m2": 0.25}},
			{Name: "b, quoted", Values: map[string]float64{"m1": 2}},
		},
	}
	var buf bytes.Buffer
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "name,m1,m2" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "a,1.5,0.25" {
		t.Fatalf("row = %q", lines[1])
	}
	if !strings.Contains(lines[2], `"b, quoted"`) {
		t.Fatalf("comma in name not quoted: %q", lines[2])
	}
	if !strings.Contains(lines[2], ",2,0") {
		t.Fatalf("missing metric defaults to 0: %q", lines[2])
	}
}

func TestTableLeaderAndRender(t *testing.T) {
	tab := &Table{
		Title:   "T",
		Metrics: []string{"m"},
		Rows: []Row{
			{Name: "x", Values: map[string]float64{"m": 1}},
			{Name: "y", Values: map[string]float64{"m": 3}},
		},
	}
	if got := tab.Leader("m"); got != "y" {
		t.Fatalf("Leader = %q", got)
	}
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T", "m", "x", "y", "3.0000"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

// E1/E3 shape: Podium outperforms the alternatives in every intrinsic
// metric, on both datasets (the paper's headline finding).
func TestIntrinsicPodiumWinsEveryMetric(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset-scale test")
	}
	ta, yl := testDatasets(t)
	for _, ds := range []*synth.Dataset{ta, yl} {
		tab := RunIntrinsic(IntrinsicConfig{Dataset: ds, Seed: 7})
		// Strict leads on the metrics Podium's objective targets (directly
		// or via top-group coverage).
		for _, m := range []string{MetricTotalScore, MetricTopK, MetricIntersected} {
			if leader := tab.Leader(m); leader != "Podium" {
				tab.Render(testWriter{t})
				t.Fatalf("%s: %s led by %s, want Podium", ds.Name, m, leader)
			}
		}
		// Distribution similarity is not optimized directly (the paper calls
		// Podium's lead there "surprising"); on small synthetic instances a
		// baseline may tie it, so require Podium within 2% of the leader.
		norm := tab.Normalized()
		podium := rowByName(t, norm, "Podium")
		if podium.Get(MetricDistribution) < 0.98 {
			norm.Render(testWriter{t})
			t.Fatalf("%s: Podium at %.3f of the distribution-similarity leader, want >= 0.98",
				ds.Name, podium.Get(MetricDistribution))
		}
	}
}

// E1/E3 shape: the Podium-vs-baseline gap in total score is larger on the
// Yelp-like dataset ("for this dataset our results are better than the
// baselines by a significantly larger gap").
func TestIntrinsicYelpGapLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset-scale test")
	}
	ta, yl := testDatasets(t)
	gap := func(ds *synth.Dataset) float64 {
		tab := RunIntrinsic(IntrinsicConfig{Dataset: ds, Seed: 7}).Normalized()
		// Best non-Podium normalized total score; gap = 1 - that.
		best := 0.0
		for _, r := range tab.Rows {
			if r.Name != "Podium" && r.Get(MetricTotalScore) > best {
				best = r.Get(MetricTotalScore)
			}
		}
		return 1 - best
	}
	if gap(yl) <= gap(ta)*0.8 {
		t.Logf("warning: yelp-like gap %.3f vs tripadvisor-like %.3f — weaker than the paper's trend", gap(yl), gap(ta))
	}
}

// E2/E4 shape: Podium leads the representativeness opinion metrics; Random
// is allowed to win rating variance (the paper's stated exception).
func TestOpinionShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset-scale test")
	}
	ta, yl := testDatasets(t)
	for _, tc := range []struct {
		ds         *synth.Dataset
		usefulness bool
	}{{ta, false}, {yl, true}} {
		tab := RunOpinion(OpinionConfig{Dataset: tc.ds, Seed: 7, IncludeUsefulness: tc.usefulness})
		podium := rowByName(t, tab, "Podium")
		random := rowByName(t, tab, "Random")
		if podium.Get(MetricTopicSentiment) < random.Get(MetricTopicSentiment) {
			t.Errorf("%s: Random beats Podium on topic+sentiment (%v vs %v)",
				tc.ds.Name, random.Get(MetricTopicSentiment), podium.Get(MetricTopicSentiment))
		}
		if podium.Get(MetricRatingSim) <= 0 || podium.Get(MetricRatingSim) > 1 {
			t.Errorf("%s: rating similarity out of range: %v", tc.ds.Name, podium.Get(MetricRatingSim))
		}
		if tc.usefulness {
			if _, ok := podium.Values[MetricUsefulness]; !ok {
				t.Errorf("%s: usefulness column missing", tc.ds.Name)
			}
		}
	}
}

// E5 shape: feedback-group coverage decreases as the priority set grows, and
// the intrinsic metrics never exceed the no-feedback baseline by much.
func TestCustomizationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset-scale test")
	}
	_, yl := testDatasets(t)
	tab := RunCustomization(CustomizationConfig{
		Dataset: yl, Seed: 11, Repetitions: 5, Sizes: []int{20, 40, 60, 80},
	})
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tab.Rows))
	}
	base := tab.Rows[0]
	if base.Name != "No feedback" {
		t.Fatalf("first row = %q", base.Name)
	}
	if base.Get(MetricFeedbackGroups) != 1 {
		t.Fatalf("baseline feedback coverage = %v, want 1 (no priority groups)", base.Get(MetricFeedbackGroups))
	}
	prev := 2.0
	for _, r := range tab.Rows[1:] {
		fc := r.Get(MetricFeedbackGroups)
		if fc > prev+0.05 {
			t.Fatalf("feedback coverage not decreasing: %v after %v", fc, prev)
		}
		prev = fc
		// Customization restricts the selection: total score at most the
		// unconstrained optimum's (greedy noise tolerated).
		if r.Get(MetricTotalScore) > base.Get(MetricTotalScore)*1.05 {
			t.Fatalf("customized score %v exceeds baseline %v", r.Get(MetricTotalScore), base.Get(MetricTotalScore))
		}
	}
}

// E8: the empirical approximation ratio is near-optimal, as in the paper's
// 0.998 report — far above the (1-1/e) floor.
func TestApproxRatioNearOptimal(t *testing.T) {
	if testing.Short() {
		t.Skip("exponential baseline")
	}
	tab := RunApproxRatio(ApproxConfig{Users: 30, Budget: 4, Seed: 3, Repetitions: 3})
	mean := rowByName(t, tab, "mean").Get("Ratio")
	if mean < 0.95 {
		t.Fatalf("mean ratio = %v, want near-optimal", mean)
	}
	if mean > 1+1e-9 {
		t.Fatalf("mean ratio = %v exceeds 1 — optimal solver is broken", mean)
	}
}

// E6/E7 smoke: sweeps produce a timing per selector per point.
func TestScalabilitySweeps(t *testing.T) {
	if testing.Short() {
		t.Skip("timing sweep")
	}
	cfg := ScalabilityConfig{
		Budget:       4,
		Seed:         5,
		UserCounts:   []int{80, 160},
		ProfileProps: []int{25, 50},
		FixedUsers:   120,
	}
	users := RunScalabilityUsers(cfg)
	if len(users.Rows) != 2 || len(users.Metrics) != 3 {
		t.Fatalf("users sweep shape: %d rows, %d metrics", len(users.Rows), len(users.Metrics))
	}
	for _, r := range users.Rows {
		for _, m := range users.Metrics {
			if r.Get(m) < 0 {
				t.Fatalf("negative timing %v", r.Get(m))
			}
		}
	}
	props := RunScalabilityProfile(cfg)
	if len(props.Rows) != 2 {
		t.Fatalf("profile sweep rows = %d", len(props.Rows))
	}
}

// E10 smoke + invariants.
func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset-scale test")
	}
	ta, _ := testDatasets(t)
	cfg := AblationConfig{Dataset: ta}

	b := RunBucketingAblation(cfg)
	if len(b.Rows) != 6 {
		t.Fatalf("bucketing rows = %d, want 6 methods", len(b.Rows))
	}
	for _, r := range b.Rows {
		if r.Get("Groups") <= 0 {
			t.Fatalf("method %s produced no groups", r.Name)
		}
	}

	s := RunSchemeAblation(cfg)
	if len(s.Rows) != 6 {
		t.Fatalf("scheme rows = %d, want 3×2", len(s.Rows))
	}
	// LBS+Single optimizes the reference objective: no other scheme may
	// beat it on the reference score.
	ref := rowByName(t, s, "LBS+Single").Get(MetricTotalScore)
	for _, r := range s.Rows {
		if r.Get(MetricTotalScore) > ref+1e-6 {
			t.Fatalf("%s beats LBS+Single on its own objective", r.Name)
		}
	}

	l := RunLazyAblation(cfg)
	eager := rowByName(t, l, "Eager")
	lazy := rowByName(t, l, "Lazy")
	if lazy.Get("Identical Output") != 1 {
		t.Fatal("lazy output differs from eager")
	}
	if eager.Get("Evaluations") <= 0 || lazy.Get("Evaluations") <= 0 {
		t.Fatal("lazy ablation did not record work counts")
	}
	t.Logf("link traversals: eager %.0f, lazy %.0f", eager.Get("Evaluations"), lazy.Get("Evaluations"))
}

// E11 (future work §10): weight noise trades solution quality for output
// variety; zero noise has zero variety and the best score, and variety is
// non-decreasing in σ (checked loosely — it is stochastic).
func TestNoiseAblationShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset-scale test")
	}
	ta, _ := testDatasets(t)
	tab := RunNoiseAblation(NoiseConfig{
		Dataset: ta, Seed: 13, Repetitions: 6, Levels: []float64{0, 0.5, 1.5},
	})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	zero := tab.Rows[0]
	if zero.Get("Output Variety") != 0 {
		t.Fatalf("zero-noise variety = %v", zero.Get("Output Variety"))
	}
	for _, r := range tab.Rows[1:] {
		if r.Get(MetricTotalScore) > zero.Get(MetricTotalScore)+1e-6 {
			t.Fatalf("noisy mean score %v beats exact greedy %v", r.Get(MetricTotalScore), zero.Get(MetricTotalScore))
		}
	}
	if tab.Rows[2].Get("Output Variety") <= 0 {
		t.Fatal("heavy noise produced no output variety")
	}
}

// E15 shape (§8.4 closing remark): as B increases every algorithm's
// coverage improves and Podium's gap over the best baseline shrinks (or at
// least does not grow), while Podium stays ahead.
func TestBudgetSweepShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset-scale test")
	}
	ta, _ := testDatasets(t)
	tab := RunBudgetSweep(BudgetSweepConfig{Dataset: ta, Seed: 7, Budgets: []int{2, 8, 32}})
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	prevPodium := -1.0
	for _, r := range tab.Rows {
		p := r.Get("Podium")
		if p < prevPodium-1e-9 {
			t.Fatalf("Podium coverage decreased with budget: %v after %v", p, prevPodium)
		}
		prevPodium = p
		if r.Get("Gap") < -0.02 {
			t.Fatalf("%s: Podium behind best baseline by %v", r.Name, -r.Get("Gap"))
		}
	}
	// Gap at B=32 no larger than at B=2 (the paper's "gaps slightly
	// decrease").
	if tab.Rows[2].Get("Gap") > tab.Rows[0].Get("Gap")+0.05 {
		t.Fatalf("gap grew with budget: %v -> %v", tab.Rows[0].Get("Gap"), tab.Rows[2].Get("Gap"))
	}
}

// E16: over random subsets, intrinsically more diverse subsets procure more
// diverse opinions — positive correlation, the paper's closing claim of
// §8.4 quantified.
func TestDiversityTransferPositive(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset-scale test")
	}
	ta, _ := testDatasets(t)
	tab := RunDiversityTransfer(TransferConfig{Dataset: ta, Seed: 21, Samples: 40})
	r := tab.Rows[0]
	if got := r.Get("Topic+Sentiment r"); got <= 0 {
		t.Fatalf("topic correlation = %v, want positive", got)
	}
	if got := r.Get("Rating Dist Sim r"); got <= -0.2 {
		t.Fatalf("rating-similarity correlation = %v, unexpectedly negative", got)
	}
}

// E14 shape: hold-out evaluation keeps every metric in range and the
// excluded-category selection cannot trivially collapse (each algorithm
// still returns a full budget).
func TestHoldOutShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset-scale test")
	}
	ta, _ := testDatasets(t)
	tab := RunHoldOut(HoldOutConfig{Dataset: ta, Seed: 7, Destinations: 8})
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, r := range tab.Rows {
		ts := r.Get(MetricTopicSentiment)
		if ts < 0 || ts > 1 {
			t.Fatalf("%s: topic coverage %v out of range", r.Name, ts)
		}
		rs := r.Get(MetricRatingSim)
		if rs < 0 || rs > 1 {
			t.Fatalf("%s: rating similarity %v out of range", r.Name, rs)
		}
	}
	podium := rowByName(t, tab, "Podium")
	random := rowByName(t, tab, "Random")
	if podium.Get(MetricTopicSentiment) < random.Get(MetricTopicSentiment)*0.8 {
		t.Fatalf("hold-out: Podium topic coverage %v far below Random %v",
			podium.Get(MetricTopicSentiment), random.Get(MetricTopicSentiment))
	}
}

// The excluded category's aggregates really are absent from the hold-out
// selection repository.
func TestRepoExcludingCategory(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset-scale test")
	}
	ta, _ := testDatasets(t)
	out := repoExcludingCategory(ta.Repo, "Mexican")
	for id := 0; id < out.NumProperties(); id++ {
		label := out.Catalog().Label(profile.PropertyID(id))
		if strings.Contains(label, "Mexican") {
			t.Fatalf("excluded category survives: %q", label)
		}
	}
	if out.NumProperties() == 0 || out.NumUsers() != ta.Repo.NumUsers() {
		t.Fatalf("projection shape wrong: %d props, %d users", out.NumProperties(), out.NumUsers())
	}
}

// E12 shape: the extended comparison keeps Podium ahead of the survey-style
// stratified baseline on coverage, while stratified sampling shines only on
// proportionate deviation (the objective it was designed for).
func TestExtendedIntrinsicShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset-scale test")
	}
	ta, _ := testDatasets(t)
	tab := RunExtendedIntrinsic(IntrinsicConfig{Dataset: ta, Seed: 7})
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 selectors", len(tab.Rows))
	}
	podium := rowByName(t, tab, "Podium")
	strat := rowByName(t, tab, "Stratified")
	if podium.Get(MetricTotalScore) <= strat.Get(MetricTotalScore) {
		t.Fatalf("stratified sampling beats Podium on total score (%v vs %v)",
			strat.Get(MetricTotalScore), podium.Get(MetricTotalScore))
	}
	if podium.Get(MetricTopK) < strat.Get(MetricTopK) {
		t.Fatalf("stratified sampling beats Podium on top-k coverage")
	}
	for _, r := range tab.Rows {
		d := r.Get(MetricProportionate)
		if d < 0 || d > 1 {
			t.Fatalf("%s: proportionate deviation %v out of range", r.Name, d)
		}
	}
	// Max-min distance avoids overlap even harder than max-sum: its
	// intersected coverage must not beat Podium's.
	maxmin := rowByName(t, tab, "DistanceMaxMin")
	if maxmin.Get(MetricIntersected) > podium.Get(MetricIntersected) {
		t.Fatalf("max-min distance beats Podium on intersected coverage")
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(string(p))
	return len(p), nil
}
