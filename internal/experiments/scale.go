package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"podium/internal/codec"
	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/synth"
)

// ScaleConfig parameterizes the million-user scale suite. Unlike the engine
// suite — which compares execution strategies on small instances — this one
// tracks how the columnar datapath's absolute costs grow with population:
// select latency, snapshot clone cost, v2 image load vs JSON decode, and the
// repository's resident size. Tiers default to 10K/100K; CI keeps it there,
// and the 1M tier is opted into via podium-bench (PODIUM_SCALE_1M=1).
type ScaleConfig struct {
	Seed   int64
	Budget int
	// Tiers is the population sweep (defaults to 10K and 100K users).
	Tiers []int
	// Parallelism of the timed select (0 = NumCPU).
	Parallelism int
	// Repetitions per cheap timing; the minimum is reported (defaults to 3).
	// Expensive one-shot costs (generation, JSON decode at 1M) run once.
	Repetitions int
	// Dir holds the temporary image/JSON files (defaults to os.TempDir()).
	Dir string
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if len(c.Tiers) == 0 {
		c.Tiers = []int{10000, 100000}
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 3
	}
	if c.Dir == "" {
		c.Dir = os.TempDir()
	}
	return c
}

// ScaleRow is one population tier's measurements.
type ScaleRow struct {
	Users      int `json:"users"`
	Properties int `json:"properties"`
	Links      int `json:"links"`
	Groups     int `json:"groups"`
	// One-shot build costs, in seconds.
	GenerateSec float64 `json:"generate_sec"`
	GroupsSec   float64 `json:"groups_sec"`
	// InstanceSec is the one-time LBS/Single instance construction plus the
	// memoized empty-selection marginal pass over the CSR index — paid once
	// per published snapshot, not per selection.
	InstanceSec float64 `json:"instance_sec"`
	// SelectSec is one greedy selection (LBS/Single) on a prepared instance,
	// the same measurement shape as the 2K baseline.
	SelectSec float64 `json:"select_sec"`
	// SelectVsLinear divides SelectSec by the 2K-baseline linear
	// extrapolation (baseline × users/2000); < 1 means sub-linear scaling.
	SelectVsLinear float64 `json:"select_vs_linear"`
	// CloneUs is one repository+index snapshot clone, in microseconds —
	// the per-batch cost of the mutable server's copy-on-write publish.
	CloneUs float64 `json:"clone_us"`
	// Snapshot image (format v2) vs the JSON interchange decode.
	ImageBytes    int64   `json:"image_bytes"`
	ImageWriteSec float64 `json:"image_write_sec"`
	ImageLoadSec  float64 `json:"image_load_sec"`
	JSONDecodeSec float64 `json:"json_decode_sec"`
	ImageSpeedup  float64 `json:"image_speedup"`
	// RepoBytes is profile.ApproxBytes — the repository's estimated
	// resident size; HeapBytes is Go heap in use after GC with the tier's
	// dataset and index live.
	RepoBytes int64  `json:"repo_bytes"`
	HeapBytes uint64 `json:"heap_bytes"`
}

// ScaleReport is serialized to BENCH_scale.json: the scale trajectory future
// PRs regress against.
type ScaleReport struct {
	Suite       string `json:"suite"`
	Dataset     string `json:"dataset"`
	Budget      int    `json:"budget"`
	Seed        int64  `json:"seed"`
	Parallelism int    `json:"parallelism"`
	NumCPU      int    `json:"num_cpu"`
	// Baseline2KSelectSec anchors the sub-linearity check: ReferenceGreedy
	// (the preserved seed implementation) on a 2K-user tier.
	Baseline2KSelectSec float64    `json:"baseline_2k_select_sec"`
	Rows                []ScaleRow `json:"rows"`
	// MinImageSpeedup is the smallest image-vs-JSON load advantage across
	// the sweep; MaxSelectVsLinear the worst sub-linearity ratio.
	MinImageSpeedup   float64 `json:"min_image_speedup"`
	MaxSelectVsLinear float64 `json:"max_select_vs_linear"`
}

// RunScaleSuite measures the columnar datapath across the configured tiers
// and returns the rendered table plus the JSON report.
func RunScaleSuite(cfg ScaleConfig) (*Table, *ScaleReport, error) {
	cfg = cfg.withDefaults()
	const (
		mSel = "Select (s)"
		mCln = "Clone (µs)"
		mImg = "Image load (s)"
		mJSN = "JSON decode (s)"
		mSpd = "Image speedup"
		mRSS = "Repo MB"
	)
	t := &Table{
		Title:   fmt.Sprintf("Columnar datapath at scale (parallelism=%d)", cfg.Parallelism),
		Metrics: []string{mSel, mCln, mImg, mJSN, mSpd, mRSS},
	}
	rep := &ScaleReport{
		Suite:       "scale",
		Dataset:     "scale (profiles-only synthetic)",
		Budget:      cfg.Budget,
		Seed:        cfg.Seed,
		Parallelism: cfg.Parallelism,
		NumCPU:      runtime.NumCPU(),
	}

	// Sub-linearity anchor: the seed reference greedy on a 2K tier.
	{
		ds := synth.Generate(synth.ScaleLike(2000))
		ix := groups.Build(ds.Repo, groups.Config{K: 3})
		inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
		core.ReferenceGreedy(inst, cfg.Budget, nil) // warm
		rep.Baseline2KSelectSec = timeMin(cfg.Repetitions, func() {
			core.ReferenceGreedy(inst, cfg.Budget, nil)
		})
	}

	for _, n := range cfg.Tiers {
		row, err := runScaleTier(cfg, n, rep.Baseline2KSelectSec)
		if err != nil {
			return nil, nil, err
		}
		rep.Rows = append(rep.Rows, row)
		if rep.MinImageSpeedup == 0 || row.ImageSpeedup < rep.MinImageSpeedup {
			rep.MinImageSpeedup = row.ImageSpeedup
		}
		if row.SelectVsLinear > rep.MaxSelectVsLinear {
			rep.MaxSelectVsLinear = row.SelectVsLinear
		}
		t.Rows = append(t.Rows, Row{
			Name: fmt.Sprintf("|U|=%d", n),
			Values: map[string]float64{
				mSel: row.SelectSec,
				mCln: row.CloneUs,
				mImg: row.ImageLoadSec,
				mJSN: row.JSONDecodeSec,
				mSpd: row.ImageSpeedup,
				mRSS: float64(row.RepoBytes) / (1 << 20),
			},
		})
	}
	return t, rep, nil
}

func runScaleTier(cfg ScaleConfig, n int, baseline float64) (ScaleRow, error) {
	row := ScaleRow{Users: n}

	start := time.Now()
	ds := synth.Generate(synth.ScaleLike(n))
	row.GenerateSec = time.Since(start).Seconds()
	repo := ds.Repo

	start = time.Now()
	ix := groups.Build(repo, groups.Config{K: 3})
	row.GroupsSec = time.Since(start).Seconds()
	ix.Freeze()

	row.Properties = repo.NumProperties()
	row.Links = repo.NumLinks()
	row.Groups = ix.NumGroups()
	row.RepoBytes = repo.ApproxBytes()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	row.HeapBytes = ms.HeapInuse

	// Instance construction plus the memoized base-marginal pass is O(links)
	// and paid once per published snapshot (the server memoizes instances
	// per epoch); it is reported on its own so the per-request select timing
	// below stays the same measurement shape as the 2K baseline (greedy on a
	// prepared instance).
	start = time.Now()
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
	inst.BaseMarginals()
	row.InstanceSec = time.Since(start).Seconds()

	// Select: the greedy engine at the configured parallelism.
	opt := core.Options{Parallelism: cfg.Parallelism}
	sel := func() { core.GreedyOpts(inst, cfg.Budget, opt) }
	sel() // warm
	row.SelectSec = timeMin(cfg.Repetitions, sel)
	if baseline > 0 {
		row.SelectVsLinear = row.SelectSec / (baseline * float64(n) / 2000)
	}

	// Snapshot clone: repository + index, the mutable server's per-batch
	// copy-on-write cost. Clones are dropped unmutated, so this times the
	// sharing path — the point of column-granularity COW.
	row.CloneUs = timeMin(cfg.Repetitions, func() {
		r2 := repo.Clone()
		ix.Clone(r2)
	}) * 1e6

	// Snapshot image write + bulk load.
	imgPath := filepath.Join(cfg.Dir, fmt.Sprintf("podium_scale_%d.img", n))
	defer os.Remove(imgPath)
	start = time.Now()
	if err := codec.WriteImageFile(imgPath, repo); err != nil {
		return row, err
	}
	row.ImageWriteSec = time.Since(start).Seconds()
	if fi, err := os.Stat(imgPath); err == nil {
		row.ImageBytes = fi.Size()
	}
	reps := cfg.Repetitions
	if n >= 1000000 {
		reps = 1
	}
	row.ImageLoadSec = timeMin(reps, func() {
		if _, err := codec.ReadImageFile(imgPath); err != nil {
			panic(err)
		}
	})

	// JSON interchange decode: the restart path the image replaces.
	jsonPath := filepath.Join(cfg.Dir, fmt.Sprintf("podium_scale_%d.json", n))
	defer os.Remove(jsonPath)
	f, err := os.Create(jsonPath)
	if err != nil {
		return row, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if err := repo.WriteJSON(bw); err != nil {
		f.Close()
		return row, err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return row, err
	}
	if err := f.Close(); err != nil {
		return row, err
	}
	jsonDecode := func() {
		rf, err := os.Open(jsonPath)
		if err != nil {
			panic(err)
		}
		defer rf.Close()
		if _, err := profile.ReadJSON(bufio.NewReaderSize(rf, 1<<20)); err != nil {
			panic(err)
		}
	}
	if n >= 1000000 {
		// One decode is minutes at this tier; a single run is representative.
		start = time.Now()
		jsonDecode()
		row.JSONDecodeSec = time.Since(start).Seconds()
	} else {
		row.JSONDecodeSec = timeMin(reps, jsonDecode)
	}
	if row.ImageLoadSec > 0 {
		row.ImageSpeedup = row.JSONDecodeSec / row.ImageLoadSec
	}
	return row, nil
}
