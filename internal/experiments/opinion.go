package experiments

import (
	"strings"

	"podium/internal/baselines"
	"podium/internal/groups"
	"podium/internal/opinions"
	"podium/internal/profile"
	"podium/internal/synth"
)

// OpinionConfig parameterizes the opinion-diversity comparison (Figures 3b
// and 3d): selection runs on profile groups "defined from properties related
// to cuisine and location, as a client seeking opinions about a restaurant
// might have chosen" (Section 8.4), then ground-truth reviews simulate
// procurement and the opinion metrics are averaged across destinations.
type OpinionConfig struct {
	Dataset *synth.Dataset
	Budget  int
	Seed    int64
	// Destinations bounds the evaluation to the most-reviewed destinations
	// (the paper examines 50 for TripAdvisor, 130 for Yelp); default 50.
	Destinations int
	// IncludeUsefulness adds the usefulness column (Yelp-like data only).
	IncludeUsefulness bool
	Selectors         []baselines.Selector
}

func (c OpinionConfig) withDefaults() OpinionConfig {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if c.Destinations <= 0 {
		c.Destinations = 50
	}
	if c.Selectors == nil {
		c.Selectors = DefaultSelectors(c.Seed)
	}
	return c
}

// cuisineLocationRepo projects the repository onto the cuisine- and
// location-related properties the opinion experiments group on.
func cuisineLocationRepo(repo *profile.Repository) *profile.Repository {
	keep := func(label string) bool {
		for _, prefix := range []string{"avgRating ", "visitFreq ", "enthusiasm ", "livesIn "} {
			if strings.HasPrefix(label, prefix) {
				return true
			}
		}
		return false
	}
	out := profile.NewRepository()
	for u := 0; u < repo.NumUsers(); u++ {
		uid := out.AddUser(repo.UserName(profile.UserID(u)))
		repo.Profile(profile.UserID(u)).Each(func(id profile.PropertyID, s float64) {
			if label := repo.Catalog().Label(id); keep(label) {
				out.MustSetScore(uid, label, s)
			}
		})
	}
	return out
}

// RunOpinion reproduces the opinion-diversity figure for one dataset.
func RunOpinion(cfg OpinionConfig) *Table {
	cfg = cfg.withDefaults()
	selRepo := cuisineLocationRepo(cfg.Dataset.Repo)
	ix := groups.Build(selRepo, groups.Config{K: 3})
	cols := []string{MetricTopicSentiment, MetricRatingSim, MetricRatingVariance}
	if cfg.IncludeUsefulness {
		cols = []string{MetricTopicSentiment, MetricUsefulness, MetricRatingSim, MetricRatingVariance}
	}
	t := &Table{Title: "Opinion diversity — " + cfg.Dataset.Name, Metrics: cols}
	for _, sel := range cfg.Selectors {
		users := sel.Select(ix, cfg.Budget)
		ev := opinions.EvaluateTop(cfg.Dataset.Store, users, cfg.Destinations)
		values := map[string]float64{
			MetricTopicSentiment: ev.TopicSentiment,
			MetricRatingSim:      ev.RatingSim,
			MetricRatingVariance: ev.RatingVar,
		}
		if cfg.IncludeUsefulness {
			values[MetricUsefulness] = ev.Usefulness
		}
		t.Rows = append(t.Rows, Row{Name: sel.Name(), Values: values})
	}
	return t
}
