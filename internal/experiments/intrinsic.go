package experiments

import (
	"podium/internal/baselines"
	"podium/internal/groups"
	"podium/internal/metrics"
	"podium/internal/synth"
)

// Metric column names shared by the intrinsic figures (3a, 3c).
const (
	MetricTotalScore     = "Total Score"
	MetricTopK           = "Top-200 Coverage"
	MetricIntersected    = "Intersected Coverage"
	MetricDistribution   = "Distribution Sim"
	MetricFeedbackGroups = "Feedback Coverage"
	MetricTopicSentiment = "Topic+Sentiment"
	MetricUsefulness     = "Usefulness"
	MetricRatingSim      = "Rating Dist Sim"
	MetricRatingVariance = "Rating Variance"
	MetricSeconds        = "Seconds"
)

// IntrinsicConfig parameterizes the intrinsic-diversity comparison
// (Figures 3a and 3c). Defaults follow Section 8.3: budget 8, LBS weights,
// Single coverage, top-200 coverage, CD-sim over the top-20 groups.
type IntrinsicConfig struct {
	Dataset   *synth.Dataset
	Budget    int
	TopK      int
	TopGroups int
	Seed      int64
	// Selectors overrides the default algorithm set when non-nil.
	Selectors []baselines.Selector
}

func (c IntrinsicConfig) withDefaults() IntrinsicConfig {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if c.TopK <= 0 {
		c.TopK = 200
	}
	if c.TopGroups <= 0 {
		c.TopGroups = 20
	}
	if c.Selectors == nil {
		c.Selectors = DefaultSelectors(c.Seed)
	}
	return c
}

// DefaultSelectors is the Section 8.3 algorithm lineup.
func DefaultSelectors(seed int64) []baselines.Selector {
	return []baselines.Selector{
		baselines.Podium{Weights: groups.WeightLBS, Coverage: groups.CoverSingle},
		baselines.Random{Seed: seed},
		baselines.Clustering{Seed: seed},
		baselines.Distance{},
	}
}

// RunIntrinsic reproduces the intrinsic-diversity figure for one dataset:
// every algorithm selects a budget-sized subset and is scored on the four
// intrinsic metrics of Section 8.2.
func RunIntrinsic(cfg IntrinsicConfig) *Table {
	cfg = cfg.withDefaults()
	ix := groups.Build(cfg.Dataset.Repo, groups.Config{K: 3})
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
	t := &Table{
		Title:   "Intrinsic diversity — " + cfg.Dataset.Name,
		Metrics: []string{MetricTotalScore, MetricTopK, MetricIntersected, MetricDistribution},
	}
	for _, sel := range cfg.Selectors {
		users := sel.Select(ix, cfg.Budget)
		t.Rows = append(t.Rows, Row{
			Name: sel.Name(),
			Values: map[string]float64{
				MetricTotalScore:   metrics.TotalScore(inst, users),
				MetricTopK:         metrics.TopKCoverage(ix, users, cfg.TopK),
				MetricIntersected:  metrics.IntersectedCoverage(ix, users, cfg.TopK),
				MetricDistribution: metrics.DistributionSimilarity(ix, users, cfg.TopGroups),
			},
		})
	}
	return t
}
