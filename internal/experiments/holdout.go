package experiments

import (
	"strings"

	"podium/internal/baselines"
	"podium/internal/groups"
	"podium/internal/opinions"
	"podium/internal/profile"
	"podium/internal/synth"
)

// HoldOutConfig parameterizes the paper's hold-out protocol for opinion
// diversity (Section 8.2): "we can select users from TripAdvisor based on
// their profiles excluding the data related to some destination, then
// evaluate diversity of the selected subset reviews on the excluded
// destination". For each evaluated destination, selection runs on profiles
// with every aggregate of that destination's category removed, so the
// algorithm cannot peek at the opinions it is judged on.
type HoldOutConfig struct {
	Dataset *synth.Dataset
	Budget  int
	Seed    int64
	// Destinations bounds evaluation to the most-reviewed destinations
	// (default 20 — each needs its own selection run per algorithm).
	Destinations int
	Selectors    []baselines.Selector
}

func (c HoldOutConfig) withDefaults() HoldOutConfig {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if c.Destinations <= 0 {
		c.Destinations = 20
	}
	if c.Selectors == nil {
		c.Selectors = DefaultSelectors(c.Seed)
	}
	return c
}

// RunHoldOut reproduces the hold-out opinion evaluation. Selection indexes
// are cached per excluded category, since destinations share categories.
func RunHoldOut(cfg HoldOutConfig) *Table {
	cfg = cfg.withDefaults()
	store := cfg.Dataset.Store

	// Top destinations by review count.
	type destCount struct {
		d opinions.DestID
		n int
	}
	var dests []destCount
	for d := 0; d < store.NumDestinations(); d++ {
		if n := len(store.Reviews(opinions.DestID(d))); n > 0 {
			dests = append(dests, destCount{opinions.DestID(d), n})
		}
	}
	for i := 0; i < len(dests); i++ { // selection sort: small N, stable view
		best := i
		for j := i + 1; j < len(dests); j++ {
			if dests[j].n > dests[best].n {
				best = j
			}
		}
		dests[i], dests[best] = dests[best], dests[i]
	}
	if len(dests) > cfg.Destinations {
		dests = dests[:cfg.Destinations]
	}

	ixByCategory := map[string]*groups.Index{}
	indexFor := func(category string) *groups.Index {
		if ix, ok := ixByCategory[category]; ok {
			return ix
		}
		repo := repoExcludingCategory(cfg.Dataset.Repo, category)
		ix := groups.Build(repo, groups.Config{K: 3})
		ixByCategory[category] = ix
		return ix
	}

	t := &Table{
		Title:   "Hold-out opinion diversity — " + cfg.Dataset.Name,
		Metrics: []string{MetricTopicSentiment, MetricRatingSim, MetricRatingVariance},
	}
	for _, sel := range cfg.Selectors {
		var topic, sim, variance float64
		for _, dc := range dests {
			ix := indexFor(store.DestCategory(dc.d))
			users := sel.Select(ix, cfg.Budget)
			topic += opinions.TopicSentimentCoverage(store, dc.d, users)
			sim += opinions.RatingDistributionSimilarity(store, dc.d, users)
			variance += opinions.RatingVariance(store, dc.d, users)
		}
		n := float64(len(dests))
		t.Rows = append(t.Rows, Row{
			Name: sel.Name(),
			Values: map[string]float64{
				MetricTopicSentiment: topic / n,
				MetricRatingSim:      sim / n,
				MetricRatingVariance: variance / n,
			},
		})
	}
	return t
}

// repoExcludingCategory projects a repository onto the cuisine/location
// properties (as the opinion experiments do) minus every property that
// mentions the excluded category — avgRating/visitFreq/enthusiasm for the
// category itself and any per-city variant.
func repoExcludingCategory(repo *profile.Repository, category string) *profile.Repository {
	keep := func(label string) bool {
		isAggregate := false
		for _, prefix := range []string{"avgRating ", "visitFreq ", "enthusiasm ", "livesIn "} {
			if strings.HasPrefix(label, prefix) {
				isAggregate = true
				break
			}
		}
		if !isAggregate {
			return false
		}
		if category == "" {
			return true
		}
		return !strings.Contains(label, category)
	}
	out := profile.NewRepository()
	for u := 0; u < repo.NumUsers(); u++ {
		uid := out.AddUser(repo.UserName(profile.UserID(u)))
		repo.Profile(profile.UserID(u)).Each(func(id profile.PropertyID, s float64) {
			if label := repo.Catalog().Label(id); keep(label) {
				out.MustSetScore(uid, label, s)
			}
		})
	}
	return out
}
