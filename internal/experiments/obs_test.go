package experiments

import (
	"testing"
	"time"
)

func TestObsSuiteShapes(t *testing.T) {
	tab, rep, err := RunObsSuite(ObsConfig{
		Seed: 7, Users: 300, Props: 400, Clients: 2,
		Duration:    150 * time.Millisecond,
		SelectIters: 8, Trials: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("table rows = %d, want 2", len(tab.Rows))
	}
	if rep.Suite != "obs" || rep.Users != 300 || rep.Trials != 2 {
		t.Fatalf("report header = %+v", rep)
	}
	for name, st := range map[string]ObsRunStats{"enabled": rep.Enabled, "disabled": rep.Disabled} {
		if st.SelectSamples == 0 || st.SelectMeanMs <= 0 {
			t.Fatalf("%s mode measured no selects: %+v", name, st)
		}
		if st.ReadOps == 0 || st.ReadQPS <= 0 {
			t.Fatalf("%s mode drove no reads: %+v", name, st)
		}
	}
	// The < 2% acceptance gate belongs to the full-size bench run; a short
	// noisy smoke run only has to stay within the same order of magnitude.
	if rep.MaxOverheadFrac > 0.5 {
		t.Fatalf("instrumentation overhead %.1f%% on the smoke run; the wrapper is doing real work per request", rep.MaxOverheadFrac*100)
	}
	// The instrumented runs must actually be visible on the scrape.
	if rep.MetricFamilies < 10 {
		t.Fatalf("only %d metric families exposed after the run", rep.MetricFamilies)
	}
}
