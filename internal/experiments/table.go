// Package experiments contains one driver per table/figure of the paper's
// evaluation (Section 8). Each driver assembles the workload, runs every
// algorithm under comparison, computes the figure's metrics and returns a
// Table whose rows mirror the series the paper plots. DESIGN.md §4 maps
// experiment IDs (E1–E10) to drivers; EXPERIMENTS.md records paper-versus-
// measured shapes.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a rendered experiment result: one row per algorithm (or per
// sweep point), one column per metric.
type Table struct {
	Title   string
	Metrics []string
	Rows    []Row
}

// Row is one algorithm's (or sweep point's) measured values.
type Row struct {
	Name   string
	Values map[string]float64
}

// Get returns a row's value for a metric (0 when absent).
func (r Row) Get(metric string) float64 { return r.Values[metric] }

// Normalized returns a copy with every metric divided by its column maximum
// — the paper's presentation ("all scores are normalized relative to the
// leading algorithm's score"). Columns whose maximum is 0 are left as-is.
func (t *Table) Normalized() *Table {
	out := &Table{Title: t.Title + " (normalized)", Metrics: t.Metrics}
	maxes := map[string]float64{}
	for _, m := range t.Metrics {
		for _, r := range t.Rows {
			if v := r.Get(m); v > maxes[m] {
				maxes[m] = v
			}
		}
	}
	for _, r := range t.Rows {
		nr := Row{Name: r.Name, Values: map[string]float64{}}
		for _, m := range t.Metrics {
			if maxes[m] > 0 {
				nr.Values[m] = r.Get(m) / maxes[m]
			} else {
				nr.Values[m] = r.Get(m)
			}
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// Leader returns the name of the row with the highest value for a metric.
func (t *Table) Leader(metric string) string {
	best, bestV := "", 0.0
	for i, r := range t.Rows {
		if v := r.Get(metric); i == 0 || v > bestV {
			best, bestV = r.Name, v
		}
	}
	return best
}

// WriteCSV emits the table for external plotting tools: a header row of
// "name" plus the metric columns, then one row per entry.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"name"}, t.Metrics...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		row := make([]string, 0, len(header))
		row = append(row, r.Name)
		for _, m := range t.Metrics {
			row = append(row, strconv.FormatFloat(r.Get(m), 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	fmt.Fprintf(w, "%s\n", strings.Repeat("-", len(t.Title)))
	fmt.Fprintf(w, "%-14s", "")
	for _, m := range t.Metrics {
		fmt.Fprintf(w, " %22s", m)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-14s", r.Name)
		for _, m := range t.Metrics {
			fmt.Fprintf(w, " %22.4f", r.Get(m))
		}
		fmt.Fprintln(w)
	}
}
