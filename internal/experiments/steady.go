// Steady-state selection benchmark: select throughput under a live write
// stream, with and without the cross-epoch select cache. The server suite
// (server.go) retired the single-mutex architecture; this suite measures the
// next bottleneck — on the snapshot server every mutation batch publishes a
// fresh epoch whose per-epoch memoization starts cold, so a steady mix of
// writes and selects pays a full base-marginal recomputation per epoch per
// select shape. The watermark-keyed cache plus delta-repaired selector state
// (server/selcache.go, core/incremental.go) is the fix; this suite drives
// both configurations with an identical select-heavy workload and reports the
// steady-state speedup, the cache hit rate, and the repair-versus-recompute
// sync cost.
package experiments

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"

	"podium/internal/groups"
	"podium/internal/server"
)

// SteadyConfig parameterizes the steady-state suite.
type SteadyConfig struct {
	Seed int64
	// Tiers are the population sizes to run (default 10_000 and 100_000).
	Tiers []int
	// Props / PropsPerUser shape the vocabulary (defaults 2500 / 8 — the
	// sparse regime of the server suite, scaled up).
	Props, PropsPerUser int
	// Clients is the closed-loop select client count (default 8); the write
	// stream paces itself beside them to hold the mix.
	Clients int
	// Duration is the measured run length per server per tier (default 2s).
	Duration time.Duration
	// WritesPerReads fixes the mix at 1 write per WritesPerReads reads
	// (default 10 — the 1:10 write:read mix).
	WritesPerReads int
	// BatchWindow is the snapshot writer's coalescing window (default 10ms).
	BatchWindow time.Duration
	Budget      int
	// Dir holds the repository logs; a temp dir is created when empty.
	Dir string
}

func (c SteadyConfig) withDefaults() SteadyConfig {
	if len(c.Tiers) == 0 {
		c.Tiers = []int{10_000, 100_000}
	}
	if c.Props <= 0 {
		c.Props = 2500
	}
	if c.PropsPerUser <= 0 {
		c.PropsPerUser = 8
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.WritesPerReads <= 0 {
		c.WritesPerReads = 10
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 10 * time.Millisecond
	}
	if c.Budget <= 0 {
		c.Budget = 8
	}
	return c
}

// SteadyCacheStats is the select cache's behavior over one measured run.
type SteadyCacheStats struct {
	Hits         uint64  `json:"hits"`
	Misses       uint64  `json:"misses"`
	Bypass       uint64  `json:"bypass"`
	HitRate      float64 `json:"hit_rate"`
	Repairs      uint64  `json:"repairs"`
	Recomputes   uint64  `json:"recomputes"`
	RepairedRows uint64  `json:"repaired_rows"`
	// Mean microseconds per selector-state sync, by path. Repair is the
	// delta path (O(Δ) row re-summing); recompute is the fallback (full
	// base-marginal pass) — the gap is the tentpole's per-miss saving.
	RepairMeanUs    float64 `json:"repair_mean_us"`
	RecomputeMeanUs float64 `json:"recompute_mean_us"`
}

// SteadyRunStats is one configuration's measured steady-state behavior.
type SteadyRunStats struct {
	Server      string            `json:"server"`
	SelectOps   int               `json:"select_ops"`
	WriteOps    int               `json:"write_ops"`
	SelectQPS   float64           `json:"select_qps"`
	WriteQPS    float64           `json:"write_qps"`
	SelectP50Ms float64           `json:"select_p50_ms"`
	SelectP99Ms float64           `json:"select_p99_ms"`
	WriteP99Ms  float64           `json:"write_p99_ms"`
	Batches     uint64            `json:"batches"`
	Mutations   uint64            `json:"mutations"`
	Cache       *SteadyCacheStats `json:"cache,omitempty"`
}

// SteadyTierReport is one population tier's baseline-versus-cached result.
type SteadyTierReport struct {
	Users  int `json:"users"`
	Groups int `json:"groups"`
	// Baseline is the recompute-every-epoch configuration (cache disabled:
	// only the per-epoch snapshot memoization, which a live write stream
	// defeats). Cached adds the watermark-keyed cache + delta repair.
	Baseline SteadyRunStats `json:"baseline"`
	Cached   SteadyRunStats `json:"cached"`
	// SelectSpeedup is the acceptance headline: cached select QPS over
	// baseline select QPS on the same workload.
	SelectSpeedup float64 `json:"select_speedup"`
	// Identical records the post-run identity check: after the write stream
	// quiesces, the cached select response is byte-identical to a fresh
	// uncached selection on the same state.
	Identical bool `json:"identical"`
}

// SteadyReport is the machine-readable result, serialized to
// BENCH_steady.json.
type SteadyReport struct {
	Suite       string             `json:"suite"`
	Workload    string             `json:"workload"`
	WriteRatio  string             `json:"write_ratio"`
	Clients     int                `json:"clients"`
	Budget      int                `json:"budget"`
	Seed        int64              `json:"seed"`
	NumCPU      int                `json:"num_cpu"`
	DurationSec float64            `json:"duration_sec"`
	Tiers       []SteadyTierReport `json:"tiers"`
}

// steadyOp is one generated request.
type steadyOp struct {
	method, path, body string
}

// steadyWriteStream deterministically generates the live write stream: mostly
// score updates with occasional sign-ups (the same shape as the server suite).
func steadyWriteStream(users int, cfg SteadyConfig) func() steadyOp {
	rng := rand.New(rand.NewSource(cfg.Seed * 7177))
	nextUser := 0
	return func() steadyOp {
		if rng.Intn(100) < 15 {
			nextUser++
			name := fmt.Sprintf("new-%d", nextUser)
			props := make([]string, 0, 4)
			for _, p := range rng.Perm(cfg.Props)[:4] {
				props = append(props, fmt.Sprintf("%q:%g", propLabel(p), float64(rng.Intn(1001))/1000))
			}
			return steadyOp{http.MethodPost, "/api/users",
				fmt.Sprintf(`{"name":%q,"properties":{%s}}`, name, strings.Join(props, ","))}
		}
		return steadyOp{http.MethodPost, "/api/scores",
			fmt.Sprintf(`{"user":%d,"label":%q,"score":%g}`,
				rng.Intn(users), propLabel(rng.Intn(cfg.Props)), float64(rng.Intn(1001))/1000)}
	}
}

// benchRecorder is a reusable in-memory http.ResponseWriter. The stock
// httptest.ResponseRecorder allocates a fresh body buffer per request; at the
// suite's multi-hundred-KB select responses that turns the driver into a GC
// benchmark, so each select client reuses one buffer and the measurement
// stays on the server.
type benchRecorder struct {
	code int
	hdr  http.Header
	body bytes.Buffer
}

func newBenchRecorder() *benchRecorder {
	return &benchRecorder{code: http.StatusOK, hdr: make(http.Header)}
}
func (r *benchRecorder) Header() http.Header         { return r.hdr }
func (r *benchRecorder) Write(p []byte) (int, error) { return r.body.Write(p) }
func (r *benchRecorder) WriteHeader(code int)        { r.code = code }
func (r *benchRecorder) reset() {
	r.code = http.StatusOK
	r.hdr = make(http.Header)
	r.body.Reset()
}

// steadyWriterSlots bounds the write stream's in-flight mutations. Mutation
// acks wait on the batched log sync, so concurrent writes share one group
// commit and the stream's throughput is slots-per-sync; the bound also keeps
// the stream from flooding the apply queue.
const steadyWriterSlots = 64

// driveSteady runs the workload against ms for cfg.Duration and returns
// select/write latency samples (in seconds). cfg.Clients closed-loop clients
// issue selections flat-out (a quarter asking for the pretty response shape so
// both cache-key variants stay live) while a dedicated write stream — the
// "live writes" of the suite's title — paces itself off the shared select
// counter to hold the configured write:read mix, the way an ingest pipeline
// runs beside dashboard readers rather than inside their request loops. The
// pacing is two-sided so the mix holds no matter which side is faster:
// the dispatcher stalls when writes run ahead of 1:WritesPerReads, and the
// select clients stall when reads outrun what the write stream has issued
// (plus one in-flight window of slack) — a run can never flatter the cache by
// quietly running reads at a lighter mix than configured. Shed writes (429
// under momentary queue pressure) are dropped from the sample set and
// re-paced, not counted as failures.
func driveSteady(ms *server.MutableServer, users int, cfg SteadyConfig) (selLat, writeLat []float64, elapsed float64) {
	var selOps, writesIssued atomic.Int64
	ratio := int64(cfg.WritesPerReads)
	slack := ratio * steadyWriterSlots
	perClient := make([][]float64, cfg.Clients)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*2003 + int64(c)))
			rec := newBenchRecorder()
			body := fmt.Sprintf(`{"budget":%d}`, cfg.Budget)
			for time.Now().Before(deadline) {
				if selOps.Load() >= writesIssued.Load()*ratio+slack {
					time.Sleep(200 * time.Microsecond)
					continue
				}
				path := "/api/select"
				if rng.Intn(4) == 0 {
					path += "?pretty=1"
				}
				req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
				rec.reset()
				t0 := time.Now()
				ms.ServeHTTP(rec, req)
				lat := time.Since(t0).Seconds()
				if rec.code != http.StatusOK {
					panic(fmt.Sprintf("steady bench: POST %s -> %d: %s", path, rec.code, rec.body.String()))
				}
				perClient[c] = append(perClient[c], lat)
				selOps.Add(1)
			}
		}(c)
	}

	// The write stream: one dispatcher paces issuance to the mix; each write
	// runs in its own goroutine (bounded by steadyWriterSlots) so concurrent
	// mutations coalesce into one batch and share the log's group commit.
	var (
		wmu      sync.Mutex
		wsamples []float64
		wwg      sync.WaitGroup
	)
	sem := make(chan struct{}, steadyWriterSlots)
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		next := steadyWriteStream(users, cfg)
		for time.Now().Before(deadline) {
			if writesIssued.Load()*ratio >= selOps.Load() {
				time.Sleep(200 * time.Microsecond)
				continue
			}
			op := next()
			writesIssued.Add(1)
			sem <- struct{}{}
			wwg.Add(1)
			go func(op steadyOp) {
				defer wwg.Done()
				defer func() { <-sem }()
				req := httptest.NewRequest(op.method, op.path, strings.NewReader(op.body))
				rec := httptest.NewRecorder()
				t0 := time.Now()
				ms.ServeHTTP(rec, req)
				lat := time.Since(t0).Seconds()
				if rec.Code == http.StatusTooManyRequests {
					writesIssued.Add(-1)
					return
				}
				if rec.Code != http.StatusOK {
					panic(fmt.Sprintf("steady bench: %s %s -> %d: %s", op.method, op.path, rec.Code, rec.Body.String()))
				}
				wmu.Lock()
				wsamples = append(wsamples, lat)
				wmu.Unlock()
			}(op)
		}
	}()

	wg.Wait()
	wwg.Wait() // every issued write is acked before the caller's identity check
	elapsed = time.Since(start).Seconds()
	for _, samples := range perClient {
		selLat = append(selLat, samples...)
	}
	return selLat, wsamples, elapsed
}

func steadyRunStats(name string, selLat, writeLat []float64, elapsed float64) SteadyRunStats {
	return SteadyRunStats{
		Server:      name,
		SelectOps:   len(selLat),
		WriteOps:    len(writeLat),
		SelectQPS:   float64(len(selLat)) / elapsed,
		WriteQPS:    float64(len(writeLat)) / elapsed,
		SelectP50Ms: percentileMs(selLat, 0.50),
		SelectP99Ms: percentileMs(selLat, 0.99),
		WriteP99Ms:  percentileMs(writeLat, 0.99),
	}
}

// steadyCacheStats converts the server's raw counters into the report form.
func steadyCacheStats(s server.SelectCacheStats) *SteadyCacheStats {
	cs := &SteadyCacheStats{
		Hits: s.Hits, Misses: s.Misses, Bypass: s.Bypass,
		Repairs: s.Repairs, Recomputes: s.Recomputes, RepairedRows: s.RepairedRows,
	}
	if total := s.Hits + s.Misses; total > 0 {
		cs.HitRate = float64(s.Hits) / float64(total)
	}
	if s.Repairs > 0 {
		cs.RepairMeanUs = float64(s.RepairNs) / float64(s.Repairs) / 1000
	}
	if s.Recomputes > 0 {
		cs.RecomputeMeanUs = float64(s.RecomputeNs) / float64(s.Recomputes) / 1000
	}
	return cs
}

// steadySelect issues one compact feedback-free select and returns the raw
// response bytes.
func steadySelect(ms *server.MutableServer, budget int) ([]byte, error) {
	req := httptest.NewRequest(http.MethodPost, "/api/select",
		strings.NewReader(fmt.Sprintf(`{"budget":%d}`, budget)))
	rec := httptest.NewRecorder()
	ms.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return nil, fmt.Errorf("select -> %d: %s", rec.Code, rec.Body.String())
	}
	return rec.Body.Bytes(), nil
}

// runSteadyTier seeds one population tier and measures both configurations.
func runSteadyTier(dir string, users int, cfg SteadyConfig) (SteadyTierReport, error) {
	tier := SteadyTierReport{Users: users}
	gcfg := groups.Config{K: 3}
	seedCfg := ServerConfig{Seed: cfg.Seed, Users: users, Props: cfg.Props, PropsPerUser: cfg.PropsPerUser}

	run := func(name string, cached bool) (SteadyRunStats, *server.MutableServer, error) {
		path := filepath.Join(dir, fmt.Sprintf("steady-%d-%s.plog", users, name))
		if err := sparseLog(path, seedCfg); err != nil {
			return SteadyRunStats{}, nil, err
		}
		ms, err := server.NewMutableOpts("steady", path, gcfg, nil,
			server.MutableOptions{BatchWindow: cfg.BatchWindow})
		if err != nil {
			return SteadyRunStats{}, nil, err
		}
		ms.SetSelectCacheEnabled(cached)
		selLat, writeLat, elapsed := driveSteady(ms, users, cfg)
		stats := steadyRunStats(name, selLat, writeLat, elapsed)
		stats.Batches, stats.Mutations = ms.BatchStats()
		if cached {
			stats.Cache = steadyCacheStats(ms.SelectCacheStats())
		}
		return stats, ms, nil
	}

	base, baseSrv, err := run("recompute-per-epoch", false)
	if err != nil {
		return tier, err
	}
	if err := baseSrv.Close(); err != nil {
		return tier, err
	}
	tier.Baseline = base

	cachedStats, ms, err := run("watermark-cache", true)
	if err != nil {
		return tier, err
	}
	tier.Cached = cachedStats
	tier.Groups = ms.Snapshot().Index().NumGroups()

	// Identity check: with the write stream quiesced (driveSteady joined and
	// every write was acked, so the apply loop is idle), the cached response
	// must be byte-identical to a fresh uncached selection on the same state.
	cachedResp, err := steadySelect(ms, cfg.Budget)
	if err != nil {
		return tier, err
	}
	ms.SetSelectCacheEnabled(false)
	freshResp, err := steadySelect(ms, cfg.Budget)
	if err != nil {
		return tier, err
	}
	tier.Identical = string(cachedResp) == string(freshResp)
	if err := ms.Close(); err != nil {
		return tier, err
	}

	if base.SelectQPS > 0 {
		tier.SelectSpeedup = cachedStats.SelectQPS / base.SelectQPS
	}
	return tier, nil
}

// RunSteadySuite benchmarks steady-state selection under live writes at every
// tier and returns the rendered table plus the JSON report.
func RunSteadySuite(cfg SteadyConfig) (*Table, *SteadyReport, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "podium-bench-steady")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
	}

	rep := &SteadyReport{
		Suite:       "steady",
		Workload:    "closed-loop selects (25% pretty) beside a paced write stream of score updates and sign-ups",
		WriteRatio:  fmt.Sprintf("1:%d", cfg.WritesPerReads),
		Clients:     cfg.Clients,
		Budget:      cfg.Budget,
		Seed:        cfg.Seed,
		NumCPU:      runtime.NumCPU(),
		DurationSec: cfg.Duration.Seconds(),
	}
	const (
		mSelQPS   = "Select QPS"
		mSelP50   = "Select p50 (ms)"
		mSelP99   = "Select p99 (ms)"
		mHitRate  = "Hit rate"
		mSpeedup  = "Speedup"
		mRepairUs = "Repair µs"
		mRecompUs = "Recompute µs"
	)
	t := &Table{
		Title: fmt.Sprintf("Steady-state selects under 1:%d write:read, %d clients",
			cfg.WritesPerReads, cfg.Clients),
		Metrics: []string{mSelQPS, mSelP50, mSelP99, mHitRate, mSpeedup, mRepairUs, mRecompUs},
	}
	for _, users := range cfg.Tiers {
		tier, err := runSteadyTier(dir, users, cfg)
		if err != nil {
			return nil, nil, err
		}
		rep.Tiers = append(rep.Tiers, tier)
		t.Rows = append(t.Rows, Row{
			Name: fmt.Sprintf("%dK baseline", users/1000),
			Values: map[string]float64{
				mSelQPS: tier.Baseline.SelectQPS,
				mSelP50: tier.Baseline.SelectP50Ms,
				mSelP99: tier.Baseline.SelectP99Ms,
			},
		})
		row := Row{
			Name: fmt.Sprintf("%dK cached", users/1000),
			Values: map[string]float64{
				mSelQPS:  tier.Cached.SelectQPS,
				mSelP50:  tier.Cached.SelectP50Ms,
				mSelP99:  tier.Cached.SelectP99Ms,
				mSpeedup: tier.SelectSpeedup,
			},
		}
		if c := tier.Cached.Cache; c != nil {
			row.Values[mHitRate] = c.HitRate
			row.Values[mRepairUs] = c.RepairMeanUs
			row.Values[mRecompUs] = c.RecomputeMeanUs
		}
		t.Rows = append(t.Rows, row)
	}
	return t, rep, nil
}
