package experiments

import (
	"encoding/json"
	"testing"
	"time"
)

// TestSteadySuiteShapes runs a miniature steady-state suite end to end and
// checks the report's shape: both configurations measured, cache counters
// attached to the cached run only, and the post-quiesce identity check green.
func TestSteadySuiteShapes(t *testing.T) {
	tbl, rep, err := RunSteadySuite(SteadyConfig{
		Seed:     7,
		Tiers:    []int{300},
		Props:    60,
		Clients:  4,
		Duration: 200 * time.Millisecond,
		Dir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tiers) != 1 || len(tbl.Rows) != 2 {
		t.Fatalf("tiers = %d, rows = %d", len(rep.Tiers), len(tbl.Rows))
	}
	tier := rep.Tiers[0]
	if tier.Users != 300 || tier.Groups == 0 {
		t.Fatalf("tier population: users=%d groups=%d", tier.Users, tier.Groups)
	}
	if tier.Baseline.SelectOps == 0 || tier.Cached.SelectOps == 0 {
		t.Fatalf("no selects measured: baseline=%d cached=%d",
			tier.Baseline.SelectOps, tier.Cached.SelectOps)
	}
	if tier.Baseline.Cache != nil {
		t.Fatal("baseline run reported cache counters")
	}
	if tier.Cached.Cache == nil {
		t.Fatal("cached run missing cache counters")
	}
	if got := tier.Cached.Cache.Hits + tier.Cached.Cache.Misses; got == 0 {
		t.Fatal("cached run saw no cache traffic")
	}
	if !tier.Identical {
		t.Fatal("cached select diverged from fresh selection after quiesce")
	}
	if rep.WriteRatio != "1:10" {
		t.Fatalf("write ratio = %q", rep.WriteRatio)
	}
	// The report must round-trip as JSON (it is written to BENCH_steady.json).
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("report does not marshal: %v", err)
	}
}
