package experiments

import (
	"fmt"
	"time"

	"podium/internal/baselines"
	"podium/internal/groups"
	"podium/internal/synth"
)

// ScalabilityConfig parameterizes the runtime experiments (Figures 5 and 6).
// The paper varies the population size with profiles of up to 200 properties
// (Figure 5) and varies profile size at a fixed 8K users (Figure 6),
// expecting linear growth for Podium and the distance baseline and a ~9×
// penalty for clustering.
type ScalabilityConfig struct {
	Budget int
	Seed   int64
	// UserCounts is the Figure 5 sweep; ProfileProps the Figure 6 sweep.
	UserCounts   []int
	ProfileProps []int
	// FixedUsers is Figure 6's fixed population size.
	FixedUsers int
	// Selectors under timing; defaults exclude Random (its cost is
	// "immediate", as the paper notes).
	Selectors []baselines.Selector
}

func (c ScalabilityConfig) withDefaults() ScalabilityConfig {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if len(c.UserCounts) == 0 {
		c.UserCounts = []int{250, 500, 1000, 2000, 4000}
	}
	if len(c.ProfileProps) == 0 {
		c.ProfileProps = []int{25, 50, 100, 150, 200}
	}
	if c.FixedUsers <= 0 {
		c.FixedUsers = 2000
	}
	if c.Selectors == nil {
		c.Selectors = []baselines.Selector{
			baselines.Podium{Weights: groups.WeightLBS, Coverage: groups.CoverSingle},
			baselines.Clustering{Seed: c.Seed},
			baselines.Distance{},
		}
	}
	return c
}

// scaleDataset produces a population of n users whose profiles carry roughly
// props properties each, by tuning the generator's dimensionality knobs.
func scaleDataset(seed int64, n, props int) *synth.Dataset {
	cfg := synth.Config{
		Name:               fmt.Sprintf("scal-%d-%d", n, props),
		Seed:               seed,
		Users:              n,
		Destinations:       n * 2,
		MeanReviewsPerUser: 18,
		// Dimensionality grows with the requested profile size: enable the
		// per-city aggregates and enrichment only for larger targets.
		PerCityCategoryProps: props >= 100,
		EnrichTaxonomy:       props >= 50,
		InferFunctionalCity:  props >= 150,
		Cities:               maxInt(4, props/8),
	}
	return synth.Generate(cfg)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// timeSelector measures one selection run (excluding index construction,
// which is the offline grouping step shared by all algorithms).
func timeSelector(sel baselines.Selector, ix *groups.Index, budget int) float64 {
	start := time.Now()
	sel.Select(ix, budget)
	return time.Since(start).Seconds()
}

// RunScalabilityUsers reproduces Figure 5: execution time as the population
// grows, profiles held at up to ~200 properties.
func RunScalabilityUsers(cfg ScalabilityConfig) *Table {
	cfg = cfg.withDefaults()
	t := &Table{Title: "Scalability in |U| (seconds)", Metrics: nil}
	for _, sel := range cfg.Selectors {
		t.Metrics = append(t.Metrics, sel.Name())
	}
	for _, n := range cfg.UserCounts {
		ds := scaleDataset(cfg.Seed, n, 200)
		ix := groups.Build(ds.Repo, groups.Config{K: 3})
		row := Row{Name: fmt.Sprintf("|U|=%d", n), Values: map[string]float64{}}
		for _, sel := range cfg.Selectors {
			row.Values[sel.Name()] = timeSelector(sel, ix, cfg.Budget)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// RunScalabilityProfile reproduces Figure 6: execution time as average
// profile size grows, population fixed.
func RunScalabilityProfile(cfg ScalabilityConfig) *Table {
	cfg = cfg.withDefaults()
	t := &Table{Title: fmt.Sprintf("Scalability in profile size (|U|=%d, seconds)", cfg.FixedUsers)}
	for _, sel := range cfg.Selectors {
		t.Metrics = append(t.Metrics, sel.Name())
	}
	for _, props := range cfg.ProfileProps {
		ds := scaleDataset(cfg.Seed, cfg.FixedUsers, props)
		ix := groups.Build(ds.Repo, groups.Config{K: 3})
		avg := avgProfileSize(ds)
		row := Row{Name: fmt.Sprintf("props≈%d (avg %.0f)", props, avg), Values: map[string]float64{}}
		for _, sel := range cfg.Selectors {
			row.Values[sel.Name()] = timeSelector(sel, ix, cfg.Budget)
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

func avgProfileSize(ds *synth.Dataset) float64 {
	total := 0
	for u := 0; u < ds.Repo.NumUsers(); u++ {
		total += ds.Repo.Profile(profileUser(u)).Len()
	}
	return float64(total) / float64(ds.Repo.NumUsers())
}
