package experiments

import (
	"testing"

	"podium/internal/core"
)

// TestRulesSuiteShapes pins the rules suite's acceptance shapes on small
// tiers (the full sweep is a bench, not a test): one row per (tier, rule),
// every rule produces a valid budget-sized selection, the default rule's
// normalized coverage leads or ties every alternative (greedy on the paper's
// own objective cannot lose to a reshaped credit schedule on that axis), and
// fairness-oriented rules reach at least the default's group breadth.
func TestRulesSuiteShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("rules suite smoke is seconds-long")
	}
	tiers := []int{1000, 3000}
	_, rep, err := RunRulesSuite(RulesConfig{Seed: 7, Tiers: tiers, Repetitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	names := core.RuleNames()
	if want := len(tiers) * len(names); len(rep.Rows) != want {
		t.Fatalf("expected %d rows, got %d", want, len(rep.Rows))
	}
	if rep.MaxVsDefault <= 0 || rep.MinDefaultCoverageFrac <= 0 {
		t.Fatalf("degenerate headline metrics: %+v", rep)
	}
	byTier := make(map[int]map[string]RulesRow)
	for _, row := range rep.Rows {
		if row.SelectSec <= 0 || row.Score <= 0 || row.GroupsCoverable == 0 {
			t.Fatalf("degenerate row: %+v", row)
		}
		if row.CoverageFrac <= 0 || row.CoverageFrac > 1 || row.FairnessFrac <= 0 || row.FairnessFrac > 1 {
			t.Fatalf("fraction out of range: %+v", row)
		}
		if (row.Rule == "coverage") != row.Default {
			t.Fatalf("default flag mislabeled: %+v", row)
		}
		if byTier[row.Users] == nil {
			byTier[row.Users] = make(map[string]RulesRow)
		}
		byTier[row.Users][row.Rule] = row
	}
	for users, rows := range byTier {
		def := rows["coverage"]
		for name, row := range rows {
			if row.CoverageFrac > def.CoverageFrac+1e-9 {
				t.Errorf("|U|=%d: rule %s coverage frac %.6f beats the default's %.6f",
					users, name, row.CoverageFrac, def.CoverageFrac)
			}
		}
		if ff := rows["fairness-floor"]; ff.FairnessFrac+1e-9 < def.FairnessFrac {
			t.Errorf("|U|=%d: fairness-floor breadth %.4f below the default's %.4f",
				users, ff.FairnessFrac, def.FairnessFrac)
		}
	}
}
