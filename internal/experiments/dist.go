package experiments

import (
	"fmt"
	"runtime"
	"time"

	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/shard"
	"podium/internal/synth"
)

// DistConfig parameterizes the distributed-selection suite: GreeDi two-round
// merge greedy (internal/shard) against single-node exact greedy, swept over
// population tiers and shard counts. The suite answers the two questions the
// sharded subsystem is accountable for: how much coverage the two-round merge
// gives up (none to speak of, empirically), and what the latency/partition
// costs look like as S grows.
type DistConfig struct {
	Seed   int64
	Budget int
	// Tiers is the population sweep (defaults to 10K and 100K users).
	Tiers []int
	// ShardCounts is the S sweep (defaults to 1, 4, 16).
	ShardCounts []int
	// Parallelism is the round-1 worker count (0 = NumCPU) — the per-shard
	// instance is the unit of parallelism.
	Parallelism int
	// Repetitions per timing; the minimum is reported (defaults to 3).
	Repetitions int

	// The replicated HTTP tier (dist_replica.go): a coordinator over
	// httptest-backed replica groups with injected faults, R=1 vs R=2, plus
	// R=2 with one replica of every shard killed.
	//
	// ReplicaUsers is its population (default 5000; negative skips the tier).
	ReplicaUsers int
	// ReplicaShards is its shard count (default 3).
	ReplicaShards int
	// ReplicaSelects is the number of timed selects per cell (default 16).
	ReplicaSelects int
	// FaultRate is the per-request fault probability each replica's injector
	// applies, split 60/40 between HTTP 500s and connection resets
	// (default 0.05).
	FaultRate float64
}

func (c DistConfig) withDefaults() DistConfig {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if len(c.Tiers) == 0 {
		c.Tiers = []int{10000, 100000}
	}
	if len(c.ShardCounts) == 0 {
		c.ShardCounts = []int{1, 4, 16}
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 3
	}
	if c.ReplicaUsers == 0 {
		c.ReplicaUsers = 5000
	}
	if c.ReplicaShards <= 0 {
		c.ReplicaShards = 3
	}
	if c.ReplicaSelects <= 0 {
		c.ReplicaSelects = 16
	}
	if c.FaultRate <= 0 {
		c.FaultRate = 0.05
	}
	return c
}

// DistRow is one (population, shard count) cell of the sweep.
type DistRow struct {
	Users  int `json:"users"`
	Shards int `json:"shards"`
	// PlanSec is the one-time partition cost: consistent-hash assignment,
	// columnar slicing, and per-shard index builds (concurrent).
	PlanSec float64 `json:"plan_sec"`
	// SelectSec is one two-round distributed selection: round-1 greedy on
	// every shard (parallel) plus the exact merge over the winner union.
	SelectSec float64 `json:"select_sec"`
	// ExactSec is single-node exact greedy on the global instance — the
	// latency baseline the distributed path is compared against.
	ExactSec float64 `json:"exact_sec"`
	// Speedup is ExactSec / SelectSec (> 1 means the sharded path is faster).
	Speedup float64 `json:"speedup"`
	// MergedScore / ExactScore are the coverage objectives of the two paths;
	// Ratio = merged/exact is the empirical GreeDi loss (1.0 = lossless).
	MergedScore float64 `json:"merged_score"`
	ExactScore  float64 `json:"exact_score"`
	Ratio       float64 `json:"ratio"`
	// Candidates is the size of the merge round's pool (≤ S × budget).
	Candidates int `json:"candidates"`
	// DegradedRatio is the worst coverage ratio after dropping any single
	// shard's winners from the merge — the coordinator's shard-loss mode.
	// Zero when S = 1 (losing the only shard is total loss, not degradation).
	DegradedRatio float64 `json:"degraded_ratio,omitempty"`
}

// DistReport is serialized to BENCH_dist.json: the distributed selection
// quality/latency trajectory future PRs regress against.
type DistReport struct {
	Suite       string    `json:"suite"`
	Dataset     string    `json:"dataset"`
	Budget      int       `json:"budget"`
	Seed        int64     `json:"seed"`
	Parallelism int       `json:"parallelism"`
	NumCPU      int       `json:"num_cpu"`
	Rows        []DistRow `json:"rows"`
	// MinRatio is the worst merged/exact coverage ratio across the sweep —
	// the headline number (acceptance: ≥ 0.95 at the largest tier).
	MinRatio float64 `json:"min_ratio"`
	// MinDegradedRatio is the worst single-shard-loss ratio across S > 1.
	MinDegradedRatio float64 `json:"min_degraded_ratio"`
	// MaxSpeedup is the best exact-vs-distributed latency ratio observed.
	MaxSpeedup float64 `json:"max_speedup"`
	// Replicated is the HTTP tier: coordinator over replica groups behind
	// fault injectors, timed over the wire (absent when skipped).
	Replicated []ReplicaRow `json:"replicated,omitempty"`
	// ReplicaLossRatio is the R=2 one-replica-of-every-shard-killed coverage
	// over the R=1 baseline — the replication acceptance number (1.0 means
	// replica loss costs nothing).
	ReplicaLossRatio float64 `json:"replica_loss_ratio,omitempty"`
}

// RunDistSuite sweeps the sharded selection subsystem over Tiers × ShardCounts
// and returns the rendered table plus the JSON report.
func RunDistSuite(cfg DistConfig) (*Table, *DistReport, error) {
	cfg = cfg.withDefaults()
	const (
		mSel = "Select (s)"
		mExa = "Exact (s)"
		mPln = "Plan (s)"
		mRat = "Coverage ratio"
		mDeg = "Degraded ratio"
		mP99 = "p99 (s)"
	)
	t := &Table{
		Title:   fmt.Sprintf("Distributed selection: GreeDi merge vs exact (parallelism=%d)", cfg.Parallelism),
		Metrics: []string{mSel, mExa, mPln, mRat, mDeg, mP99},
	}
	rep := &DistReport{
		Suite:       "dist",
		Dataset:     "scale (profiles-only synthetic)",
		Budget:      cfg.Budget,
		Seed:        cfg.Seed,
		Parallelism: cfg.Parallelism,
		NumCPU:      runtime.NumCPU(),
	}

	for _, n := range cfg.Tiers {
		scfg := synth.ScaleLike(n)
		scfg.Seed = cfg.Seed
		repo := synth.Generate(scfg).Repo
		ix := groups.Build(repo, groups.Config{K: 3})
		ix.Freeze()

		// The single-node baseline, once per tier: exact greedy latency and
		// score on the global instance.
		inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
		inst.BaseMarginals()
		opt := core.Options{Parallelism: cfg.Parallelism}
		exact := core.GreedyOpts(inst, cfg.Budget, opt)
		exactSec := timeMin(cfg.Repetitions, func() { core.GreedyOpts(inst, cfg.Budget, opt) })

		for _, s := range cfg.ShardCounts {
			row, err := runDistCell(ix, cfg, n, s, exact.Score, exactSec, opt)
			if err != nil {
				return nil, nil, err
			}
			rep.Rows = append(rep.Rows, row)
			if rep.MinRatio == 0 || row.Ratio < rep.MinRatio {
				rep.MinRatio = row.Ratio
			}
			if row.DegradedRatio > 0 && (rep.MinDegradedRatio == 0 || row.DegradedRatio < rep.MinDegradedRatio) {
				rep.MinDegradedRatio = row.DegradedRatio
			}
			if row.Speedup > rep.MaxSpeedup {
				rep.MaxSpeedup = row.Speedup
			}
			t.Rows = append(t.Rows, Row{
				Name: fmt.Sprintf("|U|=%d S=%d", n, s),
				Values: map[string]float64{
					mSel: row.SelectSec,
					mExa: row.ExactSec,
					mPln: row.PlanSec,
					mRat: row.Ratio,
					mDeg: row.DegradedRatio,
				},
			})
		}
	}
	// The replicated tier rides the same report: select latency lands in the
	// mSel column (p50) so the HTTP rows read against the in-process ones.
	if cfg.ReplicaUsers > 0 {
		if err := runReplicatedTier(cfg, rep, t, mSel, mP99, mRat); err != nil {
			return nil, nil, err
		}
	}
	return t, rep, nil
}

// runDistCell measures one (tier, shard count) cell against the tier's
// precomputed exact baseline.
func runDistCell(ix *groups.Index, cfg DistConfig, n, s int, exactScore, exactSec float64, opt core.Options) (DistRow, error) {
	row := DistRow{Users: n, Shards: s, ExactScore: exactScore, ExactSec: exactSec}

	start := time.Now()
	plan, err := shard.NewPlan(ix, groups.Config{K: 3}, shard.Options{Shards: s, Seed: uint64(cfg.Seed)})
	if err != nil {
		return row, err
	}
	row.PlanSec = time.Since(start).Seconds()

	res, err := plan.Select(groups.WeightLBS, groups.CoverSingle, cfg.Budget, opt)
	if err != nil {
		return row, err
	}
	row.SelectSec = timeMin(cfg.Repetitions, func() {
		if _, err := plan.Select(groups.WeightLBS, groups.CoverSingle, cfg.Budget, opt); err != nil {
			panic(err)
		}
	})
	row.MergedScore = res.Merged.Score
	row.Candidates = len(res.Candidates)
	if exactScore > 0 {
		row.Ratio = res.Merged.Score / exactScore
	} else {
		row.Ratio = 1
	}
	if row.SelectSec > 0 {
		row.Speedup = exactSec / row.SelectSec
	}

	// Shard-loss degradation: re-merge with each shard's winners withheld
	// (the coordinator's survivor merge) and report the worst coverage ratio.
	if s > 1 {
		inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
		for drop := range res.Winners {
			var survivors []profile.UserID
			for sh, w := range res.Winners {
				if sh != drop {
					survivors = append(survivors, w...)
				}
			}
			merged, err := core.MergeGreedy(inst, survivors, cfg.Budget, opt)
			if err != nil {
				return row, err
			}
			ratio := 1.0
			if exactScore > 0 {
				ratio = merged.Score / exactScore
			}
			if row.DegradedRatio == 0 || ratio < row.DegradedRatio {
				row.DegradedRatio = ratio
			}
		}
	}
	return row, nil
}
