// Fault-tolerance benchmark: what the hardened serving layer costs when
// nothing goes wrong, what it delivers when things do, and how admission
// control behaves at writer overload. Three phases:
//
//  1. Hardening overhead — the same in-process workload as the server suite,
//     against the bare snapshot server and against Server.Hardened. The
//     acceptance headline: the middleware must cost < 5% read QPS.
//  2. Fault sweep — resilient clients drive the hardened server over real
//     sockets through the deterministic injector at increasing fault rates;
//     read QPS and tail latency quantify graceful degradation.
//  3. Overload shedding — a deliberately tiny mutation queue under write
//     spam: mutating requests shed with 429 while concurrent reads must all
//     succeed from the last published snapshot.
//
// Phases 1 and 3 run in-process (handler invocations, no sockets) like the
// server suite; phase 2 must cross real connections because Reset and
// Truncate faults abort them — numbers are therefore comparable within a
// phase, not across phases.
package experiments

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"podium/internal/client"
	"podium/internal/faults"
	"podium/internal/groups"
	"podium/internal/server"
)

// FaultsConfig parameterizes the fault-tolerance benchmark.
type FaultsConfig struct {
	Seed int64
	// Users / Props / PropsPerUser shape the population (defaults 1200/1500/8;
	// smaller than the server suite because the sweep runs several servers).
	Users, Props, PropsPerUser int
	// Clients is the closed-loop client count (default 8).
	Clients int
	// Duration is the measured run length per phase configuration (default 2s).
	Duration time.Duration
	// WritePct is the percentage of mutating operations (default 10).
	WritePct int
	Budget   int
	// Rates are the total injected fault rates to sweep (default 0, 1%, 5%),
	// split 40/30/30 across latency, reset and truncate faults.
	Rates []float64
	// Dir holds the repository logs; a temp dir is created when empty.
	Dir string
}

func (c FaultsConfig) withDefaults() FaultsConfig {
	if c.Users <= 0 {
		c.Users = 1200
	}
	if c.Props <= 0 {
		c.Props = 1500
	}
	if c.PropsPerUser <= 0 {
		c.PropsPerUser = 8
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.WritePct <= 0 {
		c.WritePct = 10
	}
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{0, 0.01, 0.05}
	}
	return c
}

// serverConfig adapts the faults config to the server suite's generator and
// driver, so phase 1 measures the exact workload BENCH_server.json measures.
func (c FaultsConfig) serverConfig() ServerConfig {
	return ServerConfig{
		Seed: c.Seed, Users: c.Users, Props: c.Props, PropsPerUser: c.PropsPerUser,
		Clients: c.Clients, Duration: c.Duration, WritePct: c.WritePct, Budget: c.Budget,
	}.withDefaults()
}

// FaultsOverheadStats compares the bare server with the hardened middleware
// on a fault-free workload. Ratio is hardened/plain read QPS.
type FaultsOverheadStats struct {
	PlainReadQPS    float64 `json:"plain_read_qps"`
	HardenedReadQPS float64 `json:"hardened_read_qps"`
	Ratio           float64 `json:"ratio"`
}

// FaultsSweepPoint is one injected-fault-rate configuration of phase 2.
type FaultsSweepPoint struct {
	Rate         float64 `json:"rate"`
	ReadOps      int     `json:"read_ops"`
	WriteOps     int     `json:"write_ops"`
	ReadQPS      float64 `json:"read_qps"`
	WriteQPS     float64 `json:"write_qps"`
	ReadP50Ms    float64 `json:"read_p50_ms"`
	ReadP99Ms    float64 `json:"read_p99_ms"`
	WriteP99Ms   float64 `json:"write_p99_ms"`
	ClientErrors int     `json:"client_errors"`
	Latencies    uint64  `json:"injected_latencies"`
	Resets       uint64  `json:"injected_resets"`
	Truncations  uint64  `json:"injected_truncations"`
}

// FaultsOverloadStats reports phase 3: admission control at writer overload.
type FaultsOverloadStats struct {
	Writes     int     `json:"writes"`
	Shed       int     `json:"shed"`
	ShedRate   float64 `json:"shed_rate"`
	Reads      int     `json:"reads"`
	ReadErrors int     `json:"read_errors"`
}

// FaultsReport is the machine-readable result, serialized to BENCH_faults.json.
type FaultsReport struct {
	Suite       string              `json:"suite"`
	Workload    string              `json:"workload"`
	Users       int                 `json:"users"`
	Clients     int                 `json:"clients"`
	WritePct    int                 `json:"write_pct"`
	Budget      int                 `json:"budget"`
	Seed        int64               `json:"seed"`
	NumCPU      int                 `json:"num_cpu"`
	DurationSec float64             `json:"duration_sec"`
	Overhead    FaultsOverheadStats `json:"overhead"`
	Sweep       []FaultsSweepPoint  `json:"sweep"`
	Overload    FaultsOverloadStats `json:"overload"`
}

func quietLogf(string, ...interface{}) {}

// RunFaultsSuite benchmarks the hardened serving layer and returns the
// rendered table plus the JSON report.
func RunFaultsSuite(cfg FaultsConfig) (*Table, *FaultsReport, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "podium-bench-faults")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
	}
	gcfg := groups.Config{K: 3}
	scfg := cfg.serverConfig()

	// Phase 1: hardening overhead, in-process, fault-free. Fresh identical
	// logs for both runs so neither inherits the other's accumulated writes.
	newServer := func(name string) (*server.MutableServer, error) {
		path := filepath.Join(dir, name+".plog")
		if err := sparseLog(path, scfg); err != nil {
			return nil, err
		}
		return server.NewMutableOpts("bench", path, gcfg, nil,
			server.MutableOptions{BatchWindow: scfg.BatchWindow})
	}
	plain, err := newServer("plain")
	if err != nil {
		return nil, nil, err
	}
	plainReads, _, plainElapsed := driveClients(plain, scfg)
	plainStats := runStats("plain", plainReads, nil, plainElapsed)
	if err := plain.Close(); err != nil {
		return nil, nil, err
	}
	hard, err := newServer("hardened")
	if err != nil {
		return nil, nil, err
	}
	hardReads, _, hardElapsed := driveClients(hard.Hardened(server.HardenOptions{Logf: quietLogf}), scfg)
	hardStats := runStats("hardened", hardReads, nil, hardElapsed)
	if err := hard.Close(); err != nil {
		return nil, nil, err
	}
	overhead := FaultsOverheadStats{
		PlainReadQPS:    plainStats.ReadQPS,
		HardenedReadQPS: hardStats.ReadQPS,
	}
	if overhead.PlainReadQPS > 0 {
		overhead.Ratio = overhead.HardenedReadQPS / overhead.PlainReadQPS
	}

	// Phase 2: the fault sweep, over real sockets.
	var sweep []FaultsSweepPoint
	for i, rate := range cfg.Rates {
		ms, err := newServer(fmt.Sprintf("sweep-%d", i))
		if err != nil {
			return nil, nil, err
		}
		inj := faults.New(faults.Config{
			Seed: cfg.Seed + int64(i), LatencyMs: 2,
			Latency: 0.4 * rate, Reset: 0.3 * rate, Truncate: 0.3 * rate,
		})
		ts := httptest.NewServer(inj.Wrap(ms.Hardened(server.HardenOptions{Logf: quietLogf})))
		readLat, writeLat, errs, elapsed := driveResilientClients(ts.URL, cfg)
		ts.Close()
		if err := ms.Close(); err != nil {
			return nil, nil, err
		}
		counts := inj.Counts()
		sweep = append(sweep, FaultsSweepPoint{
			Rate:         rate,
			ReadOps:      len(readLat),
			WriteOps:     len(writeLat),
			ReadQPS:      float64(len(readLat)) / elapsed,
			WriteQPS:     float64(len(writeLat)) / elapsed,
			ReadP50Ms:    percentileMs(readLat, 0.50),
			ReadP99Ms:    percentileMs(readLat, 0.99),
			WriteP99Ms:   percentileMs(writeLat, 0.99),
			ClientErrors: errs,
			Latencies:    counts.Latency,
			Resets:       counts.Reset,
			Truncations:  counts.Truncate,
		})
	}

	// Phase 3: overload shedding against a deliberately starved writer.
	overload, err := runOverloadPhase(dir, cfg, gcfg)
	if err != nil {
		return nil, nil, err
	}

	rep := &FaultsReport{
		Suite: "faults",
		Workload: fmt.Sprintf("mixed %d%%-write; faults split 40/30/30 latency/reset/truncate; resilient clients",
			cfg.WritePct),
		Users:       cfg.Users,
		Clients:     cfg.Clients,
		WritePct:    cfg.WritePct,
		Budget:      cfg.Budget,
		Seed:        cfg.Seed,
		NumCPU:      runtime.NumCPU(),
		DurationSec: cfg.Duration.Seconds(),
		Overhead:    overhead,
		Sweep:       sweep,
		Overload:    *overload,
	}

	const (
		mReadQPS  = "Read QPS"
		mReadP50  = "Read p50 (ms)"
		mReadP99  = "Read p99 (ms)"
		mWriteQPS = "Write QPS"
		mErrors   = "Client errors"
	)
	t := &Table{
		Title: fmt.Sprintf("Hardened serving under injected faults, %d clients (|U|=%d; in-process rows vs socket rows not comparable)",
			cfg.Clients, cfg.Users),
		Metrics: []string{mReadQPS, mReadP50, mReadP99, mWriteQPS, mErrors},
	}
	t.Rows = append(t.Rows,
		Row{Name: "in-process plain", Values: map[string]float64{
			mReadQPS: plainStats.ReadQPS, mReadP50: plainStats.ReadP50Ms, mReadP99: plainStats.ReadP99Ms,
		}},
		Row{Name: "in-process hardened", Values: map[string]float64{
			mReadQPS: hardStats.ReadQPS, mReadP50: hardStats.ReadP50Ms, mReadP99: hardStats.ReadP99Ms,
		}},
	)
	for _, pt := range sweep {
		t.Rows = append(t.Rows, Row{
			Name: fmt.Sprintf("socket %.0f%% faults", pt.Rate*100),
			Values: map[string]float64{
				mReadQPS: pt.ReadQPS, mReadP50: pt.ReadP50Ms, mReadP99: pt.ReadP99Ms,
				mWriteQPS: pt.WriteQPS, mErrors: float64(pt.ClientErrors),
			},
		})
	}
	return t, rep, nil
}

// driveResilientClients runs cfg.Clients closed-loop resilient clients
// against the server at baseURL for cfg.Duration. The operation mix mirrors
// the in-process driver: reads dominated by group browsing and status polls
// with occasional selections; writes are score updates with periodic
// sign-ups. Returns read/write latency samples (seconds) and the count of
// requests that failed even through retries.
func driveResilientClients(baseURL string, cfg FaultsConfig) (readLat, writeLat []float64, errs int, elapsed float64) {
	type sample struct {
		lat   float64
		write bool
		err   bool
	}
	perClient := make([][]sample, cfg.Clients)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rc := client.NewResilient(baseURL, nil, client.ResilienceOptions{
				Retry: client.RetryOptions{
					MaxAttempts: 6,
					BaseBackoff: time.Millisecond,
					MaxBackoff:  8 * time.Millisecond,
					Seed:        cfg.Seed*31 + int64(c) + 1,
					// The workload's writes are idempotent (absolute scores,
					// unique names), so at-least-once retries are safe.
					RetryNonIdempotent: true,
				},
			})
			rng := rand.New(rand.NewSource(cfg.Seed*1013 + int64(c)))
			nextUser := 0
			for time.Now().Before(deadline) {
				var err error
				write := rng.Intn(100) < cfg.WritePct
				t0 := time.Now()
				switch {
				case write && rng.Intn(100) < 15:
					nextUser++
					_, _, err = rc.AddUser(fmt.Sprintf("f%d-new-%d", c, nextUser),
						map[string]float64{propLabel(rng.Intn(cfg.Props)): float64(rng.Intn(1001)) / 1000})
				case write:
					err = rc.SetScore(rng.Intn(cfg.Users), propLabel(rng.Intn(cfg.Props)),
						float64(rng.Intn(1001))/1000)
				default:
					switch r := rng.Intn(100); {
					case r < 2:
						_, err = rc.Select(client.SelectRequest{Budget: cfg.Budget})
					case r < 72:
						_, err = rc.Groups(20)
					default:
						_, err = rc.Status()
					}
				}
				perClient[c] = append(perClient[c], sample{time.Since(t0).Seconds(), write, err != nil})
			}
		}(c)
	}
	wg.Wait()
	elapsed = time.Since(start).Seconds()
	for _, samples := range perClient {
		for _, s := range samples {
			if s.err {
				errs++
				continue
			}
			if s.write {
				writeLat = append(writeLat, s.lat)
			} else {
				readLat = append(readLat, s.lat)
			}
		}
	}
	return readLat, writeLat, errs, elapsed
}

// runOverloadPhase starves the apply loop (tiny queue, small batches, a
// coalescing window) under write spam and verifies graceful degradation:
// writes shed with 429, reads never fail.
func runOverloadPhase(dir string, cfg FaultsConfig, gcfg groups.Config) (*FaultsOverloadStats, error) {
	path := filepath.Join(dir, "overload.plog")
	if err := sparseLog(path, cfg.serverConfig()); err != nil {
		return nil, err
	}
	ms, err := server.NewMutableOpts("bench", path, gcfg, nil, server.MutableOptions{
		MaxBatch: 8, QueueDepth: 8, BatchWindow: 2 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	h := ms.Hardened(server.HardenOptions{Logf: quietLogf})
	deadline := time.Now().Add(cfg.Duration / 4)

	var writes, shed, reads, readErrs atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 2*cfg.Clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed*2027 + int64(w)))
			for time.Now().Before(deadline) {
				body := fmt.Sprintf(`{"user":%d,"label":%q,"score":%g}`,
					rng.Intn(cfg.Users), propLabel(rng.Intn(cfg.Props)), float64(rng.Intn(1001))/1000)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/api/scores", strings.NewReader(body)))
				writes.Add(1)
				if rec.Code == http.StatusTooManyRequests {
					shed.Add(1)
				} else if rec.Code != http.StatusOK {
					return // surfaces as writes != ok+shed in the report
				}
			}
		}(w)
	}
	for r := 0; r < cfg.Clients/2+1; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/status", nil))
				reads.Add(1)
				if rec.Code != http.StatusOK {
					readErrs.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if err := ms.Close(); err != nil {
		return nil, err
	}
	st := &FaultsOverloadStats{
		Writes:     int(writes.Load()),
		Shed:       int(shed.Load()),
		Reads:      int(reads.Load()),
		ReadErrors: int(readErrs.Load()),
	}
	if st.Writes > 0 {
		st.ShedRate = float64(st.Shed) / float64(st.Writes)
	}
	return st, nil
}
