// Server-serving benchmark: the snapshot architecture against the
// single-mutex architecture it replaced. Both servers are driven in-process
// (handler invocations on httptest recorders, no sockets), so the numbers
// isolate the serving path itself: request decoding, instance construction,
// selection, explanation, encoding, and — on the write path — durability and
// index maintenance.
package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"podium/internal/core"
	"podium/internal/explain"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/repolog"
	"podium/internal/server"
)

// ServerConfig parameterizes the serving benchmark. The dataset is a sparse
// opinion matrix — a large property vocabulary with a handful of scored
// properties per user — which is the regime where per-request instance
// construction and group sorting dominate the old read path.
type ServerConfig struct {
	Seed int64
	// Users / Props / PropsPerUser shape the synthetic population
	// (defaults 2000 / 2500 / 8).
	Users, Props, PropsPerUser int
	// Clients is the closed-loop client count (default 8).
	Clients int
	// Duration is the measured run length per server (default 2s).
	Duration time.Duration
	// WritePct is the percentage of operations that mutate (default 10).
	WritePct int
	// BatchWindow is the snapshot writer's coalescing window (default 10ms).
	// Zero keeps the default; batching is the point of the architecture, so
	// the suite always runs with a window.
	BatchWindow time.Duration
	Budget      int
	// Dir holds the repository logs; a temp dir is created when empty.
	Dir string
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Users <= 0 {
		c.Users = 2000
	}
	if c.Props <= 0 {
		c.Props = 2500
	}
	if c.PropsPerUser <= 0 {
		c.PropsPerUser = 8
	}
	if c.Clients <= 0 {
		c.Clients = 8
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.WritePct <= 0 {
		c.WritePct = 10
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 10 * time.Millisecond
	}
	if c.Budget <= 0 {
		c.Budget = 8
	}
	return c
}

// ServerRunStats is one server's measured throughput and latency.
type ServerRunStats struct {
	Server     string  `json:"server"`
	ReadOps    int     `json:"read_ops"`
	WriteOps   int     `json:"write_ops"`
	ReadQPS    float64 `json:"read_qps"`
	WriteQPS   float64 `json:"write_qps"`
	ReadP50Ms  float64 `json:"read_p50_ms"`
	ReadP99Ms  float64 `json:"read_p99_ms"`
	WriteP50Ms float64 `json:"write_p50_ms"`
	WriteP99Ms float64 `json:"write_p99_ms"`
	// Batches/Mutations report the snapshot writer's coalescing
	// (mutations/batches = mean batch size); zero for the baseline.
	Batches   uint64 `json:"batches,omitempty"`
	Mutations uint64 `json:"mutations,omitempty"`
}

// ServerReport is the machine-readable result, serialized to
// BENCH_server.json. ReadSpeedup is the acceptance headline: snapshot read
// QPS over baseline read QPS on the same mixed workload.
type ServerReport struct {
	Suite       string         `json:"suite"`
	Workload    string         `json:"workload"`
	Users       int            `json:"users"`
	Properties  int            `json:"properties"`
	Groups      int            `json:"groups"`
	Clients     int            `json:"clients"`
	WritePct    int            `json:"write_pct"`
	Budget      int            `json:"budget"`
	Seed        int64          `json:"seed"`
	NumCPU      int            `json:"num_cpu"`
	DurationSec float64        `json:"duration_sec"`
	Baseline    ServerRunStats `json:"baseline"`
	Snapshot    ServerRunStats `json:"snapshot"`
	ReadSpeedup float64        `json:"read_speedup"`
}

// sparseLog writes the benchmark population into a fresh repository log at
// path: Users users, scores on PropsPerUser properties drawn from a
// Props-sized vocabulary. Both servers replay the same log, so they start
// from identical state.
func sparseLog(path string, cfg ServerConfig) error {
	l, err := repolog.Open(path)
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for u := 0; u < cfg.Users; u++ {
		id, err := l.AddUser(fmt.Sprintf("user-%05d", u))
		if err != nil {
			l.Close()
			return err
		}
		for _, p := range rng.Perm(cfg.Props)[:cfg.PropsPerUser] {
			score := float64(rng.Intn(1001)) / 1000
			if err := l.SetScore(id, propLabel(p), score); err != nil {
				l.Close()
				return err
			}
		}
	}
	return l.Close()
}

func propLabel(p int) string { return fmt.Sprintf("prop-%05d", p) }

// benchOp is one generated request. The mix mirrors a procurement dashboard:
// reads are dominated by group browsing and status polling with periodic
// selections; writes are mostly score updates with occasional sign-ups.
type benchOp struct {
	method, path, body string
	write              bool
}

// opStream deterministically generates the operation mix for one client.
func opStream(clientID int, cfg ServerConfig) func() benchOp {
	rng := rand.New(rand.NewSource(cfg.Seed*1009 + int64(clientID)))
	nextUser := 0
	return func() benchOp {
		if rng.Intn(100) < cfg.WritePct {
			if rng.Intn(100) < 15 {
				nextUser++
				name := fmt.Sprintf("c%d-new-%d", clientID, nextUser)
				props := make([]string, 0, 4)
				for _, p := range rng.Perm(cfg.Props)[:4] {
					props = append(props, fmt.Sprintf("%q:%g", propLabel(p), float64(rng.Intn(1001))/1000))
				}
				return benchOp{http.MethodPost, "/api/users",
					fmt.Sprintf(`{"name":%q,"properties":{%s}}`, name, strings.Join(props, ",")), true}
			}
			return benchOp{http.MethodPost, "/api/scores",
				fmt.Sprintf(`{"user":%d,"label":%q,"score":%g}`,
					rng.Intn(cfg.Users), propLabel(rng.Intn(cfg.Props)), float64(rng.Intn(1001))/1000), true}
		}
		switch r := rng.Intn(100); {
		case r < 2:
			return benchOp{http.MethodPost, "/api/select",
				fmt.Sprintf(`{"budget":%d}`, cfg.Budget), false}
		case r < 70:
			return benchOp{http.MethodGet, "/api/groups?limit=20", "", false}
		case r < 82:
			return benchOp{http.MethodGet,
				"/api/distribution?prop=" + propLabel(rng.Intn(cfg.Props)), "", false}
		default:
			return benchOp{http.MethodGet, "/api/status", "", false}
		}
	}
}

// driveClients runs cfg.Clients closed-loop clients against h for
// cfg.Duration and returns read/write latency samples (in seconds).
func driveClients(h http.Handler, cfg ServerConfig) (readLat, writeLat []float64, elapsed float64) {
	type sample struct {
		lat   float64
		write bool
	}
	perClient := make([][]sample, cfg.Clients)
	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			next := opStream(c, cfg)
			for time.Now().Before(deadline) {
				op := next()
				req := httptest.NewRequest(op.method, op.path, strings.NewReader(op.body))
				rec := httptest.NewRecorder()
				t0 := time.Now()
				h.ServeHTTP(rec, req)
				lat := time.Since(t0).Seconds()
				// A handful of vocabulary properties may end up unscored by
				// the generator; their distribution probes 404 on both
				// servers and still count as served reads.
				if rec.Code != http.StatusOK &&
					!(rec.Code == http.StatusNotFound && strings.HasPrefix(op.path, "/api/distribution")) {
					panic(fmt.Sprintf("server bench: %s %s -> %d: %s", op.method, op.path, rec.Code, rec.Body.String()))
				}
				perClient[c] = append(perClient[c], sample{lat, op.write})
			}
		}(c)
	}
	wg.Wait()
	elapsed = time.Since(start).Seconds()
	for _, samples := range perClient {
		for _, s := range samples {
			if s.write {
				writeLat = append(writeLat, s.lat)
			} else {
				readLat = append(readLat, s.lat)
			}
		}
	}
	return readLat, writeLat, elapsed
}

func percentileMs(lat []float64, p float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)-1))
	return sorted[i] * 1000
}

func runStats(name string, readLat, writeLat []float64, elapsed float64) ServerRunStats {
	return ServerRunStats{
		Server:     name,
		ReadOps:    len(readLat),
		WriteOps:   len(writeLat),
		ReadQPS:    float64(len(readLat)) / elapsed,
		WriteQPS:   float64(len(writeLat)) / elapsed,
		ReadP50Ms:  percentileMs(readLat, 0.50),
		ReadP99Ms:  percentileMs(readLat, 0.99),
		WriteP50Ms: percentileMs(writeLat, 0.50),
		WriteP99Ms: percentileMs(writeLat, 0.99),
	}
}

// RunServerSuite benchmarks both serving architectures on the same workload
// and returns the rendered table plus the JSON report.
func RunServerSuite(cfg ServerConfig) (*Table, *ServerReport, error) {
	cfg = cfg.withDefaults()
	dir := cfg.Dir
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "podium-bench-server")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
	}
	gcfg := groups.Config{K: 3}

	// The baseline: the architecture this suite exists to retire.
	basePath := filepath.Join(dir, "baseline.plog")
	if err := sparseLog(basePath, cfg); err != nil {
		return nil, nil, err
	}
	base, err := newMutexServer(basePath, gcfg)
	if err != nil {
		return nil, nil, err
	}
	baseReads, baseWrites, baseElapsed := driveClients(base, cfg)
	baseStats := runStats("baseline-mutex", baseReads, baseWrites, baseElapsed)
	if err := base.close(); err != nil {
		return nil, nil, err
	}

	// The snapshot server, on an identical starting population.
	snapPath := filepath.Join(dir, "snapshot.plog")
	if err := sparseLog(snapPath, cfg); err != nil {
		return nil, nil, err
	}
	snap, err := server.NewMutableOpts("bench", snapPath, gcfg, nil,
		server.MutableOptions{BatchWindow: cfg.BatchWindow})
	if err != nil {
		return nil, nil, err
	}
	snapReads, snapWrites, snapElapsed := driveClients(snap, cfg)
	snapStats := runStats("snapshot", snapReads, snapWrites, snapElapsed)
	snapStats.Batches, snapStats.Mutations = snap.BatchStats()
	numGroups := snap.Snapshot().Index().NumGroups()
	props := snap.Repository().NumProperties()
	if err := snap.Close(); err != nil {
		return nil, nil, err
	}

	rep := &ServerReport{
		Suite:       "server",
		Workload:    fmt.Sprintf("mixed %d%%-write, reads 2/68/12/18 select/groups/distribution/status", cfg.WritePct),
		Users:       cfg.Users,
		Properties:  props,
		Groups:      numGroups,
		Clients:     cfg.Clients,
		WritePct:    cfg.WritePct,
		Budget:      cfg.Budget,
		Seed:        cfg.Seed,
		NumCPU:      runtime.NumCPU(),
		DurationSec: cfg.Duration.Seconds(),
		Baseline:    baseStats,
		Snapshot:    snapStats,
	}
	if baseStats.ReadQPS > 0 {
		rep.ReadSpeedup = snapStats.ReadQPS / baseStats.ReadQPS
	}

	const (
		mReadQPS  = "Read QPS"
		mWriteQPS = "Write QPS"
		mReadP50  = "Read p50 (ms)"
		mReadP99  = "Read p99 (ms)"
		mWriteP99 = "Write p99 (ms)"
	)
	t := &Table{
		Title:   fmt.Sprintf("Serving architectures, %d clients, %d%% writes (|U|=%d, |G|=%d)", cfg.Clients, cfg.WritePct, cfg.Users, numGroups),
		Metrics: []string{mReadQPS, mWriteQPS, mReadP50, mReadP99, mWriteP99},
	}
	for _, s := range []ServerRunStats{baseStats, snapStats} {
		t.Rows = append(t.Rows, Row{Name: s.Server, Values: map[string]float64{
			mReadQPS: s.ReadQPS, mWriteQPS: s.WriteQPS,
			mReadP50: s.ReadP50Ms, mReadP99: s.ReadP99Ms, mWriteP99: s.WriteP99Ms,
		}})
	}
	return t, rep, nil
}

// mutexServer is a faithful replica of the pre-snapshot serving architecture,
// preserved here as the benchmark baseline: one global mutex serializes every
// request; each selection read rebuilds its diversification instance and each
// group listing re-sorts the groups; each mutation fsyncs individually and
// mutates the (single, shared) index in place.
type mutexServer struct {
	mu   sync.Mutex
	log  *repolog.Log
	repo *profile.Repository
	ix   *groups.Index
	cfg  groups.Config
	mux  *http.ServeMux
}

func newMutexServer(logPath string, cfg groups.Config) (*mutexServer, error) {
	l, err := repolog.Open(logPath)
	if err != nil {
		return nil, err
	}
	s := &mutexServer{
		log:  l,
		repo: l.Repository(),
		cfg:  cfg,
		mux:  http.NewServeMux(),
	}
	s.ix = groups.Build(s.repo, cfg)
	s.mux.HandleFunc("/api/status", s.handleStatus)
	s.mux.HandleFunc("/api/groups", s.handleGroups)
	s.mux.HandleFunc("/api/select", s.handleSelect)
	s.mux.HandleFunc("/api/distribution", s.handleDistribution)
	s.mux.HandleFunc("/api/users", s.handleAddUser)
	s.mux.HandleFunc("/api/scores", s.handleSetScore)
	return s, nil
}

func (s *mutexServer) close() error { return s.log.Close() }

func (s *mutexServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mux.ServeHTTP(w, r)
}

func (s *mutexServer) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func (s *mutexServer) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"name":       "baseline",
		"users":      s.repo.NumUsers(),
		"properties": s.repo.NumProperties(),
		"groups":     s.ix.NumGroups(),
	})
}

func (s *mutexServer) handleGroups(w http.ResponseWriter, r *http.Request) {
	limit := 50
	fmt.Sscanf(r.URL.Query().Get("limit"), "%d", &limit)
	type row struct {
		ID     int     `json:"id"`
		Label  string  `json:"label"`
		Size   int     `json:"size"`
		Weight float64 `json:"weight"`
	}
	top := s.ix.TopKBySize(limit)
	out := make([]row, 0, len(top))
	for _, gid := range top {
		g := s.ix.Group(gid)
		out = append(out, row{int(gid), g.Label(s.repo.Catalog()), g.Size(), float64(g.Size())})
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *mutexServer) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Budget int `json:"budget"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	inst := groups.NewInstance(s.ix, groups.WeightLBS, groups.CoverSingle, req.Budget)
	res := core.Greedy(inst, req.Budget)
	rep := explain.NewReport(inst, res, 200)
	type userRow struct {
		ID       int     `json:"id"`
		Name     string  `json:"name"`
		Marginal float64 `json:"marginal"`
	}
	type groupRow struct {
		ID      int     `json:"id"`
		Label   string  `json:"label"`
		Weight  float64 `json:"weight"`
		Covered bool    `json:"covered"`
	}
	resp := struct {
		Users       []userRow  `json:"users"`
		Score       float64    `json:"score"`
		TopKCovered int        `json:"top_k_covered"`
		Groups      []groupRow `json:"groups"`
	}{Score: inst.Score(res.Users), TopKCovered: rep.TopKCovered}
	for _, ue := range rep.Users {
		resp.Users = append(resp.Users, userRow{int(ue.User), ue.Name, ue.Marginal})
	}
	for _, sg := range rep.Groups {
		resp.Groups = append(resp.Groups, groupRow{int(sg.Group.ID), sg.Group.Label, sg.Group.Weight, sg.Covered})
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *mutexServer) handleDistribution(w http.ResponseWriter, r *http.Request) {
	label := r.URL.Query().Get("prop")
	pid, ok := s.repo.Catalog().Lookup(label)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown property %q", label), http.StatusNotFound)
		return
	}
	inst := groups.NewInstance(s.ix, groups.WeightLBS, groups.CoverSingle, 8)
	all, subset := explain.Distribution(inst, nil, pid)
	buckets := make([]string, 0, len(all))
	for _, b := range s.ix.Buckets(pid) {
		buckets = append(buckets, b.String())
	}
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"property": label,
		"buckets":  buckets,
		"all":      all,
		"subset":   subset,
	})
}

func (s *mutexServer) handleAddUser(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name       string             `json:"name"`
		Properties map[string]float64 `json:"properties"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u, err := s.log.AddUser(req.Name)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	labels := make([]string, 0, len(req.Properties))
	for label := range req.Properties {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		if err := s.log.SetScore(u, label, req.Properties[label]); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	if err := s.log.Sync(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	unbucketed, err := s.ix.IndexUser(u)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	for _, pid := range unbucketed {
		if err := s.ix.BucketProperty(pid, s.cfg); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	s.writeJSON(w, http.StatusOK, map[string]int{"id": int(u)})
}

func (s *mutexServer) handleSetScore(w http.ResponseWriter, r *http.Request) {
	var req struct {
		User  int     `json:"user"`
		Label string  `json:"label"`
		Score float64 `json:"score"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	u := profile.UserID(req.User)
	pid, known := s.repo.Catalog().Lookup(req.Label)
	if err := s.log.SetScore(u, req.Label, req.Score); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if err := s.log.Sync(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if !known {
		newPid, _ := s.repo.Catalog().Lookup(req.Label)
		if err := s.ix.BucketProperty(newPid, s.cfg); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	} else if err := s.ix.UpdateScore(u, pid); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "updated"})
}
