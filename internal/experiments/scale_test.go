package experiments

import "testing"

// TestScaleSuiteShapes pins the scale suite's acceptance shapes on a small
// tier (the full sweep is a bench, not a test): the v2 image loads an order
// of magnitude faster than the JSON decode (the committed BENCH_scale.json
// shows ≥50× at scale), select latency is sub-linear versus the 2K seed
// baseline, and the snapshot clone does not grow with the population.
func TestScaleSuiteShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("scale suite smoke is seconds-long")
	}
	_, rep, err := RunScaleSuite(ScaleConfig{Seed: 7, Tiers: []int{4000, 10000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("expected 2 rows, got %d", len(rep.Rows))
	}
	if rep.Baseline2KSelectSec <= 0 {
		t.Fatal("missing 2K reference baseline")
	}
	for _, row := range rep.Rows {
		if row.Links == 0 || row.Groups == 0 || row.RepoBytes == 0 {
			t.Fatalf("|U|=%d: degenerate instance: %+v", row.Users, row)
		}
		if row.ImageSpeedup < 10 {
			t.Errorf("|U|=%d: image only %.1fx faster than JSON decode", row.Users, row.ImageSpeedup)
		}
		if row.SelectVsLinear >= 1 {
			t.Errorf("|U|=%d: select latency is not sub-linear (ratio %.2f)", row.Users, row.SelectVsLinear)
		}
	}
	// Clone cost must not scale with the population: allow generous noise,
	// but 2.5x users must stay well under a proportional 2.5x cost.
	small, large := rep.Rows[0], rep.Rows[1]
	if large.CloneUs > small.CloneUs*2 {
		t.Errorf("snapshot clone grew with users: %.0fµs at %d vs %.0fµs at %d",
			small.CloneUs, small.Users, large.CloneUs, large.Users)
	}
}
