package experiments

import (
	"podium/internal/baselines"
	"podium/internal/groups"
	"podium/internal/metrics"
)

// MetricProportionate is the Definition 2.1 deviation column of the extended
// comparison (lower is better — the only such metric in the suite, so it is
// excluded from leader normalization and reported raw).
const MetricProportionate = "Prop Deviation"

// RunExtendedIntrinsic widens the Figure 3 comparison with the selection
// methods Table 1 of the paper surveys but does not benchmark: classical
// stratified sampling (the survey-methodology representative) and the
// max-min flavor of distance-based selection, plus the proportionate-
// allocation deviation of Definition 2.1 as an extra column. It demonstrates
// the paper's Section 2 argument empirically: stratified sampling is sound
// on its one stratification dimension but cannot cover a high-dimensional
// group structure.
func RunExtendedIntrinsic(cfg IntrinsicConfig) *Table {
	cfg = cfg.withDefaults()
	selectors := append(cfg.Selectors,
		baselines.Stratified{Seed: cfg.Seed},
		baselines.DistanceMaxMin{},
	)
	ix := groups.Build(cfg.Dataset.Repo, groups.Config{K: 3})
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
	t := &Table{
		Title:   "Extended intrinsic comparison — " + cfg.Dataset.Name,
		Metrics: []string{MetricTotalScore, MetricTopK, MetricIntersected, MetricDistribution, MetricProportionate},
	}
	for _, sel := range selectors {
		users := sel.Select(ix, cfg.Budget)
		t.Rows = append(t.Rows, Row{
			Name: sel.Name(),
			Values: map[string]float64{
				MetricTotalScore:    metrics.TotalScore(inst, users),
				MetricTopK:          metrics.TopKCoverage(ix, users, cfg.TopK),
				MetricIntersected:   metrics.IntersectedCoverage(ix, users, cfg.TopK),
				MetricDistribution:  metrics.DistributionSimilarity(ix, users, cfg.TopGroups),
				MetricProportionate: metrics.ProportionateDeviation(ix, users, cfg.TopK),
			},
		})
	}
	return t
}
