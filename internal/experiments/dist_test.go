package experiments

import "testing"

// TestDistSuiteShapes runs the distributed suite on a miniature sweep and
// checks the invariants the full bench relies on: every cell is measured, the
// S=1 merge is lossless, every ratio is a sane fraction of exact, and the
// degraded ratio is only reported (and bounded) where a shard can be lost.
func TestDistSuiteShapes(t *testing.T) {
	tab, rep, err := RunDistSuite(DistConfig{
		Seed: 3, Budget: 4,
		Tiers:          []int{400},
		ShardCounts:    []int{1, 3},
		Parallelism:    2,
		Repetitions:    1,
		ReplicaUsers:   300,
		ReplicaShards:  2,
		ReplicaSelects: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 2 in-process cells + 3 replicated HTTP cells (R=1, R=2, R=2 with one
	// replica of every shard killed).
	if len(rep.Rows) != 2 || len(tab.Rows) != 5 {
		t.Fatalf("rows = %d/%d, want 2 report and 5 table rows", len(rep.Rows), len(tab.Rows))
	}
	for _, row := range rep.Rows {
		if row.SelectSec <= 0 || row.ExactSec <= 0 || row.PlanSec <= 0 {
			t.Fatalf("unmeasured cell: %+v", row)
		}
		// Greedy is a heuristic on both sides, so the merge can land a hair
		// above exact (observed up to ~1.003 on the full sweep); well above 1
		// would mean the scores aren't commensurate.
		if row.Ratio <= 0 || row.Ratio > 1.05 {
			t.Fatalf("coverage ratio %v outside (0,1.05]: %+v", row.Ratio, row)
		}
		switch row.Shards {
		case 1:
			if row.Ratio != 1 {
				t.Fatalf("S=1 merge lost coverage: ratio %v", row.Ratio)
			}
			if row.DegradedRatio != 0 {
				t.Fatalf("S=1 reported a degraded ratio: %+v", row)
			}
		default:
			if row.Candidates > row.Shards*4 {
				t.Fatalf("candidate pool %d exceeds S×budget: %+v", row.Candidates, row)
			}
			if row.DegradedRatio <= 0 || row.DegradedRatio > 1.05 {
				t.Fatalf("degraded ratio %v outside (0,1.05]: %+v", row.DegradedRatio, row)
			}
		}
	}
	if rep.MinRatio <= 0 || rep.MinDegradedRatio <= 0 {
		t.Fatalf("report summaries unset: %+v", rep)
	}

	if len(rep.Replicated) != 3 {
		t.Fatalf("replicated tier has %d cells, want 3", len(rep.Replicated))
	}
	for _, row := range rep.Replicated {
		if row.P50Sec <= 0 || row.P99Sec <= 0 || row.Score <= 0 {
			t.Fatalf("unmeasured replicated cell: %+v", row)
		}
		// Every cell keeps a live replica per shard, so no select may degrade.
		if row.Degraded != 0 {
			t.Fatalf("replicated cell reported %d degraded selects: %+v", row.Degraded, row)
		}
		// Replicas hold identical data and greedy is deterministic: coverage
		// must match the R=1 baseline exactly, faults and loss included.
		if row.Ratio != 1 {
			t.Fatalf("replicated cell lost coverage (ratio %v): %+v", row.Ratio, row)
		}
	}
	last := rep.Replicated[2]
	if last.Replicas != 2 || !last.ReplicaLoss {
		t.Fatalf("last replicated cell is not the R=2 loss cell: %+v", last)
	}
	if rep.ReplicaLossRatio != 1 {
		t.Fatalf("ReplicaLossRatio = %v, want exactly 1 (replication restores full coverage)", rep.ReplicaLossRatio)
	}
}
