package experiments

import (
	"fmt"
	"runtime"
	"time"

	"podium/internal/campaign"
	"podium/internal/core"
	"podium/internal/groups"
)

// CampaignConfig parameterizes the campaign-orchestrator benchmark suite: a
// non-response sweep over one synthetic population, comparing the repaired
// campaign against a single-round no-repair baseline and against the
// full-population greedy ideal.
type CampaignConfig struct {
	Seed   int64
	Budget int
	// Users is the synthetic population size (default 2000).
	Users int
	// NonResponseRates is the sweep (default 0.1, 0.3, 0.5).
	NonResponseRates []float64
	// Decline is the population's campaign-refusal probability (default 0.05).
	Decline float64
	// Workers is the solicitation worker-pool size (default 8).
	Workers int
	// Parallelism is the selection engine's worker count (0 = NumCPU).
	Parallelism int
	// Repetitions per timing; the minimum wall time is reported (default 3).
	Repetitions int
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if c.Users <= 0 {
		c.Users = 2000
	}
	if len(c.NonResponseRates) == 0 {
		c.NonResponseRates = []float64{0.1, 0.3, 0.5}
	}
	if c.Decline < 0 {
		c.Decline = 0
	}
	if c.Decline == 0 {
		c.Decline = 0.05
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 3
	}
	return c
}

// CampaignRow is one non-response rate's measurements.
type CampaignRow struct {
	NonResponse float64 `json:"non_response"`
	// Orchestration volume of the repaired campaign.
	Rounds    int `json:"rounds"`
	Waves     int `json:"waves"`
	Solicited int `json:"solicited"`
	Accepted  int `json:"accepted"`
	Dead      int `json:"dead"`
	// RoundsPerSec is orchestration throughput at TimeScale 0 (no simulated
	// waiting): rounds divided by the fastest observed wall time.
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// RepairSelections counts the restricted re-selections after round 1;
	// RepairLatencyMs is their mean wall time.
	RepairSelections int     `json:"repair_selections"`
	RepairLatencyMs  float64 `json:"repair_latency_ms"`
	// Final weighted group coverage: the repaired campaign, the single-round
	// no-repair baseline, and the full-population greedy ideal.
	CoverageRepaired float64 `json:"coverage_repaired"`
	CoverageNoRepair float64 `json:"coverage_no_repair"`
	CoverageIdeal    float64 `json:"coverage_ideal"`
	// RecoveredFrac is (repaired − no-repair)/(ideal − no-repair): how much of
	// the dropout-induced coverage loss the repair rounds win back (1 when the
	// no-repair baseline already matches the ideal).
	RecoveredFrac float64 `json:"recovered_frac"`
}

// CampaignReport is the machine-readable result of the suite, serialized to
// BENCH_campaign.json.
type CampaignReport struct {
	Suite       string        `json:"suite"`
	Workload    string        `json:"workload"`
	Budget      int           `json:"budget"`
	Seed        int64         `json:"seed"`
	Users       int           `json:"users"`
	Groups      int           `json:"groups"`
	Workers     int           `json:"workers"`
	Parallelism int           `json:"parallelism"`
	NumCPU      int           `json:"num_cpu"`
	Rows        []CampaignRow `json:"rows"`
	// MinRecoveredFrac is the worst repair recovery across the sweep — the
	// regression gate for the repair machinery.
	MinRecoveredFrac float64 `json:"min_recovered_frac"`
}

// RunCampaignSuite benchmarks the campaign orchestrator across a non-response
// sweep and returns both the rendered table and the JSON report.
func RunCampaignSuite(cfg CampaignConfig) (*Table, *CampaignReport, error) {
	cfg = cfg.withDefaults()
	const (
		mRps   = "Rounds/sec"
		mRep   = "Repair ms"
		mCovR  = "Cov repaired"
		mCovNR = "Cov no-repair"
		mCovI  = "Cov ideal"
	)
	t := &Table{
		Title:   fmt.Sprintf("Campaign orchestrator, |U|=%d, B=%d (coverage repair vs baselines)", cfg.Users, cfg.Budget),
		Metrics: []string{mRps, mRep, mCovR, mCovNR, mCovI},
	}
	ds := scaleDataset(cfg.Seed, cfg.Users, 200)
	ix := groups.Build(ds.Repo, groups.Config{K: 3})
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
	rep := &CampaignReport{
		Suite:       "campaign",
		Workload:    "non-response-sweep",
		Budget:      cfg.Budget,
		Seed:        cfg.Seed,
		Users:       ix.Repo().NumUsers(),
		Groups:      ix.NumGroups(),
		Workers:     cfg.Workers,
		Parallelism: cfg.Parallelism,
		NumCPU:      runtime.NumCPU(),
	}
	ideal := inst.Score(core.Greedy(inst, cfg.Budget).Users)

	for _, nr := range cfg.NonResponseRates {
		mk := func(maxRounds int) campaign.Config {
			return campaign.Config{
				Budget:      cfg.Budget,
				MaxRounds:   maxRounds,
				Workers:     cfg.Workers,
				Seed:        cfg.Seed,
				Parallelism: cfg.Parallelism,
				Behavior:    campaign.Behavior{NonResponse: nr, Decline: cfg.Decline},
			}
		}
		// Campaigns are deterministic, so any repetition yields the same
		// transcript; repetitions only sharpen the wall-time measurement.
		var last *campaign.Campaign
		best := 0.0
		for i := 0; i < cfg.Repetitions; i++ {
			c := campaign.New(inst, nil, mk(0))
			start := time.Now()
			if err := c.Run(); err != nil {
				return nil, nil, fmt.Errorf("campaign suite: non-response %.2f: %w", nr, err)
			}
			if s := time.Since(start).Seconds(); i == 0 || s < best {
				best = s
			}
			last = c
		}
		noRepair := campaign.New(inst, nil, mk(1))
		if err := noRepair.Run(); err != nil {
			return nil, nil, fmt.Errorf("campaign suite: no-repair baseline: %w", err)
		}

		st := last.Status()
		cs := last.Stats()
		row := CampaignRow{
			NonResponse:      nr,
			Rounds:           cs.Rounds,
			Waves:            cs.Waves,
			Solicited:        cs.Solicited,
			Accepted:         len(st.Accepted),
			Dead:             len(st.Dead),
			RepairSelections: cs.RepairSelections,
			CoverageRepaired: st.Coverage,
			CoverageNoRepair: noRepair.Status().Coverage,
			CoverageIdeal:    ideal,
		}
		if best > 0 {
			row.RoundsPerSec = float64(cs.Rounds) / best
		}
		if cs.RepairSelections > 0 {
			row.RepairLatencyMs = cs.RepairWallMs / float64(cs.RepairSelections)
		}
		if gap := ideal - row.CoverageNoRepair; gap > 0 {
			row.RecoveredFrac = (row.CoverageRepaired - row.CoverageNoRepair) / gap
		} else {
			row.RecoveredFrac = 1
		}
		rep.Rows = append(rep.Rows, row)
		if len(rep.Rows) == 1 || row.RecoveredFrac < rep.MinRecoveredFrac {
			rep.MinRecoveredFrac = row.RecoveredFrac
		}

		t.Rows = append(t.Rows, Row{
			Name: fmt.Sprintf("non-response %.0f%%", nr*100),
			Values: map[string]float64{
				mRps:   row.RoundsPerSec,
				mRep:   row.RepairLatencyMs,
				mCovR:  row.CoverageRepaired,
				mCovNR: row.CoverageNoRepair,
				mCovI:  row.CoverageIdeal,
			},
		})
	}
	return t, rep, nil
}
