package experiments

import (
	"fmt"
	"runtime"
	"time"

	"podium/internal/core"
	"podium/internal/groups"
)

// EngineConfig parameterizes the selection-engine benchmark suite. The suite
// reuses the Figure 5 scalability workload (population sweep, ~200-property
// profiles, LBS/Single) but times the selection core's execution strategies
// against each other rather than Podium against the baselines: the preserved
// seed implementation (core.ReferenceGreedy), the CSR engine sequentially,
// the lazy variant, and the CSR engine at Parallelism workers.
type EngineConfig struct {
	Seed   int64
	Budget int
	// UserCounts is the population sweep (defaults to the Figure 5 sizes).
	UserCounts []int
	// Parallelism is the worker count of the parallel variant (0 = NumCPU).
	Parallelism int
	// Repetitions per timing; the minimum is reported (defaults to 3).
	Repetitions int
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if len(c.UserCounts) == 0 {
		c.UserCounts = []int{250, 500, 1000, 2000, 4000}
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.NumCPU()
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 3
	}
	return c
}

// EngineRow is one population size's timings, in seconds.
type EngineRow struct {
	Users  int `json:"users"`
	Groups int `json:"groups"`
	// Links is |{(u,G) : u ∈ G}| — the CSR adjacency size.
	Links          int     `json:"links"`
	ReferenceSec   float64 `json:"reference_sec"`
	EngineSeqSec   float64 `json:"engine_seq_sec"`
	LazySec        float64 `json:"lazy_sec"`
	EngineParSec   float64 `json:"engine_par_sec"`
	SpeedupSeq     float64 `json:"speedup_seq"`
	SpeedupPar     float64 `json:"speedup_par"`
	IdenticalToRef bool    `json:"identical_to_reference"`
}

// EngineReport is the machine-readable result of the suite, serialized to
// BENCH_selection.json so future PRs have a perf trajectory to regress
// against. Speedups are relative to the seed sequential greedy.
type EngineReport struct {
	Suite       string      `json:"suite"`
	Workload    string      `json:"workload"`
	Budget      int         `json:"budget"`
	Seed        int64       `json:"seed"`
	Parallelism int         `json:"parallelism"`
	NumCPU      int         `json:"num_cpu"`
	Rows        []EngineRow `json:"rows"`
	// MinSpeedupPar is the worst parallel-engine speedup across the sweep —
	// the regression gate.
	MinSpeedupPar float64 `json:"min_speedup_par"`
}

// timeMin returns the fastest observed run of f: at least reps runs, and —
// because the small sweep sizes finish in ~0.1ms where scheduler noise
// dominates a single run — it keeps repeating until ~30ms have been spent or
// a cap is reached, whichever is later.
func timeMin(reps int, f func()) float64 {
	const (
		window  = 30 * time.Millisecond
		maxRuns = 500
	)
	best := 0.0
	total := time.Duration(0)
	for i := 0; i < maxRuns && (i < reps || total < window); i++ {
		start := time.Now()
		f()
		d := time.Since(start)
		total += d
		if s := d.Seconds(); i == 0 || s < best {
			best = s
		}
	}
	return best
}

// RunEngineSuite benchmarks the selection engine's strategies on the Figure 5
// workload and returns both the rendered table and the JSON report.
func RunEngineSuite(cfg EngineConfig) (*Table, *EngineReport) {
	cfg = cfg.withDefaults()
	const (
		mRef = "Reference (seed)"
		mSeq = "Engine seq"
		mLzy = "Lazy"
		mPar = "Engine par"
		mSpd = "Speedup (ref/par)"
	)
	t := &Table{
		Title:   fmt.Sprintf("Selection engine on the Fig. 5 workload (seconds; parallelism=%d)", cfg.Parallelism),
		Metrics: []string{mRef, mSeq, mLzy, mPar, mSpd},
	}
	rep := &EngineReport{
		Suite:       "engine",
		Workload:    "fig5-scalability-users",
		Budget:      cfg.Budget,
		Seed:        cfg.Seed,
		Parallelism: cfg.Parallelism,
		NumCPU:      runtime.NumCPU(),
	}
	for _, n := range cfg.UserCounts {
		ds := scaleDataset(cfg.Seed, n, 200)
		ix := groups.Build(ds.Repo, groups.Config{K: 3})
		inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
		par := core.Options{Parallelism: cfg.Parallelism}
		seq := core.Options{Parallelism: 1}

		// Warm every path once (also verifies output identity outside timing).
		want := core.ReferenceGreedy(inst, cfg.Budget, nil)
		gotSeq := core.GreedyOpts(inst, cfg.Budget, seq)
		gotPar := core.GreedyOpts(inst, cfg.Budget, par)
		core.LazyGreedy(inst, cfg.Budget)
		identical := sameSelection(want, gotSeq) && sameSelection(want, gotPar)

		row := EngineRow{
			Users:          ix.Repo().NumUsers(),
			Groups:         ix.NumGroups(),
			Links:          ix.CSR().NumLinks(),
			IdenticalToRef: identical,
		}
		row.ReferenceSec = timeMin(cfg.Repetitions, func() { core.ReferenceGreedy(inst, cfg.Budget, nil) })
		row.EngineSeqSec = timeMin(cfg.Repetitions, func() { core.GreedyOpts(inst, cfg.Budget, seq) })
		row.LazySec = timeMin(cfg.Repetitions, func() { core.LazyGreedy(inst, cfg.Budget) })
		row.EngineParSec = timeMin(cfg.Repetitions, func() { core.GreedyOpts(inst, cfg.Budget, par) })
		if row.EngineSeqSec > 0 {
			row.SpeedupSeq = row.ReferenceSec / row.EngineSeqSec
		}
		if row.EngineParSec > 0 {
			row.SpeedupPar = row.ReferenceSec / row.EngineParSec
		}
		rep.Rows = append(rep.Rows, row)
		if rep.MinSpeedupPar == 0 || row.SpeedupPar < rep.MinSpeedupPar {
			rep.MinSpeedupPar = row.SpeedupPar
		}

		t.Rows = append(t.Rows, Row{
			Name: fmt.Sprintf("|U|=%d", n),
			Values: map[string]float64{
				mRef: row.ReferenceSec,
				mSeq: row.EngineSeqSec,
				mLzy: row.LazySec,
				mPar: row.EngineParSec,
				mSpd: row.SpeedupPar,
			},
		})
	}
	return t, rep
}

// sameSelection checks user-order, marginal and score identity.
func sameSelection(a, b *core.Result) bool {
	if len(a.Users) != len(b.Users) || a.Score != b.Score {
		return false
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] || a.Marginals[i] != b.Marginals[i] {
			return false
		}
	}
	return true
}
