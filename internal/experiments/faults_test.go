package experiments

import (
	"testing"
	"time"
)

func TestFaultsSuiteShapes(t *testing.T) {
	tab, rep, err := RunFaultsSuite(FaultsConfig{
		Seed: 7, Users: 300, Props: 400, Clients: 4,
		Duration: 250 * time.Millisecond,
		Rates:    []float64{0, 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sweep) != 2 || len(tab.Rows) != 4 { // 2 in-process + 2 sweep rows
		t.Fatalf("sweep/table rows = %d/%d, want 2/4", len(rep.Sweep), len(tab.Rows))
	}
	if rep.Overhead.PlainReadQPS <= 0 || rep.Overhead.HardenedReadQPS <= 0 {
		t.Fatalf("overhead phase made no progress: %+v", rep.Overhead)
	}
	// The middleware is a recover+deadline wrapper; even on a short noisy run
	// it must stay within the same order of magnitude.
	if rep.Overhead.Ratio < 0.5 {
		t.Fatalf("hardening halved throughput: %+v", rep.Overhead)
	}
	clean, faulty := rep.Sweep[0], rep.Sweep[1]
	if clean.Rate != 0 || faulty.Rate != 0.05 {
		t.Fatalf("sweep rates = %v/%v", clean.Rate, faulty.Rate)
	}
	if clean.ReadOps == 0 || faulty.ReadOps == 0 {
		t.Fatal("sweep phases made no reads")
	}
	// Resilience means injected faults do not surface: at most a stray error
	// (a request that drew 6 consecutive faults), typically zero.
	if clean.ClientErrors != 0 {
		t.Fatalf("%d client errors with no faults injected", clean.ClientErrors)
	}
	if faulty.Resets+faulty.Truncations+faulty.Latencies == 0 {
		t.Fatal("the 5% sweep injected nothing; the run tested fair weather")
	}
	if rep.Overload.Writes == 0 || rep.Overload.Reads == 0 {
		t.Fatalf("overload phase made no progress: %+v", rep.Overload)
	}
	// Graceful degradation: reads never fail, whatever the writer queue does.
	if rep.Overload.ReadErrors != 0 {
		t.Fatalf("%d read errors during overload", rep.Overload.ReadErrors)
	}
	if rep.Suite != "faults" || rep.Users != 300 {
		t.Fatalf("report header = %+v", rep)
	}
}
