package experiments

import (
	"fmt"

	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/profile"
	"podium/internal/synth"
)

// profileUser converts an int index to a profile.UserID (shared helper).
func profileUser(u int) profile.UserID { return profile.UserID(u) }

// ApproxConfig parameterizes the approximation-ratio experiment of
// Section 8.4: the optimal baseline is feasible only on a restricted source
// population and small budgets; the paper reports a 0.998 ratio when
// selecting 5 out of 40 users.
type ApproxConfig struct {
	Users       int // restricted population size; default 40
	Budget      int // default 5
	Seed        int64
	Repetitions int // default 5 subpopulation draws
}

func (c ApproxConfig) withDefaults() ApproxConfig {
	if c.Users <= 0 {
		c.Users = 40
	}
	if c.Budget <= 0 {
		c.Budget = 5
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 5
	}
	return c
}

// RunApproxRatio measures greedy-versus-optimal score ratios on restricted
// random subpopulations, one row per repetition plus a mean row.
func RunApproxRatio(cfg ApproxConfig) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   fmt.Sprintf("Greedy approximation ratio (%d of %d users)", cfg.Budget, cfg.Users),
		Metrics: []string{"Greedy", "Optimal", "Ratio"},
	}
	var sumRatio, sumGreedy, sumOpt float64
	for rep := 0; rep < cfg.Repetitions; rep++ {
		ds := synth.Generate(synth.Config{
			Name:               "approx",
			Seed:               cfg.Seed + int64(rep)*104729,
			Users:              cfg.Users,
			Destinations:       cfg.Users * 3,
			MeanReviewsPerUser: 15,
		})
		ix := groups.Build(ds.Repo, groups.Config{K: 3})
		inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
		gr := core.Greedy(inst, cfg.Budget)
		opt := core.BranchAndBound(inst, cfg.Budget)
		ratio := 1.0
		if opt.Score > 0 {
			ratio = gr.Score / opt.Score
		}
		sumRatio += ratio
		sumGreedy += gr.Score
		sumOpt += opt.Score
		t.Rows = append(t.Rows, Row{
			Name: fmt.Sprintf("rep %d", rep+1),
			Values: map[string]float64{
				"Greedy":  gr.Score,
				"Optimal": opt.Score,
				"Ratio":   ratio,
			},
		})
	}
	n := float64(cfg.Repetitions)
	t.Rows = append(t.Rows, Row{
		Name: "mean",
		Values: map[string]float64{
			"Greedy":  sumGreedy / n,
			"Optimal": sumOpt / n,
			"Ratio":   sumRatio / n,
		},
	})
	return t
}
