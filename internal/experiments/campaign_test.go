package experiments

import "testing"

func TestCampaignSuiteShapes(t *testing.T) {
	tab, rep, err := RunCampaignSuite(CampaignConfig{
		Seed: 7, Budget: 6, Users: 300,
		NonResponseRates: []float64{0.3},
		Repetitions:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 1 || len(tab.Rows) != 1 {
		t.Fatalf("rows = %d/%d, want 1", len(rep.Rows), len(tab.Rows))
	}
	row := rep.Rows[0]
	if row.Rounds < 1 || row.Waves < row.Rounds || row.Solicited < row.Waves {
		t.Fatalf("implausible volume: %+v", row)
	}
	if row.RoundsPerSec <= 0 {
		t.Fatalf("rounds/sec = %v", row.RoundsPerSec)
	}
	if row.CoverageRepaired < row.CoverageNoRepair {
		t.Fatalf("repair lost coverage: %+v", row)
	}
	if row.CoverageIdeal < row.CoverageRepaired {
		t.Fatalf("repaired coverage exceeds the full-population ideal: %+v", row)
	}
	if row.RecoveredFrac < 0 || row.RecoveredFrac > 1 {
		t.Fatalf("recovered fraction %v outside [0,1]", row.RecoveredFrac)
	}
	if rep.MinRecoveredFrac != row.RecoveredFrac {
		t.Fatalf("min recovered %v != only row's %v", rep.MinRecoveredFrac, row.RecoveredFrac)
	}
	if rep.Suite != "campaign" || rep.Users != 300 {
		t.Fatalf("report header = %+v", rep)
	}
}

func TestCampaignSuiteDeterministicCoverage(t *testing.T) {
	run := func() *CampaignReport {
		_, rep, err := RunCampaignSuite(CampaignConfig{
			Seed: 11, Budget: 6, Users: 250,
			NonResponseRates: []float64{0.2},
			Repetitions:      1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Rows[0].CoverageRepaired != b.Rows[0].CoverageRepaired ||
		a.Rows[0].Rounds != b.Rows[0].Rounds ||
		a.Rows[0].Solicited != b.Rows[0].Solicited {
		t.Fatalf("campaign suite not deterministic: %+v vs %+v", a.Rows[0], b.Rows[0])
	}
}
