package experiments

import (
	"podium/internal/bucketing"
	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/metrics"
	"podium/internal/synth"
)

// AblationConfig parameterizes the design-choice ablations (DESIGN.md E10):
// bucketing method, weight scheme, coverage scheme, and eager-versus-lazy
// greedy.
type AblationConfig struct {
	Dataset   *synth.Dataset
	Budget    int
	TopK      int
	TopGroups int
}

func (c AblationConfig) withDefaults() AblationConfig {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if c.TopK <= 0 {
		c.TopK = 200
	}
	if c.TopGroups <= 0 {
		c.TopGroups = 20
	}
	return c
}

// RunBucketingAblation compares the 1-d splitting methods: how the choice of
// β(p) affects the intrinsic metrics of the greedy selection.
func RunBucketingAblation(cfg AblationConfig) *Table {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Ablation: bucketing method — " + cfg.Dataset.Name,
		Metrics: []string{MetricTotalScore, MetricTopK, MetricDistribution, "Groups"},
	}
	methods := []bucketing.Method{
		bucketing.EqualWidth{}, bucketing.Quantile{}, bucketing.Jenks{},
		bucketing.KMeans{}, bucketing.EM{}, bucketing.KDEValleys{},
	}
	for _, m := range methods {
		ix := groups.Build(cfg.Dataset.Repo, groups.Config{K: 3, Method: m})
		inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
		users := core.Greedy(inst, cfg.Budget).Users
		t.Rows = append(t.Rows, Row{
			Name: m.Name(),
			Values: map[string]float64{
				MetricTotalScore:   metrics.TotalScore(inst, users),
				MetricTopK:         metrics.TopKCoverage(ix, users, cfg.TopK),
				MetricDistribution: metrics.DistributionSimilarity(ix, users, cfg.TopGroups),
				"Groups":           float64(ix.NumGroups()),
			},
		})
	}
	return t
}

// RunSchemeAblation compares the weight and coverage schemes of Definitions
// 3.6 and 3.7 on a shared index. Scores are reported under a common
// LBS+Single instance so the rows are comparable (each scheme optimizes its
// own objective; the table shows what that choice costs on the default one).
func RunSchemeAblation(cfg AblationConfig) *Table {
	cfg = cfg.withDefaults()
	ix := groups.Build(cfg.Dataset.Repo, groups.Config{K: 3})
	ref := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
	t := &Table{
		Title:   "Ablation: weight × coverage scheme — " + cfg.Dataset.Name,
		Metrics: []string{MetricTotalScore, MetricTopK, MetricDistribution},
	}
	for _, ws := range []groups.WeightScheme{groups.WeightIden, groups.WeightLBS, groups.WeightEBS} {
		for _, cs := range []groups.CoverageScheme{groups.CoverSingle, groups.CoverProp} {
			inst := groups.NewInstance(ix, ws, cs, cfg.Budget)
			users := core.Greedy(inst, cfg.Budget).Users
			t.Rows = append(t.Rows, Row{
				Name: ws.String() + "+" + cs.String(),
				Values: map[string]float64{
					MetricTotalScore:   metrics.TotalScore(ref, users),
					MetricTopK:         metrics.TopKCoverage(ix, users, cfg.TopK),
					MetricDistribution: metrics.DistributionSimilarity(ix, users, cfg.TopGroups),
				},
			})
		}
	}
	return t
}

// RunLazyAblation compares eager and lazy greedy: identical output, fewer
// marginal evaluations.
func RunLazyAblation(cfg AblationConfig) *Table {
	cfg = cfg.withDefaults()
	ix := groups.Build(cfg.Dataset.Repo, groups.Config{K: 3})
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
	eager := core.Greedy(inst, cfg.Budget)
	lazy := core.LazyGreedy(inst, cfg.Budget)
	same := 1.0
	if len(eager.Users) != len(lazy.Users) {
		same = 0
	} else {
		for i := range eager.Users {
			if eager.Users[i] != lazy.Users[i] {
				same = 0
			}
		}
	}
	return &Table{
		Title:   "Ablation: eager vs lazy greedy — " + cfg.Dataset.Name,
		Metrics: []string{"Evaluations", MetricTotalScore, "Identical Output"},
		Rows: []Row{
			{Name: "Eager", Values: map[string]float64{
				"Evaluations": float64(eager.Evaluations), MetricTotalScore: eager.Score, "Identical Output": same,
			}},
			{Name: "Lazy", Values: map[string]float64{
				"Evaluations": float64(lazy.Evaluations), MetricTotalScore: lazy.Score, "Identical Output": same,
			}},
		},
	}
}
