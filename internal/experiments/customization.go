package experiments

import (
	"fmt"

	"podium/internal/core"
	"podium/internal/groups"
	"podium/internal/metrics"
	"podium/internal/profile"
	"podium/internal/stats"
	"podium/internal/synth"
)

// CustomizationConfig parameterizes the customization-effect experiment
// (Figure 4): nested random priority sets 𝒢₂₀ ⊆ 𝒢₄₀ ⊆ 𝒢₆₀ ⊆ 𝒢₈₀ are fed as
// priority-coverage feedback, the customized selection runs, and the
// intrinsic metrics plus Feedback Group Coverage are averaged over
// repetitions.
type CustomizationConfig struct {
	Dataset     *synth.Dataset
	Budget      int
	Sizes       []int // priority-set sizes; default {20, 40, 60, 80}
	Repetitions int   // default 20 (the paper's count)
	TopK        int
	TopGroups   int
	Seed        int64
}

func (c CustomizationConfig) withDefaults() CustomizationConfig {
	if c.Budget <= 0 {
		c.Budget = 8
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{20, 40, 60, 80}
	}
	if c.Repetitions <= 0 {
		c.Repetitions = 20
	}
	if c.TopK <= 0 {
		c.TopK = 200
	}
	if c.TopGroups <= 0 {
		c.TopGroups = 20
	}
	return c
}

// RunCustomization reproduces Figure 4. The first row is the baseline
// without customization; each following row averages the metrics over
// Repetitions draws of a priority set of the given size (nested within each
// repetition, as in the paper).
func RunCustomization(cfg CustomizationConfig) *Table {
	cfg = cfg.withDefaults()
	ix := groups.Build(cfg.Dataset.Repo, groups.Config{K: 3})
	inst := groups.NewInstance(ix, groups.WeightLBS, groups.CoverSingle, cfg.Budget)
	t := &Table{
		Title: "Intrinsic diversity with customization — " + cfg.Dataset.Name,
		Metrics: []string{
			MetricTotalScore, MetricTopK, MetricIntersected, MetricDistribution, MetricFeedbackGroups,
		},
	}

	measure := func(users [][]profile.UserID, priority [][]groups.GroupID) Row {
		// Average the metrics across repetitions.
		vals := map[string]float64{}
		for i, u := range users {
			vals[MetricTotalScore] += metrics.TotalScore(inst, u)
			vals[MetricTopK] += metrics.TopKCoverage(ix, u, cfg.TopK)
			vals[MetricIntersected] += metrics.IntersectedCoverage(ix, u, cfg.TopK)
			vals[MetricDistribution] += metrics.DistributionSimilarity(ix, u, cfg.TopGroups)
			vals[MetricFeedbackGroups] += metrics.FeedbackGroupCoverage(inst, u, priority[i])
		}
		n := float64(len(users))
		for k := range vals {
			vals[k] /= n
		}
		return Row{Values: vals}
	}

	// Baseline without customization.
	base := core.Greedy(inst, cfg.Budget).Users
	row := measure([][]profile.UserID{base}, [][]groups.GroupID{nil})
	row.Name = "No feedback"
	t.Rows = append(t.Rows, row)

	maxSize := cfg.Sizes[len(cfg.Sizes)-1]
	for _, size := range cfg.Sizes {
		var selections [][]profile.UserID
		var priorities [][]groups.GroupID
		for rep := 0; rep < cfg.Repetitions; rep++ {
			rng := stats.NewRand(cfg.Seed + int64(rep)*7919)
			// One nested draw per repetition: the size-|𝒢₈₀| sample's
			// prefixes give 𝒢₂₀ ⊆ 𝒢₄₀ ⊆ ….
			full := stats.SampleWithoutReplacement(rng, ix.NumGroups(), min(maxSize, ix.NumGroups()))
			k := min(size, len(full))
			priority := make([]groups.GroupID, k)
			for i := 0; i < k; i++ {
				priority[i] = groups.GroupID(full[i])
			}
			fb := core.Feedback{Priority: priority}
			res, err := core.GreedyCustom(inst, fb, cfg.Budget)
			if err != nil {
				panic(fmt.Sprintf("experiments: customization feedback invalid: %v", err))
			}
			selections = append(selections, res.Users)
			priorities = append(priorities, priority)
		}
		row := measure(selections, priorities)
		row.Name = fmt.Sprintf("|Gd|=%d", size)
		t.Rows = append(t.Rows, row)
	}
	return t
}
